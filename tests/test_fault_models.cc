/**
 * @file
 * Tests of the Table II software fault models.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/fault_models.hh"
#include "nn/conv.hh"
#include "nn/fc.hh"
#include "nn/init.hh"
#include "sim/rng.hh"

using namespace fidelity;

namespace
{

struct Fixture
{
    ConvSpec spec;
    std::unique_ptr<Conv2D> conv;
    Tensor x;
    std::vector<const Tensor *> ins;
    Tensor golden;
    NvdlaConfig cfg;
    FaultModels models{cfg};

    explicit Fixture(Precision p = Precision::FP16)
        : x(1, 6, 6, 8)
    {
        Rng rng(17);
        spec.inC = 8;
        spec.outC = 32;
        spec.kh = 3;
        spec.kw = 3;
        spec.pad = 1;
        conv = std::make_unique<Conv2D>(
            "c", spec, heWeights(rng, 9u * 8 * 32, 72),
            smallBiases(rng, 32));
        for (auto &v : x.data())
            v = static_cast<float>(rng.normal(0, 1));
        ins = {&x};
        conv->setPrecision(Precision::FP32);
        Tensor g = conv->forward(ins);
        conv->calibrate(ins, g);
        conv->setPrecision(p);
        golden = conv->forward(ins);
    }
};

} // namespace

TEST(FaultModels, SharesSumToOne)
{
    double total = 0.0;
    for (FFCategory cat : allFFCategories())
        total += ffCategoryShare(cat);
    EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(FaultModels, CategoryNamesAreDistinct)
{
    std::set<std::string> names;
    for (FFCategory cat : allFFCategories())
        names.insert(ffCategoryName(cat));
    EXPECT_EQ(names.size(), allFFCategories().size());
}

TEST(FaultModels, DatapathPredicate)
{
    EXPECT_TRUE(isDatapathCategory(FFCategory::PreBufInput));
    EXPECT_TRUE(isDatapathCategory(FFCategory::OutputPsum));
    EXPECT_FALSE(isDatapathCategory(FFCategory::LocalControl));
    EXPECT_FALSE(isDatapathCategory(FFCategory::GlobalControl));
}

TEST(FaultModels, GlobalControlIsAlwaysFailure)
{
    Fixture f;
    Rng rng(1);
    FaultApplication app = f.models.apply(
        FFCategory::GlobalControl, *f.conv, f.ins, f.golden, rng);
    EXPECT_TRUE(app.globalFailure);
    EXPECT_FALSE(app.masked());
    EXPECT_TRUE(app.neurons.empty());
}

TEST(FaultModels, OutputPsumIsSingleNeuron)
{
    Fixture f;
    Rng rng(2);
    for (int i = 0; i < 50; ++i) {
        FaultApplication app = f.models.apply(
            FFCategory::OutputPsum, *f.conv, f.ins, f.golden, rng);
        EXPECT_LE(app.neurons.size(), 1u);
        for (std::size_t k = 0; k < app.neurons.size(); ++k)
            EXPECT_NE(app.values[k], f.golden.at(app.neurons[k]));
    }
}

TEST(FaultModels, OperandInputStaysInOneGroupAndPosition)
{
    Fixture f;
    Rng rng(3);
    int non_masked = 0;
    for (int i = 0; i < 60; ++i) {
        FaultApplication app = f.models.apply(
            FFCategory::OperandInput, *f.conv, f.ins, f.golden, rng);
        if (app.neurons.empty())
            continue;
        non_masked += 1;
        EXPECT_LE(app.neurons.size(),
                  static_cast<std::size_t>(f.cfg.macs()));
        const NeuronIndex &first = app.neurons.front();
        int group = first.c / f.cfg.macs();
        for (const NeuronIndex &n : app.neurons) {
            EXPECT_EQ(n.h, first.h);
            EXPECT_EQ(n.w, first.w);
            EXPECT_EQ(n.c / f.cfg.macs(), group);
        }
    }
    EXPECT_GT(non_masked, 30);
}

TEST(FaultModels, OperandWeightIsBoundedRunInOneChannel)
{
    Fixture f;
    Rng rng(4);
    int non_masked = 0;
    for (int i = 0; i < 60; ++i) {
        FaultApplication app = f.models.apply(
            FFCategory::OperandWeight, *f.conv, f.ins, f.golden, rng);
        if (app.neurons.empty())
            continue;
        non_masked += 1;
        EXPECT_LE(app.neurons.size(), static_cast<std::size_t>(f.cfg.t));
        int chan = app.neurons.front().c;
        for (const NeuronIndex &n : app.neurons)
            EXPECT_EQ(n.c, chan);
    }
    EXPECT_GT(non_masked, 30);
}

TEST(FaultModels, PreBufWeightAffectsOneChannelWidely)
{
    Fixture f;
    Rng rng(5);
    std::size_t biggest = 0;
    for (int i = 0; i < 40; ++i) {
        FaultApplication app = f.models.apply(
            FFCategory::PreBufWeight, *f.conv, f.ins, f.golden, rng);
        if (app.neurons.empty())
            continue;
        int chan = app.neurons.front().c;
        for (const NeuronIndex &n : app.neurons)
            EXPECT_EQ(n.c, chan);
        biggest = std::max(biggest, app.neurons.size());
    }
    // Some weight flip must reach more neurons than the t-bounded
    // operand model ever can.
    EXPECT_GT(biggest, static_cast<std::size_t>(f.cfg.t));
}

TEST(FaultModels, PreBufInputCanSpanManyChannels)
{
    Fixture f;
    Rng rng(6);
    std::size_t biggest = 0;
    for (int i = 0; i < 40; ++i) {
        FaultApplication app = f.models.apply(
            FFCategory::PreBufInput, *f.conv, f.ins, f.golden, rng);
        biggest = std::max(biggest, app.neurons.size());
    }
    // An input value feeds all 32 output channels at its positions.
    EXPECT_GT(biggest, 32u);
}

TEST(FaultModels, LocalControlIsOneRandomNeuron)
{
    Fixture f;
    Rng rng(7);
    for (int i = 0; i < 30; ++i) {
        FaultApplication app = f.models.apply(
            FFCategory::LocalControl, *f.conv, f.ins, f.golden, rng);
        EXPECT_LE(app.neurons.size(), 1u);
    }
}

TEST(FaultModels, ValuesAlwaysDifferFromGolden)
{
    Fixture f;
    Rng rng(8);
    for (FFCategory cat :
         {FFCategory::PreBufInput, FFCategory::PreBufWeight,
          FFCategory::OperandInput, FFCategory::OperandWeight,
          FFCategory::OutputPsum}) {
        for (int i = 0; i < 20; ++i) {
            FaultApplication app =
                f.models.apply(cat, *f.conv, f.ins, f.golden, rng);
            for (std::size_t k = 0; k < app.neurons.size(); ++k) {
                float g = f.golden.at(app.neurons[k]);
                EXPECT_TRUE(app.values[k] != g ||
                            (std::isnan(app.values[k]) !=
                             std::isnan(g)));
            }
        }
    }
}

TEST(FaultModels, MaxAbsDeltaTracksValues)
{
    Fixture f;
    Rng rng(9);
    for (int i = 0; i < 30; ++i) {
        FaultApplication app = f.models.apply(
            FFCategory::OutputPsum, *f.conv, f.ins, f.golden, rng);
        if (app.neurons.empty())
            continue;
        double expect = 0.0;
        for (std::size_t k = 0; k < app.neurons.size(); ++k) {
            float g = f.golden.at(app.neurons[k]);
            double d = std::isfinite(app.values[k])
                ? std::fabs(app.values[k] - g)
                : std::numeric_limits<double>::infinity();
            expect = std::max(expect, d);
        }
        EXPECT_EQ(app.maxAbsDelta, expect);
    }
}

TEST(FaultModels, DeterministicGivenSeed)
{
    Fixture f;
    Rng a(42), b(42);
    for (int i = 0; i < 10; ++i) {
        FaultApplication x = f.models.apply(
            FFCategory::PreBufInput, *f.conv, f.ins, f.golden, a);
        FaultApplication y = f.models.apply(
            FFCategory::PreBufInput, *f.conv, f.ins, f.golden, b);
        ASSERT_EQ(x.neurons.size(), y.neurons.size());
        for (std::size_t k = 0; k < x.neurons.size(); ++k) {
            EXPECT_EQ(x.neurons[k], y.neurons[k]);
            EXPECT_EQ(x.values[k], y.values[k]);
        }
    }
}

TEST(FaultModels, Int8FlipsStayInRepresentableRange)
{
    Fixture f(Precision::INT8);
    Tensor golden8 = f.conv->forward(f.ins);
    Rng rng(10);
    double out_max = f.conv->outputQuant().scale * 127.0;
    for (int i = 0; i < 40; ++i) {
        FaultApplication app = f.models.apply(
            FFCategory::OutputPsum, *f.conv, f.ins, golden8, rng);
        for (float v : app.values) {
            EXPECT_TRUE(std::isfinite(v));
            EXPECT_LE(std::fabs(v), out_max * 1.01 +
                          f.conv->outputQuant().scale * 128.0);
        }
    }
}

TEST(FaultModels, OperandBitsPerPrecision)
{
    EXPECT_EQ(FaultModels::operandBits(Precision::FP16), 16);
    EXPECT_EQ(FaultModels::operandBits(Precision::INT8), 8);
    EXPECT_EQ(FaultModels::operandBits(Precision::INT16), 16);
    EXPECT_EQ(FaultModels::operandBits(Precision::FP32), 32);
}

TEST(FaultModels, FlipStoredOperandIsInvolution)
{
    QuantParams qp = calibrateAbsMax(2.0, 8);
    Rng rng(11);
    for (int i = 0; i < 200; ++i) {
        float x = static_cast<float>(rng.uniform(-2.0, 2.0));
        int bit = static_cast<int>(rng.below(8));
        float stored =
            dequantize(quantize(x, qp), qp); // what the FF holds
        float once = FaultModels::flipStoredOperand(stored,
                                                    Precision::INT8, qp,
                                                    bit);
        float twice = FaultModels::flipStoredOperand(once,
                                                     Precision::INT8,
                                                     qp, bit);
        EXPECT_EQ(twice, stored);
    }
}

TEST(FaultModels, RandomOutputValueUsesRepresentation)
{
    QuantParams qp = calibrateAbsMax(1.0, 8);
    Rng rng(12);
    for (int i = 0; i < 100; ++i) {
        float v = FaultModels::randomOutputValue(Precision::INT8, qp,
                                                 rng);
        EXPECT_LE(std::fabs(v), 128.0 * qp.scale + 1e-6);
    }
}
