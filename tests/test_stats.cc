/**
 * @file
 * Unit tests for Proportion / RunningStat / sample sizing.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>

#include "sim/stats.hh"

using namespace fidelity;

TEST(Proportion, EmptyDefaults)
{
    Proportion p;
    EXPECT_EQ(p.trials(), 0u);
    EXPECT_DOUBLE_EQ(p.mean(), 0.0);
    EXPECT_DOUBLE_EQ(p.lower(), 0.0);
    EXPECT_DOUBLE_EQ(p.upper(), 1.0);
}

TEST(Proportion, MeanTracksCounts)
{
    Proportion p;
    for (int i = 0; i < 30; ++i)
        p.add(i % 3 == 0);
    EXPECT_EQ(p.trials(), 30u);
    EXPECT_EQ(p.successes(), 10u);
    EXPECT_NEAR(p.mean(), 1.0 / 3.0, 1e-12);
}

TEST(Proportion, BatchAdd)
{
    Proportion p;
    p.add(40, 100);
    EXPECT_DOUBLE_EQ(p.mean(), 0.4);
}

TEST(Proportion, IntervalContainsMean)
{
    Proportion p;
    p.add(37, 120);
    EXPECT_LT(p.lower(), p.mean());
    EXPECT_GT(p.upper(), p.mean());
    EXPECT_GE(p.lower(), 0.0);
    EXPECT_LE(p.upper(), 1.0);
}

TEST(Proportion, IntervalShrinksWithSamples)
{
    Proportion small, big;
    small.add(5, 10);
    big.add(500, 1000);
    EXPECT_GT(small.halfWidth(), big.halfWidth());
}

TEST(Proportion, WilsonMatchesKnownValue)
{
    // p = 0.5, n = 100, z = 1.96 -> interval about [0.404, 0.596].
    Proportion p;
    p.add(50, 100);
    EXPECT_NEAR(p.lower(), 0.404, 0.005);
    EXPECT_NEAR(p.upper(), 0.596, 0.005);
}

TEST(Proportion, ExtremesClamped)
{
    Proportion all;
    all.add(10, 10);
    EXPECT_LE(all.upper(), 1.0);
    EXPECT_GT(all.lower(), 0.5);

    Proportion none;
    none.add(0, 10);
    EXPECT_GE(none.lower(), 0.0);
    EXPECT_LT(none.upper(), 0.5);
}

TEST(Proportion, StrMentionsCounts)
{
    Proportion p;
    p.add(3, 7);
    EXPECT_NE(p.str().find("n=7"), std::string::npos);
}

TEST(RunningStat, MomentsOfKnownSequence)
{
    RunningStat s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStat, SingleValue)
{
    RunningStat s;
    s.add(3.5);
    EXPECT_DOUBLE_EQ(s.mean(), 3.5);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 3.5);
    EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(RunningStat, EmptyIsZero)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(SampleSizing, MatchesClosedForm)
{
    // n = z^2 p (1-p) / e^2; p=0.5, e=0.05, z=1.96 -> 384.16 -> 385.
    EXPECT_EQ(samplesForHalfWidth(0.5, 0.05), 385u);
}

TEST(SampleSizing, SmallerWidthNeedsMore)
{
    EXPECT_GT(samplesForHalfWidth(0.5, 0.01),
              samplesForHalfWidth(0.5, 0.05));
}

// ----- Adversarial edges (adaptive-campaign hardening) --------------

TEST(ProportionEdge, NoTrialsAtAnyZ)
{
    Proportion p;
    for (double z : {0.0, 1.96, 2.576, 10.0}) {
        EXPECT_DOUBLE_EQ(p.halfWidth(z), 0.0);
        EXPECT_DOUBLE_EQ(p.lower(z), 0.0);
        EXPECT_DOUBLE_EQ(p.upper(z), 1.0);
    }
}

TEST(ProportionEdge, AllSuccessesStaysFiniteAndOrdered)
{
    Proportion p;
    p.add(10, 10);
    for (double z : {1.96, 2.576}) {
        double hw = p.halfWidth(z);
        EXPECT_TRUE(std::isfinite(hw));
        EXPECT_GT(hw, 0.0);
        EXPECT_LE(p.lower(z), 1.0);
        EXPECT_DOUBLE_EQ(p.upper(z), 1.0);
        EXPECT_LT(p.lower(z), p.upper(z));
    }
}

TEST(ProportionEdge, AllFailuresMirrorsAllSuccesses)
{
    Proportion yes, no;
    yes.add(25, 25);
    no.add(0, 25);
    EXPECT_DOUBLE_EQ(yes.halfWidth(2.576), no.halfWidth(2.576));
    EXPECT_NEAR(yes.lower(2.576), 1.0 - no.upper(2.576), 1e-15);
}

TEST(ProportionEdge, TrialsNearUint64MaxStayFinite)
{
    constexpr std::uint64_t big =
        std::numeric_limits<std::uint64_t>::max() - 8;
    Proportion half;
    half.add(big / 2, big);
    EXPECT_TRUE(std::isfinite(half.mean()));
    EXPECT_TRUE(std::isfinite(half.halfWidth(2.576)));
    EXPECT_GE(half.halfWidth(2.576), 0.0);
    EXPECT_GE(half.lower(2.576), 0.0);
    EXPECT_LE(half.upper(2.576), 1.0);
    EXPECT_LE(half.lower(2.576), half.upper(2.576));

    Proportion all;
    all.add(big, big);
    EXPECT_DOUBLE_EQ(all.mean(), 1.0);
    EXPECT_TRUE(std::isfinite(all.halfWidth(2.576)));
    EXPECT_LE(all.upper(2.576), 1.0);
    EXPECT_GE(all.lower(2.576), 0.0);
}

TEST(ProportionEdge, CounterOverflowPanicsInsteadOfNaN)
{
    // Before the overflow guard, a second huge batch wrapped trials_
    // and every interval call returned NaN from sqrt(negative).
    constexpr std::uint64_t big =
        std::numeric_limits<std::uint64_t>::max() - 8;
    Proportion p;
    p.add(big, big);
    EXPECT_DEATH(p.add(big, big), "overflow");
}

TEST(ProportionEdge, Z99KnownValue)
{
    // p = 0.5, n = 100, z = 2.576 (99%):
    // hw = (z / (1 + z^2/n)) * sqrt(p(1-p)/n + z^2/(4n^2)) = 0.12473...
    Proportion p;
    p.add(50, 100);
    EXPECT_NEAR(p.halfWidth(2.576), 0.12473, 5e-5);
    EXPECT_GT(p.halfWidth(2.576), p.halfWidth(1.96));
}

TEST(ProportionEdge, SingleTrial)
{
    Proportion p;
    p.add(true);
    EXPECT_DOUBLE_EQ(p.mean(), 1.0);
    double hw = p.halfWidth(2.576);
    EXPECT_TRUE(std::isfinite(hw));
    EXPECT_GT(hw, 0.0);
    EXPECT_GE(p.lower(2.576), 0.0);
}

TEST(SampleSizingEdge, TinyHalfWidthSaturatesInsteadOfUB)
{
    // z^2 p(1-p)/e^2 overflows uint64 for e ~ 1e-12; the cast used to
    // be undefined behaviour, now it saturates.
    EXPECT_EQ(samplesForHalfWidth(0.5, 1e-12, 2.576),
              std::numeric_limits<std::uint64_t>::max());
}

TEST(SampleSizingEdge, DegenerateProportionsNeedNoSamples)
{
    EXPECT_EQ(samplesForHalfWidth(0.0, 0.05), 0u);
    EXPECT_EQ(samplesForHalfWidth(1.0, 0.05), 0u);
}

TEST(SampleSizingEdge, RejectsNonProbabilities)
{
    EXPECT_DEATH((void)samplesForHalfWidth(-0.1, 0.05), "probability");
    EXPECT_DEATH((void)samplesForHalfWidth(1.1, 0.05), "probability");
    EXPECT_DEATH((void)samplesForHalfWidth(0.5, 0.05, 0.0), "positive");
}
