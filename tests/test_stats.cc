/**
 * @file
 * Unit tests for Proportion / RunningStat / sample sizing.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "sim/stats.hh"

using namespace fidelity;

TEST(Proportion, EmptyDefaults)
{
    Proportion p;
    EXPECT_EQ(p.trials(), 0u);
    EXPECT_DOUBLE_EQ(p.mean(), 0.0);
    EXPECT_DOUBLE_EQ(p.lower(), 0.0);
    EXPECT_DOUBLE_EQ(p.upper(), 1.0);
}

TEST(Proportion, MeanTracksCounts)
{
    Proportion p;
    for (int i = 0; i < 30; ++i)
        p.add(i % 3 == 0);
    EXPECT_EQ(p.trials(), 30u);
    EXPECT_EQ(p.successes(), 10u);
    EXPECT_NEAR(p.mean(), 1.0 / 3.0, 1e-12);
}

TEST(Proportion, BatchAdd)
{
    Proportion p;
    p.add(40, 100);
    EXPECT_DOUBLE_EQ(p.mean(), 0.4);
}

TEST(Proportion, IntervalContainsMean)
{
    Proportion p;
    p.add(37, 120);
    EXPECT_LT(p.lower(), p.mean());
    EXPECT_GT(p.upper(), p.mean());
    EXPECT_GE(p.lower(), 0.0);
    EXPECT_LE(p.upper(), 1.0);
}

TEST(Proportion, IntervalShrinksWithSamples)
{
    Proportion small, big;
    small.add(5, 10);
    big.add(500, 1000);
    EXPECT_GT(small.halfWidth(), big.halfWidth());
}

TEST(Proportion, WilsonMatchesKnownValue)
{
    // p = 0.5, n = 100, z = 1.96 -> interval about [0.404, 0.596].
    Proportion p;
    p.add(50, 100);
    EXPECT_NEAR(p.lower(), 0.404, 0.005);
    EXPECT_NEAR(p.upper(), 0.596, 0.005);
}

TEST(Proportion, ExtremesClamped)
{
    Proportion all;
    all.add(10, 10);
    EXPECT_LE(all.upper(), 1.0);
    EXPECT_GT(all.lower(), 0.5);

    Proportion none;
    none.add(0, 10);
    EXPECT_GE(none.lower(), 0.0);
    EXPECT_LT(none.upper(), 0.5);
}

TEST(Proportion, StrMentionsCounts)
{
    Proportion p;
    p.add(3, 7);
    EXPECT_NE(p.str().find("n=7"), std::string::npos);
}

TEST(RunningStat, MomentsOfKnownSequence)
{
    RunningStat s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStat, SingleValue)
{
    RunningStat s;
    s.add(3.5);
    EXPECT_DOUBLE_EQ(s.mean(), 3.5);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 3.5);
    EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(RunningStat, EmptyIsZero)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(SampleSizing, MatchesClosedForm)
{
    // n = z^2 p (1-p) / e^2; p=0.5, e=0.05, z=1.96 -> 384.16 -> 385.
    EXPECT_EQ(samplesForHalfWidth(0.5, 0.05), 385u);
}

TEST(SampleSizing, SmallerWidthNeedsMore)
{
    EXPECT_GT(samplesForHalfWidth(0.5, 0.01),
              samplesForHalfWidth(0.5, 0.05));
}
