/**
 * @file
 * Unit tests for the NHWC tensor and NeuronIndex.
 */

#include <gtest/gtest.h>

#include "tensor/tensor.hh"

using namespace fidelity;

TEST(NeuronIndex, OrderingIsLexicographic)
{
    NeuronIndex a{0, 1, 2, 3};
    NeuronIndex b{0, 1, 2, 4};
    NeuronIndex c{0, 1, 3, 0};
    NeuronIndex d{1, 0, 0, 0};
    EXPECT_LT(a, b);
    EXPECT_LT(b, c);
    EXPECT_LT(c, d);
    EXPECT_FALSE(b < a);
    EXPECT_EQ(a, (NeuronIndex{0, 1, 2, 3}));
}

TEST(NeuronIndex, Str)
{
    EXPECT_EQ((NeuronIndex{1, 2, 3, 4}).str(), "(1,2,3,4)");
}

TEST(Tensor, ShapeAndSize)
{
    Tensor t(2, 3, 4, 5);
    EXPECT_EQ(t.n(), 2);
    EXPECT_EQ(t.h(), 3);
    EXPECT_EQ(t.w(), 4);
    EXPECT_EQ(t.c(), 5);
    EXPECT_EQ(t.size(), 120u);
    EXPECT_EQ(t.shapeStr(), "2x3x4x5");
}

TEST(Tensor, ZeroInitialised)
{
    Tensor t(1, 2, 2, 2);
    for (std::size_t i = 0; i < t.size(); ++i)
        EXPECT_EQ(t[i], 0.0f);
}

TEST(Tensor, OffsetIsNHWC)
{
    Tensor t(2, 3, 4, 5);
    EXPECT_EQ(t.offset(0, 0, 0, 0), 0u);
    EXPECT_EQ(t.offset(0, 0, 0, 1), 1u);
    EXPECT_EQ(t.offset(0, 0, 1, 0), 5u);
    EXPECT_EQ(t.offset(0, 1, 0, 0), 20u);
    EXPECT_EQ(t.offset(1, 0, 0, 0), 60u);
    EXPECT_EQ(t.offset(1, 2, 3, 4), 119u);
}

TEST(Tensor, IndexOfInvertsOffset)
{
    Tensor t(2, 3, 4, 5);
    for (int n = 0; n < 2; ++n)
        for (int h = 0; h < 3; ++h)
            for (int w = 0; w < 4; ++w)
                for (int c = 0; c < 5; ++c) {
                    NeuronIndex i = t.indexOf(t.offset(n, h, w, c));
                    EXPECT_EQ(i, (NeuronIndex{n, h, w, c}));
                }
}

TEST(Tensor, AtReadsAndWrites)
{
    Tensor t(1, 2, 2, 3);
    t.at(0, 1, 0, 2) = 7.5f;
    EXPECT_EQ(t.at(0, 1, 0, 2), 7.5f);
    EXPECT_EQ(t[t.offset(0, 1, 0, 2)], 7.5f);
    NeuronIndex i{0, 1, 0, 2};
    EXPECT_EQ(t.at(i), 7.5f);
}

TEST(Tensor, FillAndAbsMax)
{
    Tensor t(1, 2, 2, 1);
    t.fill(-3.0f);
    EXPECT_EQ(t.absMax(), 3.0f);
    t.at(0, 0, 1, 0) = 4.5f;
    EXPECT_EQ(t.absMax(), 4.5f);
}

TEST(Tensor, Argmax)
{
    Tensor t(1, 1, 1, 6);
    t[2] = 1.0f;
    t[4] = 2.0f;
    EXPECT_EQ(t.argmax(), 4u);
    t[0] = 2.0f; // ties break to the first element
    EXPECT_EQ(t.argmax(), 0u);
}

TEST(Tensor, SameShape)
{
    Tensor a(1, 2, 3, 4), b(1, 2, 3, 4), c(1, 2, 3, 5);
    EXPECT_TRUE(a.sameShape(b));
    EXPECT_FALSE(a.sameShape(c));
}

TEST(TensorDeath, OutOfBoundsPanics)
{
    Tensor t(1, 2, 2, 2);
    EXPECT_DEATH((void)t.offset(0, 2, 0, 0), "out of bounds");
    EXPECT_DEATH((void)t.offset(0, 0, 0, -1), "out of bounds");
}

TEST(TensorDeath, BadShapePanics)
{
    EXPECT_DEATH(Tensor(0, 1, 1, 1), "positive");
}
