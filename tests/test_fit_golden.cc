/**
 * @file
 * Golden-fixture regression for the FIT pipeline (Eq. 2).
 *
 * Two small accelerator configurations live as text fixtures under
 * tests/fixtures/; each pins the full FitBreakdown (datapath / local /
 * global) at %.17g precision.  The test reparses the fixture, re-runs
 * acceleratorFit, and fails on any drift beyond 1e-12 — catching
 * accidental reorderings or "harmless" refactors of the Eq. 2
 * arithmetic.
 *
 * To regenerate after an *intentional* semantic change, run with
 * FIDELITY_REGEN_FIXTURES=1; the test prints fresh `expect_*` lines to
 * paste into the fixture and fails so the refresh cannot be silent.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/fit.hh"

using namespace fidelity;

#ifndef FIDELITY_FIXTURE_DIR
#error "FIDELITY_FIXTURE_DIR must point at tests/fixtures"
#endif

namespace
{

struct Fixture
{
    FitParams params;
    std::vector<LayerFitInput> layers;
    FitBreakdown expect;
};

/** Strip comment lines, then tokenize the remainder. */
std::vector<std::string>
tokensOf(const std::string &path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << "cannot open fixture " << path;
    std::vector<std::string> toks;
    std::string line;
    while (std::getline(in, line)) {
        if (!line.empty() && line[0] == '#')
            continue;
        std::istringstream ls(line);
        std::string t;
        while (ls >> t)
            toks.push_back(t);
    }
    return toks;
}

Fixture
parseFixture(const std::string &name)
{
    const std::string path =
        std::string(FIDELITY_FIXTURE_DIR) + "/" + name;
    std::vector<std::string> toks = tokensOf(path);

    Fixture fx;
    std::size_t i = 0;
    auto next = [&]() -> std::string {
        EXPECT_LT(i, toks.size()) << "fixture " << name << " truncated";
        return i < toks.size() ? toks[i++] : std::string("0");
    };
    auto nextD = [&]() { return std::strtod(next().c_str(), nullptr); };

    while (i < toks.size()) {
        std::string key = next();
        if (key == "raw_fit_per_mb") {
            fx.params.rawFitPerMb = nextD();
        } else if (key == "nff") {
            fx.params.nff = nextD();
        } else if (key == "protect_global") {
            fx.params.protectGlobal = nextD() != 0.0;
        } else if (key == "layer") {
            LayerFitInput l;
            l.execTime = nextD();
            for (int c = 0; c < numFFCategories; ++c) {
                l.stats[c].probInactive = nextD();
                l.stats[c].probSwMask = nextD();
            }
            fx.layers.push_back(l);
        } else if (key == "expect_datapath") {
            fx.expect.datapath = nextD();
        } else if (key == "expect_local") {
            fx.expect.local = nextD();
        } else if (key == "expect_global") {
            fx.expect.global = nextD();
        } else {
            ADD_FAILURE() << "fixture " << name << ": unknown key '"
                          << key << "'";
            break;
        }
    }
    return fx;
}

void
checkGolden(const std::string &name)
{
    Fixture fx = parseFixture(name);
    ASSERT_FALSE(fx.layers.empty());
    FitBreakdown got = acceleratorFit(fx.params, fx.layers);

    if (std::getenv("FIDELITY_REGEN_FIXTURES")) {
        std::printf("expect_datapath %.17g\n", got.datapath);
        std::printf("expect_local %.17g\n", got.local);
        std::printf("expect_global %.17g\n", got.global);
        FAIL() << name << ": regeneration mode, paste the lines above";
    }

    EXPECT_NEAR(got.datapath, fx.expect.datapath, 1e-12) << name;
    EXPECT_NEAR(got.local, fx.expect.local, 1e-12) << name;
    EXPECT_NEAR(got.global, fx.expect.global, 1e-12) << name;
    EXPECT_NEAR(got.total(), fx.expect.total(), 1e-12) << name;
}

} // namespace

TEST(FitGolden, SmallConfigA)
{
    checkGolden("fit_small_a.txt");
}

TEST(FitGolden, SmallConfigB)
{
    checkGolden("fit_small_b.txt");
}

TEST(FitGolden, FixturesAreNotTrivial)
{
    // Guard against a silently-zeroed fixture: both pinned totals must
    // be positive, and config B protects global control so its global
    // component must be exactly zero while A's is positive.
    Fixture a = parseFixture("fit_small_a.txt");
    Fixture b = parseFixture("fit_small_b.txt");
    EXPECT_GT(a.expect.total(), 0.0);
    EXPECT_GT(a.expect.global, 0.0);
    EXPECT_GT(b.expect.total(), 0.0);
    EXPECT_EQ(b.expect.global, 0.0);
}
