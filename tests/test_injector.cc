/**
 * @file
 * Tests of the software fault-injection engine and the naive baseline.
 */

#include <gtest/gtest.h>

#include <limits>

#include "core/injector.hh"
#include "core/naive.hh"
#include "sim/stats.hh"
#include "workloads/metrics.hh"
#include "nn/activation.hh"
#include "nn/fc.hh"
#include "nn/init.hh"
#include "nn/network.hh"
#include "nn/softmax.hh"
#include "sim/rng.hh"

using namespace fidelity;

namespace
{

Network
makeClassifier(std::uint64_t seed)
{
    Rng rng(seed);
    Network net("cls");
    NodeId fc1 = net.add(std::make_unique<FC>("fc1", 8, 16,
                                              heWeights(rng, 128, 8),
                                              smallBiases(rng, 16)),
                         0);
    NodeId act = net.add(std::make_unique<Activation>(
                             "relu", Activation::Func::ReLU),
                         fc1);
    NodeId fc2 = net.add(std::make_unique<FC>("fc2", 16, 5,
                                              heWeights(rng, 80, 16),
                                              smallBiases(rng, 5)),
                         act);
    net.add(std::make_unique<Softmax>("sm"), fc2);
    return net;
}

Tensor
makeInput(std::uint64_t seed)
{
    Rng rng(seed);
    Tensor t(1, 1, 1, 8);
    for (auto &v : t.data())
        v = static_cast<float>(rng.normal(0, 1));
    return t;
}

} // namespace

TEST(Injector, GoldenOutputIsForwardPass)
{
    Network net = makeClassifier(1);
    Tensor x = makeInput(2);
    Injector inj(net, x, NvdlaConfig{});
    Tensor direct = net.forward(x);
    const Tensor &cached = inj.goldenOutput();
    for (std::size_t i = 0; i < direct.size(); ++i)
        EXPECT_EQ(cached[i], direct[i]);
}

TEST(Injector, GlobalControlAlwaysFails)
{
    Network net = makeClassifier(1);
    Tensor x = makeInput(2);
    Injector inj(net, x, NvdlaConfig{});
    Rng rng(3);
    auto macs = net.macNodes();
    InjectionRecord rec = inj.inject(macs[0], FFCategory::GlobalControl,
                                     top1Metric(), rng);
    EXPECT_FALSE(rec.masked);
    EXPECT_TRUE(rec.globalFailure);
    EXPECT_EQ(rec.numFaultyNeurons, 0);
}

TEST(Injector, AlwaysTrueMetricMasksNonGlobal)
{
    Network net = makeClassifier(1);
    Tensor x = makeInput(2);
    Injector inj(net, x, NvdlaConfig{});
    Rng rng(4);
    CorrectnessFn always = [](const Tensor &, const Tensor &) {
        return true;
    };
    auto macs = net.macNodes();
    for (int i = 0; i < 20; ++i) {
        InjectionRecord rec =
            inj.inject(macs[0], FFCategory::OutputPsum, always, rng);
        EXPECT_TRUE(rec.masked);
    }
}

TEST(Injector, AlwaysFalseMetricFailsWhenNeuronsChange)
{
    Network net = makeClassifier(1);
    Tensor x = makeInput(2);
    Injector inj(net, x, NvdlaConfig{});
    Rng rng(5);
    CorrectnessFn never = [](const Tensor &, const Tensor &) {
        return false;
    };
    auto macs = net.macNodes();
    int failures = 0;
    for (int i = 0; i < 30; ++i) {
        InjectionRecord rec =
            inj.inject(macs[0], FFCategory::OutputPsum, never, rng);
        if (rec.numFaultyNeurons > 0)
            EXPECT_FALSE(rec.masked);
        failures += !rec.masked;
    }
    EXPECT_GT(failures, 0);
}

TEST(Injector, RecordsNeuronCountAndDelta)
{
    Network net = makeClassifier(1);
    Tensor x = makeInput(2);
    Injector inj(net, x, NvdlaConfig{});
    Rng rng(6);
    auto macs = net.macNodes();
    bool saw_delta = false;
    for (int i = 0; i < 30; ++i) {
        InjectionRecord rec = inj.inject(
            macs[0], FFCategory::PreBufInput, top1Metric(), rng);
        EXPECT_GE(rec.numFaultyNeurons, 0);
        if (rec.numFaultyNeurons > 0 && rec.maxAbsDelta > 0)
            saw_delta = true;
    }
    EXPECT_TRUE(saw_delta);
}

TEST(Injector, Top1DetectsLabelFlips)
{
    Tensor golden(1, 1, 1, 3);
    golden[0] = 0.2f;
    golden[1] = 0.7f;
    golden[2] = 0.1f;
    Tensor same = golden;
    same[1] = 0.6f;
    Tensor flipped = golden;
    flipped[0] = 0.9f;
    EXPECT_TRUE(top1Match(golden, same));
    EXPECT_FALSE(top1Match(golden, flipped));
}

TEST(Injector, Top1IgnoresNanOffTheWinningPosition)
{
    // A NaN at a position that cannot decide top-1 must not flag the
    // fault: the predicted class is unchanged.
    Tensor golden(1, 1, 1, 3);
    golden[1] = 1.0f;
    Tensor faulty = golden;
    faulty[2] = std::numeric_limits<float>::quiet_NaN();
    EXPECT_TRUE(top1Match(golden, faulty));
}

TEST(Injector, Top1RejectsNanDisplacingTheWinner)
{
    Tensor golden(1, 1, 1, 3);
    golden[0] = 0.1f;
    golden[1] = 1.0f;
    golden[2] = 0.5f;
    // The winning score turns NaN: its class can no longer win, the
    // prediction moves to class 2 — an application error.
    Tensor faulty = golden;
    faulty[1] = std::numeric_limits<float>::quiet_NaN();
    EXPECT_FALSE(top1Match(golden, faulty));
}

TEST(Injector, Top1ToleratesGoldenNanAtSameIndex)
{
    // A NaN the golden output already contains is not the fault's
    // doing; matching NaN positions with an unchanged winner pass.
    Tensor golden(1, 1, 1, 3);
    golden[0] = std::numeric_limits<float>::quiet_NaN();
    golden[1] = 1.0f;
    golden[2] = 0.5f;
    Tensor faulty = golden;
    EXPECT_TRUE(top1Match(golden, faulty));
}

TEST(Injector, Top1InfinityOrdersNormally)
{
    Tensor golden(1, 1, 1, 3);
    golden[1] = 1.0f;
    // +inf is a valid, orderable score: it wins top-1 and flips the
    // prediction to class 0.
    Tensor faulty = golden;
    faulty[0] = std::numeric_limits<float>::infinity();
    EXPECT_FALSE(top1Match(golden, faulty));
    // -inf never wins; prediction unchanged.
    Tensor low = golden;
    low[0] = -std::numeric_limits<float>::infinity();
    EXPECT_TRUE(top1Match(golden, low));
}

TEST(Injector, Top1AllNanOutputsCompareEqual)
{
    Tensor golden(1, 1, 1, 2);
    golden[0] = 1.0f;
    golden[1] = 0.0f;
    Tensor all_nan(1, 1, 1, 2);
    all_nan[0] = std::numeric_limits<float>::quiet_NaN();
    all_nan[1] = std::numeric_limits<float>::quiet_NaN();
    // Defined vs undefined prediction: an error.
    EXPECT_FALSE(top1Match(golden, all_nan));
    // Undefined vs undefined: the metric has no basis to differ.
    EXPECT_TRUE(top1Match(all_nan, all_nan));
}

TEST(Injector, BoundValuePreservesNegativeOverflowSign)
{
    const float inf = std::numeric_limits<float>::infinity();
    // Regression: -inf used to saturate to +clamp, silently flipping
    // the sign of negatively overflowed faulty values.
    EXPECT_EQ(boundValue(-inf, 100.0), -100.0f);
    EXPECT_EQ(boundValue(inf, 100.0), 100.0f);
}

TEST(Injector, BoundValueFlushesNanToZero)
{
    EXPECT_EQ(boundValue(std::numeric_limits<float>::quiet_NaN(),
                         100.0),
              0.0f);
}

TEST(Injector, BoundValueSaturatesFiniteValues)
{
    EXPECT_EQ(boundValue(250.0f, 100.0), 100.0f);
    EXPECT_EQ(boundValue(-250.0f, 100.0), -100.0f);
    EXPECT_EQ(boundValue(42.0f, 100.0), 42.0f);
    EXPECT_EQ(boundValue(-42.0f, 100.0), -42.0f);
}

TEST(Injector, DeterministicGivenSeed)
{
    Network net = makeClassifier(1);
    Tensor x = makeInput(2);
    Injector inj(net, x, NvdlaConfig{});
    auto macs = net.macNodes();
    Rng a(9), b(9);
    for (int i = 0; i < 10; ++i) {
        InjectionRecord ra =
            inj.inject(macs[1], FFCategory::OperandWeight,
                       top1Metric(), a);
        InjectionRecord rb =
            inj.inject(macs[1], FFCategory::OperandWeight,
                       top1Metric(), b);
        EXPECT_EQ(ra.masked, rb.masked);
        EXPECT_EQ(ra.numFaultyNeurons, rb.numFaultyNeurons);
        EXPECT_EQ(ra.maxAbsDelta, rb.maxAbsDelta);
    }
}

TEST(Naive, MaskingIsHighForSmallFlips)
{
    Network net = makeClassifier(1);
    Tensor x = makeInput(2);
    Injector inj(net, x, NvdlaConfig{});
    NaiveInjector naive(inj);
    Rng rng(10);
    Proportion masked;
    for (int i = 0; i < 300; ++i)
        masked.add(naive.inject(top1Metric(), rng));
    // The naive single-bit model masks most faults.
    EXPECT_GT(masked.mean(), 0.5);
}

TEST(Naive, FitFormula)
{
    FitParams p;
    p.nff = 8.0 * 1024.0 * 1024.0; // raw total 600
    EXPECT_NEAR(NaiveInjector::naiveFit(p, 0.99), 6.0, 1e-9);
    EXPECT_NEAR(NaiveInjector::naiveFit(p, 1.0), 0.0, 1e-12);
}

TEST(Naive, UnderestimatesAgainstGlobalAwareModel)
{
    // Even a perfect-masking FIdelity estimate keeps the global
    // 11.3% always-failure share, which the naive model misses when
    // its masking probability is high.
    FitParams p;
    LayerFitInput l;
    l.execTime = 1.0;
    for (std::size_t c = 0; c < allFFCategories().size(); ++c)
        l.stats[c].probSwMask = 0.99;
    auto gidx = static_cast<std::size_t>(FFCategory::GlobalControl);
    l.stats[gidx].probSwMask = 0.0;
    FitBreakdown fidelity_fit = acceleratorFit(p, {l});
    double naive_fit = NaiveInjector::naiveFit(p, 0.99);
    EXPECT_GT(fidelity_fit.total() / naive_fit, 5.0);
}
