/**
 * @file
 * Differential suite for Algorithm 1 (Reuse Factor Analysis).
 *
 * Property-based check: analyzeReuseFactor's RF / faulty-neuron
 * locations / generation timestamps are compared against an
 * independent brute-force cycle-level enumerator on hundreds of
 * randomized small FF descriptors (variable type x pipeline stage x
 * hold cycles x consumer fan-out).  The enumerator shares no code or
 * data structure with the implementation under test: it flattens the
 * descriptor into a cycle-ordered event list and reconstructs the
 * unique-neuron set with ordered maps and an explicit sort, where the
 * implementation appends via linear duplicate scans.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "core/reuse_factor.hh"
#include "sim/rng.hh"

using namespace fidelity;

namespace
{

/** Brute-force re-derivation of Algorithm 1's output. */
RFResult
bruteForceRF(const FFDescriptor &ff)
{
    // Step 1: flatten into the cycle-ordered event list the hardware
    // would actually produce: loop-major, then unit, then in-effect
    // cycle, then the unit's neuron list of that cycle.
    std::vector<std::pair<NeuronIndex, int>> events; // (neuron, loop)
    for (int l = 0; l < ff.ffValueCycles; ++l)
        for (const ComputeUnitUse &use : ff.loops[l])
            for (const auto &cycle_neurons : use.neurons)
                for (const NeuronIndex &n : cycle_neurons)
                    events.emplace_back(n, l);

    // Step 2: first generation of each unique neuron via ordered maps
    // (NeuronIndex::operator< keys), then sort the unique set back
    // into first-generation order.
    std::map<NeuronIndex, int> first_loop;
    std::map<NeuronIndex, std::size_t> first_event;
    for (std::size_t i = 0; i < events.size(); ++i) {
        const auto &[n, l] = events[i];
        if (!first_loop.count(n)) {
            first_loop.emplace(n, l);
            first_event.emplace(n, i);
        }
    }

    std::vector<std::pair<std::size_t, TimedNeuron>> ordered;
    ordered.reserve(first_loop.size());
    for (const auto &[n, l] : first_loop)
        ordered.push_back({first_event.at(n), TimedNeuron{n, l}});
    std::sort(ordered.begin(), ordered.end(),
              [](const auto &a, const auto &b) {
                  return a.first < b.first;
              });

    RFResult out;
    for (const auto &[pos, tn] : ordered)
        out.faultyNeurons.push_back(tn);
    out.rf = static_cast<int>(out.faultyNeurons.size());
    return out;
}

/**
 * Randomized small descriptor: 1-4 hold cycles, 0-3 consumers per
 * loop, 0-3 in-effect cycles each, 0-4 neurons per cycle drawn from a
 * tiny coordinate space so duplicate generation (the thing Algorithm 1
 * must dedup) is common.
 */
FFDescriptor
randomDescriptor(Rng &rng)
{
    FFDescriptor ff;
    ff.type = static_cast<VarType>(rng.below(5));
    ff.stage = static_cast<PipelineStage>(rng.below(4));
    ff.ffValueCycles = 1 + static_cast<int>(rng.below(4));
    ff.loops.resize(static_cast<std::size_t>(ff.ffValueCycles));
    for (auto &loop : ff.loops) {
        const std::uint32_t units = rng.below(4);
        for (std::uint32_t u = 0; u < units; ++u) {
            ComputeUnitUse use;
            use.unit = static_cast<int>(u);
            const std::uint32_t cycles = rng.below(4);
            for (std::uint32_t y = 0; y < cycles; ++y) {
                std::vector<NeuronIndex> cycle;
                const std::uint32_t count = rng.below(5);
                for (std::uint32_t k = 0; k < count; ++k) {
                    NeuronIndex n;
                    n.n = 0;
                    n.h = static_cast<int>(rng.below(3));
                    n.w = static_cast<int>(rng.below(3));
                    n.c = static_cast<int>(rng.below(4));
                    cycle.push_back(n);
                }
                use.neurons.push_back(std::move(cycle));
            }
            loop.push_back(std::move(use));
        }
    }
    return ff;
}

/** All suffix sets sampleFaultyNeurons may legally return. */
std::vector<std::vector<NeuronIndex>>
possibleSampleSets(const FFDescriptor &ff, const RFResult &rf)
{
    std::vector<std::vector<NeuronIndex>> sets;
    for (int p = 0; p < ff.ffValueCycles; ++p) {
        std::vector<NeuronIndex> s;
        for (const TimedNeuron &t : rf.faultyNeurons)
            if (t.timestamp >= p)
                s.push_back(t.neuron);
        sets.push_back(std::move(s));
    }
    return sets;
}

} // namespace

TEST(ReuseFactorDiff, MatchesBruteForceOn600RandomDescriptors)
{
    int nonzero_rf = 0, dedup_hit = 0;
    for (int c = 0; c < 600; ++c) {
        Rng rng(1000 + static_cast<std::uint64_t>(c));
        FFDescriptor ff = randomDescriptor(rng);
        RFResult got = analyzeReuseFactor(ff);
        RFResult want = bruteForceRF(ff);

        ASSERT_EQ(got.rf, want.rf) << "case " << c;
        ASSERT_EQ(got.faultyNeurons.size(), want.faultyNeurons.size())
            << "case " << c;
        for (std::size_t i = 0; i < want.faultyNeurons.size(); ++i) {
            EXPECT_EQ(got.faultyNeurons[i], want.faultyNeurons[i])
                << "case " << c << " neuron " << i;
        }

        // Structural properties of Algorithm 1's output.
        std::size_t event_count = 0;
        for (const auto &loop : ff.loops)
            for (const ComputeUnitUse &use : loop)
                for (const auto &cyc : use.neurons)
                    event_count += cyc.size();
        EXPECT_LE(static_cast<std::size_t>(got.rf), event_count);
        for (std::size_t i = 1; i < got.faultyNeurons.size(); ++i) {
            // First-generation timestamps follow loop order.
            EXPECT_LE(got.faultyNeurons[i - 1].timestamp,
                      got.faultyNeurons[i].timestamp);
        }
        for (const TimedNeuron &t : got.faultyNeurons) {
            EXPECT_GE(t.timestamp, 0);
            EXPECT_LT(t.timestamp, ff.ffValueCycles);
        }

        if (got.rf > 0)
            ++nonzero_rf;
        if (static_cast<std::size_t>(got.rf) < event_count)
            ++dedup_hit;
    }
    // The generator must actually exercise the interesting region:
    // most cases produce faulty neurons, and duplicate generation
    // (the dedup path) occurs in a sizable fraction.
    EXPECT_GT(nonzero_rf, 400);
    EXPECT_GT(dedup_hit, 200);
}

TEST(ReuseFactorDiff, SampledNeuronsAreALegalSuffixSet)
{
    for (int c = 0; c < 200; ++c) {
        Rng gen(5000 + static_cast<std::uint64_t>(c));
        FFDescriptor ff = randomDescriptor(gen);
        RFResult rf = analyzeReuseFactor(ff);
        auto legal = possibleSampleSets(ff, rf);

        Rng sampler(77 + static_cast<std::uint64_t>(c));
        for (int draw = 0; draw < 4; ++draw) {
            std::vector<NeuronIndex> got =
                sampleFaultyNeurons(ff, rf, sampler);
            bool matched = false;
            for (const auto &s : legal)
                if (s == got) {
                    matched = true;
                    break;
                }
            EXPECT_TRUE(matched)
                << "case " << c << " draw " << draw
                << " returned a set no injection phase can produce";
        }
    }
}

TEST(ReuseFactorDiff, EmptyDescriptorsYieldRFZero)
{
    FFDescriptor ff;
    ff.ffValueCycles = 3;
    ff.loops.resize(3); // no compute units at all
    RFResult got = analyzeReuseFactor(ff);
    RFResult want = bruteForceRF(ff);
    EXPECT_EQ(got.rf, 0);
    EXPECT_EQ(want.rf, 0);
    EXPECT_TRUE(got.faultyNeurons.empty());
}

TEST(ReuseFactorDiff, FullyDuplicateFanOutCollapsesToOneNeuron)
{
    // Every unit on every cycle of every loop produces the same
    // neuron; RF must collapse to 1 with timestamp 0.
    FFDescriptor ff;
    ff.ffValueCycles = 4;
    ff.loops.resize(4);
    NeuronIndex n{0, 1, 2, 3};
    for (auto &loop : ff.loops) {
        for (int u = 0; u < 3; ++u) {
            ComputeUnitUse use;
            use.unit = u;
            use.neurons = {{n, n}, {n}};
            loop.push_back(use);
        }
    }
    RFResult got = analyzeReuseFactor(ff);
    ASSERT_EQ(got.rf, 1);
    EXPECT_EQ(got.faultyNeurons[0].neuron, n);
    EXPECT_EQ(got.faultyNeurons[0].timestamp, 0);
    RFResult want = bruteForceRF(ff);
    EXPECT_EQ(want.rf, 1);
    EXPECT_EQ(want.faultyNeurons[0], got.faultyNeurons[0]);
}
