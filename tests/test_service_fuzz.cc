/**
 * @file
 * Deterministic fuzz battery for every byte-level parser a service
 * peer can reach: the frame decoder, the typed payload parsers, the
 * FIDCKPT journal decoder, and the request JSON parser.  Seeded
 * splitmix64 mutations over valid inputs, a fixed iteration budget —
 * the same bytes every run, so a failure reproduces by seed.  The
 * assertions are weak on purpose (diagnostics non-empty, consumption
 * sane); the real oracle is the sanitizer pair (ASan+LSan, UBSan)
 * these tests run under in CI: no parser may crash, leak, overflow,
 * or allocate from attacker-declared lengths on ANY input.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/checkpoint.hh"
#include "sim/parse.hh"
#include "sim/service.hh"
#include "sim/service_proto.hh"

using namespace fidelity;

namespace
{

/** splitmix64: tiny, seedable, and good enough to mangle bytes. */
class Mutator
{
  public:
    explicit Mutator(std::uint64_t seed) : state_(seed) {}

    std::uint64_t
    next()
    {
        std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    std::size_t
    below(std::size_t n)
    {
        return static_cast<std::size_t>(next() % n);
    }

    /** Mangle `bytes` in place: xor/overwrite/truncate/insert. */
    void
    mutate(std::string &bytes)
    {
        const int edits = 1 + static_cast<int>(below(8));
        for (int e = 0; e < edits && !bytes.empty(); ++e) {
            switch (below(4)) {
            case 0: // flip bits of one byte
                bytes[below(bytes.size())] ^=
                    static_cast<char>(next() & 0xff);
                break;
            case 1: // overwrite one byte
                bytes[below(bytes.size())] =
                    static_cast<char>(next() & 0xff);
                break;
            case 2: // truncate to a prefix
                bytes.resize(below(bytes.size() + 1));
                break;
            case 3: // insert one byte
                bytes.insert(bytes.begin() +
                                 static_cast<std::ptrdiff_t>(
                                     below(bytes.size() + 1)),
                             static_cast<char>(next() & 0xff));
                break;
            }
        }
    }

  private:
    std::uint64_t state_;
};

/** A journal with enough structure to make corruption interesting. */
std::string
referenceJournalBytes()
{
    CampaignSnapshot snap;
    snap.configHash = 0x0123456789abcdefULL;
    for (std::uint64_t i = 0; i < 4; ++i) {
        ShardRecord r;
        r.ordinal = i;
        r.cell = i / 2;
        r.maskedCount = i;
        r.trials = i + 3;
        if (i % 2 == 1)
            r.samples = {{0.5 * static_cast<double>(i), true},
                         {1.5, false}};
        snap.shards.push_back(std::move(r));
    }
    return encodeSnapshot(snap);
}

/** A valid conversation's worth of frames, concatenated. */
std::string
referenceStream()
{
    std::string s;
    s += encodeHello({kServiceProtocolVersion, "fuzz-worker", 2});
    s += encodeSpec({0xfeedfaceULL, serviceRequestJson({})});
    s += encodeReady({0xfeedfaceULL});
    s += encodeLease({0, 8});
    s += encodeResult({0, 4, referenceJournalBytes()});
    s += encodeHeartbeat();
    s += encodeRequest("{\"network\": \"resnet\", \"seed\": 3}");
    s += encodeResponse("{\"status\": \"ok\"}");
    s += encodeErrorFrame("boom");
    s += encodeDrain();
    s += encodeDone();
    return s;
}

/** The payload of one framed byte string (for direct-parser fuzz). */
std::string
framePayload(const std::string &framed)
{
    Frame f;
    std::size_t consumed = 0;
    std::string err;
    EXPECT_EQ(tryDecodeFrame(framed, f, consumed, err),
              FrameDecodeStatus::Complete)
        << err;
    return f.payload;
}

/**
 * Consume a (possibly mangled) byte stream exactly the way a service
 * peer would: frame by frame, dispatching each complete frame to its
 * typed parser, and journals to the FIDCKPT decoder.  Returns the
 * number of complete frames survived (an anchor, so the harness
 * can't silently rot into consuming nothing).
 */
std::size_t
consumeStream(const std::string &stream)
{
    std::string_view rest = stream;
    std::size_t frames = 0;
    for (;;) {
        Frame f;
        std::size_t consumed = 0;
        std::string err;
        switch (tryDecodeFrame(rest, f, consumed, err)) {
        case FrameDecodeStatus::NeedMore:
            return frames; // torn tail: a real peer would keep reading
        case FrameDecodeStatus::Malformed:
            EXPECT_FALSE(err.empty());
            return frames; // a real peer drops the connection
        case FrameDecodeStatus::Complete:
            break;
        }
        EXPECT_GT(consumed, 0u);
        EXPECT_LE(consumed, rest.size());
        rest.remove_prefix(consumed);
        ++frames;

        std::string text;
        switch (f.type) {
        case FrameType::Hello: {
            HelloPayload p;
            if (!tryParseHello(f, p, err)) {
                EXPECT_FALSE(err.empty());
            }
            break;
        }
        case FrameType::Spec: {
            SpecPayload p;
            if (tryParseSpec(f, p, err)) {
                ServiceRequest req;
                if (!tryParseServiceRequest(p.requestJson, req,
                                            err)) {
                    EXPECT_FALSE(err.empty());
                }
            }
            break;
        }
        case FrameType::Ready: {
            ReadyPayload p;
            if (!tryParseReady(f, p, err)) {
                EXPECT_FALSE(err.empty());
            }
            break;
        }
        case FrameType::Lease: {
            LeasePayload p;
            if (!tryParseLease(f, p, err)) {
                EXPECT_FALSE(err.empty());
            }
            break;
        }
        case FrameType::Result: {
            ResultPayload p;
            if (tryParseResult(f, p, err)) {
                CampaignSnapshot snap;
                if (!tryDecodeSnapshot(p.journal.data(),
                                       p.journal.size(),
                                       "fuzzed RESULT journal", snap,
                                       err)) {
                    EXPECT_FALSE(err.empty());
                }
            }
            break;
        }
        case FrameType::Request:
        case FrameType::Response:
        case FrameType::Error:
            if (!tryParseText(f, f.type, text, err)) {
                EXPECT_FALSE(err.empty());
            }
            break;
        case FrameType::Heartbeat:
        case FrameType::Done:
        case FrameType::Drain:
            break;
        }
    }
}

} // namespace

TEST(ServiceFuzz, PristineStreamParsesCompletely)
{
    // The anchor: an unmangled stream yields every frame, so the
    // mutation loops below demonstrably start from valid input.
    EXPECT_EQ(consumeStream(referenceStream()), 11u);
}

TEST(ServiceFuzz, MutatedFrameStreamsNeverCrashTheDecoders)
{
    const std::string pristine = referenceStream();
    Mutator rng(0x5eedf00dULL);
    for (int i = 0; i < 1500; ++i) {
        std::string mangled = pristine;
        rng.mutate(mangled);
        (void)consumeStream(mangled);
    }
}

TEST(ServiceFuzz, RandomBytesNeverCrashTheDecoders)
{
    // Pure noise, no valid scaffolding at all.
    Mutator rng(0xba5eba11ULL);
    for (int i = 0; i < 500; ++i) {
        std::string noise(rng.below(512), '\0');
        for (char &c : noise)
            c = static_cast<char>(rng.next() & 0xff);
        (void)consumeStream(noise);
    }
}

TEST(ServiceFuzz, MutatedPayloadsNeverCrashTheTypedParsers)
{
    // Drive each typed parser directly with mangled payloads — the
    // frame layer's length cap must not be the only line of defense.
    const std::vector<std::string> payload_seeds = {
        framePayload(encodeHello({kServiceProtocolVersion, "w", 1})),
        framePayload(encodeSpec({1, serviceRequestJson({})})),
        framePayload(encodeReady({1})),
        framePayload(encodeLease({0, 8})),
        framePayload(encodeResult({0, 4, referenceJournalBytes()})),
    };
    const std::vector<FrameType> types = {
        FrameType::Hello, FrameType::Spec, FrameType::Ready,
        FrameType::Lease, FrameType::Result};

    Mutator rng(0xdecafbadULL);
    for (int i = 0; i < 1500; ++i) {
        const std::size_t which = rng.below(payload_seeds.size());
        Frame f;
        f.type = types[which];
        f.payload = payload_seeds[which];
        rng.mutate(f.payload);

        std::string err;
        HelloPayload hello;
        SpecPayload spec;
        ReadyPayload ready;
        LeasePayload lease;
        ResultPayload result;
        switch (f.type) {
        case FrameType::Hello:
            (void)tryParseHello(f, hello, err);
            break;
        case FrameType::Spec:
            (void)tryParseSpec(f, spec, err);
            break;
        case FrameType::Ready:
            (void)tryParseReady(f, ready, err);
            break;
        case FrameType::Lease:
            (void)tryParseLease(f, lease, err);
            break;
        default:
            if (tryParseResult(f, result, err)) {
                CampaignSnapshot snap;
                (void)tryDecodeSnapshot(result.journal.data(),
                                        result.journal.size(),
                                        "fuzzed journal", snap, err);
            }
            break;
        }
    }
}

TEST(ServiceFuzz, MutatedJournalsNeverCrashTheSnapshotDecoder)
{
    const std::string pristine = referenceJournalBytes();
    Mutator rng(0xfeedbea7ULL);
    for (int i = 0; i < 1500; ++i) {
        std::string mangled = pristine;
        rng.mutate(mangled);
        CampaignSnapshot snap;
        std::string err;
        if (!tryDecodeSnapshot(mangled.data(), mangled.size(),
                               "fuzzed journal", snap, err)) {
            EXPECT_FALSE(err.empty());
        }
    }
}

TEST(ServiceFuzz, MutatedRequestJsonNeverCrashesTheRequestParser)
{
    ServiceRequest seed;
    seed.network = "rnn";
    seed.metric = "bleu10";
    seed.samplesPerCategory = 12;
    const std::string pristine = serviceRequestJson(seed);

    Mutator rng(0x0ddba11ULL);
    for (int i = 0; i < 2000; ++i) {
        std::string mangled = pristine;
        rng.mutate(mangled);
        ServiceRequest req;
        std::string err;
        if (!tryParseServiceRequest(mangled, req, err)) {
            EXPECT_FALSE(err.empty());
        } else {
            // Whatever survived must re-render and re-parse: the
            // accepted subset of the grammar is closed.
            ServiceRequest again;
            EXPECT_TRUE(tryParseServiceRequest(
                serviceRequestJson(req), again, err))
                << err;
        }
    }
}
