/**
 * @file
 * Tests of the activeness analysis (Eq. 1) and the FIT computation
 * (Eq. 2).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/activeness.hh"
#include "core/fit.hh"

using namespace fidelity;

namespace
{

LayerTiming
timing(std::uint64_t fetch, std::uint64_t mac, std::uint64_t drain)
{
    LayerTiming t;
    t.fetchCycles = fetch;
    t.macCycles = mac;
    t.drainCycles = drain;
    t.totalCycles = fetch + mac + drain;
    return t;
}

} // namespace

TEST(Activeness, ClassFractionsSumToOne)
{
    ActivenessModel am;
    for (FFCategory cat : allFFCategories()) {
        for (Precision p : {Precision::FP16, Precision::INT8}) {
            double sum =
                am.classFraction(cat, InactiveClass::ComponentNotUsed,
                                 p) +
                am.classFraction(cat, InactiveClass::SignalNotUsed, p) +
                am.classFraction(cat, InactiveClass::TemporallyNotUsed,
                                 p);
            EXPECT_NEAR(sum, 1.0, 1e-12)
                << ffCategoryName(cat) << " " << precisionName(p);
        }
    }
}

TEST(Activeness, GlobalControlAlwaysActive)
{
    ActivenessModel am;
    LayerTiming t = timing(100, 100, 100);
    EXPECT_DOUBLE_EQ(
        am.probInactive(FFCategory::GlobalControl, Precision::FP16, t),
        0.0);
}

TEST(Activeness, FetchBoundLayerIdlesMacFFs)
{
    ActivenessModel am;
    am.componentUnusedFrac = 0.0;
    LayerTiming fetch_bound = timing(900, 90, 10);
    LayerTiming compute_bound = timing(10, 900, 90);
    double idle_fetch_bound = am.probInactive(
        FFCategory::OperandInput, Precision::FP16, fetch_bound);
    double idle_compute_bound = am.probInactive(
        FFCategory::OperandInput, Precision::FP16, compute_bound);
    EXPECT_GT(idle_fetch_bound, idle_compute_bound);
}

TEST(Activeness, Eq1HandComputed)
{
    ActivenessModel am;
    am.componentUnusedFrac = 0.1;
    // FP16 -> otherModeFrac = 0.15; PreBufInput temporal inactivity
    // = 1 - fetch fraction = 1 - 0.25 = 0.75.
    LayerTiming t = timing(250, 650, 100);
    double want = 0.1 * 1.0 + 0.15 * 1.0 + (1.0 - 0.25) * 0.75;
    EXPECT_NEAR(am.probInactive(FFCategory::PreBufInput,
                                Precision::FP16, t),
                want, 1e-12);
}

TEST(Activeness, IntegerModeIdlesMoreDatapath)
{
    ActivenessModel am;
    LayerTiming t = timing(100, 800, 100);
    double fp = am.probInactive(FFCategory::OperandWeight,
                                Precision::FP16, t);
    double i8 = am.probInactive(FFCategory::OperandWeight,
                                Precision::INT8, t);
    EXPECT_GT(i8, fp);
}

TEST(Activeness, ProbabilityIsClamped)
{
    ActivenessModel am;
    am.componentUnusedFrac = 0.9;
    LayerTiming t = timing(1000, 0, 0);
    for (FFCategory cat : allFFCategories()) {
        double p = am.probInactive(cat, Precision::INT8, t);
        EXPECT_GE(p, 0.0);
        EXPECT_LE(p, 1.0);
    }
}

TEST(Fit, RawTotalMatchesHandComputation)
{
    FitParams p;
    p.rawFitPerMb = 600.0;
    p.nff = 8.0 * 1024.0 * 1024.0; // exactly 1 MB of FFs
    EXPECT_NEAR(p.rawFitTotal(), 600.0, 1e-9);
}

TEST(Fit, Eq2HandComputedSingleLayer)
{
    FitParams p;
    p.rawFitPerMb = 600.0;
    p.nff = 8.0 * 1024.0 * 1024.0; // raw total = 600

    LayerFitInput l;
    l.execTime = 100.0;
    // Make everything masked except global control.
    for (std::size_t c = 0; c < allFFCategories().size(); ++c) {
        l.stats[c].probInactive = 0.0;
        l.stats[c].probSwMask = 1.0;
    }
    auto gidx = static_cast<std::size_t>(FFCategory::GlobalControl);
    l.stats[gidx].probSwMask = 0.0;

    FitBreakdown fit = acceleratorFit(p, {l});
    EXPECT_NEAR(fit.global, 600.0 * 0.113, 1e-9);
    EXPECT_NEAR(fit.datapath, 0.0, 1e-12);
    EXPECT_NEAR(fit.local, 0.0, 1e-12);
}

TEST(Fit, ExecTimeWeighting)
{
    FitParams p;
    p.nff = 8.0 * 1024.0 * 1024.0;

    LayerFitInput masked, unmasked;
    masked.execTime = 900.0;
    unmasked.execTime = 100.0;
    for (std::size_t c = 0; c < allFFCategories().size(); ++c) {
        masked.stats[c].probSwMask = 1.0;
        unmasked.stats[c].probSwMask = 0.0;
    }
    auto gidx = static_cast<std::size_t>(FFCategory::GlobalControl);
    masked.stats[gidx].probSwMask = 0.0;
    // The masked layer dominates execution: its global contribution is
    // weighted 0.9, the unmasked layer's full contribution 0.1.
    FitBreakdown fit = acceleratorFit(p, {masked, unmasked});
    EXPECT_NEAR(fit.global, 600.0 * 0.113, 1e-9);
    EXPECT_NEAR(fit.total(),
                600.0 * 0.113 * 0.9 + 600.0 * 0.1 + 600.0 * 0.113 * 0.1 -
                    600.0 * 0.113 * 0.1,
                1e-9);
}

TEST(Fit, InactivityReducesFit)
{
    FitParams p;
    LayerFitInput l;
    l.execTime = 1.0;
    FitBreakdown base = acceleratorFit(p, {l});
    for (auto &s : l.stats)
        s.probInactive = 0.5;
    FitBreakdown halved = acceleratorFit(p, {l});
    EXPECT_NEAR(halved.total(), base.total() * 0.5, 1e-9);
}

TEST(Fit, MaskingReducesFit)
{
    FitParams p;
    LayerFitInput l;
    l.execTime = 1.0;
    FitBreakdown base = acceleratorFit(p, {l});
    for (auto &s : l.stats)
        s.probSwMask = 0.9;
    FitBreakdown masked = acceleratorFit(p, {l});
    EXPECT_NEAR(masked.total(), base.total() * 0.1, 1e-9);
}

TEST(Fit, ProtectGlobalZeroesGlobalShare)
{
    FitParams p;
    LayerFitInput l;
    l.execTime = 1.0;
    FitBreakdown base = acceleratorFit(p, {l});
    FitParams prot = p;
    prot.protectGlobal = true;
    FitBreakdown protected_fit = acceleratorFit(prot, {l});
    EXPECT_DOUBLE_EQ(protected_fit.global, 0.0);
    EXPECT_NEAR(protected_fit.datapath, base.datapath, 1e-12);
    EXPECT_NEAR(protected_fit.local, base.local, 1e-12);
}

TEST(Fit, BreakdownSumsToTotal)
{
    FitParams p;
    LayerFitInput l;
    l.execTime = 2.0;
    for (std::size_t c = 0; c < allFFCategories().size(); ++c)
        l.stats[c].probSwMask = 0.3 + 0.05 * c;
    FitBreakdown fit = acceleratorFit(p, {l});
    EXPECT_NEAR(fit.total(), fit.datapath + fit.local + fit.global,
                1e-12);
    EXPECT_GT(fit.datapath, 0.0);
    EXPECT_GT(fit.local, 0.0);
    EXPECT_GT(fit.global, 0.0);
}

TEST(FitDeath, RequiresLayers)
{
    FitParams p;
    EXPECT_DEATH((void)acceleratorFit(p, {}), "at least one layer");
}
