/**
 * @file
 * The distributed-service protocol battery: frame round-trips, torn
 * and malformed frames, typed-payload truncation at every field
 * boundary, lease-book state machine (injected clocks), duplicate
 * RESULT idempotence, corrupt RESULT journals (every exit through
 * fatal() with the peer named, never bad_alloc), and the checked
 * request parser the daemon relies on to survive malformed requests.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/campaign.hh"
#include "sim/checkpoint.hh"
#include "sim/logging.hh"
#include "sim/parse.hh"
#include "sim/service.hh"
#include "sim/service_proto.hh"

using namespace fidelity;

namespace
{

/** Decode exactly one complete frame or fail the test. */
Frame
decodeOne(const std::string &bytes)
{
    Frame f;
    std::size_t consumed = 0;
    std::string err;
    EXPECT_EQ(tryDecodeFrame(bytes, f, consumed, err),
              FrameDecodeStatus::Complete)
        << err;
    EXPECT_EQ(consumed, bytes.size());
    return f;
}

/** A two-shard journal exercising every FIDCKPT field kind. */
CampaignSnapshot
referenceJournal()
{
    CampaignSnapshot snap;
    snap.configHash = 0x0123456789abcdefULL;
    ShardRecord a;
    a.ordinal = 0;
    a.cell = 1;
    a.maskedCount = 2;
    a.trials = 4;
    ShardRecord b;
    b.ordinal = 1;
    b.cell = 2;
    b.maskedCount = 1;
    b.trials = 3;
    b.samples = {{0.25, true}, {3.5, false}};
    snap.shards = {a, b};
    return snap;
}

} // namespace

// ----- Frame round-trips -------------------------------------------

TEST(ServiceProto, HelloRoundTrips)
{
    HelloPayload in;
    in.version = kServiceProtocolVersion;
    in.worker = "worker-7";
    in.threads = 3;

    Frame f = decodeOne(encodeHello(in));
    EXPECT_EQ(f.type, FrameType::Hello);

    HelloPayload out;
    std::string err;
    ASSERT_TRUE(tryParseHello(f, out, err)) << err;
    EXPECT_EQ(out.version, in.version);
    EXPECT_EQ(out.worker, "worker-7");
    EXPECT_EQ(out.threads, 3u);
}

TEST(ServiceProto, SpecRoundTrips)
{
    SpecPayload in;
    in.configHash = 0xfeedfacecafebeefULL;
    in.requestJson = "{\"network\": \"resnet\"}";

    SpecPayload out;
    std::string err;
    ASSERT_TRUE(tryParseSpec(decodeOne(encodeSpec(in)), out, err)) << err;
    EXPECT_EQ(out.configHash, in.configHash);
    EXPECT_EQ(out.requestJson, in.requestJson);
}

TEST(ServiceProto, ReadyLeaseRoundTrip)
{
    ReadyPayload ready;
    ready.configHash = 42;
    ReadyPayload rout;
    std::string err;
    ASSERT_TRUE(
        tryParseReady(decodeOne(encodeReady(ready)), rout, err)) << err;
    EXPECT_EQ(rout.configHash, 42u);

    LeasePayload lease;
    lease.first = 16;
    lease.count = 8;
    LeasePayload lout;
    ASSERT_TRUE(
        tryParseLease(decodeOne(encodeLease(lease)), lout, err)) << err;
    EXPECT_EQ(lout.first, 16u);
    EXPECT_EQ(lout.count, 8u);
}

TEST(ServiceProto, ResultCarriesAJournalByteForByte)
{
    ResultPayload in;
    in.first = 24;
    in.count = 8;
    in.journal = encodeSnapshot(referenceJournal());

    ResultPayload out;
    std::string err;
    ASSERT_TRUE(
        tryParseResult(decodeOne(encodeResult(in)), out, err)) << err;
    EXPECT_EQ(out.first, 24u);
    EXPECT_EQ(out.count, 8u);
    EXPECT_EQ(out.journal, in.journal);

    // The carried journal is decodable FIDCKPT, bit-for-bit.
    CampaignSnapshot snap =
        decodeSnapshot(out.journal, "RESULT journal from worker-1");
    EXPECT_EQ(snap.configHash, referenceJournal().configHash);
    ASSERT_EQ(snap.shards.size(), 2u);
    EXPECT_EQ(snap.shards[1].samples.size(), 2u);
}

TEST(ServiceProto, BareFramesRoundTrip)
{
    EXPECT_EQ(decodeOne(encodeHeartbeat()).type, FrameType::Heartbeat);
    EXPECT_EQ(decodeOne(encodeDone()).type, FrameType::Done);
    EXPECT_EQ(decodeOne(encodeDrain()).type, FrameType::Drain);
    EXPECT_TRUE(decodeOne(encodeDone()).payload.empty());
}

TEST(ServiceProto, TextFramesRoundTrip)
{
    std::string text, err;
    ASSERT_TRUE(tryParseText(decodeOne(encodeRequest("{\"a\": 1}")),
                             FrameType::Request, text, err)) << err;
    EXPECT_EQ(text, "{\"a\": 1}");
    ASSERT_TRUE(tryParseText(decodeOne(encodeResponse("ok")),
                             FrameType::Response, text, err)) << err;
    EXPECT_EQ(text, "ok");
    ASSERT_TRUE(tryParseText(decodeOne(encodeErrorFrame("boom")),
                             FrameType::Error, text, err)) << err;
    EXPECT_EQ(text, "boom");
}

TEST(ServiceProto, StreamOfFramesDecodesInOrder)
{
    const std::string stream = encodeHeartbeat() +
                               encodeLease({4, 4}) + encodeDone();
    std::string_view rest = stream;
    std::vector<FrameType> seen;
    while (!rest.empty()) {
        Frame f;
        std::size_t consumed = 0;
        std::string err;
        ASSERT_EQ(tryDecodeFrame(rest, f, consumed, err),
                  FrameDecodeStatus::Complete)
            << err;
        seen.push_back(f.type);
        rest.remove_prefix(consumed);
    }
    EXPECT_EQ(seen, (std::vector<FrameType>{FrameType::Heartbeat,
                                            FrameType::Lease,
                                            FrameType::Done}));
}

// ----- Torn, truncated, and malformed frames -----------------------

TEST(ServiceProto, EveryTornPrefixAsksForMoreBytes)
{
    const std::string whole = encodeResult(
        {0, 8, encodeSnapshot(referenceJournal())});
    for (std::size_t cut = 0; cut < whole.size(); ++cut) {
        SCOPED_TRACE("prefix of " + std::to_string(cut) + " bytes");
        Frame f;
        std::size_t consumed = 0;
        std::string err;
        EXPECT_EQ(tryDecodeFrame(whole.substr(0, cut), f, consumed, err),
                  FrameDecodeStatus::NeedMore);
    }
}

TEST(ServiceProto, ZeroLengthFrameIsMalformed)
{
    const std::string bytes(4, '\0'); // length word = 0
    Frame f;
    std::size_t consumed = 0;
    std::string err;
    EXPECT_EQ(tryDecodeFrame(bytes, f, consumed, err),
              FrameDecodeStatus::Malformed);
    EXPECT_NE(err.find("zero length"), std::string::npos) << err;
}

TEST(ServiceProto, OversizedLengthIsMalformedNotAllocated)
{
    // A length just above the cap must be rejected from the 4-byte
    // prefix alone — no waiting for (and no allocating) 4 GB.
    std::string bytes(4, '\0');
    const std::uint32_t huge = kMaxFrameBytes + 1;
    std::memcpy(&bytes[0], &huge, sizeof(huge));
    Frame f;
    std::size_t consumed = 0;
    std::string err;
    EXPECT_EQ(tryDecodeFrame(bytes, f, consumed, err),
              FrameDecodeStatus::Malformed);
    EXPECT_NE(err.find("frame cap"), std::string::npos) << err;
}

TEST(ServiceProto, UnknownFrameTypeIsMalformed)
{
    std::string bytes = encodeHeartbeat();
    bytes[4] = static_cast<char>(0x7f); // off the FrameType enum
    Frame f;
    std::size_t consumed = 0;
    std::string err;
    EXPECT_EQ(tryDecodeFrame(bytes, f, consumed, err),
              FrameDecodeStatus::Malformed);
    EXPECT_NE(err.find("unknown frame type"), std::string::npos) << err;
}

TEST(ServiceProto, OverCapPayloadIsACallerBug)
{
    EXPECT_DEATH((void)encodeFrame(FrameType::Result,
                                   std::string(kMaxFrameBytes, 'x')),
                 "exceeds the .*frame cap");
}

// ----- Typed-payload truncation matrix -----------------------------

TEST(ServiceProto, TypedPayloadsRejectEveryTruncation)
{
    // For each typed frame: cut the payload at every byte boundary
    // short of the whole and expect a diagnostic, never a crash or a
    // silently-defaulted field.
    struct Case
    {
        const char *name;
        std::string framed;
    };
    const std::vector<Case> cases = {
        {"HELLO", encodeHello({1, "w", 2})},
        {"SPEC", encodeSpec({7, "{\"network\": \"resnet\"}"})},
        {"READY", encodeReady({7})},
        {"LEASE", encodeLease({0, 8})},
        {"RESULT",
         encodeResult({0, 4, encodeSnapshot(referenceJournal())})},
    };
    for (const Case &c : cases) {
        Frame whole = decodeOne(c.framed);
        for (std::size_t cut = 0; cut < whole.payload.size(); ++cut) {
            SCOPED_TRACE(std::string(c.name) + " payload cut to " +
                         std::to_string(cut) + " bytes");
            Frame torn = whole;
            torn.payload.resize(cut);
            std::string err;
            bool ok = true;
            if (whole.type == FrameType::Hello) {
                HelloPayload p;
                ok = tryParseHello(torn, p, err);
            } else if (whole.type == FrameType::Spec) {
                SpecPayload p;
                ok = tryParseSpec(torn, p, err);
            } else if (whole.type == FrameType::Ready) {
                ReadyPayload p;
                ok = tryParseReady(torn, p, err);
            } else if (whole.type == FrameType::Lease) {
                LeasePayload p;
                ok = tryParseLease(torn, p, err);
            } else {
                ResultPayload p;
                ok = tryParseResult(torn, p, err);
            }
            EXPECT_FALSE(ok);
            EXPECT_FALSE(err.empty());
        }
    }
}

TEST(ServiceProto, TrailingPayloadBytesAreRejected)
{
    Frame f = decodeOne(encodeLease({0, 8}));
    f.payload.push_back('\0');
    LeasePayload p;
    std::string err;
    EXPECT_FALSE(tryParseLease(f, p, err));
    EXPECT_NE(err.find("trailing payload bytes"), std::string::npos)
        << err;
}

TEST(ServiceProto, WrongFrameTypeNamesBothTypes)
{
    HelloPayload p;
    std::string err;
    EXPECT_FALSE(tryParseHello(decodeOne(encodeDone()), p, err));
    EXPECT_NE(err.find("expected a HELLO frame, got DONE"),
              std::string::npos)
        << err;
}

TEST(ServiceProto, AbsurdStringLengthFailsWithoutAllocating)
{
    // A HELLO whose name declares 2^62 bytes: the reader must bound
    // the declared length by the bytes present, not reserve() it.
    PayloadWriter w;
    w.u64(kServiceProtocolVersion);
    w.u64(1ULL << 62); // string length prefix, no bytes behind it
    Frame f;
    f.type = FrameType::Hello;
    f.payload = w.bytes();
    HelloPayload p;
    std::string err;
    EXPECT_FALSE(tryParseHello(f, p, err));
    EXPECT_FALSE(err.empty());
}

// ----- Lease book ---------------------------------------------------

TEST(LeaseBook, CutsThePlanIntoChunksWithARemainder)
{
    LeaseBook book(21, 8); // chunks [0,8) [8,16) [16,21)
    EXPECT_EQ(book.chunkCount(), 3u);
    std::uint64_t first = 0, count = 0;
    EXPECT_TRUE(book.lease("a", 0.0, 30.0, first, count));
    EXPECT_EQ(first, 0u);
    EXPECT_EQ(count, 8u);
    EXPECT_TRUE(book.lease("a", 0.0, 30.0, first, count));
    EXPECT_EQ(first, 8u);
    EXPECT_TRUE(book.lease("b", 0.0, 30.0, first, count));
    EXPECT_EQ(first, 16u);
    EXPECT_EQ(count, 5u); // the remainder chunk
    EXPECT_FALSE(book.lease("b", 0.0, 30.0, first, count));
}

TEST(LeaseBook, ExpiredLeaseReIssuesToAnotherWorker)
{
    LeaseBook book(8, 8);
    std::uint64_t first = 0, count = 0;
    ASSERT_TRUE(book.lease("slow", 0.0, 10.0, first, count));

    // Within the deadline nothing re-issues...
    EXPECT_FALSE(book.lease("fast", 9.0, 10.0, first, count));
    // ...heartbeats extend it...
    book.heartbeat("slow", 9.0, 10.0);
    EXPECT_FALSE(book.lease("fast", 15.0, 10.0, first, count));
    // ...silence past the deadline re-issues.
    EXPECT_TRUE(book.lease("fast", 20.0, 10.0, first, count));
    EXPECT_EQ(first, 0u);
    EXPECT_EQ(book.expiredLeases(), 1u);
}

TEST(LeaseBook, ReleaseRevertsEveryLeaseOfADeadWorker)
{
    LeaseBook book(16, 4);
    std::uint64_t first = 0, count = 0;
    ASSERT_TRUE(book.lease("w", 0.0, 30.0, first, count));
    ASSERT_TRUE(book.lease("w", 0.0, 30.0, first, count));
    ASSERT_TRUE(book.lease("other", 0.0, 30.0, first, count));
    EXPECT_EQ(book.release("w"), 2u);

    // Both of w's chunks lease again; other's lease is untouched.
    ASSERT_TRUE(book.lease("x", 1.0, 30.0, first, count));
    EXPECT_EQ(first, 0u);
    ASSERT_TRUE(book.lease("x", 1.0, 30.0, first, count));
    EXPECT_EQ(first, 4u);
    ASSERT_TRUE(book.lease("x", 1.0, 30.0, first, count));
    EXPECT_EQ(first, 12u);
}

TEST(LeaseBook, DuplicateResultsAreIdempotent)
{
    LeaseBook book(8, 4);
    std::uint64_t first = 0, count = 0;
    ASSERT_TRUE(book.lease("a", 0.0, 1.0, first, count));

    // First result merges; the duplicate (a slow worker racing a
    // re-issue) is reported as such, not double-merged.
    EXPECT_EQ(book.complete(0, 4), LeaseBook::ResultOutcome::Merged);
    EXPECT_EQ(book.complete(0, 4), LeaseBook::ResultOutcome::Duplicate);
    EXPECT_EQ(book.mergedChunks(), 1u);

    // A result for a chunk whose lease expired still merges (the
    // journal is deterministic; first-to-arrive wins).
    EXPECT_EQ(book.complete(4, 4), LeaseBook::ResultOutcome::Merged);
    EXPECT_TRUE(book.allMerged());

    // Bounds that match no chunk are a protocol violation.
    EXPECT_EQ(book.complete(2, 4), LeaseBook::ResultOutcome::Unknown);
    EXPECT_EQ(book.complete(0, 8), LeaseBook::ResultOutcome::Unknown);
}

TEST(LeaseBook, MarkMergedRestoresCheckpointedChunks)
{
    LeaseBook book(12, 4);
    book.markMerged(0, 4);
    book.markMerged(8, 4);
    EXPECT_EQ(book.mergedChunks(), 2u);

    // Only the middle chunk is still leasable.
    std::uint64_t first = 0, count = 0;
    ASSERT_TRUE(book.lease("w", 0.0, 30.0, first, count));
    EXPECT_EQ(first, 4u);
    EXPECT_FALSE(book.lease("w", 0.0, 30.0, first, count));
}

// ----- Corrupt RESULT journals -------------------------------------
//
// Wire journals go through the same FIDCKPT decoder as on-disk
// checkpoints; every malformed journal must exit through fatal()
// (strict path) or a diagnostic (coordinator path) with the *peer*
// named — never through std::bad_alloc on a corrupt count.

TEST(ServiceJournal, TruncatedAtEveryFieldBoundaryNamesThePeer)
{
    const std::string whole = encodeSnapshot(referenceJournal());
    ASSERT_EQ(whole.size() % 8, 0u);
    for (std::size_t cut = 0; cut < whole.size(); cut += 8) {
        SCOPED_TRACE("journal cut to " + std::to_string(cut) +
                     " bytes");
        const std::string torn = whole.substr(0, cut);
        CampaignSnapshot snap;
        std::string err;
        EXPECT_FALSE(tryDecodeSnapshot(torn.data(), torn.size(),
                                       "RESULT journal from worker-2",
                                       snap, err));
        EXPECT_NE(err.find("RESULT journal from worker-2"),
                  std::string::npos)
            << err;
        EXPECT_DEATH(
            (void)decodeSnapshot(torn, "RESULT journal from worker-2"),
            "RESULT journal from worker-2");
    }
}

TEST(ServiceJournal, AbsurdShardCountIsBoundedByJournalSize)
{
    std::string bad = encodeSnapshot(referenceJournal());
    const std::uint64_t huge = 1ULL << 62; // would reserve() petabytes
    std::memcpy(&bad[16], &huge, sizeof(huge));
    CampaignSnapshot snap;
    std::string err;
    EXPECT_FALSE(tryDecodeSnapshot(bad.data(), bad.size(),
                                   "RESULT journal from worker-2", snap,
                                   err));
    EXPECT_NE(err.find("declares"), std::string::npos) << err;
    EXPECT_DEATH(
        (void)decodeSnapshot(bad, "RESULT journal from worker-2"),
        "declares .* shards but holds only");
}

TEST(ServiceJournal, ForeignBytesAreRejected)
{
    const std::string garbage = "definitely not FIDCKPT";
    EXPECT_DEATH(
        (void)decodeSnapshot(garbage, "RESULT journal from worker-2"),
        "not a fidelity campaign snapshot");
}

// ----- Service requests --------------------------------------------

TEST(ServiceRequestParse, CanonicalJsonRoundTrips)
{
    ServiceRequest in;
    in.network = "rnn";
    in.precision = Precision::INT8;
    in.metric = "bleu10";
    in.netSeed = 5;
    in.inputSeed = 6;
    in.samplesPerCategory = 24;
    in.seed = 99;
    in.shardGrain = 6;
    in.outputClampAbs = 64.0;
    in.targetHalfWidth = 0.0;
    in.threads = 4;
    in.batchWidth = 4;

    ServiceRequest out;
    std::string err;
    ASSERT_TRUE(tryParseServiceRequest(serviceRequestJson(in), out, err))
        << err;
    EXPECT_EQ(out.network, in.network);
    EXPECT_EQ(out.precision, in.precision);
    EXPECT_EQ(out.metric, in.metric);
    EXPECT_EQ(out.netSeed, in.netSeed);
    EXPECT_EQ(out.inputSeed, in.inputSeed);
    EXPECT_EQ(out.samplesPerCategory, in.samplesPerCategory);
    EXPECT_EQ(out.seed, in.seed);
    EXPECT_EQ(out.shardGrain, in.shardGrain);
    EXPECT_EQ(out.outputClampAbs, in.outputClampAbs);
    EXPECT_EQ(out.threads, in.threads);
    EXPECT_EQ(out.batchWidth, in.batchWidth);
}

TEST(ServiceRequestParse, OmittedKeysKeepDefaults)
{
    ServiceRequest req;
    std::string err;
    ASSERT_TRUE(tryParseServiceRequest("{}", req, err)) << err;
    EXPECT_EQ(req.network, "resnet");
    EXPECT_EQ(req.precision, Precision::FP16);
    EXPECT_EQ(req.samplesPerCategory, 120);
}

TEST(ServiceRequestParse, MalformedRequestsReturnErrorsNotDeath)
{
    // The regression the daemon depends on: every malformed request
    // must come back as (false, diagnostic) — the daemon turns that
    // into an ERROR response; a fatal() here would kill the process
    // serving everyone else's campaigns.
    const std::vector<std::pair<std::string, std::string>> cases = {
        {"", "expected '{'"},
        {"not json", "expected"},
        {"{\"network\": \"resnet\"", "" /* unterminated */},
        {"{\"network\": [1, 2]}", "" /* nested value */},
        {"{\"seed\": 1, \"seed\": 2}", "duplicate"},
        {"{\"typo_key\": 1}", "unknown request key \"typo_key\""},
        {"{\"network\": \"vgg9000\"}", "unknown network"},
        {"{\"precision\": \"fp64\"}", "unknown precision"},
        {"{\"metric\": \"rouge\"}", "unknown metric"},
        {"{\"seed\": \"abc\"}", "" /* non-numeric */},
        {"{\"samples_per_category\": 0}", "" /* below range */},
        {"{\"batch_width\": 99}", "" /* above range */},
        {"{\"target_half_width\": \"inf\"}", ""},
    };
    for (const auto &[json, needle] : cases) {
        SCOPED_TRACE("request: " + json);
        ServiceRequest req;
        std::string err;
        EXPECT_FALSE(tryParseServiceRequest(json, req, err));
        EXPECT_FALSE(err.empty());
        if (!needle.empty()) {
            EXPECT_NE(err.find(needle), std::string::npos) << err;
        }
    }
}

TEST(ServiceRequestParse, TenantRoundTripsAndStaysOutOfTheHash)
{
    // The tenant is a scheduling label: it must survive the JSON
    // round trip but never perturb the campaign identity two workers
    // agree on (or two tenants submitting the same campaign could
    // not share a single-flight execution).
    ServiceRequest in;
    in.samplesPerCategory = 4;
    in.shardGrain = 2;
    in.tenant = "team-a_7";
    const std::string json = serviceRequestJson(in);
    EXPECT_NE(json.find("\"tenant\": \"team-a_7\""),
              std::string::npos)
        << json;
    ServiceRequest out;
    std::string err;
    ASSERT_TRUE(tryParseServiceRequest(json, out, err)) << err;
    EXPECT_EQ(out.tenant, "team-a_7");

    ServiceRequest plain = in;
    plain.tenant.clear();
    // An empty tenant renders no key at all: pre-tenant request JSON
    // and its parse/render closure stay byte-for-byte unchanged.
    EXPECT_EQ(serviceRequestJson(plain).find("tenant"),
              std::string::npos);

    Network net = buildServiceNetwork(plain);
    Tensor x = serviceInput(plain);
    EXPECT_EQ(campaignConfigHash(net, x, campaignConfigFor(in)),
              campaignConfigHash(net, x, campaignConfigFor(plain)));
}

TEST(ServiceRequestParse, HostileTenantNamesAreRejected)
{
    const std::vector<std::string> hostile = {
        "has space", "dot.dot", "slash/", "a\"quote",
        std::string(65, 'a')};
    for (const std::string &tenant : hostile) {
        SCOPED_TRACE("tenant: " + tenant);
        ServiceRequest in;
        in.tenant = tenant;
        ServiceRequest out;
        std::string err;
        EXPECT_FALSE(
            tryParseServiceRequest(serviceRequestJson(in), out, err));
        EXPECT_NE(err.find("tenant"), std::string::npos) << err;
    }
}

TEST(ServiceProto, TypedErrorFramesCarryAMachineReadableStatus)
{
    // Policy rejections (queue full, draining) must be telling a
    // client something it can act on — distinguishable from free-text
    // diagnostics without string matching on prose.
    std::string text, err, code;
    ASSERT_TRUE(tryParseText(decodeOne(encodeBusyError(8, 8)),
                             FrameType::Error, text, err))
        << err;
    ASSERT_TRUE(typedErrorStatus(text, code)) << text;
    EXPECT_EQ(code, "busy");
    EXPECT_NE(text.find("\"queue_depth\": 8"), std::string::npos)
        << text;
    EXPECT_NE(text.find("\"max_queue\": 8"), std::string::npos)
        << text;

    ASSERT_TRUE(tryParseText(decodeOne(encodeDrainingError()),
                             FrameType::Error, text, err))
        << err;
    ASSERT_TRUE(typedErrorStatus(text, code));
    EXPECT_EQ(code, "draining");

    // Prose diagnostics are not typed errors.
    EXPECT_FALSE(typedErrorStatus("unknown network \"vgg9000\"", code));
    EXPECT_FALSE(typedErrorStatus("{\"other\": \"json\"}", code));
}

TEST(FatalCapture, CaptureTurnsFatalIntoAThrownDiagnostic)
{
    // The daemon's request-isolation seam: under a ScopedFatalCapture
    // a fatal() becomes a catchable FatalError on the same thread...
    bool threw = false;
    try {
        ScopedFatalCapture capture;
        fatal("checkpoint ", 7, " is corrupt");
    } catch (const FatalError &e) {
        threw = true;
        EXPECT_STREQ(e.what(), "checkpoint 7 is corrupt");
    }
    EXPECT_TRUE(threw);

    // ...and only on that thread: a capture here must not change what
    // fatal() means on a concurrently running worker thread.
    ScopedFatalCapture capture;
    std::thread([] {
        EXPECT_FALSE(ScopedFatalCapture::active());
    }).join();

    // Nested captures stay armed until the outermost one leaves.
    {
        ScopedFatalCapture inner;
        EXPECT_TRUE(ScopedFatalCapture::active());
    }
    EXPECT_TRUE(ScopedFatalCapture::active());
}

TEST(FatalCapture, UncapturedFatalStillDies)
{
    EXPECT_DEATH(fatal("boom"), "boom");
}

TEST(ServiceRequestParse, IdentityKnobsSeparateConfigHashes)
{
    // The READY handshake rejects a worker whose recomputed hash
    // differs from the coordinator's: this is the predicate behind it.
    ServiceRequest base;
    base.samplesPerCategory = 4;
    base.shardGrain = 2;
    Network net = buildServiceNetwork(base);
    Tensor x = serviceInput(base);
    const std::uint64_t h =
        campaignConfigHash(net, x, campaignConfigFor(base));

    ServiceRequest seed = base;
    seed.seed += 1;
    EXPECT_NE(campaignConfigHash(net, x, campaignConfigFor(seed)), h);

    ServiceRequest grain = base;
    grain.shardGrain += 1;
    EXPECT_NE(campaignConfigHash(net, x, campaignConfigFor(grain)), h);

    // Performance knobs keep the identity — a 4-thread worker and a
    // 1-thread worker agree on what campaign they are running.
    ServiceRequest perf = base;
    perf.threads = 4;
    perf.batchWidth = 1;
    EXPECT_EQ(campaignConfigHash(net, x, campaignConfigFor(perf)), h);
}

TEST(ServiceShardPlan, AdaptiveCampaignsHaveNoStaticPlan)
{
    ServiceRequest req;
    req.targetHalfWidth = 0.05;
    Network net = buildServiceNetwork(req);
    EXPECT_DEATH(
        (void)fixedShardPlan(net, campaignConfigFor(req)),
        "no static shard plan");
}

TEST(ServiceShardPlan, WorkerRangeExecutionMatchesInProcessStreams)
{
    // The distributed contract in miniature, no sockets: executing the
    // plan in two disjoint ranges and resuming from the union must be
    // bit-identical to an uninterrupted in-process run.
    ServiceRequest req;
    req.samplesPerCategory = 8;
    req.shardGrain = 4;
    req.seed = 7;
    Network net = buildServiceNetwork(req);
    Tensor x = serviceInput(req);
    CorrectnessFn metric = serviceMetric(req);
    CampaignConfig cfg = campaignConfigFor(req);

    const std::vector<ShardPlanEntry> plan = fixedShardPlan(net, cfg);
    ASSERT_GT(plan.size(), 2u);
    const std::uint64_t split = plan.size() / 3;

    auto snap = std::make_shared<CampaignSnapshot>();
    snap->configHash = campaignConfigHash(net, x, cfg);
    for (const ShardRecord &r :
         executeFixedShardRange(net, x, metric, cfg, 0, split))
        snap->shards.push_back(r);
    for (const ShardRecord &r : executeFixedShardRange(
             net, x, metric, cfg, split, plan.size() - split))
        snap->shards.push_back(r);
    ASSERT_EQ(snap->shards.size(), plan.size());

    CampaignConfig merge = cfg;
    merge.resumeSnapshot = snap;
    CampaignResult merged = runCampaign(net, x, metric, merge);
    CampaignResult whole = runCampaign(net, x, metric, cfg);
    EXPECT_TRUE(merged.complete);
    EXPECT_EQ(campaignChecksum(merged), campaignChecksum(whole));
    EXPECT_EQ(merged.totalInjections, whole.totalInjections);
}

TEST(ServiceShardPlan, ReusedExecutorMatchesFreshCallsLeaseByLease)
{
    // The worker holds one FixedShardExecutor across every lease it
    // drains, so the golden forward pass / cache / engines are paid
    // once.  All of that is performance state: each lease's records
    // must be byte-identical to a fresh executeFixedShardRange call
    // over the same range, in any lease order.
    ServiceRequest req;
    req.samplesPerCategory = 8;
    req.shardGrain = 4;
    req.seed = 11;
    Network net = buildServiceNetwork(req);
    Tensor x = serviceInput(req);
    CorrectnessFn metric = serviceMetric(req);
    CampaignConfig cfg = campaignConfigFor(req);

    FixedShardExecutor executor(net, x, metric, cfg);
    const std::uint64_t total = executor.planSize();
    ASSERT_EQ(total, fixedShardPlan(net, cfg).size());
    ASSERT_GE(total, 4u);

    // Out-of-order leases, including a re-execution of lease 0 after
    // the engines have churned through the rest of the plan.
    const std::uint64_t chunk = 2;
    std::vector<std::uint64_t> firsts;
    for (std::uint64_t f = 0; f < total; f += chunk)
        firsts.push_back(f);
    std::reverse(firsts.begin(), firsts.end());
    firsts.push_back(0);
    for (std::uint64_t f : firsts) {
        const std::uint64_t n = std::min(chunk, total - f);
        const std::vector<ShardRecord> reused = executor.execute(f, n);
        const std::vector<ShardRecord> fresh =
            executeFixedShardRange(net, x, metric, cfg, f, n);
        ASSERT_EQ(reused.size(), fresh.size());
        for (std::size_t i = 0; i < reused.size(); ++i) {
            EXPECT_EQ(reused[i].ordinal, fresh[i].ordinal);
            EXPECT_EQ(reused[i].maskedCount, fresh[i].maskedCount);
            EXPECT_EQ(reused[i].trials, fresh[i].trials);
            EXPECT_EQ(reused[i].samples, fresh[i].samples);
        }
    }
}

TEST(ServiceShardPlan, OutOfRangeLeaseIsFatal)
{
    ServiceRequest req;
    req.samplesPerCategory = 4;
    req.shardGrain = 4;
    Network net = buildServiceNetwork(req);
    Tensor x = serviceInput(req);
    CampaignConfig cfg = campaignConfigFor(req);
    const std::size_t shards = fixedShardPlan(net, cfg).size();
    EXPECT_DEATH((void)executeFixedShardRange(net, x, serviceMetric(req),
                                              cfg, shards, 1),
                 "exceeds the .*-shard plan");
}
