/**
 * @file
 * Tests of Reuse Factor Analysis (Algorithm 1), the Fig. 2 example
 * descriptors, and the Eyeriss-model cross-check.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "accel/eyeriss.hh"
#include "core/ff_descriptors.hh"
#include "core/reuse_factor.hh"

using namespace fidelity;

namespace
{

std::set<NeuronIndex>
neuronSet(const RFResult &r)
{
    std::set<NeuronIndex> out;
    for (const TimedNeuron &t : r.faultyNeurons)
        out.insert(t.neuron);
    return out;
}

} // namespace

TEST(ReuseFactor, TargetA1HasRfT)
{
    // Fig. 2(a), target a1: t consecutive neurons in one channel.
    const int t = 16;
    RFResult r = analyzeReuseFactor(nvdlaTargetA1(t));
    EXPECT_EQ(r.rf, t);
    for (int y = 0; y < t; ++y) {
        EXPECT_EQ(r.faultyNeurons[y].neuron, (NeuronIndex{0, 0, y, 0}));
        EXPECT_EQ(r.faultyNeurons[y].timestamp, 0);
    }
}

TEST(ReuseFactor, TargetA2HasRfTWithTimestamps)
{
    const int t = 16;
    RFResult r = analyzeReuseFactor(nvdlaTargetA2(t));
    EXPECT_EQ(r.rf, t);
    // Same neuron set as a1, but one per loop timestamp.
    EXPECT_EQ(neuronSet(r), neuronSet(analyzeReuseFactor(
                                nvdlaTargetA1(t))));
    for (int l = 0; l < t; ++l)
        EXPECT_EQ(r.faultyNeurons[l].timestamp, l);
}

TEST(ReuseFactor, TargetA2SamplingGivesOneToT)
{
    // A random injection cycle into the hold register corrupts a
    // suffix of the block: between 1 and t neurons.
    const int t = 16;
    FFDescriptor ff = nvdlaTargetA2(t);
    RFResult r = analyzeReuseFactor(ff);
    Rng rng(3);
    std::set<std::size_t> sizes;
    for (int i = 0; i < 300; ++i) {
        auto sampled = sampleFaultyNeurons(ff, r, rng);
        EXPECT_GE(sampled.size(), 1u);
        EXPECT_LE(sampled.size(), static_cast<std::size_t>(t));
        sizes.insert(sampled.size());
    }
    // All suffix lengths occur.
    EXPECT_EQ(sizes.size(), static_cast<std::size_t>(t));
}

TEST(ReuseFactor, TargetA3HasRfOne)
{
    RFResult r = analyzeReuseFactor(nvdlaTargetA3());
    EXPECT_EQ(r.rf, 1);
}

TEST(ReuseFactor, TargetA4HasRfKSquared)
{
    const int k = 4;
    RFResult r = analyzeReuseFactor(nvdlaTargetA4(k));
    EXPECT_EQ(r.rf, k * k);
    // Same 2-D position, k^2 consecutive channels.
    for (int m = 0; m < k * k; ++m)
        EXPECT_EQ(r.faultyNeurons[m].neuron, (NeuronIndex{0, 0, 0, m}));
}

TEST(ReuseFactor, TargetB1HasRfK)
{
    const int k = 4;
    RFResult r = analyzeReuseFactor(eyerissTargetB1(k));
    EXPECT_EQ(r.rf, k);
    // k consecutive rows of one column.
    for (int i = 0; i < k; ++i) {
        EXPECT_EQ(r.faultyNeurons[i].neuron, (NeuronIndex{0, i, 0, 0}));
        EXPECT_EQ(r.faultyNeurons[i].timestamp, i);
    }
}

TEST(ReuseFactor, TargetB2HasRfKTimesT)
{
    const int k = 4, t = 8;
    RFResult r = analyzeReuseFactor(eyerissTargetB2(k, t));
    EXPECT_EQ(r.rf, k * t);
}

TEST(ReuseFactor, TargetB3HasRfOne)
{
    RFResult r = analyzeReuseFactor(eyerissTargetB3());
    EXPECT_EQ(r.rf, 1);
}

TEST(ReuseFactor, DatapathRfPropertyFour)
{
    // A FF earlier in the weight flow cannot have a smaller RF than a
    // later one: RF(a1) >= RF(a2) >= RF(a3).
    const int t = 16;
    int rf_a1 = analyzeReuseFactor(nvdlaTargetA1(t)).rf;
    int rf_a2 = analyzeReuseFactor(nvdlaTargetA2(t)).rf;
    int rf_a3 = analyzeReuseFactor(nvdlaTargetA3()).rf;
    EXPECT_GE(rf_a1, rf_a2);
    EXPECT_GE(rf_a2, rf_a3);
}

TEST(ReuseFactor, DeduplicatesRepeatedNeurons)
{
    // A unit touching the same neuron on two cycles counts it once.
    FFDescriptor ff;
    ff.ffValueCycles = 1;
    ff.loops.resize(1);
    ComputeUnitUse use;
    use.unit = 0;
    use.neurons = {{NeuronIndex{0, 0, 0, 0}},
                   {NeuronIndex{0, 0, 0, 0}},
                   {NeuronIndex{0, 0, 1, 0}}};
    ff.loops[0].push_back(use);
    RFResult r = analyzeReuseFactor(ff);
    EXPECT_EQ(r.rf, 2);
}

TEST(ReuseFactor, ComposeLocalControlSumsDisjointRfs)
{
    // Sec. III-B3: a valid signal gating several datapath FFs takes
    // the sum of their RFs and the union of their neuron sets.
    auto a4 = nvdlaTargetA4(2); // 4 neurons in channels 0-3
    FFDescriptor shifted = a4;
    for (auto &m : shifted.loops[0])
        for (auto &cyc : m.neurons)
            for (auto &n : cyc)
                n.c += 4; // channels 4-7
    FFDescriptor ctrl = composeLocalControl({a4, shifted});
    RFResult r = analyzeReuseFactor(ctrl);
    EXPECT_EQ(r.rf, 8);
}

TEST(ReuseFactor, ComposeLocalControlUnionsOverlaps)
{
    auto a4 = nvdlaTargetA4(2);
    FFDescriptor ctrl = composeLocalControl({a4, a4});
    EXPECT_EQ(analyzeReuseFactor(ctrl).rf, 4); // overlap collapses
}

TEST(ReuseFactorDeath, LoopsMustMatchValueCycles)
{
    FFDescriptor ff;
    ff.ffValueCycles = 2;
    ff.loops.resize(1);
    EXPECT_DEATH((void)analyzeReuseFactor(ff), "M_l");
}

TEST(EyerissModel, WeightNeuronsMatchDescriptor)
{
    const int k = 4;
    EyerissConfig cfg{k, 8};
    EyerissModel model(cfg, 16, 16, 16);
    auto neurons = model.weightFaultNeurons(2, 5, 3);
    ASSERT_EQ(neurons.size(), static_cast<std::size_t>(k));
    RFResult r = analyzeReuseFactor(eyerissTargetB1(k));
    ASSERT_EQ(r.rf, static_cast<int>(neurons.size()));
    // The descriptor's relative offsets shifted to (2, 5, 3) give the
    // model's absolute set.
    for (int i = 0; i < k; ++i) {
        const NeuronIndex &rel = r.faultyNeurons[i].neuron;
        EXPECT_EQ(neurons[i],
                  (NeuronIndex{0, 2 + rel.h, 5 + rel.w, 3 + rel.c}));
    }
}

TEST(EyerissModel, InputNeuronsMatchDescriptor)
{
    const int k = 3, t = 5;
    EyerissConfig cfg{k, t};
    EyerissModel model(cfg, 16, 16, 16);
    auto neurons = model.inputFaultNeurons(1, 15, 2);
    EXPECT_EQ(static_cast<int>(neurons.size()), model.inputRf());
    std::set<NeuronIndex> rel;
    for (const TimedNeuron &tn :
         analyzeReuseFactor(eyerissTargetB2(k, t)).faultyNeurons)
        rel.insert(
            NeuronIndex{0, 1 + tn.neuron.h, 15, 2 + tn.neuron.c});
    std::set<NeuronIndex> abs(neurons.begin(), neurons.end());
    EXPECT_EQ(abs, rel);
}

TEST(EyerissModel, ClipsAtTensorEdges)
{
    EyerissConfig cfg{4, 8};
    EyerissModel model(cfg, 8, 8, 8);
    // Starting at row 6 of an 8-row output clips 4 rows to 2.
    EXPECT_EQ(model.weightFaultNeurons(6, 0, 0).size(), 2u);
    // Channel 6 of 8 clips t = 8 channels to 2.
    EXPECT_EQ(model.inputFaultNeurons(0, 0, 6).size(), 4u * 2u);
}

TEST(EyerissModel, BiasIsSingleNeuron)
{
    EyerissConfig cfg{4, 8};
    EyerissModel model(cfg, 8, 8, 8);
    EXPECT_EQ(model.biasFaultNeurons(3, 3, 3).size(), 1u);
    EXPECT_EQ(model.biasRf(), 1);
}
