/**
 * @file
 * Unit and property tests for representation-level bit flips.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "sim/rng.hh"
#include "tensor/bitops.hh"
#include "tensor/float16.hh"

using namespace fidelity;

TEST(Bitops, ReprWidths)
{
    EXPECT_EQ(reprBits(Repr::FP16), 16);
    EXPECT_EQ(reprBits(Repr::FP32), 32);
    EXPECT_EQ(reprBits(Repr::INT8), 8);
    EXPECT_EQ(reprBits(Repr::INT16), 16);
    EXPECT_EQ(reprBits(Repr::INT32), 32);
}

TEST(Bitops, ReprNames)
{
    EXPECT_STREQ(reprName(Repr::FP16), "FP16");
    EXPECT_STREQ(reprName(Repr::INT8), "INT8");
}

TEST(Bitops, Fp16SignFlip)
{
    EXPECT_EQ(flipBit(1.0f, Repr::FP16, 15), -1.0f);
    EXPECT_EQ(flipBit(-2.5f, Repr::FP16, 15), 2.5f);
}

TEST(Bitops, Fp16ExponentFlipDoubles)
{
    // Flipping exponent bit 10 of 1.0 (0x3c00 -> 0x3800) gives 0.5.
    EXPECT_EQ(flipBit(1.0f, Repr::FP16, 10), 0.5f);
    // Flipping bit 14 of 1.0 (0x3c00 -> 0x7c00) gives +inf.
    EXPECT_TRUE(std::isinf(flipBit(1.0f, Repr::FP16, 14)));
}

TEST(Bitops, Fp32SignFlip)
{
    EXPECT_EQ(flipBit(3.25f, Repr::FP32, 31), -3.25f);
}

TEST(Bitops, Fp32MantissaLsb)
{
    float x = 1.0f;
    float y = flipBit(x, Repr::FP32, 0);
    EXPECT_NE(x, y);
    EXPECT_NEAR(y, x, 0x1p-22f);
}

TEST(Bitops, IntFlipsMatchTwosComplement)
{
    EXPECT_EQ(flipBitInt(0, Repr::INT8, 0), 1);
    EXPECT_EQ(flipBitInt(0, Repr::INT8, 7), -128);
    EXPECT_EQ(flipBitInt(-1, Repr::INT8, 7), 127);
    EXPECT_EQ(flipBitInt(5, Repr::INT16, 1), 7);
    EXPECT_EQ(flipBitInt(0, Repr::INT16, 15), -32768);
    EXPECT_EQ(flipBitInt(0, Repr::INT32, 31),
              std::numeric_limits<std::int32_t>::min());
}

TEST(Bitops, FlipTwiceIsIdentityFp16)
{
    // Property: flipping the same bit twice restores the stored value.
    Rng rng(3);
    for (int i = 0; i < 2000; ++i) {
        float x = roundToHalf(static_cast<float>(rng.normal(0, 10)));
        int bit = static_cast<int>(rng.below(16));
        float once = flipBit(x, Repr::FP16, bit);
        if (std::isnan(once))
            continue; // NaN payloads canonicalise; involution not owed
        float twice = flipBit(once, Repr::FP16, bit);
        EXPECT_EQ(floatToHalfBits(twice), floatToHalfBits(x));
    }
}

TEST(Bitops, FlipTwiceIsIdentityInt)
{
    Rng rng(4);
    for (int i = 0; i < 2000; ++i) {
        auto q = static_cast<std::int32_t>(rng.range(-128, 127));
        int bit = static_cast<int>(rng.below(8));
        EXPECT_EQ(flipBitInt(flipBitInt(q, Repr::INT8, bit), Repr::INT8,
                             bit),
                  q);
    }
}

TEST(Bitops, FlipChangesExactlyOneBit)
{
    Rng rng(5);
    for (int i = 0; i < 1000; ++i) {
        float x = static_cast<float>(rng.normal(0, 5));
        int bit = static_cast<int>(rng.below(32));
        float y = flipBit(x, Repr::FP32, bit);
        std::uint32_t xb, yb;
        std::memcpy(&xb, &x, 4);
        std::memcpy(&yb, &y, 4);
        EXPECT_EQ(xb ^ yb, 1u << bit);
    }
}

TEST(Bitops, RoundToHalfIdempotent)
{
    Rng rng(6);
    for (int i = 0; i < 2000; ++i) {
        float x = static_cast<float>(rng.normal(0, 100));
        float r = roundToHalf(x);
        EXPECT_EQ(roundToHalf(r), r);
    }
}

TEST(BitopsDeath, BitOutOfRange)
{
    EXPECT_DEATH((void)flipBit(1.0f, Repr::FP16, 16), "out of range");
    EXPECT_DEATH((void)flipBitInt(1, Repr::INT8, 8), "out of range");
}
