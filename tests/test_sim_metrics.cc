/**
 * @file
 * The structured-reporting stack: deterministic JSON emission
 * (sim/json), the counter/timer/histogram instruments (sim/metrics),
 * and the campaign run manifest (core/manifest) — including the
 * contract the manifest makes: its "results" section is byte-identical
 * across thread counts and across checkpoint kill-and-resume.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "core/campaign.hh"
#include "core/manifest.hh"
#include "sim/json.hh"
#include "sim/metrics.hh"
#include "workloads/metrics.hh"
#include "workloads/models.hh"

using namespace fidelity;

namespace
{

/** Unique file path in gtest's temp dir; removed on destruction. */
class ScopedPath
{
  public:
    explicit ScopedPath(const std::string &name)
        : path_(testing::TempDir() + "fidelity_" + name)
    {
        std::remove(path_.c_str());
    }

    ~ScopedPath()
    {
        std::remove(path_.c_str());
        std::remove((path_ + ".tmp").c_str());
    }

    const std::string &str() const { return path_; }

  private:
    std::string path_;
};

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in) << path;
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/** Drop every line holding a wall-time field (keys ending in `_s`). */
std::string
stripWallTimes(const std::string &doc)
{
    std::istringstream in(doc);
    std::string out, line;
    while (std::getline(in, line))
        if (line.find("_s\":") == std::string::npos)
            out += line + "\n";
    return out;
}

CampaignConfig
smallConfig()
{
    CampaignConfig cfg;
    cfg.samplesPerCategory = 12;
    cfg.shardGrain = 4;
    cfg.seed = 23;
    return cfg;
}

} // namespace

// ----- sim/json ----------------------------------------------------

TEST(Json, EscapeCoversControlAndSpecialCharacters)
{
    EXPECT_EQ(jsonEscape("plain"), "plain");
    EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
    EXPECT_EQ(jsonEscape("a\\b"), "a\\\\b");
    EXPECT_EQ(jsonEscape("\n\t\r\b\f"), "\\n\\t\\r\\b\\f");
    EXPECT_EQ(jsonEscape(std::string("\x01\x1f", 2)), "\\u0001\\u001f");
    EXPECT_EQ(jsonEscape("caf\xc3\xa9"), "caf\xc3\xa9"); // UTF-8 intact
}

TEST(Json, NumberIsShortestRoundTrip)
{
    EXPECT_EQ(jsonNumber(0.0), "0");
    EXPECT_EQ(jsonNumber(1.0), "1");
    EXPECT_EQ(jsonNumber(0.1), "0.1");
    EXPECT_EQ(jsonNumber(-2.5), "-2.5");
    // 1/3 needs all 17 digits; the rendering must strtod back exactly.
    const double third = 1.0 / 3.0;
    EXPECT_EQ(std::strtod(jsonNumber(third).c_str(), nullptr), third);
    EXPECT_EQ(jsonNumber(std::numeric_limits<double>::quiet_NaN()),
              "null");
    EXPECT_EQ(jsonNumber(std::numeric_limits<double>::infinity()),
              "null");
}

TEST(Json, NonFiniteDoublesRenderAsNullEverywhere)
{
    // The shared rule: every double that reaches JSON output — writer
    // fields, array elements, FIT breakdowns, metric documents — is
    // clamped to null when non-finite, never emitted as bare nan/inf
    // (which is invalid JSON).
    const double nan = std::numeric_limits<double>::quiet_NaN();
    const double inf = std::numeric_limits<double>::infinity();
    EXPECT_EQ(jsonNumber(-inf), "null");

    JsonWriter w;
    w.beginObject();
    w.field("nan", nan);
    w.field("inf", inf);
    w.key("arr");
    w.beginArray();
    w.value(-inf);
    w.value(1.5);
    w.endArray();
    w.endObject();
    const std::string doc = w.str();
    EXPECT_NE(doc.find("\"nan\": null"), std::string::npos) << doc;
    EXPECT_NE(doc.find("\"inf\": null"), std::string::npos) << doc;
    EXPECT_NE(doc.find("null,\n    1.5"), std::string::npos) << doc;
}

TEST(Json, FitBreakdownWithZeroDivisionRendersValidJson)
{
    // A FIT breakdown whose inputs divided by zero must not poison
    // the manifest with bare nan.
    FitBreakdown fit;
    fit.datapath = std::numeric_limits<double>::quiet_NaN();
    fit.local = std::numeric_limits<double>::infinity();
    JsonWriter w;
    writeFitJson(w, fit);
    const std::string doc = w.str();
    EXPECT_NE(doc.find("\"datapath\": null"), std::string::npos) << doc;
    EXPECT_NE(doc.find("\"local\": null"), std::string::npos) << doc;
    EXPECT_EQ(doc.find("nan"), std::string::npos) << doc;
    EXPECT_EQ(doc.find("inf"), std::string::npos) << doc;
}

TEST(Metrics, WriteJsonClampsNonFiniteHistogramEdges)
{
    // Histogram edges are caller-supplied doubles; an open-ended +inf
    // edge must render as null, keeping the document parseable.
    MetricSet ms;
    ms.histogram("h", {1.0, std::numeric_limits<double>::infinity()})
        .add(2.0);
    JsonWriter w;
    ms.writeJson(w);
    const std::string doc = w.str();
    EXPECT_NE(doc.find("null"), std::string::npos) << doc;
    EXPECT_EQ(doc.find("inf"), std::string::npos) << doc;
}

TEST(Json, WriterRendersNestedDocumentsDeterministically)
{
    auto render = [] {
        JsonWriter w;
        w.beginObject();
        w.field("name", "x\"y");
        w.field("n", std::uint64_t{42});
        w.field("ok", true);
        w.key("inner");
        w.beginObject();
        w.field("p", 0.25);
        w.endObject();
        w.key("list");
        w.beginArray();
        w.value(1);
        w.value(2);
        w.endArray();
        w.endObject();
        return w.str();
    };
    const std::string doc = render();
    EXPECT_EQ(doc, render()); // same calls, same bytes
    EXPECT_NE(doc.find("\"name\": \"x\\\"y\""), std::string::npos);
    EXPECT_NE(doc.find("\"n\": 42"), std::string::npos);
    EXPECT_NE(doc.find("\"ok\": true"), std::string::npos);
    EXPECT_NE(doc.find("\"p\": 0.25"), std::string::npos);
}

TEST(Json, LineBuilderRendersOneEscapedLine)
{
    const std::string line = JsonLineBuilder()
                                 .field("bench", "conv\"1")
                                 .field("gflops", 2.5)
                                 .field("iters", 10)
                                 .str();
    EXPECT_EQ(line,
              "  {\"bench\": \"conv\\\"1\", \"gflops\": 2.5, "
              "\"iters\": 10}");
}

TEST(Json, SectionExtractsBalancedTopLevelValues)
{
    JsonWriter w;
    w.beginObject();
    w.key("results");
    w.beginObject();
    w.field("brace", "}{\"");
    w.endObject();
    w.key("execution");
    w.beginObject();
    w.field("n", 1);
    w.endObject();
    w.endObject();
    const std::string doc = w.str();

    const std::string results = jsonSection(doc, "results");
    EXPECT_NE(results.find("\"brace\""), std::string::npos);
    EXPECT_EQ(results.find("execution"), std::string::npos);
    EXPECT_EQ(jsonSection(doc, "absent"), "");
}

TEST(Json, AtomicWriteReplacesWithoutLeavingTempFiles)
{
    ScopedPath path("atomic.json");
    atomicWriteFile(path.str(), "first");
    atomicWriteFile(path.str(), "second", /*sync_to_disk=*/true);
    EXPECT_EQ(slurp(path.str()), "second");
    std::ifstream tmp(path.str() + ".tmp");
    EXPECT_FALSE(tmp.good());
}

TEST(Json, MergeJsonLinesKeepsOtherBenchesAndReplacesOwn)
{
    ScopedPath path("bench.json");

    std::vector<std::string> a1 = {
        JsonLineBuilder().field("bench", "alpha").field("v", 1).str()};
    std::vector<std::string> b = {
        JsonLineBuilder().field("bench", "beta").field("v", 2).str()};
    std::vector<std::string> a2 = {
        JsonLineBuilder().field("bench", "alpha").field("v", 3).str(),
        JsonLineBuilder().field("bench", "alpha").field("v", 4).str()};

    mergeJsonLines(path.str(), "alpha", a1);
    mergeJsonLines(path.str(), "beta", b);
    mergeJsonLines(path.str(), "alpha", a2); // replaces a1, keeps beta

    const std::string doc = slurp(path.str());
    EXPECT_EQ(doc.find("\"v\": 1"), std::string::npos);
    EXPECT_NE(doc.find("\"v\": 2"), std::string::npos);
    EXPECT_NE(doc.find("\"v\": 3"), std::string::npos);
    EXPECT_NE(doc.find("\"v\": 4"), std::string::npos);
    EXPECT_EQ(doc.front(), '[');
    std::ifstream tmp(path.str() + ".tmp");
    EXPECT_FALSE(tmp.good());
}

// ----- sim/metrics -------------------------------------------------

TEST(Metrics, CounterAndTimerAccumulate)
{
    MetricSet m;
    m.counter("a").add();
    m.counter("a").add(4);
    EXPECT_EQ(m.counter("a").count(), 5u);

    m.timer("t").addNs(1500);
    m.timer("t").addNs(-10); // negative spans clamp to zero, still counted
    EXPECT_EQ(m.timer("t").ns(), 1500);
    EXPECT_EQ(m.timer("t").spans(), 2u);
    EXPECT_DOUBLE_EQ(m.timer("t").seconds(), 1.5e-6);
}

TEST(Metrics, ScopedTimerStopsOnce)
{
    Timer t;
    {
        ScopedTimer s(t);
        s.stop();
        s.stop(); // idempotent; destructor adds nothing more
    }
    EXPECT_EQ(t.spans(), 1u);
}

TEST(Metrics, HistogramBucketsIncludingOverflow)
{
    Histogram h({1.0, 10.0, 100.0});
    h.add(0.5);   // <= 1
    h.add(1.0);   // <= 1 (inclusive upper edge)
    h.add(5.0);   // <= 10
    h.add(1000.0); // overflow
    ASSERT_EQ(h.counts().size(), 4u);
    EXPECT_EQ(h.counts()[0], 2u);
    EXPECT_EQ(h.counts()[1], 1u);
    EXPECT_EQ(h.counts()[2], 0u);
    EXPECT_EQ(h.counts()[3], 1u);
    EXPECT_EQ(h.total(), 4u);
}

TEST(Metrics, HistogramRejectsUnsortedEdgesAndShapeMismatch)
{
    EXPECT_DEATH(Histogram({1.0, 1.0}), "strictly increasing");
    MetricSet m;
    m.histogram("h", {1.0, 2.0});
    EXPECT_DEATH(m.histogram("h", {1.0, 3.0}), "different edges");
}

TEST(Metrics, MergeIsOrderIndependent)
{
    auto mkset = [](std::uint64_t c, std::int64_t ns, double hv) {
        MetricSet m;
        m.counter("c").add(c);
        m.timer("t").addNs(ns);
        m.histogram("h", {1.0, 2.0}).add(hv);
        return m;
    };
    MetricSet a = mkset(3, 100, 0.5);
    MetricSet b = mkset(7, 900, 1.5);
    MetricSet only_b;
    only_b.counter("solo").add(2);

    MetricSet ab;
    ab.mergeFrom(a);
    ab.mergeFrom(b);
    ab.mergeFrom(only_b);
    MetricSet ba;
    ba.mergeFrom(only_b);
    ba.mergeFrom(b);
    ba.mergeFrom(a);

    auto json = [](const MetricSet &m) {
        JsonWriter w;
        m.writeJson(w);
        return w.str();
    };
    EXPECT_EQ(json(ab), json(ba));
    EXPECT_EQ(ab.counter("c").count(), 10u);
    EXPECT_EQ(ab.counter("solo").count(), 2u);
    EXPECT_EQ(ab.timer("t").ns(), 1000);
    EXPECT_EQ(ab.timer("t").spans(), 2u);
    EXPECT_EQ(ab.histogram("h", {1.0, 2.0}).total(), 2u);
}

TEST(Metrics, WriteJsonIsSortedAndTyped)
{
    MetricSet m;
    m.counter("zeta").add(1);
    m.counter("alpha").add(2);
    m.timer("beta").addNs(2'000'000'000);
    m.histogram("gamma", {1.0}).add(0.5);

    JsonWriter w;
    m.writeJson(w);
    const std::string doc = w.str();
    // Sorted flat keys: alpha < beta_s < beta_spans < gamma < zeta.
    const auto alpha = doc.find("\"alpha\": 2");
    const auto beta = doc.find("\"beta_s\": 2");
    const auto spans = doc.find("\"beta_spans\": 1");
    const auto gamma = doc.find("\"gamma\"");
    const auto zeta = doc.find("\"zeta\": 1");
    ASSERT_NE(alpha, std::string::npos);
    ASSERT_NE(beta, std::string::npos);
    ASSERT_NE(spans, std::string::npos);
    ASSERT_NE(gamma, std::string::npos);
    ASSERT_NE(zeta, std::string::npos);
    EXPECT_LT(alpha, beta);
    EXPECT_LT(beta, spans);
    EXPECT_LT(spans, gamma);
    EXPECT_LT(gamma, zeta);
}

// ----- core/manifest -----------------------------------------------

TEST(Manifest, DocumentCarriesTheCampaignRecord)
{
    Network net = buildResNet(3);
    Tensor x = defaultInputFor("resnet", 4);
    ScopedPath report("manifest.json");

    CampaignConfig cfg = smallConfig();
    cfg.reportPath = report.str();
    CampaignResult res = runCampaign(net, x, top1Metric(), cfg);

    const std::string doc = slurp(report.str());
    EXPECT_NE(doc.find("fidelity-run-manifest-v1"), std::string::npos);
    EXPECT_NE(doc.find("\"schedule\": \"fixed\""), std::string::npos);
    EXPECT_NE(doc.find("\"seed\": 23"), std::string::npos);
    EXPECT_NE(doc.find("\"wilson_lo\""), std::string::npos);
    EXPECT_NE(doc.find("\"fit\""), std::string::npos);
    EXPECT_NE(doc.find("\"fit_global_protected\""), std::string::npos);
    EXPECT_NE(doc.find("\"simd_backend\""), std::string::npos);
    EXPECT_NE(doc.find("\"inject.masked\""), std::string::npos);
    EXPECT_NE(doc.find("\"phase.inject_s\""), std::string::npos);

    // The declared injection total matches the result.
    EXPECT_NE(doc.find("\"total_injections\": " +
                       std::to_string(res.totalInjections)),
              std::string::npos);

    // Every (layer, category) cell appears in the table.
    std::size_t cells = 0;
    for (std::size_t at = doc.find("\"category\"");
         at != std::string::npos; at = doc.find("\"category\"", at + 1))
        ++cells;
    EXPECT_EQ(cells, res.cells.size());
}

TEST(Manifest, ResultsSectionIsByteIdenticalAcrossThreadCounts)
{
    Network net = buildResNet(3);
    Tensor x = defaultInputFor("resnet", 4);

    std::string want;
    for (int threads : {1, 4, 8}) {
        ScopedPath report("manifest_t" + std::to_string(threads) +
                          ".json");
        CampaignConfig cfg = smallConfig();
        cfg.numThreads = threads;
        cfg.reportPath = report.str();
        (void)runCampaign(net, x, top1Metric(), cfg);

        const std::string results =
            jsonSection(slurp(report.str()), "results");
        ASSERT_FALSE(results.empty());
        if (want.empty())
            want = results;
        else
            EXPECT_EQ(results, want)
                << "results diverged at " << threads << " threads";
    }
}

TEST(Manifest, ResultsSectionSurvivesKillAndResume)
{
    Network net = buildResNet(3);
    Tensor x = defaultInputFor("resnet", 4);

    ScopedPath whole_report("manifest_whole.json");
    CampaignConfig whole_cfg = smallConfig();
    whole_cfg.reportPath = whole_report.str();
    (void)runCampaign(net, x, top1Metric(), whole_cfg);
    const std::string want =
        jsonSection(slurp(whole_report.str()), "results");
    ASSERT_FALSE(want.empty());

    ScopedPath ckpt("manifest_resume.ckpt");
    ScopedPath slice_report("manifest_slice.json");
    CampaignConfig slice = smallConfig();
    slice.numThreads = 4;
    slice.checkpointPath = ckpt.str();
    slice.stopAfterShards = 8;
    slice.reportPath = slice_report.str();
    CampaignResult partial = runCampaign(net, x, top1Metric(), slice);
    ASSERT_FALSE(partial.complete);
    // A manifest is written for the partial slice too (marked so).
    EXPECT_NE(slurp(slice_report.str()).find("\"complete\": false"),
              std::string::npos);

    ScopedPath resume_report("manifest_resumed.json");
    CampaignConfig resume = smallConfig();
    resume.numThreads = 4;
    resume.checkpointPath = ckpt.str();
    resume.resumeFrom = ckpt.str();
    resume.reportPath = resume_report.str();
    CampaignResult res = runCampaign(net, x, top1Metric(), resume);
    EXPECT_TRUE(res.complete);
    EXPECT_EQ(jsonSection(slurp(resume_report.str()), "results"), want);
}

TEST(Manifest, FullDocumentIsDeterministicModuloWallTimes)
{
    // At a fixed thread count with no checkpointing, two runs differ
    // only in wall-clock readings — and every wall-time key ends in
    // `_s`, so stripping those lines must leave identical bytes.
    Network net = buildResNet(3);
    Tensor x = defaultInputFor("resnet", 4);

    std::string first;
    for (int run = 0; run < 2; ++run) {
        ScopedPath report("manifest_det" + std::to_string(run) +
                          ".json");
        CampaignConfig cfg = smallConfig();
        cfg.reportPath = report.str();
        (void)runCampaign(net, x, top1Metric(), cfg);
        const std::string stripped =
            stripWallTimes(slurp(report.str()));
        if (run == 0)
            first = stripped;
        else
            EXPECT_EQ(stripped, first);
    }
}

TEST(Manifest, ResultCacheHitRateIsNullWithoutProbes)
{
    // 0 probes → 0/0 hit rate; the manifest must render null, not nan
    // (the satellite non-finite rule applied to a real producer).
    Network net = buildResNet(3);
    CampaignConfig cfg;
    CampaignResult res;
    res.network = net.name();
    CampaignTelemetry tel;
    tel.resultCache.enabled = true;
    tel.resultCache.replayComplete = true;

    const std::string doc = runManifestJson(net, cfg, 0, res, tel);
    const std::string rc =
        jsonSection(jsonSection(doc, "execution"), "result_cache");
    ASSERT_FALSE(rc.empty());
    EXPECT_NE(rc.find("\"hit_rate\": null"), std::string::npos) << rc;
    EXPECT_EQ(doc.find("nan"), std::string::npos);
}

TEST(Manifest, AdaptiveRunRecordsRoundHistory)
{
    Network net = buildResNet(3);
    Tensor x = defaultInputFor("resnet", 4);
    ScopedPath report("manifest_adaptive.json");

    CampaignConfig cfg;
    cfg.targetHalfWidth = 0.12;
    cfg.confidenceZ = 1.96;
    cfg.minSamples = 8;
    cfg.maxSamplesPerCategory = 32;
    cfg.shardGrain = 8;
    cfg.seed = 23;
    cfg.reportPath = report.str();
    CampaignResult res = runCampaign(net, x, top1Metric(), cfg);

    const std::string doc = slurp(report.str());
    EXPECT_NE(doc.find("\"schedule\": \"adaptive\""), std::string::npos);
    EXPECT_NE(doc.find("\"target_half_width\": 0.12"),
              std::string::npos);
    std::size_t rounds = 0;
    for (std::size_t at = doc.find("\"shards_planned\"");
         at != std::string::npos;
         at = doc.find("\"shards_planned\"", at + 1))
        ++rounds;
    EXPECT_EQ(rounds, res.rounds);
}
