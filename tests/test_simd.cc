/**
 * @file
 * Differential suite for the SIMD kernel layer: the vector backends
 * must be bit-identical to the scalar backend everywhere.
 *
 * Covers the batch operand converters over adversarial bit patterns
 * (NaN payloads, infinities, subnormals, signed zeros, RNE ties), the
 * block-compare scans, dense forward passes of conv/FC/matmul across
 * FP32/FP16/INT8/INT16 with odd (non-lane-multiple) shapes and
 * grouped/dilated/strided convolutions, forwardRegion boxes that cut
 * through lane blocks, the vectorized elementwise/activation paths,
 * and whole-campaign equality with the backend toggle on and off AND
 * across every runtime-dispatchable backend (forced scalar / SSE2 /
 * AVX2 within one binary).  The narrow integer kernels additionally
 * get direct differential coverage: odd-reduction pair padding, the
 * statically proven int32 chunk bound at its exact overflow edge, and
 * chunk-length invariance of the spilled int64 result.
 */

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "core/campaign.hh"
#include "nn/activation.hh"
#include "nn/conv.hh"
#include "nn/elementwise.hh"
#include "nn/fc.hh"
#include "nn/init.hh"
#include "nn/matmul.hh"
#include "nn/network.hh"
#include "nn/pool.hh"
#include "simd/convert.hh"
#include "simd/pack.hh"
#include "simd/simd.hh"
#include "sim/arena.hh"
#include "sim/rng.hh"
#include "tensor/bitops.hh"
#include "tensor/quant.hh"
#include "workloads/metrics.hh"

using namespace fidelity;

namespace
{

/** Restore the global backend toggle when a test scope ends. */
struct SimdToggle
{
    bool saved = simd::enabled();
    ~SimdToggle() { simd::setEnabled(saved); }
};

/** Drop any API-forced backend when a test scope ends, returning to
 *  the env/CPUID selection the process started with. */
struct BackendForce
{
    ~BackendForce() { simd::forceBackend("auto"); }
};

/** Every backend that can be forced on this host, scalar first. */
std::vector<const char *>
availableBackends()
{
    std::vector<const char *> v{"scalar"};
    for (const char *n : {"sse2", "avx2", "neon"})
        if (simd::backendAvailable(n))
            v.push_back(n);
    return v;
}

Tensor
randomTensor(std::uint64_t seed, int n, int h, int w, int c)
{
    Rng rng(seed);
    Tensor t(n, h, w, c);
    for (auto &v : t.data())
        v = static_cast<float>(rng.normal(0, 1));
    return t;
}

bool
bitIdentical(const Tensor &a, const Tensor &b)
{
    if (!a.sameShape(b))
        return false;
    for (std::size_t i = 0; i < a.size(); ++i)
        if (std::bit_cast<std::uint32_t>(a[i]) !=
            std::bit_cast<std::uint32_t>(b[i]))
            return false;
    return true;
}

std::unique_ptr<Conv2D>
makeConv(std::string name, const ConvSpec &spec, std::uint64_t seed)
{
    Rng rng(seed);
    std::size_t wcount = static_cast<std::size_t>(spec.kh) * spec.kw *
                         (spec.inC / spec.groups) * spec.outC;
    int fan_in = spec.kh * spec.kw * (spec.inC / spec.groups);
    return std::make_unique<Conv2D>(
        std::move(name), spec, heWeights(rng, wcount, fan_in),
        spec.bias ? smallBiases(rng, spec.outC) : std::vector<float>{});
}

void
setupPrecision(Layer &layer, const std::vector<const Tensor *> &ins,
               Precision p)
{
    layer.setPrecision(p);
    if (p == Precision::INT8 || p == Precision::INT16) {
        Tensor ref = layer.forward(ins);
        layer.calibrate(ins, ref);
    }
}

/** forward() with the toggle on and off; expects bitwise equality. */
Tensor
forwardBothWays(const Layer &layer,
                const std::vector<const Tensor *> &ins)
{
    SimdToggle guard;
    simd::setEnabled(true);
    Tensor vec = layer.forward(ins);
    simd::setEnabled(false);
    Tensor ref = layer.forward(ins);
    EXPECT_TRUE(bitIdentical(vec, ref));
    return vec;
}

constexpr Precision kAllPrecisions[] = {
    Precision::FP32, Precision::FP16, Precision::INT8,
    Precision::INT16};

/** Adversarial float patterns for the converter tests. */
std::vector<float>
adversarialFloats()
{
    std::vector<float> v;
    auto bits = [](std::uint32_t u) { return std::bit_cast<float>(u); };
    v.insert(v.end(),
             {0.0f, -0.0f, 1.0f, -1.0f, 0.5f, -0.5f, 65504.0f,
              -65504.0f, 65520.0f, 70000.0f, 1e-8f, -1e-8f,
              std::numeric_limits<float>::infinity(),
              -std::numeric_limits<float>::infinity(),
              std::numeric_limits<float>::quiet_NaN(),
              bits(0x7fc00001u),   // NaN, payload bit set
              bits(0xffc01234u),   // negative NaN, payload bits
              bits(0x7f800001u),   // signalling NaN pattern
              bits(0x00000001u),   // smallest subnormal
              bits(0x807fffffu),   // largest negative subnormal
              bits(0x33800000u),   // 2^-24: half-subnormal tie
              bits(0x33800001u),   // just above the tie
              1.00048828125f,      // halfway between half values
              1.0009765625f, 2.5f, -2.5f, 3.5f, -3.5f});
    // Pad to an odd length so vector blocks leave a scalar tail.
    Rng rng(99);
    while (v.size() < 61)
        v.push_back(static_cast<float>(rng.normal(0, 100)));
    return v;
}

CorrectnessFn
top1Match()
{
    return top1Metric();
}

} // namespace

TEST(SimdDispatch, TableMatchesReportedBackend)
{
    SimdToggle guard;
    simd::setEnabled(true);
    EXPECT_NE(simd::backendName(), nullptr);
    EXPECT_NE(simd::dispatchMode(), nullptr);
    EXPECT_STREQ(simd::table().name, simd::backendName());
    // The scalar table is compiled unconditionally; fantasy backends
    // and null names must not resolve.
    EXPECT_TRUE(simd::backendAvailable("scalar"));
    EXPECT_FALSE(simd::backendAvailable("vliw9000"));
    EXPECT_FALSE(simd::backendAvailable(nullptr));
#if defined(FIDELITY_SIMD_X86_BASELINE)
    // The x86-64 baseline guarantees the SSE2 table in every binary.
    EXPECT_TRUE(simd::backendAvailable("sse2"));
#endif
}

TEST(SimdDispatch, ForceBackendRoundTrips)
{
    SimdToggle toggle;
    simd::setEnabled(true);
    BackendForce guard;
    std::string before = simd::backendName();
    for (const char *n : availableBackends()) {
        EXPECT_TRUE(simd::forceBackend(n)) << n;
        EXPECT_STREQ(simd::backendName(), n);
        EXPECT_STREQ(simd::table().name, n);
        EXPECT_STREQ(simd::dispatchMode(), "forced-api");
    }
    // A failed force leaves the previous choice untouched.
    ASSERT_TRUE(simd::forceBackend("scalar"));
    EXPECT_FALSE(simd::forceBackend("vliw9000"));
    EXPECT_STREQ(simd::backendName(), "scalar");
    // "auto" (or null/empty) restores the startup selection.
    EXPECT_TRUE(simd::forceBackend("auto"));
    EXPECT_EQ(before, simd::backendName());
}

TEST(SimdDispatch, KillSwitchOverridesForce)
{
    SimdToggle toggle;
    BackendForce guard;
    // With the kill switch off, table() hands out the scalar table no
    // matter what is forced; backendName() keeps reporting the backend
    // table() would use with the switch back on.
    for (const char *n : availableBackends()) {
        ASSERT_TRUE(simd::forceBackend(n));
        simd::setEnabled(false);
        EXPECT_STREQ(simd::table().name, "scalar") << n;
        EXPECT_STREQ(simd::backendName(), n);
        simd::setEnabled(true);
        EXPECT_STREQ(simd::table().name, n);
    }
}

TEST(SimdDispatch, ForcedBackendsBitIdenticalForward)
{
    SimdToggle toggle;
    simd::setEnabled(true);
    BackendForce guard;
    ConvSpec spec{.inC = 5, .outC = 19, .kh = 3, .kw = 3, .pad = 1};
    int seed = 900;
    for (Precision p : kAllPrecisions) {
        auto conv = makeConv("c", spec, seed);
        Tensor x = randomTensor(seed + 1, 1, 7, 7, spec.inC);
        std::vector<const Tensor *> ins{&x};
        setupPrecision(*conv, ins, p);
        ASSERT_TRUE(simd::forceBackend("scalar"));
        Tensor ref = conv->forward(ins);
        for (const char *n : availableBackends()) {
            ASSERT_TRUE(simd::forceBackend(n));
            EXPECT_TRUE(bitIdentical(conv->forward(ins), ref))
                << "backend " << n;
        }
        seed += 2;
    }
}

TEST(SimdBackend, ToggleRoundTrips)
{
    SimdToggle guard;
    simd::setEnabled(false);
    EXPECT_FALSE(simd::enabled());
    simd::setEnabled(true);
    EXPECT_TRUE(simd::enabled());
}

TEST(SimdBackend, BitDiffScansMatchReference)
{
    auto ref_first = [](const std::vector<float> &a,
                        const std::vector<float> &b) {
        for (std::size_t i = 0; i < a.size(); ++i)
            if (std::bit_cast<std::uint32_t>(a[i]) !=
                std::bit_cast<std::uint32_t>(b[i]))
                return i;
        return a.size();
    };
    auto ref_last = [](const std::vector<float> &a,
                       const std::vector<float> &b) {
        for (std::size_t i = a.size(); i > 0; --i)
            if (std::bit_cast<std::uint32_t>(a[i - 1]) !=
                std::bit_cast<std::uint32_t>(b[i - 1]))
                return i - 1;
        return a.size();
    };
    Rng rng(5);
    for (std::size_t n : {0u, 1u, 3u, 7u, 8u, 9u, 16u, 31u, 40u}) {
        for (int trial = 0; trial < 20; ++trial) {
            std::vector<float> a(n), b;
            for (auto &v : a)
                v = static_cast<float>(rng.normal(0, 1));
            b = a;
            // Flip a random subset, sometimes none; include the
            // bit-level oddballs numeric comparison would miss.
            for (std::size_t i = 0; i < n; ++i) {
                double r = rng.normal(0, 1);
                if (r > 1.0)
                    b[i] = -b[i];
                else if (r < -1.5)
                    b[i] = b[i] == 0.0f ? -0.0f : b[i];
            }
            if (trial == 0 && n > 0)
                b[n - 1] = std::bit_cast<float>(
                    std::bit_cast<std::uint32_t>(b[n - 1]) ^ 1u);
            EXPECT_EQ(simd::firstBitDiff(a.data(), b.data(), n),
                      ref_first(a, b));
            EXPECT_EQ(simd::lastBitDiff(a.data(), b.data(), n),
                      ref_last(a, b));
        }
    }
    // Signed-zero and NaN-payload changes must count as differences.
    std::vector<float> a{0.0f, std::bit_cast<float>(0x7fc00000u)};
    std::vector<float> b{-0.0f, std::bit_cast<float>(0x7fc00001u)};
    EXPECT_EQ(simd::firstBitDiff(a.data(), b.data(), 2), 0u);
    EXPECT_EQ(simd::lastBitDiff(a.data(), b.data(), 2), 1u);
}

TEST(SimdConvert, RoundToHalfBatchMatchesScalar)
{
    SimdToggle guard;
    std::vector<float> in = adversarialFloats();
    std::vector<float> outVec(in.size()), outRef(in.size());
    simd::setEnabled(true);
    simd::roundToHalfBatch(in.data(), outVec.data(), in.size());
    simd::setEnabled(false);
    simd::roundToHalfBatch(in.data(), outRef.data(), in.size());
    for (std::size_t i = 0; i < in.size(); ++i) {
        EXPECT_EQ(std::bit_cast<std::uint32_t>(outVec[i]),
                  std::bit_cast<std::uint32_t>(roundToHalf(in[i])))
            << "element " << i;
        EXPECT_EQ(std::bit_cast<std::uint32_t>(outVec[i]),
                  std::bit_cast<std::uint32_t>(outRef[i]))
            << "element " << i;
    }
    // In-place operation is part of the contract.
    std::vector<float> inplace = in;
    simd::setEnabled(true);
    simd::roundToHalfBatch(inplace.data(), inplace.data(),
                           inplace.size());
    for (std::size_t i = 0; i < in.size(); ++i)
        EXPECT_EQ(std::bit_cast<std::uint32_t>(inplace[i]),
                  std::bit_cast<std::uint32_t>(outVec[i]));
}

TEST(SimdConvert, QuantizeBatchMatchesScalar)
{
    SimdToggle guard;
    std::vector<float> in = adversarialFloats();
    for (int bits : {8, 16}) {
        for (double absMax : {1.0, 3.7, 1000.0}) {
            QuantParams qp = calibrateAbsMax(absMax, bits);
            std::vector<std::int32_t> outVec(in.size()),
                outRef(in.size());
            simd::setEnabled(true);
            simd::quantizeBatch(in.data(), outVec.data(), in.size(),
                                qp);
            simd::setEnabled(false);
            simd::quantizeBatch(in.data(), outRef.data(), in.size(),
                                qp);
            for (std::size_t i = 0; i < in.size(); ++i) {
                EXPECT_EQ(outVec[i], quantize(in[i], qp))
                    << "bits " << bits << " element " << i;
                EXPECT_EQ(outVec[i], outRef[i]);
            }
        }
    }
}

TEST(SimdConvert, QuantizeBatchRoundsHalfToEven)
{
    // scale = 1 makes the tie points explicit: nearbyint under the
    // default rounding mode takes 0.5 -> 0, 1.5 -> 2, 2.5 -> 2.
    QuantParams qp;
    qp.scale = 1.0;
    qp.bits = 8;
    std::vector<float> in{0.5f, 1.5f, 2.5f, 3.5f, -0.5f, -1.5f, -2.5f,
                          -3.5f, 126.5f, 127.5f};
    std::vector<std::int32_t> expect{0, 2, 2, 4, 0, -2, -2, -4, 126,
                                     127};
    std::vector<std::int32_t> out(in.size());
    SimdToggle guard;
    for (bool on : {true, false}) {
        simd::setEnabled(on);
        simd::quantizeBatch(in.data(), out.data(), in.size(), qp);
        EXPECT_EQ(out, expect) << "simd " << on;
    }
}

TEST(SimdKernels, ConvForwardMatchesScalarAcrossShapes)
{
    const ConvSpec specs[] = {
        {.inC = 3, .outC = 13, .kh = 3, .kw = 3, .pad = 1},
        {.inC = 5, .outC = 9, .kh = 1, .kw = 1, .bias = false},
        {.inC = 8, .outC = 12, .kh = 3, .kw = 3, .stride = 2, .pad = 2,
         .dilation = 2, .groups = 4},
        {.inC = 6, .outC = 6, .kh = 3, .kw = 3, .pad = 1, .groups = 6},
        {.inC = 4, .outC = 17, .kh = 2, .kw = 3, .stride = 2},
    };
    int seed = 300;
    for (const ConvSpec &spec : specs) {
        for (Precision p : kAllPrecisions) {
            auto conv = makeConv("c", spec, seed);
            Tensor x = randomTensor(seed + 1, 2, 7, 9, spec.inC);
            std::vector<const Tensor *> ins{&x};
            setupPrecision(*conv, ins, p);
            Tensor out = forwardBothWays(*conv, ins);
            // Anchor to the canonical definition: a sample of neurons
            // must match computeNeuron exactly.
            for (std::size_t flat = 0; flat < out.size();
                 flat += out.size() / 23 + 1) {
                NeuronIndex idx = out.indexOf(flat);
                EXPECT_EQ(
                    std::bit_cast<std::uint32_t>(out[flat]),
                    std::bit_cast<std::uint32_t>(
                        conv->computeNeuron(ins, idx, nullptr)))
                    << "outC " << spec.outC << " flat " << flat;
            }
            ++seed;
        }
    }
}

TEST(SimdKernels, ConvForwardRegionMatchesAcrossBoxes)
{
    ConvSpec spec{.inC = 6, .outC = 18, .kh = 3, .kw = 3, .pad = 1,
                  .groups = 2};
    for (Precision p : kAllPrecisions) {
        auto conv = makeConv("c", spec, 410);
        Tensor x = randomTensor(411, 1, 8, 8, spec.inC);
        std::vector<const Tensor *> ins{&x};
        setupPrecision(*conv, ins, p);
        Tensor golden = conv->forward(ins);

        // Boxes chosen to slice lane blocks: single channel, a span
        // crossing the block boundary, a cross-group span, full.
        struct Box
        {
            int c0, c1;
        };
        for (const Box &box :
             {Box{0, 1}, Box{3, 11}, Box{7, 18}, Box{0, 18}}) {
            Region r{0, 1, 2, 6, 1, 7, box.c0, box.c1};
            SimdToggle guard;
            for (bool on : {true, false}) {
                simd::setEnabled(on);
                Tensor out = golden;
                // Scribble inside the box to prove it is recomputed.
                for (int h = r.h0; h < r.h1; ++h)
                    for (int w = r.w0; w < r.w1; ++w)
                        for (int c = r.c0; c < r.c1; ++c)
                            out.at(0, h, w, c) = -1234.5f;
                conv->forwardRegion(ins, r, out);
                EXPECT_TRUE(bitIdentical(out, golden))
                    << "box [" << box.c0 << ", " << box.c1
                    << ") simd " << on;
            }
        }
    }
}

TEST(SimdKernels, FcForwardMatchesScalar)
{
    Rng rng(500);
    int inC = 7, units = 19;
    FC fc("fc", inC, units,
          heWeights(rng, static_cast<std::size_t>(inC) * units, inC),
          smallBiases(rng, units));
    Tensor x = randomTensor(501, 2, 3, 1, inC);
    std::vector<const Tensor *> ins{&x};
    for (Precision p : kAllPrecisions) {
        setupPrecision(fc, ins, p);
        Tensor out = forwardBothWays(fc, ins);
        for (std::size_t flat = 0; flat < out.size(); flat += 5) {
            NeuronIndex idx = out.indexOf(flat);
            EXPECT_EQ(std::bit_cast<std::uint32_t>(out[flat]),
                      std::bit_cast<std::uint32_t>(
                          fc.computeNeuron(ins, idx, nullptr)));
        }
    }
}

TEST(SimdKernels, MatMulForwardMatchesScalar)
{
    for (bool transB : {false, true}) {
        MatMulAB mm("mm", transB, 0.125f);
        Tensor a = randomTensor(601, 2, 5, 1, 11);
        Tensor b = transB ? randomTensor(602, 1, 13, 1, 11)
                          : randomTensor(602, 1, 11, 1, 13);
        std::vector<const Tensor *> ins{&a, &b};
        for (Precision p : kAllPrecisions) {
            setupPrecision(mm, ins, p);
            Tensor out = forwardBothWays(mm, ins);
            for (std::size_t flat = 0; flat < out.size(); flat += 7) {
                NeuronIndex idx = out.indexOf(flat);
                EXPECT_EQ(std::bit_cast<std::uint32_t>(out[flat]),
                          std::bit_cast<std::uint32_t>(
                              mm.computeNeuron(ins, idx, nullptr)))
                    << "transB " << transB;
            }
        }
    }
}

TEST(SimdKernels, ElementwiseAndActivationMatchScalar)
{
    // Length 21 leaves a scalar tail after any lane width; the NaN
    // and signed-zero elements exercise the select semantics.
    Tensor a = randomTensor(700, 1, 3, 7, 1);
    Tensor b = randomTensor(701, 1, 3, 7, 1);
    a.data()[0] = std::numeric_limits<float>::quiet_NaN();
    a.data()[1] = -0.0f;
    a.data()[2] = 0.0f;
    b.data()[3] = std::numeric_limits<float>::quiet_NaN();
    std::vector<const Tensor *> ab{&a, &b};
    std::vector<const Tensor *> only_a{&a};

    std::vector<std::unique_ptr<Layer>> layers;
    layers.push_back(std::make_unique<Elementwise>(
        "add", Elementwise::Op::Add));
    layers.push_back(std::make_unique<Elementwise>(
        "mul", Elementwise::Op::Mul));
    layers.push_back(std::make_unique<Elementwise>(
        "sub", Elementwise::Op::Sub));
    layers.push_back(std::make_unique<ScaleShift>("ss", -1.5f, 0.25f));
    layers.push_back(std::make_unique<Activation>(
        "relu", Activation::Func::ReLU));
    layers.push_back(std::make_unique<Activation>(
        "lrelu", Activation::Func::LeakyReLU, 0.1f));
    layers.push_back(std::make_unique<Activation>(
        "sigmoid", Activation::Func::Sigmoid));

    for (auto &layer : layers) {
        bool binary = layer->name() == "add" ||
                      layer->name() == "mul" ||
                      layer->name() == "sub";
        const auto &ins = binary ? ab : only_a;
        for (Precision p : {Precision::FP32, Precision::FP16}) {
            layer->setPrecision(p);
            forwardBothWays(*layer, ins);
        }
    }
}

namespace
{

/** Small mixed network for the whole-campaign equality tests. */
void
buildCampaignNet(Network &net, std::uint64_t seed)
{
    Rng rng(seed);
    NodeId c1 = net.add(
        makeConv("c1", {.inC = 3, .outC = 11, .kh = 3, .kw = 3,
                        .pad = 1},
                 seed + 1),
        0);
    NodeId r1 = net.add(
        std::make_unique<Activation>("relu", Activation::Func::ReLU),
        c1);
    NodeId c2 = net.add(
        makeConv("c2", {.inC = 11, .outC = 8, .kh = 3, .kw = 3,
                        .stride = 2, .groups = 1},
                 seed + 2),
        r1);
    NodeId gap = net.add(std::make_unique<GlobalAvgPool>("gap"), c2);
    net.add(std::make_unique<FC>("fc", 8, 5, heWeights(rng, 40, 8),
                                 smallBiases(rng, 5)),
            gap);
}

/** Campaign checksums — counters and raw sample bits — must agree. */
void
expectCampaignsEqual(const CampaignResult &vec,
                     const CampaignResult &ref, const char *what)
{
    EXPECT_EQ(vec.totalInjections, ref.totalInjections) << what;
    ASSERT_EQ(vec.cells.size(), ref.cells.size()) << what;
    for (std::size_t i = 0; i < vec.cells.size(); ++i) {
        EXPECT_EQ(vec.cells[i].masked.successes(),
                  ref.cells[i].masked.successes())
            << what;
        EXPECT_EQ(vec.cells[i].masked.trials(),
                  ref.cells[i].masked.trials())
            << what;
    }
    ASSERT_EQ(vec.singleNeuronSamples.size(),
              ref.singleNeuronSamples.size())
        << what;
    for (std::size_t i = 0; i < vec.singleNeuronSamples.size(); ++i) {
        EXPECT_EQ(std::bit_cast<std::uint64_t>(
                      vec.singleNeuronSamples[i].first),
                  std::bit_cast<std::uint64_t>(
                      ref.singleNeuronSamples[i].first))
            << what;
        EXPECT_EQ(vec.singleNeuronSamples[i].second,
                  ref.singleNeuronSamples[i].second)
            << what;
    }
}

} // namespace

TEST(SimdKernels, CampaignChecksumIdenticalWithToggle)
{
    Network net("toggle");
    buildCampaignNet(net, 800);
    Tensor input = randomTensor(803, 1, 8, 8, 3);
    for (Precision p : kAllPrecisions) {
        net.setPrecision(p);
        if (p == Precision::INT8 || p == Precision::INT16)
            net.calibrate(input);

        CampaignConfig cfg;
        cfg.samplesPerCategory = 4;
        cfg.seed = 804;

        SimdToggle guard;
        simd::setEnabled(true);
        CampaignResult vec = runCampaign(net, input, top1Match(), cfg);
        simd::setEnabled(false);
        CampaignResult ref = runCampaign(net, input, top1Match(), cfg);
        expectCampaignsEqual(vec, ref, "toggle");
    }
}

TEST(SimdKernels, CampaignChecksumIdenticalAcrossForcedBackends)
{
    // One binary, every backend: force scalar, then each ISA table the
    // host can run, and require bit-identical campaign results.  This
    // is the runtime-dispatch counterpart of the toggle test above and
    // the in-process version of the cross-build CI matrix.
    Network net("dispatch");
    buildCampaignNet(net, 820);
    Tensor input = randomTensor(823, 1, 8, 8, 3);
    SimdToggle toggle;
    simd::setEnabled(true);
    BackendForce guard;
    for (Precision p : kAllPrecisions) {
        net.setPrecision(p);
        if (p == Precision::INT8 || p == Precision::INT16)
            net.calibrate(input);

        CampaignConfig cfg;
        cfg.samplesPerCategory = 4;
        cfg.seed = 824;

        ASSERT_TRUE(simd::forceBackend("scalar"));
        CampaignResult ref = runCampaign(net, input, top1Match(), cfg);
        for (const char *n : availableBackends()) {
            ASSERT_TRUE(simd::forceBackend(n));
            CampaignResult got =
                runCampaign(net, input, top1Match(), cfg);
            expectCampaignsEqual(got, ref, n);
        }
    }
}

TEST(SimdNarrow, ChunkPairsBoundary)
{
    // pairBound = 2 * 2^(bits-1) * maxAbsW; the chunk is the largest
    // pair count whose int32 sum provably cannot overflow.
    EXPECT_EQ(simd::narrowChunkPairs(8, 1), 2147483647 / 256);
    EXPECT_EQ(simd::narrowChunkPairs(8, 127), 2147483647 / 32512);
    // Exactly at the int32 edge one pair still fits ...
    EXPECT_EQ(simd::narrowChunkPairs(16, 32767), 1);
    // ... one more magnitude step and even a single pair could wrap
    // (2 * 2^15 * 2^15 = 2^31 > INT32_MAX; this bound also excludes
    // pmaddwd's sole internal wrap case, all four operands -2^15).
    EXPECT_EQ(simd::narrowChunkPairs(16, 32768), 0);
    // All-zero weights overflow nothing: the cap applies.
    EXPECT_EQ(simd::narrowChunkPairs(8, 0), 1 << 28);

    // Eligibility = legal AND long enough to be profitable.
    EXPECT_TRUE(simd::narrowEligible(simd::narrowChunkPairs(8, 127)));
    EXPECT_FALSE(simd::narrowEligible(simd::narrowChunkPairs(16, 32767)));
    EXPECT_FALSE(simd::narrowEligible(0));
    EXPECT_FALSE(simd::narrowEligible(simd::kNarrowMinChunk - 1));
    EXPECT_TRUE(simd::narrowEligible(simd::kNarrowMinChunk));
}

namespace
{

/** Plain int64 reference for the narrow GEMM contract. */
void
refGemmNarrow(const std::int16_t *x, int red, int cols,
              const std::vector<std::int16_t> &w, std::int64_t *acc)
{
    constexpr int L = simd::kNarrowLanes;
    int nblocks = simd::packBlocks(cols, L);
    for (int b = 0; b < nblocks; ++b)
        for (int l = 0; l < L; ++l) {
            int c = b * L + l;
            std::int64_t s = 0;
            if (c < cols)
                for (int k = 0; k < red; ++k)
                    s += static_cast<std::int64_t>(x[k]) *
                         w[static_cast<std::size_t>(k) * cols + c];
            acc[b * L + l] = s;
        }
}

} // namespace

TEST(SimdNarrow, GemmNarrowMatchesInt64ReferenceAcrossBackends)
{
    SimdToggle toggle;
    simd::setEnabled(true);
    BackendForce guard;
    Rng rng(910);
    // Odd reductions exercise the zero-weight pair pad; cols = 11
    // leaves a partially filled second lane block.
    for (int red : {1, 7, 8, 128}) {
        for (int cols : {1, 8, 11}) {
            std::vector<std::int16_t> w(
                static_cast<std::size_t>(red) * cols);
            for (auto &v : w)
                v = static_cast<std::int16_t>(
                    static_cast<int>(rng.normal(0, 60)) % 127);
            int redPairs = simd::packPairs(red);
            std::vector<std::int16_t> x(2 * redPairs, 0);
            for (int k = 0; k < red; ++k)
                x[k] = static_cast<std::int16_t>(
                    static_cast<int>(rng.normal(0, 60)) % 128);
            if (red & 1) {
                // The pad operand pairs with a zero weight, so its
                // value must not matter: poison it.
                x[red] = 12345;
            }
            AlignedVec<std::int16_t> packed(
                simd::packNarrowSize(red, cols));
            simd::packNarrow(
                red, cols,
                [&](int k, int c) {
                    return static_cast<std::int32_t>(
                        w[static_cast<std::size_t>(k) * cols + c]);
                },
                packed.data());

            int nblocks = simd::packBlocks(cols, simd::kNarrowLanes);
            std::vector<std::int64_t> ref(
                static_cast<std::size_t>(nblocks) *
                simd::kNarrowLanes);
            refGemmNarrow(x.data(), red, cols, w, ref.data());

            // The spilled int64 result must not depend on the chunk
            // length (chunk invariance) or on the backend.
            for (int chunk : {1, 3, simd::narrowChunkPairs(8, 127)}) {
                for (const char *n : availableBackends()) {
                    ASSERT_TRUE(simd::forceBackend(n));
                    std::vector<std::int64_t> acc(ref.size(), -777);
                    simd::table().gemmNarrow(x.data(), redPairs,
                                             nblocks, packed.data(),
                                             chunk, acc.data());
                    EXPECT_EQ(acc, ref)
                        << "backend " << n << " red " << red
                        << " cols " << cols << " chunk " << chunk;
                }
            }
        }
    }
}

TEST(SimdNarrow, ChunkedSpillExactAtInt32Edge)
{
    // Each pair sum is 2 * 32767 * 32767 = 2147352578 — within 131070
    // of INT32_MAX, so one pair fits int32 exactly and two would wrap.
    // With chunkPairs = 1 every pair must spill into int64; 64 pairs
    // of that magnitude put the total near 1.37e11, far outside int32,
    // so a missed spill or an internal wrap cannot cancel out.
    constexpr int red = 128, cols = 9;
    constexpr std::int16_t kMax = 32767;
    std::vector<std::int16_t> w(
        static_cast<std::size_t>(red) * cols, kMax);
    int redPairs = simd::packPairs(red);
    std::vector<std::int16_t> x(2 * redPairs, kMax);
    // One column alternates signs so cancellation paths are covered.
    for (int k = 0; k < red; ++k)
        w[static_cast<std::size_t>(k) * cols + 4] =
            (k & 1) ? kMax : static_cast<std::int16_t>(-kMax);
    AlignedVec<std::int16_t> packed(simd::packNarrowSize(red, cols));
    simd::packNarrow(
        red, cols,
        [&](int k, int c) {
            return static_cast<std::int32_t>(
                w[static_cast<std::size_t>(k) * cols + c]);
        },
        packed.data());

    int nblocks = simd::packBlocks(cols, simd::kNarrowLanes);
    std::vector<std::int64_t> ref(
        static_cast<std::size_t>(nblocks) * simd::kNarrowLanes);
    refGemmNarrow(x.data(), red, cols, w, ref.data());

    SimdToggle toggle;
    simd::setEnabled(true);
    BackendForce guard;
    for (const char *n : availableBackends()) {
        ASSERT_TRUE(simd::forceBackend(n));
        std::vector<std::int64_t> acc(ref.size(), -777);
        simd::table().gemmNarrow(x.data(), redPairs, nblocks,
                                 packed.data(), 1, acc.data());
        EXPECT_EQ(acc, ref) << "backend " << n;
    }
}

TEST(SimdNarrow, BatchMacNarrowMatchesReference)
{
    SimdToggle toggle;
    simd::setEnabled(true);
    BackendForce guard;
    Rng rng(930);
    for (int red : {1, 5, 8, 33}) {
        for (int W : {1, 4, 5, 8}) {
            int redPairs = simd::packPairs(red);
            // Lane-minor operand rows, zero-padded final row when the
            // reduction is odd (contract: the pad weight is zero).
            std::vector<std::int16_t> xg(
                static_cast<std::size_t>(2 * redPairs) * W, 0);
            for (int k = 0; k < red; ++k)
                for (int l = 0; l < W; ++l)
                    xg[static_cast<std::size_t>(k) * W + l] =
                        static_cast<std::int16_t>(
                            static_cast<int>(rng.normal(0, 60)) % 128);
            std::vector<std::int16_t> wv(2 * redPairs, 0);
            for (int k = 0; k < red; ++k)
                wv[k] = static_cast<std::int16_t>(
                    static_cast<int>(rng.normal(0, 60)) % 127);

            std::vector<std::int64_t> ref(W, 0);
            for (int l = 0; l < W; ++l) {
                std::int64_t s = 0;
                for (int k = 0; k < red; ++k)
                    s += static_cast<std::int64_t>(wv[k]) *
                         xg[static_cast<std::size_t>(k) * W + l];
                ref[l] = s;
            }

            for (int chunk : {1, 3, simd::narrowChunkPairs(8, 127)}) {
                for (const char *n : availableBackends()) {
                    ASSERT_TRUE(simd::forceBackend(n));
                    std::vector<std::int64_t> acc(W, -777);
                    simd::table().batchMacNarrow(xg.data(), wv.data(),
                                                 redPairs, 2, chunk, W,
                                                 acc.data());
                    EXPECT_EQ(acc, ref)
                        << "backend " << n << " red " << red << " W "
                        << W << " chunk " << chunk;
                }
            }
        }
    }
}

TEST(ArenaAlignment, PoolsAndPacksAre64ByteAligned)
{
    static_assert(kBufferAlign == 64);
    static_assert(kBufferAlign >= 32,
                  "AVX2 aligned loads need 32-byte buffers");
    auto aligned = [](const void *p) {
        return reinterpret_cast<std::uintptr_t>(p) % kBufferAlign == 0;
    };
    Arena &a = Arena::local();
    {
        auto f = a.floats(3);
        auto i = a.ints(7);
        auto s = a.shorts(61);
        auto l = a.longs(5);
        EXPECT_TRUE(aligned(f.data()));
        EXPECT_TRUE(aligned(i.data()));
        EXPECT_TRUE(aligned(s.data()));
        EXPECT_TRUE(aligned(l.data()));
    }
    // Reused (pooled) buffers keep the alignment after regrowth.
    {
        auto f = a.floats(1024);
        EXPECT_TRUE(aligned(f.data()));
    }
    // Packed-weight buffers share the allocator.
    AlignedVec<std::int16_t> pack(129);
    AlignedVec<float> packF(33);
    EXPECT_TRUE(aligned(pack.data()));
    EXPECT_TRUE(aligned(packF.data()));
}

TEST(QuantConstexpr, RangesAndClampAreCompileTime)
{
    constexpr QuantParams q8{1.0, 8};
    constexpr QuantParams q16{1.0, 16};
    static_assert(q8.qmax() == 127);
    static_assert(q8.qmin() == -128);
    static_assert(q16.qmax() == 32767);
    static_assert(q16.qmin() == -32768);
    static_assert(clampToRange(1000, q8) == 127);
    static_assert(clampToRange(-1000, q8) == -128);
    static_assert(clampToRange(42, q8) == 42);
    static_assert(clampToRange(40000, q16) == 32767);
    EXPECT_EQ(clampToRange(-40000, q16), -32768);
}
