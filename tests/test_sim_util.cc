/**
 * @file
 * Tests of the reporting utilities (Table rendering) and the
 * performance-model properties used by the activeness analysis.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "accel/perf_model.hh"
#include "sim/parse.hh"
#include "sim/table.hh"

using namespace fidelity;

TEST(Table, RendersAlignedColumns)
{
    Table t({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow({"b", "22"});
    std::ostringstream os;
    t.print(os);
    std::string out = os.str();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("alpha"), std::string::npos);
    // Header separator present.
    EXPECT_NE(out.find("-----"), std::string::npos);
    // Both rows rendered on their own lines.
    EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(Table, NumberFormatting)
{
    EXPECT_EQ(Table::num(1.23456, 2), "1.23");
    EXPECT_EQ(Table::num(std::uint64_t{42}), "42");
    EXPECT_EQ(Table::pct(0.1234), "12.3%");
    EXPECT_EQ(Table::pct(0.5, 0), "50%");
}

TEST(Table, RowCount)
{
    Table t({"a"});
    EXPECT_EQ(t.rows(), 0u);
    t.addRow({"x"});
    EXPECT_EQ(t.rows(), 1u);
}

TEST(TableDeath, RowArityMismatch)
{
    Table t({"a", "b"});
    EXPECT_DEATH(t.addRow({"only-one"}), "cells");
}

TEST(Table, HeadingUnderlinesTitle)
{
    std::ostringstream os;
    printHeading(os, "Hello");
    EXPECT_NE(os.str().find("Hello\n====="), std::string::npos);
}

namespace
{

EngineLayer
convLayer(int in_c, int hw, int out_c)
{
    EngineLayer el;
    el.kind = EngineLayer::Kind::Conv;
    el.inC = in_c;
    el.inH = hw;
    el.inW = hw;
    el.outC = out_c;
    el.outH = hw;
    el.outW = hw;
    el.kh = 3;
    el.kw = 3;
    el.pad = 1;
    el.weights.assign(static_cast<std::size_t>(9) * in_c * out_c, 0.0f);
    return el;
}

} // namespace

TEST(PerfModel, FractionsSumToOne)
{
    NvdlaConfig cfg;
    LayerTiming t = estimateTiming(cfg, convLayer(8, 8, 32));
    EXPECT_NEAR(t.fetchActiveFrac() + t.macActiveFrac() +
                    t.drainActiveFrac(),
                1.0, 1e-12);
    EXPECT_EQ(t.totalCycles,
              t.fetchCycles + t.macCycles + t.drainCycles);
}

TEST(PerfModel, MoreChannelsMoreCycles)
{
    NvdlaConfig cfg;
    LayerTiming small = estimateTiming(cfg, convLayer(8, 8, 16));
    LayerTiming big = estimateTiming(cfg, convLayer(8, 8, 64));
    EXPECT_GT(big.totalCycles, small.totalCycles);
    EXPECT_GT(big.macCycles, small.macCycles);
}

TEST(PerfModel, FetchShareGrowsWithInputVolume)
{
    NvdlaConfig cfg;
    // A 1x1-output layer is fetch-bound; a large layer is MAC-bound.
    EngineLayer fetch_bound = convLayer(64, 4, 16);
    EngineLayer mac_bound = convLayer(4, 16, 64);
    EXPECT_GT(estimateTiming(cfg, fetch_bound).fetchActiveFrac(),
              estimateTiming(cfg, mac_bound).fetchActiveFrac());
}

TEST(PerfModel, RedOverrideShrinksMacCycles)
{
    NvdlaConfig cfg;
    EngineLayer full = convLayer(16, 8, 16);
    EngineLayer depthwise = full;
    depthwise.redOverride = 9; // per-group depth of a depthwise conv
    EXPECT_LT(estimateTiming(cfg, depthwise).macCycles,
              estimateTiming(cfg, full).macCycles);
}

TEST(PerfModel, MatMulTiming)
{
    NvdlaConfig cfg;
    EngineLayer mm;
    mm.kind = EngineLayer::Kind::MatMul;
    mm.rows = 10;
    mm.red = 12;
    mm.cols = 20;
    mm.weights.assign(12u * 20, 0.0f);
    LayerTiming t = estimateTiming(cfg, mm);
    EXPECT_GT(t.totalCycles, 0u);
    // Fetch covers both operands: 240 weights + 120 inputs + 2.
    EXPECT_EQ(t.fetchCycles, 240u + 1 + 120u + 1);
}

// ===== Checked CLI argument parsing =================================

TEST(Parse, IntAcceptsExactDecimalInRange)
{
    EXPECT_EQ(parseIntArg("samples", "200", 1, 1000), 200);
    EXPECT_EQ(parseIntArg("threads", "0", 0, 64), 0);
    EXPECT_EQ(parseIntArg("delta", "-5", -10, 10), -5);
}

TEST(Parse, IntRejectsGarbageNamingTheArgument)
{
    // The bug this guards: atoi("abc") silently returned 0, so
    // threads=abc ran a bogus configuration without a word.
    EXPECT_DEATH((void)parseIntArg("threads", "abc", 0, 64), "threads");
    EXPECT_DEATH((void)parseIntArg("samples", "12abc", 1, 1000),
                 "samples");
    EXPECT_DEATH((void)parseIntArg("samples", "", 1, 1000), "samples");
    EXPECT_DEATH((void)parseIntArg("samples", "1.5", 1, 1000),
                 "samples");
    EXPECT_DEATH((void)parseIntArg("samples", " 12", 1, 1000),
                 "samples");
}

TEST(Parse, IntRejectsOutOfRangeAndOverflow)
{
    EXPECT_DEATH((void)parseIntArg("threads", "65", 0, 64),
                 "out of range");
    EXPECT_DEATH((void)parseIntArg("threads", "-1", 0, 64),
                 "out of range");
    EXPECT_DEATH((void)parseIntArg("big", "99999999999999999999", 0,
                                   1000),
                 "out of range");
}

TEST(Parse, DoubleAcceptsFiniteInRange)
{
    EXPECT_DOUBLE_EQ(parseDoubleArg("target", "0.2", 0.0, 10.0), 0.2);
    EXPECT_DOUBLE_EQ(parseDoubleArg("target", "1e-3", 0.0, 10.0),
                     1e-3);
}

TEST(Parse, DoubleRejectsGarbageNonFiniteAndOutOfRange)
{
    EXPECT_DEATH((void)parseDoubleArg("target", "xyz", 0.0, 10.0),
                 "target");
    EXPECT_DEATH((void)parseDoubleArg("target", "0.2q", 0.0, 10.0),
                 "target");
    EXPECT_DEATH((void)parseDoubleArg("target", "nan", 0.0, 10.0),
                 "finite");
    EXPECT_DEATH((void)parseDoubleArg("target", "inf", 0.0, 10.0),
                 "finite");
    EXPECT_DEATH((void)parseDoubleArg("target", "11", 0.0, 10.0),
                 "out of range");
}
