/**
 * @file
 * Unit and property tests for Conv2D: reference-kernel agreement,
 * consumer queries, single-neuron recomputation, and substitutions.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "nn/conv.hh"
#include "nn/init.hh"
#include "sim/rng.hh"
#include "tensor/float16.hh"

using namespace fidelity;

namespace
{

/** Straightforward reference convolution in double precision. */
Tensor
refConv(const ConvSpec &s, const Tensor &x, const std::vector<float> &w,
        const std::vector<float> &b)
{
    int cpg = s.inC / s.groups;
    int opg = s.outC / s.groups;
    int eff_kh = (s.kh - 1) * s.dilation + 1;
    int eff_kw = (s.kw - 1) * s.dilation + 1;
    int oh_max = (x.h() + 2 * s.pad - eff_kh) / s.stride + 1;
    int ow_max = (x.w() + 2 * s.pad - eff_kw) / s.stride + 1;
    Tensor out(x.n(), oh_max, ow_max, s.outC);
    for (int n = 0; n < x.n(); ++n)
        for (int oh = 0; oh < oh_max; ++oh)
            for (int ow = 0; ow < ow_max; ++ow)
                for (int oc = 0; oc < s.outC; ++oc) {
                    int g = oc / opg;
                    double acc = b.empty() ? 0.0 : b[oc];
                    for (int kh = 0; kh < s.kh; ++kh)
                        for (int kw = 0; kw < s.kw; ++kw)
                            for (int cig = 0; cig < cpg; ++cig) {
                                int ih = oh * s.stride - s.pad +
                                         kh * s.dilation;
                                int iw = ow * s.stride - s.pad +
                                         kw * s.dilation;
                                if (ih < 0 || ih >= x.h() || iw < 0 ||
                                    iw >= x.w())
                                    continue;
                                std::size_t wi =
                                    ((static_cast<std::size_t>(kh) *
                                          s.kw + kw) * cpg + cig) *
                                        s.outC + oc;
                                acc += static_cast<double>(
                                           x.at(n, ih, iw,
                                                g * cpg + cig)) *
                                       w[wi];
                            }
                    out.at(n, oh, ow, oc) = static_cast<float>(acc);
                }
    return out;
}

struct ConvCase
{
    int in_c, out_c, kh, stride, pad, dilation, groups, h, w;
};

class ConvParam : public ::testing::TestWithParam<ConvCase>
{
};

} // namespace

TEST_P(ConvParam, MatchesReferenceKernel)
{
    ConvCase cc = GetParam();
    Rng rng(42);
    ConvSpec spec;
    spec.inC = cc.in_c;
    spec.outC = cc.out_c;
    spec.kh = cc.kh;
    spec.kw = cc.kh;
    spec.stride = cc.stride;
    spec.pad = cc.pad;
    spec.dilation = cc.dilation;
    spec.groups = cc.groups;
    std::size_t nw = static_cast<std::size_t>(spec.kh) * spec.kw *
                     (spec.inC / spec.groups) * spec.outC;
    auto w = heWeights(rng, nw, spec.kh * spec.kw * spec.inC);
    auto b = smallBiases(rng, spec.outC);
    Conv2D conv("c", spec, w, b);

    Tensor x(1, cc.h, cc.w, cc.in_c);
    for (auto &v : x.data())
        v = static_cast<float>(rng.normal(0, 1));
    std::vector<const Tensor *> ins{&x};

    Tensor got = conv.forward(ins);
    Tensor want = refConv(spec, x, w, b);
    ASSERT_TRUE(got.sameShape(want));
    for (std::size_t i = 0; i < got.size(); ++i)
        EXPECT_NEAR(got[i], want[i], 2e-4f) << "i=" << i;
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, ConvParam,
    ::testing::Values(ConvCase{4, 8, 3, 1, 1, 1, 1, 6, 6},
                      ConvCase{4, 8, 3, 2, 1, 1, 1, 8, 8},
                      ConvCase{3, 6, 1, 1, 0, 1, 1, 5, 5},
                      ConvCase{4, 8, 3, 1, 0, 1, 1, 7, 7},
                      ConvCase{4, 8, 3, 1, 2, 2, 1, 9, 9},
                      ConvCase{6, 6, 3, 1, 1, 1, 6, 6, 6},
                      ConvCase{8, 16, 3, 1, 1, 1, 2, 6, 6},
                      ConvCase{4, 8, 5, 1, 2, 1, 1, 8, 8}));

namespace
{

/** Build a standard small conv for the structural tests. */
struct Fixture
{
    ConvSpec spec;
    std::unique_ptr<Conv2D> conv;
    Tensor x;
    std::vector<const Tensor *> ins;

    explicit Fixture(int groups = 1, int stride = 1)
        : x(1, 6, 6, 4)
    {
        Rng rng(7);
        spec.inC = 4;
        spec.outC = 8;
        spec.kh = 3;
        spec.kw = 3;
        spec.pad = 1;
        spec.stride = stride;
        spec.groups = groups;
        std::size_t nw = 9u * (spec.inC / groups) * spec.outC;
        conv = std::make_unique<Conv2D>("c", spec,
                                        heWeights(rng, nw, 36),
                                        smallBiases(rng, 8));
        for (auto &v : x.data())
            v = static_cast<float>(rng.normal(0, 1));
        ins = {&x};
    }
};

} // namespace

TEST(Conv, ComputeNeuronMatchesForward)
{
    Fixture f;
    Tensor out = f.conv->forward(f.ins);
    for (std::size_t i = 0; i < out.size(); ++i) {
        EXPECT_EQ(f.conv->computeNeuron(f.ins, out.indexOf(i), nullptr),
                  out[i]);
    }
}

TEST(Conv, InputConsumersMatchBruteForce)
{
    // Property: the consumer set of an input element equals the set of
    // neurons whose value changes when that element is perturbed.
    Fixture f;
    Tensor golden = f.conv->forward(f.ins);
    Rng rng(11);
    for (int trial = 0; trial < 12; ++trial) {
        std::size_t elem = rng.below(
            static_cast<std::uint32_t>(f.x.size()));
        auto consumers = f.conv->inputConsumers(f.ins, elem);

        Tensor perturbed = f.x;
        perturbed[elem] += 10.0f;
        std::vector<const Tensor *> pins{&perturbed};
        Tensor out = f.conv->forward(pins);

        std::set<std::size_t> changed;
        for (std::size_t i = 0; i < out.size(); ++i)
            if (out[i] != golden[i])
                changed.insert(i);
        std::set<std::size_t> predicted;
        for (const NeuronIndex &n : consumers)
            predicted.insert(golden.offset(n.n, n.h, n.w, n.c));
        EXPECT_EQ(changed, predicted) << "elem=" << elem;
    }
}

TEST(Conv, WeightConsumersCoverAllChanges)
{
    // weightConsumers over-approximates with padded positions, so the
    // changed set must be a subset confined to one output channel.
    Fixture f;
    Tensor golden = f.conv->forward(f.ins);
    Rng rng(13);
    for (int trial = 0; trial < 12; ++trial) {
        std::size_t widx = rng.below(static_cast<std::uint32_t>(
            f.conv->weightCount(f.ins)));
        auto consumers = f.conv->weightConsumers(f.ins, widx);
        ASSERT_FALSE(consumers.empty());
        int oc = consumers[0].c;
        for (const NeuronIndex &n : consumers)
            EXPECT_EQ(n.c, oc);

        OperandSub sub;
        sub.kind = OperandSub::Kind::Weight;
        sub.flatIndex = widx;
        sub.value = f.conv->weightAt(f.ins, widx) + 5.0f;
        std::set<std::size_t> predicted;
        for (const NeuronIndex &n : consumers)
            predicted.insert(golden.offset(n.n, n.h, n.w, n.c));
        for (std::size_t i = 0; i < golden.size(); ++i) {
            NeuronIndex n = golden.indexOf(i);
            float y = f.conv->computeNeuron(f.ins, n, &sub);
            if (y != golden[i]) {
                EXPECT_TRUE(predicted.count(i))
                    << "unexpected change at " << n.str();
            }
        }
    }
}

TEST(Conv, InputSubstitutionChangesOnlyThatTerm)
{
    Fixture f;
    Tensor golden = f.conv->forward(f.ins);
    std::size_t elem = f.x.offset(0, 2, 3, 1);
    auto consumers = f.conv->inputConsumers(f.ins, elem);
    ASSERT_FALSE(consumers.empty());

    OperandSub sub;
    sub.kind = OperandSub::Kind::Input;
    sub.flatIndex = elem;
    sub.value = f.x[elem]; // same value -> no change
    for (const NeuronIndex &n : consumers)
        EXPECT_EQ(f.conv->computeNeuron(f.ins, n, &sub), golden.at(n));

    sub.value = f.x[elem] + 1.0f;
    for (const NeuronIndex &n : consumers)
        EXPECT_NE(f.conv->computeNeuron(f.ins, n, &sub), golden.at(n));
}

TEST(Conv, TermIndexSubstitutionHitsPaddedReads)
{
    // A corner output neuron reads padding; substituting by term index
    // must perturb it even though no input element matches.
    Fixture f;
    Tensor golden = f.conv->forward(f.ins);
    NeuronIndex corner{0, 0, 0, 0};
    OperandSub sub;
    sub.kind = OperandSub::Kind::Input;
    sub.termIndex = 0; // (ci=0, kh=0, kw=0) reads padding at (0,0)
    sub.value = 100.0f;
    float y = f.conv->computeNeuron(f.ins, corner, &sub);
    EXPECT_NE(y, golden.at(corner));
}

TEST(Conv, PsumFlipBeforeFirstTermPerturbsResult)
{
    Fixture f;
    Tensor golden = f.conv->forward(f.ins);
    NeuronIndex n{0, 3, 3, 2};
    OperandSub sub;
    sub.kind = OperandSub::Kind::PsumFlip;
    sub.flatIndex = 0;
    sub.bit = 30; // large exponent perturbation of the initial zero
    float y = f.conv->computeNeuron(f.ins, n, &sub);
    EXPECT_NE(y, golden.at(n));
}

TEST(Conv, PsumFlipAfterLastTermFlipsDrainedValue)
{
    Fixture f;
    NeuronIndex n{0, 3, 3, 2};
    int red = f.conv->reductionLength();
    OperandSub sub;
    sub.kind = OperandSub::Kind::PsumFlip;
    sub.flatIndex = static_cast<std::size_t>(red);
    sub.bit = 31; // sign flip of the final accumulator
    float with_flip = f.conv->computeNeuron(f.ins, n, &sub);
    float golden = f.conv->computeNeuron(f.ins, n, nullptr);
    float bias = 0.0f;
    // golden = acc + bias; with_flip = -acc + bias.
    // Their sum is 2 * bias, which is small and positive here.
    bias = (golden + with_flip) / 2.0f;
    EXPECT_NEAR(golden - bias, -(with_flip - bias), 1e-4f);
}

TEST(Conv, BiasSubstitution)
{
    Fixture f;
    NeuronIndex n{0, 2, 2, 5};
    float golden = f.conv->computeNeuron(f.ins, n, nullptr);
    OperandSub sub;
    sub.kind = OperandSub::Kind::Bias;
    sub.value = 0.0f;
    float no_bias = f.conv->computeNeuron(f.ins, n, &sub);
    sub.value = 2.5f;
    float big_bias = f.conv->computeNeuron(f.ins, n, &sub);
    EXPECT_NEAR(big_bias - no_bias, 2.5f, 1e-5f);
    EXPECT_NE(golden, big_bias);
}

TEST(Conv, ReductionLength)
{
    Fixture plain;
    EXPECT_EQ(plain.conv->reductionLength(), 4 * 9);
    Fixture grouped(/*groups=*/4);
    EXPECT_EQ(grouped.conv->reductionLength(), 9);
}

TEST(Conv, OutputShapes)
{
    Fixture s2(/*groups=*/1, /*stride=*/2);
    Tensor out = s2.conv->forward(s2.ins);
    EXPECT_EQ(out.h(), 3);
    EXPECT_EQ(out.w(), 3);
    EXPECT_EQ(out.c(), 8);
}

TEST(Conv, Fp16ModeRoundsThroughHalf)
{
    Fixture f;
    f.conv->setPrecision(Precision::FP16);
    Tensor out = f.conv->forward(f.ins);
    for (std::size_t i = 0; i < out.size(); ++i) {
        float v = out[i];
        EXPECT_EQ(v, halfBitsToFloat(floatToHalfBits(v)));
    }
}

TEST(ConvDeath, RejectsBadGeometry)
{
    ConvSpec spec;
    spec.inC = 4;
    spec.outC = 8;
    spec.groups = 3; // does not divide 4
    EXPECT_DEATH(Conv2D("bad", spec, {}, {}), "groups");
}

TEST(ConvDeath, RejectsWeightCountMismatch)
{
    ConvSpec spec;
    spec.inC = 2;
    spec.outC = 2;
    spec.kh = 1;
    spec.kw = 1;
    EXPECT_DEATH(Conv2D("bad", spec, std::vector<float>(3, 0.0f),
                        std::vector<float>(2, 0.0f)),
                 "expected");
}
