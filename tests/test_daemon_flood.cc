/**
 * @file
 * Admission-control flood battery for the campaign daemon: 200 mixed
 * requests — valid campaigns from four tenants, malformed JSON,
 * semantically invalid requests, and slow-reader connections that
 * never finish a frame — against a 2-worker, 8-slot daemon.  The
 * contract: every request is answered (a response, a diagnostic, or a
 * typed busy/draining rejection), the daemon never dies, its thread
 * count stays bounded by the fixed pool (not by request count), the
 * deficit-round-robin scheduler keeps per-tenant completions within
 * 2x of each other, and every campaign response is bit-identical to
 * the same campaign run in-process.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <future>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/campaign.hh"
#include "sim/service.hh"
#include "sim/service_proto.hh"

#if !defined(_WIN32)
#include <sys/socket.h>
#include <sys/un.h>
#endif

using namespace fidelity;

namespace
{

constexpr int kTenants = 4;
constexpr int kThreadsPerTenant = 2;
constexpr int kRequestsPerThread = 25; // 4 * 2 * 25 = 200 requests
constexpr int kSeedsPerTenant = 2;

std::string
uniqueSocketPath()
{
    return "/tmp/fidflood-" + std::to_string(::getpid()) + ".sock";
}

std::string
hexHash(std::uint64_t h)
{
    char buf[20];
    std::snprintf(buf, sizeof(buf), "0x%016llx",
                  static_cast<unsigned long long>(h));
    return buf;
}

/** The small campaign tenant `t` submits with its `which`-th seed;
 *  seeds are disjoint across tenants so every tenant owns its
 *  configs (and its single-flight merges). */
ServiceRequest
floodRequest(int tenant, int which)
{
    ServiceRequest req;
    req.samplesPerCategory = 2;
    req.shardGrain = 2;
    req.seed =
        100 + static_cast<std::uint64_t>(tenant) * kSeedsPerTenant +
        static_cast<std::uint64_t>(which % kSeedsPerTenant);
    req.tenant = "t" + std::to_string(tenant);
    return req;
}

/** "key": "value" extraction from a flat JSON line. */
std::string
jsonStringValue(const std::string &doc, const std::string &key)
{
    const std::string needle = "\"" + key + "\": \"";
    const std::size_t at = doc.find(needle);
    if (at == std::string::npos)
        return "";
    const std::size_t begin = at + needle.size();
    const std::size_t end = doc.find('"', begin);
    return doc.substr(begin, end - begin);
}

/** Current thread count of this process (Linux /proc). */
int
processThreadCount()
{
    std::ifstream in("/proc/self/status");
    std::string line;
    while (std::getline(in, line)) {
        if (line.rfind("Threads:", 0) == 0)
            return std::atoi(line.c_str() + 8);
    }
    return -1;
}

#if !defined(_WIN32)

/** A slow-loris connection: sends two bytes of a frame and then
 *  stalls.  The daemon must shed it at the receive deadline instead
 *  of dedicating any thread (or unbounded intake state) to it. */
bool
slowReaderIsShed(const std::string &socket_path)
{
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        return false;
    sockaddr_un sa{};
    sa.sun_family = AF_UNIX;
    std::strncpy(sa.sun_path, socket_path.c_str(),
                 sizeof(sa.sun_path) - 1);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&sa),
                  sizeof(sa)) != 0) {
        ::close(fd);
        return false;
    }
    ::send(fd, "\x08\x00", 2, 0); // half a length prefix, then silence
    // Drain until the daemon closes the connection (it first answers
    // with an error frame naming the deadline).
    char chunk[4096];
    for (;;) {
        const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
        if (n == 0)
            break;
        if (n < 0 && errno != EINTR) {
            ::close(fd);
            return false;
        }
    }
    ::close(fd);
    return true;
}

#endif // !defined(_WIN32)

/** What one flood submission came back as. */
struct Tally
{
    int ok = 0;
    int busy = 0;
    int invalid = 0;
    int shed = 0;
    int other = 0;
    std::vector<std::string> failures;
};

} // namespace

#if !defined(_WIN32)

TEST(DaemonFlood, MixedTenantFloodIsFairBoundedAndBitIdentical)
{
    const std::string sock = uniqueSocketPath();

    // Ground truth: every distinct campaign in the flood, in-process.
    std::map<std::string, std::string> want_checksum; // cfg hash -> sum
    for (int tenant = 0; tenant < kTenants; ++tenant) {
        for (int which = 0; which < kSeedsPerTenant; ++which) {
            ServiceRequest req = floodRequest(tenant, which);
            Network net = buildServiceNetwork(req);
            Tensor input = serviceInput(req);
            CampaignConfig cfg = campaignConfigFor(req);
            const std::uint64_t hash =
                campaignConfigHash(net, input, cfg);
            CampaignResult res =
                runCampaign(net, input, serviceMetric(req), cfg);
            want_checksum[hexHash(hash)] =
                hexHash(campaignChecksum(res));
        }
    }

    auto daemon = std::async(std::launch::async, [&] {
        DaemonOptions dopts;
        dopts.listenAddr = "unix:" + sock;
        dopts.maxConcurrent = 2;
        dopts.maxQueue = 8;
        dopts.recvDeadlineSec = 0.5; // shed slow readers quickly
        return runServiceDaemon(dopts);
    });
    {
        std::string response, err;
        for (int attempt = 0; attempt < 200; ++attempt) {
            if (queryServiceStatus("unix:" + sock, response, err))
                break;
            ASSERT_LT(attempt, 199) << err;
            std::this_thread::sleep_for(
                std::chrono::milliseconds(50));
        }
    }

    // Thread-count monitor: under the old thread-per-connection
    // daemon the flood would grow the process by one thread per
    // request; the worker-pool daemon must stay flat.
    const int baseline_threads = processThreadCount();
    ASSERT_GT(baseline_threads, 0);
    std::atomic<int> max_threads{baseline_threads};
    std::atomic<bool> monitoring{true};
    std::thread monitor([&] {
        while (monitoring.load()) {
            const int now = processThreadCount();
            int seen = max_threads.load();
            while (now > seen &&
                   !max_threads.compare_exchange_weak(seen, now)) {
            }
            std::this_thread::sleep_for(
                std::chrono::milliseconds(20));
        }
    });

    std::vector<Tally> tallies(
        static_cast<std::size_t>(kTenants * kThreadsPerTenant));
    std::vector<std::thread> submitters;
    for (int tenant = 0; tenant < kTenants; ++tenant) {
        for (int lane = 0; lane < kThreadsPerTenant; ++lane) {
            const int slot = tenant * kThreadsPerTenant + lane;
            submitters.emplace_back([&, tenant, lane, slot] {
                Tally &tally = tallies[static_cast<std::size_t>(slot)];
                for (int i = 0; i < kRequestsPerThread; ++i) {
                    if (i % 5 == 2) {
                        // Malformed and semantically invalid requests
                        // interleave with everyone's real work.
                        const std::string bad =
                            (i % 2 == 0)
                                ? "definitely not json"
                                : "{\"network\": \"vgg9000\"}";
                        std::string response, err;
                        if (!submitServiceRequest("unix:" + sock, bad,
                                                  false, response,
                                                  err) &&
                            !err.empty())
                            tally.invalid += 1;
                        else
                            tally.other += 1;
                        continue;
                    }
                    if (i == 13) {
                        if (slowReaderIsShed(sock))
                            tally.shed += 1;
                        else
                            tally.other += 1;
                        continue;
                    }
                    const ServiceRequest req =
                        floodRequest(tenant, lane + i);
                    std::string response, err;
                    if (submitServiceRequest("unix:" + sock,
                                             serviceRequestJson(req),
                                             false, response, err)) {
                        // A completion must be the bit-identical
                        // campaign the in-process run produced.
                        const std::string hash =
                            jsonStringValue(response, "config_hash");
                        const std::string sum = jsonStringValue(
                            response, "campaign_checksum");
                        auto it = want_checksum.find(hash);
                        if (it != want_checksum.end() &&
                            it->second == sum) {
                            tally.ok += 1;
                        } else {
                            tally.other += 1;
                            tally.failures.push_back(
                                "checksum mismatch: " + response);
                        }
                        continue;
                    }
                    std::string code;
                    if (typedErrorStatus(err, code) &&
                        code == "busy") {
                        tally.busy += 1;
                    } else {
                        tally.other += 1;
                        tally.failures.push_back("unexpected: " +
                                                 err);
                    }
                }
            });
        }
    }
    for (std::thread &t : submitters)
        t.join();
    monitoring.store(false);
    monitor.join();

    // Every request was answered with an expected verdict.
    int total_ok = 0, total_busy = 0, total_invalid = 0,
        total_shed = 0;
    std::vector<int> ok_by_tenant(kTenants, 0);
    for (int slot = 0;
         slot < kTenants * kThreadsPerTenant; ++slot) {
        const Tally &tally = tallies[static_cast<std::size_t>(slot)];
        for (const std::string &f : tally.failures)
            ADD_FAILURE() << "slot " << slot << ": " << f;
        EXPECT_EQ(tally.other, 0);
        total_ok += tally.ok;
        total_busy += tally.busy;
        total_invalid += tally.invalid;
        total_shed += tally.shed;
        ok_by_tenant[slot / kThreadsPerTenant] += tally.ok;
    }
    EXPECT_EQ(total_ok + total_busy + total_invalid + total_shed,
              kTenants * kThreadsPerTenant * kRequestsPerThread);
    EXPECT_EQ(total_invalid, kTenants * kThreadsPerTenant * 5);
    EXPECT_EQ(total_shed, kTenants * kThreadsPerTenant);
    EXPECT_GT(total_ok, 0);

    // DRR fairness: identical demand from every tenant must yield
    // completion counts within 2x of each other.
    int min_ok = ok_by_tenant[0], max_ok = ok_by_tenant[0];
    for (int t = 1; t < kTenants; ++t) {
        min_ok = std::min(min_ok, ok_by_tenant[t]);
        max_ok = std::max(max_ok, ok_by_tenant[t]);
    }
    EXPECT_GT(min_ok, 0);
    EXPECT_LE(max_ok, 2 * min_ok)
        << "tenant completions: " << ok_by_tenant[0] << " "
        << ok_by_tenant[1] << " " << ok_by_tenant[2] << " "
        << ok_by_tenant[3];

    // Bounded threads: the daemon adds only its fixed pool (intake +
    // 2 workers); the flood itself adds the 8 submitters + monitor.
    // Generous slack still catches the thread-per-connection regime,
    // which would add tens of threads at this request count.
    EXPECT_LE(max_threads.load(), baseline_threads + 12)
        << "baseline " << baseline_threads;

    // The daemon survived and its status document saw the tenants.
    std::string status, err;
    ASSERT_TRUE(queryServiceStatus("unix:" + sock, status, err))
        << err;
    EXPECT_NE(status.find("\"daemon.admitted\""), std::string::npos);
    EXPECT_NE(status.find("\"daemon.tenant.t0.admitted\""),
              std::string::npos)
        << status;
    EXPECT_NE(status.find("\"daemon.queue_wait_s\""),
              std::string::npos);

    std::string response;
    ASSERT_TRUE(
        submitServiceRequest("unix:" + sock, "", true, response, err))
        << err;
    EXPECT_EQ(daemon.get(), 0);
}

#endif // !defined(_WIN32)
