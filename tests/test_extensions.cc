/**
 * @file
 * Edge-case tests for the extension features: memory-fault timing
 * corners, directed output-path validation, and the value-bounding
 * co-design knob.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/memory_faults.hh"
#include "core/validation.hh"
#include "nn/activation.hh"
#include "nn/fc.hh"
#include "nn/init.hh"
#include "nn/network.hh"
#include "nn/softmax.hh"
#include "workloads/metrics.hh"
#include "workloads/models.hh"

using namespace fidelity;

namespace
{

struct ConvFixture
{
    ConvSpec spec;
    std::unique_ptr<Conv2D> conv;
    Tensor x;
    std::vector<const Tensor *> ins;

    ConvFixture()
        : x(1, 6, 6, 8)
    {
        Rng rng(29);
        spec.inC = 8;
        spec.outC = 16;
        spec.kh = 3;
        spec.kw = 3;
        spec.pad = 1;
        conv = std::make_unique<Conv2D>(
            "c", spec, heWeights(rng, 9u * 8 * 16, 72),
            smallBiases(rng, 16));
        conv->setPrecision(Precision::FP16);
        for (auto &v : x.data())
            v = static_cast<float>(rng.normal(0, 1));
        ins = {&x};
    }
};

} // namespace

TEST(Extensions, MemFaultBeforeLoadIsOverwritten)
{
    // A CBUF word corrupted before the fetch writes it is overwritten
    // by the load: architecturally masked.
    ConvFixture f;
    NvdlaConfig cfg;
    NvdlaFi fi(cfg, engineLayerFromConv(*f.conv, f.x), f.x);

    MemFault mf;
    mf.weightRegion = true;
    mf.addr = 0;    // weight word 0 is written at fetch cycle 2
    mf.mask = 0x8000;
    mf.cycle = 1;   // corrupt before the write lands
    RtlOutcome out = fi.injectMem({mf});
    EXPECT_TRUE(out.masked());
}

TEST(Extensions, MemFaultAfterLastUseIsMasked)
{
    // Corrupting an input word after the compute finished reading it
    // changes nothing.
    ConvFixture f;
    NvdlaConfig cfg;
    NvdlaFi fi(cfg, engineLayerFromConv(*f.conv, f.x), f.x);

    MemFault mf;
    mf.weightRegion = false;
    mf.addr = 0;
    mf.mask = 0x8000;
    mf.cycle = fi.goldenCycles(); // the final cycle
    RtlOutcome out = fi.injectMem({mf});
    EXPECT_TRUE(out.masked());
}

TEST(Extensions, DirectedOutputRegCasesMatch)
{
    ConvFixture f;
    NvdlaConfig cfg;
    Validator val(cfg, *f.conv, f.ins);
    Rng rng(3);
    int non_masked = 0, mismatches = 0;
    for (int i = 0; i < 120; ++i) {
        CaseResult cr = val.runOneDirected(FFClass::OutputReg, rng);
        if (cr.rtlMasked != cr.predMasked)
            mismatches += 1;
        if (!cr.rtlMasked && !cr.predMasked) {
            non_masked += 1;
            EXPECT_EQ(cr.rtlCount, 1);
            mismatches += !(cr.setMatch && cr.valueMatch);
        }
    }
    EXPECT_EQ(mismatches, 0);
    EXPECT_GT(non_masked, 40);
}

TEST(Extensions, DirectedBiasRegCasesMatch)
{
    ConvFixture f;
    NvdlaConfig cfg;
    Validator val(cfg, *f.conv, f.ins);
    Rng rng(5);
    int non_masked = 0, mismatches = 0;
    for (int i = 0; i < 120; ++i) {
        CaseResult cr = val.runOneDirected(FFClass::BiasReg, rng);
        if (cr.rtlMasked != cr.predMasked)
            mismatches += 1;
        if (!cr.rtlMasked && !cr.predMasked) {
            non_masked += 1;
            mismatches += !(cr.setMatch && cr.valueMatch);
        }
    }
    EXPECT_EQ(mismatches, 0);
    EXPECT_GT(non_masked, 10);
}

TEST(Extensions, DirectedSamplingLandsInLivePhases)
{
    ConvFixture f;
    NvdlaConfig cfg;
    NvdlaFi fi(cfg, engineLayerFromConv(*f.conv, f.x), f.x);
    Rng rng(7);
    for (int i = 0; i < 60; ++i) {
        FaultSite s = fi.sampleSiteDirected(FFClass::OperandInput, rng);
        EXPECT_EQ(fi.context(s).phase, EnginePhase::Mac);
        FaultSite w = fi.sampleSiteDirected(FFClass::FetchWeight, rng);
        EXPECT_EQ(fi.context(w).phase, EnginePhase::FetchW);
        FaultSite d = fi.sampleSiteDirected(FFClass::LocalMuxSel, rng);
        EXPECT_EQ(fi.context(d).phase, EnginePhase::Drain);
    }
}

TEST(Extensions, GlobalSiteActivenessRules)
{
    ConvFixture f;
    NvdlaConfig cfg;
    Validator val(cfg, *f.conv, f.ins);

    // Config registers are always live.
    FaultSite cfg_site;
    cfg_site.ff = {FFClass::GlobalConfig,
                   static_cast<int>(ConfigReg::OutC), 0, 0};
    cfg_site.cycle = 5;
    EXPECT_TRUE(val.globalSiteActive(cfg_site));

    // The fetch counter is live during fetch, dead during drain.
    const auto &trace = val.fi().golden().trace;
    std::uint64_t fetch_cycle = 0, drain_cycle = 0;
    for (std::size_t i = 0; i < trace.size(); ++i) {
        if (trace[i].phase == EnginePhase::FetchW && !fetch_cycle)
            fetch_cycle = i + 1;
        if (trace[i].phase == EnginePhase::Drain && !drain_cycle)
            drain_cycle = i + 1;
    }
    FaultSite cnt_site;
    cnt_site.ff = {FFClass::GlobalCounter,
                   static_cast<int>(CounterReg::Fetch), 0, 0};
    cnt_site.cycle = fetch_cycle;
    EXPECT_TRUE(val.globalSiteActive(cnt_site));
    cnt_site.cycle = drain_cycle;
    EXPECT_FALSE(val.globalSiteActive(cnt_site));
}

namespace
{

Network
makeClassifier(std::uint64_t seed)
{
    Rng rng(seed);
    Network net("cls");
    NodeId fc1 = net.add(std::make_unique<FC>("fc1", 8, 16,
                                              heWeights(rng, 128, 8),
                                              smallBiases(rng, 16)),
                         0);
    NodeId act = net.add(std::make_unique<Activation>(
                             "relu", Activation::Func::ReLU),
                         fc1);
    NodeId fc2 = net.add(std::make_unique<FC>("fc2", 16, 5,
                                              heWeights(rng, 80, 16),
                                              smallBiases(rng, 5)),
                         act);
    net.add(std::make_unique<Softmax>("sm"), fc2);
    net.setPrecision(Precision::FP16);
    return net;
}

} // namespace

TEST(Extensions, TighterBoundFailsLessOften)
{
    // Bounding is not pointwise monotone against the unbounded run
    // (the range checker substitutes the bound for NaN, which a
    // downstream ReLU would otherwise have zeroed), but within the
    // mechanism a tighter bound injects a smaller perturbation, so
    // its failure rate cannot statistically exceed a looser bound's.
    Network net = makeClassifier(1);
    Rng drng(2);
    Tensor x(1, 1, 1, 8);
    for (auto &v : x.data())
        v = static_cast<float>(drng.normal(0, 1));
    Injector inj(net, x, NvdlaConfig{});
    auto macs = net.macNodes();

    int failures_tight = 0, failures_loose = 0;
    Rng a(9), b(9);
    for (int i = 0; i < 1500; ++i) {
        InjectionRecord rt = inj.inject(macs[0], FFCategory::OutputPsum,
                                        top1Metric(), a, 10.0);
        InjectionRecord rl = inj.inject(macs[0], FFCategory::OutputPsum,
                                        top1Metric(), b, 2000.0);
        failures_tight += !rt.masked;
        failures_loose += !rl.masked;
    }
    EXPECT_LE(failures_tight,
              failures_loose + failures_loose / 5 + 3);
    EXPECT_GT(failures_loose, 0);
}

TEST(Extensions, ValueBoundingFlushesNonFinite)
{
    // A NaN-producing local-control fault must not reach the output
    // when bounding is on.
    Network net = makeClassifier(3);
    Rng drng(4);
    Tensor x(1, 1, 1, 8);
    for (auto &v : x.data())
        v = static_cast<float>(drng.normal(0, 1));
    Injector inj(net, x, NvdlaConfig{});
    auto macs = net.macNodes();
    Rng rng(11);
    for (int i = 0; i < 200; ++i) {
        InjectionRecord rec = inj.inject(
            macs[1], FFCategory::LocalControl,
            [](const Tensor &, const Tensor &faulty) {
                return !hasInvalidValues(faulty);
            },
            rng, 100.0);
        // With bounding, no experiment may leak NaN/Inf to the output.
        EXPECT_TRUE(rec.masked);
    }
}

TEST(Extensions, MultiBitOperandFlipsCompose)
{
    // A two-bit mask flip equals the XOR of the pattern, not two
    // sequential value-level flips.
    QuantParams qp = calibrateAbsMax(2.0, 8);
    float x = 1.25f;
    float both = FaultModels::flipStoredOperandMask(
        x, Precision::INT8, qp, 0b101);
    std::int32_t q = quantize(x, qp);
    EXPECT_EQ(both,
              dequantize(static_cast<std::int8_t>(
                             static_cast<std::uint8_t>(q) ^ 0b101),
                         qp));
}
