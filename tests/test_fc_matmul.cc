/**
 * @file
 * Unit tests for the FC and MatMulAB layers.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "nn/fc.hh"
#include "nn/init.hh"
#include "nn/matmul.hh"
#include "sim/rng.hh"

using namespace fidelity;

namespace
{

Tensor
randomTensor(Rng &rng, int n, int h, int w, int c)
{
    Tensor t(n, h, w, c);
    for (auto &v : t.data())
        v = static_cast<float>(rng.normal(0, 1));
    return t;
}

} // namespace

TEST(FC, MatchesManualDotProduct)
{
    Rng rng(1);
    int in_c = 5, units = 3;
    auto w = heWeights(rng, 15, in_c);
    auto b = smallBiases(rng, units);
    FC fc("f", in_c, units, w, b);
    Tensor x = randomTensor(rng, 1, 1, 1, in_c);
    Tensor out = fc.forward(std::vector<const Tensor *>{&x});
    for (int u = 0; u < units; ++u) {
        double acc = b[u];
        for (int ci = 0; ci < in_c; ++ci)
            acc += static_cast<double>(x[ci]) * w[ci * units + u];
        EXPECT_NEAR(out.at(0, 0, 0, u), acc, 1e-5);
    }
}

TEST(FC, AppliesPositionWise)
{
    Rng rng(2);
    int in_c = 4, units = 6;
    FC fc("f", in_c, units, heWeights(rng, 24, in_c),
          smallBiases(rng, units));
    Tensor x = randomTensor(rng, 1, 3, 2, in_c);
    std::vector<const Tensor *> ins{&x};
    Tensor out = fc.forward(ins);
    EXPECT_EQ(out.h(), 3);
    EXPECT_EQ(out.w(), 2);
    EXPECT_EQ(out.c(), units);

    // Each position independently equals the 1-position result.
    for (int h = 0; h < 3; ++h)
        for (int w = 0; w < 2; ++w) {
            Tensor one(1, 1, 1, in_c);
            for (int c = 0; c < in_c; ++c)
                one[c] = x.at(0, h, w, c);
            Tensor r = fc.forward(std::vector<const Tensor *>{&one});
            for (int u = 0; u < units; ++u)
                EXPECT_EQ(r[u], out.at(0, h, w, u));
        }
}

TEST(FC, ConsumersAreExact)
{
    Rng rng(3);
    int in_c = 4, units = 6;
    FC fc("f", in_c, units, heWeights(rng, 24, in_c), {});
    Tensor x = randomTensor(rng, 1, 2, 1, in_c);
    std::vector<const Tensor *> ins{&x};

    auto in_cons = fc.inputConsumers(ins, x.offset(0, 1, 0, 2));
    EXPECT_EQ(in_cons.size(), static_cast<std::size_t>(units));
    for (const NeuronIndex &n : in_cons) {
        EXPECT_EQ(n.h, 1);
        EXPECT_EQ(n.w, 0);
    }

    std::size_t widx = 2 * units + 4; // (ci=2, u=4)
    auto w_cons = fc.weightConsumers(ins, widx);
    EXPECT_EQ(w_cons.size(), 2u); // one per position
    for (const NeuronIndex &n : w_cons)
        EXPECT_EQ(n.c, 4);
}

TEST(FC, ComputeNeuronMatchesForward)
{
    Rng rng(4);
    FC fc("f", 8, 8, heWeights(rng, 64, 8), smallBiases(rng, 8));
    Tensor x = randomTensor(rng, 1, 2, 2, 8);
    std::vector<const Tensor *> ins{&x};
    Tensor out = fc.forward(ins);
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(fc.computeNeuron(ins, out.indexOf(i), nullptr), out[i]);
}

TEST(FC, PsumFlipStepZeroAndLast)
{
    Rng rng(5);
    FC fc("f", 8, 4, heWeights(rng, 32, 8), {});
    Tensor x = randomTensor(rng, 1, 1, 1, 8);
    std::vector<const Tensor *> ins{&x};
    NeuronIndex n{0, 0, 0, 1};
    float golden = fc.computeNeuron(ins, n, nullptr);

    OperandSub sub;
    sub.kind = OperandSub::Kind::PsumFlip;
    sub.bit = 31;
    sub.flatIndex = 8; // after the last term: sign-flip the result
    EXPECT_EQ(fc.computeNeuron(ins, n, &sub), -golden);
}

TEST(MatMul, PlainProduct)
{
    Rng rng(6);
    Tensor a = randomTensor(rng, 1, 3, 1, 4);
    Tensor b = randomTensor(rng, 1, 4, 1, 5);
    MatMulAB mm("mm", /*trans_b=*/false);
    std::vector<const Tensor *> ins{&a, &b};
    Tensor out = mm.forward(ins);
    EXPECT_EQ(out.h(), 3);
    EXPECT_EQ(out.c(), 5);
    for (int i = 0; i < 3; ++i)
        for (int j = 0; j < 5; ++j) {
            double acc = 0;
            for (int k = 0; k < 4; ++k)
                acc += static_cast<double>(a.at(0, i, 0, k)) *
                       b.at(0, k, 0, j);
            EXPECT_NEAR(out.at(0, i, 0, j), acc, 1e-5);
        }
}

TEST(MatMul, TransposedProduct)
{
    Rng rng(7);
    Tensor a = randomTensor(rng, 1, 3, 1, 4);
    Tensor b = randomTensor(rng, 1, 5, 1, 4);
    MatMulAB mm("mm", /*trans_b=*/true);
    std::vector<const Tensor *> ins{&a, &b};
    Tensor out = mm.forward(ins);
    EXPECT_EQ(out.c(), 5);
    for (int i = 0; i < 3; ++i)
        for (int j = 0; j < 5; ++j) {
            double acc = 0;
            for (int k = 0; k < 4; ++k)
                acc += static_cast<double>(a.at(0, i, 0, k)) *
                       b.at(0, j, 0, k);
            EXPECT_NEAR(out.at(0, i, 0, j), acc, 1e-5);
        }
}

TEST(MatMul, ScaleApplied)
{
    Rng rng(8);
    Tensor a = randomTensor(rng, 1, 2, 1, 4);
    Tensor b = randomTensor(rng, 1, 2, 1, 4);
    MatMulAB plain("p", true, 1.0f);
    MatMulAB scaled("s", true, 0.5f);
    std::vector<const Tensor *> ins{&a, &b};
    Tensor po = plain.forward(ins);
    Tensor so = scaled.forward(ins);
    for (std::size_t i = 0; i < po.size(); ++i)
        EXPECT_NEAR(so[i], 0.5f * po[i], 1e-6f);
}

TEST(MatMul, InputConsumersAreTheRow)
{
    Rng rng(9);
    Tensor a = randomTensor(rng, 1, 3, 1, 4);
    Tensor b = randomTensor(rng, 1, 5, 1, 4);
    MatMulAB mm("mm", true);
    std::vector<const Tensor *> ins{&a, &b};
    auto cons = mm.inputConsumers(ins, a.offset(0, 2, 0, 1));
    EXPECT_EQ(cons.size(), 5u);
    for (const NeuronIndex &n : cons)
        EXPECT_EQ(n.h, 2);
}

TEST(MatMul, WeightConsumersAreTheColumn)
{
    Rng rng(10);
    Tensor a = randomTensor(rng, 1, 3, 1, 4);
    Tensor b = randomTensor(rng, 1, 5, 1, 4);
    MatMulAB mm("mm", true);
    std::vector<const Tensor *> ins{&a, &b};
    // B element (j=4, k=2) feeds output column 4.
    auto cons = mm.weightConsumers(ins, b.offset(0, 4, 0, 2));
    EXPECT_EQ(cons.size(), 3u);
    for (const NeuronIndex &n : cons)
        EXPECT_EQ(n.c, 4);
}

TEST(MatMul, WeightSubstitutionChangesColumnOnly)
{
    Rng rng(11);
    Tensor a = randomTensor(rng, 1, 3, 1, 4);
    Tensor b = randomTensor(rng, 1, 5, 1, 4);
    MatMulAB mm("mm", true);
    std::vector<const Tensor *> ins{&a, &b};
    Tensor golden = mm.forward(ins);

    OperandSub sub;
    sub.kind = OperandSub::Kind::Weight;
    sub.flatIndex = b.offset(0, 1, 0, 3);
    sub.value = b[sub.flatIndex] + 2.0f;
    for (std::size_t i = 0; i < golden.size(); ++i) {
        NeuronIndex n = golden.indexOf(i);
        float y = mm.computeNeuron(ins, n, &sub);
        if (n.c == 1)
            EXPECT_NE(y, golden[i]);
        else
            EXPECT_EQ(y, golden[i]);
    }
}

TEST(MatMul, WeightCountIsBSize)
{
    Rng rng(12);
    Tensor a = randomTensor(rng, 1, 3, 1, 4);
    Tensor b = randomTensor(rng, 1, 5, 1, 4);
    MatMulAB mm("mm", true);
    std::vector<const Tensor *> ins{&a, &b};
    EXPECT_EQ(mm.weightCount(ins), b.size());
    EXPECT_EQ(mm.weightAt(ins, 7), b[7]);
}

TEST(MatMulDeath, ShapeMismatchPanics)
{
    Rng rng(13);
    Tensor a = randomTensor(rng, 1, 3, 1, 4);
    Tensor b = randomTensor(rng, 1, 5, 1, 3); // K mismatch for transB
    MatMulAB mm("mm", true);
    std::vector<const Tensor *> ins{&a, &b};
    EXPECT_DEATH((void)mm.forward(ins), "columns");
}
