/**
 * @file
 * Unit and property tests for the software binary16 implementation.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "sim/rng.hh"
#include "tensor/float16.hh"

using namespace fidelity;

TEST(Float16, KnownEncodings)
{
    EXPECT_EQ(floatToHalfBits(0.0f), 0x0000);
    EXPECT_EQ(floatToHalfBits(-0.0f), 0x8000);
    EXPECT_EQ(floatToHalfBits(1.0f), 0x3c00);
    EXPECT_EQ(floatToHalfBits(-1.0f), 0xbc00);
    EXPECT_EQ(floatToHalfBits(2.0f), 0x4000);
    EXPECT_EQ(floatToHalfBits(0.5f), 0x3800);
    EXPECT_EQ(floatToHalfBits(65504.0f), 0x7bff);
    EXPECT_EQ(floatToHalfBits(1.5f), 0x3e00);
}

TEST(Float16, KnownDecodings)
{
    EXPECT_EQ(halfBitsToFloat(0x3c00), 1.0f);
    EXPECT_EQ(halfBitsToFloat(0xc000), -2.0f);
    EXPECT_EQ(halfBitsToFloat(0x7bff), 65504.0f);
    EXPECT_EQ(halfBitsToFloat(0x0001), 0x1p-24f); // smallest subnormal
    EXPECT_EQ(halfBitsToFloat(0x0400), 0x1p-14f); // smallest normal
}

TEST(Float16, OverflowToInfinity)
{
    EXPECT_EQ(floatToHalfBits(65536.0f), 0x7c00);
    EXPECT_EQ(floatToHalfBits(-1e10f), 0xfc00);
    EXPECT_TRUE(std::isinf(halfBitsToFloat(0x7c00)));
}

TEST(Float16, InfAndNanPropagate)
{
    float inf = std::numeric_limits<float>::infinity();
    EXPECT_EQ(floatToHalfBits(inf), 0x7c00);
    EXPECT_EQ(floatToHalfBits(-inf), 0xfc00);
    std::uint16_t nan_bits =
        floatToHalfBits(std::numeric_limits<float>::quiet_NaN());
    EXPECT_TRUE(Half::fromBits(nan_bits).isNan());
    EXPECT_TRUE(std::isnan(halfBitsToFloat(0x7e00)));
}

TEST(Float16, UnderflowToZero)
{
    EXPECT_EQ(floatToHalfBits(1e-10f), 0x0000);
    EXPECT_EQ(floatToHalfBits(-1e-10f), 0x8000);
}

TEST(Float16, SubnormalRoundTrip)
{
    // Every subnormal pattern must survive a half->float->half trip.
    for (std::uint16_t bits = 1; bits < 0x0400; ++bits) {
        float f = halfBitsToFloat(bits);
        EXPECT_EQ(floatToHalfBits(f), bits) << "bits=" << bits;
    }
}

TEST(Float16, RoundToNearestEven)
{
    // 1 + 2^-11 is exactly halfway between 1.0 and the next half
    // (1 + 2^-10); RNE picks the even mantissa (1.0).
    EXPECT_EQ(floatToHalfBits(1.0f + 0x1p-11f), 0x3c00);
    // 1 + 3*2^-11 is halfway between 1+2^-10 and 1+2^-9; RNE picks the
    // even mantissa 1+2^-9 (0x3c02).
    EXPECT_EQ(floatToHalfBits(1.0f + 3 * 0x1p-11f), 0x3c02);
    // Slightly above the halfway point rounds up.
    EXPECT_EQ(floatToHalfBits(1.0f + 0x1p-11f + 0x1p-20f), 0x3c01);
}

TEST(Float16, MantissaRoundingCanCarryIntoExponent)
{
    // The largest value below 2.0 that rounds up crosses a binade.
    float almost_two = 2.0f - 0x1p-11f;
    EXPECT_EQ(floatToHalfBits(almost_two), 0x4000);
}

TEST(Float16, AllFinitePatternsRoundTrip)
{
    // Property: conversion to float and back is the identity for every
    // one of the 63488 finite half patterns.
    for (std::uint32_t bits = 0; bits < 0x10000; ++bits) {
        auto b = static_cast<std::uint16_t>(bits);
        Half h = Half::fromBits(b);
        if (h.isNan())
            continue; // NaN payloads may canonicalise
        float f = halfBitsToFloat(b);
        EXPECT_EQ(floatToHalfBits(f), b) << "bits=" << bits;
    }
}

TEST(Float16, RoundingIsMonotonic)
{
    // Property: x <= y implies half(x) <= half(y) on random pairs.
    Rng rng(99);
    for (int i = 0; i < 5000; ++i) {
        float x = static_cast<float>(rng.normal(0.0, 100.0));
        float y = static_cast<float>(rng.normal(0.0, 100.0));
        if (x > y)
            std::swap(x, y);
        EXPECT_LE(halfBitsToFloat(floatToHalfBits(x)),
                  halfBitsToFloat(floatToHalfBits(y)));
    }
}

TEST(Float16, RoundingErrorBounded)
{
    // Property: relative rounding error <= 2^-11 for normal values.
    Rng rng(7);
    for (int i = 0; i < 5000; ++i) {
        float x = static_cast<float>(
            rng.uniform(0x1p-14, 60000.0) *
            (rng.chance(0.5) ? 1.0 : -1.0));
        float r = halfBitsToFloat(floatToHalfBits(x));
        EXPECT_LE(std::fabs(r - x), std::fabs(x) * 0x1p-10f)
            << "x=" << x;
    }
}

TEST(Half, Predicates)
{
    EXPECT_TRUE(Half(0.0f).isZero());
    EXPECT_TRUE(Half(-0.0f).isZero());
    EXPECT_FALSE(Half(1.0f).isZero());
    EXPECT_TRUE(Half::fromBits(0x7c00).isInf());
    EXPECT_FALSE(Half::fromBits(0x7c00).isNan());
    EXPECT_TRUE(Half::fromBits(0x7c01).isNan());
    EXPECT_EQ(Half(1.0f), Half::fromBits(0x3c00));
    EXPECT_NE(Half(1.0f), Half(-1.0f));
}

TEST(Half, MaxValue)
{
    EXPECT_EQ(halfMax(), 65504.0f);
    EXPECT_EQ(Half(halfMax()).bits(), 0x7bff);
}
