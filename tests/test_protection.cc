/**
 * @file
 * Tests of the selective-protection planner and multi-bit fault
 * support (paper extensions: Architectural Insights, and the
 * multiple-bit-flips-in-one-register abstraction).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/protection.hh"
#include "core/validation.hh"
#include "workloads/models.hh"

using namespace fidelity;

namespace
{

/** One layer with uniform masking except always-failing global. */
std::vector<LayerFitInput>
syntheticLayers(double mask)
{
    LayerFitInput l;
    l.execTime = 1.0;
    for (auto &s : l.stats)
        s.probSwMask = mask;
    l.stats[static_cast<int>(FFCategory::GlobalControl)].probSwMask =
        0.0;
    return {l};
}

} // namespace

TEST(Protection, NoProtectionNeededWhenUnderTarget)
{
    auto layers = syntheticLayers(0.99999);
    FitParams p;
    ProtectionPlan plan = planSelectiveProtection(p, layers, 100.0);
    EXPECT_TRUE(plan.meetsTarget);
    EXPECT_DOUBLE_EQ(plan.ffShare, 0.0);
    for (bool b : plan.protect)
        EXPECT_FALSE(b);
}

TEST(Protection, GlobalIsProtectedFirst)
{
    // Global control dominates an unprotected design, so the greedy
    // plan must pick it first.
    auto layers = syntheticLayers(0.99);
    FitParams p;
    FitBreakdown base = acceleratorFit(p, layers);
    ProtectionPlan plan =
        planSelectiveProtection(p, layers, base.total() * 0.5);
    EXPECT_TRUE(
        plan.protect[static_cast<int>(FFCategory::GlobalControl)]);
}

TEST(Protection, PlanMeetsReachableTarget)
{
    auto layers = syntheticLayers(0.9);
    FitParams p;
    ProtectionPlan plan = planSelectiveProtection(p, layers, 0.5);
    EXPECT_TRUE(plan.meetsTarget);
    EXPECT_LE(plan.fit.total(), 0.5);
    EXPECT_GT(plan.ffShare, 0.0);
    EXPECT_LE(plan.ffShare, 1.0);
}

TEST(Protection, FullProtectionReachesZero)
{
    auto layers = syntheticLayers(0.0);
    FitParams p;
    ProtectionPlan plan = planSelectiveProtection(p, layers, 1e-9);
    // Everything with a contribution gets protected.
    EXPECT_TRUE(plan.meetsTarget);
    EXPECT_NEAR(plan.fit.total(), 0.0, 1e-12);
    EXPECT_NEAR(plan.ffShare, 1.0, 1e-12);
}

TEST(Protection, MaskedFitMatchesManualAdjustment)
{
    auto layers = syntheticLayers(0.5);
    FitParams p;
    std::array<bool, numFFCategories> protect{};
    protect[static_cast<int>(FFCategory::OutputPsum)] = true;
    FitBreakdown with = acceleratorFitWithProtection(p, layers, protect);
    FitBreakdown base = acceleratorFit(p, layers);
    double psum_contrib = p.rawFitTotal() *
                          ffCategoryShare(FFCategory::OutputPsum) * 0.5;
    EXPECT_NEAR(base.total() - with.total(), psum_contrib, 1e-9);
}

TEST(Protection, ContributionsSumToTotal)
{
    auto layers = syntheticLayers(0.7);
    FitParams p;
    auto contribs = categoryFitContributions(p, layers);
    double sum = 0.0;
    for (double c : contribs)
        sum += c;
    EXPECT_NEAR(sum, acceleratorFit(p, layers).total(), 1e-9);
}

TEST(ProtectionDeath, RejectsBadTarget)
{
    auto layers = syntheticLayers(0.5);
    FitParams p;
    EXPECT_DEATH((void)planSelectiveProtection(p, layers, 0.0),
                 "positive");
}

TEST(MultiBit, FFRefMaskCombinesBits)
{
    FFRef ff;
    ff.bit = 3;
    ff.extraMask = 0x11;
    EXPECT_EQ(ff.mask(), 0x19u);
    ff.extraMask = 0;
    EXPECT_EQ(ff.mask(), 0x8u);
}

TEST(MultiBit, ValidationMatchesEngineWithTwoBitFlips)
{
    // The paper's abstraction covers multiple bit-flips in a single
    // register; the software models must stay exact.
    auto workloads = buildValidationWorkloads(41);
    NvdlaConfig cfg;
    Validator val(cfg, *workloads[1].layer, workloads[1].ins());
    Rng rng(3);

    int checked = 0, mismatches = 0, disagreements = 0;
    while (checked < 150) {
        FaultSite site = val.fi().sampleSite(rng);
        // Add a second random bit to the flip mask.
        int bits = val.fi().engine().ffBits(site.ff.cls);
        if (bits < 2)
            continue;
        int extra = static_cast<int>(rng.below(bits));
        if (extra == site.ff.bit)
            continue;
        site.ff.extraMask = 1u << extra;
        if (site.ff.cls == FFClass::LocalValid ||
            site.ff.cls == FFClass::LocalMuxSel ||
            site.ff.cls == FFClass::GlobalConfig ||
            site.ff.cls == FFClass::GlobalCounter)
            continue; // single-bit state / statistical classes
        checked += 1;

        RtlOutcome rtl =
            const_cast<NvdlaFi &>(val.fi()).inject(site);
        Prediction pred = val.predict(site);
        bool pred_masked = pred.kind == Prediction::Kind::Masked;
        if (rtl.masked() != pred_masked) {
            disagreements += 1;
            continue;
        }
        if (rtl.masked())
            continue;
        // Compare sets and values.
        std::vector<std::size_t> rtl_flats;
        for (const FaultyNeuron &f : rtl.faulty)
            rtl_flats.push_back(f.flat);
        std::vector<std::size_t> pf = pred.flats;
        std::sort(pf.begin(), pf.end());
        if (pf != rtl_flats) {
            mismatches += 1;
            continue;
        }
        for (std::size_t i = 0; i < pred.flats.size(); ++i) {
            auto it = std::lower_bound(rtl_flats.begin(),
                                       rtl_flats.end(), pred.flats[i]);
            const FaultyNeuron &f = rtl.faulty[static_cast<std::size_t>(
                it - rtl_flats.begin())];
            bool same = f.faulty == pred.values[i] ||
                        (std::isnan(f.faulty) &&
                         std::isnan(pred.values[i]));
            if (!same)
                mismatches += 1;
        }
    }
    EXPECT_EQ(disagreements, 0);
    EXPECT_EQ(mismatches, 0);
}
