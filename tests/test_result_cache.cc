/**
 * @file
 * Tests of the fault-site result cache: the lock-free table itself
 * (integrity under collisions, eviction, and races) and the campaign
 * contract (cache-on/cache-off bit-identity, resume safety, shared
 * tables, deterministic plan-replay counters).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/campaign.hh"
#include "core/manifest.hh"
#include "sim/json.hh"
#include "sim/result_cache.hh"
#include "sim/rng.hh"
#include "workloads/metrics.hh"
#include "workloads/models.hh"

using namespace fidelity;

namespace
{

/** Self-deleting temp path. */
struct ScopedPath
{
    explicit ScopedPath(std::string p) : path(std::move(p))
    {
        std::remove(path.c_str());
    }
    ~ScopedPath() { std::remove(path.c_str()); }
    std::string path;
};

std::string
slurp(const std::string &path)
{
    std::ifstream f(path, std::ios::binary);
    std::ostringstream ss;
    ss << f.rdbuf();
    return ss.str();
}

/** Payload derived from the fingerprint, so any probe can check that
 *  a hit returned the exact outcome stored under that key. */
CachedOutcome
parityOutcome(std::uint64_t fp)
{
    return CachedOutcome{(fp & 1) != 0, (fp & 2) != 0};
}

/**
 * Mirror of the table's bucket index mix (splitmix64 finaliser), used
 * to deliberately craft same-cluster keys — the adversarial-collision
 * case the XOR + tag integrity checks must survive.  Kept in sync with
 * result_cache.cc by the AdversarialSameClusterKeys test itself: if
 * the mixes diverge, the crafted keys stop colliding and the exact
 * hit/miss assertions below fail.
 */
std::uint64_t
mirrorMixIndex(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/** First `n` fingerprints (from a counter) that land in shard 0,
 *  cluster 0 of a minimum-capacity table (one cluster per shard). */
std::vector<std::uint64_t>
sameClusterKeys(std::size_t n)
{
    std::vector<std::uint64_t> keys;
    for (std::uint64_t fp = 1; keys.size() < n; ++fp) {
        const std::uint64_t mixed = mirrorMixIndex(fp);
        if ((mixed & (ResultCache::kShards - 1)) == 0)
            keys.push_back(fp);
    }
    return keys;
}

CampaignConfig
smallConfig()
{
    CampaignConfig cfg;
    cfg.samplesPerCategory = 16;
    cfg.shardGrain = 8;
    cfg.seed = 29;
    return cfg;
}

} // namespace

// ===== Table unit tests =============================================

TEST(ResultCache, MissOnEmptyThenRoundtrip)
{
    ResultCache cache(1 << 16);
    CachedOutcome out;
    EXPECT_FALSE(cache.probe(42, out));

    // Every payload combination survives a store/probe roundtrip.
    const std::uint64_t fps[] = {42, 43, 44, 45};
    for (int i = 0; i < 4; ++i)
        cache.store(fps[i], CachedOutcome{(i & 1) != 0, (i & 2) != 0});
    for (int i = 0; i < 4; ++i) {
        ASSERT_TRUE(cache.probe(fps[i], out)) << "fp " << fps[i];
        EXPECT_EQ(out.masked, (i & 1) != 0);
        EXPECT_EQ(out.earlyExit, (i & 2) != 0);
    }

    ResultCacheStats s = cache.stats();
    EXPECT_EQ(s.hits, 4u);
    EXPECT_EQ(s.misses, 1u);
    EXPECT_EQ(s.stores, 4u);
    EXPECT_EQ(s.evictions, 0u);
}

TEST(ResultCache, ZeroFingerprintIsStorable)
{
    // fp = 0 with a default outcome must still differ from an empty
    // slot (the valid bit, not the key, marks liveness).
    ResultCache cache(1 << 12);
    CachedOutcome out;
    EXPECT_FALSE(cache.probe(0, out));
    cache.store(0, CachedOutcome{false, false});
    ASSERT_TRUE(cache.probe(0, out));
    EXPECT_FALSE(out.masked);
    EXPECT_FALSE(out.earlyExit);
}

TEST(ResultCache, RefreshingAFingerprintIsNotAnEviction)
{
    ResultCache cache(1 << 12);
    cache.store(7, CachedOutcome{true, false});
    cache.store(7, CachedOutcome{true, false});
    ResultCacheStats s = cache.stats();
    EXPECT_EQ(s.stores, 2u);
    EXPECT_EQ(s.evictions, 0u);
    CachedOutcome out;
    ASSERT_TRUE(cache.probe(7, out));
    EXPECT_TRUE(out.masked);
}

TEST(ResultCache, CapacityRoundingAndFloor)
{
    // Floor: one cluster per shard even for a degenerate request.
    EXPECT_EQ(ResultCache(0).entryCount(),
              ResultCache::kShards * ResultCache::kClusterEntries);
    // Exact power-of-two budget is used fully: 1 MiB / 16 B = 64Ki.
    ResultCache mb(1 << 20);
    EXPECT_EQ(mb.entryCount(), (1u << 20) / ResultCache::kEntryBytes);
    EXPECT_EQ(mb.capacityBytes(), std::size_t{1} << 20);
    // Non-power-of-two budgets round down, never up.
    EXPECT_LE(ResultCache(3 << 20).capacityBytes(),
              std::size_t{3} << 20);
    EXPECT_EQ(ResultCache(3 << 20).entryCount(),
              (2u << 20) / ResultCache::kEntryBytes);
}

TEST(ResultCache, AdversarialSameClusterKeys)
{
    // Six keys deliberately crafted to collide into one 4-entry
    // cluster of a minimum-capacity table.  Integrity: a probe may
    // miss, but a hit must return the payload stored under exactly
    // that key.
    std::vector<std::uint64_t> keys = sameClusterKeys(6);
    ResultCache cache(0); // floor capacity: one cluster per shard
    for (std::uint64_t fp : keys)
        cache.store(fp, parityOutcome(fp));

    // Same generation everywhere, so the eviction tie-break is the
    // lowest slot index: store #5 displaces keys[0], store #6
    // displaces keys[4] (which took slot 0).
    CachedOutcome out;
    EXPECT_FALSE(cache.probe(keys[0], out));
    EXPECT_FALSE(cache.probe(keys[4], out));
    for (std::size_t i : {std::size_t{1}, std::size_t{2},
                          std::size_t{3}, std::size_t{5}}) {
        ASSERT_TRUE(cache.probe(keys[i], out)) << "key " << i;
        EXPECT_EQ(out.masked, parityOutcome(keys[i]).masked);
        EXPECT_EQ(out.earlyExit, parityOutcome(keys[i]).earlyExit);
    }
    EXPECT_EQ(cache.stats().evictions, 2u);
}

TEST(ResultCache, GenerationEvictionPrefersOldEntries)
{
    std::vector<std::uint64_t> keys = sameClusterKeys(6);
    ResultCache cache(0);
    for (std::size_t i = 0; i < 4; ++i) // fill the cluster, gen g
        cache.store(keys[i], parityOutcome(keys[i]));

    cache.newGeneration();
    cache.store(keys[4], parityOutcome(keys[4])); // evicts keys[0]
    cache.store(keys[5], parityOutcome(keys[5]));

    // Without the generation stamp the second store would displace
    // keys[4] (slot 0 again, as in AdversarialSameClusterKeys); with
    // it, the oldest-generation entry keys[1] goes instead.
    CachedOutcome out;
    EXPECT_TRUE(cache.probe(keys[4], out));
    EXPECT_TRUE(cache.probe(keys[5], out));
    EXPECT_FALSE(cache.probe(keys[0], out));
    EXPECT_FALSE(cache.probe(keys[1], out));
    EXPECT_TRUE(cache.probe(keys[2], out));
    EXPECT_TRUE(cache.probe(keys[3], out));
}

TEST(ResultCache, EvictionUnderPressureKeepsIntegrity)
{
    // Hammer a 64-entry table with 10k random keys: most stores evict,
    // and every later hit must still return its own payload.
    ResultCache cache(0);
    Rng rng(99);
    std::vector<std::uint64_t> fps;
    for (int i = 0; i < 10000; ++i)
        fps.push_back(rng.next64());

    for (std::uint64_t fp : fps)
        cache.store(fp, parityOutcome(fp));

    std::uint64_t hits = 0;
    for (std::uint64_t fp : fps) {
        CachedOutcome out;
        if (!cache.probe(fp, out))
            continue;
        ++hits;
        EXPECT_EQ(out.masked, parityOutcome(fp).masked);
        EXPECT_EQ(out.earlyExit, parityOutcome(fp).earlyExit);
    }
    EXPECT_LE(hits, cache.entryCount());
    EXPECT_GT(hits, 0u);
    ResultCacheStats s = cache.stats();
    EXPECT_GT(s.evictions, 9000u);
    EXPECT_EQ(s.hits, hits);
    EXPECT_EQ(s.hits + s.misses, fps.size());
}

TEST(ResultCache, ConcurrentStoreProbeNeverReturnsForeignPayload)
{
    // The lock-free contract under TSan and ASan in CI: concurrent
    // stores and probes over one small (high-collision) table; a torn
    // read may only miss, never surface another key's outcome.
    ResultCache cache(1 << 10);
    std::vector<std::thread> threads;
    std::atomic<std::uint64_t> bad{0};
    for (int t = 0; t < 4; ++t) {
        threads.emplace_back([&cache, &bad, t] {
            Rng rng(1000 + t % 2); // overlapping key streams by design
            for (int i = 0; i < 20000; ++i) {
                std::uint64_t fp = rng.next64();
                CachedOutcome out;
                if (cache.probe(fp, out)) {
                    CachedOutcome want = parityOutcome(fp);
                    if (out.masked != want.masked ||
                        out.earlyExit != want.earlyExit)
                        bad.fetch_add(1);
                }
                cache.store(fp, parityOutcome(fp));
            }
        });
    }
    for (std::thread &th : threads)
        th.join();
    EXPECT_EQ(bad.load(), 0u);
    ResultCacheStats s = cache.stats();
    EXPECT_EQ(s.hits + s.misses, 80000u);
    EXPECT_EQ(s.stores, 80000u);
}

// ===== Fingerprint + injector tests =================================

TEST(ResultCacheFingerprint, ContextSeparatesInputsAndSalts)
{
    Network net = buildResNet(3);
    Tensor a = defaultInputFor("resnet", 4);
    Tensor b = defaultInputFor("resnet", 5); // different input bits
    NvdlaConfig accel;
    ResultCache cache(1 << 12);

    Injector ia(net, a, accel);
    ia.attachResultCache(&cache);
    Injector ib(net, b, accel);
    ib.attachResultCache(&cache);
    const std::uint64_t ctx_a = ia.resultCacheContext();
    EXPECT_NE(ctx_a, 0u);
    EXPECT_NE(ctx_a, ib.resultCacheContext());

    // Same input, different salt (stand-in for a different metric).
    ia.attachResultCache(&cache, 1);
    EXPECT_NE(ia.resultCacheContext(), ctx_a);

    // Deterministic: re-attaching reproduces the digest.
    ia.attachResultCache(&cache, 0);
    EXPECT_EQ(ia.resultCacheContext(), ctx_a);

    // Detaching clears it.
    ia.attachResultCache(nullptr);
    EXPECT_EQ(ia.resultCacheContext(), 0u);
}

TEST(ResultCacheFingerprint, RecordsCarryDistinctFingerprints)
{
    Network net = buildResNet(3);
    Tensor x = defaultInputFor("resnet", 4);
    NvdlaConfig accel;
    Injector inj(net, x, accel);
    ResultCache cache(1 << 16);
    inj.attachResultCache(&cache);

    std::vector<std::uint64_t> fps;
    Rng rng(7);
    NodeId node = net.macNodes().front();
    for (int i = 0; i < 40; ++i) {
        InjectionRecord rec = inj.inject(node, FFCategory::OutputPsum,
                                         top1Metric(), rng);
        if (rec.cacheEligible)
            fps.push_back(rec.fingerprint);
    }
    ASSERT_GT(fps.size(), 10u);

    // Replaying the same rng stream reproduces the same fingerprints
    // (and now hits), while distinct faults get distinct fingerprints.
    Rng replay(7);
    std::size_t idx = 0;
    for (int i = 0; i < 40; ++i) {
        InjectionRecord rec = inj.inject(node, FFCategory::OutputPsum,
                                         top1Metric(), replay);
        if (rec.cacheEligible) {
            EXPECT_EQ(rec.fingerprint, fps[idx++]);
            EXPECT_TRUE(rec.cacheHit);
        }
    }
    std::vector<std::uint64_t> uniq = fps;
    std::sort(uniq.begin(), uniq.end());
    uniq.erase(std::unique(uniq.begin(), uniq.end()), uniq.end());
    EXPECT_GT(uniq.size(), fps.size() / 2);
}

// ===== Campaign contract tests ======================================

TEST(ResultCacheCampaign, ConfigHashIgnoresCacheKnobs)
{
    Network net = buildResNet(3);
    Tensor x = defaultInputFor("resnet", 4);
    CampaignConfig on = smallConfig();
    CampaignConfig off = smallConfig();
    off.resultCacheEnabled = false;
    CampaignConfig tiny = smallConfig();
    tiny.resultCacheMB = 1;
    tiny.resultCacheSalt = 123;

    const std::uint64_t h = campaignConfigHash(net, x, on);
    EXPECT_EQ(h, campaignConfigHash(net, x, off));
    EXPECT_EQ(h, campaignConfigHash(net, x, tiny));
}

TEST(ResultCacheCampaign, ChecksumEqualOnOffAcrossThreadCounts)
{
    Network net = buildResNet(3);
    Tensor x = defaultInputFor("resnet", 4);

    CampaignConfig off = smallConfig();
    off.resultCacheEnabled = false;
    const std::uint64_t want =
        campaignChecksum(runCampaign(net, x, top1Metric(), off));

    for (int threads : {1, 4, 8}) {
        CampaignConfig cfg = smallConfig();
        cfg.numThreads = threads;
        cfg.resultCacheEnabled = true;
        CampaignResult res = runCampaign(net, x, top1Metric(), cfg);
        EXPECT_EQ(campaignChecksum(res), want) << threads << " threads";

        cfg.resultCacheEnabled = false;
        CampaignResult bare = runCampaign(net, x, top1Metric(), cfg);
        EXPECT_EQ(campaignChecksum(bare), want)
            << threads << " threads, cache off";
    }
}

TEST(ResultCacheCampaign, AdaptiveChecksumEqualOnOff)
{
    Network net = buildResNet(3);
    Tensor x = defaultInputFor("resnet", 4);
    CampaignConfig cfg = smallConfig();
    cfg.targetHalfWidth = 0.12;
    cfg.minSamples = 16;
    cfg.maxSamplesPerCategory = 256;

    cfg.resultCacheEnabled = false;
    const std::uint64_t want =
        campaignChecksum(runCampaign(net, x, top1Metric(), cfg));
    cfg.resultCacheEnabled = true;
    cfg.numThreads = 4;
    EXPECT_EQ(campaignChecksum(runCampaign(net, x, top1Metric(), cfg)),
              want);
}

TEST(ResultCacheCampaign, SharedTableWarmRunHitsAndStaysBitIdentical)
{
    // The cross-campaign service case: the same request twice against
    // one shared table.  The repeat run must hit heavily and still
    // produce the bit-identical result.
    Network net = buildResNet(3);
    Tensor x = defaultInputFor("resnet", 4);
    CampaignConfig cfg = smallConfig();
    cfg.resultCache = std::make_shared<ResultCache>(8u << 20);

    CampaignResult cold = runCampaign(net, x, top1Metric(), cfg);
    const ResultCacheStats after_cold = cfg.resultCache->stats();
    CampaignResult warm = runCampaign(net, x, top1Metric(), cfg);
    const ResultCacheStats after_warm = cfg.resultCache->stats();

    EXPECT_EQ(campaignChecksum(cold), campaignChecksum(warm));
    const std::uint64_t warm_hits = after_warm.hits - after_cold.hits;
    const std::uint64_t warm_misses =
        after_warm.misses - after_cold.misses;
    // Every eligible injection of the warm run was already evaluated.
    EXPECT_GT(warm_hits, 0u);
    EXPECT_EQ(warm_misses, 0u);
}

TEST(ResultCacheCampaign, SharedTableNeverLeaksAcrossInputs)
{
    // A different input digest must never be served by entries of the
    // first run: the second campaign's result must equal its own
    // cache-off reference bit for bit.
    Network net = buildResNet(3);
    Tensor a = defaultInputFor("resnet", 4);
    Tensor b = defaultInputFor("resnet", 5);

    CampaignConfig off = smallConfig();
    off.resultCacheEnabled = false;
    const std::uint64_t want_b =
        campaignChecksum(runCampaign(net, b, top1Metric(), off));

    CampaignConfig shared = smallConfig();
    shared.resultCache = std::make_shared<ResultCache>(8u << 20);
    runCampaign(net, a, top1Metric(), shared); // fills the table
    CampaignResult res_b = runCampaign(net, b, top1Metric(), shared);
    EXPECT_EQ(campaignChecksum(res_b), want_b);
}

TEST(ResultCacheCampaign, TinyTableEvictsAndStaysBitIdentical)
{
    // Eviction under pressure: a floor-capacity (64-entry) shared
    // table forces constant displacement, which may cost hits but can
    // never change an outcome.
    Network net = buildResNet(3);
    Tensor x = defaultInputFor("resnet", 4);

    CampaignConfig off = smallConfig();
    off.resultCacheEnabled = false;
    const std::uint64_t want =
        campaignChecksum(runCampaign(net, x, top1Metric(), off));

    CampaignConfig tiny = smallConfig();
    tiny.numThreads = 4;
    tiny.resultCache = std::make_shared<ResultCache>(0);
    CampaignResult res = runCampaign(net, x, top1Metric(), tiny);
    EXPECT_EQ(campaignChecksum(res), want);
    EXPECT_GT(tiny.resultCache->stats().evictions, 0u);
}

TEST(ResultCacheCampaign, KillAndResumeWithCacheStaysBitIdentical)
{
    Network net = buildResNet(3);
    Tensor x = defaultInputFor("resnet", 4);
    ScopedPath snap("test_result_cache_resume.snap");
    ScopedPath report("test_result_cache_resume.json");

    CampaignConfig off = smallConfig();
    off.resultCacheEnabled = false;
    const std::uint64_t want =
        campaignChecksum(runCampaign(net, x, top1Metric(), off));

    // Slice 1: "crash" after a few shards, cache enabled.
    CampaignConfig cfg = smallConfig();
    cfg.checkpointPath = snap.path;
    cfg.resumeFrom = snap.path;
    cfg.stopAfterShards = 5;
    CampaignResult part = runCampaign(net, x, top1Metric(), cfg);
    ASSERT_FALSE(part.complete);

    // Slice 2: resume to completion with a fresh cache.  The restored
    // shards' outcomes come from the snapshot, never from cache
    // entries of a previous process (fingerprints are not journaled),
    // so the merged result is bit-identical to the cache-off run.
    cfg.stopAfterShards = 0;
    cfg.reportPath = report.path;
    CampaignResult full = runCampaign(net, x, top1Metric(), cfg);
    ASSERT_TRUE(full.complete);
    EXPECT_EQ(campaignChecksum(full), want);

    // The manifest declares the replay partial: restored shards have
    // no fingerprint log.
    const std::string doc = slurp(report.path);
    const std::string exec = jsonSection(doc, "execution");
    const std::string rc = jsonSection(exec, "result_cache");
    ASSERT_FALSE(rc.empty());
    const std::string replay = jsonSection(rc, "plan_replay");
    EXPECT_NE(replay.find("\"complete\": false"), std::string::npos)
        << replay;
}

TEST(ResultCacheCampaign, ManifestReplayCountersInvariantAcrossThreads)
{
    // The acceptance gate: the manifest's cache counters must be
    // byte-identical across thread counts, even though the live
    // shared-table interleaving is not.
    Network net = buildResNet(3);
    Tensor x = defaultInputFor("resnet", 4);

    std::string ref;
    for (int threads : {1, 4, 8}) {
        ScopedPath report("test_result_cache_manifest_" +
                          std::to_string(threads) + ".json");
        CampaignConfig cfg = smallConfig();
        cfg.numThreads = threads;
        cfg.reportPath = report.path;
        runCampaign(net, x, top1Metric(), cfg);

        const std::string exec =
            jsonSection(slurp(report.path), "execution");
        const std::string rc = jsonSection(exec, "result_cache");
        ASSERT_FALSE(rc.empty()) << threads << " threads";
        EXPECT_NE(jsonSection(rc, "plan_replay").find(
                      "\"complete\": true"),
                  std::string::npos);
        if (ref.empty())
            ref = rc;
        else
            EXPECT_EQ(rc, ref) << threads << " threads";
    }
}
