/**
 * @file
 * Unit tests of the campaign worker pool.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <stdexcept>
#include <vector>

#include "sim/metrics.hh"
#include "sim/thread_pool.hh"

using namespace fidelity;

TEST(ThreadPool, RunsSubmittedTasks)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4);

    std::atomic<int> counter{0};
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 100; ++i)
        futures.push_back(pool.submit([&counter] { counter += 1; }));
    for (auto &f : futures)
        f.get();
    EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, SingleWorkerStillCompletes)
{
    ThreadPool pool(1);
    std::atomic<int> counter{0};
    pool.forEach(25, [&counter](std::size_t) { counter += 1; });
    EXPECT_EQ(counter.load(), 25);
}

TEST(ThreadPool, ZeroSelectsHardwareThreads)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.size(), ThreadPool::hardwareThreads());
    EXPECT_GE(pool.size(), 1);
}

TEST(ThreadPool, ForEachCoversEveryIndexOnce)
{
    ThreadPool pool(8);
    std::vector<std::atomic<int>> hits(257);
    pool.forEach(hits.size(),
                 [&hits](std::size_t i) { hits[i] += 1; });
    for (auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, PropagatesTaskException)
{
    ThreadPool pool(2);
    std::future<void> ok = pool.submit([] {});
    std::future<void> bad = pool.submit(
        [] { throw std::runtime_error("task failed"); });
    EXPECT_NO_THROW(ok.get());
    EXPECT_THROW(bad.get(), std::runtime_error);
}

TEST(ThreadPool, ForEachRethrowsFirstExceptionAfterDraining)
{
    ThreadPool pool(4);
    std::atomic<int> completed{0};
    try {
        pool.forEach(64, [&completed](std::size_t i) {
            if (i == 7)
                throw std::runtime_error("shard 7 failed");
            completed += 1;
        });
        FAIL() << "forEach should have rethrown";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "shard 7 failed");
    }
    // Every other task still ran to completion before the rethrow.
    EXPECT_EQ(completed.load(), 63);
}

TEST(ThreadPool, ReusableAcrossSubmitWaves)
{
    ThreadPool pool(3);
    std::atomic<int> counter{0};
    for (int wave = 0; wave < 5; ++wave) {
        pool.forEach(40, [&counter](std::size_t) { counter += 1; });
        EXPECT_EQ(counter.load(), 40 * (wave + 1));
    }
}

TEST(ThreadPool, TasksRunConcurrently)
{
    // Two tasks that each wait for the other can only finish when at
    // least two workers execute them at the same time.
    ThreadPool pool(2);
    std::promise<void> a_started, b_started;
    auto fa = pool.submit([&] {
        a_started.set_value();
        b_started.get_future().wait();
    });
    auto fb = pool.submit([&] {
        b_started.set_value();
        a_started.get_future().wait();
    });
    fa.get();
    fb.get();
    SUCCEED();
}

TEST(ThreadPool, ForEachOfRunsExactlyTheGivenIds)
{
    // The sparse fan-out used by the adaptive campaign scheduler: a
    // round's live shards are an arbitrary subset of the plan.
    ThreadPool pool(4);
    std::vector<std::size_t> ids = {3, 0, 17, 8, 4, 4};
    std::vector<std::atomic<int>> hits(20);
    pool.forEachOf(ids, [&hits](std::size_t id) { hits[id] += 1; });

    std::vector<int> expected(20, 0);
    for (std::size_t id : ids)
        expected[id] += 1;
    for (std::size_t i = 0; i < hits.size(); ++i)
        EXPECT_EQ(hits[i].load(), expected[i]) << "id " << i;
}

TEST(ThreadPool, ForEachOfEmptyIsANoOp)
{
    ThreadPool pool(2);
    pool.forEachOf({}, [](std::size_t) { FAIL() << "must not run"; });
    SUCCEED();
}

TEST(ThreadPool, CallerSlotIsWorkerIndexOnPoolAndReservedOffPool)
{
    ThreadPool pool(3);
    EXPECT_EQ(pool.slotCount(), 4);

    // The main thread is not a pool worker: reserved slot, stable.
    EXPECT_EQ(ThreadPool::workerIndex(), -1);
    EXPECT_EQ(pool.callerSlot(), 3);
    EXPECT_EQ(pool.callerSlot(), 3);

    // A pool worker gets its own index, always < size().
    std::vector<std::atomic<int>> seen(4);
    pool.forEach(64, [&](std::size_t) {
        int slot = pool.callerSlot();
        ASSERT_GE(slot, 0);
        ASSERT_LT(slot, pool.size());
        EXPECT_EQ(slot, ThreadPool::workerIndex());
        seen[static_cast<std::size_t>(slot)] += 1;
    });
    EXPECT_EQ(seen[3].load(), 0); // reserved slot never used on-pool
}

TEST(ThreadPool, CallerSlotOnForeignPoolWorkerIsReserved)
{
    // A worker of pool B asking pool A for a slot must get A's
    // reserved slot — B's worker index would alias one of A's workers
    // (or index out of bounds when B is larger than A).
    ThreadPool a(2);
    ThreadPool b(4);
    b.forEach(16, [&](std::size_t) {
        EXPECT_EQ(a.callerSlot(), a.size());
        EXPECT_EQ(b.callerSlot(), ThreadPool::workerIndex());
    });
}

TEST(ThreadPool, MainAndWorkerRecordMetricsConcurrently)
{
    // The off-pool bug this guards against: the coordinator emitting
    // metrics during plan/merge phases while workers inject.  With
    // callerSlot() every thread owns a private slot, so recording is
    // race-free (this test runs under TSan in CI).
    ThreadPool pool(2);
    std::vector<MetricSet> slots(
        static_cast<std::size_t>(pool.slotCount()));

    std::atomic<bool> go{false};
    std::vector<std::future<void>> work;
    for (int t = 0; t < 2; ++t) {
        work.push_back(pool.submit([&] {
            while (!go.load(std::memory_order_acquire)) {
            }
            MetricSet &mine =
                slots[static_cast<std::size_t>(pool.callerSlot())];
            for (int i = 0; i < 5000; ++i)
                mine.counter("work").add();
        }));
    }
    go.store(true, std::memory_order_release);
    MetricSet &main_slot =
        slots[static_cast<std::size_t>(pool.callerSlot())];
    for (int i = 0; i < 5000; ++i)
        main_slot.counter("work").add();
    for (auto &f : work)
        f.get();

    MetricSet merged;
    for (MetricSet &s : slots)
        merged.mergeFrom(s);
    EXPECT_EQ(merged.counter("work").count(), 15000u);
}

TEST(ThreadPool, ForEachOfPropagatesFirstException)
{
    ThreadPool pool(3);
    std::atomic<int> ran{0};
    std::vector<std::size_t> ids = {5, 6, 7, 8};
    try {
        pool.forEachOf(ids, [&ran](std::size_t id) {
            ran += 1;
            if (id >= 6)
                throw std::runtime_error("id " + std::to_string(id));
        });
        FAIL() << "expected an exception";
    } catch (const std::runtime_error &e) {
        // First exception in ids order, after every task ran.
        EXPECT_STREQ(e.what(), "id 6");
    }
    EXPECT_EQ(ran.load(), 4);
}
