/**
 * @file
 * Cross-configuration generality tests: FIdelity claims broad
 * applicability across accelerator designs, so the engine's golden
 * equivalence and the software fault models' exactness must hold for
 * other MAC-array geometries (k, t), not just the paper's k = 4,
 * t = 16 case study.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/validation.hh"
#include "nn/init.hh"
#include "workloads/data.hh"

using namespace fidelity;

namespace
{

struct ConfigCase
{
    int k;
    int t;
};

class PerConfig : public ::testing::TestWithParam<ConfigCase>
{
  protected:
    NvdlaConfig
    config() const
    {
        NvdlaConfig cfg;
        cfg.k = GetParam().k;
        cfg.t = GetParam().t;
        return cfg;
    }
};

bool
bitEqual(float a, float b)
{
    if (std::isnan(a) && std::isnan(b))
        return true;
    return a == b;
}

std::unique_ptr<Conv2D>
makeConv(Precision p, Tensor &x)
{
    Rng rng(77);
    ConvSpec spec;
    spec.inC = 8;
    spec.outC = 24; // deliberately not a multiple of most k^2 values
    spec.kh = 3;
    spec.kw = 3;
    spec.pad = 1;
    auto conv = std::make_unique<Conv2D>(
        "c", spec, heWeights(rng, 9u * 8 * 24, 72),
        smallBiases(rng, 24));
    x = makeImageInput(5, 1, 7, 7, 8); // 49 positions: partial blocks
    conv->setPrecision(p);
    return conv;
}

} // namespace

TEST_P(PerConfig, GoldenOutputIndependentOfGeometry)
{
    // The array geometry changes the schedule, not the arithmetic: the
    // engine must still match the nn layer bit for bit.
    Tensor x(1, 1, 1, 1);
    auto conv = makeConv(Precision::FP16, x);
    std::vector<const Tensor *> ins{&x};
    Tensor want = conv->forward(ins);

    NvdlaFi fi(config(), engineLayerFromConv(*conv, x), x);
    const Tensor &got = fi.golden().output;
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < want.size(); ++i)
        ASSERT_TRUE(bitEqual(got[i], want[i])) << i;
}

TEST_P(PerConfig, ValidationStaysExact)
{
    Tensor x(1, 1, 1, 1);
    auto conv = makeConv(Precision::FP16, x);
    std::vector<const Tensor *> ins{&x};

    Validator val(config(), *conv, ins);
    Rng rng(31);
    int disagreements = 0, mismatches = 0, both = 0;
    for (int i = 0; i < 250; ++i) {
        CaseResult cr = val.runOne(rng);
        if (cr.category == FFCategory::GlobalControl)
            continue;
        disagreements += cr.rtlMasked != cr.predMasked;
        if (!cr.rtlMasked && !cr.predMasked) {
            both += 1;
            if (cr.site.ff.cls != FFClass::LocalValid)
                mismatches += !(cr.setMatch && cr.valueMatch);
            else
                mismatches += !cr.setMatch;
        }
    }
    EXPECT_EQ(disagreements, 0) << "k=" << GetParam().k;
    EXPECT_EQ(mismatches, 0) << "k=" << GetParam().k;
    EXPECT_GT(both, 20);
}

TEST_P(PerConfig, OperandFaultWidthTracksGeometry)
{
    // The RF-16 patterns are really RF-k^2 and RF-t patterns.
    Tensor x(1, 1, 1, 1);
    auto conv = makeConv(Precision::FP16, x);
    std::vector<const Tensor *> ins{&x};
    NvdlaConfig cfg = config();
    NvdlaFi fi(cfg, engineLayerFromConv(*conv, x), x);

    Rng rng(3);
    std::size_t max_input = 0, max_weight = 0;
    for (int i = 0; i < 200; ++i) {
        FaultSite si = fi.sampleSiteDirected(FFClass::OperandInput, rng);
        RtlOutcome oi = fi.inject(si);
        if (!oi.timeout && !oi.anomaly)
            max_input = std::max(max_input, oi.faulty.size());
        FaultSite sw = fi.sampleSiteDirected(FFClass::WeightHold, rng);
        RtlOutcome ow = fi.inject(sw);
        if (!ow.timeout && !ow.anomaly)
            max_weight = std::max(max_weight, ow.faulty.size());
    }
    EXPECT_LE(max_input, static_cast<std::size_t>(cfg.macs()));
    EXPECT_LE(max_weight, static_cast<std::size_t>(cfg.t));
    // The geometry bound is approached (capped by the 24 output
    // channels when k^2 exceeds them).
    std::size_t reach = std::min<std::size_t>(cfg.macs(), 24);
    EXPECT_GT(max_input, reach / 2);
}

INSTANTIATE_TEST_SUITE_P(Geometries, PerConfig,
                         ::testing::Values(ConfigCase{2, 4},
                                           ConfigCase{4, 16},
                                           ConfigCase{8, 8},
                                           ConfigCase{3, 5}));

TEST(Configs, Int16ValidationExact)
{
    Tensor x(1, 1, 1, 1);
    auto conv = makeConv(Precision::INT16, x);
    std::vector<const Tensor *> ins{&x};
    // Calibrate quant ranges from an FP32 pass.
    conv->setPrecision(Precision::FP32);
    Tensor g = conv->forward(ins);
    conv->calibrate(ins, g);
    conv->setPrecision(Precision::INT16);

    NvdlaConfig cfg;
    Validator val(cfg, *conv, ins);
    Rng rng(13);
    int disagreements = 0, mismatches = 0, both = 0;
    for (int i = 0; i < 250; ++i) {
        CaseResult cr = val.runOne(rng);
        if (cr.category == FFCategory::GlobalControl)
            continue;
        disagreements += cr.rtlMasked != cr.predMasked;
        if (!cr.rtlMasked && !cr.predMasked) {
            both += 1;
            if (cr.site.ff.cls != FFClass::LocalValid)
                mismatches += !(cr.setMatch && cr.valueMatch);
        }
    }
    EXPECT_EQ(disagreements, 0);
    EXPECT_EQ(mismatches, 0);
    EXPECT_GT(both, 10);
}
