/**
 * @file
 * The fault-batched re-execution engine's correctness contract.
 *
 * Differential tests asserting every lane of the batched engine is
 * bit-identical to the scalar IncrementalEngine across FP32/FP16/INT8
 * on a multi-branch DAG with grouped/dilated/strided/padded
 * convolutions; ragged batches (fewer live lanes than the engine
 * width, non-contiguous lane indices); per-lane early-exit divergence
 * inside one batch; campaign-checksum invariance under batch width,
 * thread count, result cache, and kill-and-resume; and batch-width
 * validation at both the engine factory and the campaign config.
 */

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "core/campaign.hh"
#include "nn/activation.hh"
#include "nn/batched.hh"
#include "nn/conv.hh"
#include "nn/elementwise.hh"
#include "nn/fc.hh"
#include "nn/incremental.hh"
#include "nn/init.hh"
#include "nn/network.hh"
#include "nn/pool.hh"
#include "nn/region.hh"
#include "sim/rng.hh"
#include "workloads/metrics.hh"
#include "workloads/models.hh"

using namespace fidelity;

namespace
{

Tensor
randomTensor(std::uint64_t seed, int n, int h, int w, int c)
{
    Rng rng(seed);
    Tensor t(n, h, w, c);
    for (auto &v : t.data())
        v = static_cast<float>(rng.normal(0, 1));
    return t;
}

bool
bitIdentical(const Tensor &a, const Tensor &b)
{
    if (!a.sameShape(b))
        return false;
    for (std::size_t i = 0; i < a.size(); ++i)
        if (std::bit_cast<std::uint32_t>(a[i]) !=
            std::bit_cast<std::uint32_t>(b[i]))
            return false;
    return true;
}

std::unique_ptr<Conv2D>
makeConv(std::string name, const ConvSpec &spec, std::uint64_t seed)
{
    Rng rng(seed);
    std::size_t wcount = static_cast<std::size_t>(spec.kh) * spec.kw *
                         (spec.inC / spec.groups) * spec.outC;
    int fan_in = spec.kh * spec.kw * (spec.inC / spec.groups);
    return std::make_unique<Conv2D>(
        std::move(name), spec, heWeights(rng, wcount, fan_in),
        spec.bias ? smallBiases(rng, spec.outC) : std::vector<float>{});
}

/** Same layer zoo as test_incremental's DAG: padded, depthwise,
 *  dilated, and strided convolutions on parallel branches, add, scale,
 *  concat, slice, max pool, global average pool, FC head (the FC rides
 *  the per-lane fallback, everything else a batched kernel). */
Network
makeBranchy(std::uint64_t seed)
{
    Rng rng(seed);
    Network net("branchy");
    NodeId c1 = net.add(
        makeConv("c1", {.inC = 4, .outC = 8, .pad = 1}, seed + 1), 0);
    NodeId r1 = net.add(
        std::make_unique<Activation>("relu1", Activation::Func::ReLU),
        c1);
    NodeId dw = net.add(
        makeConv("dw", {.inC = 8, .outC = 8, .pad = 1, .groups = 8},
                 seed + 2),
        r1);
    NodeId dil = net.add(
        makeConv("dil", {.inC = 8, .outC = 8, .pad = 2, .dilation = 2},
                 seed + 3),
        r1);
    NodeId add = net.add(std::make_unique<Elementwise>(
                             "add", Elementwise::Op::Add),
                         std::vector<NodeId>{dw, dil});
    NodeId ss = net.add(
        std::make_unique<ScaleShift>("ss", 0.5f, 0.1f), add);
    NodeId cat = net.add(std::make_unique<ConcatC>("cat"),
                         std::vector<NodeId>{add, ss});
    NodeId sl = net.add(
        std::make_unique<Slice>("sl", Slice::Axis::C, 4, 8), cat);
    NodeId p = net.add(
        std::make_unique<Pool>("pool", Pool::Mode::Max, 2, 2), sl);
    NodeId c2 = net.add(
        makeConv("c2", {.inC = 8, .outC = 8, .stride = 2, .pad = 1},
                 seed + 4),
        p);
    NodeId gap = net.add(std::make_unique<GlobalAvgPool>("gap"), c2);
    net.add(std::make_unique<FC>("fc", 8, 5, heWeights(rng, 40, 8),
                                 smallBiases(rng, 5)),
            gap);
    return net;
}

/** Unique snapshot path in gtest's temp dir; removed on destruction. */
class ScopedSnapshotPath
{
  public:
    explicit ScopedSnapshotPath(const std::string &name)
        : path_(testing::TempDir() + "fidelity_" + name + ".ckpt")
    {
        std::remove(path_.c_str());
    }

    ~ScopedSnapshotPath()
    {
        std::remove(path_.c_str());
        std::remove((path_ + ".tmp").c_str());
    }

    const std::string &str() const { return path_; }

  private:
    std::string path_;
};

CampaignConfig
smallConfig()
{
    CampaignConfig cfg;
    cfg.samplesPerCategory = 8;
    cfg.shardGrain = 4;
    cfg.seed = 17;
    return cfg;
}

} // namespace

TEST(BatchedEngine, FactoryWidthsAndValidation)
{
    IncrementalOptions opt;
    // Widths up to 4 share the narrow instantiation, wider ones the
    // full SIMD width; out-of-range widths are rejected.
    EXPECT_EQ(makeBatchedEngine(1, opt)->maxLanes(), 4);
    EXPECT_EQ(makeBatchedEngine(4, opt)->maxLanes(), 4);
    EXPECT_EQ(makeBatchedEngine(5, opt)->maxLanes(), 8);
    EXPECT_EQ(makeBatchedEngine(kMaxBatchLanes, opt)->maxLanes(),
              kMaxBatchLanes);
    EXPECT_DEATH((void)makeBatchedEngine(0, opt), "width must be in");
    EXPECT_DEATH((void)makeBatchedEngine(kMaxBatchLanes + 1, opt),
                 "width must be in");
}

TEST(BatchedEngine, BitIdenticalToScalarAcrossPrecisions)
{
    // Every lane of every batch must reproduce the scalar engine's
    // output bit-for-bit — full batches, ragged tails, and
    // non-contiguous lane sets, with one-to-three corrupted neurons
    // per injection and a NaN value mixed in.
    const std::vector<std::vector<int>> laneSets = {
        {0, 1, 2, 3, 4, 5, 6, 7}, // full width
        {0, 1, 2},                // ragged tail
        {1, 4, 6},                // non-contiguous lanes
    };
    Tensor input = randomTensor(101, 1, 8, 8, 4);
    for (Precision p : {Precision::FP32, Precision::FP16,
                        Precision::INT8}) {
        Network net = makeBranchy(100);
        net.setPrecision(p);
        if (p == Precision::INT8)
            net.calibrate(input);
        auto acts = net.forwardAll(input);
        IncrementalEngine scalar;
        auto eng = makeBatchedEngine(kMaxBatchLanes,
                                     IncrementalOptions{});
        Rng rng(102);
        for (NodeId node : net.macNodes()) {
            const Tensor &golden = acts[node];
            for (const auto &lanes : laneSets) {
                eng->begin(net, node, acts);
                std::vector<std::vector<NeuronIndex>> at(lanes.size());
                std::vector<std::vector<float>> val(lanes.size());
                for (std::size_t i = 0; i < lanes.size(); ++i) {
                    int faults = 1 + static_cast<int>(rng.below(3));
                    for (int f = 0; f < faults; ++f) {
                        at[i].push_back(golden.indexOf(rng.below(
                            static_cast<std::uint32_t>(golden.size()))));
                        val[i].push_back(
                            i == 0 && f == 0
                                ? std::numeric_limits<
                                      float>::quiet_NaN()
                                : static_cast<float>(
                                      rng.normal(0, 64)));
                    }
                    eng->seedLane(lanes[i], at[i].data(), val[i].data(),
                                  val[i].size());
                }
                eng->execute();
                for (std::size_t i = 0; i < lanes.size(); ++i) {
                    Tensor corrupted = golden;
                    Region fault;
                    for (std::size_t f = 0; f < at[i].size(); ++f) {
                        corrupted.at(at[i][f]) = val[i][f];
                        if (std::bit_cast<std::uint32_t>(val[i][f]) !=
                            std::bit_cast<std::uint32_t>(
                                golden.at(at[i][f])))
                            fault.include(at[i][f]);
                    }
                    Tensor ref = scalar.run(net, node, corrupted,
                                            fault, acts);
                    EXPECT_TRUE(
                        bitIdentical(ref, eng->laneOutput(lanes[i])))
                        << "node " << node << " lane " << lanes[i]
                        << " precision " << static_cast<int>(p);
                    if (node != net.outputNode()) {
                        EXPECT_EQ(eng->laneEarlyMasked(lanes[i]),
                                  scalar.lastStats().earlyMasked)
                            << "node " << node << " lane " << lanes[i];
                    }
                }
            }
        }
    }
}

TEST(BatchedEngine, PerLaneEarlyExitDivergence)
{
    // One batch, three fates: a negative-to-negative flip dies at the
    // ReLU (masked), a large positive flip survives to the output, and
    // a bit-identical "flip" is masked immediately.  The live lane
    // must not be perturbed by its retired neighbours.
    Tensor input = randomTensor(111, 1, 8, 8, 4);
    Network net = makeBranchy(110);
    auto acts = net.forwardAll(input);
    NodeId node = net.macNodes().front(); // c1, feeds relu1
    const Tensor &golden = acts[node];

    std::size_t neg = golden.size();
    for (std::size_t i = 0; i < golden.size(); ++i) {
        if (golden[i] < -0.5f) {
            neg = i;
            break;
        }
    }
    ASSERT_LT(neg, golden.size()) << "no negative conv output";
    NeuronIndex at = golden.indexOf(neg);

    auto eng = makeBatchedEngine(kMaxBatchLanes, IncrementalOptions{});
    eng->begin(net, node, acts);
    float dead = -1234.5f;
    float live = 1234.5f;
    float same = golden.at(at);
    eng->seedLane(0, &at, &dead, 1);
    eng->seedLane(3, &at, &live, 1);
    eng->seedLane(6, &at, &same, 1);
    eng->execute();

    EXPECT_TRUE(eng->laneEarlyMasked(0));
    EXPECT_FALSE(eng->laneEarlyMasked(3));
    EXPECT_TRUE(eng->laneEarlyMasked(6));

    EXPECT_TRUE(bitIdentical(acts[net.outputNode()],
                             eng->laneOutput(0)));
    EXPECT_TRUE(bitIdentical(acts[net.outputNode()],
                             eng->laneOutput(6)));

    Tensor corrupted = golden;
    corrupted.at(at) = live;
    IncrementalEngine scalar;
    Tensor ref = scalar.run(net, node, corrupted, Region::of(at), acts);
    EXPECT_FALSE(bitIdentical(acts[net.outputNode()], ref))
        << "live flip unexpectedly masked; test is vacuous";
    EXPECT_TRUE(bitIdentical(ref, eng->laneOutput(3)));
}

TEST(BatchedCampaign, ChecksumInvariantUnderWidthThreadsCache)
{
    // The batch width is a pure performance knob: campaignChecksum
    // must match the B = 1 result for every width x thread count x
    // result-cache combination.
    Network net = buildResNet(3);
    net.setPrecision(Precision::FP16);
    Tensor x = defaultInputFor("resnet", 4);

    CampaignConfig ref = smallConfig();
    ref.batchWidth = 1;
    ref.resultCacheEnabled = false;
    const std::uint64_t want =
        campaignChecksum(runCampaign(net, x, top1Metric(), ref));

    for (int width : {4, 8}) {
        for (int threads : {1, 4, 8}) {
            for (bool cache : {false, true}) {
                CampaignConfig cfg = smallConfig();
                cfg.batchWidth = width;
                cfg.numThreads = threads;
                cfg.resultCacheEnabled = cache;
                CampaignResult res =
                    runCampaign(net, x, top1Metric(), cfg);
                EXPECT_EQ(campaignChecksum(res), want)
                    << "width " << width << " threads " << threads
                    << " cache " << cache;
            }
        }
    }
}

TEST(BatchedCampaign, KillAndResumeBitIdentity)
{
    // A batched campaign interrupted mid-flight and resumed from its
    // snapshot — even at a different batch width — must reproduce the
    // uninterrupted B = 1 checksum, with the result cache on or off.
    Network net = buildResNet(3);
    net.setPrecision(Precision::FP16);
    Tensor x = defaultInputFor("resnet", 4);

    CampaignConfig ref = smallConfig();
    ref.batchWidth = 1;
    const std::uint64_t want =
        campaignChecksum(runCampaign(net, x, top1Metric(), ref));

    for (bool cache : {false, true}) {
        for (int resumeWidth : {8, 1}) {
            ScopedSnapshotPath path(
                "batched_kill_" + std::to_string(cache) + "_" +
                std::to_string(resumeWidth));

            CampaignConfig cfg = smallConfig();
            cfg.batchWidth = 8;
            cfg.numThreads = 4;
            cfg.resultCacheEnabled = cache;
            cfg.checkpointPath = path.str();
            cfg.stopAfterShards = 6;
            CampaignResult partial =
                runCampaign(net, x, top1Metric(), cfg);
            ASSERT_FALSE(partial.complete);

            CampaignConfig resume = smallConfig();
            resume.batchWidth = resumeWidth;
            resume.numThreads = 4;
            resume.resultCacheEnabled = cache;
            resume.checkpointPath = path.str();
            resume.resumeFrom = path.str();
            CampaignResult res =
                runCampaign(net, x, top1Metric(), resume);
            EXPECT_TRUE(res.complete);
            EXPECT_EQ(campaignChecksum(res), want)
                << "cache " << cache << " resume width "
                << resumeWidth;
        }
    }
}

TEST(BatchedCampaign, BatchWidthValidation)
{
    Network net = buildResNet(3);
    Tensor x = defaultInputFor("resnet", 4);
    CampaignConfig cfg = smallConfig();
    cfg.batchWidth = 0;
    EXPECT_DEATH((void)runCampaign(net, x, top1Metric(), cfg),
                 "batchWidth must be in");
    cfg.batchWidth = kMaxBatchLanes + 1;
    EXPECT_DEATH((void)runCampaign(net, x, top1Metric(), cfg),
                 "batchWidth must be in");
}
