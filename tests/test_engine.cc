/**
 * @file
 * Tests of the cycle-level NVDLA-like engine: bit-exact golden
 * equivalence with the nn layers across precisions, timing agreement
 * with the performance model, and the architectural effects of
 * injected faults.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "accel/nvdla_fi.hh"
#include "accel/perf_model.hh"
#include "nn/init.hh"
#include "sim/rng.hh"

using namespace fidelity;

namespace
{

bool
bitEqual(float a, float b)
{
    if (std::isnan(a) && std::isnan(b))
        return true;
    return a == b;
}

struct ConvFixture
{
    ConvSpec spec;
    std::unique_ptr<Conv2D> conv;
    Tensor x;
    std::vector<const Tensor *> ins;

    explicit ConvFixture(Precision p, int in_c = 8, int out_c = 32,
                         int hw = 6)
        : x(1, hw, hw, in_c)
    {
        Rng rng(21);
        spec.inC = in_c;
        spec.outC = out_c;
        spec.kh = 3;
        spec.kw = 3;
        spec.pad = 1;
        std::size_t nw = 9u * in_c * out_c;
        conv = std::make_unique<Conv2D>("c", spec,
                                        heWeights(rng, nw, 9 * in_c),
                                        smallBiases(rng, out_c));
        for (auto &v : x.data())
            v = static_cast<float>(rng.normal(0, 1));
        ins = {&x};
        conv->setPrecision(Precision::FP32);
        Tensor golden = conv->forward(ins);
        conv->calibrate(ins, golden);
        conv->setPrecision(p);
    }
};

class EnginePrecision : public ::testing::TestWithParam<Precision>
{
};

} // namespace

TEST_P(EnginePrecision, ConvGoldenIsBitExact)
{
    ConvFixture f(GetParam());
    Tensor want = f.conv->forward(f.ins);
    NvdlaConfig cfg;
    NvdlaFi fi(cfg, engineLayerFromConv(*f.conv, f.x), f.x);
    const Tensor &got = fi.golden().output;
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < want.size(); ++i)
        ASSERT_TRUE(bitEqual(got[i], want[i])) << "i=" << i;
}

TEST_P(EnginePrecision, FcGoldenIsBitExact)
{
    Rng rng(31);
    int in_c = 48, units = 40;
    FC fc("f", in_c, units,
          heWeights(rng, static_cast<std::size_t>(in_c) * units, in_c),
          smallBiases(rng, units));
    Tensor x(1, 3, 1, in_c);
    for (auto &v : x.data())
        v = static_cast<float>(rng.normal(0, 1));
    std::vector<const Tensor *> ins{&x};
    fc.setPrecision(Precision::FP32);
    Tensor g = fc.forward(ins);
    fc.calibrate(ins, g);
    fc.setPrecision(GetParam());

    Tensor want = fc.forward(ins);
    NvdlaConfig cfg;
    NvdlaFi fi(cfg, engineLayerFromFC(fc, x), x);
    const Tensor &got = fi.golden().output;
    for (std::size_t i = 0; i < want.size(); ++i)
        ASSERT_TRUE(bitEqual(got[i], want[i])) << "i=" << i;
}

TEST_P(EnginePrecision, MatMulGoldenIsBitExact)
{
    Rng rng(41);
    Tensor a(1, 16, 1, 24);
    Tensor b(1, 16, 1, 24);
    for (auto &v : a.data())
        v = static_cast<float>(rng.normal(0, 1));
    for (auto &v : b.data())
        v = static_cast<float>(rng.normal(0, 1));
    MatMulAB mm("mm", /*trans_b=*/true, 0.25f);
    std::vector<const Tensor *> ins{&a, &b};
    mm.setPrecision(Precision::FP32);
    Tensor g = mm.forward(ins);
    mm.calibrate(ins, g);
    mm.setPrecision(GetParam());

    Tensor want = mm.forward(ins);
    NvdlaConfig cfg;
    NvdlaFi fi(cfg, engineLayerFromMatMul(mm, a, b), a);
    const Tensor &got = fi.golden().output;
    for (std::size_t i = 0; i < want.size(); ++i)
        ASSERT_TRUE(bitEqual(got[i], want[i])) << "i=" << i;
}

INSTANTIATE_TEST_SUITE_P(AllPrecisions, EnginePrecision,
                         ::testing::Values(Precision::FP32,
                                           Precision::FP16,
                                           Precision::INT16,
                                           Precision::INT8));

TEST(Engine, PerfModelMatchesCycleCount)
{
    for (int out_c : {16, 32, 24}) {
        ConvFixture f(Precision::FP16, 8, out_c, 6);
        NvdlaConfig cfg;
        EngineLayer el = engineLayerFromConv(*f.conv, f.x);
        NvdlaFi fi(cfg, el, f.x);
        LayerTiming t = estimateTiming(cfg, el);
        EXPECT_EQ(t.totalCycles, fi.goldenCycles()) << "outC=" << out_c;
    }
}

TEST(Engine, PerfModelMatchesMatMulCycleCount)
{
    Rng rng(5);
    Tensor a(1, 10, 1, 12), b(1, 12, 1, 20);
    for (auto &v : a.data())
        v = static_cast<float>(rng.normal(0, 1));
    for (auto &v : b.data())
        v = static_cast<float>(rng.normal(0, 1));
    MatMulAB mm("mm", false);
    std::vector<const Tensor *> ins{&a, &b};
    (void)mm.forward(ins);
    NvdlaConfig cfg;
    EngineLayer el = engineLayerFromMatMul(mm, a, b);
    NvdlaFi fi(cfg, el, a);
    EXPECT_EQ(estimateTiming(cfg, el).totalCycles, fi.goldenCycles());
}

TEST(Engine, TraceCoversEveryCycle)
{
    ConvFixture f(Precision::FP16, 4, 16, 4);
    NvdlaConfig cfg;
    NvdlaFi fi(cfg, engineLayerFromConv(*f.conv, f.x), f.x);
    EXPECT_EQ(fi.golden().trace.size(), fi.goldenCycles());
    EXPECT_EQ(fi.golden().trace.front().phase, EnginePhase::FetchW);
}

TEST(Engine, WritebackCyclesAreSet)
{
    ConvFixture f(Precision::FP16, 4, 16, 4);
    NvdlaConfig cfg;
    NvdlaFi fi(cfg, engineLayerFromConv(*f.conv, f.x), f.x);
    for (std::uint64_t wb : fi.golden().writebackCycle) {
        EXPECT_GT(wb, 0u);
        EXPECT_LE(wb, fi.goldenCycles());
    }
}

TEST(Engine, PsumFaultAffectsOneNeuron)
{
    ConvFixture f(Precision::FP16);
    NvdlaConfig cfg;
    NvdlaFi fi(cfg, engineLayerFromConv(*f.conv, f.x), f.x);

    Rng rng(3);
    int checked = 0;
    while (checked < 20) {
        FaultSite site;
        site.ff = {FFClass::Psum,
                   static_cast<int>(rng.below(cfg.macs() * cfg.t)),
                   static_cast<int>(rng.below(32))};
        site.cycle = 1 + rng.below(static_cast<std::uint32_t>(
                         fi.goldenCycles()));
        RtlOutcome out = fi.inject(site);
        if (out.masked())
            continue;
        EXPECT_EQ(out.faulty.size(), 1u) << site.str();
        checked += 1;
    }
}

TEST(Engine, OperandInputFaultHitsOneChannelGroup)
{
    ConvFixture f(Precision::FP16);
    NvdlaConfig cfg;
    NvdlaFi fi(cfg, engineLayerFromConv(*f.conv, f.x), f.x);

    Rng rng(5);
    int checked = 0;
    while (checked < 20) {
        FaultSite site;
        site.ff = {FFClass::OperandInput, 0,
                   static_cast<int>(rng.below(16))};
        site.cycle = 1 + rng.below(static_cast<std::uint32_t>(
                         fi.goldenCycles()));
        RtlOutcome out = fi.inject(site);
        if (out.masked())
            continue;
        // At most k^2 neurons, all at one (n, h, w) position in
        // consecutive channels of one aligned group.
        EXPECT_LE(out.faulty.size(),
                  static_cast<std::size_t>(cfg.macs()));
        const Tensor &o = fi.golden().output;
        NeuronIndex first = o.indexOf(out.faulty.front().flat);
        std::set<int> groups;
        for (const FaultyNeuron &fn : out.faulty) {
            NeuronIndex n = o.indexOf(fn.flat);
            EXPECT_EQ(n.h, first.h);
            EXPECT_EQ(n.w, first.w);
            groups.insert(n.c / cfg.macs());
        }
        EXPECT_EQ(groups.size(), 1u);
        checked += 1;
    }
}

TEST(Engine, WeightHoldFaultStaysInOneChannel)
{
    ConvFixture f(Precision::FP16);
    NvdlaConfig cfg;
    NvdlaFi fi(cfg, engineLayerFromConv(*f.conv, f.x), f.x);

    Rng rng(7);
    int checked = 0;
    while (checked < 20) {
        FaultSite site;
        site.ff = {FFClass::WeightHold,
                   static_cast<int>(rng.below(cfg.macs())),
                   static_cast<int>(rng.below(16))};
        site.cycle = 1 + rng.below(static_cast<std::uint32_t>(
                         fi.goldenCycles()));
        RtlOutcome out = fi.inject(site);
        if (out.masked())
            continue;
        EXPECT_LE(out.faulty.size(), static_cast<std::size_t>(cfg.t));
        const Tensor &o = fi.golden().output;
        int chan = o.indexOf(out.faulty.front().flat).c;
        for (const FaultyNeuron &fn : out.faulty)
            EXPECT_EQ(o.indexOf(fn.flat).c, chan);
        checked += 1;
    }
}

TEST(Engine, FetchWeightFaultReachesWholeChannel)
{
    ConvFixture f(Precision::FP16);
    NvdlaConfig cfg;
    NvdlaFi fi(cfg, engineLayerFromConv(*f.conv, f.x), f.x);

    // Find a fetch-phase cycle carrying a weight word and flip its
    // sign: every value-changed neuron sits in that weight's channel.
    Rng rng(9);
    int checked = 0;
    while (checked < 10) {
        FaultSite site;
        site.ff = {FFClass::FetchWeight, 0, 15};
        site.cycle = 1 + rng.below(static_cast<std::uint32_t>(
                         f.conv->weightCount(f.ins)));
        const CycleInfo &ci = fi.golden().trace[site.cycle - 1];
        if (ci.phase != EnginePhase::FetchW || ci.fetch < 1)
            continue;
        RtlOutcome out = fi.inject(site);
        if (out.masked())
            continue;
        const Tensor &o = fi.golden().output;
        int chan = o.indexOf(out.faulty.front().flat).c;
        for (const FaultyNeuron &fn : out.faulty)
            EXPECT_EQ(o.indexOf(fn.flat).c, chan);
        // A sign-flipped weight perturbs many positions.
        EXPECT_GT(out.faulty.size(), static_cast<std::size_t>(cfg.t));
        checked += 1;
    }
}

TEST(Engine, GlobalLoopBoundCorruptionTimesOut)
{
    ConvFixture f(Precision::FP16, 4, 16, 4);
    NvdlaConfig cfg;
    NvdlaFi fi(cfg, engineLayerFromConv(*f.conv, f.x), f.x);

    // Flip a high bit of the Positions register early: the block loop
    // bound explodes and the run must hit the time-out.
    FaultSite site;
    site.ff = {FFClass::GlobalConfig,
               static_cast<int>(ConfigReg::Positions), 28};
    site.cycle = 2;
    RtlOutcome out = fi.inject(site);
    EXPECT_TRUE(out.timeout);
}

TEST(Engine, GlobalAddressCorruptionScramblesManyNeurons)
{
    ConvFixture f(Precision::FP16);
    NvdlaConfig cfg;
    NvdlaFi fi(cfg, engineLayerFromConv(*f.conv, f.x), f.x);

    // Corrupt the output-width register mid-compute: writeback
    // addresses scatter and many neurons differ.
    FaultSite site;
    site.ff = {FFClass::GlobalConfig, static_cast<int>(ConfigReg::OutW),
               2};
    site.cycle = fi.goldenCycles() / 2;
    RtlOutcome out = fi.inject(site);
    EXPECT_FALSE(out.masked());
    if (!out.timeout && !out.anomaly)
        EXPECT_GT(out.faulty.size(), 8u);
}

TEST(Engine, SampledSitesAreValid)
{
    ConvFixture f(Precision::FP16, 4, 16, 4);
    NvdlaConfig cfg;
    NvdlaFi fi(cfg, engineLayerFromConv(*f.conv, f.x), f.x);
    Rng rng(11);
    for (int i = 0; i < 200; ++i) {
        FaultSite s = fi.sampleSite(rng);
        EXPECT_GE(s.cycle, 1u);
        EXPECT_LE(s.cycle, fi.goldenCycles());
        EXPECT_LT(s.ff.bit, fi.engine().ffBits(s.ff.cls));
    }
}

TEST(Engine, InventoryCountsMatchConfig)
{
    ConvFixture f(Precision::FP16, 4, 16, 4);
    NvdlaConfig cfg;
    NvdlaEngine engine(cfg, engineLayerFromConv(*f.conv, f.x));
    auto inv = engine.ffInventory();
    int psums = 0, holds = 0, valids = 0;
    for (const FFRef &ff : inv) {
        psums += ff.cls == FFClass::Psum;
        holds += ff.cls == FFClass::WeightHold;
        valids += ff.cls == FFClass::LocalValid;
    }
    EXPECT_EQ(psums, cfg.macs() * cfg.t);
    EXPECT_EQ(holds, cfg.macs());
    EXPECT_EQ(valids, cfg.macs());
}

TEST(Engine, FaultFreeRunsAreReproducible)
{
    ConvFixture f(Precision::FP16, 4, 16, 4);
    NvdlaConfig cfg;
    NvdlaEngine engine(cfg, engineLayerFromConv(*f.conv, f.x));
    EngineResult a = engine.run(f.x, nullptr);
    EngineResult b = engine.run(f.x, nullptr);
    EXPECT_EQ(a.cycles, b.cycles);
    for (std::size_t i = 0; i < a.output.size(); ++i)
        EXPECT_TRUE(bitEqual(a.output[i], b.output[i]));
}
