/**
 * @file
 * The incremental re-execution engine's correctness contract.
 *
 * Region algebra and windowCone unit tests; brute-force checks that
 * every layer's propagateRegion is conservative (no output the fault
 * can reach escapes the cone); differential tests asserting the engine
 * is bit-identical to Network::forwardFrom across FP32/FP16/INT8 on a
 * multi-branch DAG with grouped/dilated/strided/padded convolutions;
 * the early masking exit; the per-thread arena; and full
 * dense-vs-incremental campaign equality.
 */

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <memory>

#include "core/campaign.hh"
#include "nn/activation.hh"
#include "nn/conv.hh"
#include "nn/elementwise.hh"
#include "nn/fc.hh"
#include "nn/incremental.hh"
#include "nn/init.hh"
#include "nn/network.hh"
#include "nn/pool.hh"
#include "nn/region.hh"
#include "sim/arena.hh"
#include "sim/rng.hh"

using namespace fidelity;

namespace
{

Tensor
randomTensor(std::uint64_t seed, int n, int h, int w, int c)
{
    Rng rng(seed);
    Tensor t(n, h, w, c);
    for (auto &v : t.data())
        v = static_cast<float>(rng.normal(0, 1));
    return t;
}

bool
bitIdentical(const Tensor &a, const Tensor &b)
{
    if (!a.sameShape(b))
        return false;
    for (std::size_t i = 0; i < a.size(); ++i)
        if (std::bit_cast<std::uint32_t>(a[i]) !=
            std::bit_cast<std::uint32_t>(b[i]))
            return false;
    return true;
}

std::unique_ptr<Conv2D>
makeConv(std::string name, const ConvSpec &spec, std::uint64_t seed)
{
    Rng rng(seed);
    std::size_t wcount = static_cast<std::size_t>(spec.kh) * spec.kw *
                         (spec.inC / spec.groups) * spec.outC;
    int fan_in = spec.kh * spec.kw * (spec.inC / spec.groups);
    return std::make_unique<Conv2D>(
        std::move(name), spec, heWeights(rng, wcount, fan_in),
        spec.bias ? smallBiases(rng, spec.outC) : std::vector<float>{});
}

/**
 * A small CNN exercising every spatially-local layer the engine
 * propagates through: padded, grouped (depthwise), dilated, and
 * strided convolutions on two parallel branches, elementwise add,
 * scale, channel concat, slice, max pooling, global average pooling,
 * and a (globally-mixing) FC head.
 */
Network
makeBranchy(std::uint64_t seed)
{
    Rng rng(seed);
    Network net("branchy");
    NodeId c1 = net.add(
        makeConv("c1", {.inC = 4, .outC = 8, .pad = 1}, seed + 1), 0);
    NodeId r1 = net.add(
        std::make_unique<Activation>("relu1", Activation::Func::ReLU),
        c1);
    NodeId dw = net.add(
        makeConv("dw", {.inC = 8, .outC = 8, .pad = 1, .groups = 8},
                 seed + 2),
        r1);
    NodeId dil = net.add(
        makeConv("dil", {.inC = 8, .outC = 8, .pad = 2, .dilation = 2},
                 seed + 3),
        r1);
    NodeId add = net.add(std::make_unique<Elementwise>(
                             "add", Elementwise::Op::Add),
                         std::vector<NodeId>{dw, dil});
    NodeId ss = net.add(
        std::make_unique<ScaleShift>("ss", 0.5f, 0.1f), add);
    NodeId cat = net.add(std::make_unique<ConcatC>("cat"),
                         std::vector<NodeId>{add, ss});
    NodeId sl = net.add(
        std::make_unique<Slice>("sl", Slice::Axis::C, 4, 8), cat);
    NodeId p = net.add(
        std::make_unique<Pool>("pool", Pool::Mode::Max, 2, 2), sl);
    NodeId c2 = net.add(
        makeConv("c2", {.inC = 8, .outC = 8, .stride = 2, .pad = 1},
                 seed + 4),
        p);
    NodeId gap = net.add(std::make_unique<GlobalAvgPool>("gap"), c2);
    net.add(std::make_unique<FC>("fc", 8, 5, heWeights(rng, 40, 8),
                                 smallBiases(rng, 5)),
            gap);
    return net;
}

} // namespace

TEST(Region, BasicsAndAlgebra)
{
    Region r;
    EXPECT_TRUE(r.empty());
    EXPECT_EQ(r.volume(), 0u);

    r.include({0, 2, 3, 1});
    EXPECT_FALSE(r.empty());
    EXPECT_EQ(r.volume(), 1u);
    EXPECT_TRUE(r.contains({0, 2, 3, 1}));
    EXPECT_FALSE(r.contains({0, 2, 3, 2}));
    EXPECT_EQ(r, Region::of({0, 2, 3, 1}));

    r.include({0, 4, 1, 3});
    EXPECT_EQ(r.volume(), 1u * 3 * 3 * 3);
    EXPECT_TRUE(r.contains({0, 3, 2, 2}));

    Region o = Region::of({1, 0, 0, 0});
    o.merge(r);
    EXPECT_TRUE(o.contains({0, 2, 3, 1}));
    EXPECT_TRUE(o.contains({1, 0, 0, 0}));

    Tensor t(1, 4, 4, 2);
    EXPECT_TRUE(Region::full(t).covers(t));
    EXPECT_EQ(Region::full(t).volume(), t.size());
    Region clipped = o.clipped(t);
    EXPECT_EQ(clipped.n1, 1);
    EXPECT_EQ(clipped.h1, 4);
    EXPECT_EQ(clipped.c1, 2);
    // Merging an empty region is a no-op.
    Region e;
    Region before = clipped;
    clipped.merge(e);
    EXPECT_EQ(clipped, before);
}

TEST(Region, WindowConeMatchesBruteForce)
{
    // For every (kernel, stride, pad, dilation) combination, and every
    // input span, the cone must contain every output window that reads
    // an input index in the span.  With dilation 1 the cone is exact;
    // dilated windows have holes between taps, so the interval-based
    // cone may conservatively include outputs that skip the span.
    for (int k : {1, 2, 3, 5}) {
        for (int stride : {1, 2, 3}) {
            for (int pad : {0, 1, 2}) {
                for (int dil : {1, 2}) {
                    int in_dim = 9;
                    int reach = (k - 1) * dil;
                    int out_dim =
                        (in_dim + 2 * pad - reach - 1) / stride + 1;
                    if (out_dim <= 0)
                        continue;
                    for (int in0 = 0; in0 < in_dim; ++in0) {
                        for (int in1 = in0 + 1; in1 <= in_dim; ++in1) {
                            auto [lo, hi] = windowCone(
                                in0, in1, k, stride, pad, dil, out_dim);
                            for (int o = 0; o < out_dim; ++o) {
                                bool reads = false;
                                for (int t = 0; t < k; ++t) {
                                    int i = o * stride - pad + t * dil;
                                    reads = reads ||
                                            (i >= in0 && i < in1);
                                }
                                bool in_cone = o >= lo && o < hi;
                                if (dil == 1)
                                    EXPECT_EQ(reads, in_cone)
                                        << "k=" << k << " s=" << stride
                                        << " p=" << pad << " d=" << dil
                                        << " span=[" << in0 << ","
                                        << in1 << ") out=" << o;
                                else
                                    EXPECT_TRUE(!reads || in_cone)
                                        << "k=" << k << " s=" << stride
                                        << " p=" << pad << " d=" << dil
                                        << " span=[" << in0 << ","
                                        << in1 << ") out=" << o;
                            }
                        }
                    }
                }
            }
        }
    }
}

TEST(Region, PropagateIsConservativePerLayer)
{
    // Perturb one input element, recompute the layer densely, and
    // check every output that changed lies inside the propagated cone.
    Tensor x = randomTensor(11, 1, 8, 8, 4);
    std::vector<std::unique_ptr<Layer>> layers;
    layers.push_back(
        makeConv("plain", {.inC = 4, .outC = 6, .pad = 1}, 21));
    layers.push_back(makeConv(
        "strided",
        {.inC = 4, .outC = 6, .kh = 5, .kw = 5, .stride = 2, .pad = 2},
        22));
    layers.push_back(makeConv(
        "dilated", {.inC = 4, .outC = 4, .pad = 2, .dilation = 2}, 23));
    layers.push_back(makeConv(
        "grouped", {.inC = 4, .outC = 8, .pad = 1, .groups = 2}, 24));
    layers.push_back(makeConv(
        "depthwise", {.inC = 4, .outC = 4, .pad = 1, .groups = 4}, 25));
    layers.push_back(makeConv("nopad", {.inC = 4, .outC = 4}, 26));
    layers.push_back(
        std::make_unique<Pool>("max", Pool::Mode::Max, 2, 2));
    layers.push_back(
        std::make_unique<Pool>("avgpad", Pool::Mode::Avg, 3, 2, 1));
    layers.push_back(std::make_unique<GlobalAvgPool>("gap"));
    layers.push_back(std::make_unique<Activation>(
        "leaky", Activation::Func::LeakyReLU));
    layers.push_back(
        std::make_unique<Slice>("slice", Slice::Axis::C, 1, 2));
    layers.push_back(
        std::make_unique<ScaleShift>("scale", 2.0f, -1.0f));

    Rng rng(31);
    for (const auto &layer : layers) {
        std::vector<const Tensor *> ins{&x};
        Tensor golden = layer->forward(ins);
        for (int trial = 0; trial < 12; ++trial) {
            NeuronIndex at = x.indexOf(rng.below(static_cast<std::uint32_t>(x.size())));
            Tensor fx = x;
            fx.at(at) += 10.0f;
            std::vector<const Tensor *> fins{&fx};
            Tensor faulty = layer->forward(fins);
            Region cone = layer->propagateRegion(ins, 0,
                                                 Region::of(at), golden);
            for (std::size_t i = 0; i < golden.size(); ++i) {
                if (std::bit_cast<std::uint32_t>(golden[i]) ==
                    std::bit_cast<std::uint32_t>(faulty[i]))
                    continue;
                EXPECT_TRUE(cone.contains(golden.indexOf(i)))
                    << layer->name() << ": changed output "
                    << golden.indexOf(i).str() << " outside cone "
                    << cone.str() << " for fault at " << at.str();
            }
        }
    }
}

TEST(Region, ConcatPropagatesBothInputs)
{
    Tensor a = randomTensor(41, 1, 4, 4, 3);
    Tensor b = randomTensor(42, 1, 4, 4, 2);
    ConcatC cat("cat");
    std::vector<const Tensor *> ins{&a, &b};
    Tensor out = cat.forward(ins);
    Region ra = cat.propagateRegion(ins, 0, Region::of({0, 1, 2, 1}),
                                    out);
    EXPECT_TRUE(ra.contains({0, 1, 2, 1}));
    Region rb = cat.propagateRegion(ins, 1, Region::of({0, 1, 2, 1}),
                                    out);
    EXPECT_TRUE(rb.contains({0, 1, 2, 4})); // shifted by a.c()
    EXPECT_FALSE(rb.contains({0, 1, 2, 1}));
}

TEST(Incremental, ForwardRegionPatchMatchesDense)
{
    // forwardRegion over the full region must reproduce forward()
    // bit-for-bit in every precision (same kernels, same order).
    Tensor x = randomTensor(51, 1, 6, 6, 4);
    for (Precision p : {Precision::FP32, Precision::FP16,
                        Precision::INT8}) {
        auto conv = makeConv(
            "conv", {.inC = 4, .outC = 6, .pad = 1, .groups = 2}, 52);
        conv->setPrecision(p);
        std::vector<const Tensor *> ins{&x};
        if (p == Precision::INT8) {
            Tensor out = conv->forward(ins);
            conv->calibrate(ins, out);
        }
        Tensor golden = conv->forward(ins);
        Tensor patched(golden.n(), golden.h(), golden.w(), golden.c());
        patched.fill(-777.0f);
        conv->forwardRegion(ins, Region::full(golden), patched);
        EXPECT_TRUE(bitIdentical(golden, patched))
            << "precision " << static_cast<int>(p);
    }
}

TEST(Incremental, BitIdenticalToForwardFromAcrossPrecisions)
{
    Tensor input = randomTensor(61, 1, 8, 8, 4);
    for (Precision p : {Precision::FP32, Precision::FP16,
                        Precision::INT8}) {
        Network net = makeBranchy(60);
        net.setPrecision(p);
        if (p == Precision::INT8)
            net.calibrate(input);
        auto acts = net.forwardAll(input);
        IncrementalEngine engine;
        Rng rng(62);
        for (NodeId node : net.macNodes()) {
            const Tensor &golden = acts[node];
            for (int trial = 0; trial < 8; ++trial) {
                Tensor corrupted = golden;
                Region fault;
                int faults = 1 + static_cast<int>(
                                     rng.below(3));
                for (int f = 0; f < faults; ++f) {
                    NeuronIndex at =
                        golden.indexOf(rng.below(static_cast<std::uint32_t>(golden.size())));
                    float v = trial == 0
                        ? std::numeric_limits<float>::quiet_NaN()
                        : static_cast<float>(rng.normal(0, 64));
                    corrupted.at(at) = v;
                    if (std::bit_cast<std::uint32_t>(v) !=
                        std::bit_cast<std::uint32_t>(golden.at(at)))
                        fault.include(at);
                }
                Tensor dense = net.forwardFrom(node, corrupted, acts);
                const Tensor &fast =
                    engine.run(net, node, corrupted, fault, acts);
                EXPECT_TRUE(bitIdentical(dense, fast))
                    << "node " << node << " trial " << trial
                    << " precision " << static_cast<int>(p);
            }
        }
    }
}

TEST(Incremental, DisabledEngineStillBitIdentical)
{
    // enabled=false degrades every layer to dense recompute inside the
    // engine; the contract holds trivially and exercises that path.
    Tensor input = randomTensor(71, 1, 8, 8, 4);
    Network net = makeBranchy(70);
    auto acts = net.forwardAll(input);
    IncrementalOptions opt;
    opt.enabled = false;
    IncrementalEngine engine(opt);
    NodeId node = net.macNodes().front();
    Tensor corrupted = acts[node];
    NeuronIndex at = corrupted.indexOf(7);
    corrupted.at(at) = 1000.0f;
    Tensor dense = net.forwardFrom(node, corrupted, acts);
    const Tensor &fast = engine.run(net, node, corrupted,
                                    Region::of(at), acts);
    EXPECT_TRUE(bitIdentical(dense, fast));
    EXPECT_EQ(engine.lastStats().layersIncremental, 0);
}

TEST(Incremental, EarlyMaskingExitSkipsDownstream)
{
    // Corrupt a neuron whose golden value is negative to a different
    // negative value: the ReLU right after the conv flushes both to
    // +0.0, the delta dies, and every layer past the ReLU is skipped.
    Tensor input = randomTensor(81, 1, 8, 8, 4);
    Network net = makeBranchy(80);
    auto acts = net.forwardAll(input);
    NodeId node = net.macNodes().front(); // c1, feeds relu1
    const Tensor &golden = acts[node];
    std::size_t neg = golden.size();
    for (std::size_t i = 0; i < golden.size(); ++i) {
        if (golden[i] < -0.5f) {
            neg = i;
            break;
        }
    }
    ASSERT_LT(neg, golden.size()) << "no negative conv output";

    Tensor corrupted = golden;
    NeuronIndex at = golden.indexOf(neg);
    corrupted.at(at) = -1234.5f;

    IncrementalEngine engine;
    const Tensor &fast =
        engine.run(net, node, corrupted, Region::of(at), acts);
    EXPECT_TRUE(engine.lastStats().earlyMasked);
    EXPECT_GT(engine.lastStats().layersSkipped, 0);
    EXPECT_TRUE(bitIdentical(acts[net.outputNode()], fast));
    // The dense path agrees, just slower.
    Tensor dense = net.forwardFrom(node, corrupted, acts);
    EXPECT_TRUE(bitIdentical(dense, fast));

    // An injection whose bits never change is masked immediately.
    const Tensor &same =
        engine.run(net, node, golden, Region::of(at), acts);
    EXPECT_TRUE(engine.lastStats().earlyMasked);
    EXPECT_TRUE(bitIdentical(acts[net.outputNode()], same));
}

TEST(Arena, LeasesReuseCapacity)
{
    Arena arena;
    {
        auto f = arena.floats(64);
        EXPECT_EQ(f.size(), 64u);
        f[0] = 1.0f;
        f[63] = 2.0f;
        EXPECT_EQ(arena.allocations(), 1u);
        EXPECT_EQ(arena.pooledBuffers(), 0u);
    }
    EXPECT_EQ(arena.pooledBuffers(), 1u);
    {
        auto f = arena.floats(32); // shrinking reuses the same buffer
        EXPECT_EQ(f.size(), 32u);
        EXPECT_EQ(arena.reuses(), 1u);
        auto g = arena.floats(16); // concurrent lease: fresh buffer
        EXPECT_EQ(arena.allocations(), 2u);
        auto i = arena.ints(8);
        EXPECT_EQ(i.size(), 8u);
    }
    EXPECT_EQ(arena.pooledBuffers(), 3u);
    EXPECT_GT(arena.bytesHeld(), 0u);
    arena.clear();
    EXPECT_EQ(arena.pooledBuffers(), 0u);
    EXPECT_EQ(arena.bytesHeld(), 0u);
    // The thread-local arena is a singleton per thread.
    EXPECT_EQ(&Arena::local(), &Arena::local());
}

TEST(Campaign, DenseAndIncrementalResultsIdentical)
{
    Network net = makeBranchy(90);
    net.setPrecision(Precision::FP16);
    Tensor input = randomTensor(91, 1, 8, 8, 4);

    CampaignConfig cfg;
    cfg.samplesPerCategory = 8;
    cfg.seed = 92;
    cfg.numThreads = 2;

    cfg.incremental = false;
    CampaignResult dense = runCampaign(net, input, top1Match, cfg);
    cfg.incremental = true;
    CampaignResult fast = runCampaign(net, input, top1Match, cfg);

    EXPECT_EQ(dense.totalInjections, fast.totalInjections);
    ASSERT_EQ(dense.cells.size(), fast.cells.size());
    for (std::size_t i = 0; i < dense.cells.size(); ++i) {
        EXPECT_EQ(dense.cells[i].masked.successes(),
                  fast.cells[i].masked.successes());
        EXPECT_EQ(dense.cells[i].masked.trials(),
                  fast.cells[i].masked.trials());
    }
    ASSERT_EQ(dense.singleNeuronSamples.size(),
              fast.singleNeuronSamples.size());
    for (std::size_t i = 0; i < dense.singleNeuronSamples.size(); ++i) {
        EXPECT_EQ(std::bit_cast<std::uint64_t>(
                      dense.singleNeuronSamples[i].first),
                  std::bit_cast<std::uint64_t>(
                      fast.singleNeuronSamples[i].first));
        EXPECT_EQ(dense.singleNeuronSamples[i].second,
                  fast.singleNeuronSamples[i].second);
    }
    EXPECT_EQ(std::bit_cast<std::uint64_t>(dense.fit.total()),
              std::bit_cast<std::uint64_t>(fast.fit.total()));
}
