/**
 * @file
 * Tests of the study's workload networks and validation layers.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "workloads/data.hh"
#include "workloads/metrics.hh"
#include "workloads/models.hh"

using namespace fidelity;

namespace
{

class NetworkName : public ::testing::TestWithParam<std::string>
{
};

} // namespace

TEST_P(NetworkName, BuildsAndRuns)
{
    const std::string &name = GetParam();
    Network net = buildNetwork(name, 7);
    Tensor x = defaultInputFor(name, 9);
    Tensor out = net.forward(x);
    EXPECT_GT(out.size(), 0u);
    EXPECT_FALSE(hasInvalidValues(out));
}

TEST_P(NetworkName, DeterministicForSeed)
{
    const std::string &name = GetParam();
    Network a = buildNetwork(name, 7);
    Network b = buildNetwork(name, 7);
    Tensor x = defaultInputFor(name, 9);
    Tensor oa = a.forward(x);
    Tensor ob = b.forward(x);
    ASSERT_EQ(oa.size(), ob.size());
    for (std::size_t i = 0; i < oa.size(); ++i)
        EXPECT_EQ(oa[i], ob[i]);
}

TEST_P(NetworkName, HasMacLayersToInject)
{
    Network net = buildNetwork(GetParam(), 7);
    EXPECT_GE(net.macNodes().size(), 3u);
}

TEST_P(NetworkName, RunsInEveryPrecision)
{
    const std::string &name = GetParam();
    Tensor x = defaultInputFor(name, 9);
    for (Precision p : {Precision::FP16, Precision::INT16,
                        Precision::INT8}) {
        Network net = buildNetwork(name, 7);
        net.setPrecision(p);
        net.calibrate(x);
        Tensor out = net.forward(x);
        EXPECT_FALSE(hasInvalidValues(out)) << precisionName(p);
    }
}

INSTANTIATE_TEST_SUITE_P(AllNetworks, NetworkName,
                         ::testing::ValuesIn(studyNetworkNames()));

TEST(Models, ClassifiersEmitDistributions)
{
    for (const std::string &name : {"inception", "resnet", "mobilenet"}) {
        Network net = buildNetwork(name, 7);
        Tensor out = net.forward(defaultInputFor(name, 9));
        EXPECT_EQ(out.c(), 10) << name;
        double sum = 0.0;
        for (std::size_t i = 0; i < out.size(); ++i) {
            EXPECT_GE(out[i], 0.0f);
            sum += out[i];
        }
        EXPECT_NEAR(sum, 1.0, 1e-5) << name;
    }
}

TEST(Models, YoloEmitsDetectionGrid)
{
    Network net = buildYolo(7);
    Tensor out = net.forward(defaultInputFor("yolo", 9));
    EXPECT_EQ(out.h(), 8);
    EXPECT_EQ(out.w(), 8);
    EXPECT_EQ(out.c(), 8);
    // The decoder must accept the head's shape.
    (void)decodeDetections(out);
}

TEST(Models, TransformerEmitsPerPositionDistributions)
{
    Network net = buildTransformer(7);
    Tensor out = net.forward(defaultInputFor("transformer", 9));
    EXPECT_EQ(out.h(), 12);
    EXPECT_EQ(out.c(), 24);
    std::vector<int> tokens = decodeTokens(out);
    EXPECT_EQ(tokens.size(), 12u);
}

TEST(Models, LstmEmitsClassDistribution)
{
    Network net = buildLstm(7);
    Tensor out = net.forward(defaultInputFor("rnn", 9));
    EXPECT_EQ(out.c(), 6);
}

TEST(Models, DifferentSeedsDifferentOutputs)
{
    Network a = buildResNet(7);
    Network b = buildResNet(8);
    Tensor x = defaultInputFor("resnet", 9);
    Tensor oa = a.forward(x);
    Tensor ob = b.forward(x);
    bool differ = false;
    for (std::size_t i = 0; i < oa.size(); ++i)
        differ = differ || oa[i] != ob[i];
    EXPECT_TRUE(differ);
}

TEST(Models, UnknownNameIsFatal)
{
    EXPECT_DEATH((void)buildNetwork("alexnet", 1), "unknown network");
}

TEST(Data, ImageInputIsSmooth)
{
    Tensor img = makeImageInput(3, 1, 16, 16, 4);
    // Neighbouring pixels correlate far more than distant ones.
    double near = 0.0, far = 0.0;
    int count = 0;
    for (int c = 0; c < 4; ++c)
        for (int h = 0; h < 15; ++h)
            for (int w = 0; w < 15; ++w) {
                near += std::fabs(img.at(0, h, w, c) -
                                  img.at(0, h, w + 1, c));
                far += std::fabs(img.at(0, h, w, c) -
                                 img.at(0, 15 - h, 15 - w, c));
                count += 1;
            }
    EXPECT_LT(near / count, far / count);
}

TEST(Data, InputsAreDeterministic)
{
    Tensor a = makeImageInput(5, 1, 8, 8, 2);
    Tensor b = makeImageInput(5, 1, 8, 8, 2);
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i], b[i]);
    Tensor c = makeImageInput(6, 1, 8, 8, 2);
    bool differ = false;
    for (std::size_t i = 0; i < a.size(); ++i)
        differ = differ || a[i] != c[i];
    EXPECT_TRUE(differ);
}

TEST(ValidationWorkloads, CoverTableThree)
{
    auto workloads = buildValidationWorkloads(11);
    ASSERT_EQ(workloads.size(), 6u);
    EXPECT_EQ(workloads[0].name, "inception-conv3x3");
    EXPECT_EQ(workloads[3].name, "attention-matmul");
    for (const auto &w : workloads) {
        EXPECT_EQ(w.layer->precision(), Precision::FP16);
        Tensor out = w.layer->forward(w.ins());
        EXPECT_GT(out.size(), 0u);
        EXPECT_FALSE(hasInvalidValues(out));
    }
}

TEST(ValidationWorkloads, SupportIntegerPrecisions)
{
    for (Precision p : {Precision::INT16, Precision::INT8}) {
        auto workloads = buildValidationWorkloads(11, p);
        for (const auto &w : workloads) {
            Tensor out = w.layer->forward(w.ins());
            EXPECT_FALSE(hasInvalidValues(out)) << w.name;
        }
    }
}
