/**
 * @file
 * Tests of the end-to-end campaign orchestration (FIdelity's flow).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>

#include "core/campaign.hh"
#include "workloads/metrics.hh"
#include "workloads/models.hh"

using namespace fidelity;

namespace
{

CampaignConfig
smallConfig()
{
    CampaignConfig cfg;
    cfg.samplesPerCategory = 12;
    cfg.seed = 5;
    return cfg;
}

} // namespace

TEST(Campaign, RunsOnResNet)
{
    Network net = buildResNet(3);
    Tensor x = defaultInputFor("resnet", 4);
    CampaignResult res =
        runCampaign(net, x, top1Metric(), smallConfig());

    EXPECT_EQ(res.network, "resnet");
    EXPECT_GT(res.totalInjections, 0u);
    EXPECT_GT(res.fit.total(), 0.0);
    EXPECT_EQ(res.layerInputs.size(), net.macNodes().size());
    EXPECT_EQ(res.cells.size(),
              net.macNodes().size() * allFFCategories().size());
}

TEST(Campaign, GlobalDominatesUnprotected)
{
    // Global-control FFs never mask, so with DNN-level masking being
    // substantial everywhere else, the global share dominates.
    Network net = buildResNet(3);
    Tensor x = defaultInputFor("resnet", 4);
    CampaignResult res =
        runCampaign(net, x, top1Metric(), smallConfig());
    EXPECT_GT(res.fit.global, res.fit.local);
}

TEST(Campaign, ProtectedVariantDropsGlobal)
{
    Network net = buildResNet(3);
    Tensor x = defaultInputFor("resnet", 4);
    CampaignResult res =
        runCampaign(net, x, top1Metric(), smallConfig());
    EXPECT_DOUBLE_EQ(res.fitGlobalProtected.global, 0.0);
    EXPECT_NEAR(res.fitGlobalProtected.datapath, res.fit.datapath,
                1e-12);
    EXPECT_LT(res.fitGlobalProtected.total(), res.fit.total());
}

TEST(Campaign, GlobalMaskingProbabilityIsZero)
{
    Network net = buildResNet(3);
    Tensor x = defaultInputFor("resnet", 4);
    CampaignResult res =
        runCampaign(net, x, top1Metric(), smallConfig());
    for (const LayerFitInput &l : res.layerInputs) {
        auto gidx = static_cast<std::size_t>(FFCategory::GlobalControl);
        EXPECT_DOUBLE_EQ(l.stats[gidx].probSwMask, 0.0);
        EXPECT_DOUBLE_EQ(l.stats[gidx].probInactive, 0.0);
    }
}

TEST(Campaign, DeterministicForSeed)
{
    Network net = buildResNet(3);
    Tensor x = defaultInputFor("resnet", 4);
    CampaignResult a = runCampaign(net, x, top1Metric(), smallConfig());
    CampaignResult b = runCampaign(net, x, top1Metric(), smallConfig());
    EXPECT_DOUBLE_EQ(a.fit.total(), b.fit.total());
    EXPECT_EQ(a.singleNeuronSamples.size(),
              b.singleNeuronSamples.size());
}

TEST(Campaign, ResultInvariantUnderThreadCount)
{
    Network net = buildResNet(3);
    Tensor x = defaultInputFor("resnet", 4);
    CampaignConfig cfg = smallConfig();
    cfg.samplesPerCategory = 20;
    cfg.shardGrain = 8; // several shards per cell

    std::vector<CampaignResult> runs;
    for (int threads : {1, 2, 8}) {
        cfg.numThreads = threads;
        runs.push_back(runCampaign(net, x, top1Metric(), cfg));
    }

    const CampaignResult &ref = runs[0];
    for (std::size_t r = 1; r < runs.size(); ++r) {
        const CampaignResult &got = runs[r];
        // FIT breakdown, bit-identical.
        EXPECT_EQ(got.fit.datapath, ref.fit.datapath);
        EXPECT_EQ(got.fit.local, ref.fit.local);
        EXPECT_EQ(got.fit.global, ref.fit.global);
        EXPECT_EQ(got.fitGlobalProtected.total(),
                  ref.fitGlobalProtected.total());

        EXPECT_EQ(got.totalInjections, ref.totalInjections);

        // Per-cell masked counts.
        ASSERT_EQ(got.cells.size(), ref.cells.size());
        for (std::size_t i = 0; i < ref.cells.size(); ++i) {
            EXPECT_EQ(got.cells[i].node, ref.cells[i].node);
            EXPECT_EQ(got.cells[i].category, ref.cells[i].category);
            EXPECT_EQ(got.cells[i].masked.successes(),
                      ref.cells[i].masked.successes());
            EXPECT_EQ(got.cells[i].masked.trials(),
                      ref.cells[i].masked.trials());
        }

        // Perturbation samples, including their merge order.
        ASSERT_EQ(got.singleNeuronSamples.size(),
                  ref.singleNeuronSamples.size());
        for (std::size_t i = 0; i < ref.singleNeuronSamples.size(); ++i)
            EXPECT_EQ(got.singleNeuronSamples[i],
                      ref.singleNeuronSamples[i]);
    }
}

TEST(Campaign, ZeroThreadsSelectsHardwareAndMatches)
{
    Network net = buildResNet(3);
    Tensor x = defaultInputFor("resnet", 4);
    CampaignConfig cfg = smallConfig();
    cfg.samplesPerCategory = 8;

    cfg.numThreads = 1;
    CampaignResult serial = runCampaign(net, x, top1Metric(), cfg);
    cfg.numThreads = 0; // auto
    CampaignResult parallel = runCampaign(net, x, top1Metric(), cfg);

    EXPECT_EQ(serial.fit.total(), parallel.fit.total());
    EXPECT_EQ(serial.totalInjections, parallel.totalInjections);
}

TEST(Campaign, ShardGrainIsPartOfTheSampleIdentity)
{
    // Different grains select different forked streams, so the
    // statistics may move; the sample count must not.
    Network net = buildResNet(3);
    Tensor x = defaultInputFor("resnet", 4);
    CampaignConfig cfg = smallConfig();
    cfg.samplesPerCategory = 20;

    cfg.shardGrain = 8;
    CampaignResult a = runCampaign(net, x, top1Metric(), cfg);
    cfg.shardGrain = 100; // one shard per cell
    CampaignResult b = runCampaign(net, x, top1Metric(), cfg);
    EXPECT_EQ(a.totalInjections, b.totalInjections);
    for (const CellResult &cell : a.cells)
        EXPECT_LE(cell.masked.trials(), 20u + 1u);
}

TEST(Campaign, LooserMetricLowersFit)
{
    Network net = buildYolo(3);
    Tensor x = defaultInputFor("yolo", 4);
    CampaignConfig cfg = smallConfig();
    cfg.samplesPerCategory = 40;
    CampaignResult tight =
        runCampaign(net, x, detectionMetric(0.10), cfg);
    CampaignResult loose =
        runCampaign(net, x, detectionMetric(0.20), cfg);
    // The looser band masks at least as many faults.
    EXPECT_LE(loose.fitGlobalProtected.total(),
              tight.fitGlobalProtected.total() + 1e-9);
}

TEST(Campaign, CollectsSingleNeuronSamples)
{
    Network net = buildResNet(3);
    Tensor x = defaultInputFor("resnet", 4);
    CampaignConfig cfg = smallConfig();
    cfg.samplesPerCategory = 30;
    CampaignResult res = runCampaign(net, x, top1Metric(), cfg);
    EXPECT_GT(res.singleNeuronSamples.size(), 0u);
    for (const auto &[delta, failed] : res.singleNeuronSamples)
        EXPECT_GE(delta, 0.0);
}

TEST(Campaign, TimingLayerHandlesDepthwise)
{
    Network net = buildMobileNet(3);
    Tensor x = defaultInputFor("mobilenet", 4);
    auto acts = net.forwardAll(x);
    for (NodeId node : net.macNodes()) {
        EngineLayer el = timingLayer(net, node, acts);
        LayerTiming t = estimateTiming(NvdlaConfig{}, el);
        EXPECT_GT(t.totalCycles, 0u);
        EXPECT_GT(t.macCycles, 0u);
    }
}

TEST(Campaign, TransformerWithBleuMetric)
{
    Network net = buildTransformer(3);
    Tensor x = defaultInputFor("transformer", 4);
    CampaignConfig cfg = smallConfig();
    cfg.samplesPerCategory = 8;
    CampaignResult res = runCampaign(net, x, bleuMetric(0.10), cfg);
    EXPECT_GT(res.fit.total(), 0.0);
}

namespace
{

CampaignConfig
adaptiveSmall()
{
    CampaignConfig cfg;
    cfg.seed = 5;
    cfg.targetHalfWidth = 0.09;
    cfg.confidenceZ = 1.96;
    cfg.minSamples = 8;
    cfg.maxSamplesPerCategory = 64;
    cfg.shardGrain = 8;
    return cfg;
}

} // namespace

TEST(CampaignAdaptive, EveryCellMeetsTargetOrCap)
{
    Network net = buildResNet(3);
    Tensor x = defaultInputFor("resnet", 4);
    CampaignConfig cfg = adaptiveSmall();
    CampaignResult res = runCampaign(net, x, top1Metric(), cfg);

    EXPECT_TRUE(res.complete);
    EXPECT_GE(res.rounds, 1u);
    for (const CellResult &cell : res.cells) {
        if (cell.category == FFCategory::GlobalControl)
            continue;
        const auto trials = cell.masked.trials();
        EXPECT_GE(trials, static_cast<std::uint64_t>(cfg.minSamples));
        EXPECT_LE(trials,
                  static_cast<std::uint64_t>(cfg.maxSamplesPerCategory));
        if (trials < static_cast<std::uint64_t>(cfg.maxSamplesPerCategory)) {
            EXPECT_LE(cell.masked.halfWidth(cfg.confidenceZ),
                      cfg.targetHalfWidth)
                << "unretired cell below the cap";
        }
    }
}

TEST(CampaignAdaptive, SamplesFlowToHardCells)
{
    // Cells whose estimate sits near 0 or 1 retire at minSamples;
    // cells near 1/2 must draw more to reach the same half-width.
    Network net = buildResNet(3);
    Tensor x = defaultInputFor("resnet", 4);
    CampaignResult res =
        runCampaign(net, x, top1Metric(), adaptiveSmall());

    std::uint64_t lo = UINT64_MAX, hi = 0;
    for (const CellResult &cell : res.cells) {
        if (cell.category == FFCategory::GlobalControl)
            continue;
        lo = std::min(lo, cell.masked.trials());
        hi = std::max(hi, cell.masked.trials());
    }
    EXPECT_LT(lo, hi) << "adaptive schedule degenerated to uniform";
}

TEST(CampaignAdaptive, ResultInvariantUnderThreadCount)
{
    Network net = buildResNet(3);
    Tensor x = defaultInputFor("resnet", 4);
    CampaignConfig cfg = adaptiveSmall();

    cfg.numThreads = 1;
    CampaignResult ref = runCampaign(net, x, top1Metric(), cfg);
    for (int threads : {2, 8}) {
        cfg.numThreads = threads;
        CampaignResult got = runCampaign(net, x, top1Metric(), cfg);
        EXPECT_EQ(campaignChecksum(got), campaignChecksum(ref))
            << threads << " threads";
        EXPECT_EQ(got.rounds, ref.rounds);
    }
}

TEST(CampaignAdaptive, TighterTargetDrawsMoreSamples)
{
    Network net = buildResNet(3);
    Tensor x = defaultInputFor("resnet", 4);
    CampaignConfig cfg = adaptiveSmall();
    cfg.maxSamplesPerCategory = 256;
    CampaignResult loose = runCampaign(net, x, top1Metric(), cfg);
    cfg.targetHalfWidth = 0.045;
    CampaignResult tight = runCampaign(net, x, top1Metric(), cfg);
    EXPECT_GT(tight.totalInjections, loose.totalInjections);
}

TEST(CampaignAdaptive, RejectsNonsenseKnobs)
{
    Network net = buildResNet(3);
    Tensor x = defaultInputFor("resnet", 4);

    CampaignConfig bad = adaptiveSmall();
    bad.minSamples = 0;
    EXPECT_DEATH((void)runCampaign(net, x, top1Metric(), bad),
                 "minSamples");

    bad = adaptiveSmall();
    bad.maxSamplesPerCategory = bad.minSamples - 1;
    EXPECT_DEATH((void)runCampaign(net, x, top1Metric(), bad),
                 "maxSamplesPerCategory");

    bad = adaptiveSmall();
    bad.confidenceZ = 0.0;
    EXPECT_DEATH((void)runCampaign(net, x, top1Metric(), bad),
                 "confidenceZ");

    bad = adaptiveSmall();
    bad.targetHalfWidth = -0.1;
    EXPECT_DEATH((void)runCampaign(net, x, top1Metric(), bad),
                 "targetHalfWidth");
}
