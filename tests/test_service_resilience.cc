/**
 * @file
 * Fault-injection tests for the distributed campaign service itself:
 * real worker processes (fork/exec of the fidelity_service binary)
 * against an in-process coordinator.  The contract under test is the
 * tentpole of the service design — a campaign fanned out over 1, 2,
 * or 4 worker processes, with or without a worker dying mid-shard,
 * reproduces the exact campaignChecksum and a byte-identical manifest
 * "results" section of a single-process run — plus coordinator
 * crash/restart resume and the READY config-hash rejection.
 */

#include <gtest/gtest.h>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "core/campaign.hh"
#include "sim/json.hh"
#include "sim/service.hh"
#include "sim/service_proto.hh"

#if !defined(_WIN32)
#include <sys/socket.h>
#include <sys/un.h>
#endif

using namespace fidelity;

namespace
{

/** The small, fast campaign every test here distributes. */
ServiceRequest
testRequest()
{
    ServiceRequest req;
    req.samplesPerCategory = 8;
    req.shardGrain = 4;
    req.seed = 7;
    return req;
}

std::string
uniqueSocketPath(const std::string &tag)
{
    // Unix socket paths are length-limited; keep them short and keyed
    // by pid so parallel ctest invocations cannot collide.
    return "/tmp/fidsvc-" + std::to_string(::getpid()) + "-" + tag +
           ".sock";
}

std::string
tempPath(const std::string &name)
{
    return testing::TempDir() + "fidelity_service_" +
           std::to_string(::getpid()) + "_" + name;
}

std::string
readWholeFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in) << path;
    return std::string((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
}

/** fork/exec one real worker process of the service binary. */
pid_t
spawnWorker(const std::string &addr, const std::string &name,
            std::uint64_t die_after_results = 0)
{
    const pid_t pid = ::fork();
    if (pid != 0)
        return pid;
    const std::string connect = "--connect=" + addr;
    const std::string worker_name = "--name=" + name;
    const std::string heartbeat = "--heartbeat=0.2";
    const std::string die =
        "--die-after-results=" + std::to_string(die_after_results);
    ::execl(FIDELITY_SERVICE_BIN, FIDELITY_SERVICE_BIN, "worker",
            connect.c_str(), worker_name.c_str(), heartbeat.c_str(),
            die.c_str(), static_cast<char *>(nullptr));
    std::perror("execl fidelity_service");
    ::_exit(127);
}

/** Reap one child; true when it exited normally with status 0. */
bool
reapCleanExit(pid_t pid)
{
    int status = 0;
    if (::waitpid(pid, &status, 0) != pid)
        return false;
    return WIFEXITED(status) && WEXITSTATUS(status) == 0;
}

/** Reap a child expected to have been SIGKILLed (the fault hook). */
bool
reapKilled(pid_t pid)
{
    int status = 0;
    if (::waitpid(pid, &status, 0) != pid)
        return false;
    return WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL;
}

/** Run the coordinator on its own thread (it blocks until merged). */
std::future<CoordinatorRun>
startCoordinator(const ServiceRequest &req,
                 const CoordinatorOptions &opts)
{
    return std::async(std::launch::async, [req, opts] {
        return runCampaignCoordinator(req, opts);
    });
}

/** The single-process ground truth (checksum + manifest). */
CampaignResult
groundTruth(const ServiceRequest &req, const std::string &report_path)
{
    Network net = buildServiceNetwork(req);
    Tensor input = serviceInput(req);
    CampaignConfig cfg = campaignConfigFor(req);
    cfg.reportPath = report_path;
    return runCampaign(net, input, serviceMetric(req), cfg);
}

#if !defined(_WIN32)

/** Minimal raw protocol client for impersonating a worker. */
class RawConn
{
  public:
    explicit RawConn(const std::string &socket_path)
    {
        fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
        EXPECT_GE(fd_, 0);
        sockaddr_un sa{};
        sa.sun_family = AF_UNIX;
        std::strncpy(sa.sun_path, socket_path.c_str(),
                     sizeof(sa.sun_path) - 1);
        // The coordinator may still be binding; retry briefly.
        for (int attempt = 0; attempt < 100; ++attempt) {
            if (::connect(fd_, reinterpret_cast<sockaddr *>(&sa),
                          sizeof(sa)) == 0)
                return;
            std::this_thread::sleep_for(
                std::chrono::milliseconds(50));
        }
        ADD_FAILURE() << "cannot connect to " << socket_path;
    }

    ~RawConn()
    {
        if (fd_ >= 0)
            ::close(fd_);
    }

    void
    send(const std::string &bytes)
    {
        ASSERT_EQ(::send(fd_, bytes.data(), bytes.size(), 0),
                  static_cast<ssize_t>(bytes.size()));
    }

    /** Blocking read of the next frame (fails the test on EOF). */
    Frame
    read()
    {
        Frame f;
        for (;;) {
            std::size_t consumed = 0;
            std::string err;
            const FrameDecodeStatus st =
                tryDecodeFrame(buf_, f, consumed, err);
            if (st == FrameDecodeStatus::Complete) {
                buf_.erase(0, consumed);
                return f;
            }
            EXPECT_EQ(st, FrameDecodeStatus::NeedMore) << err;
            char chunk[4096];
            const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
            if (n <= 0) {
                ADD_FAILURE() << "peer closed before a full frame";
                return f;
            }
            buf_.append(chunk, static_cast<std::size_t>(n));
        }
    }

    /** True when the peer closes the connection (drop path). */
    bool
    waitForClose()
    {
        char chunk[4096];
        for (;;) {
            const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
            if (n == 0)
                return true;
            if (n < 0)
                return errno != EINTR ? false : true;
            buf_.append(chunk, static_cast<std::size_t>(n));
        }
    }

  private:
    int fd_ = -1;
    std::string buf_;
};

#endif // !defined(_WIN32)

} // namespace

TEST(ServiceResilience, WorkerFanOutIsBitIdenticalToSingleProcess)
{
    const ServiceRequest req = testRequest();
    const std::string truth_manifest = tempPath("truth.manifest.json");
    const CampaignResult truth = groundTruth(req, truth_manifest);
    const std::uint64_t want = campaignChecksum(truth);
    const std::string truth_results =
        jsonSection(readWholeFile(truth_manifest), "results");
    ASSERT_FALSE(truth_results.empty());

    for (int workers : {1, 2, 4}) {
        SCOPED_TRACE(std::to_string(workers) + " workers");
        const std::string sock =
            uniqueSocketPath("fan" + std::to_string(workers));
        const std::string manifest = tempPath(
            "fan" + std::to_string(workers) + ".manifest.json");

        std::vector<pid_t> pids;
        for (int w = 0; w < workers; ++w)
            pids.push_back(spawnWorker(
                "unix:" + sock, "w" + std::to_string(w)));

        CoordinatorOptions copts;
        copts.listenAddr = "unix:" + sock;
        copts.leaseShards = 8;
        copts.reportPath = manifest;
        CoordinatorRun run = runCampaignCoordinator(req, copts);

        for (pid_t pid : pids)
            EXPECT_TRUE(reapCleanExit(pid));
        ASSERT_TRUE(run.complete);
        EXPECT_EQ(campaignChecksum(run.result), want)
            << "distributed merge diverged at " << workers
            << " workers";
        EXPECT_EQ(run.result.totalInjections, truth.totalInjections);

        // The manifest "results" section must be byte-identical; the
        // "execution" section legitimately differs (topology, wall
        // time) and carries the worker fan-out.
        const std::string doc = readWholeFile(manifest);
        EXPECT_EQ(jsonSection(doc, "results"), truth_results);
        EXPECT_NE(jsonSection(doc, "execution").find("\"topology\""),
                  std::string::npos);

        // Telemetry: every worker connected and the shard counts add
        // up to the whole plan.
        EXPECT_EQ(run.topology.workers.size(),
                  static_cast<std::size_t>(workers));
        std::uint64_t shards = 0;
        for (const WorkerProcessTelemetry &w : run.topology.workers)
            shards += w.shards;
        Network net = buildServiceNetwork(req);
        EXPECT_EQ(shards,
                  fixedShardPlan(net, campaignConfigFor(req)).size());

        std::remove(manifest.c_str());
    }
    std::remove(truth_manifest.c_str());
}

TEST(ServiceResilience, WorkerKilledMidShardIsReIssuedAndBitIdentical)
{
    const ServiceRequest req = testRequest();
    const std::uint64_t want = campaignChecksum(groundTruth(req, ""));

    const std::string sock = uniqueSocketPath("kill");

    // The victim dies via raise(SIGKILL) upon accepting its second
    // lease — after its first RESULT, holding an unserved lease — and
    // the survivor must pick up the re-issued chunks.
    const pid_t victim =
        spawnWorker("unix:" + sock, "victim", /*die_after_results=*/1);
    const pid_t survivor = spawnWorker("unix:" + sock, "survivor");

    CoordinatorOptions copts;
    copts.listenAddr = "unix:" + sock;
    copts.leaseShards = 8;
    CoordinatorRun run = runCampaignCoordinator(req, copts);

    EXPECT_TRUE(reapKilled(victim));
    EXPECT_TRUE(reapCleanExit(survivor));
    ASSERT_TRUE(run.complete);
    EXPECT_EQ(campaignChecksum(run.result), want)
        << "worker death perturbed the merged campaign";

    // The victim's unserved lease was re-issued (counted as expired)
    // and both its RESULT and the survivor's work are in the merge.
    std::uint64_t expired = 0, victim_shards = 0, survivor_shards = 0;
    for (const WorkerProcessTelemetry &w : run.topology.workers) {
        expired += w.leasesExpired;
        if (w.name == "victim")
            victim_shards = w.shards;
        if (w.name == "survivor")
            survivor_shards = w.shards;
    }
    EXPECT_GE(expired, 1u);
    EXPECT_EQ(victim_shards, copts.leaseShards);
    EXPECT_GT(survivor_shards, 0u);
}

TEST(ServiceResilience, CoordinatorRestartResumesFromCheckpoint)
{
    const ServiceRequest req = testRequest();
    const CampaignResult truth = groundTruth(req, "");

    const std::string sock = uniqueSocketPath("restart");
    const std::string ckpt = tempPath("restart.fidckpt");
    std::remove(ckpt.c_str());

    // First life: merge a few chunks, then "crash" (the deterministic
    // stop hook checkpoints and returns incomplete).
    {
        const pid_t worker = spawnWorker("unix:" + sock, "w0");
        CoordinatorOptions copts;
        copts.listenAddr = "unix:" + sock;
        copts.leaseShards = 4;
        copts.checkpointPath = ckpt;
        copts.stopAfterMergedChunks = 3;
        CoordinatorRun first = runCampaignCoordinator(req, copts);
        EXPECT_TRUE(reapCleanExit(worker));
        ASSERT_FALSE(first.complete);
    }

    // Second life: only the snapshot survives; the restarted
    // coordinator re-issues the remainder and the merged result is
    // bit-identical to an uninterrupted single-process run.
    {
        const pid_t worker = spawnWorker("unix:" + sock, "w1");
        CoordinatorOptions copts;
        copts.listenAddr = "unix:" + sock;
        copts.leaseShards = 4;
        copts.checkpointPath = ckpt;
        copts.resumeFrom = ckpt;
        CoordinatorRun second = runCampaignCoordinator(req, copts);
        EXPECT_TRUE(reapCleanExit(worker));
        ASSERT_TRUE(second.complete);
        EXPECT_EQ(campaignChecksum(second.result),
                  campaignChecksum(truth));
        EXPECT_EQ(second.result.totalInjections,
                  truth.totalInjections);
    }
    std::remove(ckpt.c_str());
}

#if !defined(_WIN32)

TEST(ServiceResilience, WrongReadyHashIsRejectedWithoutPoisoningTheRun)
{
    const ServiceRequest req = testRequest();
    const std::uint64_t want = campaignChecksum(groundTruth(req, ""));

    const std::string sock = uniqueSocketPath("badhash");
    auto coordinator = startCoordinator(req, [&] {
        CoordinatorOptions copts;
        copts.listenAddr = "unix:" + sock;
        copts.leaseShards = 8;
        return copts;
    }());

    // An impostor completes the handshake but announces a READY hash
    // off by one bit — build/version skew that would corrupt the
    // merge.  The coordinator must answer ERROR and drop it.
    {
        RawConn impostor(sock);
        HelloPayload hello;
        hello.worker = "impostor";
        impostor.send(encodeHello(hello));
        SpecPayload spec;
        std::string err;
        ASSERT_TRUE(tryParseSpec(impostor.read(), spec, err)) << err;
        impostor.send(encodeReady({spec.configHash ^ 1}));

        const Frame verdict = impostor.read();
        ASSERT_EQ(verdict.type, FrameType::Error);
        std::string message;
        ASSERT_TRUE(tryParseText(verdict, FrameType::Error, message,
                                 err))
            << err;
        EXPECT_NE(message.find("does not match campaign"),
                  std::string::npos)
            << message;
        EXPECT_TRUE(impostor.waitForClose());
    }

    // A real worker then completes the campaign untouched.
    const pid_t worker = spawnWorker("unix:" + sock, "honest");
    CoordinatorRun run = coordinator.get();
    EXPECT_TRUE(reapCleanExit(worker));
    ASSERT_TRUE(run.complete);
    EXPECT_EQ(campaignChecksum(run.result), want);
}

#endif // !defined(_WIN32)

TEST(ServiceResilience, DaemonSurvivesMalformedRequestsAndDrains)
{
    const std::string sock = uniqueSocketPath("daemon");
    // A nested state dir that does not exist yet: the daemon must
    // create it up front instead of fataling when the first
    // campaign's checkpoint writer opens its temp file there.
    const std::string state_dir =
        testing::TempDir() + "fidsvc-state-" +
        std::to_string(::getpid()) + "/nested";
    auto daemon = std::async(std::launch::async, [&] {
        DaemonOptions dopts;
        dopts.listenAddr = "unix:" + sock;
        dopts.maxConcurrent = 2;
        dopts.stateDir = state_dir;
        return runServiceDaemon(dopts);
    });

    // Malformed requests come back as error responses...
    std::string response, err;
    for (int attempt = 0;; ++attempt) {
        if (submitServiceRequest("unix:" + sock, "definitely not json",
                                 false, response, err))
            FAIL() << "malformed request was accepted: " << response;
        if (err.find("cannot connect") == std::string::npos)
            break; // the daemon is up and answered
        ASSERT_LT(attempt, 100) << err;
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    EXPECT_FALSE(err.empty());

    EXPECT_FALSE(submitServiceRequest(
        "unix:" + sock, "{\"network\": \"vgg9000\"}", false, response,
        err));
    EXPECT_NE(err.find("unknown network"), std::string::npos) << err;

    // ...and the same daemon still serves real campaigns afterwards.
    ServiceRequest req = testRequest();
    req.samplesPerCategory = 2;
    req.shardGrain = 2;
    ASSERT_TRUE(submitServiceRequest("unix:" + sock,
                                     serviceRequestJson(req), false,
                                     response, err))
        << err;
    EXPECT_NE(response.find("\"status\": \"ok\""), std::string::npos)
        << response;
    EXPECT_NE(response.find("\"campaign_checksum\""),
              std::string::npos)
        << response;

    // Graceful drain ends the process loop with exit code 0.
    ASSERT_TRUE(submitServiceRequest("unix:" + sock, "", true,
                                     response, err))
        << err;
    EXPECT_NE(response.find("draining"), std::string::npos);
    EXPECT_EQ(daemon.get(), 0);
}

namespace
{

/** Block until the daemon at `sock` answers its status op. */
void
waitForDaemon(const std::string &sock)
{
    std::string response, err;
    for (int attempt = 0; attempt < 200; ++attempt) {
        if (queryServiceStatus("unix:" + sock, response, err))
            return;
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    FAIL() << "daemon at " << sock << " never came up: " << err;
}

/** Submit on a helper thread; yields (ok, response-or-error). */
std::future<std::pair<bool, std::string>>
submitAsync(const std::string &sock, const ServiceRequest &req)
{
    const std::string json = serviceRequestJson(req);
    return std::async(std::launch::async, [sock, json] {
        std::string response, err;
        const bool ok = submitServiceRequest("unix:" + sock, json,
                                             false, response, err);
        return std::make_pair(ok, ok ? response : err);
    });
}

} // namespace

TEST(ServiceResilience, DrainRejectsQueuedRequestsButFinishesExecuting)
{
    const std::string sock = uniqueSocketPath("drainq");
    auto daemon = std::async(std::launch::async, [&] {
        DaemonOptions dopts;
        dopts.listenAddr = "unix:" + sock;
        dopts.maxConcurrent = 1;
        dopts.maxQueue = 8;
        dopts.testServiceDelaySec = 1.5;
        return runServiceDaemon(dopts);
    });
    waitForDaemon(sock);

    // One request executes (the single worker pops it immediately);
    // two more sit admitted-but-unstarted behind it.
    ServiceRequest req = testRequest();
    req.samplesPerCategory = 2;
    req.shardGrain = 2;
    auto executing = submitAsync(sock, req);
    std::this_thread::sleep_for(std::chrono::milliseconds(400));
    ServiceRequest q1 = req, q2 = req;
    q1.seed = 11;
    q2.seed = 13;
    auto queued1 = submitAsync(sock, q1);
    auto queued2 = submitAsync(sock, q2);
    std::this_thread::sleep_for(std::chrono::milliseconds(400));

    // DRAIN: admitted is not a promise to execute.  The in-flight
    // campaign finishes; the queued ones get the typed rejection.
    std::string response, err;
    ASSERT_TRUE(submitServiceRequest("unix:" + sock, "", true,
                                     response, err))
        << err;

    auto [ok, body] = executing.get();
    EXPECT_TRUE(ok) << body;
    EXPECT_NE(body.find("\"status\": \"ok\""), std::string::npos)
        << body;
    for (auto *f : {&queued1, &queued2}) {
        auto [qok, qbody] = f->get();
        EXPECT_FALSE(qok) << qbody;
        std::string code;
        ASSERT_TRUE(typedErrorStatus(qbody, code)) << qbody;
        EXPECT_EQ(code, "draining");
    }
    EXPECT_EQ(daemon.get(), 0);
}

TEST(ServiceResilience, FullQueueAnswersTypedBusyRejection)
{
    const std::string sock = uniqueSocketPath("busy");
    auto daemon = std::async(std::launch::async, [&] {
        DaemonOptions dopts;
        dopts.listenAddr = "unix:" + sock;
        dopts.maxConcurrent = 1;
        dopts.maxQueue = 1;
        dopts.testServiceDelaySec = 1.5;
        return runServiceDaemon(dopts);
    });
    waitForDaemon(sock);

    ServiceRequest req = testRequest();
    req.samplesPerCategory = 2;
    req.shardGrain = 2;
    auto executing = submitAsync(sock, req); // popped by the worker
    std::this_thread::sleep_for(std::chrono::milliseconds(400));
    ServiceRequest q1 = req;
    q1.seed = 11;
    auto queued = submitAsync(sock, q1); // fills the 1-slot queue
    std::this_thread::sleep_for(std::chrono::milliseconds(400));

    // The third submission overflows the queue and is answered
    // immediately with the typed busy error, not left hanging.
    ServiceRequest q2 = req;
    q2.seed = 13;
    std::string response, err;
    EXPECT_FALSE(submitServiceRequest("unix:" + sock,
                                      serviceRequestJson(q2), false,
                                      response, err));
    std::string code;
    ASSERT_TRUE(typedErrorStatus(err, code)) << err;
    EXPECT_EQ(code, "busy");

    // Admitted requests are unaffected by the rejection.
    auto [ok1, body1] = executing.get();
    EXPECT_TRUE(ok1) << body1;
    auto [ok2, body2] = queued.get();
    EXPECT_TRUE(ok2) << body2;

    ASSERT_TRUE(submitServiceRequest("unix:" + sock, "", true,
                                     response, err))
        << err;
    EXPECT_EQ(daemon.get(), 0);
}

TEST(ServiceResilience, CorruptCheckpointFailsOneRequestNotTheDaemon)
{
    const std::string sock = uniqueSocketPath("corrupt");
    const std::string state_dir =
        testing::TempDir() + "fidsvc-corrupt-" +
        std::to_string(::getpid());
    auto daemon = std::async(std::launch::async, [&] {
        DaemonOptions dopts;
        dopts.listenAddr = "unix:" + sock;
        dopts.maxConcurrent = 2;
        dopts.stateDir = state_dir;
        return runServiceDaemon(dopts);
    });
    waitForDaemon(sock);

    // A well-formed, semantically valid request whose hash-keyed
    // checkpoint file holds garbage: resume hits fatal() inside the
    // snapshot decoder.  The old daemon died here, taking every other
    // campaign with it; now the fatal is captured and answers only
    // this client.
    ServiceRequest poisoned = testRequest();
    poisoned.samplesPerCategory = 2;
    poisoned.shardGrain = 2;
    poisoned.seed = 21;
    {
        Network net = buildServiceNetwork(poisoned);
        Tensor input = serviceInput(poisoned);
        const std::uint64_t hash = campaignConfigHash(
            net, input, campaignConfigFor(poisoned));
        char name[64];
        std::snprintf(name, sizeof(name),
                      "/campaign-0x%016llx.fidckpt",
                      static_cast<unsigned long long>(hash));
        std::ofstream out(state_dir + name, std::ios::binary);
        ASSERT_TRUE(out) << state_dir + name;
        out << "this is not a campaign snapshot";
    }

    // A healthy campaign runs concurrently on the other worker.
    ServiceRequest healthy = testRequest();
    healthy.samplesPerCategory = 2;
    healthy.shardGrain = 2;
    healthy.seed = 22;
    auto concurrent = submitAsync(sock, healthy);

    std::string response, err;
    EXPECT_FALSE(submitServiceRequest("unix:" + sock,
                                      serviceRequestJson(poisoned),
                                      false, response, err));
    EXPECT_FALSE(err.empty());

    // The concurrent campaign and later submissions are untouched.
    auto [ok, body] = concurrent.get();
    EXPECT_TRUE(ok) << body;
    EXPECT_NE(body.find("\"status\": \"ok\""), std::string::npos)
        << body;
    ServiceRequest after = healthy;
    after.seed = 23;
    ASSERT_TRUE(submitServiceRequest("unix:" + sock,
                                     serviceRequestJson(after), false,
                                     response, err))
        << err;
    // With --state-dir the response embeds the manifest, whose
    // execution metrics carry the daemon's per-request queue wait
    // (CampaignConfig::serviceMetrics; the byte-compared "results"
    // section never sees it).
    EXPECT_NE(response.find("\"daemon.queue_wait_s\""),
              std::string::npos)
        << response;

    ASSERT_TRUE(submitServiceRequest("unix:" + sock, "", true,
                                     response, err))
        << err;
    EXPECT_EQ(daemon.get(), 0);
}

TEST(ServiceResilience, DuplicateSubmissionsShareOneExecution)
{
    const std::string sock = uniqueSocketPath("dedup");
    auto daemon = std::async(std::launch::async, [&] {
        DaemonOptions dopts;
        dopts.listenAddr = "unix:" + sock;
        dopts.maxConcurrent = 2;
        // The delay synchronises the two pops far inside the race
        // window: both workers sleep it off, then exactly one wins
        // the single-flight insert and the other parks its socket.
        dopts.testServiceDelaySec = 0.5;
        return runServiceDaemon(dopts);
    });
    waitForDaemon(sock);

    ServiceRequest req = testRequest();
    req.samplesPerCategory = 2;
    req.shardGrain = 2;
    req.seed = 31;
    auto first = submitAsync(sock, req);
    auto second = submitAsync(sock, req);
    auto [ok1, body1] = first.get();
    auto [ok2, body2] = second.get();
    ASSERT_TRUE(ok1) << body1;
    ASSERT_TRUE(ok2) << body2;

    // Same config hash, same campaign, same bytes: the duplicate's
    // answer IS the leader's answer.
    EXPECT_EQ(body1, body2);
    EXPECT_NE(body1.find("\"campaign_checksum\""), std::string::npos);

    std::string status, err;
    ASSERT_TRUE(queryServiceStatus("unix:" + sock, status, err))
        << err;
    EXPECT_NE(status.find("\"daemon.dedup_joined\": 1"),
              std::string::npos)
        << status;

    std::string response;
    ASSERT_TRUE(submitServiceRequest("unix:" + sock, "", true,
                                     response, err))
        << err;
    EXPECT_EQ(daemon.get(), 0);
}

#if !defined(_WIN32)

TEST(ServiceResilience, SendDeadlineBoundsWritesToAWedgedPeer)
{
    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    // Shrink the kernel buffers so the payload below cannot possibly
    // fit, then never read from the peer: an unbounded send would
    // block forever (the old daemon's slow-reader hang).
    int snd = 4096;
    ::setsockopt(fds[0], SOL_SOCKET, SO_SNDBUF, &snd, sizeof(snd));
    const std::string payload(1 << 22, 'x');

    const auto start = std::chrono::steady_clock::now();
    EXPECT_FALSE(sendBytesWithDeadline(fds[0], payload, 0.5));
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    EXPECT_GE(elapsed, 0.4);
    EXPECT_LT(elapsed, 5.0);

    ::close(fds[0]);
    ::close(fds[1]);
}

#endif // !defined(_WIN32)
