/**
 * @file
 * Unit tests for the structural layers: pooling, activations,
 * element-wise ops, concat, slice, scale-shift, and softmax.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "nn/activation.hh"
#include "nn/elementwise.hh"
#include "nn/pool.hh"
#include "nn/softmax.hh"

using namespace fidelity;

namespace
{

Tensor
iota(int n, int h, int w, int c)
{
    Tensor t(n, h, w, c);
    for (std::size_t i = 0; i < t.size(); ++i)
        t[i] = static_cast<float>(i);
    return t;
}

} // namespace

TEST(Pool, MaxPooling2x2)
{
    Tensor x = iota(1, 4, 4, 1);
    Pool pool("p", Pool::Mode::Max, 2);
    Tensor out = pool.forward(x);
    EXPECT_EQ(out.h(), 2);
    EXPECT_EQ(out.w(), 2);
    EXPECT_EQ(out.at(0, 0, 0, 0), 5.0f);
    EXPECT_EQ(out.at(0, 0, 1, 0), 7.0f);
    EXPECT_EQ(out.at(0, 1, 0, 0), 13.0f);
    EXPECT_EQ(out.at(0, 1, 1, 0), 15.0f);
}

TEST(Pool, AvgPooling2x2)
{
    Tensor x = iota(1, 2, 2, 1);
    Pool pool("p", Pool::Mode::Avg, 2);
    Tensor out = pool.forward(x);
    EXPECT_EQ(out.at(0, 0, 0, 0), 1.5f);
}

TEST(Pool, StrideAndWindowIndependent)
{
    Tensor x = iota(1, 5, 5, 1);
    Pool pool("p", Pool::Mode::Max, 3, /*stride=*/1);
    Tensor out = pool.forward(x);
    EXPECT_EQ(out.h(), 3);
    EXPECT_EQ(out.at(0, 0, 0, 0), 12.0f);
}

TEST(Pool, ChannelsIndependent)
{
    Tensor x(1, 2, 2, 2);
    x.at(0, 0, 0, 0) = 9.0f;
    x.at(0, 1, 1, 1) = 4.0f;
    Pool pool("p", Pool::Mode::Max, 2);
    Tensor out = pool.forward(x);
    EXPECT_EQ(out.at(0, 0, 0, 0), 9.0f);
    EXPECT_EQ(out.at(0, 0, 0, 1), 4.0f);
}

TEST(GlobalAvgPool, Averages)
{
    Tensor x = iota(1, 2, 2, 2);
    GlobalAvgPool gap("g");
    Tensor out = gap.forward(x);
    EXPECT_EQ(out.h(), 1);
    EXPECT_EQ(out.w(), 1);
    // Channel 0 holds 0, 2, 4, 6; channel 1 holds 1, 3, 5, 7.
    EXPECT_EQ(out.at(0, 0, 0, 0), 3.0f);
    EXPECT_EQ(out.at(0, 0, 0, 1), 4.0f);
}

TEST(Activation, ReLU)
{
    Activation act("a", Activation::Func::ReLU);
    EXPECT_EQ(act.apply(2.0f), 2.0f);
    EXPECT_EQ(act.apply(-2.0f), 0.0f);
    EXPECT_EQ(act.apply(0.0f), 0.0f);
}

TEST(Activation, LeakyReLU)
{
    Activation act("a", Activation::Func::LeakyReLU, 0.1f);
    EXPECT_EQ(act.apply(3.0f), 3.0f);
    EXPECT_NEAR(act.apply(-3.0f), -0.3f, 1e-6f);
}

TEST(Activation, Sigmoid)
{
    Activation act("a", Activation::Func::Sigmoid);
    EXPECT_NEAR(act.apply(0.0f), 0.5f, 1e-6f);
    EXPECT_GT(act.apply(10.0f), 0.999f);
    EXPECT_LT(act.apply(-10.0f), 0.001f);
}

TEST(Activation, Tanh)
{
    Activation act("a", Activation::Func::Tanh);
    EXPECT_NEAR(act.apply(0.0f), 0.0f, 1e-6f);
    EXPECT_NEAR(act.apply(100.0f), 1.0f, 1e-6f);
}

TEST(Activation, AppliesElementwise)
{
    Tensor x(1, 1, 1, 3);
    x[0] = -1.0f;
    x[1] = 0.5f;
    x[2] = 2.0f;
    Activation act("a", Activation::Func::ReLU);
    Tensor out = act.forward(x);
    EXPECT_EQ(out[0], 0.0f);
    EXPECT_EQ(out[1], 0.5f);
    EXPECT_EQ(out[2], 2.0f);
}

TEST(Elementwise, AddMulSub)
{
    Tensor a(1, 1, 1, 2), b(1, 1, 1, 2);
    a[0] = 2.0f;
    a[1] = -3.0f;
    b[0] = 4.0f;
    b[1] = 5.0f;
    std::vector<const Tensor *> ins{&a, &b};
    EXPECT_EQ(Elementwise("e", Elementwise::Op::Add).forward(ins)[0],
              6.0f);
    EXPECT_EQ(Elementwise("e", Elementwise::Op::Mul).forward(ins)[1],
              -15.0f);
    EXPECT_EQ(Elementwise("e", Elementwise::Op::Sub).forward(ins)[0],
              -2.0f);
}

TEST(ElementwiseDeath, ShapeMismatch)
{
    Tensor a(1, 1, 1, 2), b(1, 1, 1, 3);
    std::vector<const Tensor *> ins{&a, &b};
    Elementwise e("e", Elementwise::Op::Add);
    EXPECT_DEATH((void)e.forward(ins), "mismatch");
}

TEST(Concat, StacksChannels)
{
    Tensor a = iota(1, 2, 1, 2);
    Tensor b = iota(1, 2, 1, 3);
    ConcatC cat("c");
    std::vector<const Tensor *> ins{&a, &b};
    Tensor out = cat.forward(ins);
    EXPECT_EQ(out.c(), 5);
    EXPECT_EQ(out.at(0, 1, 0, 0), a.at(0, 1, 0, 0));
    EXPECT_EQ(out.at(0, 1, 0, 2), b.at(0, 1, 0, 0));
    EXPECT_EQ(out.at(0, 1, 0, 4), b.at(0, 1, 0, 2));
}

TEST(Slice, ChannelRange)
{
    Tensor x = iota(1, 1, 1, 6);
    Slice s("s", Slice::Axis::C, 2, 3);
    Tensor out = s.forward(x);
    EXPECT_EQ(out.c(), 3);
    EXPECT_EQ(out[0], 2.0f);
    EXPECT_EQ(out[2], 4.0f);
}

TEST(Slice, HeightRange)
{
    Tensor x = iota(1, 4, 1, 2);
    Slice s("s", Slice::Axis::H, 1, 2);
    Tensor out = s.forward(x);
    EXPECT_EQ(out.h(), 2);
    EXPECT_EQ(out.at(0, 0, 0, 0), x.at(0, 1, 0, 0));
    EXPECT_EQ(out.at(0, 1, 0, 1), x.at(0, 2, 0, 1));
}

TEST(SliceDeath, RangeOverflow)
{
    Tensor x = iota(1, 1, 1, 4);
    Slice s("s", Slice::Axis::C, 2, 3);
    std::vector<const Tensor *> ins{&x};
    EXPECT_DEATH((void)s.forward(ins), "exceeds");
}

TEST(ScaleShift, Affine)
{
    Tensor x = iota(1, 1, 1, 3);
    ScaleShift ss("s", 2.0f, 1.0f);
    Tensor out = ss.forward(x);
    EXPECT_EQ(out[0], 1.0f);
    EXPECT_EQ(out[1], 3.0f);
    EXPECT_EQ(out[2], 5.0f);
}

TEST(Softmax, NormalisesPerPosition)
{
    Tensor x(1, 2, 1, 3);
    x.at(0, 0, 0, 0) = 1.0f;
    x.at(0, 0, 0, 1) = 2.0f;
    x.at(0, 0, 0, 2) = 3.0f;
    x.at(0, 1, 0, 0) = -5.0f;
    Softmax sm("sm");
    Tensor out = sm.forward(x);
    for (int h = 0; h < 2; ++h) {
        double sum = 0;
        for (int c = 0; c < 3; ++c)
            sum += out.at(0, h, 0, c);
        EXPECT_NEAR(sum, 1.0, 1e-6);
    }
    EXPECT_GT(out.at(0, 0, 0, 2), out.at(0, 0, 0, 1));
}

TEST(Softmax, StableForLargeLogits)
{
    Tensor x(1, 1, 1, 2);
    x[0] = 1000.0f;
    x[1] = 999.0f;
    Softmax sm("sm");
    Tensor out = sm.forward(x);
    EXPECT_TRUE(std::isfinite(out[0]));
    EXPECT_NEAR(out[0] + out[1], 1.0f, 1e-6f);
    EXPECT_GT(out[0], out[1]);
}

TEST(Softmax, NanPropagates)
{
    Tensor x(1, 1, 1, 3);
    x[1] = std::numeric_limits<float>::quiet_NaN();
    Softmax sm("sm");
    Tensor out = sm.forward(x);
    bool any_nan = false;
    for (std::size_t i = 0; i < out.size(); ++i)
        any_nan = any_nan || std::isnan(out[i]);
    EXPECT_TRUE(any_nan);
}
