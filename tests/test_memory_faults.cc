/**
 * @file
 * Tests of the memory-error fault models (Sec. III-E): single and
 * multi-word corruptions, validated against the cycle-level engine.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "accel/nvdla_fi.hh"
#include "core/memory_faults.hh"
#include "nn/conv.hh"
#include "nn/init.hh"
#include "sim/rng.hh"

using namespace fidelity;

namespace
{

struct Fixture
{
    ConvSpec spec;
    std::unique_ptr<Conv2D> conv;
    Tensor x;
    std::vector<const Tensor *> ins;

    Fixture()
        : x(1, 6, 6, 8)
    {
        Rng rng(23);
        spec.inC = 8;
        spec.outC = 32;
        spec.kh = 3;
        spec.kw = 3;
        spec.pad = 1;
        conv = std::make_unique<Conv2D>(
            "c", spec, heWeights(rng, 9u * 8 * 32, 72),
            smallBiases(rng, 32));
        conv->setPrecision(Precision::FP16);
        for (auto &v : x.data())
            v = static_cast<float>(rng.normal(0, 1));
        ins = {&x};
    }
};

bool
sameValue(float a, float b)
{
    if (std::isnan(a) && std::isnan(b))
        return true;
    return a == b;
}

} // namespace

TEST(MemoryFaults, SingleWeightWordStaysInOneChannel)
{
    Fixture f;
    MemoryFaultModel model(*f.conv, f.ins);
    Rng rng(1);
    for (int i = 0; i < 20; ++i) {
        MemWordFault fault;
        fault.weight = true;
        fault.index = rng.below(static_cast<std::uint32_t>(
            f.conv->weightCount(f.ins)));
        fault.mask = 1u << rng.below(16);
        FaultApplication app = model.applyWord(fault);
        if (app.neurons.empty())
            continue;
        int chan = app.neurons.front().c;
        for (const NeuronIndex &n : app.neurons)
            EXPECT_EQ(n.c, chan);
    }
}

TEST(MemoryFaults, SingleInputWordHitsItsConsumers)
{
    Fixture f;
    MemoryFaultModel model(*f.conv, f.ins);
    MemWordFault fault;
    fault.weight = false;
    fault.index = f.x.offset(0, 3, 3, 2);
    fault.mask = 1u << 15; // sign flip
    FaultApplication app = model.applyWord(fault);
    auto consumers = f.conv->inputConsumers(f.ins, fault.index);
    std::set<NeuronIndex> allowed(consumers.begin(), consumers.end());
    EXPECT_FALSE(app.neurons.empty());
    for (const NeuronIndex &n : app.neurons)
        EXPECT_TRUE(allowed.count(n));
}

TEST(MemoryFaults, MultiWordUnionCoversEachWord)
{
    Fixture f;
    MemoryFaultModel model(*f.conv, f.ins);
    MemWordFault a{false, f.x.offset(0, 1, 1, 0), 1u << 14};
    MemWordFault b{false, f.x.offset(0, 4, 4, 3), 1u << 14};
    FaultApplication both = model.applyWords({a, b});
    FaultApplication only_a = model.applyWord(a);
    FaultApplication only_b = model.applyWord(b);

    std::set<NeuronIndex> got(both.neurons.begin(), both.neurons.end());
    for (const NeuronIndex &n : only_a.neurons)
        EXPECT_TRUE(got.count(n)) << n.str();
    for (const NeuronIndex &n : only_b.neurons)
        EXPECT_TRUE(got.count(n)) << n.str();
}

TEST(MemoryFaults, ChainedSubstitutionOnSharedNeuron)
{
    // Two corrupted input words in the same receptive field: the
    // shared neurons see both corruptions at once.
    Fixture f;
    MemoryFaultModel model(*f.conv, f.ins);
    MemWordFault a{false, f.x.offset(0, 2, 2, 1), 1u << 14};
    MemWordFault b{false, f.x.offset(0, 2, 3, 1), 1u << 14};
    FaultApplication both = model.applyWords({a, b});

    // Compute the expected value of one shared neuron manually.
    OperandSub sa, sb;
    sa.kind = OperandSub::Kind::Input;
    sa.flatIndex = a.index;
    sa.value = model.corruptedValue(a);
    sb = sa;
    sb.flatIndex = b.index;
    sb.value = model.corruptedValue(b);
    sa.next = &sb;

    NeuronIndex shared{0, 2, 2, 5}; // uses both (2,2) and (2,3)
    float expect = f.conv->computeNeuron(f.ins, shared, &sa);
    bool found = false;
    for (std::size_t i = 0; i < both.neurons.size(); ++i) {
        if (both.neurons[i] == shared) {
            found = true;
            EXPECT_TRUE(sameValue(both.values[i], expect));
        }
    }
    EXPECT_TRUE(found);
}

TEST(MemoryFaults, EngineAgreesWithModelAtLoadTime)
{
    // A CBUF word corrupted right when compute starts behaves exactly
    // like the pre-buffer model: same faulty neurons, same values.
    Fixture f;
    EngineLayer el = engineLayerFromConv(*f.conv, f.x);
    NvdlaConfig cfg;
    NvdlaFi fi(cfg, el, f.x);
    MemoryFaultModel model(*f.conv, f.ins);

    Rng rng(7);
    for (int trial = 0; trial < 10; ++trial) {
        MemWordFault fault;
        fault.weight = trial % 2 == 0;
        std::size_t limit = fault.weight
            ? f.conv->weightCount(f.ins) : f.x.size();
        fault.index = rng.below(static_cast<std::uint32_t>(limit));
        fault.mask = 1u << rng.below(16);

        MemFault mf;
        mf.weightRegion = fault.weight;
        mf.addr = static_cast<std::int64_t>(fault.index);
        mf.mask = fault.mask;
        mf.cycle = fi.computeStartCycle();
        RtlOutcome rtl = fi.injectMem({mf});
        ASSERT_FALSE(rtl.timeout || rtl.anomaly);

        FaultApplication pred = model.applyWord(fault);
        ASSERT_EQ(rtl.faulty.size(), pred.neurons.size())
            << "trial " << trial;
        std::set<std::size_t> rtl_flats;
        for (const FaultyNeuron &fn : rtl.faulty)
            rtl_flats.insert(fn.flat);
        const Tensor &golden = fi.golden().output;
        for (std::size_t i = 0; i < pred.neurons.size(); ++i) {
            std::size_t flat = golden.offset(
                pred.neurons[i].n, pred.neurons[i].h,
                pred.neurons[i].w, pred.neurons[i].c);
            EXPECT_TRUE(rtl_flats.count(flat));
        }
        // Values also match bitwise.
        for (const FaultyNeuron &fn : rtl.faulty) {
            NeuronIndex n = golden.indexOf(fn.flat);
            bool matched = false;
            for (std::size_t i = 0; i < pred.neurons.size(); ++i)
                if (pred.neurons[i] == n)
                    matched = sameValue(pred.values[i], fn.faulty);
            EXPECT_TRUE(matched) << n.str();
        }
    }
}

TEST(MemoryFaults, EngineLateFaultIsSubsetOfModel)
{
    // A word corrupted mid-compute only affects the reads that happen
    // afterwards: the engine's faulty set is a subset of the model's
    // all-users set, with matching values.
    Fixture f;
    EngineLayer el = engineLayerFromConv(*f.conv, f.x);
    NvdlaConfig cfg;
    NvdlaFi fi(cfg, el, f.x);
    MemoryFaultModel model(*f.conv, f.ins);

    Rng rng(9);
    int non_trivial = 0;
    for (int trial = 0; trial < 20; ++trial) {
        MemWordFault fault;
        fault.weight = true;
        fault.index = rng.below(static_cast<std::uint32_t>(
            f.conv->weightCount(f.ins)));
        fault.mask = 1u << 15;

        MemFault mf;
        mf.weightRegion = true;
        mf.addr = static_cast<std::int64_t>(fault.index);
        mf.mask = fault.mask;
        std::uint64_t start = fi.computeStartCycle();
        mf.cycle = start + rng.below(static_cast<std::uint32_t>(
                       fi.goldenCycles() - start));
        RtlOutcome rtl = fi.injectMem({mf});
        ASSERT_FALSE(rtl.timeout || rtl.anomaly);

        FaultApplication pred = model.applyWord(fault);
        std::set<std::size_t> allowed;
        const Tensor &golden = fi.golden().output;
        for (std::size_t i = 0; i < pred.neurons.size(); ++i)
            allowed.insert(golden.offset(
                pred.neurons[i].n, pred.neurons[i].h,
                pred.neurons[i].w, pred.neurons[i].c));
        for (const FaultyNeuron &fn : rtl.faulty) {
            EXPECT_TRUE(allowed.count(fn.flat));
            NeuronIndex n = golden.indexOf(fn.flat);
            for (std::size_t i = 0; i < pred.neurons.size(); ++i)
                if (pred.neurons[i] == n)
                    EXPECT_TRUE(sameValue(pred.values[i], fn.faulty));
        }
        non_trivial += !rtl.faulty.empty();
    }
    EXPECT_GT(non_trivial, 5);
}
