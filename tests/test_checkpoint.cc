/**
 * @file
 * Crash-safe checkpoint/resume: snapshot round-trips and the
 * kill-and-resume bit-identity contract — a campaign interrupted
 * mid-flight and resumed from its snapshot in a fresh "process"
 * produces a CampaignResult bit-identical (campaignChecksum) to an
 * uninterrupted run, for any thread count.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "core/campaign.hh"
#include "sim/checkpoint.hh"
#include "workloads/metrics.hh"
#include "workloads/models.hh"

using namespace fidelity;

namespace
{

/** Unique snapshot path in gtest's temp dir; removed on destruction. */
class ScopedSnapshotPath
{
  public:
    explicit ScopedSnapshotPath(const std::string &name)
        : path_(testing::TempDir() + "fidelity_" + name + ".ckpt")
    {
        std::remove(path_.c_str());
    }

    ~ScopedSnapshotPath()
    {
        std::remove(path_.c_str());
        std::remove((path_ + ".tmp").c_str());
    }

    const std::string &str() const { return path_; }

  private:
    std::string path_;
};

CampaignConfig
fixedConfig()
{
    CampaignConfig cfg;
    cfg.samplesPerCategory = 16;
    cfg.shardGrain = 4;
    cfg.seed = 11;
    return cfg;
}

CampaignConfig
adaptiveConfig()
{
    CampaignConfig cfg;
    cfg.targetHalfWidth = 0.09;
    cfg.confidenceZ = 1.96;
    cfg.minSamples = 8;
    cfg.maxSamplesPerCategory = 48;
    cfg.shardGrain = 8;
    cfg.seed = 11;
    return cfg;
}

std::string
readFileBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in) << path;
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
}

void
writeFileBytes(const std::string &path, const std::string &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out) << path;
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size()));
    ASSERT_TRUE(out) << path;
}

/** A two-shard snapshot whose second shard carries samples — exercises
 *  every on-disk field kind (header, shard fixed part, sample list). */
CampaignSnapshot
referenceSnapshot()
{
    CampaignSnapshot snap;
    snap.configHash = 0x0123456789abcdefULL;
    ShardRecord a;
    a.ordinal = 0;
    a.cell = 1;
    a.maskedCount = 2;
    a.trials = 4;
    ShardRecord b;
    b.ordinal = 1;
    b.cell = 2;
    b.maskedCount = 1;
    b.trials = 3;
    b.samples = {{0.25, true}, {3.5, false}};
    snap.shards = {a, b};
    return snap;
}

} // namespace

TEST(Snapshot, RoundTripIsBitExact)
{
    ScopedSnapshotPath path("roundtrip");

    CampaignSnapshot snap;
    snap.configHash = 0xdeadbeefcafef00dULL;
    ShardRecord a;
    a.ordinal = 0;
    a.cell = 3;
    a.maskedCount = 7;
    a.trials = 12;
    a.samples = {{0.1, true}, {1e-300, false}, {0.0, true}};
    ShardRecord b;
    b.ordinal = 5;
    b.cell = 9;
    b.maskedCount = 0;
    b.trials = 4;
    snap.shards = {a, b};

    writeSnapshot(path.str(), snap);
    EXPECT_TRUE(snapshotExists(path.str()));

    CampaignSnapshot got = readSnapshot(path.str());
    EXPECT_EQ(got.configHash, snap.configHash);
    ASSERT_EQ(got.shards.size(), 2u);
    EXPECT_EQ(got.shards[0].ordinal, 0u);
    EXPECT_EQ(got.shards[0].cell, 3u);
    EXPECT_EQ(got.shards[0].maskedCount, 7u);
    EXPECT_EQ(got.shards[0].trials, 12u);
    ASSERT_EQ(got.shards[0].samples.size(), 3u);
    // Bit-exact doubles, including denormal-range values.
    EXPECT_EQ(got.shards[0].samples[0], (std::pair<double, bool>{0.1, true}));
    EXPECT_EQ(got.shards[0].samples[1],
              (std::pair<double, bool>{1e-300, false}));
    EXPECT_EQ(got.shards[1].ordinal, 5u);
    EXPECT_TRUE(got.shards[1].samples.empty());
}

TEST(Snapshot, RewriteReplacesAtomically)
{
    ScopedSnapshotPath path("rewrite");

    CampaignSnapshot first;
    first.configHash = 1;
    writeSnapshot(path.str(), first);

    CampaignSnapshot second;
    second.configHash = 2;
    ShardRecord r;
    r.ordinal = 0;
    r.cell = 0;
    r.trials = 1;
    second.shards = {r};
    writeSnapshot(path.str(), second);

    CampaignSnapshot got = readSnapshot(path.str());
    EXPECT_EQ(got.configHash, 2u);
    EXPECT_EQ(got.shards.size(), 1u);
    // The temp file was renamed away, not left behind.
    EXPECT_FALSE(snapshotExists(path.str() + ".tmp"));
}

TEST(Snapshot, MissingFileProbesFalseAndReadFatals)
{
    ScopedSnapshotPath path("missing");
    EXPECT_FALSE(snapshotExists(path.str()));
    EXPECT_DEATH((void)readSnapshot(path.str()), "cannot open");
}

TEST(Snapshot, ForeignFileIsRejected)
{
    ScopedSnapshotPath path("foreign");
    {
        std::FILE *f = std::fopen(path.str().c_str(), "wb");
        ASSERT_NE(f, nullptr);
        std::fputs("this is not a snapshot", f);
        std::fclose(f);
    }
    EXPECT_DEATH((void)readSnapshot(path.str()),
                 "not a fidelity campaign snapshot");
}

TEST(Checkpoint, StopAfterShardsReturnsPartial)
{
    Network net = buildResNet(3);
    Tensor x = defaultInputFor("resnet", 4);
    ScopedSnapshotPath path("partial");

    CampaignConfig cfg = fixedConfig();
    cfg.checkpointPath = path.str();
    cfg.stopAfterShards = 6;
    CampaignResult partial = runCampaign(net, x, top1Metric(), cfg);

    EXPECT_FALSE(partial.complete);
    EXPECT_EQ(partial.totalInjections, 6u * 4u); // 6 shards of grain 4
    EXPECT_TRUE(snapshotExists(path.str()));

    CampaignSnapshot snap = readSnapshot(path.str());
    EXPECT_EQ(snap.shards.size(), 6u);
    EXPECT_EQ(snap.configHash, campaignConfigHash(net, x, cfg));
}

TEST(Checkpoint, KillAndResumeBitIdentityAcrossThreadCounts)
{
    Network net = buildResNet(3);
    Tensor x = defaultInputFor("resnet", 4);

    // The ground truth: one uninterrupted run.
    CampaignResult whole = runCampaign(net, x, top1Metric(),
                                       fixedConfig());
    const std::uint64_t want = campaignChecksum(whole);

    for (int threads : {1, 4, 8}) {
        ScopedSnapshotPath path("kill_fixed_" +
                                std::to_string(threads));

        // Run a slice, then "crash" (drop every in-process state).
        CampaignConfig cfg = fixedConfig();
        cfg.numThreads = threads;
        cfg.checkpointPath = path.str();
        cfg.stopAfterShards = 10;
        CampaignResult partial = runCampaign(net, x, top1Metric(), cfg);
        ASSERT_FALSE(partial.complete);

        // Fresh config, fresh injector, only the snapshot survives.
        CampaignConfig resume = fixedConfig();
        resume.numThreads = threads;
        resume.checkpointPath = path.str();
        resume.resumeFrom = path.str();
        CampaignResult res = runCampaign(net, x, top1Metric(), resume);
        EXPECT_TRUE(res.complete);
        EXPECT_EQ(campaignChecksum(res), want)
            << "resumed result diverged at " << threads << " threads";
        EXPECT_EQ(res.totalInjections, whole.totalInjections);
    }
}

TEST(Checkpoint, KillAndResumeBitIdentityAdaptive)
{
    Network net = buildResNet(3);
    Tensor x = defaultInputFor("resnet", 4);

    CampaignResult whole = runCampaign(net, x, top1Metric(),
                                       adaptiveConfig());
    const std::uint64_t want = campaignChecksum(whole);

    for (int threads : {1, 4}) {
        ScopedSnapshotPath path("kill_adaptive_" +
                                std::to_string(threads));

        CampaignConfig cfg = adaptiveConfig();
        cfg.numThreads = threads;
        cfg.checkpointPath = path.str();
        cfg.stopAfterShards = 7;
        CampaignResult partial = runCampaign(net, x, top1Metric(), cfg);
        ASSERT_FALSE(partial.complete);

        CampaignConfig resume = adaptiveConfig();
        resume.numThreads = threads;
        resume.checkpointPath = path.str();
        resume.resumeFrom = path.str();
        CampaignResult res = runCampaign(net, x, top1Metric(), resume);
        EXPECT_TRUE(res.complete);
        EXPECT_EQ(campaignChecksum(res), want)
            << "adaptive resume diverged at " << threads << " threads";
        EXPECT_EQ(res.rounds, whole.rounds);
    }
}

TEST(Checkpoint, RepeatedSlicesConvergeToTheWholeRun)
{
    // The production crash-restart loop: run the same command with
    // resumeFrom = checkpointPath until it reports complete.
    Network net = buildResNet(3);
    Tensor x = defaultInputFor("resnet", 4);
    ScopedSnapshotPath path("slices");

    CampaignResult whole = runCampaign(net, x, top1Metric(),
                                       fixedConfig());

    CampaignResult res;
    int slices = 0;
    do {
        CampaignConfig cfg = fixedConfig();
        cfg.numThreads = 2;
        cfg.checkpointPath = path.str();
        cfg.resumeFrom = path.str();
        cfg.stopAfterShards = 13;
        res = runCampaign(net, x, top1Metric(), cfg);
        ASSERT_LT(++slices, 100) << "slicing loop failed to converge";
    } while (!res.complete);

    EXPECT_GT(slices, 1) << "test wants at least one real interruption";
    EXPECT_EQ(campaignChecksum(res), campaignChecksum(whole));
}

TEST(Checkpoint, CompleteSnapshotResumesWithoutExecuting)
{
    Network net = buildResNet(3);
    Tensor x = defaultInputFor("resnet", 4);
    ScopedSnapshotPath path("complete");

    CampaignConfig cfg = fixedConfig();
    cfg.checkpointPath = path.str();
    CampaignResult whole = runCampaign(net, x, top1Metric(), cfg);
    ASSERT_TRUE(whole.complete);

    // Everything restores; with a 1-shard budget the run could not
    // have executed more than one shard, yet it completes.
    CampaignConfig resume = fixedConfig();
    resume.resumeFrom = path.str();
    resume.stopAfterShards = 1;
    CampaignResult res = runCampaign(net, x, top1Metric(), resume);
    EXPECT_TRUE(res.complete);
    EXPECT_EQ(campaignChecksum(res), campaignChecksum(whole));
}

TEST(Checkpoint, ResumeRefusesForeignConfig)
{
    Network net = buildResNet(3);
    Tensor x = defaultInputFor("resnet", 4);
    ScopedSnapshotPath path("mismatch");

    CampaignConfig cfg = fixedConfig();
    cfg.checkpointPath = path.str();
    cfg.stopAfterShards = 3;
    (void)runCampaign(net, x, top1Metric(), cfg);

    CampaignConfig other = fixedConfig();
    other.seed = cfg.seed + 1; // different sample identity
    other.resumeFrom = path.str();
    EXPECT_DEATH((void)runCampaign(net, x, top1Metric(), other),
                 "config hash mismatch");
}

TEST(Checkpoint, MissingResumeFileStartsFresh)
{
    Network net = buildResNet(3);
    Tensor x = defaultInputFor("resnet", 4);
    ScopedSnapshotPath path("fresh");

    CampaignConfig cfg = fixedConfig();
    cfg.resumeFrom = path.str(); // never written
    CampaignResult res = runCampaign(net, x, top1Metric(), cfg);
    EXPECT_TRUE(res.complete);
    EXPECT_EQ(campaignChecksum(res),
              campaignChecksum(
                  runCampaign(net, x, top1Metric(), fixedConfig())));
}

TEST(Checkpoint, ConfigHashSeparatesSampleIdentities)
{
    Network net = buildResNet(3);
    Tensor x = defaultInputFor("resnet", 4);

    CampaignConfig cfg = fixedConfig();
    const std::uint64_t base = campaignConfigHash(net, x, cfg);

    CampaignConfig seed = cfg;
    seed.seed += 1;
    EXPECT_NE(campaignConfigHash(net, x, seed), base);

    CampaignConfig grain = cfg;
    grain.shardGrain += 1;
    EXPECT_NE(campaignConfigHash(net, x, grain), base);

    CampaignConfig samples = cfg;
    samples.samplesPerCategory += 1;
    EXPECT_NE(campaignConfigHash(net, x, samples), base);

    // Performance-only knobs keep the identity.
    CampaignConfig perf = cfg;
    perf.numThreads = 8;
    perf.incremental = !perf.incremental;
    perf.progress = true;
    perf.stopAfterShards = 5;
    perf.checkpointEverySec = 0.0;
    EXPECT_EQ(campaignConfigHash(net, x, perf), base);

    // A different input means different outcomes: refuse.
    Tensor y = x;
    y[0] += 1.0f;
    EXPECT_NE(campaignConfigHash(net, y, cfg), base);

    // Adaptive knobs only matter in adaptive mode.
    CampaignConfig adaptive = cfg;
    adaptive.targetHalfWidth = 0.05;
    EXPECT_NE(campaignConfigHash(net, x, adaptive), base);
    CampaignConfig adaptive2 = adaptive;
    adaptive2.minSamples += 8;
    EXPECT_NE(campaignConfigHash(net, x, adaptive2),
              campaignConfigHash(net, x, adaptive));
}

// ----- Corrupt-snapshot matrix ------------------------------------
//
// Every exit from readSnapshot on malformed input must go through
// fatal() with the snapshot path named — never through std::bad_alloc
// on a multi-GB reserve() fed by a corrupt count, and never through a
// silent short read.

TEST(SnapshotCorruption, WriteReportsTheOnDiskByteCount)
{
    ScopedSnapshotPath path("bytecount");
    const std::uint64_t bytes =
        writeSnapshot(path.str(), referenceSnapshot());
    EXPECT_EQ(bytes, readFileBytes(path.str()).size());
}

TEST(SnapshotCorruption, ZeroLengthFileIsRejected)
{
    ScopedSnapshotPath path("zerolen");
    writeFileBytes(path.str(), "");
    EXPECT_DEATH((void)readSnapshot(path.str()),
                 "not a fidelity campaign snapshot");
}

TEST(SnapshotCorruption, TruncatedAtEveryFieldBoundaryIsRejected)
{
    ScopedSnapshotPath path("truncated");
    writeSnapshot(path.str(), referenceSnapshot());
    const std::string whole = readFileBytes(path.str());
    ASSERT_GT(whole.size(), 24u);
    ASSERT_EQ(whole.size() % 8, 0u);

    // Every 8-byte field boundary short of the full file: the header
    // magic, configHash, shard count, each shard's five fixed fields,
    // and each sample's two words.
    for (std::size_t cut = 0; cut < whole.size(); cut += 8) {
        SCOPED_TRACE("truncated to " + std::to_string(cut) + " bytes");
        writeFileBytes(path.str(), whole.substr(0, cut));
        EXPECT_DEATH((void)readSnapshot(path.str()),
                     "snapshot|truncated|declares");
    }

    // A mid-field cut (not 8-aligned) must die too, not short-read.
    writeFileBytes(path.str(), whole.substr(0, whole.size() - 3));
    EXPECT_DEATH((void)readSnapshot(path.str()),
                 "snapshot|truncated|declares");
}

TEST(SnapshotCorruption, BitFlippedMagicIsRejected)
{
    ScopedSnapshotPath path("bitflip");
    writeSnapshot(path.str(), referenceSnapshot());
    const std::string whole = readFileBytes(path.str());

    for (std::size_t byte = 0; byte < 8; ++byte) {
        SCOPED_TRACE("magic byte " + std::to_string(byte));
        std::string bad = whole;
        bad[byte] = static_cast<char>(bad[byte] ^ 0x10);
        writeFileBytes(path.str(), bad);
        EXPECT_DEATH((void)readSnapshot(path.str()),
                     "not a fidelity campaign snapshot");
    }
}

TEST(SnapshotCorruption, AbsurdShardCountIsBoundedByFileSize)
{
    ScopedSnapshotPath path("hugecount");
    writeSnapshot(path.str(), referenceSnapshot());
    std::string bad = readFileBytes(path.str());

    // The shard count lives at bytes [16, 24).  A count that would
    // reserve() petabytes must die on the file-size bound instead.
    const std::uint64_t huge = 1ULL << 62;
    std::memcpy(&bad[16], &huge, sizeof(huge));
    writeFileBytes(path.str(), bad);
    EXPECT_DEATH((void)readSnapshot(path.str()),
                 "declares .* shards but holds only");
}

TEST(SnapshotCorruption, AbsurdSampleCountIsBoundedByFileSize)
{
    ScopedSnapshotPath path("hugesamples");
    writeSnapshot(path.str(), referenceSnapshot());
    std::string bad = readFileBytes(path.str());

    // Shard 0 (no samples): fixed part at [24, 64), its sample count
    // at [56, 64).  Also bump trials ([48, 56)) so the bound that
    // dies is the file-size one, not nsamples > trials.
    const std::uint64_t huge = 1ULL << 61;
    std::memcpy(&bad[48], &huge, sizeof(huge));
    std::memcpy(&bad[56], &huge, sizeof(huge));
    writeFileBytes(path.str(), bad);
    EXPECT_DEATH((void)readSnapshot(path.str()),
                 "declares .* samples in a shard with only");
}

TEST(SnapshotCorruption, MaskedAboveTrialsIsRejected)
{
    ScopedSnapshotPath path("masked");
    writeSnapshot(path.str(), referenceSnapshot());
    std::string bad = readFileBytes(path.str());

    // Shard 0 maskedCount at [40, 48); its trials are 4.
    const std::uint64_t absurd = 1000;
    std::memcpy(&bad[40], &absurd, sizeof(absurd));
    writeFileBytes(path.str(), bad);
    EXPECT_DEATH((void)readSnapshot(path.str()),
                 "maskedCount > trials");
}

// ----- Campaign config hardening ----------------------------------

TEST(CampaignConfigChecks, NegativeCheckpointCadenceIsFatal)
{
    Network net = buildResNet(3);
    Tensor x = defaultInputFor("resnet", 4);
    CampaignConfig cfg = fixedConfig();
    cfg.checkpointEverySec = -1.0;
    EXPECT_DEATH((void)runCampaign(net, x, top1Metric(), cfg),
                 "checkpointEverySec must be >= 0");
}

TEST(CampaignConfigChecks, HugeThrottleIntervalsSaturate)
{
    // progressEverySec * 1e9 used to be cast straight to int64 — UB
    // for anything >= 2^63 ns.  Saturation means "practically never",
    // and the campaign still completes with correct results.
    Network net = buildResNet(3);
    Tensor x = defaultInputFor("resnet", 4);
    ScopedSnapshotPath path("saturate");

    CampaignConfig cfg = fixedConfig();
    cfg.progress = true;
    cfg.progressEverySec = 1e300;
    cfg.checkpointPath = path.str();
    cfg.checkpointEverySec = 1e300;
    CampaignResult res = runCampaign(net, x, top1Metric(), cfg);
    EXPECT_TRUE(res.complete);
    EXPECT_EQ(campaignChecksum(res),
              campaignChecksum(
                  runCampaign(net, x, top1Metric(), fixedConfig())));
}
