/**
 * @file
 * Tests of the application correctness metrics.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "workloads/metrics.hh"

using namespace fidelity;

TEST(Metrics, DecodeTokensPicksArgmaxPerPosition)
{
    Tensor out(1, 3, 1, 4);
    out.at(0, 0, 0, 2) = 1.0f;
    out.at(0, 1, 0, 0) = 1.0f;
    out.at(0, 2, 0, 3) = 1.0f;
    EXPECT_EQ(decodeTokens(out), (std::vector<int>{2, 0, 3}));
}

TEST(Metrics, BleuIdenticalIsOne)
{
    std::vector<int> s = {1, 2, 3, 4, 5, 6};
    EXPECT_DOUBLE_EQ(bleuScore(s, s), 1.0);
}

TEST(Metrics, BleuDisjointIsZero)
{
    EXPECT_DOUBLE_EQ(bleuScore({1, 2, 3, 4, 5}, {6, 7, 8, 9, 10}), 0.0);
}

TEST(Metrics, BleuSingleSubstitutionIsHighButBelowOne)
{
    std::vector<int> ref = {1, 2, 3, 4, 5, 6, 7, 8};
    std::vector<int> hyp = ref;
    hyp[4] = 99;
    double b = bleuScore(ref, hyp);
    EXPECT_GT(b, 0.3);
    EXPECT_LT(b, 1.0);
}

TEST(Metrics, BleuMoreErrorsScoreLower)
{
    std::vector<int> ref = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
    std::vector<int> one = ref, three = ref;
    one[5] = 99;
    three[2] = 97;
    three[5] = 98;
    three[8] = 99;
    EXPECT_GT(bleuScore(ref, one), bleuScore(ref, three));
}

TEST(Metrics, BleuBrevityPenalty)
{
    std::vector<int> ref = {1, 2, 3, 4, 5, 6, 7, 8};
    std::vector<int> prefix(ref.begin(), ref.begin() + 5);
    double b = bleuScore(ref, prefix);
    EXPECT_LT(b, 1.0);
    EXPECT_GT(b, 0.0);
}

TEST(Metrics, BleuEmptyHypothesis)
{
    EXPECT_DOUBLE_EQ(bleuScore({1, 2, 3}, {}), 0.0);
    EXPECT_DOUBLE_EQ(bleuScore({}, {}), 1.0);
}

TEST(Metrics, BleuShortSequencesFallBackGracefully)
{
    EXPECT_DOUBLE_EQ(bleuScore({5}, {5}), 1.0);
    EXPECT_DOUBLE_EQ(bleuScore({5}, {6}), 0.0);
}

TEST(Metrics, BleuMetricBandsDiffer)
{
    // Construct outputs whose BLEU sits between the 10% and 20% bands
    // (a single substituted token in a 20-token sequence scores about
    // 0.86).
    Tensor golden(1, 20, 1, 4);
    for (int h = 0; h < 20; ++h)
        golden.at(0, h, 0, h % 4) = 1.0f;
    Tensor faulty = golden;
    // Change one position's argmax.
    faulty.at(0, 10, 0, 10 % 4) = 0.0f;
    faulty.at(0, 10, 0, (10 + 1) % 4) = 1.0f;
    double b = bleuScore(decodeTokens(golden), decodeTokens(faulty));
    ASSERT_GT(b, 0.8);
    ASSERT_LT(b, 0.9);
    EXPECT_FALSE(bleuMetric(0.10)(golden, faulty));
    EXPECT_TRUE(bleuMetric(0.20)(golden, faulty));
}

TEST(Metrics, DetectionDecode)
{
    Tensor out(1, 2, 2, 8);
    // Cell (0, 1) detects class 2 with a box.
    out.at(0, 0, 1, 0) = 3.0f; // sigmoid(3) > 0.5
    out.at(0, 0, 1, 1) = 0.5f;
    out.at(0, 0, 1, 2) = 0.6f;
    out.at(0, 0, 1, 3) = 0.7f;
    out.at(0, 0, 1, 4) = 0.8f;
    out.at(0, 0, 1, 7) = 2.0f; // class 2 logit
    // Everything else stays below threshold (logit 0 -> 0.5).
    auto dets = decodeDetections(out);
    ASSERT_EQ(dets.size(), 1u);
    EXPECT_EQ(dets[0].cellH, 0);
    EXPECT_EQ(dets[0].cellW, 1);
    EXPECT_EQ(dets[0].cls, 2);
    EXPECT_EQ(dets[0].x, 0.5f);
}

TEST(Metrics, DetectionScorePerfect)
{
    std::vector<Detection> d = {{0, 0, 1, 0.1f, 0.2f, 0.3f, 0.4f}};
    EXPECT_DOUBLE_EQ(detectionScore(d, d), 1.0);
}

TEST(Metrics, DetectionScoreMissAndSpurious)
{
    std::vector<Detection> ref = {{0, 0, 1, 0, 0, 0, 0},
                                  {1, 1, 2, 0, 0, 0, 0}};
    std::vector<Detection> miss = {{0, 0, 1, 0, 0, 0, 0}};
    // One of two found: recall 0.5, precision 1 -> F = 2/3.
    EXPECT_NEAR(detectionScore(ref, miss), 2.0 / 3.0, 1e-9);

    std::vector<Detection> spurious = ref;
    spurious.push_back({2, 2, 0, 0, 0, 0, 0});
    // Precision 2/3, recall 1 -> F = 0.8.
    EXPECT_NEAR(detectionScore(ref, spurious), 0.8, 1e-9);
}

TEST(Metrics, DetectionBoxToleranceMatters)
{
    std::vector<Detection> ref = {{0, 0, 1, 0.0f, 0.0f, 0.0f, 0.0f}};
    std::vector<Detection> close = {{0, 0, 1, 0.05f, 0.0f, 0.0f, 0.0f}};
    std::vector<Detection> far = {{0, 0, 1, 0.5f, 0.0f, 0.0f, 0.0f}};
    EXPECT_DOUBLE_EQ(detectionScore(ref, close), 1.0);
    EXPECT_DOUBLE_EQ(detectionScore(ref, far), 0.0);
}

TEST(Metrics, DetectionEmptyCases)
{
    std::vector<Detection> none;
    std::vector<Detection> one = {{0, 0, 0, 0, 0, 0, 0}};
    EXPECT_DOUBLE_EQ(detectionScore(none, none), 1.0);
    EXPECT_DOUBLE_EQ(detectionScore(none, one), 0.0);
    EXPECT_DOUBLE_EQ(detectionScore(one, none), 0.0);
}

TEST(Metrics, DetectionMetricBands)
{
    // Golden: three detections; faulty run loses one.
    Tensor golden(1, 2, 2, 8);
    golden.at(0, 0, 0, 0) = 3.0f;
    golden.at(0, 0, 1, 0) = 3.0f;
    golden.at(0, 1, 0, 0) = 3.0f;
    Tensor faulty = golden;
    faulty.at(0, 1, 0, 0) = -3.0f;
    // Score = F1 of 2 of 3 = 0.8 -> fails 10%, passes 20%... 0.8 is
    // exactly the 20% bound.
    EXPECT_FALSE(detectionMetric(0.10)(golden, faulty));
    EXPECT_TRUE(detectionMetric(0.20)(golden, faulty));
}

TEST(Metrics, NanAlwaysFails)
{
    Tensor golden(1, 2, 2, 8);
    golden.at(0, 0, 0, 0) = 3.0f;
    Tensor faulty = golden;
    faulty.at(0, 1, 1, 3) = std::numeric_limits<float>::quiet_NaN();
    EXPECT_FALSE(detectionMetric(0.20)(golden, faulty));
    EXPECT_FALSE(bleuMetric(0.20)(golden, faulty));
    EXPECT_TRUE(hasInvalidValues(faulty));
    EXPECT_FALSE(hasInvalidValues(golden));
}
