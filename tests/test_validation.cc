/**
 * @file
 * Framework validation tests (Sec. IV): the software fault models must
 * agree with the cycle-level engine on masking, faulty-neuron sets,
 * values, and generation order for every sampled fault site.
 */

#include <gtest/gtest.h>

#include "core/validation.hh"
#include "workloads/models.hh"

using namespace fidelity;

namespace
{

struct WorkloadCase
{
    int index;
    const char *name;
};

class ValidatePerWorkload : public ::testing::TestWithParam<WorkloadCase>
{
};

} // namespace

TEST(Validation, CategoryMappingCoversEveryClass)
{
    EXPECT_EQ(categoryOfFFClass(FFClass::FetchInput),
              FFCategory::PreBufInput);
    EXPECT_EQ(categoryOfFFClass(FFClass::FetchWeight),
              FFCategory::PreBufWeight);
    EXPECT_EQ(categoryOfFFClass(FFClass::OperandInput),
              FFCategory::OperandInput);
    EXPECT_EQ(categoryOfFFClass(FFClass::WeightStage),
              FFCategory::OperandWeight);
    EXPECT_EQ(categoryOfFFClass(FFClass::WeightHold),
              FFCategory::OperandWeight);
    EXPECT_EQ(categoryOfFFClass(FFClass::Psum), FFCategory::OutputPsum);
    EXPECT_EQ(categoryOfFFClass(FFClass::OutputReg),
              FFCategory::OutputPsum);
    EXPECT_EQ(categoryOfFFClass(FFClass::BiasReg),
              FFCategory::OutputPsum);
    EXPECT_EQ(categoryOfFFClass(FFClass::LocalValid),
              FFCategory::LocalControl);
    EXPECT_EQ(categoryOfFFClass(FFClass::LocalMuxSel),
              FFCategory::LocalControl);
    EXPECT_EQ(categoryOfFFClass(FFClass::GlobalConfig),
              FFCategory::GlobalControl);
    EXPECT_EQ(categoryOfFFClass(FFClass::GlobalCounter),
              FFCategory::GlobalControl);
}

TEST_P(ValidatePerWorkload, ModelsMatchEngineExactly)
{
    auto workloads = buildValidationWorkloads(31);
    auto &w = workloads[GetParam().index];
    ASSERT_EQ(w.name, GetParam().name);

    NvdlaConfig cfg;
    Validator val(cfg, *w.layer, w.ins());
    Rng rng(101 + GetParam().index);
    const int samples = 400;

    int disagreements = 0, set_mismatch = 0, value_mismatch = 0,
        order_mismatch = 0, both = 0;
    for (int i = 0; i < samples; ++i) {
        CaseResult cr = val.runOne(rng);
        if (cr.category == FFCategory::GlobalControl)
            continue; // global is statistical, checked separately
        if (cr.rtlMasked != cr.predMasked)
            disagreements += 1;
        if (!cr.rtlMasked && !cr.predMasked) {
            both += 1;
            set_mismatch += !cr.setMatch;
            if (cr.setMatch && cr.site.ff.cls != FFClass::LocalValid)
                value_mismatch += !cr.valueMatch;
            order_mismatch += cr.setMatch && !cr.orderMatch;
        }
    }
    EXPECT_EQ(disagreements, 0);
    EXPECT_EQ(set_mismatch, 0);
    EXPECT_EQ(value_mismatch, 0);
    EXPECT_EQ(order_mismatch, 0);
    // The tiny single-row lstm-fc layer is fetch-dominated, so most
    // sampled sites are inactive; still require a handful of live ones.
    int min_cases = GetParam().index == 4 ? 3 : 20;
    EXPECT_GT(both, min_cases)
        << "sampling produced too few non-masked cases";
}

INSTANTIATE_TEST_SUITE_P(
    TableThree, ValidatePerWorkload,
    ::testing::Values(WorkloadCase{0, "inception-conv3x3"},
                      WorkloadCase{1, "resnet-conv3x3"},
                      WorkloadCase{2, "transformer-fc"},
                      WorkloadCase{3, "attention-matmul"},
                      WorkloadCase{4, "lstm-fc"},
                      WorkloadCase{5, "yolo-conv3x3"}));

TEST(Validation, GlobalControlMostlyFails)
{
    auto workloads = buildValidationWorkloads(33);
    NvdlaConfig cfg;
    Validator val(cfg, *workloads[0].layer, workloads[0].ins());
    Rng rng(7);

    int cases = 0, non_masked = 0;
    while (cases < 120) {
        CaseResult cr = val.runOne(rng);
        if (cr.category != FFCategory::GlobalControl)
            continue;
        cases += 1;
        non_masked += !cr.rtlMasked;
    }
    // The paper observes ~90% of active global-control faults fail;
    // our engine should see a clear majority too.
    EXPECT_GT(static_cast<double>(non_masked) / cases, 0.5);
}

TEST(Validation, ReportAggregatesConsistently)
{
    auto workloads = buildValidationWorkloads(35);
    NvdlaConfig cfg;
    Validator val(cfg, *workloads[1].layer, workloads[1].ins());
    Rng rng(13);
    ValidationReport rep = val.run(300, rng);
    EXPECT_EQ(rep.totalCases, 300u);

    std::uint64_t sum = 0, non_masked = 0;
    for (FFCategory cat : allFFCategories()) {
        const CategoryValidation &cv = rep.forCategory(cat);
        sum += cv.cases;
        non_masked += cv.rtlNonMasked;
        EXPECT_LE(cv.setMatch, cv.bothNonMasked);
        EXPECT_LE(cv.valueMatch, cv.setMatch);
    }
    EXPECT_EQ(sum, rep.totalCases);
    EXPECT_EQ(non_masked, rep.totalNonMasked);
}

TEST(Validation, IntegerPrecisionAlsoValidates)
{
    // The bit-exact agreement must hold in INT8 mode as well.
    auto workloads = buildValidationWorkloads(37, Precision::INT8);
    NvdlaConfig cfg;
    Validator val(cfg, *workloads[1].layer, workloads[1].ins());
    Rng rng(17);
    int disagreements = 0, mismatches = 0, both = 0;
    for (int i = 0; i < 300; ++i) {
        CaseResult cr = val.runOne(rng);
        if (cr.category == FFCategory::GlobalControl)
            continue;
        disagreements += cr.rtlMasked != cr.predMasked;
        if (!cr.rtlMasked && !cr.predMasked) {
            both += 1;
            if (cr.site.ff.cls != FFClass::LocalValid)
                mismatches += !(cr.setMatch && cr.valueMatch);
        }
    }
    EXPECT_EQ(disagreements, 0);
    EXPECT_EQ(mismatches, 0);
    EXPECT_GT(both, 10);
}

TEST(Validation, PredictionIsDeterministic)
{
    auto workloads = buildValidationWorkloads(39);
    NvdlaConfig cfg;
    Validator val(cfg, *workloads[0].layer, workloads[0].ins());
    Rng rng(19);
    for (int i = 0; i < 20; ++i) {
        FaultSite site = val.fi().sampleSite(rng);
        Prediction a = val.predict(site);
        Prediction b = val.predict(site);
        EXPECT_EQ(a.kind, b.kind);
        EXPECT_EQ(a.flats, b.flats);
        EXPECT_EQ(a.values, b.values);
    }
}
