/**
 * @file
 * Unit tests for the PCG32-based Rng.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "sim/rng.hh"

using namespace fidelity;

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next32(), b.next32());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        if (a.next32() == b.next32())
            same += 1;
    EXPECT_LT(same, 4);
}

TEST(Rng, BelowStaysInRange)
{
    Rng rng(7);
    for (std::uint32_t bound : {1u, 2u, 3u, 16u, 1000u, 0x80000000u}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(rng.below(bound), bound);
    }
}

TEST(Rng, BelowOneIsAlwaysZero)
{
    Rng rng(9);
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowCoversAllValues)
{
    Rng rng(3);
    std::set<std::uint32_t> seen;
    for (int i = 0; i < 400; ++i)
        seen.insert(rng.below(7));
    EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, RangeInclusiveBounds)
{
    Rng rng(11);
    bool hit_lo = false, hit_hi = false;
    for (int i = 0; i < 500; ++i) {
        std::int64_t v = rng.range(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        hit_lo = hit_lo || v == -3;
        hit_hi = hit_hi || v == 3;
    }
    EXPECT_TRUE(hit_lo);
    EXPECT_TRUE(hit_hi);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(13);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, UniformRespectsBounds)
{
    Rng rng(17);
    for (int i = 0; i < 1000; ++i) {
        double u = rng.uniform(-2.5, 4.0);
        EXPECT_GE(u, -2.5);
        EXPECT_LT(u, 4.0);
    }
}

TEST(Rng, NormalMomentsAreSane)
{
    Rng rng(19);
    const int n = 40000;
    double sum = 0.0, sq = 0.0;
    for (int i = 0; i < n; ++i) {
        double x = rng.normal();
        sum += x;
        sq += x * x;
    }
    double mean = sum / n;
    double var = sq / n - mean * mean;
    EXPECT_NEAR(mean, 0.0, 0.03);
    EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(Rng, NormalWithParams)
{
    Rng rng(23);
    const int n = 20000;
    double sum = 0.0;
    for (int i = 0; i < n; ++i)
        sum += rng.normal(5.0, 0.5);
    EXPECT_NEAR(sum / n, 5.0, 0.05);
}

TEST(Rng, ChanceMatchesProbability)
{
    Rng rng(29);
    int hits = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        if (rng.chance(0.3))
            hits += 1;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, WeightedRespectsWeights)
{
    Rng rng(31);
    std::vector<double> w = {1.0, 0.0, 3.0};
    int counts[3] = {0, 0, 0};
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        counts[rng.weighted(w)] += 1;
    EXPECT_EQ(counts[1], 0);
    EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.25, 0.02);
    EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.02);
}

TEST(Rng, ForkProducesIndependentStream)
{
    Rng a(55);
    Rng b = a.fork();
    int same = 0;
    for (int i = 0; i < 64; ++i)
        if (a.next32() == b.next32())
            same += 1;
    EXPECT_LT(same, 4);
}

TEST(Rng, PickIndexInRange)
{
    Rng rng(61);
    std::vector<int> v(13);
    for (int i = 0; i < 200; ++i)
        EXPECT_LT(rng.pick(v), v.size());
}

TEST(Rng, PickPanicsOnEmptyContainerNamingTheCaller)
{
    Rng rng(67);
    std::vector<int> empty;
    EXPECT_DEATH((void)rng.pick(empty), "Rng::pick");
}

TEST(Rng, PickHandles64BitSizes)
{
    // A container type whose size() exceeds 32 bits: pick() must not
    // truncate it to uint32_t (which once made huge sizes alias small
    // ones — size 2^32 truncated to 0 and died inside below(0)).
    struct Huge
    {
        std::uint64_t n;
        std::uint64_t size() const { return n; }
        bool empty() const { return n == 0; }
    };

    Rng rng(71);
    const std::uint64_t size = (1ULL << 32) + 5;
    bool above32 = false;
    for (int i = 0; i < 64; ++i) {
        std::size_t idx = rng.pick(Huge{size});
        EXPECT_LT(idx, size);
        above32 = above32 || idx > 0xffffffffULL;
    }
    // The regression case: size 2^32 exactly used to truncate to 0.
    for (int i = 0; i < 16; ++i)
        EXPECT_LT(rng.pick(Huge{1ULL << 32}), 1ULL << 32);
    (void)above32; // indices above 2^32 are possible but not certain
}
