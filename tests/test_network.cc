/**
 * @file
 * Unit tests for the Network DAG: forward passes, partial
 * re-execution, calibration, and the LSTM/attention builders.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "nn/activation.hh"
#include "nn/attention.hh"
#include "nn/elementwise.hh"
#include "nn/fc.hh"
#include "nn/init.hh"
#include "nn/lstm.hh"
#include "nn/network.hh"
#include "sim/rng.hh"

using namespace fidelity;

namespace
{

/** Input -> FC -> ReLU -> FC, with a residual add around the middle. */
Network
makeDiamond(std::uint64_t seed)
{
    Rng rng(seed);
    Network net("diamond");
    NodeId fc1 = net.add(std::make_unique<FC>("fc1", 4, 4,
                                              heWeights(rng, 16, 4),
                                              smallBiases(rng, 4)),
                         0);
    NodeId act = net.add(std::make_unique<Activation>(
                             "relu", Activation::Func::ReLU),
                         fc1);
    NodeId add = net.add(std::make_unique<Elementwise>(
                             "add", Elementwise::Op::Add),
                         std::vector<NodeId>{act, fc1});
    net.add(std::make_unique<FC>("fc2", 4, 3, heWeights(rng, 12, 4),
                                 smallBiases(rng, 3)),
            add);
    return net;
}

Tensor
randomInput(std::uint64_t seed, int c)
{
    Rng rng(seed);
    Tensor t(1, 1, 1, c);
    for (auto &v : t.data())
        v = static_cast<float>(rng.normal(0, 1));
    return t;
}

} // namespace

TEST(Network, ForwardAllCoversEveryNode)
{
    Network net = makeDiamond(1);
    Tensor x = randomInput(2, 4);
    auto acts = net.forwardAll(x);
    EXPECT_EQ(static_cast<int>(acts.size()), net.numNodes());
    EXPECT_EQ(acts[0].size(), x.size());
    EXPECT_EQ(acts[net.outputNode()].c(), 3);
}

TEST(Network, ForwardIsDeterministic)
{
    Network net = makeDiamond(1);
    Tensor x = randomInput(2, 4);
    Tensor a = net.forward(x);
    Tensor b = net.forward(x);
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i], b[i]);
}

TEST(Network, ForwardFromWithGoldenReplacementIsIdentity)
{
    Network net = makeDiamond(1);
    Tensor x = randomInput(2, 4);
    auto acts = net.forwardAll(x);
    Tensor out = acts[net.outputNode()];
    for (NodeId node = 1; node < net.numNodes(); ++node) {
        Tensor again = net.forwardFrom(node, acts[node], acts);
        ASSERT_EQ(again.size(), out.size());
        for (std::size_t i = 0; i < out.size(); ++i)
            EXPECT_EQ(again[i], out[i]) << "node=" << node;
    }
}

TEST(Network, ForwardFromMatchesFullRecompute)
{
    Network net = makeDiamond(1);
    Tensor x = randomInput(2, 4);
    auto acts = net.forwardAll(x);

    // Corrupt node 1's output and compare against a full re-run with
    // the corruption spliced in by brute force.
    Tensor corrupted = acts[1];
    corrupted[2] += 5.0f;
    Tensor fast = net.forwardFrom(1, corrupted, acts);

    // Brute force: recompute nodes 2.. manually.
    std::vector<Tensor> slow(acts.size());
    slow[0] = acts[0];
    slow[1] = corrupted;
    for (NodeId id = 2; id < net.numNodes(); ++id) {
        std::vector<const Tensor *> ins;
        for (NodeId in : net.producers(id))
            ins.push_back(&slow[in]);
        slow[id] = net.layer(id).forward(ins);
    }
    const Tensor &want = slow[net.outputNode()];
    for (std::size_t i = 0; i < want.size(); ++i)
        EXPECT_EQ(fast[i], want[i]);
}

TEST(Network, ForwardFromSkipsIndependentBranches)
{
    // Corrupting the output node itself returns the replacement as-is.
    Network net = makeDiamond(1);
    Tensor x = randomInput(2, 4);
    auto acts = net.forwardAll(x);
    Tensor repl = acts[net.outputNode()];
    repl[0] = 42.0f;
    Tensor out = net.forwardFrom(net.outputNode(), repl, acts);
    EXPECT_EQ(out[0], 42.0f);
}

TEST(Network, MacNodesFindsMacLayers)
{
    Network net = makeDiamond(1);
    auto macs = net.macNodes();
    ASSERT_EQ(macs.size(), 2u);
    EXPECT_EQ(net.layer(macs[0]).name(), "fc1");
    EXPECT_EQ(net.layer(macs[1]).name(), "fc2");
}

TEST(Network, SetPrecisionPropagates)
{
    Network net = makeDiamond(1);
    net.setPrecision(Precision::FP16);
    for (NodeId id = 1; id < net.numNodes(); ++id)
        EXPECT_EQ(net.layer(id).precision(), Precision::FP16);
}

TEST(Network, CalibrationEnablesIntegerMode)
{
    Network net = makeDiamond(1);
    Tensor x = randomInput(2, 4);
    Tensor fp32 = net.forward(x);

    net.setPrecision(Precision::INT16);
    net.calibrate(x);
    Tensor int16 = net.forward(x);

    // INT16 tracks FP32 closely but not exactly.
    double err = 0.0;
    for (std::size_t i = 0; i < fp32.size(); ++i)
        err += std::fabs(int16[i] - fp32[i]);
    EXPECT_LT(err / fp32.size(), 0.05);
}

TEST(Network, Int8CoarserThanInt16)
{
    auto total_err = [&](Precision p) {
        Network ref = makeDiamond(1);
        Network quant = makeDiamond(1);
        quant.setPrecision(p);
        // Calibrate over the evaluation inputs so range clipping does
        // not drown out the quantisation-granularity difference.
        for (int s = 0; s < 20; ++s)
            quant.calibrate(randomInput(100 + s, 4));
        double err = 0.0;
        for (int s = 0; s < 20; ++s) {
            Tensor x = randomInput(100 + s, 4);
            Tensor want = ref.forward(x);
            Tensor got = quant.forward(x);
            for (std::size_t i = 0; i < want.size(); ++i)
                err += std::fabs(got[i] - want[i]);
        }
        return err;
    };
    double e16 = total_err(Precision::INT16);
    double e8 = total_err(Precision::INT8);
    EXPECT_GT(e16, 0.0);
    EXPECT_GT(e8, e16);
}

TEST(Network, TotalMacOps)
{
    Network net = makeDiamond(1);
    Tensor x = randomInput(2, 4);
    // fc1: 4 units * 4 terms; fc2: 3 units * 4 terms.
    EXPECT_EQ(net.totalMacOps(x), 16u + 12u);
}

TEST(NetworkDeath, ForwardRejectsBadProducers)
{
    Rng rng(1);
    Network net("bad");
    auto layer = std::make_unique<FC>("fc", 4, 4, heWeights(rng, 16, 4),
                                      std::vector<float>{});
    EXPECT_DEATH(net.add(std::move(layer), 5), "earlier node");
}

TEST(LstmBuilder, ProducesRunnableGraph)
{
    Rng rng(3);
    Network net("lstm");
    LstmSpec spec;
    spec.inputSize = 4;
    spec.hiddenSize = 8;
    spec.timeSteps = 3;
    NodeId h = addLstm(net, 0, spec, rng, "lstm");
    EXPECT_EQ(h, net.outputNode());

    Tensor x(1, 3, 1, 4);
    Rng data(4);
    for (auto &v : x.data())
        v = static_cast<float>(data.normal(0, 1));
    Tensor out = net.forward(x);
    EXPECT_EQ(out.c(), 8);
    EXPECT_EQ(out.h(), 1);
    // Hidden state is bounded by tanh * sigmoid.
    for (std::size_t i = 0; i < out.size(); ++i) {
        EXPECT_GE(out[i], -1.0f);
        EXPECT_LE(out[i], 1.0f);
    }
}

TEST(LstmBuilder, LaterInputsMatter)
{
    Rng rng(5);
    Network net("lstm");
    LstmSpec spec;
    spec.inputSize = 4;
    spec.hiddenSize = 8;
    spec.timeSteps = 3;
    addLstm(net, 0, spec, rng, "lstm");

    Tensor x(1, 3, 1, 4);
    Rng data(6);
    for (auto &v : x.data())
        v = static_cast<float>(data.normal(0, 1));
    Tensor base = net.forward(x);
    x.at(0, 2, 0, 0) += 1.0f; // perturb the last timestep
    Tensor perturbed = net.forward(x);
    bool changed = false;
    for (std::size_t i = 0; i < base.size(); ++i)
        changed = changed || base[i] != perturbed[i];
    EXPECT_TRUE(changed);
}

TEST(AttentionBuilder, ProducesRunnableGraph)
{
    Rng rng(7);
    Network net("attn");
    AttentionSpec spec;
    spec.seqLen = 6;
    spec.dModel = 8;
    spec.dFF = 16;
    NodeId out_node = addAttentionBlock(net, 0, spec, rng, "enc");
    EXPECT_EQ(out_node, net.outputNode());

    Tensor x(1, 6, 1, 8);
    Rng data(8);
    for (auto &v : x.data())
        v = static_cast<float>(data.normal(0, 1));
    Tensor out = net.forward(x);
    EXPECT_EQ(out.h(), 6);
    EXPECT_EQ(out.c(), 8);
}

TEST(AttentionBuilder, MixesAcrossPositions)
{
    Rng rng(9);
    Network net("attn");
    AttentionSpec spec;
    spec.seqLen = 6;
    spec.dModel = 8;
    spec.dFF = 16;
    addAttentionBlock(net, 0, spec, rng, "enc");

    Tensor x(1, 6, 1, 8);
    Rng data(10);
    for (auto &v : x.data())
        v = static_cast<float>(data.normal(0, 1));
    Tensor base = net.forward(x);
    x.at(0, 0, 0, 0) += 2.0f; // perturb position 0
    Tensor perturbed = net.forward(x);
    // Attention propagates the change to other positions.
    bool other_changed = false;
    for (int c = 0; c < 8; ++c)
        other_changed = other_changed ||
                        base.at(0, 5, 0, c) != perturbed.at(0, 5, 0, c);
    EXPECT_TRUE(other_changed);
}
