/**
 * @file
 * Unit tests for symmetric integer quantisation.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "sim/rng.hh"
#include "tensor/quant.hh"

using namespace fidelity;

TEST(Quant, RangeConstants)
{
    QuantParams q8 = calibrateAbsMax(1.0, 8);
    EXPECT_EQ(q8.qmax(), 127);
    EXPECT_EQ(q8.qmin(), -128);
    QuantParams q16 = calibrateAbsMax(1.0, 16);
    EXPECT_EQ(q16.qmax(), 32767);
    EXPECT_EQ(q16.qmin(), -32768);
}

TEST(Quant, CalibrationMapsAbsMaxToQmax)
{
    QuantParams qp = calibrateAbsMax(12.7, 8);
    EXPECT_EQ(quantize(12.7f, qp), 127);
    EXPECT_EQ(quantize(-12.7f, qp), -127);
}

TEST(Quant, CalibrateFromValues)
{
    QuantParams qp = calibrate({0.5f, -3.0f, 2.0f}, 8);
    EXPECT_NEAR(qp.scale, 3.0 / 127.0, 1e-12);
}

TEST(Quant, ZeroTensorGetsUsableScale)
{
    QuantParams qp = calibrate({0.0f, 0.0f}, 8);
    EXPECT_GT(qp.scale, 0.0);
    EXPECT_EQ(quantize(0.0f, qp), 0);
}

TEST(Quant, ZeroMapsToZero)
{
    QuantParams qp = calibrateAbsMax(5.0, 16);
    EXPECT_EQ(quantize(0.0f, qp), 0);
    EXPECT_EQ(dequantize(0, qp), 0.0f);
}

TEST(Quant, SaturatesOutOfRange)
{
    QuantParams qp = calibrateAbsMax(1.0, 8);
    EXPECT_EQ(quantize(100.0f, qp), 127);
    EXPECT_EQ(quantize(-100.0f, qp), -128);
}

TEST(Quant, RoundToNearest)
{
    QuantParams qp = calibrateAbsMax(127.0, 8); // scale = 1
    EXPECT_EQ(quantize(2.4f, qp), 2);
    EXPECT_EQ(quantize(2.6f, qp), 3);
    EXPECT_EQ(quantize(-2.6f, qp), -3);
}

TEST(Quant, RoundsHalfToEven)
{
    // Ties must break toward even codes (lrint under the default FP
    // environment), not away from zero: the SIMD quantizeBatch path
    // reproduces exactly this behaviour.
    QuantParams qp = calibrateAbsMax(127.0, 8); // scale = 1
    EXPECT_EQ(quantize(0.5f, qp), 0);
    EXPECT_EQ(quantize(1.5f, qp), 2);
    EXPECT_EQ(quantize(2.5f, qp), 2);
    EXPECT_EQ(quantize(3.5f, qp), 4);
    EXPECT_EQ(quantize(-0.5f, qp), 0);
    EXPECT_EQ(quantize(-1.5f, qp), -2);
    EXPECT_EQ(quantize(-2.5f, qp), -2);
}

TEST(Quant, RangeHelpersAreConstexpr)
{
    constexpr QuantParams q8{1.0, 8};
    static_assert(q8.qmax() == 127);
    static_assert(q8.qmin() == -128);
    static_assert(clampToRange(1000, q8) == 127);
    static_assert(clampToRange(-1000, q8) == -128);
    static_assert(clampToRange(-5, q8) == -5);
    constexpr QuantParams q16{1.0, 16};
    static_assert(q16.qmax() == 32767);
    static_assert(q16.qmin() == -32768);
    SUCCEED();
}

TEST(Quant, QuantOfDequantIsIdentity)
{
    // Property: every representable code survives dequant->quant.
    QuantParams qp = calibrateAbsMax(3.7, 8);
    for (int q = qp.qmin(); q <= qp.qmax(); ++q)
        EXPECT_EQ(quantize(dequantize(q, qp), qp), q) << "q=" << q;
}

TEST(Quant, Int16QuantOfDequantIsIdentitySampled)
{
    QuantParams qp = calibrateAbsMax(10.0, 16);
    Rng rng(5);
    for (int i = 0; i < 2000; ++i) {
        auto q = static_cast<std::int32_t>(
            rng.range(qp.qmin(), qp.qmax()));
        EXPECT_EQ(quantize(dequantize(q, qp), qp), q);
    }
}

TEST(Quant, ErrorBoundedByHalfStep)
{
    QuantParams qp = calibrateAbsMax(2.0, 8);
    Rng rng(8);
    for (int i = 0; i < 2000; ++i) {
        float x = static_cast<float>(rng.uniform(-2.0, 2.0));
        float r = dequantize(quantize(x, qp), qp);
        EXPECT_LE(std::fabs(r - x), qp.scale * 0.5 + 1e-7);
    }
}

TEST(Quant, ClampToRange)
{
    QuantParams qp = calibrateAbsMax(1.0, 8);
    EXPECT_EQ(clampToRange(1000, qp), 127);
    EXPECT_EQ(clampToRange(-1000, qp), -128);
    EXPECT_EQ(clampToRange(5, qp), 5);
}
