/**
 * @file
 * Command-line resilience analysis: run FIdelity's full flow on one of
 * the study networks with configurable precision, metric, and
 * statistics, and print the FIT breakdown plus a selective-protection
 * plan for a given budget.
 *
 * Usage:
 *   resilience_cli [network] [precision] [metric] [samples] [target]
 *                  [threads] [report.json] [batch]
 *
 *   network   inception | resnet | mobilenet | yolo | transformer | rnn
 *   precision fp16 | int16 | int8            (default fp16)
 *   metric    top1 | bleu10 | bleu20 | det10 | det20  (default top1)
 *   samples   per (layer, category)          (default 200)
 *   target    FIT budget for protection plan (default 0.2)
 *   threads   injection worker threads; 0 = all hardware threads
 *             (default 0; the result is identical for any value)
 *   report    write the machine-readable run manifest here (cell
 *             table, FIT breakdowns, phase timings, worker counts;
 *             schema in DESIGN.md §10).  Off when omitted.
 *   batch     fault-batch lane width 1..8 (default 8; 1 disables
 *             batching; the result is identical for any value)
 */

#include <cstdlib>
#include <iostream>
#include <string>

#include "core/campaign.hh"
#include "sim/logging.hh"
#include "core/protection.hh"
#include "sim/parse.hh"
#include "sim/table.hh"
#include "workloads/metrics.hh"
#include "workloads/models.hh"

using namespace fidelity;

namespace
{

const char *const kUsage =
    "usage: resilience_cli [network] [precision] [metric] [samples]\n"
    "                      [target] [threads] [report.json] [batch]\n"
    "\n"
    "  1 network   inception | resnet | mobilenet | yolo | transformer\n"
    "              | rnn                             (default resnet)\n"
    "  2 precision fp32 | fp16 | int16 | int8        (default fp16)\n"
    "  3 metric    top1 | bleu10 | bleu20 | det10 | det20\n"
    "                                                (default top1)\n"
    "  4 samples   injections per (layer, category)  (default 200)\n"
    "  5 target    FIT budget for the protection plan (default 0.2)\n"
    "  6 threads   injection worker threads; 0 = all hardware threads\n"
    "              (default 0; the result is identical for any value)\n"
    "  7 report    path of the machine-readable run manifest (cell\n"
    "              table, FIT breakdowns, phase timings, result-cache\n"
    "              counters; schema in DESIGN.md §10).  Off when\n"
    "              omitted.\n"
    "  8 batch     fault-batch lane width 1..8 (default 8; 1 disables\n"
    "              batching; the result is identical for any value)\n";

Precision
parsePrecision(const std::string &s)
{
    if (s == "fp16")
        return Precision::FP16;
    if (s == "int16")
        return Precision::INT16;
    if (s == "int8")
        return Precision::INT8;
    if (s == "fp32")
        return Precision::FP32;
    fatal("unknown precision '", s, "'");
}

CorrectnessFn
parseMetric(const std::string &s)
{
    if (s == "top1")
        return top1Metric();
    if (s == "bleu10")
        return bleuMetric(0.10);
    if (s == "bleu20")
        return bleuMetric(0.20);
    if (s == "det10")
        return detectionMetric(0.10);
    if (s == "det20")
        return detectionMetric(0.20);
    fatal("unknown metric '", s, "'");
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc > 1 && (std::string(argv[1]) == "-h" ||
                     std::string(argv[1]) == "--help")) {
        std::cout << kUsage;
        return 0;
    }
    fatal_if(argc > 9, "too many arguments (", argc - 1,
             " given, at most 8 accepted)\n", kUsage);

    std::string network = argc > 1 ? argv[1] : "resnet";
    Precision precision =
        parsePrecision(argc > 2 ? argv[2] : "fp16");
    std::string metric_name = argc > 3 ? argv[3] : "top1";
    CorrectnessFn metric = parseMetric(metric_name);
    // Checked parses: a mistyped "threads=abc" must name the bad
    // argument and exit, not silently run with atoi's 0.
    int samples =
        argc > 4 ? static_cast<int>(parseIntArg("samples (arg 4)",
                                                argv[4], 1, 1 << 24))
                 : 200;
    double target = argc > 5 ? parseDoubleArg("target (arg 5)", argv[5],
                                              0.0, 1e12)
                             : 0.2;
    int threads =
        argc > 6 ? static_cast<int>(parseIntArg("threads (arg 6)",
                                                argv[6], 0, 4096))
                 : 0;
    std::string report = argc > 7 ? argv[7] : "";
    int batch =
        argc > 8 ? static_cast<int>(parseIntArg("batch (arg 8)",
                                                argv[8], 1, 8))
                 : 8;

    Network net = buildNetwork(network, 2020);
    Tensor input = defaultInputFor(network, 2021);
    net.setPrecision(precision);
    if (precision == Precision::INT16 || precision == Precision::INT8)
        net.calibrate(input);

    CampaignConfig cfg;
    cfg.samplesPerCategory = samples;
    cfg.seed = 17;
    cfg.numThreads = threads;
    cfg.batchWidth = batch;
    cfg.progress = true;
    cfg.reportPath = report;

    std::cout << "analysing " << network << " ("
              << precisionName(precision) << ", " << metric_name << ", "
              << samples << " samples per layer/category)...\n";
    CampaignResult res = runCampaign(net, input, metric, cfg);

    printHeading(std::cout, "Accelerator FIT rate");
    Table t({"FF group", "FIT"});
    t.addRow({"datapath", Table::num(res.fit.datapath, 3)});
    t.addRow({"local control", Table::num(res.fit.local, 3)});
    t.addRow({"global control", Table::num(res.fit.global, 3)});
    t.addRow({"total", Table::num(res.fit.total(), 3)});
    t.print(std::cout);

    printHeading(std::cout,
                 "Selective protection plan (target " +
                     Table::num(target, 2) + " FIT)");
    ProtectionPlan plan =
        planSelectiveProtection(cfg.fit, res.layerInputs, target);
    Table p({"Category", "protect?"});
    const auto &cats = allFFCategories();
    for (std::size_t c = 0; c < cats.size(); ++c)
        p.addRow({ffCategoryName(cats[c]),
                  plan.protect[c] ? "yes" : "no"});
    p.print(std::cout);
    std::cout << "protected FF share: " << Table::pct(plan.ffShare)
              << ", resulting FIT: " << Table::num(plan.fit.total(), 3)
              << (plan.meetsTarget ? " (meets target)\n"
                                   : " (target unreachable by "
                                     "category protection alone)\n");
    std::cout << "\ntotal injections: " << res.totalInjections << "\n";
    if (!report.empty())
        std::cout << "run manifest written to " << report << "\n";
    return 0;
}
