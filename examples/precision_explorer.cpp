/**
 * @file
 * Exploring the resilience / precision trade-off (Key result 4).
 *
 * The same classifier network is quantised to FP16, INT16 and INT8 and
 * assessed with FIdelity; the example also inspects the mechanics
 * behind the trend by measuring the perturbation a single operand bit
 * flip causes in each representation.
 */

#include <cmath>
#include <iostream>

#include "core/campaign.hh"
#include "core/fault_models.hh"
#include "sim/stats.hh"
#include "sim/table.hh"
#include "tensor/bitops.hh"
#include "workloads/metrics.hh"
#include "workloads/models.hh"

using namespace fidelity;

int
main()
{
    printHeading(std::cout,
                 "Precision exploration: resnet classifier, Top-1");

    Table t({"Precision", "datapath", "local", "global", "total FIT"});
    for (Precision p : {Precision::FP16, Precision::INT16,
                        Precision::INT8}) {
        Network net = buildResNet(2020);
        Tensor input = defaultInputFor("resnet", 2021);
        net.setPrecision(p);
        if (p != Precision::FP16)
            net.calibrate(input);

        CampaignConfig cfg;
        cfg.samplesPerCategory = 100;
        cfg.seed = 5;
        CampaignResult res = runCampaign(net, input, top1Metric(), cfg);
        t.addRow({precisionName(p), Table::num(res.fit.datapath, 3),
                  Table::num(res.fit.local, 3),
                  Table::num(res.fit.global, 3),
                  Table::num(res.fit.total(), 3)});
    }
    t.print(std::cout);

    // Why: measure the relative perturbation of one operand bit flip
    // per representation, for values calibrated to the same range.
    printHeading(std::cout,
                 "Mean |perturbation| of one operand bit flip "
                 "(values in [-1, 1])");
    Table m({"Representation", "mean |delta|", "max |delta|"});
    Rng rng(9);
    QuantParams q8 = calibrateAbsMax(1.0, 8);
    QuantParams q16 = calibrateAbsMax(1.0, 16);
    for (Precision p : {Precision::FP16, Precision::INT16,
                        Precision::INT8}) {
        RunningStat stat;
        const QuantParams &qp = p == Precision::INT8 ? q8 : q16;
        for (int i = 0; i < 20000; ++i) {
            float x = static_cast<float>(rng.uniform(-1.0, 1.0));
            int bit = static_cast<int>(
                rng.below(FaultModels::operandBits(p)));
            float y = FaultModels::flipStoredOperand(x, p, qp, bit);
            if (std::isfinite(y))
                stat.add(std::fabs(y - x));
            else
                stat.add(65504.0); // FP16 overflow-scale event
        }
        m.addRow({precisionName(p), Table::num(stat.mean(), 4),
                  Table::num(stat.max(), 1)});
    }
    m.print(std::cout);

    std::cout << "\nFP16's dynamic range admits enormous single-flip "
                 "perturbations (exponent bits), while INT8's flips "
                 "are larger relative to its 8-bit word than INT16's — "
                 "matching the FIT ordering above (Key result 4).\n";
    return 0;
}
