/**
 * @file
 * Quickstart: build a small CNN, run FIdelity's full flow on it, and
 * read out the accelerator FIT rate.
 *
 *   1. describe the workload (a Network of layers),
 *   2. pick a correctness metric,
 *   3. run the campaign (activeness analysis + software fault
 *      injection + Eq. 2),
 *   4. inspect the FIT breakdown.
 */

#include <iostream>
#include <memory>

#include "core/campaign.hh"
#include "nn/activation.hh"
#include "nn/conv.hh"
#include "nn/fc.hh"
#include "nn/init.hh"
#include "nn/pool.hh"
#include "nn/softmax.hh"
#include "sim/table.hh"
#include "workloads/data.hh"
#include "workloads/metrics.hh"

using namespace fidelity;

int
main()
{
    // --- 1. Describe the workload -----------------------------------
    Rng weights(42);
    Network net("quickstart-cnn");

    ConvSpec conv1;
    conv1.inC = 4;
    conv1.outC = 16;
    conv1.kh = 3;
    conv1.kw = 3;
    conv1.pad = 1;
    NodeId c1 = net.add(
        std::make_unique<Conv2D>("conv1", conv1,
                                 heWeights(weights, 9u * 4 * 16, 36),
                                 smallBiases(weights, 16)),
        0);
    NodeId r1 = net.add(std::make_unique<Activation>(
                            "relu1", Activation::Func::ReLU),
                        c1);
    NodeId p1 =
        net.add(std::make_unique<Pool>("pool1", Pool::Mode::Max, 2), r1);
    NodeId gap = net.add(std::make_unique<GlobalAvgPool>("gap"), p1);
    NodeId fc = net.add(
        std::make_unique<FC>("fc", 16, 10,
                             heWeights(weights, 160, 16),
                             smallBiases(weights, 10)),
        gap);
    net.add(std::make_unique<Softmax>("softmax"), fc);

    // The accelerator executes in FP16.
    net.setPrecision(Precision::FP16);

    Tensor input = makeImageInput(7, 1, 12, 12, 4);
    std::cout << "network: " << net.name() << ", "
              << net.macNodes().size() << " MAC layers, output label "
              << net.forward(input).argmax() << "\n";

    // --- 2-3. Run FIdelity ------------------------------------------
    CampaignConfig cfg;
    cfg.samplesPerCategory = 100; // per (layer, category)
    cfg.seed = 1;
    cfg.fit.rawFitPerMb = 600.0;  // soft-error rate of the process node
    cfg.fit.nff = 1.2e6;          // estimated FF census

    CampaignResult result =
        runCampaign(net, input, top1Metric(), cfg);

    // --- 4. Inspect the results --------------------------------------
    printHeading(std::cout, "Accelerator FIT rate (Eq. 2)");
    Table t({"FF group", "FIT"});
    t.addRow({"datapath", Table::num(result.fit.datapath, 3)});
    t.addRow({"local control", Table::num(result.fit.local, 3)});
    t.addRow({"global control", Table::num(result.fit.global, 3)});
    t.addRow({"total", Table::num(result.fit.total(), 3)});
    t.print(std::cout);

    printHeading(std::cout, "Per-layer masking probabilities");
    Table m({"Layer", "Category", "Prob_SWmask"});
    for (const CellResult &cell : result.cells) {
        if (cell.category == FFCategory::GlobalControl)
            continue;
        m.addRow({net.layer(cell.node).name(),
                  ffCategoryName(cell.category), cell.masked.str()});
    }
    m.print(std::cout);

    std::cout << "\ntotal software fault injections: "
              << result.totalInjections << "\n"
              << "with global-control FFs protected the FIT would be "
              << Table::num(result.fitGlobalProtected.total(), 3)
              << "\n";
    return 0;
}
