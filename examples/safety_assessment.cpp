/**
 * @file
 * Automotive safety assessment (the paper's Key result 1 scenario).
 *
 * An object-detection network (Yolo-style) runs on the accelerator of
 * a self-driving platform.  ISO 26262 ASIL-D allows < 10 FIT for the
 * whole chipset; the accelerator's flip-flops get ~2% of the area, so
 * their budget is < 0.2 FIT.  This example computes the unprotected
 * FIT rate, checks the budget, and sweeps the estimated inputs (raw
 * rate, FF census, protection choices) the way an architect would.
 */

#include <iostream>

#include "core/campaign.hh"
#include "sim/table.hh"
#include "workloads/metrics.hh"
#include "workloads/models.hh"

using namespace fidelity;

namespace
{

constexpr double asilBudget = 0.2;

const char *
verdict(double fit)
{
    return fit <= asilBudget ? "PASS" : "FAIL";
}

} // namespace

int
main()
{
    Network net = buildYolo(2020);
    Tensor input = defaultInputFor("yolo", 2021);
    net.setPrecision(Precision::FP16);

    CampaignConfig cfg;
    cfg.samplesPerCategory = 100;
    cfg.seed = 3;
    CampaignResult res =
        runCampaign(net, input, detectionMetric(0.10), cfg);

    printHeading(std::cout,
                 "ASIL-D assessment: Yolo-style detector, FP16, 10% "
                 "precision band");
    std::cout << "FF budget: < " << asilBudget
              << " FIT (2% of a 10-FIT chipset)\n\n";

    Table t({"Configuration", "FIT", "verdict"});
    t.addRow({"unprotected", Table::num(res.fit.total(), 3),
              verdict(res.fit.total())});
    t.addRow({"global control protected",
              Table::num(res.fitGlobalProtected.total(), 3),
              verdict(res.fitGlobalProtected.total())});
    t.print(std::cout);

    // Sensitivity to the estimated raw rate and census: Eq. 2 is
    // linear in FIT_raw * N_ff, so the campaign's masking numbers can
    // be reused directly.
    printHeading(std::cout,
                 "Sensitivity analysis over estimated inputs");
    Table s({"raw FIT/MB", "N_ff", "FIT", "verdict"});
    for (double raw : {200.0, 600.0, 1200.0}) {
        for (double nff : {0.6e6, 1.2e6, 2.4e6}) {
            FitParams params;
            params.rawFitPerMb = raw;
            params.nff = nff;
            FitBreakdown fit = acceleratorFit(params, res.layerInputs);
            s.addRow({Table::num(raw, 0), Table::num(nff, 0),
                      Table::num(fit.total(), 3),
                      verdict(fit.total())});
        }
    }
    s.print(std::cout);

    // What selective protection must achieve: find the masking level
    // of datapath categories needed to pass once global is protected.
    printHeading(std::cout,
                 "Required additional protection (global already "
                 "protected)");
    double unprot = res.fitGlobalProtected.total();
    if (unprot > asilBudget) {
        double needed = 1.0 - asilBudget / unprot;
        std::cout << "datapath+local FIT is "
                  << Table::num(unprot, 3)
                  << "; selective hardening must absorb at least "
                  << Table::pct(needed, 1)
                  << " of those failures (e.g. parity on the "
                     "highest-contributing categories).\n";
    } else {
        std::cout << "protecting global control already meets the "
                     "budget.\n";
    }
    return 0;
}
