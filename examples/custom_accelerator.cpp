/**
 * @file
 * Applying FIdelity to a new accelerator design, before any RTL
 * exists.
 *
 * The scenario: an architect sketches a systolic design ("8x8 array,
 * weights march across columns, inputs reused over 4 output channels")
 * and wants software fault models for it.  Everything below is driven
 * by block-diagram-level facts — the inputs Algorithm 1 needs — plus a
 * hardware configuration for the RF-16-style patterns.
 */

#include <iostream>

#include "accel/eyeriss.hh"
#include "core/fault_models.hh"
#include "core/ff_descriptors.hh"
#include "core/reuse_factor.hh"
#include "nn/conv.hh"
#include "nn/init.hh"
#include "sim/table.hh"
#include "workloads/data.hh"

using namespace fidelity;

int
main()
{
    // --- The design sketch -------------------------------------------
    const int k = 8; // 8x8 systolic array
    const int t = 4; // each MAC reuses an input over 4 channels

    printHeading(std::cout,
                 "Reuse Factor Analysis for a sketched 8x8 systolic "
                 "design");

    // Weight FFs: the value is passed to the neighbouring column each
    // cycle, so k columns (k consecutive output rows) consume it.
    FFDescriptor weight_ff = eyerissTargetB1(k);
    RFResult weight_rf = analyzeReuseFactor(weight_ff);

    // Input FFs: diagonal reuse across columns plus t channels per MAC.
    FFDescriptor input_ff = eyerissTargetB2(k, t);
    RFResult input_rf = analyzeReuseFactor(input_ff);

    // Bias FFs feed a single BiasAdd once.
    RFResult bias_rf = analyzeReuseFactor(eyerissTargetB3());

    Table t1({"FF", "RF", "Faulty-neuron layout"});
    t1.addRow({"weight (marching)", std::to_string(weight_rf.rf),
               "k consecutive rows of one column"});
    t1.addRow({"input (diagonal + channel reuse)",
               std::to_string(input_rf.rf),
               "k rows x t channels"});
    t1.addRow({"bias", std::to_string(bias_rf.rf), "one neuron"});
    t1.print(std::cout);

    // A valid bit gating a whole column's outputs: RF sums over the
    // gated FFs (Sec. III-B3).
    std::vector<FFDescriptor> gated(4, eyerissTargetB3());
    for (int i = 0; i < 4; ++i)
        for (auto &m : gated[i].loops[0])
            for (auto &cyc : m.neurons)
                for (auto &n : cyc)
                    n.h += i;
    FFDescriptor column_valid = composeLocalControl(gated);
    std::cout << "\ncolumn-valid local control gating 4 outputs: RF = "
              << analyzeReuseFactor(column_valid).rf << "\n";

    // --- Concrete faulty-neuron sets on a real layer -----------------
    printHeading(std::cout,
                 "Absolute faulty-neuron sets on a 16x16x32 output");
    EyerissModel model({k, t}, 16, 16, 32);
    auto weight_neurons = model.weightFaultNeurons(5, 9, 3);
    std::cout << "weight fault arriving at row 5, column 9, channel 3 "
                 "corrupts "
              << weight_neurons.size() << " neurons:";
    for (const NeuronIndex &n : weight_neurons)
        std::cout << " " << n.str();
    std::cout << "\n";

    // --- Sensitivity: how the sketch's parameters move the RF --------
    printHeading(std::cout, "Sensitivity of RF to the design sketch");
    Table t2({"k", "t", "weight RF", "input RF"});
    for (int kk : {4, 8, 16}) {
        for (int tt : {2, 4, 8}) {
            t2.addRow({std::to_string(kk), std::to_string(tt),
                       std::to_string(
                           analyzeReuseFactor(eyerissTargetB1(kk)).rf),
                       std::to_string(analyzeReuseFactor(
                                          eyerissTargetB2(kk, tt))
                                          .rf)});
        }
    }
    t2.print(std::cout);

    std::cout << "\nNo RTL was needed: the descriptors encode only the "
                 "block-diagram facts, and the resulting models plug "
                 "straight into the injection flow.\n";
    return 0;
}
