file(REMOVE_RECURSE
  "CMakeFiles/test_injector.dir/test_injector.cc.o"
  "CMakeFiles/test_injector.dir/test_injector.cc.o.d"
  "test_injector"
  "test_injector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_injector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
