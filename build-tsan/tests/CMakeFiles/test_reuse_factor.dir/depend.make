# Empty dependencies file for test_reuse_factor.
# This may be replaced when dependencies are built.
