file(REMOVE_RECURSE
  "CMakeFiles/test_reuse_factor.dir/test_reuse_factor.cc.o"
  "CMakeFiles/test_reuse_factor.dir/test_reuse_factor.cc.o.d"
  "test_reuse_factor"
  "test_reuse_factor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_reuse_factor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
