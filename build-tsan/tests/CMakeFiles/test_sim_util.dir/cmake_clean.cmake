file(REMOVE_RECURSE
  "CMakeFiles/test_sim_util.dir/test_sim_util.cc.o"
  "CMakeFiles/test_sim_util.dir/test_sim_util.cc.o.d"
  "test_sim_util"
  "test_sim_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
