# Empty dependencies file for test_sim_util.
# This may be replaced when dependencies are built.
