file(REMOVE_RECURSE
  "CMakeFiles/test_float16.dir/test_float16.cc.o"
  "CMakeFiles/test_float16.dir/test_float16.cc.o.d"
  "test_float16"
  "test_float16.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_float16.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
