# Empty dependencies file for test_fc_matmul.
# This may be replaced when dependencies are built.
