file(REMOVE_RECURSE
  "CMakeFiles/test_fc_matmul.dir/test_fc_matmul.cc.o"
  "CMakeFiles/test_fc_matmul.dir/test_fc_matmul.cc.o.d"
  "test_fc_matmul"
  "test_fc_matmul.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fc_matmul.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
