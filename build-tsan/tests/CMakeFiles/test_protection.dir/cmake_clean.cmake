file(REMOVE_RECURSE
  "CMakeFiles/test_protection.dir/test_protection.cc.o"
  "CMakeFiles/test_protection.dir/test_protection.cc.o.d"
  "test_protection"
  "test_protection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_protection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
