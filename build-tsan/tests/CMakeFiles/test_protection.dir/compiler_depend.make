# Empty compiler generated dependencies file for test_protection.
# This may be replaced when dependencies are built.
