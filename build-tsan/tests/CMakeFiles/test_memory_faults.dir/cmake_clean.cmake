file(REMOVE_RECURSE
  "CMakeFiles/test_memory_faults.dir/test_memory_faults.cc.o"
  "CMakeFiles/test_memory_faults.dir/test_memory_faults.cc.o.d"
  "test_memory_faults"
  "test_memory_faults.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_memory_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
