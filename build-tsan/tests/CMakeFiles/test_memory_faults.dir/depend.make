# Empty dependencies file for test_memory_faults.
# This may be replaced when dependencies are built.
