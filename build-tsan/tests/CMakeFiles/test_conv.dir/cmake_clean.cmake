file(REMOVE_RECURSE
  "CMakeFiles/test_conv.dir/test_conv.cc.o"
  "CMakeFiles/test_conv.dir/test_conv.cc.o.d"
  "test_conv"
  "test_conv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_conv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
