# Empty dependencies file for test_fault_models.
# This may be replaced when dependencies are built.
