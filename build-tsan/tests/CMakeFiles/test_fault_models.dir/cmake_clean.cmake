file(REMOVE_RECURSE
  "CMakeFiles/test_fault_models.dir/test_fault_models.cc.o"
  "CMakeFiles/test_fault_models.dir/test_fault_models.cc.o.d"
  "test_fault_models"
  "test_fault_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fault_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
