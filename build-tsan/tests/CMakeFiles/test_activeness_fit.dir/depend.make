# Empty dependencies file for test_activeness_fit.
# This may be replaced when dependencies are built.
