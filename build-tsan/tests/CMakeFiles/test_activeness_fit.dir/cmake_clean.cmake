file(REMOVE_RECURSE
  "CMakeFiles/test_activeness_fit.dir/test_activeness_fit.cc.o"
  "CMakeFiles/test_activeness_fit.dir/test_activeness_fit.cc.o.d"
  "test_activeness_fit"
  "test_activeness_fit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_activeness_fit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
