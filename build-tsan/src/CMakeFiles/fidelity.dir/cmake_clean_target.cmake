file(REMOVE_RECURSE
  "libfidelity.a"
)
