
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/accel/eyeriss.cc" "src/CMakeFiles/fidelity.dir/accel/eyeriss.cc.o" "gcc" "src/CMakeFiles/fidelity.dir/accel/eyeriss.cc.o.d"
  "/root/repo/src/accel/ff.cc" "src/CMakeFiles/fidelity.dir/accel/ff.cc.o" "gcc" "src/CMakeFiles/fidelity.dir/accel/ff.cc.o.d"
  "/root/repo/src/accel/nvdla_config.cc" "src/CMakeFiles/fidelity.dir/accel/nvdla_config.cc.o" "gcc" "src/CMakeFiles/fidelity.dir/accel/nvdla_config.cc.o.d"
  "/root/repo/src/accel/nvdla_core.cc" "src/CMakeFiles/fidelity.dir/accel/nvdla_core.cc.o" "gcc" "src/CMakeFiles/fidelity.dir/accel/nvdla_core.cc.o.d"
  "/root/repo/src/accel/nvdla_fi.cc" "src/CMakeFiles/fidelity.dir/accel/nvdla_fi.cc.o" "gcc" "src/CMakeFiles/fidelity.dir/accel/nvdla_fi.cc.o.d"
  "/root/repo/src/accel/perf_model.cc" "src/CMakeFiles/fidelity.dir/accel/perf_model.cc.o" "gcc" "src/CMakeFiles/fidelity.dir/accel/perf_model.cc.o.d"
  "/root/repo/src/core/activeness.cc" "src/CMakeFiles/fidelity.dir/core/activeness.cc.o" "gcc" "src/CMakeFiles/fidelity.dir/core/activeness.cc.o.d"
  "/root/repo/src/core/campaign.cc" "src/CMakeFiles/fidelity.dir/core/campaign.cc.o" "gcc" "src/CMakeFiles/fidelity.dir/core/campaign.cc.o.d"
  "/root/repo/src/core/fault_models.cc" "src/CMakeFiles/fidelity.dir/core/fault_models.cc.o" "gcc" "src/CMakeFiles/fidelity.dir/core/fault_models.cc.o.d"
  "/root/repo/src/core/ff_descriptors.cc" "src/CMakeFiles/fidelity.dir/core/ff_descriptors.cc.o" "gcc" "src/CMakeFiles/fidelity.dir/core/ff_descriptors.cc.o.d"
  "/root/repo/src/core/fit.cc" "src/CMakeFiles/fidelity.dir/core/fit.cc.o" "gcc" "src/CMakeFiles/fidelity.dir/core/fit.cc.o.d"
  "/root/repo/src/core/injector.cc" "src/CMakeFiles/fidelity.dir/core/injector.cc.o" "gcc" "src/CMakeFiles/fidelity.dir/core/injector.cc.o.d"
  "/root/repo/src/core/memory_faults.cc" "src/CMakeFiles/fidelity.dir/core/memory_faults.cc.o" "gcc" "src/CMakeFiles/fidelity.dir/core/memory_faults.cc.o.d"
  "/root/repo/src/core/naive.cc" "src/CMakeFiles/fidelity.dir/core/naive.cc.o" "gcc" "src/CMakeFiles/fidelity.dir/core/naive.cc.o.d"
  "/root/repo/src/core/protection.cc" "src/CMakeFiles/fidelity.dir/core/protection.cc.o" "gcc" "src/CMakeFiles/fidelity.dir/core/protection.cc.o.d"
  "/root/repo/src/core/reuse_factor.cc" "src/CMakeFiles/fidelity.dir/core/reuse_factor.cc.o" "gcc" "src/CMakeFiles/fidelity.dir/core/reuse_factor.cc.o.d"
  "/root/repo/src/core/validation.cc" "src/CMakeFiles/fidelity.dir/core/validation.cc.o" "gcc" "src/CMakeFiles/fidelity.dir/core/validation.cc.o.d"
  "/root/repo/src/nn/activation.cc" "src/CMakeFiles/fidelity.dir/nn/activation.cc.o" "gcc" "src/CMakeFiles/fidelity.dir/nn/activation.cc.o.d"
  "/root/repo/src/nn/attention.cc" "src/CMakeFiles/fidelity.dir/nn/attention.cc.o" "gcc" "src/CMakeFiles/fidelity.dir/nn/attention.cc.o.d"
  "/root/repo/src/nn/conv.cc" "src/CMakeFiles/fidelity.dir/nn/conv.cc.o" "gcc" "src/CMakeFiles/fidelity.dir/nn/conv.cc.o.d"
  "/root/repo/src/nn/elementwise.cc" "src/CMakeFiles/fidelity.dir/nn/elementwise.cc.o" "gcc" "src/CMakeFiles/fidelity.dir/nn/elementwise.cc.o.d"
  "/root/repo/src/nn/fc.cc" "src/CMakeFiles/fidelity.dir/nn/fc.cc.o" "gcc" "src/CMakeFiles/fidelity.dir/nn/fc.cc.o.d"
  "/root/repo/src/nn/init.cc" "src/CMakeFiles/fidelity.dir/nn/init.cc.o" "gcc" "src/CMakeFiles/fidelity.dir/nn/init.cc.o.d"
  "/root/repo/src/nn/layer.cc" "src/CMakeFiles/fidelity.dir/nn/layer.cc.o" "gcc" "src/CMakeFiles/fidelity.dir/nn/layer.cc.o.d"
  "/root/repo/src/nn/lstm.cc" "src/CMakeFiles/fidelity.dir/nn/lstm.cc.o" "gcc" "src/CMakeFiles/fidelity.dir/nn/lstm.cc.o.d"
  "/root/repo/src/nn/matmul.cc" "src/CMakeFiles/fidelity.dir/nn/matmul.cc.o" "gcc" "src/CMakeFiles/fidelity.dir/nn/matmul.cc.o.d"
  "/root/repo/src/nn/network.cc" "src/CMakeFiles/fidelity.dir/nn/network.cc.o" "gcc" "src/CMakeFiles/fidelity.dir/nn/network.cc.o.d"
  "/root/repo/src/nn/pool.cc" "src/CMakeFiles/fidelity.dir/nn/pool.cc.o" "gcc" "src/CMakeFiles/fidelity.dir/nn/pool.cc.o.d"
  "/root/repo/src/nn/softmax.cc" "src/CMakeFiles/fidelity.dir/nn/softmax.cc.o" "gcc" "src/CMakeFiles/fidelity.dir/nn/softmax.cc.o.d"
  "/root/repo/src/sim/logging.cc" "src/CMakeFiles/fidelity.dir/sim/logging.cc.o" "gcc" "src/CMakeFiles/fidelity.dir/sim/logging.cc.o.d"
  "/root/repo/src/sim/rng.cc" "src/CMakeFiles/fidelity.dir/sim/rng.cc.o" "gcc" "src/CMakeFiles/fidelity.dir/sim/rng.cc.o.d"
  "/root/repo/src/sim/stats.cc" "src/CMakeFiles/fidelity.dir/sim/stats.cc.o" "gcc" "src/CMakeFiles/fidelity.dir/sim/stats.cc.o.d"
  "/root/repo/src/sim/table.cc" "src/CMakeFiles/fidelity.dir/sim/table.cc.o" "gcc" "src/CMakeFiles/fidelity.dir/sim/table.cc.o.d"
  "/root/repo/src/sim/thread_pool.cc" "src/CMakeFiles/fidelity.dir/sim/thread_pool.cc.o" "gcc" "src/CMakeFiles/fidelity.dir/sim/thread_pool.cc.o.d"
  "/root/repo/src/tensor/bitops.cc" "src/CMakeFiles/fidelity.dir/tensor/bitops.cc.o" "gcc" "src/CMakeFiles/fidelity.dir/tensor/bitops.cc.o.d"
  "/root/repo/src/tensor/float16.cc" "src/CMakeFiles/fidelity.dir/tensor/float16.cc.o" "gcc" "src/CMakeFiles/fidelity.dir/tensor/float16.cc.o.d"
  "/root/repo/src/tensor/quant.cc" "src/CMakeFiles/fidelity.dir/tensor/quant.cc.o" "gcc" "src/CMakeFiles/fidelity.dir/tensor/quant.cc.o.d"
  "/root/repo/src/tensor/tensor.cc" "src/CMakeFiles/fidelity.dir/tensor/tensor.cc.o" "gcc" "src/CMakeFiles/fidelity.dir/tensor/tensor.cc.o.d"
  "/root/repo/src/workloads/data.cc" "src/CMakeFiles/fidelity.dir/workloads/data.cc.o" "gcc" "src/CMakeFiles/fidelity.dir/workloads/data.cc.o.d"
  "/root/repo/src/workloads/metrics.cc" "src/CMakeFiles/fidelity.dir/workloads/metrics.cc.o" "gcc" "src/CMakeFiles/fidelity.dir/workloads/metrics.cc.o.d"
  "/root/repo/src/workloads/models.cc" "src/CMakeFiles/fidelity.dir/workloads/models.cc.o" "gcc" "src/CMakeFiles/fidelity.dir/workloads/models.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
