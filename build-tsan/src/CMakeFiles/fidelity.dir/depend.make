# Empty dependencies file for fidelity.
# This may be replaced when dependencies are built.
