file(REMOVE_RECURSE
  "CMakeFiles/safety_assessment.dir/safety_assessment.cpp.o"
  "CMakeFiles/safety_assessment.dir/safety_assessment.cpp.o.d"
  "safety_assessment"
  "safety_assessment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/safety_assessment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
