# Empty compiler generated dependencies file for safety_assessment.
# This may be replaced when dependencies are built.
