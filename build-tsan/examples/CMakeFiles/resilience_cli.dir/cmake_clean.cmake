file(REMOVE_RECURSE
  "CMakeFiles/resilience_cli.dir/resilience_cli.cpp.o"
  "CMakeFiles/resilience_cli.dir/resilience_cli.cpp.o.d"
  "resilience_cli"
  "resilience_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resilience_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
