# Empty dependencies file for resilience_cli.
# This may be replaced when dependencies are built.
