file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_cnn_fit.dir/bench_fig4_cnn_fit.cc.o"
  "CMakeFiles/bench_fig4_cnn_fit.dir/bench_fig4_cnn_fit.cc.o.d"
  "bench_fig4_cnn_fit"
  "bench_fig4_cnn_fit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_cnn_fit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
