# Empty compiler generated dependencies file for bench_fig4_cnn_fit.
# This may be replaced when dependencies are built.
