# Empty compiler generated dependencies file for bench_ablation_activeness.
# This may be replaced when dependencies are built.
