file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_activeness.dir/bench_ablation_activeness.cc.o"
  "CMakeFiles/bench_ablation_activeness.dir/bench_ablation_activeness.cc.o.d"
  "bench_ablation_activeness"
  "bench_ablation_activeness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_activeness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
