file(REMOVE_RECURSE
  "CMakeFiles/bench_keyresult5_perturbation.dir/bench_keyresult5_perturbation.cc.o"
  "CMakeFiles/bench_keyresult5_perturbation.dir/bench_keyresult5_perturbation.cc.o.d"
  "bench_keyresult5_perturbation"
  "bench_keyresult5_perturbation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_keyresult5_perturbation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
