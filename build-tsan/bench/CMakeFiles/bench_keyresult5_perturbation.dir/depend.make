# Empty dependencies file for bench_keyresult5_perturbation.
# This may be replaced when dependencies are built.
