# Empty compiler generated dependencies file for bench_fig2_rf_examples.
# This may be replaced when dependencies are built.
