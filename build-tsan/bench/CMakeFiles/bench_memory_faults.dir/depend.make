# Empty dependencies file for bench_memory_faults.
# This may be replaced when dependencies are built.
