file(REMOVE_RECURSE
  "CMakeFiles/bench_memory_faults.dir/bench_memory_faults.cc.o"
  "CMakeFiles/bench_memory_faults.dir/bench_memory_faults.cc.o.d"
  "bench_memory_faults"
  "bench_memory_faults.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_memory_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
