file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_rf_summary.dir/bench_table1_rf_summary.cc.o"
  "CMakeFiles/bench_table1_rf_summary.dir/bench_table1_rf_summary.cc.o.d"
  "bench_table1_rf_summary"
  "bench_table1_rf_summary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_rf_summary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
