file(REMOVE_RECURSE
  "CMakeFiles/bench_codesign.dir/bench_codesign.cc.o"
  "CMakeFiles/bench_codesign.dir/bench_codesign.cc.o.d"
  "bench_codesign"
  "bench_codesign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_codesign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
