# Empty compiler generated dependencies file for bench_codesign.
# This may be replaced when dependencies are built.
