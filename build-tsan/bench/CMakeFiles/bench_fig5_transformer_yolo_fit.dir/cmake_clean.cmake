file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_transformer_yolo_fit.dir/bench_fig5_transformer_yolo_fit.cc.o"
  "CMakeFiles/bench_fig5_transformer_yolo_fit.dir/bench_fig5_transformer_yolo_fit.cc.o.d"
  "bench_fig5_transformer_yolo_fit"
  "bench_fig5_transformer_yolo_fit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_transformer_yolo_fit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
