# Empty dependencies file for bench_fig5_transformer_yolo_fit.
# This may be replaced when dependencies are built.
