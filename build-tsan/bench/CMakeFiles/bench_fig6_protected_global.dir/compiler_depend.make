# Empty compiler generated dependencies file for bench_fig6_protected_global.
# This may be replaced when dependencies are built.
