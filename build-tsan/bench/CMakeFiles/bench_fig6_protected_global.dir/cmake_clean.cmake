file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_protected_global.dir/bench_fig6_protected_global.cc.o"
  "CMakeFiles/bench_fig6_protected_global.dir/bench_fig6_protected_global.cc.o.d"
  "bench_fig6_protected_global"
  "bench_fig6_protected_global.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_protected_global.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
