file(REMOVE_RECURSE
  "CMakeFiles/bench_naive_comparison.dir/bench_naive_comparison.cc.o"
  "CMakeFiles/bench_naive_comparison.dir/bench_naive_comparison.cc.o.d"
  "bench_naive_comparison"
  "bench_naive_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_naive_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
