# Empty compiler generated dependencies file for bench_naive_comparison.
# This may be replaced when dependencies are built.
