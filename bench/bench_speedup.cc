/**
 * @file
 * Regenerates the Sec. VI speed comparison: per-experiment cost of
 * RTL-style cycle simulation, mixed-mode simulation (cycle-simulate
 * the injected layer, software for the rest), and FIdelity's software
 * fault injection, for the Table III workloads.
 */

#include <iostream>

#include "bench/common.hh"
#include "core/campaign.hh"
#include "core/fault_models.hh"
#include "core/validation.hh"
#include "sim/table.hh"

using namespace fidelity;
using namespace fidelity::bench;

int
main()
{
    int rtl_runs = scaledSamples(12);
    int sw_runs = scaledSamples(400);

    auto workloads = buildValidationWorkloads(2020);
    NvdlaConfig cfg;
    FaultModels models(cfg);

    printHeading(std::cout,
                 "Sec. VI: per-experiment cost, RTL-style vs "
                 "mixed-mode vs FIdelity");
    // Whole-network extrapolation factor: a full RTL run simulates
    // every layer, so the per-layer RTL cost scales by the ratio of
    // the network's total cycles to the injected layer's cycles.  Use
    // the resnet study network as the reference inference.
    double net_layer_ratio;
    {
        Network net = buildResNet(2020);
        Tensor input = defaultInputFor("resnet", 2021);
        net.setPrecision(Precision::FP16);
        auto acts = net.forwardAll(input);
        std::uint64_t total = 0, biggest = 0;
        for (NodeId node : net.macNodes()) {
            LayerTiming lt = estimateTiming(
                cfg, timingLayer(net, node, acts));
            total += lt.totalCycles;
            biggest = std::max(biggest, lt.totalCycles);
        }
        net_layer_ratio =
            static_cast<double>(total) / static_cast<double>(biggest);
    }

    Table t({"Workload", "RTL-net us/exp", "mixed us/exp",
             "FIdelity us/exp", "RTL-net/FIdelity",
             "mixed/FIdelity"});

    double worst_rtl = 0.0, best_rtl = 1e30;
    for (auto &w : workloads) {
        Validator val(cfg, *w.layer, w.ins());
        Rng rng(5);

        // RTL-style: full cycle-level simulation per injection.
        std::vector<FaultSite> sites;
        for (int i = 0; i < rtl_runs; ++i)
            sites.push_back(val.fi().sampleSite(rng));
        double rtl_s = timeSeconds([&] {
            for (const FaultSite &s : sites)
                (void)const_cast<NvdlaFi &>(val.fi()).inject(s);
        });
        double rtl_us = 1e6 * rtl_s / rtl_runs;

        // FIdelity: software fault-model application + neuron
        // recomputation + outcome bookkeeping.
        auto ins = w.ins();
        Tensor golden = w.layer->forward(ins);
        Rng srng(7);
        double sw_s = timeSeconds([&] {
            for (int i = 0; i < sw_runs; ++i) {
                FFCategory cat = allFFCategories()[srng.below(6)];
                (void)models.apply(cat, *w.layer, ins, golden, srng);
            }
        });
        double sw_us = 1e6 * sw_s / sw_runs;

        // Mixed-mode: RTL for the injected layer plus software for the
        // rest of the network; whole-network RTL scales the layer cost
        // by the network/layer cycle ratio.
        double mixed_us = rtl_us + sw_us;
        double rtl_net_us = rtl_us * net_layer_ratio;

        double r1 = rtl_net_us / sw_us;
        double r2 = mixed_us / sw_us;
        worst_rtl = std::max(worst_rtl, r1);
        best_rtl = std::min(best_rtl, r1);
        t.addRow({w.name, Table::num(rtl_net_us, 1),
                  Table::num(mixed_us, 1), Table::num(sw_us, 1),
                  Table::num(r1, 1) + "x", Table::num(r2, 1) + "x"});
    }
    t.print(std::cout);

    std::cout << "\nwhole-network RTL vs FIdelity speedup range: "
              << Table::num(best_rtl, 1) << "x - "
              << Table::num(worst_rtl, 1)
              << "x (network/layer cycle ratio "
              << Table::num(net_layer_ratio, 1) << "x from the study "
              << "CNN; real inferences have hundreds of layers and "
                 "far larger tensors, giving the paper's >10000x).\n"
              << "(Paper: >10000x vs RTL, 40x-2200x vs mixed-mode.)\n";
    return 0;
}
