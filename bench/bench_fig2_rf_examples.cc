/**
 * @file
 * Regenerates Fig. 2: Reuse Factor Analysis of the example targets on
 * the NVDLA-like accelerator (a1-a4) and the Eyeriss-like accelerator
 * (b1-b3), including the faulty-neuron layouts the paper describes and
 * the random-injection-cycle subset behaviour of held values.
 */

#include <iostream>
#include <sstream>

#include "accel/eyeriss.hh"
#include "core/ff_descriptors.hh"
#include "sim/rng.hh"
#include "sim/table.hh"

using namespace fidelity;

namespace
{

std::string
layoutOf(const RFResult &r, std::size_t max_items = 6)
{
    std::ostringstream os;
    for (std::size_t i = 0; i < r.faultyNeurons.size(); ++i) {
        if (i == max_items) {
            os << " ...";
            break;
        }
        if (i)
            os << " ";
        os << r.faultyNeurons[i].neuron.str();
    }
    return os.str();
}

} // namespace

int
main()
{
    const int k = 4;
    const int t = 16;

    printHeading(std::cout,
                 "Fig. 2(a): NVDLA-like accelerator (k = 4, t = 16)");
    Table a({"Target", "FF", "FF_value_cycles", "RF",
             "Faulty neurons (relative n,h,w,c)"});
    struct Example
    {
        const char *name;
        const char *desc;
        FFDescriptor ff;
    };
    Example nvdla[] = {
        {"a1", "weight FF before hold register", nvdlaTargetA1(t)},
        {"a2", "weight hold FF (t cycles)", nvdlaTargetA2(t)},
        {"a3", "weight FF at multiplier", nvdlaTargetA3()},
        {"a4", "broadcast input FF", nvdlaTargetA4(k)},
    };
    for (const Example &e : nvdla) {
        RFResult r = analyzeReuseFactor(e.ff);
        a.addRow({e.name, e.desc, std::to_string(e.ff.ffValueCycles),
                  std::to_string(r.rf), layoutOf(r)});
    }
    a.print(std::cout);

    // Random injection cycles into a2 hit a suffix of the hold window.
    printHeading(std::cout,
                 "a2 under random injection cycles (1..t faulty "
                 "neurons)");
    {
        FFDescriptor a2 = nvdlaTargetA2(t);
        RFResult r = analyzeReuseFactor(a2);
        Rng rng(4);
        Table s({"Draw", "Faulty neurons"});
        for (int i = 0; i < 5; ++i) {
            auto subset = sampleFaultyNeurons(a2, r, rng);
            s.addRow({std::to_string(i),
                      std::to_string(subset.size())});
        }
        s.print(std::cout);
    }

    printHeading(std::cout,
                 "Fig. 2(b): Eyeriss-like accelerator (k = 4, t = 16)");
    Example eyeriss[] = {
        {"b1", "weight FF marching across columns", eyerissTargetB1(k)},
        {"b2", "input FF, diagonal + channel reuse",
         eyerissTargetB2(k, t)},
        {"b3", "bias FF at BiasAdd", eyerissTargetB3()},
    };
    Table b({"Target", "FF", "RF", "Faulty neurons (relative)"});
    for (const Example &e : eyeriss) {
        RFResult r = analyzeReuseFactor(e.ff);
        b.addRow({e.name, e.desc, std::to_string(r.rf), layoutOf(r)});
    }
    b.print(std::cout);

    // Cross-check against the Eyeriss dataflow model.
    printHeading(std::cout, "Cross-check vs the Eyeriss dataflow model");
    EyerissModel model({k, t}, 32, 32, 32);
    Table x({"Target", "Algorithm-1 RF", "Dataflow-model RF"});
    x.addRow({"b1",
              std::to_string(analyzeReuseFactor(eyerissTargetB1(k)).rf),
              std::to_string(model.weightRf())});
    x.addRow({"b2",
              std::to_string(
                  analyzeReuseFactor(eyerissTargetB2(k, t)).rf),
              std::to_string(model.inputRf())});
    x.addRow({"b3",
              std::to_string(analyzeReuseFactor(eyerissTargetB3()).rf),
              std::to_string(model.biasRf())});
    x.print(std::cout);

    // Local-control composition rule (Sec. III-B3).
    printHeading(std::cout,
                 "Local control gating several datapath FFs (RF sums)");
    auto one = nvdlaTargetA4(2);
    auto shifted = one;
    for (auto &m : shifted.loops[0])
        for (auto &cyc : m.neurons)
            for (auto &n : cyc)
                n.c += 4;
    FFDescriptor ctrl = composeLocalControl({one, shifted});
    std::cout << "valid signal gating two 4-neuron groups -> RF = "
              << analyzeReuseFactor(ctrl).rf << "\n";
    return 0;
}
