/**
 * @file
 * Shared helpers for the benchmark harnesses.
 *
 * Every bench binary regenerates one of the paper's tables or figures.
 * Sample counts default to sizes that finish in seconds on one core and
 * scale with the FIDELITY_SAMPLES environment variable (a multiplier;
 * e.g. FIDELITY_SAMPLES=10 approaches paper-scale statistics).
 */

#ifndef FIDELITY_BENCH_COMMON_HH
#define FIDELITY_BENCH_COMMON_HH

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "core/campaign.hh"
#include "sim/json.hh"
#include "sim/table.hh"
#include "workloads/metrics.hh"
#include "workloads/models.hh"

namespace fidelity::bench
{

/** Scale a default sample count by $FIDELITY_SAMPLES (default 1.0). */
inline int
scaledSamples(int base)
{
    const char *env = std::getenv("FIDELITY_SAMPLES");
    if (!env)
        return base;
    double factor = std::atof(env);
    if (factor <= 0.0)
        return base;
    double scaled = base * factor;
    return scaled < 1.0 ? 1 : static_cast<int>(scaled);
}

/** Wall-clock seconds of a callable. */
template <typename Fn>
double
timeSeconds(Fn &&fn)
{
    auto start = std::chrono::steady_clock::now();
    fn();
    auto end = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(end - start).count();
}

/** Build, calibrate, and campaign one study network. */
inline CampaignResult
runStudyCampaign(const std::string &network, Precision precision,
                 const CorrectnessFn &metric, int samples,
                 std::uint64_t seed = 2020)
{
    Network net = buildNetwork(network, seed);
    Tensor input = defaultInputFor(network, seed + 1);
    net.setPrecision(precision);
    if (precision == Precision::INT16 || precision == Precision::INT8)
        net.calibrate(input);

    CampaignConfig cfg;
    cfg.samplesPerCategory = samples;
    cfg.seed = seed + 7;
    return runCampaign(net, input, metric, cfg);
}

// campaignChecksum() — the bit-identity digest the benches gate on —
// now lives in core/campaign.hh so the checkpoint/resume tests can
// assert the same digest the benches report.

/**
 * Build, calibrate, and campaign one study network with a caller-built
 * config (adaptive targets, checkpointing, ...).  The config's
 * samplesPerCategory/seed are used as given.
 */
inline CampaignResult
runStudyCampaignCfg(const std::string &network, Precision precision,
                    const CorrectnessFn &metric, CampaignConfig cfg,
                    std::uint64_t seed = 2020)
{
    Network net = buildNetwork(network, seed);
    Tensor input = defaultInputFor(network, seed + 1);
    net.setPrecision(precision);
    if (precision == Precision::INT16 || precision == Precision::INT8)
        net.calibrate(input);
    return runCampaign(net, input, metric, cfg);
}

/**
 * Largest Wilson half-width over the sampled (non-GlobalControl)
 * cells — the campaign's achieved per-cell confidence-interval width.
 */
inline double
maxCellHalfWidth(const CampaignResult &res, double z = 1.96)
{
    double worst = 0.0;
    for (const CellResult &cell : res.cells) {
        if (cell.category == FFCategory::GlobalControl ||
            cell.masked.trials() == 0)
            continue;
        worst = std::max(worst, cell.masked.halfWidth(z));
    }
    return worst;
}

/** One machine-readable throughput measurement. */
struct ThroughputRecord
{
    std::string bench;    //!< producing binary, e.g. "parallel_scaling"
    std::string network;
    std::string mode;     //!< e.g. "engine_dense", "engine_incremental"
    int threads = 1;
    int batchWidth = 1;   //!< fault-batch lane width (1 = unbatched)
    std::uint64_t injections = 0;
    double wallSeconds = 0.0;

    double
    injPerSec() const
    {
        return wallSeconds > 0.0
            ? static_cast<double>(injections) / wallSeconds
            : 0.0;
    }
};

// The merge-by-bench line writer the BENCH_*.json files share now
// lives in sim/json.hh (fidelity::mergeJsonLines): same line-oriented
// format, but the file is republished via temp-file + atomic rename,
// and rows are rendered through JsonLineBuilder so string fields are
// escaped instead of pasted.

/** Merge this bench's throughput records into the trajectory file. */
inline void
writeThroughputJson(const std::string &bench,
                    const std::vector<ThroughputRecord> &records,
                    const std::string &path =
                        "BENCH_injection_throughput.json")
{
    std::vector<std::string> rows;
    for (const ThroughputRecord &r : records)
        rows.push_back(JsonLineBuilder()
                           .field("bench", bench)
                           .field("network", r.network)
                           .field("mode", r.mode)
                           .field("threads", r.threads)
                           .field("batch_width", r.batchWidth)
                           .field("injections", r.injections)
                           .field("wall_s", r.wallSeconds)
                           .field("inj_per_s", r.injPerSec())
                           .str());
    mergeJsonLines(path, bench, rows);
}

/** One per-kernel throughput measurement (scalar vs SIMD). */
struct KernelThroughputRecord
{
    std::string bench;   //!< producing binary, e.g. "bench_kernels"
    std::string kernel;  //!< "conv3x3", "fc", "matmul", ...
    std::string dtype;   //!< "fp32", "fp16", "int8", "int16"
    std::string backend; //!< simd::backendName() or "scalar"
    double gflops = 0.0; //!< MAC throughput, 2*macs/seconds/1e9
    double wallSeconds = 0.0;
};

/** Merge per-kernel GFLOP/s records into the kernel trajectory file. */
inline void
writeKernelThroughputJson(const std::string &bench,
                          const std::vector<KernelThroughputRecord> &records,
                          const std::string &path =
                              "BENCH_kernel_throughput.json")
{
    std::vector<std::string> rows;
    for (const KernelThroughputRecord &r : records)
        rows.push_back(JsonLineBuilder()
                           .field("bench", bench)
                           .field("kernel", r.kernel)
                           .field("dtype", r.dtype)
                           .field("backend", r.backend)
                           .field("gflops", r.gflops)
                           .field("wall_s", r.wallSeconds)
                           .str());
    mergeJsonLines(path, bench, rows);
}

/** One adaptive-vs-fixed sampling measurement. */
struct AdaptiveRecord
{
    std::string bench;   //!< producing binary, e.g. "adaptive_sampling"
    std::string network;
    std::string mode;    //!< "fixed" or "adaptive"
    double targetHalfWidth = 0.0; //!< CI half-width both modes achieve
    double confidenceZ = 0.0;
    std::uint64_t injections = 0;
    double maxHalfWidth = 0.0;    //!< achieved worst-cell half-width
    double wallSeconds = 0.0;
};

/** Merge adaptive-sampling records into their trajectory file. */
inline void
writeAdaptiveJson(const std::string &bench,
                  const std::vector<AdaptiveRecord> &records,
                  const std::string &path =
                      "BENCH_adaptive_sampling.json")
{
    std::vector<std::string> rows;
    for (const AdaptiveRecord &r : records)
        rows.push_back(JsonLineBuilder()
                           .field("bench", bench)
                           .field("network", r.network)
                           .field("mode", r.mode)
                           .field("target_half_width", r.targetHalfWidth)
                           .field("z", r.confidenceZ)
                           .field("injections", r.injections)
                           .field("max_half_width", r.maxHalfWidth)
                           .field("wall_s", r.wallSeconds)
                           .str());
    mergeJsonLines(path, bench, rows);
}

/** Format a FIT breakdown row: datapath / local / global / total. */
inline std::vector<std::string>
fitCells(const FitBreakdown &fit)
{
    return {Table::num(fit.datapath, 3), Table::num(fit.local, 3),
            Table::num(fit.global, 3), Table::num(fit.total(), 3)};
}

} // namespace fidelity::bench

#endif // FIDELITY_BENCH_COMMON_HH
