/**
 * @file
 * Shared helpers for the benchmark harnesses.
 *
 * Every bench binary regenerates one of the paper's tables or figures.
 * Sample counts default to sizes that finish in seconds on one core and
 * scale with the FIDELITY_SAMPLES environment variable (a multiplier;
 * e.g. FIDELITY_SAMPLES=10 approaches paper-scale statistics).
 */

#ifndef FIDELITY_BENCH_COMMON_HH
#define FIDELITY_BENCH_COMMON_HH

#include <chrono>
#include <cstdlib>
#include <iostream>
#include <string>

#include "core/campaign.hh"
#include "sim/table.hh"
#include "workloads/metrics.hh"
#include "workloads/models.hh"

namespace fidelity::bench
{

/** Scale a default sample count by $FIDELITY_SAMPLES (default 1.0). */
inline int
scaledSamples(int base)
{
    const char *env = std::getenv("FIDELITY_SAMPLES");
    if (!env)
        return base;
    double factor = std::atof(env);
    if (factor <= 0.0)
        return base;
    double scaled = base * factor;
    return scaled < 1.0 ? 1 : static_cast<int>(scaled);
}

/** Wall-clock seconds of a callable. */
template <typename Fn>
double
timeSeconds(Fn &&fn)
{
    auto start = std::chrono::steady_clock::now();
    fn();
    auto end = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(end - start).count();
}

/** Build, calibrate, and campaign one study network. */
inline CampaignResult
runStudyCampaign(const std::string &network, Precision precision,
                 const CorrectnessFn &metric, int samples,
                 std::uint64_t seed = 2020)
{
    Network net = buildNetwork(network, seed);
    Tensor input = defaultInputFor(network, seed + 1);
    net.setPrecision(precision);
    if (precision == Precision::INT16 || precision == Precision::INT8)
        net.calibrate(input);

    CampaignConfig cfg;
    cfg.samplesPerCategory = samples;
    cfg.seed = seed + 7;
    return runCampaign(net, input, metric, cfg);
}

/** Format a FIT breakdown row: datapath / local / global / total. */
inline std::vector<std::string>
fitCells(const FitBreakdown &fit)
{
    return {Table::num(fit.datapath, 3), Table::num(fit.local, 3),
            Table::num(fit.global, 3), Table::num(fit.total(), 3)};
}

} // namespace fidelity::bench

#endif // FIDELITY_BENCH_COMMON_HH
