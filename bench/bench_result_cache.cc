/**
 * @file
 * Cross-campaign result-cache hit rate and throughput uplift.
 *
 * For each study CNN one adaptive campaign is run three ways: with the
 * cache disabled (the reference), against a fresh shared memo table
 * (cold), and a second time against the same table (warm).  The warm
 * run replays the same fault plan, so nearly every probe should hit
 * and the forward pass is skipped — that is the cross-campaign service
 * scenario the cache exists for.
 *
 * The bench fails (non-zero exit) if any of the three runs disagrees
 * on campaignChecksum — the cache must be a pure performance knob —
 * or if no network reaches a 30% warm hit rate with an injections/s
 * uplift over the cache-off reference.  Rows are merged into
 * BENCH_injection_throughput.json.
 */

#include <cstdint>
#include <iostream>
#include <memory>

#include "bench/common.hh"
#include "sim/result_cache.hh"

using namespace fidelity;
using namespace fidelity::bench;

namespace
{

double
hitRate(const ResultCacheStats &before, const ResultCacheStats &after)
{
    const std::uint64_t hits = after.hits - before.hits;
    const std::uint64_t misses = after.misses - before.misses;
    return hits + misses > 0
        ? static_cast<double>(hits) / static_cast<double>(hits + misses)
        : 0.0;
}

} // namespace

int
main()
{
    const int samples = scaledSamples(60);
    const int threads = 4;

    printHeading(std::cout,
                 "Result cache: adaptive campaign off/cold/warm (" +
                     std::to_string(samples) + " samples per cell cap base)");

    Table t({"Network", "mode", "injections", "hit rate", "wall s",
             "inj/s", "uplift"});
    std::vector<ThroughputRecord> records;
    bool checksum_ok = true;
    double best_hit_rate = 0.0;
    double best_uplift = 0.0;

    for (const char *name : {"resnet", "mobilenet"}) {
        CampaignConfig cfg;
        cfg.samplesPerCategory = samples;
        cfg.seed = 2033;
        cfg.targetHalfWidth = 0.10;
        cfg.confidenceZ = 1.96;
        cfg.minSamples = 16;
        cfg.maxSamplesPerCategory = samples * 8;
        cfg.numThreads = threads;
        // Unbatched: these rows are the fault-batched engine's
        // reference baseline (bench_batched_injection gates on the
        // cache_off inj/s), so they must keep measuring B = 1.
        cfg.batchWidth = 1;

        // Reference: cache disabled.
        cfg.resultCacheEnabled = false;
        CampaignResult off;
        const double off_secs = timeSeconds([&] {
            off = runStudyCampaignCfg(name, Precision::FP16,
                                      top1Metric(), cfg);
        });

        // Cold: fresh shared table, every fault site is a first visit.
        cfg.resultCacheEnabled = true;
        cfg.resultCache = std::make_shared<ResultCache>(64u << 20);
        const ResultCacheStats empty = cfg.resultCache->stats();
        CampaignResult cold;
        const double cold_secs = timeSeconds([&] {
            cold = runStudyCampaignCfg(name, Precision::FP16,
                                       top1Metric(), cfg);
        });
        const ResultCacheStats after_cold = cfg.resultCache->stats();

        // Warm: identical campaign against the now-populated table.
        CampaignResult warm;
        const double warm_secs = timeSeconds([&] {
            warm = runStudyCampaignCfg(name, Precision::FP16,
                                       top1Metric(), cfg);
        });
        const ResultCacheStats after_warm = cfg.resultCache->stats();

        const std::uint64_t want = campaignChecksum(off);
        if (campaignChecksum(cold) != want ||
            campaignChecksum(warm) != want) {
            std::cout << "ERROR: " << name
                      << ": cache-on checksum diverges from the "
                         "cache-off reference\n";
            checksum_ok = false;
        }

        const double cold_rate = hitRate(empty, after_cold);
        const double warm_rate = hitRate(after_cold, after_warm);
        best_hit_rate = std::max(best_hit_rate, warm_rate);

        struct Run
        {
            const char *mode;
            const CampaignResult *res;
            double secs;
            double rate;
        };
        const double off_ips =
            off_secs > 0.0
                ? static_cast<double>(off.totalInjections) / off_secs
                : 0.0;
        for (const Run &r :
             {Run{"cache_off", &off, off_secs, 0.0},
              Run{"cache_cold", &cold, cold_secs, cold_rate},
              Run{"cache_warm", &warm, warm_secs, warm_rate}}) {
            ThroughputRecord rec;
            rec.bench = "result_cache";
            rec.network = name;
            rec.mode = r.mode;
            rec.threads = threads;
            rec.batchWidth = cfg.batchWidth;
            rec.injections = r.res->totalInjections;
            rec.wallSeconds = r.secs;
            records.push_back(rec);

            const double uplift =
                off_ips > 0.0 ? rec.injPerSec() / off_ips : 0.0;
            if (r.res == &warm)
                best_uplift = std::max(best_uplift, uplift);
            t.addRow({name, r.mode,
                      std::to_string(rec.injections),
                      Table::num(r.rate, 3), Table::num(r.secs, 2),
                      Table::num(rec.injPerSec(), 0),
                      Table::num(uplift, 2)});
        }
    }

    t.print(std::cout);
    writeThroughputJson("result_cache", records);

    const bool rate_ok = best_hit_rate >= 0.30;
    const bool uplift_ok = best_uplift > 1.0;
    std::cout << "\nbest warm hit rate: " << Table::num(best_hit_rate, 3)
              << " (gate: >= 0.30), best warm inj/s uplift: "
              << Table::num(best_uplift, 2) << "x (gate: > 1.0x)\n"
              << (checksum_ok
                      ? ""
                      : "ERROR: the cache changed campaign results\n")
              << (rate_ok ? ""
                          : "ERROR: no network reached the 30% warm "
                            "hit rate\n")
              << (uplift_ok ? ""
                            : "ERROR: no warm run beat the cache-off "
                              "injection throughput\n")
              << std::flush;
    return checksum_ok && rate_ok && uplift_ok ? 0 : 1;
}
