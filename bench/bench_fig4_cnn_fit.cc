/**
 * @file
 * Regenerates Table IV (experiment setup) and Fig. 4: the
 * Accelerator_FIT_rate of the CNN workloads (Inception / ResNet /
 * MobileNet) under FP16 / INT16 / INT8, split into datapath, local
 * control, and global control contributions, using the Top-1 match
 * correctness metric and a 600 FIT/MB raw FF rate.
 */

#include <iostream>

#include "bench/common.hh"

using namespace fidelity;
using namespace fidelity::bench;

int
main()
{
    int samples = scaledSamples(150);

    // FIDELITY_TARGET_HW=<half-width> switches the campaigns to the
    // adaptive engine: instead of a fixed per-category budget, every
    // (layer, category) cell draws until its Wilson interval is at
    // least that tight (capped at 32x the fixed budget).
    double target_hw = 0.0;
    if (const char *env = std::getenv("FIDELITY_TARGET_HW"))
        target_hw = std::atof(env);

    printHeading(std::cout, "Table IV: experiment setup");
    Table setup({"Item", "Value"});
    setup.addRow({"Platform",
                  "fidelity nn engine (fault-model hooks)"});
    setup.addRow({"CNN workloads", "inception, resnet, mobilenet"});
    setup.addRow({"Correctness metric", "Top-1 label match"});
    setup.addRow({"Data precision", "FP16, INT16, INT8"});
    setup.addRow({"Raw FF FIT rate", "600 / MB"});
    setup.addRow({"FF census N_ff", "1.2e6 (estimated, adjustable)"});
    setup.addRow({"Samples per (layer, category)",
                  target_hw > 0.0
                      ? "adaptive (CI half-width <= " +
                            std::to_string(target_hw) + ")"
                      : std::to_string(samples)});
    setup.print(std::cout);

    printHeading(std::cout,
                 "Fig. 4: Accelerator FIT rates for the CNNs");
    Table t({"Network", "Precision", "datapath", "local", "global",
             "total"});

    std::uint64_t injections = 0;
    for (const char *name : {"inception", "resnet", "mobilenet"}) {
        for (Precision p : {Precision::FP16, Precision::INT16,
                            Precision::INT8}) {
            CampaignConfig cfg;
            cfg.samplesPerCategory = samples;
            cfg.seed = 2027;
            if (target_hw > 0.0) {
                cfg.targetHalfWidth = target_hw;
                cfg.maxSamplesPerCategory = samples * 32;
            }
            CampaignResult res =
                runStudyCampaignCfg(name, p, top1Metric(), cfg);
            injections += res.totalInjections;
            auto cells = fitCells(res.fit);
            t.addRow({name, precisionName(p), cells[0], cells[1],
                      cells[2], cells[3]});
        }
    }
    t.print(std::cout);
    std::cout << "\nsoftware fault-injection experiments run: "
              << injections << " (paper: 46M total)\n"
              << "Key result (1): every configuration far exceeds the "
                 "0.2 FIT budget the ISO26262 ASIL-D allocation allows "
                 "the accelerator's FFs.\n"
              << "Key result (4): FP16 FIT is generally the highest, "
                 "and INT8 exceeds INT16 (coarser quantisation "
                 "amplifies equal perturbations).\n";
    return 0;
}
