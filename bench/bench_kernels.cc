/**
 * @file
 * google-benchmark microbenchmarks of the framework's hot kernels:
 * forward convolution, single-neuron recomputation, engine cycle rate,
 * software fault-model application, and the RNG.
 */

#include <benchmark/benchmark.h>

#include "accel/nvdla_fi.hh"
#include "core/fault_models.hh"
#include "nn/conv.hh"
#include "nn/init.hh"
#include "sim/rng.hh"

using namespace fidelity;

namespace
{

struct ConvSetup
{
    ConvSpec spec;
    std::unique_ptr<Conv2D> conv;
    Tensor x;
    std::vector<const Tensor *> ins;
    Tensor golden;

    ConvSetup()
        : x(1, 8, 8, 8)
    {
        Rng rng(1);
        spec.inC = 8;
        spec.outC = 32;
        spec.kh = 3;
        spec.kw = 3;
        spec.pad = 1;
        conv = std::make_unique<Conv2D>(
            "c", spec, heWeights(rng, 9u * 8 * 32, 72),
            smallBiases(rng, 32));
        conv->setPrecision(Precision::FP16);
        for (auto &v : x.data())
            v = static_cast<float>(rng.normal(0, 1));
        ins = {&x};
        golden = conv->forward(ins);
    }
};

ConvSetup &
setup()
{
    static ConvSetup s;
    return s;
}

void
BM_ConvForward(benchmark::State &state)
{
    auto &s = setup();
    for (auto _ : state)
        benchmark::DoNotOptimize(s.conv->forward(s.ins));
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(s.golden.size()) *
                            s.conv->reductionLength());
}
BENCHMARK(BM_ConvForward);

void
BM_ComputeNeuron(benchmark::State &state)
{
    auto &s = setup();
    NeuronIndex n{0, 4, 4, 7};
    for (auto _ : state)
        benchmark::DoNotOptimize(s.conv->computeNeuron(s.ins, n,
                                                       nullptr));
    state.SetItemsProcessed(state.iterations() *
                            s.conv->reductionLength());
}
BENCHMARK(BM_ComputeNeuron);

void
BM_EngineGoldenRun(benchmark::State &state)
{
    auto &s = setup();
    NvdlaConfig cfg;
    NvdlaEngine engine(cfg, engineLayerFromConv(*s.conv, s.x));
    std::uint64_t cycles = 0;
    for (auto _ : state) {
        EngineResult r = engine.run(s.x, nullptr);
        cycles = r.cycles;
        benchmark::DoNotOptimize(r.output);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(cycles));
    state.counters["cycles"] = static_cast<double>(cycles);
}
BENCHMARK(BM_EngineGoldenRun);

void
BM_EngineInjection(benchmark::State &state)
{
    auto &s = setup();
    NvdlaConfig cfg;
    NvdlaFi fi(cfg, engineLayerFromConv(*s.conv, s.x), s.x);
    Rng rng(3);
    for (auto _ : state) {
        FaultSite site = fi.sampleSite(rng);
        benchmark::DoNotOptimize(fi.inject(site));
    }
}
BENCHMARK(BM_EngineInjection);

void
BM_FaultModelApply(benchmark::State &state)
{
    auto &s = setup();
    NvdlaConfig cfg;
    FaultModels models(cfg);
    Rng rng(5);
    auto cat = static_cast<FFCategory>(state.range(0));
    for (auto _ : state)
        benchmark::DoNotOptimize(
            models.apply(cat, *s.conv, s.ins, s.golden, rng));
    state.SetLabel(ffCategoryName(cat));
}
BENCHMARK(BM_FaultModelApply)
    ->DenseRange(0, static_cast<int>(FFCategory::GlobalControl));

void
BM_RngDraws(benchmark::State &state)
{
    Rng rng(7);
    for (auto _ : state)
        benchmark::DoNotOptimize(rng.next32());
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RngDraws);

} // namespace

BENCHMARK_MAIN();
