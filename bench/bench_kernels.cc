/**
 * @file
 * Kernel throughput and kernel-identity harness.
 *
 * Phase 1 measures per-layer-type MAC throughput (GFLOP/s, counting
 * 2 ops per MAC) three ways, writing all to
 * BENCH_kernel_throughput.json so the speedup is recorded from one
 * machine and one binary:
 *
 *  - backend "<isa>" (e.g. "avx2"): the packed block kernels with the
 *    intrinsic backend — the production forward path;
 *  - backend "scalar": the per-neuron scalar reference
 *    (computeNeuron() over every output), which is the execution
 *    model the engine used before the kernel layer existed and still
 *    uses for single-neuron probes — the speedup baseline;
 *  - backend "scalar-block": the block kernels with the scalar twin
 *    backend (runtime toggle off), isolating what the pack/block
 *    restructure contributes without hand-written intrinsics.  On
 *    hosts where the compiler auto-vectorizes the twin's lane arrays
 *    this leg can approach the intrinsic one; it is a correctness
 *    reference, not the baseline.
 *
 * All three outputs are compared bit-for-bit as a side effect.
 *
 * Phase 2 runs a small injection campaign twice — SIMD on and off —
 * and exits non-zero if the campaign checksums differ: the CI smoke
 * gate for the kernels' bit-identity contract.
 *
 * Phase 3 hands over to the original google-benchmark micros
 * (forward conv, single-neuron recompute, engine cycle rate, fault
 * models, RNG); `--benchmark_filter=^$` skips them for smoke runs.
 *
 * Flags (see -h): `--kernel=<substr>` / `--dtype=<name>` narrow phase
 * 1 to the kernels under study (a kernel filter also skips the
 * campaign gate), `--backend=<name>` forces a dispatch backend for
 * the whole run (an unavailable backend exits non-zero), and
 * `--min-ms=<n>` sets the per-measurement floor.  Only the default
 * full sweep rewrites BENCH_kernel_throughput.json (rows tagged with
 * the dispatched backend); filtered or backend-forced runs print but
 * do not touch the tracked file, since the JSON merge replaces a
 * bench's whole row set.  Unrecognized arguments still flow to
 * google-benchmark.
 */

#include <benchmark/benchmark.h>

#include <cstring>
#include <memory>

#include "accel/nvdla_fi.hh"
#include "bench/common.hh"
#include "core/fault_models.hh"
#include "nn/conv.hh"
#include "nn/fc.hh"
#include "nn/init.hh"
#include "nn/layer.hh"
#include "nn/matmul.hh"
#include "sim/logging.hh"
#include "sim/parse.hh"
#include "sim/rng.hh"
#include "simd/simd.hh"

using namespace fidelity;

namespace
{

/** A layer with its inputs and the MAC count of one forward pass. */
struct KernelCase
{
    std::string name;
    std::unique_ptr<Layer> layer;
    std::vector<Tensor> inputs;
    std::int64_t macs = 0;

    std::vector<const Tensor *>
    ins() const
    {
        std::vector<const Tensor *> p;
        for (const Tensor &t : inputs)
            p.push_back(&t);
        return p;
    }
};

Tensor
randomTensor(Rng &rng, int n, int h, int w, int c)
{
    Tensor t(n, h, w, c);
    for (auto &v : t.data())
        v = static_cast<float>(rng.normal(0, 1));
    return t;
}

KernelCase
convCase(const std::string &name, int hw, int inC, int outC, int k,
         int groups = 1)
{
    Rng rng(11);
    KernelCase kc;
    kc.name = name;
    ConvSpec spec;
    spec.inC = inC;
    spec.outC = outC;
    spec.kh = spec.kw = k;
    spec.pad = k / 2;
    spec.groups = groups;
    std::size_t nw = static_cast<std::size_t>(k) * k *
                     (inC / groups) * outC;
    auto conv = std::make_unique<Conv2D>(
        name, spec, heWeights(rng, nw, k * k * inC / groups),
        smallBiases(rng, outC));
    kc.inputs.push_back(randomTensor(rng, 1, hw, hw, inC));
    Tensor out = conv->makeOutput({&kc.inputs[0]});
    kc.macs = static_cast<std::int64_t>(out.size()) *
              conv->reductionLength();
    kc.layer = std::move(conv);
    return kc;
}

KernelCase
fcCase(const std::string &name, int inC, int units)
{
    Rng rng(13);
    KernelCase kc;
    kc.name = name;
    auto fc = std::make_unique<FC>(
        name, inC, units,
        heWeights(rng, static_cast<std::size_t>(inC) * units, inC),
        smallBiases(rng, units));
    kc.inputs.push_back(randomTensor(rng, 1, 4, 1, inC));
    kc.macs = static_cast<std::int64_t>(4) * units * inC;
    kc.layer = std::move(fc);
    return kc;
}

KernelCase
matmulCase(const std::string &name, int rows, int red, int cols,
           bool transB)
{
    Rng rng(17);
    KernelCase kc;
    kc.name = name;
    kc.layer = std::make_unique<MatMulAB>(name, transB, 1.0f);
    kc.inputs.push_back(randomTensor(rng, 1, rows, 1, red));
    kc.inputs.push_back(transB ? randomTensor(rng, 1, cols, 1, red)
                               : randomTensor(rng, 1, red, 1, cols));
    kc.macs = static_cast<std::int64_t>(rows) * red * cols;
    return kc;
}

bool
bitIdentical(const Tensor &a, const Tensor &b)
{
    return a.size() == b.size() &&
           std::memcmp(a.data().data(), b.data().data(),
                       a.size() * sizeof(float)) == 0;
}

/** Forward repeatedly for >= minSeconds; returns per-pass seconds. */
double
timeForward(const KernelCase &kc, double minSeconds)
{
    auto ins = kc.ins();
    kc.layer->forward(ins); // warm up; builds weight packs
    int iters = 0;
    double elapsed = 0.0;
    while (elapsed < minSeconds) {
        elapsed += bench::timeSeconds([&] {
            for (int i = 0; i < 4; ++i)
                benchmark::DoNotOptimize(kc.layer->forward(ins));
        });
        iters += 4;
    }
    return elapsed / iters;
}

/** One forward pass through the per-neuron scalar reference path. */
Tensor
neuronForward(const KernelCase &kc)
{
    auto ins = kc.ins();
    const auto *mac = dynamic_cast<const MacLayer *>(kc.layer.get());
    Tensor out = kc.layer->makeOutput(ins);
    for (int n = 0; n < out.n(); ++n)
        for (int h = 0; h < out.h(); ++h)
            for (int w = 0; w < out.w(); ++w)
                for (int c = 0; c < out.c(); ++c)
                    out.at(n, h, w, c) = mac->computeNeuron(
                        ins, NeuronIndex{n, h, w, c}, nullptr);
    return out;
}

/** Time the per-neuron reference like timeForward(). */
double
timeNeuronForward(const KernelCase &kc, double minSeconds)
{
    int iters = 0;
    double elapsed = 0.0;
    while (elapsed < minSeconds) {
        elapsed += bench::timeSeconds(
            [&] { benchmark::DoNotOptimize(neuronForward(kc)); });
        ++iters;
    }
    return elapsed / iters;
}

struct DtypeSpec
{
    const char *name;
    Precision precision;
};

constexpr DtypeSpec kDtypes[] = {
    {"fp32", Precision::FP32},
    {"fp16", Precision::FP16},
    {"int8", Precision::INT8},
    {"int16", Precision::INT16},
};

/** Parsed command-line options (see usage()). */
struct Options
{
    std::string kernel;  //!< substring filter on the kernel name
    std::string dtype;   //!< exact dtype filter ("fp32", "int8", ...)
    std::string backend; //!< forced dispatch backend, "" = auto
    int minMs = 50;      //!< per-measurement wall-clock floor
};

void
usage(const char *argv0)
{
    std::cout
        << "usage: " << argv0 << " [options] [benchmark options]\n"
        << "  --kernel=<substr>   only kernels whose name contains "
           "<substr>\n"
        << "                      (conv3x3, conv1x1, fc, matmul); "
           "also skips the\n"
        << "                      campaign checksum gate\n"
        << "  --dtype=<name>      only one dtype: fp32, fp16, int8, "
           "int16\n"
        << "  --backend=<name>    force the dispatch backend (scalar, "
           "sse2, avx2,\n"
        << "                      neon, auto); exits non-zero when "
           "unavailable\n"
        << "  --min-ms=<n>        per-measurement floor in ms "
           "(default 50,\n"
        << "                      scaled by FIDELITY_SAMPLES)\n"
        << "  -h, --help          this message\n"
        << "only the default full sweep rewrites "
           "BENCH_kernel_throughput.json;\n"
        << "filtered/forced runs leave it untouched\n"
        << "remaining arguments go to google-benchmark "
           "(--benchmark_filter=...)\n";
}

int
runThroughput(const Options &opt)
{
    const double minSeconds =
        (opt.minMs / 1000.0) * bench::scaledSamples(10) / 10.0;
    std::vector<KernelCase> cases;
    cases.push_back(convCase("conv3x3", 16, 32, 64, 3));
    cases.push_back(convCase("conv1x1", 16, 64, 64, 1));
    cases.push_back(fcCase("fc", 256, 256));
    cases.push_back(matmulCase("matmul", 64, 64, 64, false));

    std::vector<bench::KernelThroughputRecord> records;
    int failures = 0;
    for (KernelCase &kc : cases) {
        if (!opt.kernel.empty() &&
            kc.name.find(opt.kernel) == std::string::npos)
            continue;
        for (const DtypeSpec &dt : kDtypes) {
            if (!opt.dtype.empty() && opt.dtype != dt.name)
                continue;
            kc.layer->setPrecision(dt.precision);
            if (dt.precision == Precision::INT8 ||
                dt.precision == Precision::INT16) {
                auto ins = kc.ins();
                Tensor ref = kc.layer->forward(ins);
                kc.layer->calibrate(ins, ref);
            }

            simd::setEnabled(true);
            Tensor outSimd = kc.layer->forward(kc.ins());
            double tSimd = timeForward(kc, minSeconds);
            simd::setEnabled(false);
            Tensor outTwin = kc.layer->forward(kc.ins());
            double tTwin = timeForward(kc, minSeconds);
            simd::setEnabled(true);
            Tensor outRef = neuronForward(kc);
            double tRef = timeNeuronForward(kc, minSeconds);

            if (!bitIdentical(outSimd, outTwin)) {
                std::cerr << "FAIL: " << kc.name << " " << dt.name
                          << ": SIMD and scalar-twin outputs differ\n";
                ++failures;
            }
            if (!bitIdentical(outSimd, outRef)) {
                std::cerr << "FAIL: " << kc.name << " " << dt.name
                          << ": SIMD and per-neuron outputs differ\n";
                ++failures;
            }

            auto gflops = [&](double sec) {
                return 2.0 * static_cast<double>(kc.macs) / sec / 1e9;
            };
            records.push_back({"bench_kernels", kc.name, dt.name,
                               simd::backendName(), gflops(tSimd),
                               tSimd});
            records.push_back({"bench_kernels", kc.name, dt.name,
                               "scalar", gflops(tRef), tRef});
            records.push_back({"bench_kernels", kc.name, dt.name,
                               "scalar-block", gflops(tTwin), tTwin});
            std::cout << kc.name << " " << dt.name << ": simd "
                      << gflops(tSimd) << " GFLOP/s, scalar "
                      << gflops(tRef) << " GFLOP/s, scalar-block "
                      << gflops(tTwin) << " GFLOP/s ("
                      << tRef / tSimd << "x vs scalar)\n";
        }
    }
    if (records.empty()) {
        std::cerr << "no kernel/dtype matches --kernel="
                  << opt.kernel << " --dtype=" << opt.dtype << "\n";
        return 1;
    }
    // mergeJsonLines replaces all of a bench's rows at once, so a
    // filtered or backend-forced run would clobber the full tracked
    // row set with a partial one — only the default full sweep under
    // the dispatched backend updates the trajectory file.
    if (opt.kernel.empty() && opt.dtype.empty() && opt.backend.empty()) {
        bench::writeKernelThroughputJson("bench_kernels", records);
        std::cout << "wrote BENCH_kernel_throughput.json ("
                  << simd::backendName() << " vs scalar)\n";
    } else {
        std::cout << "filtered run: BENCH_kernel_throughput.json "
                     "not rewritten\n";
    }
    return failures;
}

int
runChecksumGate(const Options &opt)
{
    // Whole-campaign identity: golden runs, fault injection, the
    // incremental engine, and the metric all ride on the kernels, so
    // equal checksums mean the backend toggle changed nothing.
    int samples = bench::scaledSamples(20);
    int failures = 0;
    for (const DtypeSpec &dt : kDtypes) {
        if (!opt.dtype.empty() && opt.dtype != dt.name)
            continue;
        simd::setEnabled(true);
        std::uint64_t withSimd = campaignChecksum(
            bench::runStudyCampaign("resnet", dt.precision,
                                    top1Metric(), samples));
        simd::setEnabled(false);
        std::uint64_t scalar = campaignChecksum(
            bench::runStudyCampaign("resnet", dt.precision,
                                    top1Metric(), samples));
        simd::setEnabled(true);
        std::cout << "campaign checksum resnet " << dt.name
                  << ": simd " << std::hex << withSimd << ", scalar "
                  << scalar << std::dec
                  << (withSimd == scalar ? " (equal)\n"
                                         : " MISMATCH\n");
        if (withSimd != scalar)
            ++failures;
    }
    return failures;
}

struct ConvSetup
{
    ConvSpec spec;
    std::unique_ptr<Conv2D> conv;
    Tensor x;
    std::vector<const Tensor *> ins;
    Tensor golden;

    ConvSetup()
        : x(1, 8, 8, 8)
    {
        Rng rng(1);
        spec.inC = 8;
        spec.outC = 32;
        spec.kh = 3;
        spec.kw = 3;
        spec.pad = 1;
        conv = std::make_unique<Conv2D>(
            "c", spec, heWeights(rng, 9u * 8 * 32, 72),
            smallBiases(rng, 32));
        conv->setPrecision(Precision::FP16);
        for (auto &v : x.data())
            v = static_cast<float>(rng.normal(0, 1));
        ins = {&x};
        golden = conv->forward(ins);
    }
};

ConvSetup &
setup()
{
    static ConvSetup s;
    return s;
}

void
BM_ConvForward(benchmark::State &state)
{
    auto &s = setup();
    for (auto _ : state)
        benchmark::DoNotOptimize(s.conv->forward(s.ins));
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(s.golden.size()) *
                            s.conv->reductionLength());
}
BENCHMARK(BM_ConvForward);

void
BM_ComputeNeuron(benchmark::State &state)
{
    auto &s = setup();
    NeuronIndex n{0, 4, 4, 7};
    for (auto _ : state)
        benchmark::DoNotOptimize(s.conv->computeNeuron(s.ins, n,
                                                       nullptr));
    state.SetItemsProcessed(state.iterations() *
                            s.conv->reductionLength());
}
BENCHMARK(BM_ComputeNeuron);

void
BM_EngineGoldenRun(benchmark::State &state)
{
    auto &s = setup();
    NvdlaConfig cfg;
    NvdlaEngine engine(cfg, engineLayerFromConv(*s.conv, s.x));
    std::uint64_t cycles = 0;
    for (auto _ : state) {
        EngineResult r = engine.run(s.x, nullptr);
        cycles = r.cycles;
        benchmark::DoNotOptimize(r.output);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(cycles));
    state.counters["cycles"] = static_cast<double>(cycles);
}
BENCHMARK(BM_EngineGoldenRun);

void
BM_EngineInjection(benchmark::State &state)
{
    auto &s = setup();
    NvdlaConfig cfg;
    NvdlaFi fi(cfg, engineLayerFromConv(*s.conv, s.x), s.x);
    Rng rng(3);
    for (auto _ : state) {
        FaultSite site = fi.sampleSite(rng);
        benchmark::DoNotOptimize(fi.inject(site));
    }
}
BENCHMARK(BM_EngineInjection);

void
BM_FaultModelApply(benchmark::State &state)
{
    auto &s = setup();
    NvdlaConfig cfg;
    FaultModels models(cfg);
    Rng rng(5);
    auto cat = static_cast<FFCategory>(state.range(0));
    for (auto _ : state)
        benchmark::DoNotOptimize(
            models.apply(cat, *s.conv, s.ins, s.golden, rng));
    state.SetLabel(ffCategoryName(cat));
}
BENCHMARK(BM_FaultModelApply)
    ->DenseRange(0, static_cast<int>(FFCategory::GlobalControl));

void
BM_RngDraws(benchmark::State &state)
{
    Rng rng(7);
    for (auto _ : state)
        benchmark::DoNotOptimize(rng.next32());
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RngDraws);

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    std::vector<char *> rest{argv[0]};
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto val = [&](const char *flag) {
            return arg.substr(std::strlen(flag));
        };
        if (arg == "-h" || arg == "--help") {
            usage(argv[0]);
            return 0;
        } else if (arg.rfind("--kernel=", 0) == 0) {
            opt.kernel = val("--kernel=");
        } else if (arg.rfind("--dtype=", 0) == 0) {
            opt.dtype = val("--dtype=");
        } else if (arg.rfind("--backend=", 0) == 0) {
            opt.backend = val("--backend=");
        } else if (arg.rfind("--min-ms=", 0) == 0) {
            opt.minMs = static_cast<int>(
                parseIntArg("--min-ms", val("--min-ms="), 1, 60000));
        } else {
            rest.push_back(argv[i]);
        }
    }
    if (!opt.dtype.empty()) {
        bool known = false;
        for (const DtypeSpec &dt : kDtypes)
            known = known || opt.dtype == dt.name;
        fatal_if(!known, "--dtype=", opt.dtype,
                 ": expected fp32, fp16, int8, or int16");
    }
    if (!opt.backend.empty() &&
        !simd::forceBackend(opt.backend.c_str()))
        fatal("--backend=", opt.backend,
              " is not available on this host (not compiled in, or "
              "the CPU lacks the ISA)");
    std::cout << "dispatch backend " << simd::backendName() << " ("
              << simd::dispatchMode() << ")\n";

    int failures = runThroughput(opt);
    // The campaign gate is whole-network; a kernel filter means a
    // targeted microbench run, so only the filtered phase executes.
    if (opt.kernel.empty())
        failures += runChecksumGate(opt);
    if (failures) {
        std::cerr << failures
                  << " SIMD-vs-scalar identity failure(s)\n";
        return 1;
    }
    int bargc = static_cast<int>(rest.size());
    benchmark::Initialize(&bargc, rest.data());
    if (benchmark::ReportUnrecognizedArguments(bargc, rest.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
