/**
 * @file
 * Campaign-throughput scaling of the parallel injection engine.
 *
 * Runs the same ResNet-style campaign at 1/2/4/8 worker threads and
 * reports injections/sec, speedup over the single-thread run, and a
 * result checksum demonstrating that the CampaignResult is identical
 * for every thread count (the engine's determinism contract).
 */

#include <cstdint>
#include <cstdio>
#include <cstring>

#include "bench/common.hh"
#include "sim/thread_pool.hh"

using namespace fidelity;
using namespace fidelity::bench;

namespace
{

/** Order-sensitive digest of the campaign's numeric identity. */
std::uint64_t
resultChecksum(const CampaignResult &res)
{
    std::uint64_t h = 1469598103934665603ULL; // FNV-1a
    auto mix = [&h](std::uint64_t v) {
        h ^= v;
        h *= 1099511628211ULL;
    };
    mix(res.totalInjections);
    for (const CellResult &cell : res.cells) {
        mix(cell.masked.successes());
        mix(cell.masked.trials());
    }
    for (const auto &[delta, failed] : res.singleNeuronSamples) {
        std::uint64_t bits;
        static_assert(sizeof(bits) == sizeof(delta));
        std::memcpy(&bits, &delta, sizeof(bits));
        mix(bits);
        mix(failed ? 1 : 0);
    }
    return h;
}

} // namespace

int
main()
{
    const int samples = scaledSamples(120);
    const std::string network = "resnet";

    Network net = buildNetwork(network, 2020);
    Tensor input = defaultInputFor(network, 2021);
    net.setPrecision(Precision::FP16);

    CampaignConfig cfg;
    cfg.samplesPerCategory = samples;
    cfg.seed = 2027;

    printHeading(std::cout, "Parallel campaign scaling (" + network +
                                ", FP16, " + std::to_string(samples) +
                                " samples per layer/category)");
    std::cout << "hardware threads: " << ThreadPool::hardwareThreads()
              << "\n\n";

    Table t({"threads", "wall s", "inj/s", "speedup", "checksum"});
    double base_time = 0.0;
    std::uint64_t base_checksum = 0;
    bool all_identical = true;
    for (int threads : {1, 2, 4, 8}) {
        cfg.numThreads = threads;
        CampaignResult res;
        double secs = timeSeconds([&] {
            res = runCampaign(net, input, top1Metric(), cfg);
        });
        std::uint64_t checksum = resultChecksum(res);
        if (threads == 1) {
            base_time = secs;
            base_checksum = checksum;
        }
        all_identical = all_identical && checksum == base_checksum;
        double rate = static_cast<double>(res.totalInjections) / secs;
        char digest[20];
        std::snprintf(digest, sizeof(digest), "%016llx",
                      static_cast<unsigned long long>(checksum));
        t.addRow({std::to_string(threads), Table::num(secs, 2),
                  Table::num(rate, 0), Table::num(base_time / secs, 2),
                  digest});
    }
    t.print(std::cout);
    std::cout << (all_identical
                      ? "\nresults bit-identical across thread counts\n"
                      : "\nERROR: results differ across thread counts\n")
              << std::flush;
    return all_identical ? 0 : 1;
}
