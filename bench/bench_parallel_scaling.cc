/**
 * @file
 * Campaign-throughput scaling of the parallel injection engine.
 *
 * Runs the same ResNet-style campaign at 1/2/4/8 worker threads and
 * reports injections/sec, speedup over the single-thread run, and a
 * result checksum demonstrating that the CampaignResult is identical
 * for every thread count (the engine's determinism contract).
 */

#include <cstdint>
#include <cstdio>

#include "bench/common.hh"
#include "sim/thread_pool.hh"

using namespace fidelity;
using namespace fidelity::bench;

int
main()
{
    const int samples = scaledSamples(120);
    const std::string network = "resnet";

    Network net = buildNetwork(network, 2020);
    Tensor input = defaultInputFor(network, 2021);
    net.setPrecision(Precision::FP16);

    CampaignConfig cfg;
    cfg.samplesPerCategory = samples;
    cfg.seed = 2027;

    printHeading(std::cout, "Parallel campaign scaling (" + network +
                                ", FP16, " + std::to_string(samples) +
                                " samples per layer/category)");
    std::cout << "hardware threads: " << ThreadPool::hardwareThreads()
              << "\n\n";

    Table t({"threads", "wall s", "inj/s", "speedup", "checksum"});
    double base_time = 0.0;
    std::uint64_t base_checksum = 0;
    bool all_identical = true;
    std::vector<ThroughputRecord> records;
    for (int threads : {1, 2, 4, 8}) {
        cfg.numThreads = threads;
        CampaignResult res;
        double secs = timeSeconds([&] {
            res = runCampaign(net, input, top1Metric(), cfg);
        });
        std::uint64_t checksum = campaignChecksum(res);
        if (threads == 1) {
            base_time = secs;
            base_checksum = checksum;
        }
        all_identical = all_identical && checksum == base_checksum;
        double rate = static_cast<double>(res.totalInjections) / secs;
        char digest[20];
        std::snprintf(digest, sizeof(digest), "%016llx",
                      static_cast<unsigned long long>(checksum));
        t.addRow({std::to_string(threads), Table::num(secs, 2),
                  Table::num(rate, 0), Table::num(base_time / secs, 2),
                  digest});
        ThroughputRecord rec;
        rec.bench = "parallel_scaling";
        rec.network = network;
        rec.mode = cfg.incremental ? "engine_incremental" : "engine_dense";
        rec.threads = threads;
        rec.batchWidth = cfg.batchWidth;
        rec.injections = res.totalInjections;
        rec.wallSeconds = secs;
        records.push_back(rec);
    }
    t.print(std::cout);
    writeThroughputJson("parallel_scaling", records);
    std::cout << (all_identical
                      ? "\nresults bit-identical across thread counts\n"
                      : "\nERROR: results differ across thread counts\n");

    // Crash-safety leg: stop the same campaign mid-flight, snapshot,
    // resume from the snapshot at a different thread count, and check
    // the merged result is bit-identical to the uninterrupted runs.
    const std::string ckpt = "bench_parallel_scaling.ckpt";
    bool resume_identical = true;
    for (int threads : {1, 8}) {
        cfg.numThreads = threads;
        cfg.checkpointPath = ckpt;
        cfg.stopAfterShards = 64;
        cfg.resumeFrom.clear();
        CampaignResult part = runCampaign(net, input, top1Metric(), cfg);
        if (part.complete) {
            std::cout << "ERROR: time-sliced campaign finished early\n";
            resume_identical = false;
        }
        cfg.stopAfterShards = 0;
        cfg.resumeFrom = ckpt;
        cfg.numThreads = threads == 1 ? 8 : 1; // resume elsewhere
        CampaignResult res = runCampaign(net, input, top1Metric(), cfg);
        resume_identical = resume_identical &&
                           campaignChecksum(res) == base_checksum;
        std::remove(ckpt.c_str());
    }
    cfg.checkpointPath.clear();
    cfg.resumeFrom.clear();
    std::cout << (resume_identical
                      ? "checkpoint/resume bit-identical to "
                        "uninterrupted runs\n"
                      : "ERROR: resumed campaign diverged from the "
                        "uninterrupted result\n")
              << std::flush;
    return all_identical && resume_identical ? 0 : 1;
}
