/**
 * @file
 * Adaptive vs fixed sampling at equal statistical precision.
 *
 * For each study CNN the fixed-budget campaign (samplesPerCategory =
 * 120 by default) is run first and its worst-cell Wilson half-width
 * measured.  The adaptive engine is then asked to hit exactly that
 * half-width as its per-cell target; because it retires easy
 * (layer, category) cells as soon as their interval is tight enough it
 * reaches the same precision with a fraction of the injections.
 *
 * The bench fails (non-zero exit) if any adaptive cell misses the
 * target without hitting the sample cap, or if no network shows at
 * least a 1.5x sample reduction.  Results are merged into
 * BENCH_adaptive_sampling.json.
 */

#include <cstdint>
#include <iostream>

#include "bench/common.hh"

using namespace fidelity;
using namespace fidelity::bench;

int
main()
{
    const int samples = scaledSamples(120);
    const double z = 1.96;

    printHeading(std::cout,
                 "Adaptive sampling vs fixed budget (" +
                     std::to_string(samples) +
                     " samples per layer/category baseline)");

    Table t({"Network", "mode", "injections", "max half-width",
             "wall s", "sample ratio"});
    std::vector<AdaptiveRecord> records;
    bool precision_ok = true;
    double best_ratio = 0.0;

    for (const char *name : {"resnet", "mobilenet"}) {
        CampaignConfig fixed;
        fixed.samplesPerCategory = samples;
        fixed.seed = 2027;
        CampaignResult fres;
        double fsecs = timeSeconds([&] {
            fres = runStudyCampaignCfg(name, Precision::FP16,
                                       top1Metric(), fixed);
        });
        const double target = maxCellHalfWidth(fres, z);

        CampaignConfig adaptive = fixed;
        adaptive.targetHalfWidth = target;
        adaptive.confidenceZ = z;
        adaptive.minSamples = 32;
        adaptive.maxSamplesPerCategory = samples * 32;
        CampaignResult ares;
        double asecs = timeSeconds([&] {
            ares = runStudyCampaignCfg(name, Precision::FP16,
                                       top1Metric(), adaptive);
        });

        // Every sampled cell must meet the target; the cap is sized
        // far above the fixed budget so it cannot silently bail out.
        for (const CellResult &cell : ares.cells) {
            if (cell.category == FFCategory::GlobalControl ||
                cell.masked.trials() == 0)
                continue;
            const bool capped =
                cell.masked.trials() >=
                static_cast<std::uint64_t>(adaptive.maxSamplesPerCategory);
            if (!capped && cell.masked.halfWidth(z) > target) {
                std::cout << "ERROR: node " << cell.node << " "
                          << ffCategoryName(cell.category)
                          << " missed the half-width target\n";
                precision_ok = false;
            }
        }

        const double ratio =
            ares.totalInjections > 0
                ? static_cast<double>(fres.totalInjections) /
                      static_cast<double>(ares.totalInjections)
                : 0.0;
        best_ratio = std::max(best_ratio, ratio);

        t.addRow({name, "fixed", std::to_string(fres.totalInjections),
                  Table::num(maxCellHalfWidth(fres, z), 4),
                  Table::num(fsecs, 2), "1.00"});
        t.addRow({name, "adaptive", std::to_string(ares.totalInjections),
                  Table::num(maxCellHalfWidth(ares, z), 4),
                  Table::num(asecs, 2), Table::num(ratio, 2)});

        AdaptiveRecord fr;
        fr.bench = "adaptive_sampling";
        fr.network = name;
        fr.mode = "fixed";
        fr.targetHalfWidth = target;
        fr.confidenceZ = z;
        fr.injections = fres.totalInjections;
        fr.maxHalfWidth = maxCellHalfWidth(fres, z);
        fr.wallSeconds = fsecs;
        records.push_back(fr);

        AdaptiveRecord ar = fr;
        ar.mode = "adaptive";
        ar.injections = ares.totalInjections;
        ar.maxHalfWidth = maxCellHalfWidth(ares, z);
        ar.wallSeconds = asecs;
        records.push_back(ar);
    }

    t.print(std::cout);
    writeAdaptiveJson("adaptive_sampling", records);

    const bool ratio_ok = best_ratio >= 1.5;
    std::cout << "\nbest sample reduction at equal precision: "
              << Table::num(best_ratio, 2) << "x (gate: >= 1.5x)\n"
              << (precision_ok ? ""
                               : "ERROR: adaptive run missed its "
                                 "half-width target\n")
              << (ratio_ok ? ""
                           : "ERROR: no network reached the 1.5x "
                             "sample reduction\n")
              << std::flush;
    return precision_ok && ratio_ok ? 0 : 1;
}
