/**
 * @file
 * Regenerates the Sec. III-E extension: FIdelity's models applied to
 * on-chip memory errors.  Single-word corruptions injected at load
 * time must match the Table I row-1 model exactly; mid-execution
 * corruptions affect a subset of the model's all-users set; multi-word
 * errors take the union of per-word sets.
 */

#include <cmath>
#include <iostream>
#include <set>

#include "bench/common.hh"
#include "core/memory_faults.hh"
#include "core/validation.hh"
#include "sim/table.hh"
#include "workloads/models.hh"

using namespace fidelity;
using namespace fidelity::bench;

namespace
{

bool
sameValue(float a, float b)
{
    if (std::isnan(a) && std::isnan(b))
        return true;
    return a == b;
}

} // namespace

int
main()
{
    int samples = scaledSamples(80);
    auto workloads = buildValidationWorkloads(2020);
    NvdlaConfig cfg;

    printHeading(std::cout,
                 "Sec. III-E: memory-error models vs the cycle-level "
                 "engine (FP16)");
    Table t({"Workload", "load-time faults", "exact match",
             "mid-run faults", "subset+values ok"});

    for (auto &w : workloads) {
        // The engine executes conv and matmul-style layers; memory
        // addresses map 1:1 for conv and FC.
        const auto *conv = dynamic_cast<const Conv2D *>(w.layer.get());
        const auto *fc = dynamic_cast<const FC *>(w.layer.get());
        if (!conv && !fc)
            continue;
        EngineLayer el = conv
            ? engineLayerFromConv(*conv, w.inputs[0])
            : engineLayerFromFC(*fc, w.inputs[0]);
        NvdlaFi fi(cfg, el, w.inputs[0]);
        auto ins = w.ins();
        MemoryFaultModel model(*w.layer, ins);
        const Tensor &golden = fi.golden().output;

        Rng rng(33);
        int exact = 0, subset_ok = 0;
        for (int i = 0; i < samples; ++i) {
            MemWordFault fault;
            fault.weight = rng.chance(0.5);
            std::size_t limit = fault.weight
                ? w.layer->weightCount(ins) : w.inputs[0].size();
            fault.index =
                rng.below(static_cast<std::uint32_t>(limit));
            fault.mask = 1u << rng.below(16);

            MemFault mf;
            mf.weightRegion = fault.weight;
            mf.addr = static_cast<std::int64_t>(fault.index);
            mf.mask = fault.mask;
            bool load_time = i % 2 == 0;
            std::uint64_t start = fi.computeStartCycle();
            mf.cycle = load_time
                ? start
                : start + rng.below(static_cast<std::uint32_t>(
                              fi.goldenCycles() - start));

            RtlOutcome rtl = fi.injectMem({mf});
            if (rtl.timeout || rtl.anomaly)
                continue;
            FaultApplication pred = model.applyWord(fault);

            std::set<std::size_t> allowed;
            for (std::size_t k = 0; k < pred.neurons.size(); ++k)
                allowed.insert(golden.offset(
                    pred.neurons[k].n, pred.neurons[k].h,
                    pred.neurons[k].w, pred.neurons[k].c));

            bool values_ok = true;
            for (const FaultyNeuron &fn : rtl.faulty) {
                if (!allowed.count(fn.flat)) {
                    values_ok = false;
                    break;
                }
                NeuronIndex n = golden.indexOf(fn.flat);
                for (std::size_t k = 0; k < pred.neurons.size(); ++k)
                    if (pred.neurons[k] == n &&
                        !sameValue(pred.values[k], fn.faulty))
                        values_ok = false;
            }
            if (load_time) {
                if (values_ok &&
                    rtl.faulty.size() == pred.neurons.size())
                    exact += 1;
            } else if (values_ok) {
                subset_ok += 1;
            }
        }
        int half = samples / 2;
        t.addRow({w.name, Table::num(static_cast<std::uint64_t>(half)),
                  Table::pct(static_cast<double>(exact) / half),
                  Table::num(static_cast<std::uint64_t>(half)),
                  Table::pct(static_cast<double>(subset_ok) / half)});
    }
    t.print(std::cout);

    // Multi-word union demonstration.
    printHeading(std::cout,
                 "Multi-word errors: union of per-word neuron sets");
    auto &w = workloads[0];
    auto ins = w.ins();
    MemoryFaultModel model(*w.layer, ins);
    Rng rng(44);
    Table u({"words", "mean faulty neurons"});
    for (int words : {1, 2, 4, 8}) {
        double total = 0;
        for (int i = 0; i < 30; ++i) {
            std::vector<MemWordFault> faults(words);
            for (auto &fl : faults) {
                fl.weight = rng.chance(0.5);
                std::size_t limit = fl.weight
                    ? w.layer->weightCount(ins) : w.inputs[0].size();
                fl.index =
                    rng.below(static_cast<std::uint32_t>(limit));
                fl.mask = 1u << rng.below(16);
            }
            total += static_cast<double>(
                model.applyWords(faults).neurons.size());
        }
        u.addRow({Table::num(static_cast<std::uint64_t>(words)),
                  Table::num(total / 30, 1)});
    }
    u.print(std::cout);
    std::cout << "\nAfter the memory models are established, the "
                 "injection flow of Fig. 3 runs unchanged.\n";
    return 0;
}
