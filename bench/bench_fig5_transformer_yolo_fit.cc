/**
 * @file
 * Regenerates Fig. 5: the Accelerator_FIT_rate of the Transformer
 * (BLEU-band metric) and Yolo (detection-score-band metric) under the
 * 10% and 20% tolerance bands — demonstrating Key result (3): the
 * correctness metric strongly influences the FIT rate.
 */

#include <iostream>

#include "bench/common.hh"

using namespace fidelity;
using namespace fidelity::bench;

int
main()
{
    int samples = scaledSamples(150);

    printHeading(std::cout,
                 "Fig. 5(a): Transformer FIT (FP16, BLEU bands)");
    Table t({"Metric", "datapath", "local", "global", "total"});
    for (double tol : {0.10, 0.20}) {
        CampaignResult res = runStudyCampaign(
            "transformer", Precision::FP16, bleuMetric(tol), samples);
        auto cells = fitCells(res.fit);
        t.addRow({"<" + Table::pct(tol, 0) + " BLEU diff", cells[0],
                  cells[1], cells[2], cells[3]});
    }
    t.print(std::cout);

    printHeading(std::cout,
                 "Fig. 5(b): Yolo FIT (FP16, detection-score bands)");
    Table y({"Metric", "datapath", "local", "global", "total"});
    for (double tol : {0.10, 0.20}) {
        CampaignResult res = runStudyCampaign(
            "yolo", Precision::FP16, detectionMetric(tol), samples);
        auto cells = fitCells(res.fit);
        y.addRow({"<" + Table::pct(tol, 0) + " precision diff",
                  cells[0], cells[1], cells[2], cells[3]});
    }
    y.print(std::cout);

    std::cout << "\nKey result (3): loosening the band from 10% to 20% "
                 "lowers the datapath/local FIT contributions.\n"
              << "Key result (1): the paper reports FIT = 9.5 for Yolo "
                 "at the 10% band, far above the 0.2 ASIL-D budget; "
                 "the same conclusion holds here.\n";
    return 0;
}
