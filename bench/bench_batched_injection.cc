/**
 * @file
 * Fault-batched re-execution throughput and bit-identity gate.
 *
 * Runs the result-cache bench's cache-off adaptive campaign (same
 * networks, seed, schedule, and thread count) once unbatched (B = 1)
 * and once with the fault-batched engine at full width (B = 8), where
 * SIMD lanes carry independent injections of one (layer, category)
 * cell through the network in a single pass (DESIGN.md §12).
 *
 * The bench fails (non-zero exit) if
 *  - the batched campaignChecksum differs from the B = 1 checksum on
 *    any network (batching must be a pure performance knob), or
 *  - the batched injections/s does not reach 3x the PR 6 cache_off
 *    reference rows of BENCH_injection_throughput.json (hard-coded
 *    below, measured at the same thread count on the same schedule).
 *
 * Each configuration is timed kRepeats times and the gate uses the
 * best wall clock: single sub-second campaign runs swing by tens of
 * percent under host scheduling noise, and the minimum is the
 * standard low-variance estimator of attainable throughput.  The
 * checksum is verified on every repeat.
 *
 * An INT8 leg runs the same schedule through the narrow integer
 * kernels (modes "engine_incremental_int8" / "engine_batched_int8"),
 * so BENCH_injection_throughput.json tracks the integer campaign rate
 * across PRs; its gate is checksum identity only (the PR 6 baselines
 * are FP16).
 *
 * Rows are merged into BENCH_injection_throughput.json with their
 * batch_width tag.
 */

#include <algorithm>
#include <cstdint>
#include <iostream>

#include "bench/common.hh"

using namespace fidelity;
using namespace fidelity::bench;

namespace
{

/** PR 6 `result_cache` cache_off reference rows (threads = 4). */
struct Baseline
{
    const char *network;
    double injPerSec;
};

constexpr Baseline kBaselines[] = {
    {"resnet", 2004.5155963829948},
    {"mobilenet", 2676.731426189856},
};

constexpr double kSpeedupGate = 3.0;
constexpr int kRepeats = 5;

} // namespace

int
main()
{
    const int samples = scaledSamples(60);
    const int threads = 4;
    const int width = 8;

    printHeading(std::cout,
                 "Fault-batched injection throughput (FP16 + INT8, "
                 "adaptive, " +
                     std::to_string(samples) +
                     " samples per cell cap base, " +
                     std::to_string(threads) + " threads)");

    // The INT8 leg tracks the narrow integer kernels' campaign rate
    // (modes tagged "_int8"); the PR 6 baseline rows are FP16-only,
    // so its uplift column compares batched against its own B = 1 run
    // and only the checksum identity is gated.
    struct Leg
    {
        Precision precision;
        const char *suffix;
    };
    constexpr Leg kLegs[] = {
        {Precision::FP16, ""},
        {Precision::INT8, "_int8"},
    };

    Table t({"Network", "dtype", "B", "injections", "wall s", "inj/s",
             "uplift", "identical"});
    std::vector<ThroughputRecord> records;
    bool checksum_ok = true;
    bool speedup_ok = true;

    for (const Baseline &base : kBaselines) {
        for (const Leg &leg : kLegs) {
        CampaignConfig cfg;
        cfg.samplesPerCategory = samples;
        cfg.seed = 2033;
        cfg.targetHalfWidth = 0.10;
        cfg.confidenceZ = 1.96;
        cfg.minSamples = 16;
        cfg.maxSamplesPerCategory = samples * 8;
        cfg.numThreads = threads;
        cfg.resultCacheEnabled = false;

        std::uint64_t checksum[2] = {0, 0};
        double b1Rate = 0.0;
        for (int run = 0; run < 2; ++run) {
            cfg.batchWidth = run == 0 ? 1 : width;
            CampaignResult res;
            double secs = 0.0;
            bool stable = true;
            for (int rep = 0; rep < kRepeats; ++rep) {
                CampaignResult r;
                const double s = timeSeconds([&] {
                    r = runStudyCampaignCfg(base.network,
                                            leg.precision,
                                            top1Metric(), cfg);
                });
                if (rep == 0) {
                    res = r;
                    secs = s;
                } else {
                    stable = stable &&
                             campaignChecksum(r) == campaignChecksum(res);
                    secs = std::min(secs, s);
                }
            }
            checksum_ok = checksum_ok && stable;
            checksum[run] = campaignChecksum(res);

            ThroughputRecord rec;
            rec.bench = "batched_injection";
            rec.network = base.network;
            rec.mode = std::string(cfg.batchWidth > 1
                                       ? "engine_batched"
                                       : "engine_incremental") +
                       leg.suffix;
            rec.threads = threads;
            rec.batchWidth = cfg.batchWidth;
            rec.injections = res.totalInjections;
            rec.wallSeconds = secs;
            records.push_back(rec);

            const bool fp16 = leg.precision == Precision::FP16;
            if (run == 0)
                b1Rate = rec.injPerSec();
            const double uplift = fp16
                ? rec.injPerSec() / base.injPerSec
                : rec.injPerSec() / b1Rate;
            const bool identical = checksum[run] == checksum[0];
            if (run == 1) {
                checksum_ok = checksum_ok && identical;
                if (fp16)
                    speedup_ok = speedup_ok && uplift >= kSpeedupGate;
            }
            t.addRow({base.network, fp16 ? "fp16" : "int8",
                      std::to_string(cfg.batchWidth),
                      std::to_string(rec.injections),
                      Table::num(secs, 2),
                      Table::num(rec.injPerSec(), 0),
                      Table::num(uplift, 2),
                      identical ? "yes" : "NO"});
        }
        }
    }

    t.print(std::cout);
    writeThroughputJson("batched_injection", records);

    std::cout << (checksum_ok
                      ? "\nbatched results bit-identical to B = 1\n"
                      : "\nERROR: batched campaign diverges from the "
                        "B = 1 result\n")
              << (speedup_ok
                      ? "batched throughput meets the 3x gate over the "
                        "PR 6 cache_off baseline\n"
                      : "ERROR: batched throughput below 3x the PR 6 "
                        "cache_off baseline\n")
              << std::flush;
    return checksum_ok && speedup_ok ? 0 : 1;
}
