/**
 * @file
 * Regenerates Fig. 6: the Accelerator_FIT_rate of the CNN workloads
 * when all global-control flip-flops are protected (their raw FIT rate
 * set to zero) — Key result (2): datapath and local-control FFs alone
 * still exceed the automotive budget, so FIdelity-style analysis of
 * those categories is indispensable.
 */

#include <iostream>

#include "bench/common.hh"

using namespace fidelity;
using namespace fidelity::bench;

int
main()
{
    int samples = scaledSamples(150);

    printHeading(std::cout,
                 "Fig. 6: FIT with global-control FFs protected "
                 "(FP16, Top-1)");
    Table t({"Network", "datapath", "local", "global", "total",
             "> 0.2 budget?"});
    for (const char *name : {"inception", "resnet", "mobilenet"}) {
        CampaignResult res = runStudyCampaign(name, Precision::FP16,
                                              top1Metric(), samples);
        const FitBreakdown &fit = res.fitGlobalProtected;
        auto cells = fitCells(fit);
        t.addRow({name, cells[0], cells[1], cells[2], cells[3],
                  fit.total() > 0.2 ? "yes" : "no"});
    }
    t.print(std::cout);
    std::cout << "\nKey result (2): even with every global-control FF "
                 "protected, the remaining FIT exceeds the 0.2 ASIL-D "
                 "allocation, so datapath and local-control analysis "
                 "remains necessary.\n";
    return 0;
}
