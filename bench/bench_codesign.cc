/**
 * @file
 * Regenerates the paper's Architectural Insights as quantitative
 * studies: (a) selective protection of the highest-contributing FF
 * categories to reach a FIT target at minimum hardened-FF cost, and
 * (b) the value-bounding hardware-software co-design suggested by Key
 * result 5 (a range checker on written-back neurons).
 */

#include <iostream>

#include "bench/common.hh"
#include "core/protection.hh"

using namespace fidelity;
using namespace fidelity::bench;

int
main()
{
    int samples = scaledSamples(150);

    Network net = buildYolo(2020);
    Tensor input = defaultInputFor("yolo", 2021);
    net.setPrecision(Precision::FP16);

    CampaignConfig cfg;
    cfg.samplesPerCategory = samples;
    cfg.seed = 21;
    CorrectnessFn metric = detectionMetric(0.10);
    CampaignResult base = runCampaign(net, input, metric, cfg);

    printHeading(std::cout,
                 "Per-category FIT contributions (yolo, FP16, 10% "
                 "band)");
    auto contribs =
        categoryFitContributions(cfg.fit, base.layerInputs);
    const auto &cats = allFFCategories();
    Table c({"Category", "%FF", "FIT contribution"});
    for (std::size_t i = 0; i < cats.size(); ++i)
        c.addRow({ffCategoryName(cats[i]),
                  Table::pct(ffCategoryShare(cats[i])),
                  Table::num(contribs[i], 3)});
    c.print(std::cout);

    printHeading(std::cout,
                 "Selective protection plans for decreasing budgets");
    Table p({"Target FIT", "Protected categories", "FF share",
             "Resulting FIT", "meets?"});
    for (double target : {5.0, 1.0, 0.2}) {
        ProtectionPlan plan =
            planSelectiveProtection(cfg.fit, base.layerInputs, target);
        std::string names;
        for (std::size_t i = 0; i < cats.size(); ++i) {
            if (!plan.protect[i])
                continue;
            if (!names.empty())
                names += "+";
            names += ffCategoryName(cats[i]);
        }
        if (names.empty())
            names = "(none)";
        p.addRow({Table::num(target, 2), names,
                  Table::pct(plan.ffShare),
                  Table::num(plan.fit.total(), 3),
                  plan.meetsTarget ? "yes" : "no"});
    }
    p.print(std::cout);

    // Value bounding (Key result 5 co-design): clamp written-back
    // neurons and re-run the campaign.
    printHeading(std::cout,
                 "Value-bounding co-design (range checker on "
                 "writebacks)");
    Table b({"Clamp |value| <=", "datapath FIT", "local FIT",
             "dp+local vs unbounded"});
    double unbounded =
        base.fit.datapath + base.fit.local;
    b.addRow({"unbounded", Table::num(base.fit.datapath, 3),
              Table::num(base.fit.local, 3), "1.00x"});
    for (double clamp : {1000.0, 100.0, 20.0}) {
        CampaignConfig ccfg = cfg;
        ccfg.outputClampAbs = clamp;
        CampaignResult res = runCampaign(net, input, metric, ccfg);
        double bounded = res.fit.datapath + res.fit.local;
        b.addRow({Table::num(clamp, 0),
                  Table::num(res.fit.datapath, 3),
                  Table::num(res.fit.local, 3),
                  Table::num(bounded / unbounded, 2) + "x"});
    }
    b.print(std::cout);
    std::cout << "\nBounding the writeback values suppresses the "
                 "large perturbations that dominate application "
                 "errors (Key result 5), cutting the datapath/local "
                 "FIT without touching the MAC arithmetic.\n";
    return 0;
}
