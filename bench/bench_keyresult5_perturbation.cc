/**
 * @file
 * Regenerates Key result (5): among injections that corrupt exactly
 * one output neuron of the FP16 CNNs, small perturbations
 * (|delta| <= 100) rarely cause an application output error, while
 * large perturbations (|delta| > 100) do so far more often.
 */

#include <cmath>
#include <iostream>

#include "bench/common.hh"
#include "sim/stats.hh"

using namespace fidelity;
using namespace fidelity::bench;

int
main()
{
    int samples = scaledSamples(400);
    const double threshold = 100.0;

    Proportion small_fail, large_fail;
    RunningStat deltas;
    for (const char *name : {"inception", "resnet", "mobilenet"}) {
        CampaignResult res = runStudyCampaign(name, Precision::FP16,
                                              top1Metric(), samples);
        for (const auto &[delta, failed] : res.singleNeuronSamples) {
            if (std::isfinite(delta))
                deltas.add(delta);
            if (delta <= threshold)
                small_fail.add(failed);
            else
                large_fail.add(failed);
        }
    }

    printHeading(std::cout,
                 "Key result 5: single-faulty-neuron perturbation "
                 "magnitude vs application outcome (FP16 CNNs, Top-1)");
    Table t({"Perturbation", "samples", "P(output error)",
             "95% interval"});
    auto interval = [](const Proportion &p) {
        return "[" + Table::num(p.lower(), 3) + ", " +
               Table::num(p.upper(), 3) + "]";
    };
    t.addRow({"|delta| <= 100", Table::num(small_fail.trials()),
              Table::num(small_fail.mean(), 3), interval(small_fail)});
    t.addRow({"|delta| > 100", Table::num(large_fail.trials()),
              Table::num(large_fail.mean(), 3), interval(large_fail)});
    t.print(std::cout);

    std::cout << "\nfinite |delta| stats: mean "
              << Table::num(deltas.mean(), 2) << ", max "
              << Table::num(deltas.max(), 2) << " over "
              << deltas.count() << " samples\n"
              << "paper reference: < 4% for small vs > 45% for large "
                 "perturbations.\n";
    if (large_fail.trials() > 0 && small_fail.trials() > 0 &&
        large_fail.mean() > small_fail.mean())
        std::cout << "shape reproduced: large perturbations are "
                  << Table::num(large_fail.mean() /
                                    std::max(small_fail.mean(), 1e-6),
                                1)
                  << "x more likely to break the output.\n";
    return 0;
}
