/**
 * @file
 * Regenerates Table II: the NVDLA software fault models per flip-flop
 * category, with the %FF census column and the reuse-factor behaviour
 * measured by applying each model to live Conv / FC / MatMul layers.
 */

#include <algorithm>
#include <iostream>

#include "bench/common.hh"
#include "core/fault_models.hh"
#include "nn/conv.hh"
#include "nn/fc.hh"
#include "nn/init.hh"
#include "nn/matmul.hh"
#include "sim/table.hh"

using namespace fidelity;
using namespace fidelity::bench;

namespace
{

const char *
modelDescription(FFCategory cat)
{
    switch (cat) {
      case FFCategory::PreBufInput:
        return "bit-flip in one input; all users faulty";
      case FFCategory::PreBufWeight:
        return "bit-flip in one weight; all users faulty";
      case FFCategory::OperandInput:
        return "bit-flip in one input; 16 neurons (one group)";
      case FFCategory::OperandWeight:
        return "bit-flip in one weight; <= 16 neurons (one run)";
      case FFCategory::OutputPsum:
        return "bit-flip in one output word or partial sum";
      case FFCategory::LocalControl:
        return "random value at one output neuron";
      case FFCategory::GlobalControl:
        return "system failure (app error / time-out)";
    }
    return "";
}

const char *
rfColumn(FFCategory cat)
{
    switch (cat) {
      case FFCategory::PreBufInput:
      case FFCategory::PreBufWeight:
        return "all users";
      case FFCategory::OperandInput:
        return "16";
      case FFCategory::OperandWeight:
        return "<= 16";
      case FFCategory::OutputPsum:
      case FFCategory::LocalControl:
        return "1";
      case FFCategory::GlobalControl:
        return "ALL";
    }
    return "";
}

struct LayerUnderTest
{
    std::string name;
    const MacLayer *layer;
    const std::vector<const Tensor *> *ins;
    const Tensor *golden;
};

} // namespace

int
main()
{
    NvdlaConfig cfg;
    FaultModels models(cfg);

    printHeading(std::cout,
                 "Table II: NVDLA software fault models (k^2 = 16 MACs, "
                 "t = 16)");
    Table t({"Category", "%FF", "RF", "Software fault model"});
    for (FFCategory cat : allFFCategories())
        t.addRow({ffCategoryName(cat),
                  Table::pct(ffCategoryShare(cat)), rfColumn(cat),
                  modelDescription(cat)});
    t.print(std::cout);

    // Measure the realised faulty-neuron counts per layer type.
    Rng wrng(3);
    ConvSpec spec;
    spec.inC = 8;
    spec.outC = 32;
    spec.kh = 3;
    spec.kw = 3;
    spec.pad = 1;
    Conv2D conv("conv", spec, heWeights(wrng, 9u * 8 * 32, 72),
                smallBiases(wrng, 32));
    conv.setPrecision(Precision::FP16);
    Tensor cx(1, 8, 8, 8);
    for (auto &v : cx.data())
        v = static_cast<float>(wrng.normal(0, 1));
    std::vector<const Tensor *> cins{&cx};
    Tensor cgold = conv.forward(cins);

    FC fc("fc", 64, 48, heWeights(wrng, 64u * 48, 64),
          smallBiases(wrng, 48));
    fc.setPrecision(Precision::FP16);
    Tensor fx(1, 1, 1, 64);
    for (auto &v : fx.data())
        v = static_cast<float>(wrng.normal(0, 1));
    std::vector<const Tensor *> fins{&fx};
    Tensor fgold = fc.forward(fins);

    MatMulAB mm("matmul", true, 0.25f);
    mm.setPrecision(Precision::FP16);
    Tensor ma(1, 16, 1, 32), mb(1, 16, 1, 32);
    for (auto &v : ma.data())
        v = static_cast<float>(wrng.normal(0, 1));
    for (auto &v : mb.data())
        v = static_cast<float>(wrng.normal(0, 1));
    std::vector<const Tensor *> mins{&ma, &mb};
    Tensor mgold = mm.forward(mins);

    LayerUnderTest layers[] = {
        {"Conv", &conv, &cins, &cgold},
        {"FC", &fc, &fins, &fgold},
        {"MatMul", &mm, &mins, &mgold},
    };

    printHeading(std::cout,
                 "Measured faulty-neuron counts per layer type "
                 "(min/mean/max over samples)");
    int samples = scaledSamples(200);
    Table m({"Category", "Layer", "min", "mean", "max"});
    Rng rng(11);
    for (FFCategory cat : allFFCategories()) {
        if (cat == FFCategory::GlobalControl)
            continue;
        for (const LayerUnderTest &l : layers) {
            std::size_t mn = SIZE_MAX, mx = 0;
            double sum = 0.0;
            int counted = 0;
            for (int s = 0; s < samples; ++s) {
                FaultApplication app = models.apply(
                    cat, *l.layer, *l.ins, *l.golden, rng);
                if (app.neurons.empty())
                    continue;
                counted += 1;
                mn = std::min(mn, app.neurons.size());
                mx = std::max(mx, app.neurons.size());
                sum += static_cast<double>(app.neurons.size());
            }
            if (counted == 0)
                continue;
            m.addRow({ffCategoryName(cat), l.name,
                      Table::num(static_cast<std::uint64_t>(mn)),
                      Table::num(sum / counted, 1),
                      Table::num(static_cast<std::uint64_t>(mx))});
        }
    }
    m.print(std::cout);
    std::cout << "\nGlobalControl: always modelled as system failure "
                 "(no neuron set).\n";
    return 0;
}
