/**
 * @file
 * Dense vs. incremental injection throughput.
 *
 * Runs the same campaign twice per CNN — once with the dense
 * forwardFrom re-execution and once with the fault-cone incremental
 * engine — at an equal thread count and seed, and reports the
 * injections/sec speedup together with a checksum proving the two
 * CampaignResults are bit-identical (the engine's correctness
 * contract: incrementality is purely a performance knob).
 */

#include <cstdint>
#include <cstdio>

#include "bench/common.hh"
#include "sim/thread_pool.hh"

using namespace fidelity;
using namespace fidelity::bench;

int
main()
{
    const int samples = scaledSamples(40);
    const int threads = static_cast<int>(ThreadPool::hardwareThreads());

    printHeading(std::cout,
                 "Incremental fault-cone engine speedup (FP16, " +
                     std::to_string(samples) +
                     " samples per layer/category, " +
                     std::to_string(threads) + " threads)");

    Table t({"network", "dense s", "incr s", "dense inj/s",
             "incr inj/s", "speedup", "identical"});
    std::vector<ThroughputRecord> records;
    bool all_identical = true;
    double best_speedup = 0.0;
    for (const std::string network : {"resnet", "mobilenet",
                                      "inception"}) {
        Network net = buildNetwork(network, 2020);
        Tensor input = defaultInputFor(network, 2021);
        net.setPrecision(Precision::FP16);

        CampaignConfig cfg;
        cfg.samplesPerCategory = samples;
        cfg.seed = 2027;
        cfg.numThreads = threads;
        // This bench isolates the fault-cone engine itself; the
        // fault-batched layer on top has its own gate
        // (bench_batched_injection).
        cfg.batchWidth = 1;

        double secs[2] = {0.0, 0.0};
        std::uint64_t checksum[2] = {0, 0};
        std::uint64_t injections = 0;
        for (int mode = 0; mode < 2; ++mode) {
            cfg.incremental = mode == 1;
            CampaignResult res;
            secs[mode] = timeSeconds([&] {
                res = runCampaign(net, input, top1Metric(), cfg);
            });
            checksum[mode] = campaignChecksum(res);
            injections = res.totalInjections;

            ThroughputRecord rec;
            rec.bench = "incremental_speedup";
            rec.network = network;
            rec.mode = cfg.incremental ? "engine_incremental"
                                       : "engine_dense";
            rec.threads = threads;
            rec.batchWidth = cfg.batchWidth;
            rec.injections = injections;
            rec.wallSeconds = secs[mode];
            records.push_back(rec);
        }
        bool identical = checksum[0] == checksum[1];
        all_identical = all_identical && identical;
        double speedup = secs[1] > 0.0 ? secs[0] / secs[1] : 0.0;
        best_speedup = std::max(best_speedup, speedup);
        double dense_rate = static_cast<double>(injections) / secs[0];
        double incr_rate = static_cast<double>(injections) / secs[1];
        t.addRow({network, Table::num(secs[0], 2),
                  Table::num(secs[1], 2), Table::num(dense_rate, 0),
                  Table::num(incr_rate, 0), Table::num(speedup, 2),
                  identical ? "yes" : "NO"});
    }
    t.print(std::cout);
    writeThroughputJson("incremental_speedup", records);

    std::cout << (all_identical
                      ? "\nresults bit-identical between dense and "
                        "incremental modes\n"
                      : "\nERROR: dense and incremental results "
                        "differ\n");
    std::printf("best speedup: %.2fx (target >= 3x at paper-scale "
                "samples)\n",
                best_speedup);
    std::cout << std::flush;
    return all_identical ? 0 : 1;
}
