/**
 * @file
 * Regenerates the Sec. IV validation study (Table III workloads): for
 * every sampled (flip-flop, cycle) fault site, the RTL-style cycle
 * simulation is compared against the software fault model derived for
 * that site.  The paper's result — datapath models match exactly,
 * local-control models match the faulty-neuron set, global-control
 * faults almost always fail — is reproduced row by row.
 */

#include <iostream>

#include "bench/common.hh"
#include "core/validation.hh"
#include "sim/table.hh"
#include "workloads/models.hh"

using namespace fidelity;
using namespace fidelity::bench;

int
main()
{
    int samples = scaledSamples(500);
    auto workloads = buildValidationWorkloads(2020);
    NvdlaConfig cfg;

    printHeading(std::cout,
                 "Sec. IV validation: RTL-style injection vs software "
                 "fault models (FP16)");
    std::cout << "fault sites per workload: " << samples
              << " (paper: 10K per workload, 60K total)\n\n";

    Table t({"Workload", "sites", "non-masked", "timeouts",
             "mask agree", "set match", "value match", "order match"});

    std::uint64_t all_cases = 0, all_non_masked = 0, all_timeouts = 0;
    std::uint64_t dp_both = 0, dp_set = 0, dp_val = 0, dp_ord = 0;
    std::uint64_t lc_both = 0, lc_set = 0;
    std::uint64_t g_cases = 0, g_fail = 0;
    std::uint64_t mask_agree = 0, non_global = 0;

    for (auto &w : workloads) {
        Validator val(cfg, *w.layer, w.ins());
        Rng rng(99);
        ValidationReport rep = val.run(samples, rng);

        std::uint64_t wl_agree = 0, wl_non_global = 0;
        std::uint64_t wl_both = 0, wl_set = 0, wl_val = 0, wl_ord = 0;
        for (FFCategory cat : allFFCategories()) {
            const CategoryValidation &cv = rep.forCategory(cat);
            if (cat == FFCategory::GlobalControl) {
                g_cases += cv.cases;
                g_fail += cv.rtlNonMasked;
                continue;
            }
            wl_agree += cv.maskAgree;
            wl_non_global += cv.cases;
            wl_both += cv.bothNonMasked;
            wl_set += cv.setMatch;
            wl_ord += cv.orderMatch;
            if (cat == FFCategory::LocalControl) {
                lc_both += cv.bothNonMasked;
                lc_set += cv.setMatch;
            } else {
                dp_both += cv.bothNonMasked;
                dp_set += cv.setMatch;
                dp_val += cv.valueMatch;
                dp_ord += cv.orderMatch;
                wl_val += cv.valueMatch;
            }
        }
        mask_agree += wl_agree;
        non_global += wl_non_global;
        all_cases += rep.totalCases;
        all_non_masked += rep.totalNonMasked;
        all_timeouts += rep.totalTimeouts;

        auto ratio = [](std::uint64_t n, std::uint64_t d) {
            return d ? Table::pct(static_cast<double>(n) / d)
                     : std::string("-");
        };
        t.addRow({w.name, Table::num(rep.totalCases),
                  Table::num(rep.totalNonMasked),
                  Table::num(rep.totalTimeouts),
                  ratio(wl_agree, wl_non_global),
                  ratio(wl_set, wl_both), ratio(wl_val, wl_both),
                  ratio(wl_ord, wl_both)});
    }
    t.print(std::cout);

    // Directed experiments for the rare classes, as the paper's
    // analysis isolates local-control and global-control cases.
    printHeading(std::cout,
                 "Directed local-control validation (valid bits, mux "
                 "selects)");
    int directed = scaledSamples(120);
    Table d({"Workload", "cases", "non-masked", "mask agree",
             "set match (RF = 1)"});
    std::uint64_t dl_both = 0, dl_set = 0;
    for (auto &w : workloads) {
        Validator val(cfg, *w.layer, w.ins());
        Rng rng(55);
        std::uint64_t cases = 0, non_masked = 0, agree = 0, both = 0,
                      set = 0;
        for (int i = 0; i < directed; ++i) {
            FFClass cls = i % 2 == 0 ? FFClass::LocalValid
                                     : FFClass::LocalMuxSel;
            CaseResult cr = val.runOneDirected(cls, rng);
            cases += 1;
            non_masked += !cr.rtlMasked;
            agree += cr.rtlMasked == cr.predMasked;
            if (!cr.rtlMasked && !cr.predMasked) {
                both += 1;
                set += cr.setMatch && cr.rtlCount == 1;
            }
        }
        dl_both += both;
        dl_set += set;
        d.addRow({w.name, Table::num(cases), Table::num(non_masked),
                  Table::pct(static_cast<double>(agree) / cases),
                  both ? Table::pct(static_cast<double>(set) / both)
                       : std::string("-")});
    }
    d.print(std::cout);

    // Global-control masking among *active* sites (the framework's
    // always-failure model is conditioned on activeness).
    printHeading(std::cout,
                 "Directed global-control validation");
    Table g({"Workload", "active sites", "failures", "failure rate"});
    for (auto &w : workloads) {
        Validator val(cfg, *w.layer, w.ins());
        Rng rng(77);
        std::uint64_t active = 0, fail = 0;
        for (int i = 0; i < directed * 2; ++i) {
            FFClass cls = i % 2 == 0 ? FFClass::GlobalConfig
                                     : FFClass::GlobalCounter;
            CaseResult cr = val.runOneDirected(cls, rng);
            if (!val.globalSiteActive(cr.site))
                continue;
            active += 1;
            fail += !cr.rtlMasked;
        }
        g.addRow({w.name, Table::num(active), Table::num(fail),
                  active ? Table::pct(static_cast<double>(fail) / active)
                         : std::string("-")});
    }
    g.print(std::cout);

    printHeading(std::cout, "Aggregate results");
    auto pct = [](std::uint64_t n, std::uint64_t d) {
        return d ? 100.0 * static_cast<double>(n) / d : 0.0;
    };
    std::cout << "total fault sites:            " << all_cases << "\n"
              << "non-masked outcomes:          " << all_non_masked
              << " (timeouts: " << all_timeouts << ")\n"
              << "masking agreement (non-glob): "
              << Table::num(pct(mask_agree, non_global), 2) << "%\n"
              << "datapath: set match "
              << Table::num(pct(dp_set, dp_both), 2) << "%, value match "
              << Table::num(pct(dp_val, dp_both), 2)
              << "%, order match "
              << Table::num(pct(dp_ord, dp_both), 2) << "% (of "
              << dp_both << " non-masked cases)\n"
              << "local control: set match "
              << Table::num(pct(lc_set + dl_set, lc_both + dl_both), 2)
              << "% (of " << lc_both + dl_both
              << " incl. directed; values modelled as random)\n"
              << "global control: " << Table::num(pct(g_fail, g_cases), 2)
              << "% failures (" << g_cases
              << " cases; paper observes ~90% on NVDLA)\n"
              << "\nPaper reference: all 8262 datapath cases matched "
                 "exactly; all 138 local-control cases matched the "
                 "faulty-neuron set; 72/60K timed out.\n";
    return 0;
}
