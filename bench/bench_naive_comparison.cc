/**
 * @file
 * Regenerates the Sec. VI accuracy comparison: a naive software fault
 * injector (single bit-flip in a single architectural state) heavily
 * underestimates the accelerator FIT rate because it misses global
 * control faults, multi-neuron reuse effects, and FF activeness.
 */

#include <iostream>

#include "bench/common.hh"
#include "core/naive.hh"
#include "sim/stats.hh"

using namespace fidelity;
using namespace fidelity::bench;

int
main()
{
    int samples = scaledSamples(150);
    int naive_samples = scaledSamples(4000);

    printHeading(std::cout,
                 "Sec. VI: FIdelity vs naive architectural-state fault "
                 "injection (FP16, Top-1)");
    Table t({"Network", "FIdelity FIT", "naive mask prob", "naive FIT",
             "underestimation"});

    double worst = 0.0;
    for (const char *name : {"inception", "resnet", "mobilenet",
                             "yolo"}) {
        CorrectnessFn metric = std::string(name) == "yolo"
            ? detectionMetric(0.10)
            : top1Metric();
        CampaignResult res =
            runStudyCampaign(name, Precision::FP16, metric, samples);

        // Naive baseline on the same network/input.
        Network net = buildNetwork(name, 2020);
        Tensor input = defaultInputFor(name, 2021);
        net.setPrecision(Precision::FP16);
        Injector injector(net, input, NvdlaConfig{});
        NaiveInjector naive(injector);
        Rng rng(13);
        Proportion masked;
        for (int i = 0; i < naive_samples; ++i)
            masked.add(naive.inject(metric, rng));

        FitParams params; // same raw rate / census as the campaign
        double naive_fit =
            NaiveInjector::naiveFit(params, masked.mean());
        double ratio = naive_fit > 0.0
            ? res.fit.total() / naive_fit
            : std::numeric_limits<double>::infinity();
        worst = std::max(worst, ratio);
        t.addRow({name, Table::num(res.fit.total(), 3),
                  Table::num(masked.mean(), 4),
                  Table::num(naive_fit, 3),
                  Table::num(ratio, 1) + "x"});
    }
    t.print(std::cout);
    std::cout << "\nworst-case underestimation here: "
              << Table::num(worst, 1)
              << "x (paper: up to 25x across workloads).\n"
              << "Such optimistic estimates hide real safety risk.\n";
    return 0;
}
