/**
 * @file
 * Ablation of FIdelity's design choices (DESIGN.md): what the FIT
 * estimate looks like when the activeness analysis (step 1 of the
 * flow) is disabled or its class-1 estimate varied — quantifying how
 * much each modelling ingredient contributes, and how sensitive the
 * result is to the estimated inputs the framework allows users to
 * vary.
 */

#include <iostream>

#include "bench/common.hh"

using namespace fidelity;
using namespace fidelity::bench;

namespace
{

FitBreakdown
refit(const CampaignResult &base, const Network &net,
      const Tensor &input, const ActivenessModel &am, bool no_activeness)
{
    // Recompute Eq. 2 from the campaign's measured masking with a
    // different activeness model (no re-injection needed).
    std::vector<LayerFitInput> layers = base.layerInputs;
    auto acts = net.forwardAll(input);
    auto macs = net.macNodes();
    for (std::size_t li = 0; li < layers.size(); ++li) {
        EngineLayer el = timingLayer(net, macs[li], acts);
        LayerTiming t = estimateTiming(NvdlaConfig{}, el);
        const auto &cats = allFFCategories();
        for (std::size_t c = 0; c < cats.size(); ++c) {
            layers[li].stats[c].probInactive = no_activeness
                ? 0.0
                : am.probInactive(cats[c], net.precision(), t);
        }
    }
    return acceleratorFit(FitParams{}, layers);
}

} // namespace

int
main()
{
    int samples = scaledSamples(150);

    Network net = buildResNet(2020);
    Tensor input = defaultInputFor("resnet", 2021);
    net.setPrecision(Precision::FP16);

    CampaignConfig cfg;
    cfg.samplesPerCategory = samples;
    cfg.seed = 11;
    CampaignResult base = runCampaign(net, input, top1Metric(), cfg);

    printHeading(std::cout,
                 "Ablation: activeness analysis (resnet, FP16, Top-1)");
    Table t({"Configuration", "datapath", "local", "global", "total"});

    {
        auto cells = fitCells(base.fit);
        t.addRow({"full FIdelity flow (class 1 = 5%)", cells[0],
                  cells[1], cells[2], cells[3]});
    }
    {
        ActivenessModel am;
        FitBreakdown no_act = refit(base, net, input, am, true);
        auto cells = fitCells(no_act);
        t.addRow({"activeness disabled (all FFs active)", cells[0],
                  cells[1], cells[2], cells[3]});
    }
    for (double c1 : {0.0, 0.15, 0.30}) {
        ActivenessModel am;
        am.componentUnusedFrac = c1;
        FitBreakdown fit = refit(base, net, input, am, false);
        auto cells = fitCells(fit);
        t.addRow({"class-1 fraction = " + Table::pct(c1, 0), cells[0],
                  cells[1], cells[2], cells[3]});
    }
    t.print(std::cout);

    std::cout << "\nDisabling activeness overestimates the FIT rate "
                 "(inactive-FF faults are always masked in reality); "
                 "the class-1 estimate shifts results smoothly, which "
                 "is why FIdelity treats it as a sensitivity-analysis "
                 "input.\n";
    return 0;
}
