/**
 * @file
 * Distributed-campaign throughput and bit-identity smoke.
 *
 * Runs one fixed-schedule ResNet campaign four ways on one box — in
 * process, then through the service coordinator with 1, 2, and 4
 * worker processes (fork/exec of the fidelity_service binary) — and
 * gates on the tentpole contract: every distributed merge must
 * reproduce the exact campaignChecksum and a byte-identical manifest
 * "results" section of the single-process run.  A final leg SIGKILLs
 * a worker mid-shard (the --die-after-results fault hook) and checks
 * the re-issued leases still converge to the same bits.  Exits
 * non-zero on any divergence — this is the CI smoke for the service.
 */

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench/common.hh"
#include "sim/service.hh"

using namespace fidelity;
using namespace fidelity::bench;

namespace
{

std::string
socketPath(const std::string &tag)
{
    return "/tmp/fidsvc-bench-" + std::to_string(::getpid()) + "-" +
           tag + ".sock";
}

std::string
readWholeFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return {};
    return std::string((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
}

pid_t
spawnWorker(const std::string &addr, const std::string &name,
            std::uint64_t die_after_results = 0)
{
    const pid_t pid = ::fork();
    if (pid != 0)
        return pid;
    const std::string connect = "--connect=" + addr;
    const std::string worker_name = "--name=" + name;
    const std::string die =
        "--die-after-results=" + std::to_string(die_after_results);
    ::execl(FIDELITY_SERVICE_BIN, FIDELITY_SERVICE_BIN, "worker",
            connect.c_str(), worker_name.c_str(), die.c_str(),
            static_cast<char *>(nullptr));
    std::perror("execl fidelity_service");
    ::_exit(127);
}

void
reap(pid_t pid)
{
    int status = 0;
    ::waitpid(pid, &status, 0);
}

} // namespace

int
main()
{
    const int samples = scaledSamples(40);
    ServiceRequest req;
    req.network = "resnet";
    req.samplesPerCategory = samples;
    req.shardGrain = 8;
    req.seed = 2029;

    printHeading(std::cout,
                 "Distributed campaign fan-out (" + req.network +
                     ", FP16, " + std::to_string(samples) +
                     " samples per layer/category)");

    // Ground truth: the single-process engine, manifest included.
    const std::string truth_manifest =
        "bench_distributed_truth.manifest.json";
    Network net = buildServiceNetwork(req);
    Tensor input = serviceInput(req);
    CampaignConfig cfg = campaignConfigFor(req);
    cfg.reportPath = truth_manifest;
    CampaignResult truth;
    const double base_secs = timeSeconds(
        [&] { truth = runCampaign(net, input, serviceMetric(req), cfg); });
    const std::uint64_t want = campaignChecksum(truth);
    const std::string want_results =
        jsonSection(readWholeFile(truth_manifest), "results");

    Table t({"workers", "wall s", "inj/s", "speedup", "checksum",
             "identical"});
    char digest[20];
    std::snprintf(digest, sizeof(digest), "%016llx",
                  static_cast<unsigned long long>(want));
    t.addRow({"in-process", Table::num(base_secs, 2),
              Table::num(static_cast<double>(truth.totalInjections) /
                             base_secs, 0),
              "1.00", digest, "-"});

    std::vector<ThroughputRecord> records;
    {
        ThroughputRecord rec;
        rec.bench = "distributed_campaign";
        rec.network = req.network;
        rec.mode = "in_process";
        rec.threads = 1;
        rec.batchWidth = req.batchWidth;
        rec.injections = truth.totalInjections;
        rec.wallSeconds = base_secs;
        records.push_back(rec);
    }

    bool all_identical = true;
    for (int workers : {1, 2, 4}) {
        const std::string sock =
            socketPath("w" + std::to_string(workers));
        const std::string manifest =
            "bench_distributed_" + std::to_string(workers) +
            ".manifest.json";
        std::vector<pid_t> pids;
        for (int w = 0; w < workers; ++w)
            pids.push_back(spawnWorker("unix:" + sock,
                                       "w" + std::to_string(w)));
        CoordinatorOptions copts;
        copts.listenAddr = "unix:" + sock;
        copts.leaseShards = 8;
        copts.reportPath = manifest;
        CoordinatorRun run;
        const double secs = timeSeconds(
            [&] { run = runCampaignCoordinator(req, copts); });
        for (pid_t pid : pids)
            reap(pid);

        const std::uint64_t got =
            run.complete ? campaignChecksum(run.result) : 0;
        const bool checksum_ok = run.complete && got == want;
        const bool manifest_ok =
            jsonSection(readWholeFile(manifest), "results") ==
            want_results;
        all_identical = all_identical && checksum_ok && manifest_ok;

        std::snprintf(digest, sizeof(digest), "%016llx",
                      static_cast<unsigned long long>(got));
        t.addRow({std::to_string(workers), Table::num(secs, 2),
                  Table::num(static_cast<double>(
                                 run.result.totalInjections) / secs, 0),
                  Table::num(base_secs / secs, 2), digest,
                  checksum_ok && manifest_ok ? "yes" : "NO"});

        ThroughputRecord rec;
        rec.bench = "distributed_campaign";
        rec.network = req.network;
        rec.mode = "distributed_" + std::to_string(workers) + "w";
        rec.threads = workers;
        rec.batchWidth = req.batchWidth;
        rec.injections = run.result.totalInjections;
        rec.wallSeconds = secs;
        records.push_back(rec);
        std::remove(manifest.c_str());
    }
    t.print(std::cout);
    writeThroughputJson("distributed_campaign", records);
    std::remove(truth_manifest.c_str());
    std::cout << (all_identical
                      ? "\ndistributed merges bit-identical to the "
                        "in-process run\n"
                      : "\nERROR: a distributed merge diverged from "
                        "the in-process run\n");

    // Fault leg: one worker dies mid-shard (SIGKILL while holding a
    // lease); the survivor absorbs the re-issued chunks and the merge
    // must still be bit-identical.
    bool kill_identical = false;
    {
        const std::string sock = socketPath("kill");
        const pid_t victim = spawnWorker("unix:" + sock, "victim",
                                         /*die_after_results=*/1);
        const pid_t survivor = spawnWorker("unix:" + sock, "survivor");
        CoordinatorOptions copts;
        copts.listenAddr = "unix:" + sock;
        copts.leaseShards = 8;
        CoordinatorRun run;
        const double secs = timeSeconds(
            [&] { run = runCampaignCoordinator(req, copts); });
        reap(victim);
        reap(survivor);
        kill_identical =
            run.complete && campaignChecksum(run.result) == want;
        std::uint64_t expired = 0;
        for (const WorkerProcessTelemetry &w : run.topology.workers)
            expired += w.leasesExpired;
        std::cout << (kill_identical
                          ? "worker-death leg bit-identical ("
                          : "ERROR: worker-death leg diverged (")
                  << expired << " lease(s) re-issued, "
                  << Table::num(secs, 2) << " s)\n"
                  << std::flush;
    }

    return all_identical && kill_identical ? 0 : 1;
}
