/**
 * @file
 * Regenerates Table I: the Reuse Factor Analysis summary for datapath
 * flip-flop categories, with the RF values computed by Algorithm 1 for
 * the NVDLA-like configuration (k = 4, t = 16).
 */

#include <iostream>

#include "accel/nvdla_config.hh"
#include "core/ff_descriptors.hh"
#include "core/fault_models.hh"
#include "sim/table.hh"

using namespace fidelity;

int
main()
{
    NvdlaConfig cfg;
    printHeading(std::cout,
                 "Table I: Reuse Factor Analysis summary for datapath "
                 "FFs");
    std::cout << cfg.str() << "\n\n";

    Table t({"Faulty FF position", "Variable types", "How derived",
             "RF (this config)"});
    t.addRow({"Before each level of on-chip memory",
              "input, weight, bias",
              "scheduling/reuse algorithm (one bad memory word)",
              "all users of the value"});
    t.addRow({"Between L1 memory & MACs, inside MACs",
              "input, weight, bias", "Algorithm 1",
              "input: " +
                  std::to_string(
                      analyzeReuseFactor(nvdlaTargetA4(cfg.k)).rf) +
                  ", weight: " +
                  std::to_string(
                      analyzeReuseFactor(nvdlaTargetA2(cfg.t)).rf)});
    t.addRow({"Inside and after MAC units", "partial sum, output",
              "scheduling/reuse algorithm", "1"});
    t.addRow({"After MAC units", "bias",
              "Algorithm 1 (neurons using the bias)", "1 per drain"});
    t.print(std::cout);

    printHeading(std::cout, "Datapath RF property (4): monotone flows");
    Table m({"Weight-flow FF", "Stage", "RF"});
    m.addRow({"a1 (pre-hold register)", "earlier",
              std::to_string(analyzeReuseFactor(nvdlaTargetA1(cfg.t))
                                 .rf)});
    m.addRow({"a2 (hold register)", "middle",
              std::to_string(analyzeReuseFactor(nvdlaTargetA2(cfg.t))
                                 .rf)});
    m.addRow({"a3 (at multiplier)", "later",
              std::to_string(analyzeReuseFactor(nvdlaTargetA3()).rf)});
    m.print(std::cout);
    std::cout << "\nEarlier stages never have a smaller RF than later "
                 "ones, so connectivity from the target FF to the "
                 "compute units suffices as the hardware input.\n";
    return 0;
}
