/**
 * @file
 * fidelity_service — the distributed campaign service binary.
 *
 * Subcommands (addresses are "unix:<path>" or "tcp:<host>:<port>"):
 *
 *   coordinate --listen=A [--request=JSON] [--lease-shards=N]
 *              [--lease-timeout=S] [--checkpoint=PATH]
 *              [--resume-from=PATH] [--report=PATH]
 *              [--stop-after-chunks=N]
 *       Serve one campaign's shard plan to workers, merge the
 *       journals, print the campaignChecksum.  Exits non-zero when
 *       the run is incomplete (stop hook).
 *
 *   worker --connect=A [--name=S] [--threads=N] [--heartbeat=S]
 *          [--connect-timeout=S] [--die-after-results=N]
 *       Execute leased shard ranges for a coordinator.
 *
 *   daemon --listen=A [--workers=N|--max-concurrent=N]
 *          [--max-queue=N] [--drr-quantum=N] [--state-dir=DIR]
 *          [--checkpoint-every=S] [--max-requests=N]
 *          [--recv-deadline=S] [--send-deadline=S]
 *       Long-running request server: REQUEST {campaign json} in,
 *       RESPONSE {manifest json} out.  A fixed pool of N workers
 *       drains a bounded queue (overflow gets a typed "busy" error)
 *       under deficit-round-robin fairness across tenants; request
 *       failures answer that one client, never the process.
 *
 *   submit --connect=A --request=JSON [--tenant=NAME]
 *       Send one campaign request to a daemon, print the response.
 *
 *   status --connect=A
 *       Print a daemon's queue/worker/metric status document.
 *
 *   drain --connect=A
 *       Ask a daemon to finish in-flight campaigns and exit;
 *       queued-but-unstarted requests get a "draining" rejection.
 */

#include <cstdio>
#include <iostream>
#include <string>

#include "sim/logging.hh"
#include "sim/parse.hh"
#include "sim/service.hh"

using namespace fidelity;

namespace
{

const char *kUsage =
    "usage: fidelity_service "
    "<coordinate|worker|daemon|submit|status|drain> "
    "[--key=value...]\n"
    "run `fidelity_service` with no arguments for the full option "
    "list per subcommand (see the file header of "
    "src/fidelity_service.cc and DESIGN.md §14)\n";

/** --key=value option cursor over argv. */
struct Options
{
    int argc;
    char **argv;

    /** Value of --key, or `fallback` when absent. */
    std::string
    get(const std::string &key, const std::string &fallback) const
    {
        const std::string prefix = "--" + key + "=";
        std::string value = fallback;
        for (int i = 2; i < argc; ++i) {
            const std::string arg = argv[i];
            if (arg.rfind(prefix, 0) == 0)
                value = arg.substr(prefix.size());
        }
        return value;
    }

    long long
    getInt(const std::string &key, long long fallback, long long lo,
           long long hi) const
    {
        const std::string text = get(key, "");
        if (text.empty())
            return fallback;
        return parseIntArg("--" + key, text, lo, hi);
    }

    double
    getDouble(const std::string &key, double fallback, double lo,
              double hi) const
    {
        const std::string text = get(key, "");
        if (text.empty())
            return fallback;
        return parseDoubleArg("--" + key, text, lo, hi);
    }

    /** Reject mistyped options: every --key must be known. */
    void
    check(std::initializer_list<const char *> known) const
    {
        for (int i = 2; i < argc; ++i) {
            const std::string arg = argv[i];
            fatal_if(arg.rfind("--", 0) != 0 ||
                         arg.find('=') == std::string::npos,
                     "malformed option '", arg,
                     "' (expected --key=value)");
            const std::string key =
                arg.substr(2, arg.find('=') - 2);
            bool ok = false;
            for (const char *k : known)
                if (key == k)
                    ok = true;
            fatal_if(!ok, "unknown option --", key, "\n", kUsage);
        }
    }
};

ServiceRequest
requestFromOption(const Options &opts)
{
    const std::string json = opts.get("request", "");
    if (json.empty())
        return ServiceRequest{}; // the default resnet/fp16 campaign
    ServiceRequest req;
    std::string err;
    fatal_if(!tryParseServiceRequest(json, req, err),
             "bad --request: ", err);
    return req;
}

int
coordinateMain(const Options &opts)
{
    opts.check({"listen", "request", "lease-shards", "lease-timeout",
                "checkpoint", "resume-from", "report",
                "stop-after-chunks"});
    CoordinatorOptions copts;
    copts.listenAddr = opts.get("listen", "");
    fatal_if(copts.listenAddr.empty(), "coordinate needs --listen\n",
             kUsage);
    copts.leaseShards = static_cast<std::uint64_t>(
        opts.getInt("lease-shards", 8, 1, 1 << 20));
    copts.leaseTimeoutSec =
        opts.getDouble("lease-timeout", 30.0, 0.1, 1e6);
    copts.checkpointPath = opts.get("checkpoint", "");
    copts.resumeFrom = opts.get("resume-from", "");
    copts.reportPath = opts.get("report", "");
    copts.stopAfterMergedChunks = static_cast<std::uint64_t>(
        opts.getInt("stop-after-chunks", 0, 0, 1LL << 40));

    CoordinatorRun run =
        runCampaignCoordinator(requestFromOption(opts), copts);
    if (!run.complete)
        return 3; // partial: journals checkpointed, nothing merged
    std::printf("campaign_checksum 0x%016llx\n",
                static_cast<unsigned long long>(
                    campaignChecksum(run.result)));
    return 0;
}

int
workerMain(const Options &opts)
{
    opts.check({"connect", "name", "threads", "heartbeat",
                "connect-timeout", "die-after-results"});
    WorkerOptions wopts;
    wopts.connectAddr = opts.get("connect", "");
    fatal_if(wopts.connectAddr.empty(), "worker needs --connect\n",
             kUsage);
    wopts.name = opts.get("name", "worker");
    wopts.threads =
        static_cast<int>(opts.getInt("threads", 1, 1, 4096));
    wopts.heartbeatSec = opts.getDouble("heartbeat", 5.0, 0.1, 1e6);
    wopts.connectTimeoutSec =
        opts.getDouble("connect-timeout", 20.0, 0.1, 1e6);
    wopts.dieAfterResults = static_cast<std::uint64_t>(
        opts.getInt("die-after-results", 0, 0, 1LL << 40));
    return runServiceWorker(wopts);
}

int
daemonMain(const Options &opts)
{
    opts.check({"listen", "workers", "max-concurrent", "max-queue",
                "drr-quantum", "state-dir", "checkpoint-every",
                "max-requests", "recv-deadline", "send-deadline"});
    DaemonOptions dopts;
    dopts.listenAddr = opts.get("listen", "");
    fatal_if(dopts.listenAddr.empty(), "daemon needs --listen\n",
             kUsage);
    // --workers is the pool-size name; --max-concurrent remains as
    // the historical alias (--workers wins when both are given).
    dopts.maxConcurrent =
        static_cast<int>(opts.getInt("max-concurrent", 2, 1, 1024));
    dopts.maxConcurrent = static_cast<int>(
        opts.getInt("workers", dopts.maxConcurrent, 1, 1024));
    dopts.maxQueue =
        static_cast<int>(opts.getInt("max-queue", 32, 1, 1 << 20));
    dopts.drrQuantum = static_cast<int>(
        opts.getInt("drr-quantum", 256, 1, 1 << 30));
    dopts.stateDir = opts.get("state-dir", "");
    dopts.checkpointEverySec =
        opts.getDouble("checkpoint-every", 5.0, 0.0, 1e6);
    dopts.maxRequests = static_cast<std::uint64_t>(
        opts.getInt("max-requests", 0, 0, 1LL << 40));
    dopts.recvDeadlineSec =
        opts.getDouble("recv-deadline", 30.0, 0.1, 1e6);
    dopts.sendDeadlineSec =
        opts.getDouble("send-deadline", 30.0, 0.1, 1e6);
    return runServiceDaemon(dopts);
}

int
submitMain(const Options &opts, bool drain)
{
    opts.check({"connect", "request", "tenant"});
    const std::string addr = opts.get("connect", "");
    fatal_if(addr.empty(), (drain ? "drain" : "submit"),
             " needs --connect\n", kUsage);
    std::string request = opts.get("request", "");
    const std::string tenant = opts.get("tenant", "");
    if (!drain && (request.empty() || !tenant.empty())) {
        // Route through the typed request so --tenant stamps the
        // scheduling label without the caller hand-editing JSON.
        ServiceRequest req;
        std::string err;
        if (!request.empty())
            fatal_if(!tryParseServiceRequest(request, req, err),
                     "bad --request: ", err);
        if (!tenant.empty())
            req.tenant = tenant;
        request = serviceRequestJson(req);
    }
    std::string response, err;
    if (!submitServiceRequest(addr, request, drain, response, err)) {
        std::fprintf(stderr, "error: %s\n", err.c_str());
        return 1;
    }
    std::printf("%s\n", response.c_str());
    return 0;
}

int
statusMain(const Options &opts)
{
    opts.check({"connect"});
    const std::string addr = opts.get("connect", "");
    fatal_if(addr.empty(), "status needs --connect\n", kUsage);
    std::string response, err;
    if (!queryServiceStatus(addr, response, err)) {
        std::fprintf(stderr, "error: %s\n", err.c_str());
        return 1;
    }
    std::printf("%s\n", response.c_str());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::cout << kUsage;
        return 2;
    }
    const std::string cmd = argv[1];
    Options opts{argc, argv};
    if (cmd == "coordinate")
        return coordinateMain(opts);
    if (cmd == "worker")
        return workerMain(opts);
    if (cmd == "daemon")
        return daemonMain(opts);
    if (cmd == "submit")
        return submitMain(opts, /*drain=*/false);
    if (cmd == "status")
        return statusMain(opts);
    if (cmd == "drain")
        return submitMain(opts, /*drain=*/true);
    if (cmd == "-h" || cmd == "--help") {
        std::cout << kUsage;
        return 0;
    }
    fatal("unknown subcommand '", cmd, "'\n", kUsage);
}
