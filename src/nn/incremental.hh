/**
 * @file
 * Incremental re-execution of a network under a localised fault.
 *
 * A Table-II fault corrupts at most RF neurons of one layer output
 * (usually 1-16), yet the dense injection path recomputes every
 * downstream layer in full.  The incremental engine instead walks the
 * downstream graph carrying, per node, a bounding box of elements that
 * may differ from the cached golden activation (the fault cone):
 *
 *  - Spatially local layers (conv / pool / activation / elementwise /
 *    concat / slice) recompute only their cone via
 *    Layer::forwardRegion; the rest of the output is the golden value.
 *  - Globally mixing layers (FC / matmul / softmax / attention / LSTM)
 *    report a full-tensor cone and recompute densely, as does any
 *    layer whose cone covers more than `denseThreshold` of its output.
 *  - After each recompute the engine compares the cone against the
 *    golden activation bit-for-bit and shrinks it to the box that
 *    actually changed.  When the delta dies (ReLU clipping, pooling,
 *    quantisation), downstream layers are skipped entirely and the
 *    injection is classified against the cached golden output — the
 *    early masking exit.
 *
 * The result is bit-identical to Network::forwardFrom: every element
 * inside a cone is produced by the same canonical accumulation order
 * the dense kernels use, and every element outside a cone provably
 * cannot differ from its golden value.  All per-node scratch
 * activations live in the engine and are reused across injections, so
 * one engine per campaign worker makes the hot loop allocation-free at
 * steady state.
 */

#ifndef FIDELITY_NN_INCREMENTAL_HH
#define FIDELITY_NN_INCREMENTAL_HH

#include <cstdint>
#include <vector>

#include "nn/network.hh"
#include "nn/region.hh"

namespace fidelity
{

/** Tuning knobs of the incremental engine. */
struct IncrementalOptions
{
    /** Master switch; false degrades every layer to dense recompute
     *  (still reusing the engine's scratch buffers). */
    bool enabled = true;

    /** Cone-volume fraction of the output above which a layer falls
     *  back to the dense kernel (region bookkeeping stops paying). */
    double denseThreshold = 0.5;

    /** Shrink cones to the observed delta and stop when it dies. */
    bool earlyExit = true;
};

/** Per-run observability counters. */
struct IncrementalStats
{
    /** The delta converged to zero before reaching the output. */
    bool earlyMasked = false;

    int layersIncremental = 0; //!< recomputed via forwardRegion
    int layersDense = 0;       //!< recomputed via dense forward
    int layersSkipped = 0;     //!< downstream layers never touched
    std::size_t elementsRecomputed = 0;
};

/**
 * Lifetime totals over every run() of one engine.  A campaign keeps
 * one engine per worker; harvesting these after the fan-out gives the
 * run manifest its incremental-vs-dense engine-decision record without
 * any hot-path synchronisation.
 */
struct IncrementalTotals
{
    std::uint64_t runs = 0;
    std::uint64_t earlyMasked = 0;       //!< runs that exited early
    std::uint64_t layersIncremental = 0; //!< forwardRegion recomputes
    std::uint64_t layersDense = 0;       //!< dense-fallback recomputes
    std::uint64_t layersSkipped = 0;     //!< layers never touched
    std::uint64_t elementsRecomputed = 0;

    void
    mergeFrom(const IncrementalTotals &o)
    {
        runs += o.runs;
        earlyMasked += o.earlyMasked;
        layersIncremental += o.layersIncremental;
        layersDense += o.layersDense;
        layersSkipped += o.layersSkipped;
        elementsRecomputed += o.elementsRecomputed;
    }
};

/**
 * The incremental re-execution engine.  One instance per worker
 * thread; run() may be called with different networks (scratch is
 * resized on demand).  Not thread-safe.
 */
class IncrementalEngine
{
  public:
    IncrementalEngine() = default;

    explicit IncrementalEngine(const IncrementalOptions &opt)
        : opt_(opt)
    {
    }

    void setOptions(const IncrementalOptions &opt) { opt_ = opt; }
    const IncrementalOptions &options() const { return opt_; }

    /**
     * Reusable buffer for building the corrupted layer output; callers
     * typically copy the golden activation in (reusing capacity) and
     * overwrite the faulty neurons.
     */
    Tensor &replacementBuffer() { return replacement_; }

    /**
     * Re-run everything downstream of `node` under `replacement`,
     * which differs from cached[node] only inside `faultRegion`.
     *
     * @param net The network (same topology contract as forwardFrom).
     * @param node The injected node.
     * @param replacement The corrupted activation of `node`.
     * @param faultRegion Conservative box of the corrupted elements.
     * @param cached Golden activations from Network::forwardAll.
     * @return The network output under the replacement — bit-identical
     *         to Network::forwardFrom.  The reference is either into
     *         `cached` or into engine-owned scratch; it stays valid
     *         until the next run() on this engine.
     */
    const Tensor &run(const Network &net, NodeId node,
                      const Tensor &replacement,
                      const Region &faultRegion,
                      const std::vector<Tensor> &cached);

    /** Counters of the most recent run(). */
    const IncrementalStats &lastStats() const { return stats_; }

    /** Totals accumulated over every run() since construction (or the
     *  last resetTotals()). */
    const IncrementalTotals &totals() const { return totals_; }

    void resetTotals() { totals_ = IncrementalTotals{}; }

  private:
    const Tensor &runImpl(const Network &net, NodeId node,
                          const Tensor &replacement,
                          const Region &faultRegion,
                          const std::vector<Tensor> &cached);

    IncrementalOptions opt_;
    IncrementalStats stats_;
    IncrementalTotals totals_;
    Tensor replacement_;

    // Per-node state, reused across runs (capacity is retained).
    std::vector<Tensor> scratch_;
    std::vector<Region> regions_;
    std::vector<const Tensor *> cur_;
    std::vector<unsigned char> dirty_;
    std::vector<unsigned char> denseDirty_;
    std::vector<const Tensor *> ins_;
};

} // namespace fidelity

#endif // FIDELITY_NN_INCREMENTAL_HH
