/**
 * @file
 * Spatial pooling layers (max / average).
 */

#ifndef FIDELITY_NN_POOL_HH
#define FIDELITY_NN_POOL_HH

#include "nn/layer.hh"

namespace fidelity
{

/** Max or average pooling over a square window. */
class Pool : public Layer
{
  public:
    enum class Mode { Max, Avg };

    /**
     * @param window Pooling window edge length.
     * @param stride Step between windows (defaults to window).
     * @param pad Symmetric zero padding (Avg divides by full window).
     */
    Pool(std::string name, Mode mode, int window, int stride = 0,
         int pad = 0);

    LayerKind kind() const override { return LayerKind::Pool; }
    Mode mode() const { return mode_; }

    using Layer::forward;

    Tensor makeOutput(const std::vector<const Tensor *> &ins) const override;
    Tensor forward(const std::vector<const Tensor *> &ins) const override;

    /** Pooling cone: output windows that read the input box. */
    Region propagateRegion(const std::vector<const Tensor *> &ins,
                           int inputIdx, const Region &in,
                           const Tensor &out) const override;

    void forwardRegion(const std::vector<const Tensor *> &ins,
                       const Region &region, Tensor &out) const override;

    bool forwardRegionBatched(const std::vector<const Tensor *> &ins,
                              LanePlane *const *inPlanes,
                              const Region &region,
                              const BatchCover *cover,
                              const Tensor &golden,
                              LanePlane &out) const override;

  private:
    Mode mode_;
    int window_;
    int stride_;
    int pad_;
};

/** Global average pooling: (N, H, W, C) -> (N, 1, 1, C). */
class GlobalAvgPool : public Layer
{
  public:
    explicit GlobalAvgPool(std::string name);

    LayerKind kind() const override { return LayerKind::Pool; }

    using Layer::forward;

    Tensor makeOutput(const std::vector<const Tensor *> &ins) const override;
    Tensor forward(const std::vector<const Tensor *> &ins) const override;

    /** Spatial collapse: batch/channel box preserved, H and W fold. */
    Region propagateRegion(const std::vector<const Tensor *> &ins,
                           int inputIdx, const Region &in,
                           const Tensor &out) const override;

    void forwardRegion(const std::vector<const Tensor *> &ins,
                       const Region &region, Tensor &out) const override;

    bool forwardRegionBatched(const std::vector<const Tensor *> &ins,
                              LanePlane *const *inPlanes,
                              const Region &region,
                              const BatchCover *cover,
                              const Tensor &golden,
                              LanePlane &out) const override;
};

} // namespace fidelity

#endif // FIDELITY_NN_POOL_HH
