#include "nn/activation.hh"

#include <cmath>

#include "sim/logging.hh"
#include "tensor/bitops.hh"

namespace fidelity
{

Activation::Activation(std::string name, Func func, float alpha)
    : Layer(std::move(name)), func_(func), alpha_(alpha)
{
}

float
Activation::apply(float x) const
{
    switch (func_) {
      case Func::ReLU:
        return x > 0.0f ? x : 0.0f;
      case Func::LeakyReLU:
        return x > 0.0f ? x : alpha_ * x;
      case Func::Sigmoid:
        return 1.0f / (1.0f + std::exp(-x));
      case Func::Tanh:
        return std::tanh(x);
    }
    panic("unknown activation");
}

Tensor
Activation::makeOutput(const std::vector<const Tensor *> &ins) const
{
    panic_if(ins.size() != 1, "activation expects one input");
    const Tensor &x = *ins[0];
    return Tensor(x.n(), x.h(), x.w(), x.c());
}

Tensor
Activation::forward(const std::vector<const Tensor *> &ins) const
{
    const Tensor &x = *ins[0];
    Tensor out = makeOutput(ins);
    bool half = precision_ == Precision::FP16;
    for (std::size_t i = 0; i < x.size(); ++i) {
        float v = apply(x[i]);
        out[i] = half ? roundToHalf(v) : v;
    }
    return out;
}

} // namespace fidelity
