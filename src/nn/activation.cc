#include "nn/activation.hh"

#include <cmath>

#include "nn/lanes.hh"
#include "sim/logging.hh"
#include "simd/convert.hh"
#include "simd/simd.hh"
#include "tensor/bitops.hh"

namespace fidelity
{

Activation::Activation(std::string name, Func func, float alpha)
    : Layer(std::move(name)), func_(func), alpha_(alpha)
{
}

float
Activation::apply(float x) const
{
    switch (func_) {
      case Func::ReLU:
        return x > 0.0f ? x : 0.0f;
      case Func::LeakyReLU:
        return x > 0.0f ? x : alpha_ * x;
      case Func::Sigmoid:
        return 1.0f / (1.0f + std::exp(-x));
      case Func::Tanh:
        return std::tanh(x);
    }
    panic("unknown activation");
}

Tensor
Activation::makeOutput(const std::vector<const Tensor *> &ins) const
{
    panic_if(ins.size() != 1, "activation expects one input");
    const Tensor &x = *ins[0];
    return Tensor(x.n(), x.h(), x.w(), x.c());
}

Tensor
Activation::forward(const std::vector<const Tensor *> &ins) const
{
    const Tensor &x = *ins[0];
    Tensor out = makeOutput(ins);
    const float *xd = x.data().data();
    float *od = out.data().data();
    const std::size_t sz = x.size();
    if (func_ == Func::ReLU || func_ == Func::LeakyReLU) {
        // x > 0 ? x : {0, alpha*x} — the kernels' ordered-GT select
        // matches the scalar ternary exactly (NaN takes the negative
        // branch).
        const simd::KernelTable &kt = simd::table();
        if (func_ == Func::ReLU)
            kt.reluF32(xd, od, sz);
        else
            kt.lreluF32(xd, alpha_, od, sz);
    } else {
        for (std::size_t i = 0; i < sz; ++i)
            od[i] = apply(xd[i]);
    }
    if (precision_ == Precision::FP16)
        simd::roundToHalfBatch(od, od, sz);
    return out;
}

Region
Activation::propagateRegion(const std::vector<const Tensor *> &, int,
                            const Region &in, const Tensor &out) const
{
    return in.clipped(out);
}

void
Activation::forwardRegion(const std::vector<const Tensor *> &ins,
                          const Region &region, Tensor &out) const
{
    const Tensor &x = *ins[0];
    bool half = precision_ == Precision::FP16;
    for (int n = region.n0; n < region.n1; ++n)
        for (int h = region.h0; h < region.h1; ++h)
            for (int w = region.w0; w < region.w1; ++w)
                for (int c = region.c0; c < region.c1; ++c) {
                    float v = apply(x.at(n, h, w, c));
                    out.at(n, h, w, c) = half ? roundToHalf(v) : v;
                }
}

bool
Activation::forwardRegionBatched(const std::vector<const Tensor *> &ins,
                                 LanePlane *const *inPlanes,
                                 const Region &region,
                                 const BatchCover *cover,
                                 const Tensor &golden,
                                 LanePlane &out) const
{
    if (region.empty())
        return true;
    const Tensor &x = *ins[0];
    LanePlane &xp = *inPlanes[0];
    xp.ensure(x, region);

    // Lane rows of consecutive channels are one contiguous float run,
    // so each (n, h, w) row applies the function like forward() does —
    // vector select for the ReLU family — and rounds the whole run as
    // one batch (identical per element to the scalar ternary + round).
    const int W = out.laneWidth();
    const bool half = precision_ == Precision::FP16;
    const std::size_t run =
        static_cast<std::size_t>(region.c1 - region.c0) * W;
    const simd::KernelTable &kt = simd::table();
    const BatchCover::Span full{region.w0, region.w1};
    for (int n = region.n0; n < region.n1; ++n) {
        for (int h = region.h0; h < region.h1; ++h) {
            const BatchCover::Span *sp = &full;
            int nsp = 1;
            if (cover)
                sp = cover->row(n, h, nsp);
            for (int si = 0; si < nsp; ++si) {
            for (int w = sp[si].w0; w < sp[si].w1; ++w) {
                std::size_t f0 = golden.offset(n, h, w, region.c0);
                const float *ip = xp.lanes(f0);
                float *op = out.lanes(f0);
                if (func_ == Func::ReLU) {
                    kt.reluF32(ip, op, run);
                } else if (func_ == Func::LeakyReLU) {
                    kt.lreluF32(ip, alpha_, op, run);
                } else {
                    for (std::size_t i = 0; i < run; ++i)
                        op[i] = apply(ip[i]);
                }
                if (half)
                    simd::roundToHalfBatch(op, op, run);
            }
            }
        }
    }
    return true;
}

} // namespace fidelity
