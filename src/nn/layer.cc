#include "nn/layer.hh"

#include <cmath>

#include "sim/logging.hh"
#include "tensor/bitops.hh"
#include "tensor/float16.hh"

namespace fidelity
{

const char *
precisionName(Precision p)
{
    switch (p) {
      case Precision::FP32:
        return "FP32";
      case Precision::FP16:
        return "FP16";
      case Precision::INT16:
        return "INT16";
      case Precision::INT8:
        return "INT8";
    }
    panic("unknown Precision");
}

const char *
layerKindName(LayerKind k)
{
    switch (k) {
      case LayerKind::Conv:
        return "Conv";
      case LayerKind::FC:
        return "FC";
      case LayerKind::MatMul:
        return "MatMul";
      case LayerKind::Pool:
        return "Pool";
      case LayerKind::Activation:
        return "Activation";
      case LayerKind::Elementwise:
        return "Elementwise";
      case LayerKind::Concat:
        return "Concat";
      case LayerKind::Slice:
        return "Slice";
      case LayerKind::Softmax:
        return "Softmax";
    }
    panic("unknown LayerKind");
}

Layer::Layer(std::string name)
    : name_(std::move(name))
{
}

Layer::~Layer() = default;

Tensor
Layer::forward(const Tensor &in) const
{
    panic_if(numInputs() != 1,
             "single-input forward() on multi-input layer ", name_);
    std::vector<const Tensor *> ins{&in};
    return forward(ins);
}

void
Layer::calibrate(const std::vector<const Tensor *> &, const Tensor &)
{
}

Region
Layer::propagateRegion(const std::vector<const Tensor *> &, int,
                       const Region &, const Tensor &out) const
{
    return Region::full(out);
}

void
Layer::forwardRegion(const std::vector<const Tensor *> &ins,
                     const Region &, Tensor &out) const
{
    out = forward(ins);
}

bool
Layer::forwardRegionBatched(const std::vector<const Tensor *> &,
                            LanePlane *const *, const Region &,
                            const BatchCover *, const Tensor &,
                            LanePlane &) const
{
    return false;
}

MacLayer::MacLayer(std::string name)
    : Layer(std::move(name))
{
}

bool
MacLayer::forwardWithSub(const std::vector<const Tensor *> &,
                         const OperandSub *, const Region *, std::size_t,
                         Tensor &) const
{
    return false;
}

void
MacLayer::calibrate(const std::vector<const Tensor *> &ins,
                    const Tensor &out)
{
    panic_if(ins.empty(), "MacLayer::calibrate requires inputs");
    inAbsMax_ = std::max<double>(inAbsMax_, ins[0]->absMax());
    double wmax = 0.0;
    std::size_t n = weightCount(ins);
    for (std::size_t i = 0; i < n; ++i)
        wmax = std::max<double>(wmax, std::fabs(weightAt(ins, i)));
    wAbsMax_ = std::max(wAbsMax_, wmax);
    outAbsMax_ = std::max<double>(outAbsMax_, out.absMax());
    refreshQuant();
}

void
MacLayer::refreshQuant()
{
    int bits = precision_ == Precision::INT8 ? 8 : 16;
    inQuant_ = calibrateAbsMax(inAbsMax_, bits);
    wQuant_ = calibrateAbsMax(wAbsMax_, bits);
    outQuant_ = calibrateAbsMax(outAbsMax_, bits);
    onQuantChanged();
}

float
MacLayer::storeInput(float x) const
{
    switch (precision_) {
      case Precision::FP32:
        return x;
      case Precision::FP16:
        return roundToHalf(x);
      case Precision::INT16:
      case Precision::INT8:
        return dequantize(quantize(x, inQuant_), inQuant_);
    }
    panic("unknown Precision");
}

float
MacLayer::storeWeight(float x) const
{
    switch (precision_) {
      case Precision::FP32:
        return x;
      case Precision::FP16:
        return roundToHalf(x);
      case Precision::INT16:
      case Precision::INT8:
        return dequantize(quantize(x, wQuant_), wQuant_);
    }
    panic("unknown Precision");
}

std::int32_t
MacLayer::quantInput(float x) const
{
    return quantize(x, inQuant_);
}

std::int32_t
MacLayer::quantWeight(float x) const
{
    return quantize(x, wQuant_);
}

float
MacLayer::psumFlipFloat(float acc, std::uint32_t mask)
{
    return flipBits(acc, Repr::FP32, mask);
}

std::int64_t
MacLayer::psumFlipInt(std::int64_t acc, std::uint32_t mask)
{
    // The integer pipelines hold partial sums in a 32-bit window of
    // the accumulator; flipping bit b perturbs the value by +/- 2^b.
    return acc ^ static_cast<std::int64_t>(mask);
}

float
MacLayer::writeback(double acc, float bias) const
{
    switch (precision_) {
      case Precision::FP32:
        return static_cast<float>(acc) + bias;
      case Precision::FP16:
        return roundToHalf(static_cast<float>(acc) + bias);
      case Precision::INT16:
      case Precision::INT8: {
        // The integer output path re-quantises the real-valued result
        // into the (narrow) output representation, modelling the
        // precision loss and saturation of the writeback datapath.
        float real = static_cast<float>(acc) + bias;
        return dequantize(quantize(real, outQuant_), outQuant_);
      }
    }
    panic("unknown Precision");
}

} // namespace fidelity
