/**
 * @file
 * Fault-batched re-execution: SIMD lanes over injections, not pixels.
 *
 * A resilience campaign evaluates thousands of perturbations of the
 * same (layer, flip-flop category) cell, and each perturbation differs
 * from the golden run only inside a small fault cone.  The incremental
 * engine (nn/incremental) exploits the cone; the batched engine
 * additionally exploits the *sameness*: it carries B injections of the
 * same cell through the downstream graph in one walk, storing per-node
 * activations as structure-of-arrays lane columns (nn/lanes) so the
 * cone geometry — window math, operand gathers, packed-weight streams,
 * padding — is computed once and shared across the batch, and the SIMD
 * lanes of the MAC kernels hold *injections* instead of output pixels.
 *
 * Per-lane dirty masks track which injections still carry a live delta
 * at each node; lanes whose delta dies (ReLU clipping, pooling,
 * quantisation) are retired from the diff bookkeeping without blocking
 * the batch.  Every lane's output is bit-identical to what the scalar
 * IncrementalEngine (and hence Network::forwardFrom) produces for that
 * injection alone, so campaign checksums are invariant under the batch
 * width.
 */

#ifndef FIDELITY_NN_BATCHED_HH
#define FIDELITY_NN_BATCHED_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "nn/incremental.hh"
#include "nn/lanes.hh"
#include "nn/network.hh"

namespace fidelity
{

/** Lifetime counters of one batched engine (per campaign worker). */
struct BatchedTotals
{
    std::uint64_t batches = 0;     //!< execute() calls
    std::uint64_t lanesSeeded = 0; //!< injections carried, all batches

    /** Lanes whose delta died before the output node. */
    std::uint64_t lanesRetiredEarly = 0;

    /** Layer visits served by a batched SoA kernel. */
    std::uint64_t layersBatchedKernel = 0;

    /** Layer visits served by the per-lane forwardRegion fallback. */
    std::uint64_t layersLaneFallback = 0;

    /** Downstream layers never touched (every lane's delta was dead). */
    std::uint64_t layersSkipped = 0;

    /** Output elements recomputed, summed over live lanes. */
    std::uint64_t laneElements = 0;

    void
    mergeFrom(const BatchedTotals &o)
    {
        batches += o.batches;
        lanesSeeded += o.lanesSeeded;
        lanesRetiredEarly += o.lanesRetiredEarly;
        layersBatchedKernel += o.layersBatchedKernel;
        layersLaneFallback += o.layersLaneFallback;
        layersSkipped += o.layersSkipped;
        laneElements += o.laneElements;
    }
};

/**
 * The batched re-execution engine.  One instance per worker thread;
 * not thread-safe.  Usage, per batch of up to maxLanes() injections of
 * the same node:
 *
 *   eng.begin(net, node, cached);
 *   for each injection i:  eng.seedLane(i, neurons, values, count);
 *   eng.execute();
 *   for each injection i:  classify(eng.laneOutput(i));
 *
 * The lane width is a compile-time template parameter of the concrete
 * engine (4 or 8); makeBatchedEngine picks the narrowest instantiation
 * whose width covers the requested runtime cap.
 */
class BatchedEngine
{
  public:
    virtual ~BatchedEngine() = default;

    /** Lanes per batch (the template width of this instantiation). */
    virtual int maxLanes() const = 0;

    virtual void setOptions(const IncrementalOptions &opt) = 0;
    virtual const IncrementalOptions &options() const = 0;

    /**
     * Start a batch at `node`, against the golden activations `cached`
     * (both must stay alive until the last laneOutput() call).
     */
    virtual void begin(const Network &net, NodeId node,
                       const std::vector<Tensor> &cached) = 0;

    /**
     * Load one injection into lane `lane`: the corrupted activation of
     * `node` equals the golden one except at `neurons[k]`, which read
     * `values[k]`.  Equivalent to the replacement tensor + fault-region
     * pair of IncrementalEngine::run.
     */
    virtual void seedLane(int lane, const NeuronIndex *neurons,
                          const float *values, std::size_t count) = 0;

    /** Run every seeded lane through the downstream graph. */
    virtual void execute() = 0;

    /**
     * Whether lane's delta died before the output node (the batched
     * analogue of IncrementalStats::earlyMasked).  Valid after
     * execute().
     */
    virtual bool laneEarlyMasked(int lane) const = 0;

    /**
     * The network output under lane's injection — bit-identical to the
     * scalar engine's result for the same injection.  The reference is
     * into `cached` or into an engine buffer that the next laneOutput()
     * or begin() call reuses; classify before asking for another lane.
     */
    virtual const Tensor &laneOutput(int lane) = 0;

    virtual const BatchedTotals &totals() const = 0;
    virtual void resetTotals() = 0;
};

/**
 * Build a batched engine whose lane count covers `width` (clamped to
 * [1, kMaxBatchLanes]): widths up to 4 get the 4-lane instantiation,
 * wider ones the 8-lane.
 */
std::unique_ptr<BatchedEngine>
makeBatchedEngine(int width, const IncrementalOptions &opt);

} // namespace fidelity

#endif // FIDELITY_NN_BATCHED_HH
