/**
 * @file
 * Fully-connected (position-wise dense) layer.
 *
 * Applies y = W^T x + b independently at every (n, h, w) position of the
 * input, reducing over the channel dimension.  This covers classifier
 * heads (H = W = 1), transformer feed-forward blocks (positions are
 * sequence steps), and the LSTM gate projections.
 */

#ifndef FIDELITY_NN_FC_HH
#define FIDELITY_NN_FC_HH

#include <cstdint>

#include "nn/layer.hh"
#include "sim/arena.hh"

namespace fidelity
{

/** Position-wise dense layer with optional bias. */
class FC : public MacLayer
{
  public:
    /**
     * @param name Layer name.
     * @param in_c Input channel count.
     * @param units Output channel count.
     * @param weights Flat [in_c][units] weights.
     * @param bias Per-unit bias (empty to disable).
     */
    FC(std::string name, int in_c, int units, std::vector<float> weights,
       std::vector<float> bias);

    LayerKind kind() const override { return LayerKind::FC; }

    using Layer::forward;

    int units() const { return units_; }
    int inC() const { return inC_; }

    Tensor makeOutput(const std::vector<const Tensor *> &ins) const override;
    Tensor forward(const std::vector<const Tensor *> &ins) const override;

    std::size_t
    weightCount(const std::vector<const Tensor *> &ins) const override;
    float weightAt(const std::vector<const Tensor *> &ins,
                   std::size_t idx) const override;

    std::vector<NeuronIndex>
    inputConsumers(const std::vector<const Tensor *> &ins,
                   std::size_t elem) const override;
    std::vector<NeuronIndex>
    weightConsumers(const std::vector<const Tensor *> &ins,
                    std::size_t widx) const override;

    float computeNeuron(const std::vector<const Tensor *> &ins,
                        const NeuronIndex &out,
                        const OperandSub *sub) const override;

    int reductionLength() const override { return inC_; }
    bool hasBias() const override { return !bias_.empty(); }

    /** Raw weight storage ([in_c][units] flat). */
    const std::vector<float> &weightData() const { return weights_; }

    /** Raw bias storage (empty when disabled). */
    const std::vector<float> &biasData() const { return bias_; }

  protected:
    void onQuantChanged() override { wPackValid_ = false; }

  private:
    void checkInput(const std::vector<const Tensor *> &ins) const;

    /** Re-pack weights into the lane-blocked kernel layout. */
    void packWeights() const;

    int inC_;
    int units_;
    std::vector<float> weights_; //!< [in_c][units] flat
    std::vector<float> bias_;

    // Lane-blocked packed weight cache (see Conv2D).  Integer
    // precisions hold either the narrow pair-interleaved int16 pack
    // (chunkPairs_ > 0) or the wide int32 pack.
    mutable bool wPackValid_ = false;
    mutable AlignedVec<float> wPackF_;
    mutable AlignedVec<std::int32_t> wPackI_;
    mutable AlignedVec<std::int16_t> wPackN_;
    mutable int chunkPairs_ = 0; //!< 0: narrow path off (wide pack)
};

} // namespace fidelity

#endif // FIDELITY_NN_FC_HH
