#include "nn/matmul.hh"

#include "sim/arena.hh"
#include "sim/logging.hh"
#include "simd/convert.hh"
#include "simd/gemm.hh"

namespace fidelity
{

MatMulAB::MatMulAB(std::string name, bool trans_b, float scale)
    : MacLayer(std::move(name)), transB_(trans_b), scale_(scale)
{
}

void
MatMulAB::checkInputs(const std::vector<const Tensor *> &ins) const
{
    panic_if(ins.size() != 2, "matmul expects two inputs");
    const Tensor &a = *ins[0];
    const Tensor &b = *ins[1];
    panic_if(a.w() != 1 || b.w() != 1,
             "matmul ", name_, ": operands must have W = 1, got ",
             a.shapeStr(), " and ", b.shapeStr());
    panic_if(b.n() != 1, "matmul ", name_, ": B must have N = 1");
    if (transB_) {
        panic_if(a.c() != b.c(), "matmul ", name_, " (transB): A columns ",
                 a.c(), " != B columns ", b.c());
    } else {
        panic_if(a.c() != b.h(), "matmul ", name_, ": A columns ", a.c(),
                 " != B rows ", b.h());
    }
}

Tensor
MatMulAB::makeOutput(const std::vector<const Tensor *> &ins) const
{
    checkInputs(ins);
    const Tensor &a = *ins[0];
    const Tensor &b = *ins[1];
    int out_cols = transB_ ? b.h() : b.c();
    return Tensor(a.n(), a.h(), 1, out_cols);
}

float
MatMulAB::computeNeuron(const std::vector<const Tensor *> &ins,
                        const NeuronIndex &out, const OperandSub *sub) const
{
    const Tensor &a = *ins[0];
    const Tensor &b = *ins[1];
    int red = a.c();
    lastReduction_.store(red, std::memory_order_relaxed);
    bool integer = precision_ == Precision::INT8 ||
                   precision_ == Precision::INT16;
    const float *ad = a.data().data();
    const float *bd = b.data().data();
    const std::size_t a_base =
        (static_cast<std::size_t>(out.n) * a.h() + out.h) * a.c();
    const std::size_t b_row =
        transB_ ? static_cast<std::size_t>(out.c) * b.c() : 0;
    const std::size_t b_cols = b.c();
    float acc = 0.0f;
    std::int64_t iacc = 0;
    for (int k = 0; k < red; ++k) {
        std::size_t aoff = a_base + k;
        std::size_t boff = transB_
            ? b_row + k
            : static_cast<std::size_t>(k) * b_cols + out.c;
        float av = ad[aoff];
        float bv = bd[boff];
        for (const OperandSub *s = sub; s; s = s->next) {
            if (s->kind == OperandSub::Kind::Input &&
                (s->termIndex >= 0 ? k == s->termIndex
                                   : aoff == s->flatIndex)) {
                av = s->value;
            } else if (s->kind == OperandSub::Kind::Weight &&
                       boff == s->flatIndex) {
                bv = s->value;
            }
        }
        for (const OperandSub *s = sub; s; s = s->next) {
            if (s->kind == OperandSub::Kind::PsumFlip &&
                k == static_cast<int>(s->flatIndex)) {
                if (integer)
                    iacc = psumFlipInt(iacc, s->flipMask());
                else
                    acc = psumFlipFloat(acc, s->flipMask());
            }
        }
        if (integer)
            iacc += static_cast<std::int64_t>(quantInput(av)) *
                    quantWeight(bv);
        else
            acc += storeInput(av) * storeWeight(bv);
    }
    for (const OperandSub *s = sub; s; s = s->next) {
        if (s->kind == OperandSub::Kind::PsumFlip &&
            red == static_cast<int>(s->flatIndex)) {
            if (integer)
                iacc = psumFlipInt(iacc, s->flipMask());
            else
                acc = psumFlipFloat(acc, s->flipMask());
        }
    }
    double facc = integer
        ? static_cast<double>(iacc) * inQuant_.scale * wQuant_.scale
        : static_cast<double>(acc);
    return writeback(facc * scale_, 0.0f);
}

Tensor
MatMulAB::forward(const std::vector<const Tensor *> &ins) const
{
    // Fast path, bit-identical to computeNeuron(): both operands are
    // converted once per call (B is an activation, so there is no
    // persistent cache), then accumulated in canonical k order.
    Tensor out = makeOutput(ins);
    const Tensor &a = *ins[0];
    const Tensor &b = *ins[1];
    int red = a.c();
    lastReduction_.store(red, std::memory_order_relaxed);
    bool integer = precision_ == Precision::INT8 ||
                   precision_ == Precision::INT16;

    int rows = a.n() * a.h();
    int cols = out.c();
    auto bAt = [&](int k, int c) {
        return transB_ ? static_cast<std::size_t>(c) * red + k
                       : static_cast<std::size_t>(k) * cols + c;
    };

    // B is an activation, so its pack is per-call arena scratch
    // rather than a persistent cache; the pack step also resolves
    // transB so the kernel always streams the fixed-width layouts.
    Arena &arena = Arena::local();
    const simd::KernelTable &kt = simd::table();
    if (integer) {
        auto aq = arena.ints(a.size());
        auto bq = arena.ints(b.size());
        simd::quantizeBatch(a.data().data(), aq.data(), a.size(),
                            inQuant_);
        simd::quantizeBatch(b.data().data(), bq.data(), b.size(),
                            wQuant_);
        auto wb = [&](std::int64_t iacc, int) {
            double facc = static_cast<double>(iacc) * inQuant_.scale *
                          wQuant_.scale;
            return writeback(facc * scale_, 0.0f);
        };
        // Per-call narrow eligibility: scan B's quantised magnitudes
        // for the chunk bound (see Conv2D::packWeights).
        std::int32_t maxAbsW = 0;
        for (std::size_t i = 0; i < b.size(); ++i) {
            std::int32_t v = bq[i] < 0 ? -bq[i] : bq[i];
            maxAbsW = v > maxAbsW ? v : maxAbsW;
        }
        const int bits = precision_ == Precision::INT8 ? 8 : 16;
        int chunk = simd::narrowChunkPairs(bits, maxAbsW);
        if (simd::narrowEligible(chunk)) {
            auto an = arena.shorts(a.size() + 1);
            for (std::size_t i = 0; i < a.size(); ++i)
                an[i] = static_cast<std::int16_t>(aq[i]);
            an[a.size()] = 0;
            auto bp = arena.shorts(simd::packNarrowSize(red, cols));
            simd::packNarrow(
                red, cols,
                [&](int k, int c) { return bq[bAt(k, c)]; },
                bp.data());
            auto accL = arena.longs(
                simd::packSize(1, cols, simd::kNarrowLanes));
            simd::denseNarrow(kt, an.data(), rows, red, cols,
                              bp.data(), chunk, accL.data(),
                              out.data().data(), wb);
        } else {
            constexpr int L = simd::kI64Lanes;
            auto bp = arena.ints(simd::packSize(red, cols, L));
            simd::packLaneBlocked(
                red, cols, L,
                [&](int k, int c) { return bq[bAt(k, c)]; },
                bp.data());
            auto accL = arena.longs(simd::packSize(1, cols, L));
            simd::denseInt(kt, aq.data(), rows, red, cols, bp.data(),
                           accL.data(), out.data().data(), wb);
        }
    } else {
        constexpr int L = simd::kF32Lanes;
        bool half = precision_ == Precision::FP16;
        auto as = arena.floats(half ? a.size() : 0);
        auto bs = arena.floats(half ? b.size() : 0);
        const float *af = a.data().data();
        const float *bf = b.data().data();
        if (half) {
            simd::roundToHalfBatch(af, as.data(), a.size());
            simd::roundToHalfBatch(bf, bs.data(), b.size());
            af = as.data();
            bf = bs.data();
        }
        auto bp = arena.floats(simd::packSize(red, cols, L));
        simd::packLaneBlocked(
            red, cols, L,
            [&](int k, int c) { return bf[bAt(k, c)]; }, bp.data());
        auto accF = arena.floats(simd::packSize(1, cols, L));
        simd::denseFloat(kt, af, rows, red, cols, bp.data(),
                         accF.data(), out.data().data(),
                         [&](double acc, int) {
                             return writeback(acc * scale_, 0.0f);
                         });
    }
    return out;
}

std::size_t
MatMulAB::weightCount(const std::vector<const Tensor *> &ins) const
{
    checkInputs(ins);
    return ins[1]->size();
}

float
MatMulAB::weightAt(const std::vector<const Tensor *> &ins,
                   std::size_t idx) const
{
    panic_if(idx >= ins[1]->size(), "B index out of range");
    return (*ins[1])[idx];
}

std::vector<NeuronIndex>
MatMulAB::inputConsumers(const std::vector<const Tensor *> &ins,
                         std::size_t elem) const
{
    checkInputs(ins);
    const Tensor &a = *ins[0];
    NeuronIndex e = a.indexOf(elem);
    int out_cols = transB_ ? ins[1]->h() : ins[1]->c();
    // An A element feeds every neuron of its output row.
    std::vector<NeuronIndex> out;
    out.reserve(out_cols);
    for (int j = 0; j < out_cols; ++j)
        out.push_back({e.n, e.h, 0, j});
    return out;
}

std::vector<NeuronIndex>
MatMulAB::weightConsumers(const std::vector<const Tensor *> &ins,
                          std::size_t widx) const
{
    checkInputs(ins);
    const Tensor &a = *ins[0];
    const Tensor &b = *ins[1];
    NeuronIndex e = b.indexOf(widx);
    int col = transB_ ? e.h : e.c;
    // A B element feeds every neuron of its output column, in all
    // batches of A.
    std::vector<NeuronIndex> out;
    for (int n = 0; n < a.n(); ++n)
        for (int i = 0; i < a.h(); ++i)
            out.push_back({n, i, 0, col});
    return out;
}

} // namespace fidelity
