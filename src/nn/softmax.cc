#include "nn/softmax.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace fidelity
{

Softmax::Softmax(std::string name)
    : Layer(std::move(name))
{
}

Tensor
Softmax::makeOutput(const std::vector<const Tensor *> &ins) const
{
    panic_if(ins.size() != 1, "softmax expects one input");
    const Tensor &x = *ins[0];
    return Tensor(x.n(), x.h(), x.w(), x.c());
}

Tensor
Softmax::forward(const std::vector<const Tensor *> &ins) const
{
    const Tensor &x = *ins[0];
    Tensor out = makeOutput(ins);
    for (int n = 0; n < x.n(); ++n) {
        for (int h = 0; h < x.h(); ++h) {
            for (int w = 0; w < x.w(); ++w) {
                float mx = -std::numeric_limits<float>::infinity();
                for (int c = 0; c < x.c(); ++c)
                    mx = std::max(mx, x.at(n, h, w, c));
                // NaN inputs (possible under fault injection) make the
                // whole distribution NaN, which downstream metrics treat
                // as an output error.
                double denom = 0.0;
                for (int c = 0; c < x.c(); ++c)
                    denom += std::exp(
                        static_cast<double>(x.at(n, h, w, c) - mx));
                for (int c = 0; c < x.c(); ++c) {
                    double e = std::exp(
                        static_cast<double>(x.at(n, h, w, c) - mx));
                    out.at(n, h, w, c) = static_cast<float>(e / denom);
                }
            }
        }
    }
    return out;
}

} // namespace fidelity
