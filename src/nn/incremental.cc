#include "nn/incremental.hh"

#include <bit>
#include <cstdint>

#include "sim/logging.hh"
#include "simd/simd.hh"

namespace fidelity
{

namespace
{

/**
 * Tight bounding box of the elements of `a` that differ from `b`
 * bit-for-bit, scanned only inside `within`.  Bitwise comparison keeps
 * the shrink conservative under the oddballs numeric equality would
 * hide: a -0.0/+0.0 swap or a NaN payload change stays "different" and
 * keeps propagating, so skipped work can never diverge from the dense
 * path.
 */
Region
changedBox(const Tensor &a, const Tensor &b, const Region &within)
{
    Region diff;
    const float *ad = a.data().data();
    const float *bd = b.data().data();
    const std::size_t len = within.c1 - within.c0;
    for (int n = within.n0; n < within.n1; ++n) {
        for (int h = within.h0; h < within.h1; ++h) {
            for (int w = within.w0; w < within.w1; ++w) {
                // Only the first and last differing channel of a row
                // matter for the box; block-compare scans find both
                // without visiting every element.
                std::size_t base = a.offset(n, h, w, within.c0);
                std::size_t first =
                    simd::firstBitDiff(ad + base, bd + base, len);
                if (first == len)
                    continue;
                std::size_t last =
                    simd::lastBitDiff(ad + base, bd + base, len);
                diff.include(
                    {n, h, w, within.c0 + static_cast<int>(first)});
                diff.include(
                    {n, h, w, within.c0 + static_cast<int>(last)});
            }
        }
    }
    return diff;
}

} // namespace

const Tensor &
IncrementalEngine::run(const Network &net, NodeId node,
                       const Tensor &replacement,
                       const Region &faultRegion,
                       const std::vector<Tensor> &cached)
{
    const Tensor &out = runImpl(net, node, replacement, faultRegion,
                                cached);
    totals_.runs += 1;
    totals_.earlyMasked += stats_.earlyMasked ? 1 : 0;
    totals_.layersIncremental +=
        static_cast<std::uint64_t>(stats_.layersIncremental);
    totals_.layersDense += static_cast<std::uint64_t>(stats_.layersDense);
    totals_.layersSkipped +=
        static_cast<std::uint64_t>(stats_.layersSkipped);
    totals_.elementsRecomputed += stats_.elementsRecomputed;
    return out;
}

const Tensor &
IncrementalEngine::runImpl(const Network &net, NodeId node,
                           const Tensor &replacement,
                           const Region &faultRegion,
                           const std::vector<Tensor> &cached)
{
    const int num = net.numNodes();
    panic_if(node <= 0 || node >= num, "bad node id ", node);
    panic_if(cached.size() != static_cast<std::size_t>(num),
             "cached activation count mismatch");

    stats_ = IncrementalStats{};
    NodeId out = net.outputNode();
    if (node == out)
        return replacement;

    scratch_.resize(num);
    regions_.assign(num, Region{});
    cur_.resize(num);
    dirty_.assign(num, 0);
    denseDirty_.assign(num, 0);
    for (int i = 0; i < num; ++i)
        cur_[i] = &cached[i];

    Region seed = faultRegion.clipped(cached[node]);
    if (seed.empty()) {
        // Nothing actually changed; every downstream recompute would
        // reproduce the golden activations bit-for-bit.
        stats_.earlyMasked = true;
        return cached[out];
    }
    dirty_[node] = 1;
    denseDirty_[node] = 1;
    regions_[node] = seed;
    cur_[node] = &replacement;

    for (NodeId id = node + 1; id < num; ++id) {
        const std::vector<NodeId> &prods = net.producers(id);
        bool touched = false;
        bool reachable = false;
        for (NodeId in : prods) {
            touched = touched || dirty_[in];
            reachable = reachable || denseDirty_[in];
        }
        denseDirty_[id] = reachable ? 1 : 0;
        if (!touched) {
            // The dense path would have recomputed this node; the
            // delta died before reaching it.
            if (reachable)
                ++stats_.layersSkipped;
            continue;
        }

        const Layer &layer = net.layer(id);
        const Tensor &golden = cached[id];
        ins_.clear();
        for (NodeId in : prods)
            ins_.push_back(cur_[in]);

        // Union of the per-input fault cones.
        Region cone;
        bool full = false;
        for (std::size_t k = 0; k < prods.size(); ++k) {
            if (!dirty_[prods[k]])
                continue;
            cone.merge(layer.propagateRegion(
                ins_, static_cast<int>(k), regions_[prods[k]], golden));
            if (cone.covers(golden)) {
                full = true;
                break;
            }
        }
        if (cone.empty())
            continue; // the change was clipped away (e.g. Slice)

        bool dense = full || !opt_.enabled ||
                     static_cast<double>(cone.volume()) >=
                         opt_.denseThreshold *
                             static_cast<double>(golden.size());
        Tensor &slot = scratch_[id];
        if (dense) {
            slot = layer.forward(ins_);
            cone = Region::full(golden);
            ++stats_.layersDense;
        } else {
            slot = golden; // capacity-reusing copy; then patch the cone
            layer.forwardRegion(ins_, cone, slot);
            ++stats_.layersIncremental;
        }
        stats_.elementsRecomputed += cone.volume();

        if (opt_.earlyExit) {
            Region diff = changedBox(slot, golden, cone);
            if (diff.empty())
                continue; // fault fully absorbed at this node
            cone = diff;
        }
        dirty_[id] = 1;
        regions_[id] = cone;
        cur_[id] = &slot;
    }

    if (!dirty_[out]) {
        stats_.earlyMasked = true;
        return cached[out];
    }
    return scratch_[out];
}

} // namespace fidelity
