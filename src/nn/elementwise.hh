/**
 * @file
 * Structural layers: element-wise binary ops, concat, slice, and scale.
 *
 * These cover the glue a DNN graph needs around the MAC layers:
 * residual additions (ResNet/Transformer), gate products (LSTM),
 * channel concatenation (Inception, LSTM input), and tensor slicing
 * (LSTM gates, sequence steps).
 */

#ifndef FIDELITY_NN_ELEMENTWISE_HH
#define FIDELITY_NN_ELEMENTWISE_HH

#include "nn/layer.hh"

namespace fidelity
{

/** Element-wise binary operation over two same-shaped inputs. */
class Elementwise : public Layer
{
  public:
    enum class Op { Add, Mul, Sub };

    Elementwise(std::string name, Op op);

    LayerKind kind() const override { return LayerKind::Elementwise; }
    int numInputs() const override { return 2; }
    Op op() const { return op_; }

    using Layer::forward;

    Tensor makeOutput(const std::vector<const Tensor *> &ins) const override;
    Tensor forward(const std::vector<const Tensor *> &ins) const override;

    /** Element-wise: the cone is the input box itself. */
    Region propagateRegion(const std::vector<const Tensor *> &ins,
                           int inputIdx, const Region &in,
                           const Tensor &out) const override;

    void forwardRegion(const std::vector<const Tensor *> &ins,
                       const Region &region, Tensor &out) const override;

    bool forwardRegionBatched(const std::vector<const Tensor *> &ins,
                              LanePlane *const *inPlanes,
                              const Region &region,
                              const BatchCover *cover,
                              const Tensor &golden,
                              LanePlane &out) const override;

  private:
    Op op_;
};

/** Concatenate two inputs along the channel axis. */
class ConcatC : public Layer
{
  public:
    explicit ConcatC(std::string name);

    LayerKind kind() const override { return LayerKind::Concat; }
    int numInputs() const override { return 2; }

    Tensor makeOutput(const std::vector<const Tensor *> &ins) const override;
    Tensor forward(const std::vector<const Tensor *> &ins) const override;

    /** Input 0 maps in place; input 1 shifts by ins[0]'s channels. */
    Region propagateRegion(const std::vector<const Tensor *> &ins,
                           int inputIdx, const Region &in,
                           const Tensor &out) const override;

    void forwardRegion(const std::vector<const Tensor *> &ins,
                       const Region &region, Tensor &out) const override;

    bool forwardRegionBatched(const std::vector<const Tensor *> &ins,
                              LanePlane *const *inPlanes,
                              const Region &region,
                              const BatchCover *cover,
                              const Tensor &golden,
                              LanePlane &out) const override;
};

/** Slice a contiguous range along one axis (H or C). */
class Slice : public Layer
{
  public:
    enum class Axis { H, C };

    Slice(std::string name, Axis axis, int offset, int length);

    LayerKind kind() const override { return LayerKind::Slice; }

    using Layer::forward;

    Tensor makeOutput(const std::vector<const Tensor *> &ins) const override;
    Tensor forward(const std::vector<const Tensor *> &ins) const override;

    /** The input box clipped to the slice window, shifted to output
     *  coordinates; empty when the change is sliced away entirely. */
    Region propagateRegion(const std::vector<const Tensor *> &ins,
                           int inputIdx, const Region &in,
                           const Tensor &out) const override;

    void forwardRegion(const std::vector<const Tensor *> &ins,
                       const Region &region, Tensor &out) const override;

    bool forwardRegionBatched(const std::vector<const Tensor *> &ins,
                              LanePlane *const *inPlanes,
                              const Region &region,
                              const BatchCover *cover,
                              const Tensor &golden,
                              LanePlane &out) const override;

  private:
    Axis axis_;
    int offset_;
    int length_;
};

/** Affine map y = a * x + b applied element-wise (normalisation stub). */
class ScaleShift : public Layer
{
  public:
    ScaleShift(std::string name, float scale, float shift);

    LayerKind kind() const override { return LayerKind::Elementwise; }

    using Layer::forward;

    Tensor makeOutput(const std::vector<const Tensor *> &ins) const override;
    Tensor forward(const std::vector<const Tensor *> &ins) const override;

    /** Element-wise: the cone is the input box itself. */
    Region propagateRegion(const std::vector<const Tensor *> &ins,
                           int inputIdx, const Region &in,
                           const Tensor &out) const override;

    void forwardRegion(const std::vector<const Tensor *> &ins,
                       const Region &region, Tensor &out) const override;

    bool forwardRegionBatched(const std::vector<const Tensor *> &ins,
                              LanePlane *const *inPlanes,
                              const Region &region,
                              const BatchCover *cover,
                              const Tensor &golden,
                              LanePlane &out) const override;

  private:
    float scale_;
    float shift_;
};

} // namespace fidelity

#endif // FIDELITY_NN_ELEMENTWISE_HH
