/**
 * @file
 * Transformer encoder block built from primitive layers.
 *
 * Single-head scaled dot-product attention followed by a position-wise
 * feed-forward network, each with a residual connection — the structure
 * whose FC and MatMul layers Table III uses for validation.
 */

#ifndef FIDELITY_NN_ATTENTION_HH
#define FIDELITY_NN_ATTENTION_HH

#include <string>

#include "nn/network.hh"
#include "sim/rng.hh"

namespace fidelity
{

/** Geometry of one encoder block. */
struct AttentionSpec
{
    int seqLen = 8;
    int dModel = 16;
    int dFF = 32;
};

/**
 * Append one encoder block (attention + FFN, residuals) to the network.
 *
 * @param net Target network.
 * @param input Producer node holding a (1, seqLen, 1, dModel) tensor.
 * @param spec Block geometry.
 * @param rng Weight initialisation stream.
 * @param prefix Name prefix for the added layers.
 * @return Node id of the block output (1, seqLen, 1, dModel).
 */
NodeId addAttentionBlock(Network &net, NodeId input,
                         const AttentionSpec &spec, Rng &rng,
                         const std::string &prefix);

} // namespace fidelity

#endif // FIDELITY_NN_ATTENTION_HH
