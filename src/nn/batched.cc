#include "nn/batched.hh"

#include <array>
#include <bit>
#include <cstddef>

#include "sim/logging.hh"
#include "simd/simd.hh"

namespace fidelity
{

namespace
{

/**
 * The concrete engine.  BMAX is the structural lane count: every
 * LanePlane column holds BMAX floats and every kernel computes all BMAX
 * lanes, so unseeded / retired lanes simply recompute golden values —
 * they are excluded from the diff bookkeeping by the lane masks, never
 * by per-lane branches inside the kernels.
 */
template <int BMAX>
class BatchedEngineT final : public BatchedEngine
{
  public:
    explicit BatchedEngineT(const IncrementalOptions &opt)
        : opt_(opt)
    {
    }

    int maxLanes() const override { return BMAX; }

    void setOptions(const IncrementalOptions &opt) override { opt_ = opt; }
    const IncrementalOptions &options() const override { return opt_; }

    void begin(const Network &net, NodeId node,
               const std::vector<Tensor> &cached) override;
    void seedLane(int lane, const NeuronIndex *neurons,
                  const float *values, std::size_t count) override;
    void execute() override;
    bool laneEarlyMasked(int lane) const override;
    const Tensor &laneOutput(int lane) override;

    const BatchedTotals &totals() const override { return totals_; }
    void resetTotals() override { totals_ = BatchedTotals{}; }

  private:
    void fallbackLanes(const Layer &layer, const Tensor &golden,
                       const std::vector<NodeId> &prods, NodeId id,
                       std::uint32_t coneMask, bool dense,
                       const Region &region,
                       const std::array<Region, BMAX> &cones);

    IncrementalOptions opt_;
    BatchedTotals totals_;

    const Network *net_ = nullptr;
    const std::vector<Tensor> *cached_ = nullptr;
    NodeId node_ = -1;
    std::uint32_t seeded_ = 0;
    std::uint32_t outMask_ = 0;

    // Per-node state, reused across batches (capacity is retained).
    std::vector<LanePlane> planes_;
    std::vector<std::array<Region, BMAX>> laneRegions_;
    std::vector<std::uint32_t> dirtyMask_;
    std::vector<unsigned char> denseDirty_;
    std::vector<const Tensor *> ins_;
    std::vector<LanePlane *> inPlanes_;
    BatchCover cover_;

    // Per-lane fallback scratch (materialised inputs / output).
    std::vector<Tensor> fbIn_;
    Tensor fbOut_;
    std::vector<const Tensor *> insLane_;

    Tensor outBuf_;
};

template <int BMAX>
void
BatchedEngineT<BMAX>::begin(const Network &net, NodeId node,
                            const std::vector<Tensor> &cached)
{
    const int num = net.numNodes();
    panic_if(node <= 0 || node >= num, "bad node id ", node);
    panic_if(cached.size() != static_cast<std::size_t>(num),
             "cached activation count mismatch");

    net_ = &net;
    cached_ = &cached;
    node_ = node;
    seeded_ = 0;
    outMask_ = 0;

    planes_.resize(num);
    laneRegions_.resize(num);
    dirtyMask_.assign(num, 0);
    denseDirty_.assign(num, 0);
    for (int i = 0; i < num; ++i)
        planes_[i].reset(BMAX);
    // Node 0 holds the raw network input, which never passed through a
    // precision writeback — consumers must convert it.
    planes_[0].markRaw();
    denseDirty_[node] = 1;
}

template <int BMAX>
void
BatchedEngineT<BMAX>::seedLane(int lane, const NeuronIndex *neurons,
                               const float *values, std::size_t count)
{
    panic_if(lane < 0 || lane >= BMAX, "bad lane ", lane);
    panic_if(net_ == nullptr, "seedLane before begin");
    seeded_ |= 1u << lane;

    const Tensor &golden = (*cached_)[node_];
    Region seed;
    for (std::size_t i = 0; i < count; ++i)
        seed.include(neurons[i]);
    if (seed.empty())
        return; // nothing changed; the lane is early-masked by design

    LanePlane &plane = planes_[node_];
    plane.ensure(golden, seed);
    plane.markRaw(); // fault values are arbitrary FP32 bit patterns
    for (std::size_t i = 0; i < count; ++i) {
        const NeuronIndex &ni = neurons[i];
        plane.lanes(golden.offset(ni.n, ni.h, ni.w, ni.c))[lane] =
            values[i];
    }

    dirtyMask_[node_] |= 1u << lane;
    laneRegions_[node_][lane] = seed;
}

template <int BMAX>
void
BatchedEngineT<BMAX>::execute()
{
    panic_if(net_ == nullptr, "execute before begin");
    totals_.batches += 1;
    totals_.lanesSeeded += std::popcount(seeded_);

    const Network &net = *net_;
    const std::vector<Tensor> &cached = *cached_;
    const NodeId out = net.outputNode();
    const int num = net.numNodes();

    if (node_ == out) {
        // The injected node is the output: like the scalar engine,
        // the seeded activation *is* the result — no early masking.
        outMask_ = seeded_;
        return;
    }

    for (NodeId id = node_ + 1; id < num; ++id) {
        const std::vector<NodeId> &prods = net.producers(id);
        std::uint32_t touched = 0;
        bool reachable = false;
        for (NodeId in : prods) {
            touched |= dirtyMask_[in];
            reachable = reachable || denseDirty_[in];
        }
        denseDirty_[id] = reachable ? 1 : 0;
        if (!touched) {
            if (reachable)
                ++totals_.layersSkipped;
            continue;
        }

        const Layer &layer = net.layer(id);
        const Tensor &golden = cached[id];
        ins_.clear();
        inPlanes_.clear();
        for (NodeId in : prods) {
            ins_.push_back(&cached[in]);
            inPlanes_.push_back(&planes_[in]);
        }

        // Per-lane fault cones, plus their union (the recompute box
        // shared by the whole batch).
        std::array<Region, BMAX> cones{};
        std::uint32_t coneMask = 0;
        bool anyFull = false;
        Region unionBox;
        for (int l = 0; l < BMAX; ++l) {
            if (!((touched >> l) & 1u))
                continue;
            Region cone;
            bool full = false;
            for (std::size_t k = 0; k < prods.size(); ++k) {
                if (!((dirtyMask_[prods[k]] >> l) & 1u))
                    continue;
                cone.merge(layer.propagateRegion(
                    ins_, static_cast<int>(k), laneRegions_[prods[k]][l],
                    golden));
                if (cone.covers(golden)) {
                    full = true;
                    break;
                }
            }
            if (cone.empty())
                continue; // this lane's change was clipped away
            cones[l] = cone;
            coneMask |= 1u << l;
            anyFull = anyFull || full;
            unionBox.merge(cone);
        }
        if (!coneMask) {
            dirtyMask_[id] = 0;
            continue;
        }

        // Union-of-cones coverage: per (n, h) row of the union bbox,
        // the merged w-intervals covered by at least one live cone.
        // Cells inside the bbox but outside every cone provably
        // recompute golden bits, so kernels and the diff scan skip
        // them (the plane's golden fill already holds their value).
        // The dense decision compares the *covered* volume — not the
        // bbox volume — against the threshold: scattered small cones
        // span a huge bbox but cost only their own cells to recompute.
        bool dense = anyFull || !opt_.enabled;
        if (!dense) {
            cover_.build(cones.data(), coneMask, BMAX, unionBox);
            const double coveredVol =
                static_cast<double>(cover_.coveredCells()) *
                cover_.coveredChans();
            dense = coveredVol >= opt_.denseThreshold *
                                      static_cast<double>(golden.size());
        }
        Region region = dense ? Region::full(golden) : unionBox;
        if (dense)
            for (int l = 0; l < BMAX; ++l)
                if ((coneMask >> l) & 1u)
                    cones[l] = region;
        const BatchCover *cover = dense ? nullptr : &cover_;

        LanePlane &plane = planes_[id];
        plane.ensure(golden, region);
        if (layer.forwardRegionBatched(ins_, inPlanes_.data(), region,
                                       cover, golden, plane)) {
            ++totals_.layersBatchedKernel;
        } else {
            fallbackLanes(layer, golden, prods, id, coneMask, dense,
                          region, cones);
            ++totals_.layersLaneFallback;
        }
        const std::uint64_t cells =
            cover ? cover_.coveredCells() *
                        static_cast<std::uint64_t>(cover_.coveredChans())
                  : region.volume();
        totals_.laneElements += cells *
                                static_cast<std::uint64_t>(
                                    std::popcount(coneMask));

        if (opt_.earlyExit) {
            // Shrink every live lane to the box that actually changed.
            // Scanning the shared union region is equivalent to the
            // scalar per-cone scan: outside its own cone a lane
            // provably recomputes golden bits, so it cannot light the
            // mask there.
            std::array<Region, BMAX> diffs{};
            const float *gd = golden.data().data();
            const BatchCover::Span full{region.w0, region.w1};
            const BatchCover::Span cfull{region.c0, region.c1};
            const BatchCover::Span *csp = &cfull;
            int ncs = 1;
            if (cover)
                csp = cover->chanSpans(ncs);
            for (int n = region.n0; n < region.n1; ++n) {
                for (int h = region.h0; h < region.h1; ++h) {
                    const BatchCover::Span *sp = &full;
                    int nsp = 1;
                    if (cover)
                        sp = cover->row(n, h, nsp);
                    for (int si = 0; si < nsp; ++si) {
                    for (int w = sp[si].w0; w < sp[si].w1; ++w) {
                        for (int cs = 0; cs < ncs; ++cs) {
                        std::size_t flat =
                            golden.offset(n, h, w, csp[cs].w0);
                        for (int c = csp[cs].w0; c < csp[cs].w1;
                             ++c, ++flat) {
                            std::uint32_t m =
                                simd::laneNeMask(plane.lanes(flat),
                                                 gd[flat], BMAX) &
                                coneMask;
                            if (!m)
                                continue;
                            while (m) {
                                int l = std::countr_zero(m);
                                m &= m - 1;
                                diffs[l].include({n, h, w, c});
                            }
                        }
                        }
                    }
                    }
                }
            }
            std::uint32_t live = 0;
            for (int l = 0; l < BMAX; ++l) {
                if (!((coneMask >> l) & 1u) || diffs[l].empty())
                    continue;
                live |= 1u << l;
                laneRegions_[id][l] = diffs[l];
            }
            dirtyMask_[id] = live;
        } else {
            dirtyMask_[id] = coneMask;
            for (int l = 0; l < BMAX; ++l)
                if ((coneMask >> l) & 1u)
                    laneRegions_[id][l] = cones[l];
        }
    }

    outMask_ = dirtyMask_[out];
    totals_.lanesRetiredEarly += std::popcount(seeded_ & ~outMask_);
}

/**
 * Per-lane fallback for layers without a batched kernel (FC / matmul /
 * softmax — small, post-pooling tensors): materialise each live lane's
 * inputs as plain tensors, run the scalar forwardRegion, and scatter
 * the result back into the output plane's lane column.
 */
template <int BMAX>
void
BatchedEngineT<BMAX>::fallbackLanes(const Layer &layer,
                                    const Tensor &golden,
                                    const std::vector<NodeId> &prods,
                                    NodeId id, std::uint32_t coneMask,
                                    bool dense, const Region &region,
                                    const std::array<Region, BMAX> &cones)
{
    const std::vector<Tensor> &cached = *cached_;
    if (fbIn_.size() < prods.size())
        fbIn_.resize(prods.size());

    for (int l = 0; l < BMAX; ++l) {
        if (!((coneMask >> l) & 1u))
            continue;
        insLane_.clear();
        for (std::size_t k = 0; k < prods.size(); ++k) {
            NodeId in = prods[k];
            if (!((dirtyMask_[in] >> l) & 1u)) {
                insLane_.push_back(&cached[in]);
                continue;
            }
            Tensor &buf = fbIn_[k];
            buf = cached[in]; // capacity-reusing copy
            const LanePlane &pp = planes_[in];
            const Region &r = laneRegions_[in][l];
            for (int n = r.n0; n < r.n1; ++n) {
                for (int h = r.h0; h < r.h1; ++h) {
                    for (int w = r.w0; w < r.w1; ++w) {
                        std::size_t flat = buf.offset(n, h, w, r.c0);
                        float *bd = buf.data().data();
                        for (int c = r.c0; c < r.c1; ++c, ++flat)
                            bd[flat] = pp.lanes(flat)[l];
                    }
                }
            }
            insLane_.push_back(&buf);
        }

        const Region &sc = dense ? region : cones[l];
        if (dense) {
            fbOut_ = layer.forward(insLane_);
        } else {
            fbOut_ = golden; // capacity-reusing copy; patch the cone
            layer.forwardRegion(insLane_, sc, fbOut_);
        }

        LanePlane &plane = planes_[id];
        const float *od = fbOut_.data().data();
        for (int n = sc.n0; n < sc.n1; ++n) {
            for (int h = sc.h0; h < sc.h1; ++h) {
                for (int w = sc.w0; w < sc.w1; ++w) {
                    std::size_t flat = golden.offset(n, h, w, sc.c0);
                    for (int c = sc.c0; c < sc.c1; ++c, ++flat)
                        plane.lanes(flat)[l] = od[flat];
                }
            }
        }
    }
}

template <int BMAX>
bool
BatchedEngineT<BMAX>::laneEarlyMasked(int lane) const
{
    panic_if(lane < 0 || lane >= BMAX, "bad lane ", lane);
    if (node_ == net_->outputNode())
        return false;
    return ((outMask_ >> lane) & 1u) == 0;
}

template <int BMAX>
const Tensor &
BatchedEngineT<BMAX>::laneOutput(int lane)
{
    panic_if(lane < 0 || lane >= BMAX, "bad lane ", lane);
    const NodeId out = net_->outputNode();
    const Tensor &golden = (*cached_)[out];
    if (((outMask_ >> lane) & 1u) == 0)
        return golden;

    // Overlay the lane column onto a golden copy.  Inside the valid
    // box but outside the lane's own diff the column holds golden bits
    // anyway, so overlaying the whole box is safe.
    outBuf_ = golden;
    const LanePlane &plane = planes_[out];
    const Region &v = plane.valid();
    float *od = outBuf_.data().data();
    for (int n = v.n0; n < v.n1; ++n) {
        for (int h = v.h0; h < v.h1; ++h) {
            for (int w = v.w0; w < v.w1; ++w) {
                std::size_t flat = golden.offset(n, h, w, v.c0);
                for (int c = v.c0; c < v.c1; ++c, ++flat)
                    od[flat] = plane.lanes(flat)[lane];
            }
        }
    }
    return outBuf_;
}

} // namespace

std::unique_ptr<BatchedEngine>
makeBatchedEngine(int width, const IncrementalOptions &opt)
{
    panic_if(width < 1 || width > kMaxBatchLanes,
             "batched engine width must be in [1, ", kMaxBatchLanes,
             "], got ", width);
    if (width <= 4)
        return std::make_unique<BatchedEngineT<4>>(opt);
    return std::make_unique<BatchedEngineT<8>>(opt);
}

} // namespace fidelity
