#include "nn/region.hh"

#include <algorithm>
#include <sstream>

namespace fidelity
{

std::size_t
Region::volume() const
{
    if (empty())
        return 0;
    return static_cast<std::size_t>(n1 - n0) * (h1 - h0) * (w1 - w0) *
           (c1 - c0);
}

Region
Region::full(const Tensor &t)
{
    return Region{0, t.n(), 0, t.h(), 0, t.w(), 0, t.c()};
}

Region
Region::of(const NeuronIndex &i)
{
    return Region{i.n, i.n + 1, i.h, i.h + 1, i.w, i.w + 1, i.c, i.c + 1};
}

bool
Region::covers(const Tensor &t) const
{
    return n0 <= 0 && n1 >= t.n() && h0 <= 0 && h1 >= t.h() && w0 <= 0 &&
           w1 >= t.w() && c0 <= 0 && c1 >= t.c();
}

bool
Region::contains(const NeuronIndex &i) const
{
    return i.n >= n0 && i.n < n1 && i.h >= h0 && i.h < h1 && i.w >= w0 &&
           i.w < w1 && i.c >= c0 && i.c < c1;
}

void
Region::include(const NeuronIndex &i)
{
    if (empty()) {
        *this = of(i);
        return;
    }
    n0 = std::min(n0, i.n);
    n1 = std::max(n1, i.n + 1);
    h0 = std::min(h0, i.h);
    h1 = std::max(h1, i.h + 1);
    w0 = std::min(w0, i.w);
    w1 = std::max(w1, i.w + 1);
    c0 = std::min(c0, i.c);
    c1 = std::max(c1, i.c + 1);
}

void
Region::merge(const Region &o)
{
    if (o.empty())
        return;
    if (empty()) {
        *this = o;
        return;
    }
    n0 = std::min(n0, o.n0);
    n1 = std::max(n1, o.n1);
    h0 = std::min(h0, o.h0);
    h1 = std::max(h1, o.h1);
    w0 = std::min(w0, o.w0);
    w1 = std::max(w1, o.w1);
    c0 = std::min(c0, o.c0);
    c1 = std::max(c1, o.c1);
}

Region
Region::clipped(const Tensor &t) const
{
    Region r;
    r.n0 = std::max(n0, 0);
    r.n1 = std::min(n1, t.n());
    r.h0 = std::max(h0, 0);
    r.h1 = std::min(h1, t.h());
    r.w0 = std::max(w0, 0);
    r.w1 = std::min(w1, t.w());
    r.c0 = std::max(c0, 0);
    r.c1 = std::min(c1, t.c());
    if (r.empty())
        return Region{};
    return r;
}

std::pair<int, int>
windowCone(int in0, int in1, int k, int stride, int pad, int dilation,
           int out_dim)
{
    if (in0 >= in1)
        return {0, 0};
    // Window o reads inputs [o*stride - pad, o*stride - pad + reach];
    // it is in the cone iff that interval intersects [in0, in1).
    int reach = (k - 1) * dilation;
    int num = in0 + pad - reach;
    int lo = num > 0 ? (num + stride - 1) / stride : 0;
    int hi = (in1 - 1 + pad) / stride + 1;
    lo = std::max(lo, 0);
    hi = std::min(hi, out_dim);
    if (lo >= hi)
        return {0, 0};
    return {lo, hi};
}

std::string
Region::str() const
{
    std::ostringstream os;
    os << "[" << n0 << "," << n1 << ")x[" << h0 << "," << h1 << ")x["
       << w0 << "," << w1 << ")x[" << c0 << "," << c1 << ")";
    return os.str();
}

} // namespace fidelity
