#include "nn/network.hh"

#include "sim/logging.hh"

namespace fidelity
{

Network::Network(std::string name)
    : name_(std::move(name)),
      macOpsCache_(std::make_unique<MacOpsCache>())
{
    // Node 0 is the external input.
    nodes_.push_back(Node{nullptr, {}});
}

NodeId
Network::add(std::unique_ptr<Layer> layer, std::vector<NodeId> inputs)
{
    panic_if(!layer, "Network::add requires a layer");
    panic_if(static_cast<int>(inputs.size()) != layer->numInputs(),
             "layer ", layer->name(), " expects ", layer->numInputs(),
             " inputs, got ", inputs.size());
    NodeId id = static_cast<NodeId>(nodes_.size());
    for (NodeId in : inputs)
        panic_if(in < 0 || in >= id,
                 "layer ", layer->name(), ": producer ", in,
                 " is not an earlier node");
    layer->setPrecision(precision_);
    nodes_.push_back(Node{std::move(layer), std::move(inputs)});
    return id;
}

NodeId
Network::add(std::unique_ptr<Layer> layer, NodeId input)
{
    return add(std::move(layer), std::vector<NodeId>{input});
}

Layer &
Network::layer(NodeId id)
{
    panic_if(id <= 0 || id >= numNodes(), "bad node id ", id);
    return *nodes_[id].layer;
}

const Layer &
Network::layer(NodeId id) const
{
    panic_if(id <= 0 || id >= numNodes(), "bad node id ", id);
    return *nodes_[id].layer;
}

const std::vector<NodeId> &
Network::producers(NodeId id) const
{
    panic_if(id <= 0 || id >= numNodes(), "bad node id ", id);
    return nodes_[id].inputs;
}

NodeId
Network::outputNode() const
{
    panic_if(numNodes() < 2, "network ", name_, " has no layers");
    return numNodes() - 1;
}

void
Network::setPrecision(Precision p)
{
    precision_ = p;
    for (auto &n : nodes_)
        if (n.layer)
            n.layer->setPrecision(p);
}

void
Network::calibrate(const Tensor &input)
{
    Precision saved = precision_;
    setPrecision(Precision::FP32);
    std::vector<Tensor> acts(nodes_.size());
    acts[0] = input;
    for (NodeId id = 1; id < numNodes(); ++id) {
        auto ins = gatherInputs(id, acts);
        acts[id] = nodes_[id].layer->forward(ins);
        nodes_[id].layer->calibrate(ins, acts[id]);
    }
    setPrecision(saved);
}

std::vector<const Tensor *>
Network::gatherInputs(NodeId id, const std::vector<Tensor> &acts) const
{
    std::vector<const Tensor *> ins;
    ins.reserve(nodes_[id].inputs.size());
    for (NodeId in : nodes_[id].inputs)
        ins.push_back(&acts[in]);
    return ins;
}

std::vector<Tensor>
Network::forwardAll(const Tensor &input) const
{
    std::vector<Tensor> acts(nodes_.size());
    acts[0] = input;
    for (NodeId id = 1; id < numNodes(); ++id)
        acts[id] = nodes_[id].layer->forward(gatherInputs(id, acts));
    return acts;
}

Tensor
Network::forward(const Tensor &input) const
{
    return forwardAll(input)[outputNode()];
}

Tensor
Network::forwardFrom(NodeId node, const Tensor &replacement,
                     const std::vector<Tensor> &cached) const
{
    panic_if(node <= 0 || node >= numNodes(), "bad node id ", node);
    panic_if(cached.size() != nodes_.size(),
             "cached activation count mismatch");
    if (node == outputNode())
        return replacement;

    // Nodes are topologically ordered, so recomputing every node after
    // `node` (reading cached values for nodes at or before it, with the
    // replacement standing in for `node`) is sufficient.  Mark which
    // nodes are actually downstream to skip independent branches.
    std::vector<bool> dirty(nodes_.size(), false);
    dirty[node] = true;
    std::vector<Tensor> recomputed(nodes_.size());
    for (NodeId id = node + 1; id < numNodes(); ++id) {
        bool needs = false;
        for (NodeId in : nodes_[id].inputs)
            needs = needs || dirty[in];
        if (!needs)
            continue;
        dirty[id] = true;
        std::vector<const Tensor *> ins;
        ins.reserve(nodes_[id].inputs.size());
        for (NodeId in : nodes_[id].inputs) {
            if (in == node)
                ins.push_back(&replacement);
            else if (dirty[in])
                ins.push_back(&recomputed[in]);
            else
                ins.push_back(&cached[in]);
        }
        recomputed[id] = nodes_[id].layer->forward(ins);
    }
    NodeId out = outputNode();
    return dirty[out] ? std::move(recomputed[out]) : cached[out];
}

std::vector<NodeId>
Network::macNodes() const
{
    std::vector<NodeId> out;
    for (NodeId id = 1; id < numNodes(); ++id) {
        LayerKind k = nodes_[id].layer->kind();
        if (k == LayerKind::Conv || k == LayerKind::FC ||
            k == LayerKind::MatMul)
            out.push_back(id);
    }
    return out;
}

std::uint64_t
Network::totalMacOps(const std::vector<Tensor> &acts) const
{
    panic_if(acts.size() != nodes_.size(),
             "activation count mismatch in totalMacOps");
    std::uint64_t total = 0;
    for (NodeId id : macNodes()) {
        const auto *mac = dynamic_cast<const MacLayer *>(&layer(id));
        // MatMulAB derives its reduction length from the last
        // execution; touch one neuron only if it has never run.
        if (mac->reductionLength() == 0 && acts[id].size() > 0) {
            auto ins = gatherInputs(id, acts);
            mac->computeNeuron(ins, acts[id].indexOf(0), nullptr);
        }
        total += acts[id].size() *
                 static_cast<std::uint64_t>(mac->reductionLength());
    }
    return total;
}

std::uint64_t
Network::totalMacOps(const Tensor &input) const
{
    std::array<int, 4> key{input.n(), input.h(), input.w(), input.c()};
    {
        std::lock_guard<std::mutex> lock(macOpsCache_->mutex);
        for (const auto &[k, v] : macOpsCache_->entries)
            if (k == key)
                return v;
    }
    std::uint64_t total = totalMacOps(forwardAll(input));
    std::lock_guard<std::mutex> lock(macOpsCache_->mutex);
    macOpsCache_->entries.emplace_back(key, total);
    return total;
}

} // namespace fidelity
