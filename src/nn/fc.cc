#include "nn/fc.hh"

#include "sim/arena.hh"
#include "sim/logging.hh"
#include "simd/convert.hh"
#include "simd/gemm.hh"

namespace fidelity
{

FC::FC(std::string name, int in_c, int units, std::vector<float> weights,
       std::vector<float> bias)
    : MacLayer(std::move(name)), inC_(in_c), units_(units),
      weights_(std::move(weights)), bias_(std::move(bias))
{
    fatal_if(in_c <= 0 || units <= 0, "fc ", name_,
             ": dimensions must be positive");
    std::size_t expect = static_cast<std::size_t>(in_c) * units;
    fatal_if(weights_.size() != expect, "fc ", name_, ": expected ",
             expect, " weights, got ", weights_.size());
    fatal_if(!bias_.empty() &&
             bias_.size() != static_cast<std::size_t>(units),
             "fc ", name_, ": bias size mismatch");
    // Immutable weights pack once, here; the quantised modes repack
    // lazily through onQuantChanged().
    packWeights();
}

void
FC::checkInput(const std::vector<const Tensor *> &ins) const
{
    panic_if(ins.size() != 1, "fc expects one input");
    panic_if(ins[0]->c() != inC_, "fc ", name_, ": input channels ",
             ins[0]->c(), " != ", inC_);
}

Tensor
FC::makeOutput(const std::vector<const Tensor *> &ins) const
{
    checkInput(ins);
    const Tensor &x = *ins[0];
    return Tensor(x.n(), x.h(), x.w(), units_);
}

float
FC::computeNeuron(const std::vector<const Tensor *> &ins,
                  const NeuronIndex &out, const OperandSub *sub) const
{
    const Tensor &x = *ins[0];
    bool integer = precision_ == Precision::INT8 ||
                   precision_ == Precision::INT16;
    const float *xd = x.data().data();
    const float *wd = weights_.data();
    const std::size_t pos_base =
        ((static_cast<std::size_t>(out.n) * x.h() + out.h) * x.w() +
         out.w) * x.c();
    float acc = 0.0f;
    std::int64_t iacc = 0;
    for (int ci = 0; ci < inC_; ++ci) {
        std::size_t xoff = pos_base + ci;
        std::size_t widx = static_cast<std::size_t>(ci) * units_ + out.c;
        float xin = xd[xoff];
        float wv = wd[widx];
        for (const OperandSub *s = sub; s; s = s->next) {
            if (s->kind == OperandSub::Kind::Input &&
                (s->termIndex >= 0 ? ci == s->termIndex
                                   : xoff == s->flatIndex)) {
                xin = s->value;
            } else if (s->kind == OperandSub::Kind::Weight &&
                       widx == s->flatIndex) {
                wv = s->value;
            }
        }
        for (const OperandSub *s = sub; s; s = s->next) {
            if (s->kind == OperandSub::Kind::PsumFlip &&
                ci == static_cast<int>(s->flatIndex)) {
                if (integer)
                    iacc = psumFlipInt(iacc, s->flipMask());
                else
                    acc = psumFlipFloat(acc, s->flipMask());
            }
        }
        if (integer)
            iacc += static_cast<std::int64_t>(quantInput(xin)) *
                    quantWeight(wv);
        else
            acc += storeInput(xin) * storeWeight(wv);
    }
    for (const OperandSub *s = sub; s; s = s->next) {
        if (s->kind == OperandSub::Kind::PsumFlip &&
            inC_ == static_cast<int>(s->flatIndex)) {
            if (integer)
                iacc = psumFlipInt(iacc, s->flipMask());
            else
                acc = psumFlipFloat(acc, s->flipMask());
        }
    }
    double facc = integer
        ? static_cast<double>(iacc) * inQuant_.scale * wQuant_.scale
        : static_cast<double>(acc);
    float b = bias_.empty() ? 0.0f : bias_[out.c];
    for (const OperandSub *s = sub; s; s = s->next)
        if (s->kind == OperandSub::Kind::Bias)
            b = s->value;
    return writeback(facc, b);
}

void
FC::packWeights() const
{
    // Stored-form conversion + lane-blocked scatter (see Conv2D).
    bool integer = precision_ == Precision::INT8 ||
                   precision_ == Precision::INT16;
    Arena &arena = Arena::local();
    auto get = [&](const auto *src) {
        return [src, this](int k, int c) {
            return src[static_cast<std::size_t>(k) * units_ + c];
        };
    };
    if (integer) {
        auto tmp = arena.ints(weights_.size());
        simd::quantizeBatch(weights_.data(), tmp.data(),
                            weights_.size(), wQuant_);
        // Max |w| plus the operand bound |x| <= 2^(bits-1) proves the
        // narrow kernels' int32 chunk length; commit to the narrow or
        // the wide pack accordingly (both exact — see Conv2D).
        std::int32_t maxAbsW = 0;
        for (std::size_t i = 0; i < weights_.size(); ++i) {
            std::int32_t a = tmp[i] < 0 ? -tmp[i] : tmp[i];
            maxAbsW = a > maxAbsW ? a : maxAbsW;
        }
        const int bits = precision_ == Precision::INT8 ? 8 : 16;
        int chunk = simd::narrowChunkPairs(bits, maxAbsW);
        if (simd::narrowEligible(chunk)) {
            chunkPairs_ = chunk;
            wPackN_.resize(simd::packNarrowSize(inC_, units_));
            wPackI_.clear();
            wPackF_.clear();
            simd::packNarrow(inC_, units_, get(tmp.data()),
                             wPackN_.data());
        } else {
            constexpr int L = simd::kI64Lanes;
            chunkPairs_ = 0;
            wPackI_.resize(simd::packSize(inC_, units_, L));
            wPackN_.clear();
            wPackF_.clear();
            simd::packLaneBlocked(inC_, units_, L, get(tmp.data()),
                                  wPackI_.data());
        }
    } else {
        constexpr int L = simd::kF32Lanes;
        chunkPairs_ = 0;
        const float *src = weights_.data();
        Arena::Lease<float> tmp = arena.floats(
            precision_ == Precision::FP16 ? weights_.size() : 0);
        if (precision_ == Precision::FP16) {
            simd::roundToHalfBatch(weights_.data(), tmp.data(),
                                   weights_.size());
            src = tmp.data();
        }
        wPackF_.resize(simd::packSize(inC_, units_, L));
        wPackI_.clear();
        wPackN_.clear();
        simd::packLaneBlocked(inC_, units_, L, get(src),
                              wPackF_.data());
    }
    wPackValid_ = true;
}

Tensor
FC::forward(const std::vector<const Tensor *> &ins) const
{
    // Fast path, bit-identical to computeNeuron(); see Conv2D.
    Tensor out = makeOutput(ins);
    const Tensor &x = *ins[0];
    bool integer = precision_ == Precision::INT8 ||
                   precision_ == Precision::INT16;
    if (!wPackValid_)
        packWeights();

    const bool narrow = integer && chunkPairs_ > 0;
    Arena &arena = Arena::local();
    auto xs = arena.floats(
        integer || precision_ == Precision::FP32 ? 0 : x.size());
    auto xq = arena.ints(integer ? x.size() : 0);
    // Narrowed operands, one zeroed pad element past the end so the
    // final position's odd-reduction pair is readable (its weight is
    // zero, so the value cannot matter).
    auto xn = arena.shorts(narrow ? x.size() + 1 : 0);
    auto accF = arena.floats(
        integer ? 0 : simd::packSize(1, units_, simd::kF32Lanes));
    auto accL = arena.longs(
        integer
            ? (narrow ? simd::packSize(1, units_, simd::kNarrowLanes)
                      : simd::packSize(1, units_, simd::kI64Lanes))
            : 0);
    const float *xf = x.data().data();
    if (integer) {
        simd::quantizeBatch(xf, xq.data(), x.size(), inQuant_);
        if (narrow) {
            for (std::size_t i = 0; i < x.size(); ++i)
                xn[i] = static_cast<std::int16_t>(xq[i]);
            xn[x.size()] = 0;
        }
    } else if (precision_ == Precision::FP16) {
        simd::roundToHalfBatch(xf, xs.data(), x.size());
        xf = xs.data();
    }

    std::size_t positions = x.size() / inC_;
    auto biasAt = [&](int u) {
        return bias_.empty() ? 0.0f : bias_[u];
    };
    const simd::KernelTable &kt = simd::table();
    if (integer) {
        auto wb = [&](std::int64_t iacc, int u) {
            return writeback(static_cast<double>(iacc) *
                                 inQuant_.scale * wQuant_.scale,
                             biasAt(u));
        };
        if (narrow)
            simd::denseNarrow(kt, xn.data(), positions, inC_, units_,
                              wPackN_.data(), chunkPairs_, accL.data(),
                              out.data().data(), wb);
        else
            simd::denseInt(kt, xq.data(), positions, inC_, units_,
                           wPackI_.data(), accL.data(),
                           out.data().data(), wb);
    } else {
        simd::denseFloat(kt, xf, positions, inC_, units_,
                         wPackF_.data(), accF.data(),
                         out.data().data(), [&](double acc, int u) {
                             return writeback(acc, biasAt(u));
                         });
    }
    return out;
}

std::size_t
FC::weightCount(const std::vector<const Tensor *> &) const
{
    return weights_.size();
}

float
FC::weightAt(const std::vector<const Tensor *> &, std::size_t idx) const
{
    panic_if(idx >= weights_.size(), "weight index out of range");
    return weights_[idx];
}

std::vector<NeuronIndex>
FC::inputConsumers(const std::vector<const Tensor *> &ins,
                   std::size_t elem) const
{
    checkInput(ins);
    NeuronIndex e = ins[0]->indexOf(elem);
    std::vector<NeuronIndex> out;
    out.reserve(units_);
    for (int u = 0; u < units_; ++u)
        out.push_back({e.n, e.h, e.w, u});
    return out;
}

std::vector<NeuronIndex>
FC::weightConsumers(const std::vector<const Tensor *> &ins,
                    std::size_t widx) const
{
    checkInput(ins);
    panic_if(widx >= weights_.size(), "weight index out of range");
    const Tensor &x = *ins[0];
    int u = static_cast<int>(widx % units_);
    std::vector<NeuronIndex> out;
    // One neuron per (n, h, w) position uses each weight.
    for (int n = 0; n < x.n(); ++n)
        for (int h = 0; h < x.h(); ++h)
            for (int w = 0; w < x.w(); ++w)
                out.push_back({n, h, w, u});
    return out;
}

} // namespace fidelity
