/**
 * @file
 * Two-operand matrix multiplication (MatMulAB), used by attention.
 *
 * A has shape (N, Ha, 1, Ca) and B has shape (1, Hb, 1, Cb); both
 * operands are activations.  In the accelerator, the B operand streams
 * through the weight port, so FIdelity's fault models treat B elements
 * as "weights".  With transB the layer computes A * B^T (rows of B are
 * the reduction vectors), otherwise A * B.
 */

#ifndef FIDELITY_NN_MATMUL_HH
#define FIDELITY_NN_MATMUL_HH

#include <atomic>

#include "nn/layer.hh"

namespace fidelity
{

/** Batched A*B (or A*B^T) where both operands come from the graph. */
class MatMulAB : public MacLayer
{
  public:
    /**
     * @param name Layer name.
     * @param trans_b Compute A * B^T instead of A * B.
     * @param scale Constant multiplied into every output (e.g. the
     *              1/sqrt(d) attention scaling); applied at writeback.
     */
    MatMulAB(std::string name, bool trans_b, float scale = 1.0f);

    LayerKind kind() const override { return LayerKind::MatMul; }

    using Layer::forward;
    int numInputs() const override { return 2; }

    bool transB() const { return transB_; }

    /** Constant output scaling applied at writeback. */
    float outScale() const { return scale_; }

    Tensor makeOutput(const std::vector<const Tensor *> &ins) const override;
    Tensor forward(const std::vector<const Tensor *> &ins) const override;

    std::size_t
    weightCount(const std::vector<const Tensor *> &ins) const override;
    float weightAt(const std::vector<const Tensor *> &ins,
                   std::size_t idx) const override;

    std::vector<NeuronIndex>
    inputConsumers(const std::vector<const Tensor *> &ins,
                   std::size_t elem) const override;
    std::vector<NeuronIndex>
    weightConsumers(const std::vector<const Tensor *> &ins,
                    std::size_t widx) const override;

    float computeNeuron(const std::vector<const Tensor *> &ins,
                        const NeuronIndex &out,
                        const OperandSub *sub) const override;

    int
    reductionLength() const override
    {
        return lastReduction_.load(std::memory_order_relaxed);
    }
    bool hasBias() const override { return false; }

  private:
    void checkInputs(const std::vector<const Tensor *> &ins) const;

    bool transB_;
    float scale_;

    // Recorded on every forward()/computeNeuron() so reductionLength()
    // has a defined value; the reduction depth is fixed by the input
    // shapes, so concurrent recorders always store the same number —
    // relaxed atomics make that benign race a defined one.
    mutable std::atomic<int> lastReduction_ = 0;
};

} // namespace fidelity

#endif // FIDELITY_NN_MATMUL_HH
