#include "nn/attention.hh"

#include <cmath>
#include <memory>

#include "nn/activation.hh"
#include "nn/elementwise.hh"
#include "nn/fc.hh"
#include "nn/init.hh"
#include "nn/matmul.hh"
#include "nn/softmax.hh"

namespace fidelity
{

namespace
{

/** A dModel -> units projection with He-initialised weights. */
NodeId
proj(Network &net, NodeId in, int in_c, int units, Rng &rng,
     const std::string &name)
{
    return net.add(
        std::make_unique<FC>(name, in_c, units,
                             heWeights(rng,
                                       static_cast<std::size_t>(in_c) *
                                           units,
                                       in_c),
                             smallBiases(rng, units)),
        in);
}

} // namespace

NodeId
addAttentionBlock(Network &net, NodeId input, const AttentionSpec &spec,
                  Rng &rng, const std::string &prefix)
{
    int d = spec.dModel;

    NodeId q = proj(net, input, d, d, rng, prefix + ".q");
    NodeId k = proj(net, input, d, d, rng, prefix + ".k");
    NodeId v = proj(net, input, d, d, rng, prefix + ".v");

    float scale = 1.0f / std::sqrt(static_cast<float>(d));
    NodeId scores = net.add(
        std::make_unique<MatMulAB>(prefix + ".qkT", /*trans_b=*/true,
                                   scale),
        std::vector<NodeId>{q, k});
    NodeId attn =
        net.add(std::make_unique<Softmax>(prefix + ".softmax"), scores);
    NodeId ctx = net.add(
        std::make_unique<MatMulAB>(prefix + ".av", /*trans_b=*/false),
        std::vector<NodeId>{attn, v});

    NodeId out_proj = proj(net, ctx, d, d, rng, prefix + ".out");
    NodeId res1 = net.add(std::make_unique<Elementwise>(
                              prefix + ".res1", Elementwise::Op::Add),
                          std::vector<NodeId>{out_proj, input});

    NodeId ff1 = proj(net, res1, d, spec.dFF, rng, prefix + ".ff1");
    NodeId ff1_act = net.add(std::make_unique<Activation>(
                                 prefix + ".ff1.relu",
                                 Activation::Func::ReLU),
                             ff1);
    NodeId ff2 = proj(net, ff1_act, spec.dFF, d, rng, prefix + ".ff2");
    return net.add(std::make_unique<Elementwise>(prefix + ".res2",
                                                 Elementwise::Op::Add),
                   std::vector<NodeId>{ff2, res1});
}

} // namespace fidelity
