/**
 * @file
 * Axis-aligned bounding boxes over NHWC tensors (fault cones).
 *
 * The incremental re-execution engine tracks, per layer output, a
 * conservative bounding box of the elements that may differ from the
 * golden activation.  Spatially local layers (conv / pool / activation
 * / elementwise) map an input box to the box of outputs whose receptive
 * field intersects it — the fault cone — so only that box has to be
 * recomputed.  Boxes are half-open on every axis: [n0, n1) x [h0, h1) x
 * [w0, w1) x [c0, c1).
 */

#ifndef FIDELITY_NN_REGION_HH
#define FIDELITY_NN_REGION_HH

#include <cstddef>
#include <string>
#include <utility>

#include "tensor/tensor.hh"

namespace fidelity
{

/** Half-open NHWC bounding box; the default is the empty region. */
struct Region
{
    int n0 = 0, n1 = 0;
    int h0 = 0, h1 = 0;
    int w0 = 0, w1 = 0;
    int c0 = 0, c1 = 0;

    /** True when the box contains no elements. */
    bool
    empty() const
    {
        return n0 >= n1 || h0 >= h1 || w0 >= w1 || c0 >= c1;
    }

    /** Number of elements in the box. */
    std::size_t volume() const;

    /** The whole of a tensor's index space. */
    static Region full(const Tensor &t);

    /** A single-element box. */
    static Region of(const NeuronIndex &i);

    /** True when the box covers every element of the tensor. */
    bool covers(const Tensor &t) const;

    /** True when the element lies inside the box. */
    bool contains(const NeuronIndex &i) const;

    /** Grow the box to include one element. */
    void include(const NeuronIndex &i);

    /** Grow the box to the bounding box of the union with `o`. */
    void merge(const Region &o);

    /** The box clipped to a tensor's index space. */
    Region clipped(const Tensor &t) const;

    bool operator==(const Region &o) const = default;

    /** "[n0,n1)x[h0,h1)x[w0,w1)x[c0,c1)" for diagnostics. */
    std::string str() const;
};

/**
 * Output index span [lo, hi) of the sliding windows (kernel k, given
 * stride / symmetric pad / dilation) that read any input index in
 * [in0, in1); the shared spatial-cone step of conv and pool layers.
 * The span is clipped to [0, out_dim).
 */
std::pair<int, int> windowCone(int in0, int in1, int k, int stride,
                               int pad, int dilation, int out_dim);

} // namespace fidelity

#endif // FIDELITY_NN_REGION_HH
