#include "nn/lstm.hh"

#include <memory>

#include "nn/activation.hh"
#include "nn/elementwise.hh"
#include "nn/fc.hh"
#include "nn/init.hh"

namespace fidelity
{

namespace
{

/** Slice one gate out of the packed 4H gate vector. */
NodeId
gateSlice(Network &net, NodeId gates, int hidden, int which,
          const std::string &name)
{
    return net.add(std::make_unique<Slice>(name, Slice::Axis::C,
                                           which * hidden, hidden),
                   gates);
}

} // namespace

NodeId
addLstm(Network &net, NodeId input, const LstmSpec &spec, Rng &rng,
        const std::string &prefix)
{
    NodeId h_prev = -1;
    NodeId c_prev = -1;
    int hid = spec.hiddenSize;

    for (int t = 0; t < spec.timeSteps; ++t) {
        std::string p = prefix + ".t" + std::to_string(t);

        // x_t: (1, 1, 1, inputSize)
        NodeId x_t = net.add(
            std::make_unique<Slice>(p + ".x", Slice::Axis::H, t, 1), input);

        // Gate projection input: [x_t ; h_{t-1}] (just x_0 on step 0,
        // since h_0 = 0 contributes nothing).
        NodeId gin = x_t;
        int gin_c = spec.inputSize;
        if (t > 0) {
            gin = net.add(std::make_unique<ConcatC>(p + ".xh"),
                          std::vector<NodeId>{x_t, h_prev});
            gin_c += hid;
        }

        NodeId gates = net.add(
            std::make_unique<FC>(p + ".gates", gin_c, 4 * hid,
                                 heWeights(rng,
                                           static_cast<std::size_t>(gin_c) *
                                               4 * hid,
                                           gin_c),
                                 smallBiases(rng, 4 * hid)),
            gin);

        NodeId i_raw = gateSlice(net, gates, hid, 0, p + ".i");
        NodeId f_raw = gateSlice(net, gates, hid, 1, p + ".f");
        NodeId g_raw = gateSlice(net, gates, hid, 2, p + ".g");
        NodeId o_raw = gateSlice(net, gates, hid, 3, p + ".o");

        NodeId i_g = net.add(std::make_unique<Activation>(
                                 p + ".i.sig", Activation::Func::Sigmoid),
                             i_raw);
        NodeId f_g = net.add(std::make_unique<Activation>(
                                 p + ".f.sig", Activation::Func::Sigmoid),
                             f_raw);
        NodeId g_g = net.add(std::make_unique<Activation>(
                                 p + ".g.tanh", Activation::Func::Tanh),
                             g_raw);
        NodeId o_g = net.add(std::make_unique<Activation>(
                                 p + ".o.sig", Activation::Func::Sigmoid),
                             o_raw);

        // c_t = f * c_{t-1} + i * g   (c_0 = 0 drops the first term).
        NodeId ig = net.add(std::make_unique<Elementwise>(
                                p + ".ig", Elementwise::Op::Mul),
                            std::vector<NodeId>{i_g, g_g});
        NodeId c_t = ig;
        if (t > 0) {
            NodeId fc_prev = net.add(std::make_unique<Elementwise>(
                                         p + ".fc", Elementwise::Op::Mul),
                                     std::vector<NodeId>{f_g, c_prev});
            c_t = net.add(std::make_unique<Elementwise>(
                              p + ".c", Elementwise::Op::Add),
                          std::vector<NodeId>{ig, fc_prev});
        }

        NodeId c_tanh = net.add(std::make_unique<Activation>(
                                    p + ".c.tanh", Activation::Func::Tanh),
                                c_t);
        NodeId h_t = net.add(std::make_unique<Elementwise>(
                                 p + ".h", Elementwise::Op::Mul),
                             std::vector<NodeId>{o_g, c_tanh});

        h_prev = h_t;
        c_prev = c_t;
    }
    return h_prev;
}

} // namespace fidelity
