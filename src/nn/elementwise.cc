#include "nn/elementwise.hh"

#include <algorithm>

#include "nn/lanes.hh"
#include "sim/logging.hh"
#include "simd/convert.hh"
#include "simd/simd.hh"
#include "tensor/bitops.hh"

namespace fidelity
{

namespace
{

void
roundForPrecision(Tensor &t, Precision p)
{
    if (p == Precision::FP16)
        simd::roundToHalfBatch(t.data().data(), t.data().data(),
                               t.size());
}

} // namespace

Elementwise::Elementwise(std::string name, Op op)
    : Layer(std::move(name)), op_(op)
{
}

Tensor
Elementwise::makeOutput(const std::vector<const Tensor *> &ins) const
{
    panic_if(ins.size() != 2, "elementwise expects two inputs");
    panic_if(!ins[0]->sameShape(*ins[1]),
             "elementwise ", name_, ": shape mismatch ",
             ins[0]->shapeStr(), " vs ", ins[1]->shapeStr());
    const Tensor &x = *ins[0];
    return Tensor(x.n(), x.h(), x.w(), x.c());
}

Tensor
Elementwise::forward(const std::vector<const Tensor *> &ins) const
{
    const Tensor &a = *ins[0];
    const Tensor &b = *ins[1];
    Tensor out = makeOutput(ins);
    const float *ad = a.data().data();
    const float *bd = b.data().data();
    float *od = out.data().data();
    const std::size_t sz = a.size();
    const simd::KernelTable &kt = simd::table();
    (op_ == Op::Add ? kt.addF32
     : op_ == Op::Mul ? kt.mulF32
                      : kt.subF32)(ad, bd, od, sz);
    roundForPrecision(out, precision_);
    return out;
}

Region
Elementwise::propagateRegion(const std::vector<const Tensor *> &, int,
                             const Region &in, const Tensor &out) const
{
    return in.clipped(out);
}

void
Elementwise::forwardRegion(const std::vector<const Tensor *> &ins,
                           const Region &region, Tensor &out) const
{
    const Tensor &a = *ins[0];
    const Tensor &b = *ins[1];
    bool half = precision_ == Precision::FP16;
    for (int n = region.n0; n < region.n1; ++n)
        for (int h = region.h0; h < region.h1; ++h)
            for (int w = region.w0; w < region.w1; ++w)
                for (int c = region.c0; c < region.c1; ++c) {
                    float av = a.at(n, h, w, c);
                    float bv = b.at(n, h, w, c);
                    float v = 0.0f;
                    switch (op_) {
                      case Op::Add:
                        v = av + bv;
                        break;
                      case Op::Mul:
                        v = av * bv;
                        break;
                      case Op::Sub:
                        v = av - bv;
                        break;
                    }
                    out.at(n, h, w, c) = half ? roundToHalf(v) : v;
                }
}

bool
Elementwise::forwardRegionBatched(const std::vector<const Tensor *> &ins,
                                  LanePlane *const *inPlanes,
                                  const Region &region,
                                  const BatchCover *cover,
                                  const Tensor &golden,
                                  LanePlane &out) const
{
    if (region.empty())
        return true;
    const Tensor &a = *ins[0];
    const Tensor &b = *ins[1];
    LanePlane &ap = *inPlanes[0];
    LanePlane &bp = *inPlanes[1];
    ap.ensure(a, region);
    bp.ensure(b, region);

    // Lane rows of consecutive channels are one contiguous float run;
    // combine each (n, h, w) row with the vector op like forward()
    // does and round the run as one batch (identical per element).
    const int W = out.laneWidth();
    const bool half = precision_ == Precision::FP16;
    const std::size_t run =
        static_cast<std::size_t>(region.c1 - region.c0) * W;
    const simd::KernelTable &kt = simd::table();
    auto op = op_ == Op::Add ? kt.addF32
              : op_ == Op::Mul ? kt.mulF32
                               : kt.subF32;
    const BatchCover::Span full{region.w0, region.w1};
    for (int n = region.n0; n < region.n1; ++n) {
        for (int h = region.h0; h < region.h1; ++h) {
            const BatchCover::Span *sp = &full;
            int nsp = 1;
            if (cover)
                sp = cover->row(n, h, nsp);
            for (int si = 0; si < nsp; ++si) {
            for (int w = sp[si].w0; w < sp[si].w1; ++w) {
                std::size_t f0 = golden.offset(n, h, w, region.c0);
                float *od = out.lanes(f0);
                op(ap.lanes(f0), bp.lanes(f0), od, run);
                if (half)
                    simd::roundToHalfBatch(od, od, run);
            }
            }
        }
    }
    return true;
}

ConcatC::ConcatC(std::string name)
    : Layer(std::move(name))
{
}

Tensor
ConcatC::makeOutput(const std::vector<const Tensor *> &ins) const
{
    panic_if(ins.size() != 2, "concat expects two inputs");
    const Tensor &a = *ins[0];
    const Tensor &b = *ins[1];
    panic_if(a.n() != b.n() || a.h() != b.h() || a.w() != b.w(),
             "concat ", name_, ": spatial mismatch ", a.shapeStr(),
             " vs ", b.shapeStr());
    return Tensor(a.n(), a.h(), a.w(), a.c() + b.c());
}

Tensor
ConcatC::forward(const std::vector<const Tensor *> &ins) const
{
    const Tensor &a = *ins[0];
    const Tensor &b = *ins[1];
    Tensor out = makeOutput(ins);
    for (int n = 0; n < out.n(); ++n) {
        for (int h = 0; h < out.h(); ++h) {
            for (int w = 0; w < out.w(); ++w) {
                for (int c = 0; c < a.c(); ++c)
                    out.at(n, h, w, c) = a.at(n, h, w, c);
                for (int c = 0; c < b.c(); ++c)
                    out.at(n, h, w, a.c() + c) = b.at(n, h, w, c);
            }
        }
    }
    return out;
}

Region
ConcatC::propagateRegion(const std::vector<const Tensor *> &ins,
                         int inputIdx, const Region &in,
                         const Tensor &out) const
{
    if (in.empty())
        return Region{};
    Region r = in;
    if (inputIdx == 1) {
        r.c0 += ins[0]->c();
        r.c1 += ins[0]->c();
    }
    return r.clipped(out);
}

void
ConcatC::forwardRegion(const std::vector<const Tensor *> &ins,
                       const Region &region, Tensor &out) const
{
    const Tensor &a = *ins[0];
    const Tensor &b = *ins[1];
    for (int n = region.n0; n < region.n1; ++n)
        for (int h = region.h0; h < region.h1; ++h)
            for (int w = region.w0; w < region.w1; ++w)
                for (int c = region.c0; c < region.c1; ++c)
                    out.at(n, h, w, c) = c < a.c()
                        ? a.at(n, h, w, c)
                        : b.at(n, h, w, c - a.c());
}

bool
ConcatC::forwardRegionBatched(const std::vector<const Tensor *> &ins,
                              LanePlane *const *inPlanes,
                              const Region &region,
                              const BatchCover *cover,
                              const Tensor &golden,
                              LanePlane &out) const
{
    if (region.empty())
        return true;
    const Tensor &a = *ins[0];
    const Tensor &b = *ins[1];
    LanePlane &ap = *inPlanes[0];
    LanePlane &bp = *inPlanes[1];
    const int ac = a.c();

    Region ra = region;
    ra.c1 = std::min(ra.c1, ac);
    if (!ra.empty())
        ap.ensure(a, ra);
    Region rb = region;
    rb.c0 = std::max(rb.c0, ac) - ac;
    rb.c1 = rb.c1 - ac;
    if (!rb.empty())
        bp.ensure(b, rb);

    const int W = out.laneWidth();
    const BatchCover::Span full{region.w0, region.w1};
    for (int n = region.n0; n < region.n1; ++n) {
        for (int h = region.h0; h < region.h1; ++h) {
            const BatchCover::Span *sp = &full;
            int nsp = 1;
            if (cover)
                sp = cover->row(n, h, nsp);
            for (int si = 0; si < nsp; ++si) {
            for (int w = sp[si].w0; w < sp[si].w1; ++w) {
                for (int c = region.c0; c < region.c1; ++c) {
                    const float *ip = c < ac
                        ? ap.lanes(a.offset(n, h, w, c))
                        : bp.lanes(b.offset(n, h, w, c - ac));
                    float *op = out.lanes(golden.offset(n, h, w, c));
                    for (int l = 0; l < W; ++l)
                        op[l] = ip[l];
                }
            }
            }
        }
    }
    return true;
}

Slice::Slice(std::string name, Axis axis, int offset, int length)
    : Layer(std::move(name)), axis_(axis), offset_(offset), length_(length)
{
    fatal_if(offset < 0 || length <= 0,
             "slice ", name_, ": invalid offset/length");
}

Tensor
Slice::makeOutput(const std::vector<const Tensor *> &ins) const
{
    panic_if(ins.size() != 1, "slice expects one input");
    const Tensor &x = *ins[0];
    int dim = axis_ == Axis::H ? x.h() : x.c();
    fatal_if(offset_ + length_ > dim, "slice ", name_, ": range [",
             offset_, ", ", offset_ + length_, ") exceeds axis size ", dim);
    if (axis_ == Axis::H)
        return Tensor(x.n(), length_, x.w(), x.c());
    return Tensor(x.n(), x.h(), x.w(), length_);
}

Tensor
Slice::forward(const std::vector<const Tensor *> &ins) const
{
    const Tensor &x = *ins[0];
    Tensor out = makeOutput(ins);
    for (int n = 0; n < out.n(); ++n)
        for (int h = 0; h < out.h(); ++h)
            for (int w = 0; w < out.w(); ++w)
                for (int c = 0; c < out.c(); ++c) {
                    int sh = axis_ == Axis::H ? h + offset_ : h;
                    int sc = axis_ == Axis::C ? c + offset_ : c;
                    out.at(n, h, w, c) = x.at(n, sh, w, sc);
                }
    return out;
}

Region
Slice::propagateRegion(const std::vector<const Tensor *> &, int,
                       const Region &in, const Tensor &out) const
{
    if (in.empty())
        return Region{};
    Region r = in;
    if (axis_ == Axis::H) {
        r.h0 = std::max(in.h0, offset_) - offset_;
        r.h1 = std::min(in.h1, offset_ + length_) - offset_;
    } else {
        r.c0 = std::max(in.c0, offset_) - offset_;
        r.c1 = std::min(in.c1, offset_ + length_) - offset_;
    }
    if (r.empty())
        return Region{};
    return r.clipped(out);
}

void
Slice::forwardRegion(const std::vector<const Tensor *> &ins,
                     const Region &region, Tensor &out) const
{
    const Tensor &x = *ins[0];
    for (int n = region.n0; n < region.n1; ++n)
        for (int h = region.h0; h < region.h1; ++h)
            for (int w = region.w0; w < region.w1; ++w)
                for (int c = region.c0; c < region.c1; ++c) {
                    int sh = axis_ == Axis::H ? h + offset_ : h;
                    int sc = axis_ == Axis::C ? c + offset_ : c;
                    out.at(n, h, w, c) = x.at(n, sh, w, sc);
                }
}

bool
Slice::forwardRegionBatched(const std::vector<const Tensor *> &ins,
                            LanePlane *const *inPlanes,
                            const Region &region,
                            const BatchCover *cover,
                            const Tensor &golden, LanePlane &out) const
{
    if (region.empty())
        return true;
    const Tensor &x = *ins[0];
    LanePlane &xp = *inPlanes[0];
    Region src = region;
    if (axis_ == Axis::H) {
        src.h0 += offset_;
        src.h1 += offset_;
    } else {
        src.c0 += offset_;
        src.c1 += offset_;
    }
    xp.ensure(x, src);

    const int W = out.laneWidth();
    const BatchCover::Span full{region.w0, region.w1};
    for (int n = region.n0; n < region.n1; ++n) {
        for (int h = region.h0; h < region.h1; ++h) {
            const BatchCover::Span *sp = &full;
            int nsp = 1;
            if (cover)
                sp = cover->row(n, h, nsp);
            for (int si = 0; si < nsp; ++si) {
            for (int w = sp[si].w0; w < sp[si].w1; ++w) {
                for (int c = region.c0; c < region.c1; ++c) {
                    int sh = axis_ == Axis::H ? h + offset_ : h;
                    int sc = axis_ == Axis::C ? c + offset_ : c;
                    const float *ip = xp.lanes(x.offset(n, sh, w, sc));
                    float *op = out.lanes(golden.offset(n, h, w, c));
                    for (int l = 0; l < W; ++l)
                        op[l] = ip[l];
                }
            }
            }
        }
    }
    return true;
}

ScaleShift::ScaleShift(std::string name, float scale, float shift)
    : Layer(std::move(name)), scale_(scale), shift_(shift)
{
}

Tensor
ScaleShift::makeOutput(const std::vector<const Tensor *> &ins) const
{
    panic_if(ins.size() != 1, "scaleshift expects one input");
    const Tensor &x = *ins[0];
    return Tensor(x.n(), x.h(), x.w(), x.c());
}

Tensor
ScaleShift::forward(const std::vector<const Tensor *> &ins) const
{
    const Tensor &x = *ins[0];
    Tensor out = makeOutput(ins);
    const float *xd = x.data().data();
    float *od = out.data().data();
    const std::size_t sz = x.size();
    simd::table().scaleShiftF32(xd, scale_, shift_, od, sz);
    roundForPrecision(out, precision_);
    return out;
}

Region
ScaleShift::propagateRegion(const std::vector<const Tensor *> &, int,
                            const Region &in, const Tensor &out) const
{
    return in.clipped(out);
}

void
ScaleShift::forwardRegion(const std::vector<const Tensor *> &ins,
                          const Region &region, Tensor &out) const
{
    const Tensor &x = *ins[0];
    bool half = precision_ == Precision::FP16;
    for (int n = region.n0; n < region.n1; ++n)
        for (int h = region.h0; h < region.h1; ++h)
            for (int w = region.w0; w < region.w1; ++w)
                for (int c = region.c0; c < region.c1; ++c) {
                    float v = scale_ * x.at(n, h, w, c) + shift_;
                    out.at(n, h, w, c) = half ? roundToHalf(v) : v;
                }
}

bool
ScaleShift::forwardRegionBatched(const std::vector<const Tensor *> &ins,
                                 LanePlane *const *inPlanes,
                                 const Region &region,
                                 const BatchCover *cover,
                                 const Tensor &golden,
                                 LanePlane &out) const
{
    if (region.empty())
        return true;
    const Tensor &x = *ins[0];
    LanePlane &xp = *inPlanes[0];
    xp.ensure(x, region);

    // One contiguous run per (n, h, w) row, like forward(): vector
    // scale/shift, then one batch round (identical per element).
    const int W = out.laneWidth();
    const bool half = precision_ == Precision::FP16;
    const std::size_t run =
        static_cast<std::size_t>(region.c1 - region.c0) * W;
    const simd::KernelTable &kt = simd::table();
    const BatchCover::Span full{region.w0, region.w1};
    for (int n = region.n0; n < region.n1; ++n) {
        for (int h = region.h0; h < region.h1; ++h) {
            const BatchCover::Span *sp = &full;
            int nsp = 1;
            if (cover)
                sp = cover->row(n, h, nsp);
            for (int si = 0; si < nsp; ++si) {
            for (int w = sp[si].w0; w < sp[si].w1; ++w) {
                std::size_t f0 = golden.offset(n, h, w, region.c0);
                float *op = out.lanes(f0);
                kt.scaleShiftF32(xp.lanes(f0), scale_, shift_, op,
                                 run);
                if (half)
                    simd::roundToHalfBatch(op, op, run);
            }
            }
        }
    }
    return true;
}

} // namespace fidelity
