/**
 * @file
 * Element-wise activation functions.
 */

#ifndef FIDELITY_NN_ACTIVATION_HH
#define FIDELITY_NN_ACTIVATION_HH

#include "nn/layer.hh"

namespace fidelity
{

/** Element-wise non-linearity applied to every value of the input. */
class Activation : public Layer
{
  public:
    enum class Func { ReLU, LeakyReLU, Sigmoid, Tanh };

    /**
     * @param func The non-linearity.
     * @param alpha Negative-side slope for LeakyReLU (ignored otherwise).
     */
    Activation(std::string name, Func func, float alpha = 0.1f);

    LayerKind kind() const override { return LayerKind::Activation; }
    Func func() const { return func_; }

    using Layer::forward;

    Tensor makeOutput(const std::vector<const Tensor *> &ins) const override;
    Tensor forward(const std::vector<const Tensor *> &ins) const override;

    /** Element-wise: the cone is the input box itself. */
    Region propagateRegion(const std::vector<const Tensor *> &ins,
                           int inputIdx, const Region &in,
                           const Tensor &out) const override;

    void forwardRegion(const std::vector<const Tensor *> &ins,
                       const Region &region, Tensor &out) const override;

    bool forwardRegionBatched(const std::vector<const Tensor *> &ins,
                              LanePlane *const *inPlanes,
                              const Region &region,
                              const BatchCover *cover,
                              const Tensor &golden,
                              LanePlane &out) const override;

    /** Apply the scalar function (exposed for the accelerator model). */
    float apply(float x) const;

  private:
    Func func_;
    float alpha_;
};

} // namespace fidelity

#endif // FIDELITY_NN_ACTIVATION_HH
