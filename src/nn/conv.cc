#include "nn/conv.hh"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "nn/lanes.hh"
#include "sim/arena.hh"
#include "sim/logging.hh"
#include "simd/convert.hh"
#include "simd/pack.hh"
#include "simd/simd.hh"
#include "tensor/bitops.hh"

namespace fidelity
{

namespace
{

/**
 * Float-mode block kernel over one output region.
 *
 * Vectorizes across output-channel lanes: each lane accumulates its
 * own output in the canonical (ci, kh, kw) order with an unfused
 * multiply-add per term, so every lane is bit-identical to the scalar
 * kernel and to computeNeuron().  `loadX(n, ih, iw, ci)` returns the
 * stored-form operand (the zero stored-form when out of range), and
 * `wb(acc, oc)` applies bias and the writeback path.
 *
 * The operands for one output pixel are gathered into `xg` (caller
 * scratch of `cpg * kh * kw` elements) once per group, then one
 * dispatched-table GEMM microkernel call covers every touched lane
 * block of the group; `acc` is caller scratch for the padded block
 * results (packBlocks(opg, kF32Lanes) * kF32Lanes elements).
 */
template <class LoadX, class WB>
void
convRegionFloat(const simd::KernelTable &kt, const ConvSpec &spec,
                int cpg, int opg, const float *packed, const Region &r,
                Tensor &out, float *xg, float *acc, LoadX loadX, WB wb)
{
    constexpr int L = simd::kF32Lanes;
    const int blocksPerGroup = simd::packBlocks(opg, L);
    const int redLen = cpg * spec.kh * spec.kw;
    const std::size_t blkStride = static_cast<std::size_t>(redLen) * L;
    const std::size_t gStride = blocksPerGroup * blkStride;
    const int g0 = r.c0 / opg;
    const int g1 = (r.c1 - 1) / opg;

    for (int n = r.n0; n < r.n1; ++n) {
        for (int oh = r.h0; oh < r.h1; ++oh) {
            for (int ow = r.w0; ow < r.w1; ++ow) {
                std::size_t base = out.offset(n, oh, ow, 0);
                for (int g = g0; g <= g1; ++g) {
                    std::size_t t = 0;
                    for (int cig = 0; cig < cpg; ++cig) {
                        int ci = g * cpg + cig;
                        for (int kh = 0; kh < spec.kh; ++kh) {
                            int ih = oh * spec.stride - spec.pad +
                                     kh * spec.dilation;
                            for (int kw = 0; kw < spec.kw; ++kw) {
                                int iw = ow * spec.stride - spec.pad +
                                         kw * spec.dilation;
                                xg[t++] = loadX(n, ih, iw, ci);
                            }
                        }
                    }
                    int lo = std::max(r.c0, g * opg);
                    int hi = std::min(r.c1, (g + 1) * opg);
                    int b0 = (lo - g * opg) / L;
                    int b1 = (hi - 1 - g * opg) / L;
                    kt.gemmF32(xg, redLen, b1 - b0 + 1,
                               packed + g * gStride + b0 * blkStride,
                               acc);
                    for (int blk = b0; blk <= b1; ++blk) {
                        int ocb = g * opg + blk * L;
                        int s = std::max(lo, ocb);
                        int e = std::min(hi, ocb + L);
                        const float *ab = acc + (blk - b0) * L;
                        for (int oc = s; oc < e; ++oc)
                            out[base + oc] = wb(
                                static_cast<double>(ab[oc - ocb]), oc);
                    }
                }
            }
        }
    }
}

/** Wide integer twin: int64 lane accumulators over int32 operands. */
template <class LoadX, class WB>
void
convRegionInt(const simd::KernelTable &kt, const ConvSpec &spec,
              int cpg, int opg, const std::int32_t *packed,
              const Region &r, Tensor &out, std::int32_t *xg,
              std::int64_t *acc, LoadX loadX, WB wb)
{
    constexpr int L = simd::kI64Lanes;
    const int blocksPerGroup = simd::packBlocks(opg, L);
    const int redLen = cpg * spec.kh * spec.kw;
    const std::size_t blkStride = static_cast<std::size_t>(redLen) * L;
    const std::size_t gStride = blocksPerGroup * blkStride;
    const int g0 = r.c0 / opg;
    const int g1 = (r.c1 - 1) / opg;

    for (int n = r.n0; n < r.n1; ++n) {
        for (int oh = r.h0; oh < r.h1; ++oh) {
            for (int ow = r.w0; ow < r.w1; ++ow) {
                std::size_t base = out.offset(n, oh, ow, 0);
                for (int g = g0; g <= g1; ++g) {
                    std::size_t t = 0;
                    for (int cig = 0; cig < cpg; ++cig) {
                        int ci = g * cpg + cig;
                        for (int kh = 0; kh < spec.kh; ++kh) {
                            int ih = oh * spec.stride - spec.pad +
                                     kh * spec.dilation;
                            for (int kw = 0; kw < spec.kw; ++kw) {
                                int iw = ow * spec.stride - spec.pad +
                                         kw * spec.dilation;
                                xg[t++] = loadX(n, ih, iw, ci);
                            }
                        }
                    }
                    int lo = std::max(r.c0, g * opg);
                    int hi = std::min(r.c1, (g + 1) * opg);
                    int b0 = (lo - g * opg) / L;
                    int b1 = (hi - 1 - g * opg) / L;
                    kt.gemmI64(xg, redLen, b1 - b0 + 1,
                               packed + g * gStride + b0 * blkStride,
                               acc);
                    for (int blk = b0; blk <= b1; ++blk) {
                        int ocb = g * opg + blk * L;
                        int s = std::max(lo, ocb);
                        int e = std::min(hi, ocb + L);
                        const std::int64_t *ab = acc + (blk - b0) * L;
                        for (int oc = s; oc < e; ++oc)
                            out[base + oc] = wb(ab[oc - ocb], oc);
                    }
                }
            }
        }
    }
}

/**
 * Narrow integer kernel over the pair-interleaved int16 pack.  The
 * gather narrows the quantised operands to int16 (lossless, bits <=
 * 16) into `xg`, which the caller sizes to 2 * packPairs(redLen)
 * elements with the pad element (odd reductions) pre-zeroed; the
 * kernel never writes past redLen, so the pad survives re-use.  Exact
 * by the chunk bound, hence bit-identical to convRegionInt.
 */
template <class LoadX, class WB>
void
convRegionNarrow(const simd::KernelTable &kt, const ConvSpec &spec,
                 int cpg, int opg, const std::int16_t *packed,
                 int chunkPairs, const Region &r, Tensor &out,
                 std::int16_t *xg, std::int64_t *acc, LoadX loadX,
                 WB wb)
{
    constexpr int L = simd::kNarrowLanes;
    const int blocksPerGroup = simd::packBlocks(opg, L);
    const int redLen = cpg * spec.kh * spec.kw;
    const int redPairs = simd::packPairs(redLen);
    const std::size_t blkStride =
        static_cast<std::size_t>(redPairs) * 2 * L;
    const std::size_t gStride = blocksPerGroup * blkStride;
    const int g0 = r.c0 / opg;
    const int g1 = (r.c1 - 1) / opg;

    for (int n = r.n0; n < r.n1; ++n) {
        for (int oh = r.h0; oh < r.h1; ++oh) {
            for (int ow = r.w0; ow < r.w1; ++ow) {
                std::size_t base = out.offset(n, oh, ow, 0);
                for (int g = g0; g <= g1; ++g) {
                    std::size_t t = 0;
                    for (int cig = 0; cig < cpg; ++cig) {
                        int ci = g * cpg + cig;
                        for (int kh = 0; kh < spec.kh; ++kh) {
                            int ih = oh * spec.stride - spec.pad +
                                     kh * spec.dilation;
                            for (int kw = 0; kw < spec.kw; ++kw) {
                                int iw = ow * spec.stride - spec.pad +
                                         kw * spec.dilation;
                                xg[t++] = static_cast<std::int16_t>(
                                    loadX(n, ih, iw, ci));
                            }
                        }
                    }
                    int lo = std::max(r.c0, g * opg);
                    int hi = std::min(r.c1, (g + 1) * opg);
                    int b0 = (lo - g * opg) / L;
                    int b1 = (hi - 1 - g * opg) / L;
                    kt.gemmNarrow(xg, redPairs, b1 - b0 + 1,
                                  packed + g * gStride + b0 * blkStride,
                                  chunkPairs, acc);
                    for (int blk = b0; blk <= b1; ++blk) {
                        int ocb = g * opg + blk * L;
                        int s = std::max(lo, ocb);
                        int e = std::min(hi, ocb + L);
                        const std::int64_t *ab = acc + (blk - b0) * L;
                        for (int oc = s; oc < e; ++oc)
                            out[base + oc] = wb(ab[oc - ocb], oc);
                    }
                }
            }
        }
    }
}

/**
 * Fault-batched float kernel: the SIMD lanes hold W *injections* of
 * the same fault cell instead of W output channels.  The window math,
 * padding tests, and packed-weight stream are shared by the batch; the
 * dispatched table's lane-minor MAC row accumulates all W lanes of one
 * output channel per call (canonical k order, unfused per-lane
 * multiply-adds, so every lane is bit-identical to the scalar
 * kernels).  `loadG(dst, n, ih, iw, ci)` fills W stored-form lane
 * operands (the zero stored-form when out of range), and `wbRow(op,
 * oc)` applies bias and the writeback path to the whole lane row in
 * place (rounding the row as one batch).
 */
template <int W, class LoadG, class WBRow>
void
convBatchedFloat(const simd::KernelTable &kt, const ConvSpec &spec,
                 int cpg, int opg, const float *packed, const Region &r,
                 const BatchCover *cover, const Tensor &golden,
                 LanePlane &out, float *xg, LoadG loadG, WBRow wbRow)
{
    // The weight pack is laid out for the *channel* kernels' lane
    // width; here it is walked scalar, one output channel at a time.
    constexpr int PL = simd::kF32Lanes;
    const int blocksPerGroup = simd::packBlocks(opg, PL);
    const std::size_t redLen =
        static_cast<std::size_t>(cpg) * spec.kh * spec.kw;
    const std::size_t blkStride = redLen * PL;
    const std::size_t gStride = blocksPerGroup * blkStride;
    const int g0 = r.c0 / opg;
    const int g1 = (r.c1 - 1) / opg;

    const BatchCover::Span full{r.w0, r.w1};
    const BatchCover::Span cfull{r.c0, r.c1};
    const BatchCover::Span *csp = &cfull;
    int ncs = 1;
    if (cover)
        csp = cover->chanSpans(ncs);
    for (int n = r.n0; n < r.n1; ++n) {
        for (int oh = r.h0; oh < r.h1; ++oh) {
            const BatchCover::Span *sp = &full;
            int nsp = 1;
            if (cover)
                sp = cover->row(n, oh, nsp);
            for (int si = 0; si < nsp; ++si) {
            for (int ow = sp[si].w0; ow < sp[si].w1; ++ow) {
                std::size_t base = golden.offset(n, oh, ow, 0);
                for (int g = g0; g <= g1; ++g) {
                    int lo = std::max(r.c0, g * opg);
                    int hi = std::min(r.c1, (g + 1) * opg);
                    bool any = false;
                    for (int cs = 0; cs < ncs && !any; ++cs)
                        any = std::min(hi, csp[cs].w1) >
                              std::max(lo, csp[cs].w0);
                    if (!any)
                        continue; // no covered channel in this group
                    std::size_t t = 0;
                    for (int cig = 0; cig < cpg; ++cig) {
                        int ci = g * cpg + cig;
                        for (int kh = 0; kh < spec.kh; ++kh) {
                            int ih = oh * spec.stride - spec.pad +
                                     kh * spec.dilation;
                            for (int kw = 0; kw < spec.kw; ++kw) {
                                int iw = ow * spec.stride - spec.pad +
                                         kw * spec.dilation;
                                loadG(xg + t * W, n, ih, iw, ci);
                                ++t;
                            }
                        }
                    }
                    for (int cs = 0; cs < ncs; ++cs) {
                    int clo = std::max(lo, csp[cs].w0);
                    int chi = std::min(hi, csp[cs].w1);
                    for (int oc = clo; oc < chi; ++oc) {
                        int ocg = oc - g * opg;
                        const float *wrow = packed + g * gStride +
                                            (ocg / PL) * blkStride +
                                            (ocg % PL);
                        float *op = out.lanes(base + oc);
                        kt.batchMacF32(xg, wrow, redLen, PL, W, op);
                        wbRow(op, oc);
                    }
                    }
                }
            }
            }
        }
    }
}

/**
 * Integer-mode twin: W int64 lane accumulators.  The weight scalar
 * and the lane-operand pointer swap roles relative to the channel
 * kernel — multiplication commutes, so the lane-minor MAC row is the
 * exact product either way.  `wbRow(lanes, op, oc)` turns the W int64
 * accumulators into the lane row's stored outputs in one batch.
 */
template <int W, class LoadG, class WBRow>
void
convBatchedInt(const simd::KernelTable &kt, const ConvSpec &spec,
               int cpg, int opg, const std::int32_t *packed,
               const Region &r, const BatchCover *cover,
               const Tensor &golden, LanePlane &out, std::int32_t *xg,
               LoadG loadG, WBRow wbRow)
{
    constexpr int PL = simd::kI64Lanes;
    const int blocksPerGroup = simd::packBlocks(opg, PL);
    const std::size_t redLen =
        static_cast<std::size_t>(cpg) * spec.kh * spec.kw;
    const std::size_t blkStride = redLen * PL;
    const std::size_t gStride = blocksPerGroup * blkStride;
    const int g0 = r.c0 / opg;
    const int g1 = (r.c1 - 1) / opg;

    std::int64_t lanes[W];
    const BatchCover::Span full{r.w0, r.w1};
    const BatchCover::Span cfull{r.c0, r.c1};
    const BatchCover::Span *csp = &cfull;
    int ncs = 1;
    if (cover)
        csp = cover->chanSpans(ncs);
    for (int n = r.n0; n < r.n1; ++n) {
        for (int oh = r.h0; oh < r.h1; ++oh) {
            const BatchCover::Span *sp = &full;
            int nsp = 1;
            if (cover)
                sp = cover->row(n, oh, nsp);
            for (int si = 0; si < nsp; ++si) {
            for (int ow = sp[si].w0; ow < sp[si].w1; ++ow) {
                std::size_t base = golden.offset(n, oh, ow, 0);
                for (int g = g0; g <= g1; ++g) {
                    int lo = std::max(r.c0, g * opg);
                    int hi = std::min(r.c1, (g + 1) * opg);
                    bool any = false;
                    for (int cs = 0; cs < ncs && !any; ++cs)
                        any = std::min(hi, csp[cs].w1) >
                              std::max(lo, csp[cs].w0);
                    if (!any)
                        continue; // no covered channel in this group
                    std::size_t t = 0;
                    for (int cig = 0; cig < cpg; ++cig) {
                        int ci = g * cpg + cig;
                        for (int kh = 0; kh < spec.kh; ++kh) {
                            int ih = oh * spec.stride - spec.pad +
                                     kh * spec.dilation;
                            for (int kw = 0; kw < spec.kw; ++kw) {
                                int iw = ow * spec.stride - spec.pad +
                                         kw * spec.dilation;
                                loadG(xg + t * W, n, ih, iw, ci);
                                ++t;
                            }
                        }
                    }
                    for (int cs = 0; cs < ncs; ++cs) {
                    int clo = std::max(lo, csp[cs].w0);
                    int chi = std::min(hi, csp[cs].w1);
                    for (int oc = clo; oc < chi; ++oc) {
                        int ocg = oc - g * opg;
                        const std::int32_t *wrow =
                            packed + g * gStride +
                            (ocg / PL) * blkStride + (ocg % PL);
                        kt.batchMacI64(xg, wrow, redLen, PL, W, lanes);
                        wbRow(lanes, out.lanes(base + oc), oc);
                    }
                    }
                }
            }
            }
        }
    }
}

/**
 * Narrow integer batched kernel: int16 lane rows against the
 * pair-interleaved pack.  `xg` holds 2 * packPairs(redLen) rows of W
 * lanes; the caller zeroes the pad row (odd reductions) once — the
 * gather only writes redLen rows.  Exact by the chunk bound, hence
 * bit-identical to convBatchedInt.
 */
template <int W, class LoadG, class WBRow>
void
convBatchedNarrow(const simd::KernelTable &kt, const ConvSpec &spec,
                  int cpg, int opg, const std::int16_t *packed,
                  int chunkPairs, const Region &r,
                  const BatchCover *cover, const Tensor &golden,
                  LanePlane &out, std::int16_t *xg, LoadG loadG,
                  WBRow wbRow)
{
    constexpr int PL = simd::kNarrowLanes;
    const int blocksPerGroup = simd::packBlocks(opg, PL);
    const int redLen = cpg * spec.kh * spec.kw;
    const int redPairs = simd::packPairs(redLen);
    const std::size_t blkStride =
        static_cast<std::size_t>(redPairs) * 2 * PL;
    const std::size_t gStride = blocksPerGroup * blkStride;
    const int g0 = r.c0 / opg;
    const int g1 = (r.c1 - 1) / opg;

    std::int64_t lanes[W];
    const BatchCover::Span full{r.w0, r.w1};
    const BatchCover::Span cfull{r.c0, r.c1};
    const BatchCover::Span *csp = &cfull;
    int ncs = 1;
    if (cover)
        csp = cover->chanSpans(ncs);
    for (int n = r.n0; n < r.n1; ++n) {
        for (int oh = r.h0; oh < r.h1; ++oh) {
            const BatchCover::Span *sp = &full;
            int nsp = 1;
            if (cover)
                sp = cover->row(n, oh, nsp);
            for (int si = 0; si < nsp; ++si) {
            for (int ow = sp[si].w0; ow < sp[si].w1; ++ow) {
                std::size_t base = golden.offset(n, oh, ow, 0);
                for (int g = g0; g <= g1; ++g) {
                    int lo = std::max(r.c0, g * opg);
                    int hi = std::min(r.c1, (g + 1) * opg);
                    bool any = false;
                    for (int cs = 0; cs < ncs && !any; ++cs)
                        any = std::min(hi, csp[cs].w1) >
                              std::max(lo, csp[cs].w0);
                    if (!any)
                        continue; // no covered channel in this group
                    std::size_t t = 0;
                    for (int cig = 0; cig < cpg; ++cig) {
                        int ci = g * cpg + cig;
                        for (int kh = 0; kh < spec.kh; ++kh) {
                            int ih = oh * spec.stride - spec.pad +
                                     kh * spec.dilation;
                            for (int kw = 0; kw < spec.kw; ++kw) {
                                int iw = ow * spec.stride - spec.pad +
                                         kw * spec.dilation;
                                loadG(xg + t * W, n, ih, iw, ci);
                                ++t;
                            }
                        }
                    }
                    for (int cs = 0; cs < ncs; ++cs) {
                    int clo = std::max(lo, csp[cs].w0);
                    int chi = std::min(hi, csp[cs].w1);
                    for (int oc = clo; oc < chi; ++oc) {
                        int ocg = oc - g * opg;
                        const std::int16_t *wrow =
                            packed + g * gStride +
                            (ocg / PL) * blkStride + (ocg % PL) * 2;
                        kt.batchMacNarrow(xg, wrow, redPairs, PL * 2,
                                          chunkPairs, W, lanes);
                        wbRow(lanes, out.lanes(base + oc), oc);
                    }
                    }
                }
            }
            }
        }
    }
}

} // namespace

Conv2D::Conv2D(std::string name, const ConvSpec &spec,
               std::vector<float> weights, std::vector<float> bias)
    : MacLayer(std::move(name)), spec_(spec), weights_(std::move(weights)),
      bias_(std::move(bias))
{
    fatal_if(spec_.groups <= 0 || spec_.inC % spec_.groups != 0 ||
             spec_.outC % spec_.groups != 0,
             "conv ", name_, ": groups must divide inC and outC");
    fatal_if(spec_.stride <= 0 || spec_.dilation <= 0,
             "conv ", name_, ": stride/dilation must be positive");
    std::size_t expect = static_cast<std::size_t>(spec_.kh) * spec_.kw *
                         (spec_.inC / spec_.groups) * spec_.outC;
    fatal_if(weights_.size() != expect,
             "conv ", name_, ": expected ", expect, " weights, got ",
             weights_.size());
    if (spec_.bias) {
        fatal_if(bias_.size() != static_cast<std::size_t>(spec_.outC),
                 "conv ", name_, ": expected ", spec_.outC, " biases");
    } else {
        fatal_if(!bias_.empty(), "conv ", name_,
                 ": bias data given but spec.bias is false");
    }
    // Immutable weights pack once, here; the quantised modes repack
    // lazily through onQuantChanged().
    packWeights();
}

int
Conv2D::outDim(int in_dim, int k) const
{
    int eff_k = (k - 1) * spec_.dilation + 1;
    return (in_dim + 2 * spec_.pad - eff_k) / spec_.stride + 1;
}

std::size_t
Conv2D::weightIndex(int kh, int kw, int cig, int oc) const
{
    int cpg = spec_.inC / spec_.groups;
    return ((static_cast<std::size_t>(kh) * spec_.kw + kw) * cpg + cig) *
               spec_.outC +
           oc;
}

void
Conv2D::checkInput(const std::vector<const Tensor *> &ins) const
{
    panic_if(ins.size() != 1, "conv expects one input");
    panic_if(ins[0]->c() != spec_.inC,
             "conv ", name_, ": input channels ", ins[0]->c(),
             " != spec ", spec_.inC);
}

Tensor
Conv2D::makeOutput(const std::vector<const Tensor *> &ins) const
{
    checkInput(ins);
    const Tensor &x = *ins[0];
    int oh = outDim(x.h(), spec_.kh);
    int ow = outDim(x.w(), spec_.kw);
    fatal_if(oh <= 0 || ow <= 0, "conv ", name_,
             ": non-positive output size for input ", x.shapeStr());
    return Tensor(x.n(), oh, ow, spec_.outC);
}

float
Conv2D::computeNeuron(const std::vector<const Tensor *> &ins,
                      const NeuronIndex &out, const OperandSub *sub) const
{
    const Tensor &x = *ins[0];
    int cpg = spec_.inC / spec_.groups;
    int opg = spec_.outC / spec_.groups;
    int g = out.c / opg;
    bool integer = precision_ == Precision::INT8 ||
                   precision_ == Precision::INT16;

    // Hot path: the loop bounds already guarantee in-range addresses,
    // so indices are computed directly instead of via the checked
    // Tensor accessors.
    const float *xd = x.data().data();
    const float *wd = weights_.data();
    const int xh = x.h(), xw = x.w(), xc = x.c();
    const std::size_t n_base =
        static_cast<std::size_t>(out.n) * xh;

    float acc = 0.0f;
    std::int64_t iacc = 0;
    int term = 0;
    for (int cig = 0; cig < cpg; ++cig) {
        int ci = g * cpg + cig;
        for (int kh = 0; kh < spec_.kh; ++kh) {
            int ih = out.h * spec_.stride - spec_.pad + kh * spec_.dilation;
            for (int kw = 0; kw < spec_.kw; ++kw) {
                int iw =
                    out.w * spec_.stride - spec_.pad + kw * spec_.dilation;
                bool in_range = ih >= 0 && ih < xh && iw >= 0 &&
                                iw < xw;
                float xin = 0.0f;
                std::size_t xoff = 0;
                if (in_range) {
                    xoff = ((n_base + ih) * xw + iw) * xc + ci;
                    xin = xd[xoff];
                }
                std::size_t widx =
                    ((static_cast<std::size_t>(kh) * spec_.kw + kw) *
                         cpg + cig) * spec_.outC + out.c;
                float wv = wd[widx];
                for (const OperandSub *s = sub; s; s = s->next) {
                    if (s->kind == OperandSub::Kind::Input &&
                        (s->termIndex >= 0
                             ? term == s->termIndex
                             : (in_range && xoff == s->flatIndex))) {
                        xin = s->value;
                    } else if (s->kind == OperandSub::Kind::Weight &&
                               widx == s->flatIndex) {
                        wv = s->value;
                    }
                }
                for (const OperandSub *s = sub; s; s = s->next) {
                    if (s->kind == OperandSub::Kind::PsumFlip &&
                        term == static_cast<int>(s->flatIndex)) {
                        if (integer)
                            iacc = psumFlipInt(iacc, s->flipMask());
                        else
                            acc = psumFlipFloat(acc, s->flipMask());
                    }
                }
                if (integer)
                    iacc += static_cast<std::int64_t>(quantInput(xin)) *
                            quantWeight(wv);
                else
                    acc += storeInput(xin) * storeWeight(wv);
                ++term;
            }
        }
    }
    for (const OperandSub *s = sub; s; s = s->next) {
        if (s->kind == OperandSub::Kind::PsumFlip &&
            term == static_cast<int>(s->flatIndex)) {
            if (integer)
                iacc = psumFlipInt(iacc, s->flipMask());
            else
                acc = psumFlipFloat(acc, s->flipMask());
        }
    }
    double facc = integer
        ? static_cast<double>(iacc) * inQuant_.scale * wQuant_.scale
        : static_cast<double>(acc);
    float b = spec_.bias ? bias_[out.c] : 0.0f;
    for (const OperandSub *s = sub; s; s = s->next)
        if (s->kind == OperandSub::Kind::Bias)
            b = s->value;
    return writeback(facc, b);
}

void
Conv2D::packWeights() const
{
    // Convert the raw weights into the active precision's stored form
    // (vectorized batch converters), then scatter into the lane-
    // blocked layout the block kernels stream.  Integer precisions
    // scan the quantised weights' max magnitude first: with the
    // operand bound |x| <= 2^(bits-1) it proves the narrow kernels'
    // int32 chunk length (narrowChunkPairs), and the layer commits to
    // the narrow pair-interleaved pack or the wide int32 pack
    // accordingly — both paths are exact, so the choice cannot change
    // results.
    bool integer = precision_ == Precision::INT8 ||
                   precision_ == Precision::INT16;
    const int cpg = spec_.inC / spec_.groups;
    const int opg = spec_.outC / spec_.groups;
    const int khw = spec_.kh * spec_.kw;
    const int redLen = cpg * khw;
    Arena &arena = Arena::local();

    auto origIndex = [&](int g, int k, int c) {
        int cig = k / khw;
        int kh = (k % khw) / spec_.kw;
        int kw = k % spec_.kw;
        return ((static_cast<std::size_t>(kh) * spec_.kw + kw) * cpg +
                cig) * spec_.outC + g * opg + c;
    };

    if (integer) {
        auto tmp = arena.ints(weights_.size());
        simd::quantizeBatch(weights_.data(), tmp.data(),
                            weights_.size(), wQuant_);
        std::int32_t maxAbsW = 0;
        for (std::size_t i = 0; i < weights_.size(); ++i) {
            std::int32_t a = tmp[i] < 0 ? -tmp[i] : tmp[i];
            maxAbsW = a > maxAbsW ? a : maxAbsW;
        }
        const int bits = precision_ == Precision::INT8 ? 8 : 16;
        int chunk = simd::narrowChunkPairs(bits, maxAbsW);
        if (simd::narrowEligible(chunk)) {
            chunkPairs_ = chunk;
            std::size_t gStride = simd::packNarrowSize(redLen, opg);
            wPackN_.resize(gStride * spec_.groups);
            wPackI_.clear();
            wPackF_.clear();
            for (int g = 0; g < spec_.groups; ++g)
                simd::packNarrow(
                    redLen, opg,
                    [&](int k, int c) { return tmp[origIndex(g, k, c)]; },
                    wPackN_.data() + g * gStride);
        } else {
            constexpr int L = simd::kI64Lanes;
            chunkPairs_ = 0;
            std::size_t gStride = simd::packSize(redLen, opg, L);
            wPackI_.resize(gStride * spec_.groups);
            wPackN_.clear();
            wPackF_.clear();
            for (int g = 0; g < spec_.groups; ++g)
                simd::packLaneBlocked(
                    redLen, opg, L,
                    [&](int k, int c) { return tmp[origIndex(g, k, c)]; },
                    wPackI_.data() + g * gStride);
        }
    } else {
        constexpr int L = simd::kF32Lanes;
        chunkPairs_ = 0;
        const float *src = weights_.data();
        Arena::Lease<float> tmp = arena.floats(
            precision_ == Precision::FP16 ? weights_.size() : 0);
        if (precision_ == Precision::FP16) {
            simd::roundToHalfBatch(weights_.data(), tmp.data(),
                                   weights_.size());
            src = tmp.data();
        }
        std::size_t gStride = simd::packSize(redLen, opg, L);
        wPackF_.resize(gStride * spec_.groups);
        wPackI_.clear();
        wPackN_.clear();
        for (int g = 0; g < spec_.groups; ++g)
            simd::packLaneBlocked(
                redLen, opg, L,
                [&](int k, int c) { return src[origIndex(g, k, c)]; },
                wPackF_.data() + g * gStride);
    }
    wPackValid_ = true;
}

Tensor
Conv2D::forward(const std::vector<const Tensor *> &ins) const
{
    // Fast path, bit-identical to computeNeuron(): operands are
    // converted into their stored form once, then lane blocks of
    // output channels accumulate in the canonical (ci, kh, kw) order
    // with the same arithmetic.
    Tensor out = makeOutput(ins);
    const Tensor &x = *ins[0];
    bool integer = precision_ == Precision::INT8 ||
                   precision_ == Precision::INT16;
    if (!wPackValid_)
        packWeights();
    const bool narrow = integer && chunkPairs_ > 0;

    const int cpg = spec_.inC / spec_.groups;
    const int opg = spec_.outC / spec_.groups;
    const int redLen = spec_.kh * spec_.kw * cpg;
    const int redPairs = simd::packPairs(redLen);
    Arena &arena = Arena::local();
    auto xs = arena.floats(
        integer || precision_ == Precision::FP32 ? 0 : x.size());
    auto xq = arena.ints(integer ? x.size() : 0);
    auto xgF = arena.floats(integer ? 0 : redLen);
    auto xgI = arena.ints(integer && !narrow ? redLen : 0);
    auto xgN = arena.shorts(narrow ? 2 * redPairs : 0);
    auto accF = arena.floats(
        integer ? 0
                : simd::packSize(1, opg, simd::kF32Lanes));
    auto accL = arena.longs(
        integer ? (narrow ? simd::packSize(1, opg, simd::kNarrowLanes)
                          : simd::packSize(1, opg, simd::kI64Lanes))
                : 0);
    if (narrow)
        for (int k = redLen; k < 2 * redPairs; ++k)
            xgN[k] = 0;
    const float *xf = x.data().data();
    if (integer) {
        simd::quantizeBatch(xf, xq.data(), x.size(), inQuant_);
    } else if (precision_ == Precision::FP16) {
        simd::roundToHalfBatch(xf, xs.data(), x.size());
        xf = xs.data();
    }

    const int xh = x.h(), xw = x.w(), xc = x.c();
    const Region full = Region::full(out);
    auto biasAt = [&](int oc) {
        return spec_.bias ? bias_[oc] : 0.0f;
    };

    const simd::KernelTable &kt = simd::table();
    if (integer) {
        const std::int32_t *xqd = xq.data();
        const std::int32_t zero_q = quantInput(0.0f);
        auto loadX = [&](int n, int ih, int iw, int ci) {
            bool ok = ih >= 0 && ih < xh && iw >= 0 && iw < xw;
            return ok
                ? xqd[((static_cast<std::size_t>(n) * xh + ih) * xw +
                       iw) * xc + ci]
                : zero_q;
        };
        auto wb = [&](std::int64_t iacc, int oc) {
            // Left-associated like computeNeuron: the double
            // rounding order is part of the bit contract.
            return writeback(static_cast<double>(iacc) *
                                 inQuant_.scale * wQuant_.scale,
                             biasAt(oc));
        };
        if (narrow)
            convRegionNarrow(kt, spec_, cpg, opg, wPackN_.data(),
                             chunkPairs_, full, out, xgN.data(),
                             accL.data(), loadX, wb);
        else
            convRegionInt(kt, spec_, cpg, opg, wPackI_.data(), full,
                          out, xgI.data(), accL.data(), loadX, wb);
    } else {
        const float zero_s = storeInput(0.0f);
        convRegionFloat(
            kt, spec_, cpg, opg, wPackF_.data(), full, out, xgF.data(),
            accF.data(),
            [&](int n, int ih, int iw, int ci) {
                bool ok = ih >= 0 && ih < xh && iw >= 0 && iw < xw;
                return ok
                    ? xf[((static_cast<std::size_t>(n) * xh + ih) *
                              xw + iw) * xc + ci]
                    : zero_s;
            },
            [&](double acc, int oc) {
                return writeback(acc, biasAt(oc));
            });
    }
    return out;
}

Region
Conv2D::propagateRegion(const std::vector<const Tensor *> &ins, int,
                        const Region &in, const Tensor &out) const
{
    checkInput(ins);
    if (in.empty())
        return Region{};
    auto [h0, h1] = windowCone(in.h0, in.h1, spec_.kh, spec_.stride,
                               spec_.pad, spec_.dilation, out.h());
    auto [w0, w1] = windowCone(in.w0, in.w1, spec_.kw, spec_.stride,
                               spec_.pad, spec_.dilation, out.w());
    // A changed input channel reaches every output channel of its
    // group.
    int cpg = spec_.inC / spec_.groups;
    int opg = spec_.outC / spec_.groups;
    int g0 = in.c0 / cpg;
    int g1 = (in.c1 - 1) / cpg;
    Region r{in.n0, in.n1, h0, h1, w0, w1, g0 * opg, (g1 + 1) * opg};
    return r.clipped(out);
}

void
Conv2D::forwardRegion(const std::vector<const Tensor *> &ins,
                      const Region &region, Tensor &out) const
{
    // Same block kernels as forward(), restricted to the requested
    // output box; operands convert on the fly (once per broadcast
    // term, not once per output channel).
    checkInput(ins);
    if (region.empty())
        return;
    const Tensor &x = *ins[0];
    bool integer = precision_ == Precision::INT8 ||
                   precision_ == Precision::INT16;
    if (!wPackValid_)
        packWeights();
    const bool narrow = integer && chunkPairs_ > 0;

    const int cpg = spec_.inC / spec_.groups;
    const int opg = spec_.outC / spec_.groups;
    const int xh = x.h(), xw = x.w(), xc = x.c();
    const float *xd = x.data().data();
    const int redLen = spec_.kh * spec_.kw * cpg;
    const int redPairs = simd::packPairs(redLen);
    Arena &arena = Arena::local();
    auto xgF = arena.floats(integer ? 0 : redLen);
    auto xgI = arena.ints(integer && !narrow ? redLen : 0);
    auto xgN = arena.shorts(narrow ? 2 * redPairs : 0);
    auto accF = arena.floats(
        integer ? 0 : simd::packSize(1, opg, simd::kF32Lanes));
    auto accL = arena.longs(
        integer ? (narrow ? simd::packSize(1, opg, simd::kNarrowLanes)
                          : simd::packSize(1, opg, simd::kI64Lanes))
                : 0);
    if (narrow)
        for (int k = redLen; k < 2 * redPairs; ++k)
            xgN[k] = 0;
    auto biasAt = [&](int oc) {
        return spec_.bias ? bias_[oc] : 0.0f;
    };

    const simd::KernelTable &kt = simd::table();
    if (integer) {
        const std::int32_t zero_q = quantInput(0.0f);
        auto loadX = [&](int n, int ih, int iw, int ci) {
            bool ok = ih >= 0 && ih < xh && iw >= 0 && iw < xw;
            return ok
                ? quantInput(
                      xd[((static_cast<std::size_t>(n) * xh + ih) *
                          xw + iw) * xc + ci])
                : zero_q;
        };
        auto wb = [&](std::int64_t iacc, int oc) {
            // Left-associated like computeNeuron: the double
            // rounding order is part of the bit contract.
            return writeback(static_cast<double>(iacc) *
                                 inQuant_.scale * wQuant_.scale,
                             biasAt(oc));
        };
        if (narrow)
            convRegionNarrow(kt, spec_, cpg, opg, wPackN_.data(),
                             chunkPairs_, region, out, xgN.data(),
                             accL.data(), loadX, wb);
        else
            convRegionInt(kt, spec_, cpg, opg, wPackI_.data(), region,
                          out, xgI.data(), accL.data(), loadX, wb);
    } else {
        const float zero_s = storeInput(0.0f);
        convRegionFloat(
            kt, spec_, cpg, opg, wPackF_.data(), region, out,
            xgF.data(), accF.data(),
            [&](int n, int ih, int iw, int ci) {
                bool ok = ih >= 0 && ih < xh && iw >= 0 && iw < xw;
                return ok
                    ? storeInput(
                          xd[((static_cast<std::size_t>(n) * xh +
                               ih) * xw + iw) * xc + ci])
                    : zero_s;
            },
            [&](double acc, int oc) {
                return writeback(acc, biasAt(oc));
            });
    }
}

bool
Conv2D::forwardWithSub(const std::vector<const Tensor *> &ins,
                       const OperandSub *sub, const Region *boxes,
                       std::size_t numBoxes, Tensor &out) const
{
    // The vector path covers single input-operand substitutions: their
    // consumer fan-out (kh*kw window positions times a whole output
    // channel group) dominates fault-model application cost, and the
    // substitution folds into the gather lambda as one index compare.
    // Everything else (weight subs, psum flips, chains, padded-term
    // substitutions) stays on per-neuron computeNeuron().
    if (!sub || sub->next || sub->kind != OperandSub::Kind::Input ||
        sub->termIndex >= 0)
        return false;
    checkInput(ins);
    if (numBoxes == 0)
        return true;
    const Tensor &x = *ins[0];
    bool integer = precision_ == Precision::INT8 ||
                   precision_ == Precision::INT16;
    if (!wPackValid_)
        packWeights();
    const bool narrow = integer && chunkPairs_ > 0;

    const int cpg = spec_.inC / spec_.groups;
    const int opg = spec_.outC / spec_.groups;
    const int xh = x.h(), xw = x.w(), xc = x.c();
    const float *xd = x.data().data();
    const std::size_t flat = sub->flatIndex;
    const int redLen = spec_.kh * spec_.kw * cpg;
    const int redPairs = simd::packPairs(redLen);
    Arena &arena = Arena::local();
    auto xgF = arena.floats(integer ? 0 : redLen);
    auto xgI = arena.ints(integer && !narrow ? redLen : 0);
    auto xgN = arena.shorts(narrow ? 2 * redPairs : 0);
    auto accF = arena.floats(
        integer ? 0 : simd::packSize(1, opg, simd::kF32Lanes));
    auto accL = arena.longs(
        integer ? (narrow ? simd::packSize(1, opg, simd::kNarrowLanes)
                          : simd::packSize(1, opg, simd::kI64Lanes))
                : 0);
    if (narrow)
        for (int k = redLen; k < 2 * redPairs; ++k)
            xgN[k] = 0;
    auto biasAt = [&](int oc) {
        return spec_.bias ? bias_[oc] : 0.0f;
    };

    const simd::KernelTable &kt = simd::table();
    if (integer) {
        const std::int32_t zero_q = quantInput(0.0f);
        const std::int32_t sub_q = quantInput(sub->value);
        auto loadX = [&](int n, int ih, int iw, int ci) {
            bool ok = ih >= 0 && ih < xh && iw >= 0 && iw < xw;
            if (!ok)
                return zero_q;
            std::size_t off =
                ((static_cast<std::size_t>(n) * xh + ih) * xw + iw) *
                    xc + ci;
            return off == flat ? sub_q : quantInput(xd[off]);
        };
        auto wb = [&](std::int64_t iacc, int oc) {
            // Left-associated like computeNeuron: the double
            // rounding order is part of the bit contract.
            return writeback(static_cast<double>(iacc) *
                                 inQuant_.scale * wQuant_.scale,
                             biasAt(oc));
        };
        for (std::size_t i = 0; i < numBoxes; ++i) {
            if (narrow)
                convRegionNarrow(kt, spec_, cpg, opg, wPackN_.data(),
                                 chunkPairs_, boxes[i], out,
                                 xgN.data(), accL.data(), loadX, wb);
            else
                convRegionInt(kt, spec_, cpg, opg, wPackI_.data(),
                              boxes[i], out, xgI.data(), accL.data(),
                              loadX, wb);
        }
    } else {
        const float zero_s = storeInput(0.0f);
        const float sub_s = storeInput(sub->value);
        auto loadX = [&](int n, int ih, int iw, int ci) {
            bool ok = ih >= 0 && ih < xh && iw >= 0 && iw < xw;
            if (!ok)
                return zero_s;
            std::size_t off =
                ((static_cast<std::size_t>(n) * xh + ih) * xw + iw) *
                    xc + ci;
            return off == flat ? sub_s : storeInput(xd[off]);
        };
        auto wb = [&](double acc, int oc) {
            return writeback(acc, biasAt(oc));
        };
        for (std::size_t i = 0; i < numBoxes; ++i)
            convRegionFloat(kt, spec_, cpg, opg, wPackF_.data(),
                            boxes[i], out, xgF.data(), accF.data(),
                            loadX, wb);
    }
    return true;
}

template <int W>
void
Conv2D::forwardBatchedImpl(const Tensor &x, LanePlane &xplane,
                           const Region &region, const BatchCover *cover,
                           const Tensor &golden, LanePlane &out) const
{
    bool integer = precision_ == Precision::INT8 ||
                   precision_ == Precision::INT16;
    if (!wPackValid_)
        packWeights();
    const bool narrow = integer && chunkPairs_ > 0;

    const int cpg = spec_.inC / spec_.groups;
    const int opg = spec_.outC / spec_.groups;
    const int xh = x.h(), xw = x.w(), xc = x.c();

    // Input footprint of the output region: every cell any window of
    // the region can read.  The lane plane materialises (golden-fills)
    // it once, and the batch conversion below covers exactly it.
    const int effKh = (spec_.kh - 1) * spec_.dilation + 1;
    const int effKw = (spec_.kw - 1) * spec_.dilation + 1;
    const int g0 = region.c0 / opg;
    const int g1 = (region.c1 - 1) / opg;
    Region fp{region.n0,
              region.n1,
              region.h0 * spec_.stride - spec_.pad,
              (region.h1 - 1) * spec_.stride - spec_.pad + effKh,
              region.w0 * spec_.stride - spec_.pad,
              (region.w1 - 1) * spec_.stride - spec_.pad + effKw,
              g0 * cpg,
              (g1 + 1) * cpg};
    fp = fp.clipped(x);
    xplane.ensure(x, fp);
    const float *xlane = fp.empty() ? nullptr : xplane.lanes(0);

    const int redLen = spec_.kh * spec_.kw * cpg;
    const int redPairs = simd::packPairs(redLen);
    Arena &arena = Arena::local();
    auto xgF = arena.floats(integer ? 0 : static_cast<std::size_t>(redLen) * W);
    auto xgI = arena.ints(
        integer && !narrow ? static_cast<std::size_t>(redLen) * W : 0);
    auto xgN = arena.shorts(
        narrow ? static_cast<std::size_t>(2 * redPairs) * W : 0);
    if (narrow && 2 * redPairs > redLen)
        std::memset(xgN.data() + static_cast<std::size_t>(redLen) * W,
                    0, W * sizeof(std::int16_t));
    // Stored-form lane operands over the footprint (same global
    // lane-minor indexing as the plane, converted rows only).
    // FP16 planes usually hold stored-form values already (golden
    // fills and kernel writebacks both round through binary16, and
    // rounding is idempotent), so the conversion pass is only needed
    // when the plane carries raw bits: the injected node's fault
    // values or the unrounded network input.  Integer modes always
    // convert — the kernels consume quantised operands.
    bool convert = !fp.empty() &&
                   (integer || (precision_ == Precision::FP16 &&
                                !xplane.storedForm()));
    auto xsF = arena.floats(convert && !integer ? x.size() * W : 0);
    auto xsI = arena.ints(convert && integer ? x.size() * W : 0);
    if (convert) {
        const std::size_t run =
            static_cast<std::size_t>(fp.c1 - fp.c0) * W;
        auto convRow = [&](int n, int ih, int w0, int w1) {
            for (int w = w0; w < w1; ++w) {
                std::size_t f0 = x.offset(n, ih, w, fp.c0) *
                                 static_cast<std::size_t>(W);
                if (integer)
                    simd::quantizeBatch(xlane + f0, xsI.data() + f0,
                                        run, inQuant_);
                else
                    simd::roundToHalfBatch(xlane + f0, xsF.data() + f0,
                                           run);
            }
        };
        if (cover) {
            // Convert only under covered output cells' windows: per
            // input row, the merged w-intervals any covered span of an
            // output row whose window overlaps this row can read.  The
            // kernels never load stored-form operands outside these
            // intervals, so the rest of the scratch stays unwritten.
            constexpr int kMaxIv = 64;
            BatchCover::Span iv[kMaxIv];
            for (int n = fp.n0; n < fp.n1; ++n) {
                for (int ih = fp.h0; ih < fp.h1; ++ih) {
                    int m = 0;
                    int ohLo = ih + spec_.pad - effKh + 1;
                    ohLo = ohLo > 0 ? (ohLo + spec_.stride - 1) /
                                          spec_.stride
                                    : 0;
                    ohLo = std::max(ohLo, region.h0);
                    int ohHi =
                        std::min((ih + spec_.pad) / spec_.stride,
                                 region.h1 - 1);
                    for (int oh = ohLo; oh <= ohHi; ++oh) {
                        int nsp = 0;
                        const BatchCover::Span *sp =
                            cover->row(n, oh, nsp);
                        for (int si = 0; si < nsp && m < kMaxIv;
                             ++si) {
                            int a = sp[si].w0 * spec_.stride -
                                    spec_.pad;
                            int b = (sp[si].w1 - 1) * spec_.stride -
                                    spec_.pad + effKw;
                            a = std::max(a, fp.w0);
                            b = std::min(b, fp.w1);
                            if (a < b)
                                iv[m++] = BatchCover::Span{a, b};
                        }
                    }
                    if (m == kMaxIv) {
                        convRow(n, ih, fp.w0, fp.w1);
                        continue;
                    }
                    for (int i = 1; i < m; ++i) {
                        BatchCover::Span key = iv[i];
                        int j = i - 1;
                        for (; j >= 0 && iv[j].w0 > key.w0; --j)
                            iv[j + 1] = iv[j];
                        iv[j + 1] = key;
                    }
                    int e = 0;
                    for (int i = 0; i < m; ++i) {
                        if (e > 0 && iv[e - 1].w1 >= iv[i].w0) {
                            iv[e - 1].w1 =
                                std::max(iv[e - 1].w1, iv[i].w1);
                        } else {
                            iv[e++] = iv[i];
                        }
                    }
                    for (int i = 0; i < e; ++i)
                        convRow(n, ih, iv[i].w0, iv[i].w1);
                }
            }
        } else {
            for (int n = fp.n0; n < fp.n1; ++n)
                for (int h = fp.h0; h < fp.h1; ++h)
                    convRow(n, h, fp.w0, fp.w1);
        }
    }

    auto biasAt = [&](int oc) {
        return spec_.bias ? bias_[oc] : 0.0f;
    };

    const simd::KernelTable &kt = simd::table();
    if (integer) {
        const std::int32_t *xsrc = xsI.data();
        const std::int32_t zero_q = quantInput(0.0f);
        auto wb = [&](const std::int64_t *lanes, float *op, int oc) {
            // Left-associated like computeNeuron: the double rounding
            // order is part of the bit contract.  Splitting writeback
            // into real-value, batch-quantise, dequantise steps keeps
            // each lane's arithmetic exactly the scalar sequence.
            const float b = biasAt(oc);
            float real[W];
            std::int32_t q[W];
            for (int l = 0; l < W; ++l)
                real[l] = static_cast<float>(
                              static_cast<double>(lanes[l]) *
                              inQuant_.scale * wQuant_.scale) +
                          b;
            simd::quantizeBatch(real, q, W, outQuant_);
            for (int l = 0; l < W; ++l)
                op[l] = dequantize(q[l], outQuant_);
        };
        if (narrow) {
            auto loadG = [&](std::int16_t *dst, int n, int ih, int iw,
                             int ci) {
                bool ok = ih >= 0 && ih < xh && iw >= 0 && iw < xw;
                if (!ok) {
                    for (int l = 0; l < W; ++l)
                        dst[l] = static_cast<std::int16_t>(zero_q);
                    return;
                }
                const std::int32_t *src =
                    xsrc +
                    (((static_cast<std::size_t>(n) * xh + ih) * xw +
                      iw) * xc + ci) * W;
                for (int l = 0; l < W; ++l)
                    dst[l] = static_cast<std::int16_t>(src[l]);
            };
            convBatchedNarrow<W>(kt, spec_, cpg, opg, wPackN_.data(),
                                 chunkPairs_, region, cover, golden,
                                 out, xgN.data(), loadG, wb);
        } else {
            auto loadG = [&](std::int32_t *dst, int n, int ih, int iw,
                             int ci) {
                bool ok = ih >= 0 && ih < xh && iw >= 0 && iw < xw;
                if (!ok) {
                    for (int l = 0; l < W; ++l)
                        dst[l] = zero_q;
                    return;
                }
                std::size_t off =
                    ((static_cast<std::size_t>(n) * xh + ih) * xw +
                     iw) * xc + ci;
                std::memcpy(dst, xsrc + off * W,
                            W * sizeof(std::int32_t));
            };
            convBatchedInt<W>(kt, spec_, cpg, opg, wPackI_.data(),
                              region, cover, golden, out, xgI.data(),
                              loadG, wb);
        }
    } else {
        const float *xsrc = convert ? xsF.data() : xlane;
        const float zero_s = storeInput(0.0f);
        auto loadG = [&](float *dst, int n, int ih, int iw, int ci) {
            bool ok = ih >= 0 && ih < xh && iw >= 0 && iw < xw;
            if (!ok) {
                for (int l = 0; l < W; ++l)
                    dst[l] = zero_s;
                return;
            }
            std::size_t off =
                ((static_cast<std::size_t>(n) * xh + ih) * xw + iw) *
                    xc + ci;
            std::memcpy(dst, xsrc + off * W, W * sizeof(float));
        };
        const bool half = precision_ == Precision::FP16;
        auto wb = [&](float *op, int oc) {
            // writeback(acc, bias) over the row: the accumulators are
            // already in op, so add bias in place and round the whole
            // lane row as one batch (identical per element).
            const float b = biasAt(oc);
            for (int l = 0; l < W; ++l)
                op[l] += b;
            if (half)
                simd::roundToHalfBatch(op, op, W);
        };
        convBatchedFloat<W>(kt, spec_, cpg, opg, wPackF_.data(),
                            region, cover, golden, out, xgF.data(),
                            loadG, wb);
    }
}

bool
Conv2D::forwardRegionBatched(const std::vector<const Tensor *> &ins,
                             LanePlane *const *inPlanes,
                             const Region &region,
                             const BatchCover *cover,
                             const Tensor &golden, LanePlane &out) const
{
    checkInput(ins);
    if (region.empty())
        return true;
    switch (out.laneWidth()) {
      case 4:
        forwardBatchedImpl<4>(*ins[0], *inPlanes[0], region, cover,
                              golden, out);
        return true;
      case 8:
        forwardBatchedImpl<8>(*ins[0], *inPlanes[0], region, cover,
                              golden, out);
        return true;
    }
    return false;
}

std::size_t
Conv2D::weightCount(const std::vector<const Tensor *> &) const
{
    return weights_.size();
}

float
Conv2D::weightAt(const std::vector<const Tensor *> &, std::size_t idx) const
{
    panic_if(idx >= weights_.size(), "weight index out of range");
    return weights_[idx];
}

std::vector<NeuronIndex>
Conv2D::inputConsumers(const std::vector<const Tensor *> &ins,
                       std::size_t elem) const
{
    checkInput(ins);
    const Tensor &x = *ins[0];
    NeuronIndex e = x.indexOf(elem);
    int cpg = spec_.inC / spec_.groups;
    int opg = spec_.outC / spec_.groups;
    int g = e.c / cpg;
    int oh_max = outDim(x.h(), spec_.kh);
    int ow_max = outDim(x.w(), spec_.kw);

    std::vector<NeuronIndex> out;
    for (int kh = 0; kh < spec_.kh; ++kh) {
        int num_h = e.h + spec_.pad - kh * spec_.dilation;
        if (num_h < 0 || num_h % spec_.stride != 0)
            continue;
        int oh = num_h / spec_.stride;
        if (oh >= oh_max)
            continue;
        for (int kw = 0; kw < spec_.kw; ++kw) {
            int num_w = e.w + spec_.pad - kw * spec_.dilation;
            if (num_w < 0 || num_w % spec_.stride != 0)
                continue;
            int ow = num_w / spec_.stride;
            if (ow >= ow_max)
                continue;
            for (int oc = g * opg; oc < (g + 1) * opg; ++oc)
                out.push_back({e.n, oh, ow, oc});
        }
    }
    return out;
}

std::vector<NeuronIndex>
Conv2D::weightConsumers(const std::vector<const Tensor *> &ins,
                        std::size_t widx) const
{
    checkInput(ins);
    const Tensor &x = *ins[0];
    panic_if(widx >= weights_.size(), "weight index out of range");
    int oc = static_cast<int>(widx % spec_.outC);
    int oh_max = outDim(x.h(), spec_.kh);
    int ow_max = outDim(x.w(), spec_.kw);

    // With zero padding materialised in the datapath, a weight value is
    // streamed through the MACs for every output position of its output
    // channel (padded terms multiply zero and leave values unchanged).
    std::vector<NeuronIndex> out;
    out.reserve(static_cast<std::size_t>(x.n()) * oh_max * ow_max);
    for (int n = 0; n < x.n(); ++n)
        for (int oh = 0; oh < oh_max; ++oh)
            for (int ow = 0; ow < ow_max; ++ow)
                out.push_back({n, oh, ow, oc});
    return out;
}

int
Conv2D::reductionLength() const
{
    return (spec_.inC / spec_.groups) * spec_.kh * spec_.kw;
}

} // namespace fidelity
