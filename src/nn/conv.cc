#include "nn/conv.hh"

#include <cmath>

#include "sim/arena.hh"
#include "sim/logging.hh"
#include "tensor/bitops.hh"

namespace fidelity
{

Conv2D::Conv2D(std::string name, const ConvSpec &spec,
               std::vector<float> weights, std::vector<float> bias)
    : MacLayer(std::move(name)), spec_(spec), weights_(std::move(weights)),
      bias_(std::move(bias))
{
    fatal_if(spec_.groups <= 0 || spec_.inC % spec_.groups != 0 ||
             spec_.outC % spec_.groups != 0,
             "conv ", name_, ": groups must divide inC and outC");
    fatal_if(spec_.stride <= 0 || spec_.dilation <= 0,
             "conv ", name_, ": stride/dilation must be positive");
    std::size_t expect = static_cast<std::size_t>(spec_.kh) * spec_.kw *
                         (spec_.inC / spec_.groups) * spec_.outC;
    fatal_if(weights_.size() != expect,
             "conv ", name_, ": expected ", expect, " weights, got ",
             weights_.size());
    if (spec_.bias) {
        fatal_if(bias_.size() != static_cast<std::size_t>(spec_.outC),
                 "conv ", name_, ": expected ", spec_.outC, " biases");
    } else {
        fatal_if(!bias_.empty(), "conv ", name_,
                 ": bias data given but spec.bias is false");
    }
}

int
Conv2D::outDim(int in_dim, int k) const
{
    int eff_k = (k - 1) * spec_.dilation + 1;
    return (in_dim + 2 * spec_.pad - eff_k) / spec_.stride + 1;
}

std::size_t
Conv2D::weightIndex(int kh, int kw, int cig, int oc) const
{
    int cpg = spec_.inC / spec_.groups;
    return ((static_cast<std::size_t>(kh) * spec_.kw + kw) * cpg + cig) *
               spec_.outC +
           oc;
}

void
Conv2D::checkInput(const std::vector<const Tensor *> &ins) const
{
    panic_if(ins.size() != 1, "conv expects one input");
    panic_if(ins[0]->c() != spec_.inC,
             "conv ", name_, ": input channels ", ins[0]->c(),
             " != spec ", spec_.inC);
}

Tensor
Conv2D::makeOutput(const std::vector<const Tensor *> &ins) const
{
    checkInput(ins);
    const Tensor &x = *ins[0];
    int oh = outDim(x.h(), spec_.kh);
    int ow = outDim(x.w(), spec_.kw);
    fatal_if(oh <= 0 || ow <= 0, "conv ", name_,
             ": non-positive output size for input ", x.shapeStr());
    return Tensor(x.n(), oh, ow, spec_.outC);
}

float
Conv2D::computeNeuron(const std::vector<const Tensor *> &ins,
                      const NeuronIndex &out, const OperandSub *sub) const
{
    const Tensor &x = *ins[0];
    int cpg = spec_.inC / spec_.groups;
    int opg = spec_.outC / spec_.groups;
    int g = out.c / opg;
    bool integer = precision_ == Precision::INT8 ||
                   precision_ == Precision::INT16;

    // Hot path: the loop bounds already guarantee in-range addresses,
    // so indices are computed directly instead of via the checked
    // Tensor accessors.
    const float *xd = x.data().data();
    const float *wd = weights_.data();
    const int xh = x.h(), xw = x.w(), xc = x.c();
    const std::size_t n_base =
        static_cast<std::size_t>(out.n) * xh;

    float acc = 0.0f;
    std::int64_t iacc = 0;
    int term = 0;
    for (int cig = 0; cig < cpg; ++cig) {
        int ci = g * cpg + cig;
        for (int kh = 0; kh < spec_.kh; ++kh) {
            int ih = out.h * spec_.stride - spec_.pad + kh * spec_.dilation;
            for (int kw = 0; kw < spec_.kw; ++kw) {
                int iw =
                    out.w * spec_.stride - spec_.pad + kw * spec_.dilation;
                bool in_range = ih >= 0 && ih < xh && iw >= 0 &&
                                iw < xw;
                float xin = 0.0f;
                std::size_t xoff = 0;
                if (in_range) {
                    xoff = ((n_base + ih) * xw + iw) * xc + ci;
                    xin = xd[xoff];
                }
                std::size_t widx =
                    ((static_cast<std::size_t>(kh) * spec_.kw + kw) *
                         cpg + cig) * spec_.outC + out.c;
                float wv = wd[widx];
                for (const OperandSub *s = sub; s; s = s->next) {
                    if (s->kind == OperandSub::Kind::Input &&
                        (s->termIndex >= 0
                             ? term == s->termIndex
                             : (in_range && xoff == s->flatIndex))) {
                        xin = s->value;
                    } else if (s->kind == OperandSub::Kind::Weight &&
                               widx == s->flatIndex) {
                        wv = s->value;
                    }
                }
                for (const OperandSub *s = sub; s; s = s->next) {
                    if (s->kind == OperandSub::Kind::PsumFlip &&
                        term == static_cast<int>(s->flatIndex)) {
                        if (integer)
                            iacc = psumFlipInt(iacc, s->flipMask());
                        else
                            acc = psumFlipFloat(acc, s->flipMask());
                    }
                }
                if (integer)
                    iacc += static_cast<std::int64_t>(quantInput(xin)) *
                            quantWeight(wv);
                else
                    acc += storeInput(xin) * storeWeight(wv);
                ++term;
            }
        }
    }
    for (const OperandSub *s = sub; s; s = s->next) {
        if (s->kind == OperandSub::Kind::PsumFlip &&
            term == static_cast<int>(s->flatIndex)) {
            if (integer)
                iacc = psumFlipInt(iacc, s->flipMask());
            else
                acc = psumFlipFloat(acc, s->flipMask());
        }
    }
    double facc = integer
        ? static_cast<double>(iacc) * inQuant_.scale * wQuant_.scale
        : static_cast<double>(acc);
    float b = spec_.bias ? bias_[out.c] : 0.0f;
    for (const OperandSub *s = sub; s; s = s->next)
        if (s->kind == OperandSub::Kind::Bias)
            b = s->value;
    return writeback(facc, b);
}

void
Conv2D::refreshWeightCache() const
{
    bool integer = precision_ == Precision::INT8 ||
                   precision_ == Precision::INT16;
    if (integer) {
        wQuant32_.resize(weights_.size());
        for (std::size_t i = 0; i < weights_.size(); ++i)
            wQuant32_[i] = quantWeight(weights_[i]);
    } else {
        wStored_.resize(weights_.size());
        for (std::size_t i = 0; i < weights_.size(); ++i)
            wStored_[i] = storeWeight(weights_[i]);
    }
    wCacheValid_ = true;
}

Tensor
Conv2D::forward(const std::vector<const Tensor *> &ins) const
{
    // Fast path, bit-identical to computeNeuron(): operands are
    // converted into their stored form once, then accumulated in the
    // canonical (ci, kh, kw) order with the same arithmetic.
    Tensor out = makeOutput(ins);
    const Tensor &x = *ins[0];
    bool integer = precision_ == Precision::INT8 ||
                   precision_ == Precision::INT16;
    if (!wCacheValid_)
        refreshWeightCache();

    Arena &arena = Arena::local();
    auto xs = arena.floats(integer ? 0 : x.size());
    auto xq = arena.ints(integer ? x.size() : 0);
    if (integer) {
        for (std::size_t i = 0; i < x.size(); ++i)
            xq[i] = quantInput(x[i]);
    } else {
        for (std::size_t i = 0; i < x.size(); ++i)
            xs[i] = storeInput(x[i]);
    }

    const int cpg = spec_.inC / spec_.groups;
    const int opg = spec_.outC / spec_.groups;
    const int xh = x.h(), xw = x.w(), xc = x.c();
    const std::int32_t zero_q = integer ? quantInput(0.0f) : 0;
    const float zero_s = integer ? 0.0f : storeInput(0.0f);

    std::size_t flat = 0;
    for (int n = 0; n < out.n(); ++n) {
        for (int oh = 0; oh < out.h(); ++oh) {
            for (int ow = 0; ow < out.w(); ++ow) {
                for (int oc = 0; oc < out.c(); ++oc, ++flat) {
                    int g = oc / opg;
                    float acc = 0.0f;
                    std::int64_t iacc = 0;
                    for (int cig = 0; cig < cpg; ++cig) {
                        int ci = g * cpg + cig;
                        for (int kh = 0; kh < spec_.kh; ++kh) {
                            int ih = oh * spec_.stride - spec_.pad +
                                     kh * spec_.dilation;
                            for (int kw = 0; kw < spec_.kw; ++kw) {
                                int iw = ow * spec_.stride - spec_.pad +
                                         kw * spec_.dilation;
                                bool ok = ih >= 0 && ih < xh &&
                                          iw >= 0 && iw < xw;
                                std::size_t xo = ok
                                    ? ((static_cast<std::size_t>(n) *
                                            xh + ih) * xw + iw) * xc + ci
                                    : 0;
                                std::size_t wi =
                                    ((static_cast<std::size_t>(kh) *
                                          spec_.kw + kw) * cpg + cig) *
                                        spec_.outC + oc;
                                if (integer) {
                                    std::int32_t xv =
                                        ok ? xq[xo] : zero_q;
                                    iacc +=
                                        static_cast<std::int64_t>(xv) *
                                        wQuant32_[wi];
                                } else {
                                    float xv = ok ? xs[xo] : zero_s;
                                    acc += xv * wStored_[wi];
                                }
                            }
                        }
                    }
                    double facc = integer
                        ? static_cast<double>(iacc) * inQuant_.scale *
                              wQuant_.scale
                        : static_cast<double>(acc);
                    float b = spec_.bias ? bias_[oc] : 0.0f;
                    out[flat] = writeback(facc, b);
                }
            }
        }
    }
    return out;
}

Region
Conv2D::propagateRegion(const std::vector<const Tensor *> &ins, int,
                        const Region &in, const Tensor &out) const
{
    checkInput(ins);
    if (in.empty())
        return Region{};
    auto [h0, h1] = windowCone(in.h0, in.h1, spec_.kh, spec_.stride,
                               spec_.pad, spec_.dilation, out.h());
    auto [w0, w1] = windowCone(in.w0, in.w1, spec_.kw, spec_.stride,
                               spec_.pad, spec_.dilation, out.w());
    // A changed input channel reaches every output channel of its
    // group.
    int cpg = spec_.inC / spec_.groups;
    int opg = spec_.outC / spec_.groups;
    int g0 = in.c0 / cpg;
    int g1 = (in.c1 - 1) / cpg;
    Region r{in.n0, in.n1, h0, h1, w0, w1, g0 * opg, (g1 + 1) * opg};
    return r.clipped(out);
}

void
Conv2D::forwardRegion(const std::vector<const Tensor *> &ins,
                      const Region &region, Tensor &out) const
{
    // The loop body mirrors forward() exactly — operands pass through
    // the same store/quant conversions and accumulate in the same
    // (ci, kh, kw) order — restricted to the requested output box.
    checkInput(ins);
    const Tensor &x = *ins[0];
    bool integer = precision_ == Precision::INT8 ||
                   precision_ == Precision::INT16;
    if (!wCacheValid_)
        refreshWeightCache();

    const int cpg = spec_.inC / spec_.groups;
    const int opg = spec_.outC / spec_.groups;
    const int xh = x.h(), xw = x.w(), xc = x.c();
    const float *xd = x.data().data();
    const std::int32_t zero_q = integer ? quantInput(0.0f) : 0;
    const float zero_s = integer ? 0.0f : storeInput(0.0f);

    for (int n = region.n0; n < region.n1; ++n) {
        for (int oh = region.h0; oh < region.h1; ++oh) {
            for (int ow = region.w0; ow < region.w1; ++ow) {
                for (int oc = region.c0; oc < region.c1; ++oc) {
                    int g = oc / opg;
                    float acc = 0.0f;
                    std::int64_t iacc = 0;
                    for (int cig = 0; cig < cpg; ++cig) {
                        int ci = g * cpg + cig;
                        for (int kh = 0; kh < spec_.kh; ++kh) {
                            int ih = oh * spec_.stride - spec_.pad +
                                     kh * spec_.dilation;
                            for (int kw = 0; kw < spec_.kw; ++kw) {
                                int iw = ow * spec_.stride - spec_.pad +
                                         kw * spec_.dilation;
                                bool ok = ih >= 0 && ih < xh &&
                                          iw >= 0 && iw < xw;
                                std::size_t xo = ok
                                    ? ((static_cast<std::size_t>(n) *
                                            xh + ih) * xw + iw) * xc + ci
                                    : 0;
                                std::size_t wi =
                                    ((static_cast<std::size_t>(kh) *
                                          spec_.kw + kw) * cpg + cig) *
                                        spec_.outC + oc;
                                if (integer) {
                                    std::int32_t xv =
                                        ok ? quantInput(xd[xo]) : zero_q;
                                    iacc +=
                                        static_cast<std::int64_t>(xv) *
                                        wQuant32_[wi];
                                } else {
                                    float xv =
                                        ok ? storeInput(xd[xo]) : zero_s;
                                    acc += xv * wStored_[wi];
                                }
                            }
                        }
                    }
                    double facc = integer
                        ? static_cast<double>(iacc) * inQuant_.scale *
                              wQuant_.scale
                        : static_cast<double>(acc);
                    float b = spec_.bias ? bias_[oc] : 0.0f;
                    out.at(n, oh, ow, oc) = writeback(facc, b);
                }
            }
        }
    }
}

std::size_t
Conv2D::weightCount(const std::vector<const Tensor *> &) const
{
    return weights_.size();
}

float
Conv2D::weightAt(const std::vector<const Tensor *> &, std::size_t idx) const
{
    panic_if(idx >= weights_.size(), "weight index out of range");
    return weights_[idx];
}

std::vector<NeuronIndex>
Conv2D::inputConsumers(const std::vector<const Tensor *> &ins,
                       std::size_t elem) const
{
    checkInput(ins);
    const Tensor &x = *ins[0];
    NeuronIndex e = x.indexOf(elem);
    int cpg = spec_.inC / spec_.groups;
    int opg = spec_.outC / spec_.groups;
    int g = e.c / cpg;
    int oh_max = outDim(x.h(), spec_.kh);
    int ow_max = outDim(x.w(), spec_.kw);

    std::vector<NeuronIndex> out;
    for (int kh = 0; kh < spec_.kh; ++kh) {
        int num_h = e.h + spec_.pad - kh * spec_.dilation;
        if (num_h < 0 || num_h % spec_.stride != 0)
            continue;
        int oh = num_h / spec_.stride;
        if (oh >= oh_max)
            continue;
        for (int kw = 0; kw < spec_.kw; ++kw) {
            int num_w = e.w + spec_.pad - kw * spec_.dilation;
            if (num_w < 0 || num_w % spec_.stride != 0)
                continue;
            int ow = num_w / spec_.stride;
            if (ow >= ow_max)
                continue;
            for (int oc = g * opg; oc < (g + 1) * opg; ++oc)
                out.push_back({e.n, oh, ow, oc});
        }
    }
    return out;
}

std::vector<NeuronIndex>
Conv2D::weightConsumers(const std::vector<const Tensor *> &ins,
                        std::size_t widx) const
{
    checkInput(ins);
    const Tensor &x = *ins[0];
    panic_if(widx >= weights_.size(), "weight index out of range");
    int oc = static_cast<int>(widx % spec_.outC);
    int oh_max = outDim(x.h(), spec_.kh);
    int ow_max = outDim(x.w(), spec_.kw);

    // With zero padding materialised in the datapath, a weight value is
    // streamed through the MACs for every output position of its output
    // channel (padded terms multiply zero and leave values unchanged).
    std::vector<NeuronIndex> out;
    out.reserve(static_cast<std::size_t>(x.n()) * oh_max * ow_max);
    for (int n = 0; n < x.n(); ++n)
        for (int oh = 0; oh < oh_max; ++oh)
            for (int ow = 0; ow < ow_max; ++ow)
                out.push_back({n, oh, ow, oc});
    return out;
}

int
Conv2D::reductionLength() const
{
    return (spec_.inC / spec_.groups) * spec_.kh * spec_.kw;
}

} // namespace fidelity
