/**
 * @file
 * Weight initialisation helpers for synthetic networks.
 *
 * The study's networks are structurally faithful but synthetically
 * parameterised (see DESIGN.md): correctness metrics compare faulty
 * output against the fault-free output of the same network, so weight
 * *distributions* (He/Glorot-scaled) rather than trained values are
 * what matters for error-propagation behaviour.
 */

#ifndef FIDELITY_NN_INIT_HH
#define FIDELITY_NN_INIT_HH

#include <cstddef>
#include <vector>

#include "sim/rng.hh"

namespace fidelity
{

/** Gaussian weights with He scaling for the given fan-in. */
std::vector<float> heWeights(Rng &rng, std::size_t count, int fan_in);

/** Small positive biases (uniform in [0, 0.1)). */
std::vector<float> smallBiases(Rng &rng, std::size_t count);

/** Gaussian weights with an explicit standard deviation. */
std::vector<float> gaussianWeights(Rng &rng, std::size_t count,
                                   double stddev);

} // namespace fidelity

#endif // FIDELITY_NN_INIT_HH
