/**
 * @file
 * Structure-of-arrays activation planes for fault-batched re-execution.
 *
 * The batched engine evaluates several injections of the same fault
 * cell in one sweep.  Per network node it keeps a LanePlane: for every
 * tensor element inside a growing `valid` box, `lanes` consecutive
 * floats — one per in-flight injection — so the batched kernels walk
 * the cone geometry once and stream lane columns instead of whole
 * per-injection tensors.  Outside the valid box every lane equals the
 * golden activation by construction, so readers first `ensure` the box
 * they need: newly covered cells are broadcast-filled with golden
 * values while previously written lane columns survive.
 */

#ifndef FIDELITY_NN_LANES_HH
#define FIDELITY_NN_LANES_HH

#include <algorithm>
#include <cstdint>
#include <vector>

#include "nn/region.hh"
#include "tensor/tensor.hh"

namespace fidelity
{

/** Hard cap on the batched engine's lane count (AVX2 f32 width). */
constexpr int kMaxBatchLanes = 8;

/** Lane-minor SoA view of one node's activation under B injections. */
class LanePlane
{
  public:
    /** Set the lane width and invalidate (storage is retained). */
    void
    reset(int lanes)
    {
        lanes_ = lanes;
        valid_ = Region{};
        stored_ = true;
    }

    /**
     * Whether every lane value already has the FP16 stored form
     * (rounded to binary16).  True for planes filled by golden
     * broadcasts and batched-kernel writebacks — both round — so FP16
     * consumers can skip their operand conversion pass.  The engine
     * clears it on the injected node (fault values are arbitrary FP32
     * bit patterns) and on network inputs (never passed through a
     * writeback).
     */
    bool storedForm() const { return stored_; }
    void markRaw() { stored_ = false; }

    int laneWidth() const { return lanes_; }

    /** Box inside which lane columns are materialised. */
    const Region &valid() const { return valid_; }

    /**
     * Grow the valid box to cover `need` (clipped to the tensor).
     * Cells that become covered are broadcast-filled with the golden
     * value; cells already inside the box keep their lane columns.
     * Note the box is the bounding box of the union, so cells in
     * neither the old box nor `need` may be filled too — they read as
     * golden, which is exactly their lane value.
     */
    void
    ensure(const Tensor &golden, const Region &need)
    {
        Region nd = need.clipped(golden);
        if (nd.empty())
            return;
        std::size_t want = golden.size() * lanes_;
        if (soa_.size() < want)
            soa_.resize(want);
        if (valid_.empty()) {
            fillRows(golden, nd, nd.c0, nd.c1);
            valid_ = nd;
            return;
        }
        Region merged = valid_;
        merged.merge(nd);
        if (merged == valid_)
            return;
        for (int n = merged.n0; n < merged.n1; ++n) {
            for (int h = merged.h0; h < merged.h1; ++h) {
                for (int w = merged.w0; w < merged.w1; ++w) {
                    bool inOld = n >= valid_.n0 && n < valid_.n1 &&
                                 h >= valid_.h0 && h < valid_.h1 &&
                                 w >= valid_.w0 && w < valid_.w1;
                    if (inOld) {
                        fillRun(golden, n, h, w, merged.c0, valid_.c0);
                        fillRun(golden, n, h, w, valid_.c1, merged.c1);
                    } else {
                        fillRun(golden, n, h, w, merged.c0, merged.c1);
                    }
                }
            }
        }
        valid_ = merged;
    }

    /** The lane column of one flat tensor element. */
    float *lanes(std::size_t flat) { return soa_.data() + flat * lanes_; }

    const float *
    lanes(std::size_t flat) const
    {
        return soa_.data() + flat * lanes_;
    }

  private:
    void
    fillRows(const Tensor &golden, const Region &r, int c0, int c1)
    {
        for (int n = r.n0; n < r.n1; ++n)
            for (int h = r.h0; h < r.h1; ++h)
                for (int w = r.w0; w < r.w1; ++w)
                    fillRun(golden, n, h, w, c0, c1);
    }

    void
    fillRun(const Tensor &golden, int n, int h, int w, int c0, int c1)
    {
        if (c0 >= c1)
            return;
        std::size_t flat = golden.offset(n, h, w, c0);
        float *p = soa_.data() + flat * lanes_;
        if (lanes_ == kMaxBatchLanes) {
            // Fixed-width splat: the compiler turns the constant-count
            // inner loop into one broadcast store per cell.
            for (int c = c0; c < c1; ++c, ++flat, p += kMaxBatchLanes) {
                float g = golden[flat];
                for (int l = 0; l < kMaxBatchLanes; ++l)
                    p[l] = g;
            }
            return;
        }
        for (int c = c0; c < c1; ++c, ++flat, p += lanes_) {
            float g = golden[flat];
            for (int l = 0; l < lanes_; ++l)
                p[l] = g;
        }
    }

    std::vector<float> soa_;
    Region valid_;
    int lanes_ = 0;
    bool stored_ = true;
};

/**
 * Union-of-cones coverage of one batch's recompute box.
 *
 * The batched walk recomputes the bounding box of the live lanes'
 * fault cones, but scattered cones can leave much of that box covered
 * by no cone at all — cells where every lane provably recomputes
 * golden bits.  BatchCover stores, for each (n, h) row of the box, the
 * merged disjoint w-intervals covered by at least one cone; kernels
 * and the diff scan walk these spans instead of the full box.  Skipped
 * cells keep their golden broadcast fill, which is exactly the value
 * recomputation would store, so coverage clipping cannot change any
 * lane's result.
 */
class BatchCover
{
  public:
    /** One covered w-interval [w0, w1) of a row. */
    struct Span
    {
        int w0, w1;
    };

    /** Build coverage of `bbox` from the lanes set in `mask`. */
    void
    build(const Region *cones, std::uint32_t mask, int lanes,
          const Region &bbox)
    {
        n0_ = bbox.n0;
        h0_ = bbox.h0;
        rowsPerN_ = std::max(0, bbox.h1 - bbox.h0);
        const int rows = std::max(0, bbox.n1 - bbox.n0) * rowsPerN_;
        rowEnd_.assign(rows, 0);
        spans_.clear();
        covered_ = 0;

        // Merged channel intervals of the live cones.  A channel
        // outside every cone's [c0, c1) is touched by no lane at all,
        // so kernels may skip it even inside a covered (n, h, w) cell
        // — weight faults perturb a single output channel each, and a
        // batch of them covers 8 scattered channels, not the interval.
        numCSpans_ = 0;
        coveredChans_ = 0;
        {
            Span ctmp[kMaxBatchLanes];
            int m = 0;
            for (int l = 0; l < lanes && l < kMaxBatchLanes; ++l)
                if ((mask >> l) & 1u)
                    ctmp[m++] = Span{cones[l].c0, cones[l].c1};
            for (int i = 1; i < m; ++i) {
                Span key = ctmp[i];
                int j = i - 1;
                for (; j >= 0 && ctmp[j].w0 > key.w0; --j)
                    ctmp[j + 1] = ctmp[j];
                ctmp[j + 1] = key;
            }
            for (int i = 0; i < m; ++i) {
                if (numCSpans_ > 0 &&
                    cspans_[numCSpans_ - 1].w1 >= ctmp[i].w0) {
                    cspans_[numCSpans_ - 1].w1 = std::max(
                        cspans_[numCSpans_ - 1].w1, ctmp[i].w1);
                } else {
                    cspans_[numCSpans_++] = ctmp[i];
                }
            }
            for (int i = 0; i < numCSpans_; ++i)
                coveredChans_ += cspans_[i].w1 - cspans_[i].w0;
        }

        Span tmp[kMaxBatchLanes];
        int ri = 0;
        for (int n = bbox.n0; n < bbox.n1; ++n) {
            for (int h = bbox.h0; h < bbox.h1; ++h, ++ri) {
                int m = 0;
                for (int l = 0; l < lanes && l < kMaxBatchLanes; ++l) {
                    if (!((mask >> l) & 1u))
                        continue;
                    const Region &c = cones[l];
                    if (n < c.n0 || n >= c.n1 || h < c.h0 ||
                        h >= c.h1)
                        continue;
                    tmp[m++] = Span{c.w0, c.w1};
                }
                for (int i = 1; i < m; ++i) {
                    Span key = tmp[i];
                    int j = i - 1;
                    for (; j >= 0 && tmp[j].w0 > key.w0; --j)
                        tmp[j + 1] = tmp[j];
                    tmp[j + 1] = key;
                }
                const std::size_t first = spans_.size();
                for (int i = 0; i < m; ++i) {
                    if (spans_.size() > first &&
                        spans_.back().w1 >= tmp[i].w0) {
                        spans_.back().w1 =
                            std::max(spans_.back().w1, tmp[i].w1);
                    } else {
                        spans_.push_back(tmp[i]);
                    }
                }
                for (std::size_t s = first; s < spans_.size(); ++s)
                    covered_ += static_cast<std::uint64_t>(
                        spans_[s].w1 - spans_[s].w0);
                rowEnd_[ri] = spans_.size();
            }
        }
    }

    /**
     * The merged spans of row (n, h), which must lie inside the built
     * box.  `count` receives the number of spans (possibly zero).
     */
    const Span *
    row(int n, int h, int &count) const
    {
        const std::size_t ri = static_cast<std::size_t>(n - n0_) *
                                   rowsPerN_ +
                               (h - h0_);
        const std::size_t b = ri > 0 ? rowEnd_[ri - 1] : 0;
        count = static_cast<int>(rowEnd_[ri] - b);
        return spans_.data() + b;
    }

    /** Covered cells summed over all rows (at channel depth one). */
    std::uint64_t coveredCells() const { return covered_; }

    /** Merged channel intervals of the live cones (box-wide). */
    const Span *
    chanSpans(int &count) const
    {
        count = numCSpans_;
        return cspans_;
    }

    /** Total channels inside some cone's channel interval. */
    int coveredChans() const { return coveredChans_; }

  private:
    std::vector<Span> spans_;
    std::vector<std::size_t> rowEnd_;
    std::uint64_t covered_ = 0;
    int n0_ = 0, h0_ = 0, rowsPerN_ = 0;
    Span cspans_[kMaxBatchLanes];
    int numCSpans_ = 0;
    int coveredChans_ = 0;
};

} // namespace fidelity

#endif // FIDELITY_NN_LANES_HH
