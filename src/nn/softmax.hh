/**
 * @file
 * Numerically stable softmax over the channel axis.
 */

#ifndef FIDELITY_NN_SOFTMAX_HH
#define FIDELITY_NN_SOFTMAX_HH

#include "nn/layer.hh"

namespace fidelity
{

/** Softmax applied independently at every (n, h, w) position. */
class Softmax : public Layer
{
  public:
    explicit Softmax(std::string name);

    LayerKind kind() const override { return LayerKind::Softmax; }

    using Layer::forward;

    Tensor makeOutput(const std::vector<const Tensor *> &ins) const override;
    Tensor forward(const std::vector<const Tensor *> &ins) const override;
};

} // namespace fidelity

#endif // FIDELITY_NN_SOFTMAX_HH
