/**
 * @file
 * Unrolled LSTM built from primitive layers.
 *
 * Each timestep is materialised as its own subgraph (gate FC, slices,
 * sigmoid/tanh activations, element-wise cell updates).  This matches
 * the fault-injection granularity of the hardware: a transient
 * flip-flop error corrupts one execution of the gate projection, not
 * the shared weight memory, so each step's FC is an independent
 * injection target.
 */

#ifndef FIDELITY_NN_LSTM_HH
#define FIDELITY_NN_LSTM_HH

#include <string>

#include "nn/network.hh"
#include "sim/rng.hh"

namespace fidelity
{

/** Geometry of an unrolled LSTM. */
struct LstmSpec
{
    int inputSize = 8;  //!< features per timestep
    int hiddenSize = 16;
    int timeSteps = 4;
};

/**
 * Append an unrolled LSTM to the network.
 *
 * @param net Target network.
 * @param input Producer node holding a (1, timeSteps, 1, inputSize)
 *              sequence tensor.
 * @param spec LSTM geometry.
 * @param rng Weight initialisation stream.
 * @param prefix Name prefix for the added layers.
 * @return Node id of the final hidden state (1, 1, 1, hiddenSize).
 */
NodeId addLstm(Network &net, NodeId input, const LstmSpec &spec, Rng &rng,
               const std::string &prefix);

} // namespace fidelity

#endif // FIDELITY_NN_LSTM_HH
