#include "nn/init.hh"

#include <cmath>

#include "sim/logging.hh"

namespace fidelity
{

std::vector<float>
heWeights(Rng &rng, std::size_t count, int fan_in)
{
    panic_if(fan_in <= 0, "heWeights requires positive fan-in");
    double stddev = std::sqrt(2.0 / static_cast<double>(fan_in));
    return gaussianWeights(rng, count, stddev);
}

std::vector<float>
smallBiases(Rng &rng, std::size_t count)
{
    std::vector<float> out(count);
    for (auto &b : out)
        b = static_cast<float>(rng.uniform(0.0, 0.1));
    return out;
}

std::vector<float>
gaussianWeights(Rng &rng, std::size_t count, double stddev)
{
    std::vector<float> out(count);
    for (auto &w : out)
        w = static_cast<float>(rng.normal(0.0, stddev));
    return out;
}

} // namespace fidelity
