#include "nn/pool.hh"

#include <algorithm>
#include <limits>

#include "nn/lanes.hh"
#include "sim/logging.hh"
#include "simd/convert.hh"
#include "tensor/bitops.hh"

namespace fidelity
{

namespace
{

/** FP16 execution rounds every produced activation through binary16. */
void
roundForPrecision(Tensor &t, Precision p)
{
    if (p == Precision::FP16)
        for (std::size_t i = 0; i < t.size(); ++i)
            t[i] = roundToHalf(t[i]);
}

} // namespace

Pool::Pool(std::string name, Mode mode, int window, int stride, int pad)
    : Layer(std::move(name)), mode_(mode), window_(window),
      stride_(stride > 0 ? stride : window), pad_(pad)
{
    fatal_if(window <= 0, "pool ", name_, ": window must be positive");
    fatal_if(pad < 0, "pool ", name_, ": negative padding");
}

Tensor
Pool::makeOutput(const std::vector<const Tensor *> &ins) const
{
    panic_if(ins.size() != 1, "pool expects one input");
    const Tensor &x = *ins[0];
    int oh = (x.h() + 2 * pad_ - window_) / stride_ + 1;
    int ow = (x.w() + 2 * pad_ - window_) / stride_ + 1;
    fatal_if(oh <= 0 || ow <= 0, "pool ", name_,
             ": window larger than input ", x.shapeStr());
    return Tensor(x.n(), oh, ow, x.c());
}

Tensor
Pool::forward(const std::vector<const Tensor *> &ins) const
{
    const Tensor &x = *ins[0];
    Tensor out = makeOutput(ins);
    for (int n = 0; n < out.n(); ++n) {
        for (int oh = 0; oh < out.h(); ++oh) {
            for (int ow = 0; ow < out.w(); ++ow) {
                for (int c = 0; c < out.c(); ++c) {
                    float acc = mode_ == Mode::Max
                        ? -std::numeric_limits<float>::infinity()
                        : 0.0f;
                    for (int ph = 0; ph < window_; ++ph) {
                        for (int pw = 0; pw < window_; ++pw) {
                            int ih = oh * stride_ - pad_ + ph;
                            int iw = ow * stride_ - pad_ + pw;
                            float v = 0.0f;
                            if (ih >= 0 && ih < x.h() && iw >= 0 &&
                                iw < x.w())
                                v = x.at(n, ih, iw, c);
                            if (mode_ == Mode::Max)
                                acc = std::max(acc, v);
                            else
                                acc += v;
                        }
                    }
                    if (mode_ == Mode::Avg)
                        acc /= static_cast<float>(window_ * window_);
                    out.at(n, oh, ow, c) = acc;
                }
            }
        }
    }
    roundForPrecision(out, precision_);
    return out;
}

Region
Pool::propagateRegion(const std::vector<const Tensor *> &, int,
                      const Region &in, const Tensor &out) const
{
    if (in.empty())
        return Region{};
    auto [h0, h1] = windowCone(in.h0, in.h1, window_, stride_, pad_, 1,
                               out.h());
    auto [w0, w1] = windowCone(in.w0, in.w1, window_, stride_, pad_, 1,
                               out.w());
    Region r{in.n0, in.n1, h0, h1, w0, w1, in.c0, in.c1};
    return r.clipped(out);
}

void
Pool::forwardRegion(const std::vector<const Tensor *> &ins,
                    const Region &region, Tensor &out) const
{
    // Mirrors forward() per element, including the FP16 rounding pass.
    const Tensor &x = *ins[0];
    bool half = precision_ == Precision::FP16;
    for (int n = region.n0; n < region.n1; ++n) {
        for (int oh = region.h0; oh < region.h1; ++oh) {
            for (int ow = region.w0; ow < region.w1; ++ow) {
                for (int c = region.c0; c < region.c1; ++c) {
                    float acc = mode_ == Mode::Max
                        ? -std::numeric_limits<float>::infinity()
                        : 0.0f;
                    for (int ph = 0; ph < window_; ++ph) {
                        for (int pw = 0; pw < window_; ++pw) {
                            int ih = oh * stride_ - pad_ + ph;
                            int iw = ow * stride_ - pad_ + pw;
                            float v = 0.0f;
                            if (ih >= 0 && ih < x.h() && iw >= 0 &&
                                iw < x.w())
                                v = x.at(n, ih, iw, c);
                            if (mode_ == Mode::Max)
                                acc = std::max(acc, v);
                            else
                                acc += v;
                        }
                    }
                    if (mode_ == Mode::Avg)
                        acc /= static_cast<float>(window_ * window_);
                    out.at(n, oh, ow, c) = half ? roundToHalf(acc) : acc;
                }
            }
        }
    }
}

bool
Pool::forwardRegionBatched(const std::vector<const Tensor *> &ins,
                           LanePlane *const *inPlanes,
                           const Region &region,
                           const BatchCover *cover,
                           const Tensor &golden,
                           LanePlane &out) const
{
    // Per-lane scalar twin of forwardRegion: the window walk and
    // padding tests run once per output cell, the pool reduction per
    // lane column.
    if (region.empty())
        return true;
    const Tensor &x = *ins[0];
    LanePlane &xp = *inPlanes[0];
    Region fp{region.n0,
              region.n1,
              region.h0 * stride_ - pad_,
              (region.h1 - 1) * stride_ - pad_ + window_,
              region.w0 * stride_ - pad_,
              (region.w1 - 1) * stride_ - pad_ + window_,
              region.c0,
              region.c1};
    xp.ensure(x, fp.clipped(x));

    const int W = out.laneWidth();
    const bool half = precision_ == Precision::FP16;
    const bool isMax = mode_ == Mode::Max;
    const float init = isMax
        ? -std::numeric_limits<float>::infinity()
        : 0.0f;
    float acc[kMaxBatchLanes];
    const BatchCover::Span full{region.w0, region.w1};
    for (int n = region.n0; n < region.n1; ++n) {
        for (int oh = region.h0; oh < region.h1; ++oh) {
            const BatchCover::Span *sp = &full;
            int nsp = 1;
            if (cover)
                sp = cover->row(n, oh, nsp);
            for (int si = 0; si < nsp; ++si) {
            for (int ow = sp[si].w0; ow < sp[si].w1; ++ow) {
                for (int c = region.c0; c < region.c1; ++c) {
                    for (int l = 0; l < W; ++l)
                        acc[l] = init;
                    for (int ph = 0; ph < window_; ++ph) {
                        for (int pw = 0; pw < window_; ++pw) {
                            int ih = oh * stride_ - pad_ + ph;
                            int iw = ow * stride_ - pad_ + pw;
                            bool ok = ih >= 0 && ih < x.h() &&
                                      iw >= 0 && iw < x.w();
                            const float *ip = ok
                                ? xp.lanes(x.offset(n, ih, iw, c))
                                : nullptr;
                            for (int l = 0; l < W; ++l) {
                                float v = ok ? ip[l] : 0.0f;
                                if (isMax)
                                    acc[l] = std::max(acc[l], v);
                                else
                                    acc[l] += v;
                            }
                        }
                    }
                    float *op =
                        out.lanes(golden.offset(n, oh, ow, c));
                    for (int l = 0; l < W; ++l) {
                        float v = acc[l];
                        if (!isMax)
                            v /= static_cast<float>(window_ * window_);
                        op[l] = v;
                    }
                    if (half)
                        simd::roundToHalfBatch(op, op, W);
                }
            }
            }
        }
    }
    return true;
}

GlobalAvgPool::GlobalAvgPool(std::string name)
    : Layer(std::move(name))
{
}

Tensor
GlobalAvgPool::makeOutput(const std::vector<const Tensor *> &ins) const
{
    panic_if(ins.size() != 1, "pool expects one input");
    const Tensor &x = *ins[0];
    return Tensor(x.n(), 1, 1, x.c());
}

Tensor
GlobalAvgPool::forward(const std::vector<const Tensor *> &ins) const
{
    const Tensor &x = *ins[0];
    Tensor out = makeOutput(ins);
    double denom = static_cast<double>(x.h()) * x.w();
    for (int n = 0; n < x.n(); ++n) {
        for (int c = 0; c < x.c(); ++c) {
            double acc = 0.0;
            for (int h = 0; h < x.h(); ++h)
                for (int w = 0; w < x.w(); ++w)
                    acc += x.at(n, h, w, c);
            out.at(n, 0, 0, c) = static_cast<float>(acc / denom);
        }
    }
    roundForPrecision(out, precision_);
    return out;
}

Region
GlobalAvgPool::propagateRegion(const std::vector<const Tensor *> &, int,
                               const Region &in, const Tensor &out) const
{
    if (in.empty())
        return Region{};
    Region r{in.n0, in.n1, 0, 1, 0, 1, in.c0, in.c1};
    return r.clipped(out);
}

void
GlobalAvgPool::forwardRegion(const std::vector<const Tensor *> &ins,
                             const Region &region, Tensor &out) const
{
    const Tensor &x = *ins[0];
    bool half = precision_ == Precision::FP16;
    double denom = static_cast<double>(x.h()) * x.w();
    for (int n = region.n0; n < region.n1; ++n) {
        for (int c = region.c0; c < region.c1; ++c) {
            double acc = 0.0;
            for (int h = 0; h < x.h(); ++h)
                for (int w = 0; w < x.w(); ++w)
                    acc += x.at(n, h, w, c);
            float v = static_cast<float>(acc / denom);
            out.at(n, 0, 0, c) = half ? roundToHalf(v) : v;
        }
    }
}

bool
GlobalAvgPool::forwardRegionBatched(const std::vector<const Tensor *> &ins,
                                    LanePlane *const *inPlanes,
                                    const Region &region,
                                    const BatchCover *cover,
                                    const Tensor &golden,
                                    LanePlane &out) const
{
    // The spatial collapse reads the whole H x W extent of every
    // region channel; without a batched path the engine would have to
    // materialise a full input copy per lane.
    if (region.empty())
        return true;
    const Tensor &x = *ins[0];
    LanePlane &xp = *inPlanes[0];
    Region fp{region.n0, region.n1, 0,         x.h(),
              0,         x.w(),     region.c0, region.c1};
    xp.ensure(x, fp);

    const int W = out.laneWidth();
    const bool half = precision_ == Precision::FP16;
    const double denom = static_cast<double>(x.h()) * x.w();
    double acc[kMaxBatchLanes];
    for (int n = region.n0; n < region.n1; ++n) {
        if (cover) {
            // Output rows are (n, 0); a batch whose cones exclude this
            // n keeps the golden fill and skips the whole reduction.
            int nsp = 0;
            cover->row(n, region.h0, nsp);
            if (nsp == 0)
                continue;
        }
        for (int c = region.c0; c < region.c1; ++c) {
            for (int l = 0; l < W; ++l)
                acc[l] = 0.0;
            for (int h = 0; h < x.h(); ++h) {
                for (int w = 0; w < x.w(); ++w) {
                    const float *ip = xp.lanes(x.offset(n, h, w, c));
                    for (int l = 0; l < W; ++l)
                        acc[l] += ip[l];
                }
            }
            float *op = out.lanes(golden.offset(n, 0, 0, c));
            for (int l = 0; l < W; ++l)
                op[l] = static_cast<float>(acc[l] / denom);
            if (half)
                simd::roundToHalfBatch(op, op, W);
        }
    }
    return true;
}

} // namespace fidelity
