#include "nn/pool.hh"

#include <algorithm>
#include <limits>

#include "sim/logging.hh"
#include "tensor/bitops.hh"

namespace fidelity
{

namespace
{

/** FP16 execution rounds every produced activation through binary16. */
void
roundForPrecision(Tensor &t, Precision p)
{
    if (p == Precision::FP16)
        for (std::size_t i = 0; i < t.size(); ++i)
            t[i] = roundToHalf(t[i]);
}

} // namespace

Pool::Pool(std::string name, Mode mode, int window, int stride, int pad)
    : Layer(std::move(name)), mode_(mode), window_(window),
      stride_(stride > 0 ? stride : window), pad_(pad)
{
    fatal_if(window <= 0, "pool ", name_, ": window must be positive");
    fatal_if(pad < 0, "pool ", name_, ": negative padding");
}

Tensor
Pool::makeOutput(const std::vector<const Tensor *> &ins) const
{
    panic_if(ins.size() != 1, "pool expects one input");
    const Tensor &x = *ins[0];
    int oh = (x.h() + 2 * pad_ - window_) / stride_ + 1;
    int ow = (x.w() + 2 * pad_ - window_) / stride_ + 1;
    fatal_if(oh <= 0 || ow <= 0, "pool ", name_,
             ": window larger than input ", x.shapeStr());
    return Tensor(x.n(), oh, ow, x.c());
}

Tensor
Pool::forward(const std::vector<const Tensor *> &ins) const
{
    const Tensor &x = *ins[0];
    Tensor out = makeOutput(ins);
    for (int n = 0; n < out.n(); ++n) {
        for (int oh = 0; oh < out.h(); ++oh) {
            for (int ow = 0; ow < out.w(); ++ow) {
                for (int c = 0; c < out.c(); ++c) {
                    float acc = mode_ == Mode::Max
                        ? -std::numeric_limits<float>::infinity()
                        : 0.0f;
                    for (int ph = 0; ph < window_; ++ph) {
                        for (int pw = 0; pw < window_; ++pw) {
                            int ih = oh * stride_ - pad_ + ph;
                            int iw = ow * stride_ - pad_ + pw;
                            float v = 0.0f;
                            if (ih >= 0 && ih < x.h() && iw >= 0 &&
                                iw < x.w())
                                v = x.at(n, ih, iw, c);
                            if (mode_ == Mode::Max)
                                acc = std::max(acc, v);
                            else
                                acc += v;
                        }
                    }
                    if (mode_ == Mode::Avg)
                        acc /= static_cast<float>(window_ * window_);
                    out.at(n, oh, ow, c) = acc;
                }
            }
        }
    }
    roundForPrecision(out, precision_);
    return out;
}

Region
Pool::propagateRegion(const std::vector<const Tensor *> &, int,
                      const Region &in, const Tensor &out) const
{
    if (in.empty())
        return Region{};
    auto [h0, h1] = windowCone(in.h0, in.h1, window_, stride_, pad_, 1,
                               out.h());
    auto [w0, w1] = windowCone(in.w0, in.w1, window_, stride_, pad_, 1,
                               out.w());
    Region r{in.n0, in.n1, h0, h1, w0, w1, in.c0, in.c1};
    return r.clipped(out);
}

void
Pool::forwardRegion(const std::vector<const Tensor *> &ins,
                    const Region &region, Tensor &out) const
{
    // Mirrors forward() per element, including the FP16 rounding pass.
    const Tensor &x = *ins[0];
    bool half = precision_ == Precision::FP16;
    for (int n = region.n0; n < region.n1; ++n) {
        for (int oh = region.h0; oh < region.h1; ++oh) {
            for (int ow = region.w0; ow < region.w1; ++ow) {
                for (int c = region.c0; c < region.c1; ++c) {
                    float acc = mode_ == Mode::Max
                        ? -std::numeric_limits<float>::infinity()
                        : 0.0f;
                    for (int ph = 0; ph < window_; ++ph) {
                        for (int pw = 0; pw < window_; ++pw) {
                            int ih = oh * stride_ - pad_ + ph;
                            int iw = ow * stride_ - pad_ + pw;
                            float v = 0.0f;
                            if (ih >= 0 && ih < x.h() && iw >= 0 &&
                                iw < x.w())
                                v = x.at(n, ih, iw, c);
                            if (mode_ == Mode::Max)
                                acc = std::max(acc, v);
                            else
                                acc += v;
                        }
                    }
                    if (mode_ == Mode::Avg)
                        acc /= static_cast<float>(window_ * window_);
                    out.at(n, oh, ow, c) = half ? roundToHalf(acc) : acc;
                }
            }
        }
    }
}

GlobalAvgPool::GlobalAvgPool(std::string name)
    : Layer(std::move(name))
{
}

Tensor
GlobalAvgPool::makeOutput(const std::vector<const Tensor *> &ins) const
{
    panic_if(ins.size() != 1, "pool expects one input");
    const Tensor &x = *ins[0];
    return Tensor(x.n(), 1, 1, x.c());
}

Tensor
GlobalAvgPool::forward(const std::vector<const Tensor *> &ins) const
{
    const Tensor &x = *ins[0];
    Tensor out = makeOutput(ins);
    double denom = static_cast<double>(x.h()) * x.w();
    for (int n = 0; n < x.n(); ++n) {
        for (int c = 0; c < x.c(); ++c) {
            double acc = 0.0;
            for (int h = 0; h < x.h(); ++h)
                for (int w = 0; w < x.w(); ++w)
                    acc += x.at(n, h, w, c);
            out.at(n, 0, 0, c) = static_cast<float>(acc / denom);
        }
    }
    roundForPrecision(out, precision_);
    return out;
}

Region
GlobalAvgPool::propagateRegion(const std::vector<const Tensor *> &, int,
                               const Region &in, const Tensor &out) const
{
    if (in.empty())
        return Region{};
    Region r{in.n0, in.n1, 0, 1, 0, 1, in.c0, in.c1};
    return r.clipped(out);
}

void
GlobalAvgPool::forwardRegion(const std::vector<const Tensor *> &ins,
                             const Region &region, Tensor &out) const
{
    const Tensor &x = *ins[0];
    bool half = precision_ == Precision::FP16;
    double denom = static_cast<double>(x.h()) * x.w();
    for (int n = region.n0; n < region.n1; ++n) {
        for (int c = region.c0; c < region.c1; ++c) {
            double acc = 0.0;
            for (int h = 0; h < x.h(); ++h)
                for (int w = 0; w < x.w(); ++w)
                    acc += x.at(n, h, w, c);
            float v = static_cast<float>(acc / denom);
            out.at(n, 0, 0, c) = half ? roundToHalf(v) : v;
        }
    }
}

} // namespace fidelity
