/**
 * @file
 * Layer abstractions for the DNN inference engine.
 *
 * The engine plays the role the paper assigns to (modified) TensorFlow:
 * a fast forward-pass substrate whose per-layer outputs can be
 * overridden by FIdelity's software fault models.  Layers that perform
 * multiply-accumulate work (conv / FC / matmul) additionally expose the
 * structural queries the fault models need: which output neurons
 * consume a given input or weight element, and bit-exact recomputation
 * of a single output neuron with one operand substituted.
 */

#ifndef FIDELITY_NN_LAYER_HH
#define FIDELITY_NN_LAYER_HH

#include <memory>
#include <string>
#include <vector>

#include "nn/region.hh"
#include "tensor/quant.hh"
#include "tensor/tensor.hh"

namespace fidelity
{

class LanePlane;
class BatchCover;

/** Numeric execution mode of a layer (the accelerator's data precision). */
enum class Precision
{
    FP32, //!< reference mode, plain float arithmetic
    FP16, //!< binary16 operands/outputs, FP32 accumulation
    INT16, //!< 16-bit symmetric quantised operands, INT accumulation
    INT8, //!< 8-bit symmetric quantised operands, INT accumulation
};

/** Printable name of a precision mode. */
const char *precisionName(Precision p);

/** Coarse layer taxonomy (drives fault-model selection and reporting). */
enum class LayerKind
{
    Conv,
    FC,
    MatMul,
    Pool,
    Activation,
    Elementwise,
    Concat,
    Slice,
    Softmax,
};

/** Printable name of a layer kind. */
const char *layerKindName(LayerKind k);

/**
 * Substitute one operand value (or flip a partial-sum bit) during
 * single-neuron recomputation.
 *
 * Input/Weight: any MAC term whose input (or weight) element has the
 * given flat index reads `value` instead of the stored/golden operand.
 *
 * PsumFlip: immediately before the MAC term with index `flatIndex`
 * (0-based in the canonical reduction order) is accumulated, bit `bit`
 * of the partial-sum register is flipped — in the FP32 accumulator word
 * for floating modes, or in the two's-complement accumulator for
 * integer modes.  Accumulation then continues from the corrupted value,
 * exactly as a transient in the psum flip-flop behaves in hardware.
 * flatIndex == reductionLength() flips after the last term (the drained
 * value).
 */
struct OperandSub
{
    enum class Kind { Input, Weight, PsumFlip, Bias } kind = Kind::Input;

    /**
     * Optional chain link: layers apply every substitution in the
     * list.  Used for multi-word memory faults, where several operand
     * values are corrupted at once (Sec. III-E).
     */
    const OperandSub *next = nullptr;
    std::size_t flatIndex = 0; //!< operand flat index, or psum MAC step
    float value = 0.0f;        //!< substituted value (Input/Weight/Bias)
    int bit = 0;               //!< flipped bit position (PsumFlip)

    /** Extra bits flipped together with `bit` (PsumFlip multi-bit). */
    std::uint32_t extraMask = 0;

    /** Full PsumFlip mask. */
    std::uint32_t flipMask() const { return (1u << bit) | extraMask; }

    /**
     * For Kind::Input only: when >= 0, substitute the operand of the
     * MAC term with this reduction index instead of matching by
     * flatIndex.  This reaches terms that read padded (zero) operands,
     * which have no input-tensor element to match.
     */
    int termIndex = -1;
};

/** Base class of every layer. */
class Layer
{
  public:
    explicit Layer(std::string name);
    virtual ~Layer();

    Layer(const Layer &) = delete;
    Layer &operator=(const Layer &) = delete;

    const std::string &name() const { return name_; }

    virtual LayerKind kind() const = 0;

    /** Number of graph inputs this layer consumes (1 or 2). */
    virtual int numInputs() const { return 1; }

    /** Output shape for the given input shapes. */
    virtual Tensor
    makeOutput(const std::vector<const Tensor *> &ins) const = 0;

    /** Run the layer. Input count must equal numInputs(). */
    virtual Tensor forward(const std::vector<const Tensor *> &ins) const = 0;

    /** Convenience for single-input layers. */
    Tensor forward(const Tensor &in) const;

    /**
     * Record calibration statistics (abs-max of inputs/outputs) used by
     * the integer precision modes.  Called during a calibration pass run
     * in FP32.  The default records nothing.
     */
    virtual void calibrate(const std::vector<const Tensor *> &ins,
                           const Tensor &out);

    /**
     * Fault-cone propagation: a conservative bounding box of the output
     * elements that can change when graph input `inputIdx` changes only
     * inside `in`.  Spatially local layers override this with their
     * receptive cone; the default declares the layer globally mixing
     * (the whole output changes), which makes the incremental engine
     * fall back to a dense recompute.
     *
     * @param ins The layer's inputs (shapes define the mapping).
     * @param inputIdx Which graph input `in` refers to.
     * @param in Changed region of that input (non-empty, in range).
     * @param out The golden output (shape reference only).
     */
    virtual Region propagateRegion(const std::vector<const Tensor *> &ins,
                                   int inputIdx, const Region &in,
                                   const Tensor &out) const;

    /**
     * Recompute only `region` of the output, in place.  `out` must have
     * the layer's output shape and already hold values that are correct
     * outside the region (the engine seeds it with the golden
     * activation).  Every element inside the region must be
     * bit-identical to what forward() would produce on the same inputs
     * — same operand conversions, same canonical accumulation order.
     * The default recomputes densely via forward().
     */
    virtual void forwardRegion(const std::vector<const Tensor *> &ins,
                               const Region &region, Tensor &out) const;

    /**
     * Fault-batched twin of forwardRegion: recompute `region` for every
     * SIMD lane at once, where lanes are independent injections of the
     * same fault cell.  `ins` are the golden inputs; `inPlanes[i]` is
     * the SoA plane of input i (lane values inside its valid box,
     * golden outside — callees ensure() the footprint they read).
     * `golden` is the golden output (shape / offset reference) and
     * `out` the output plane, already ensured over `region` by the
     * caller.  `cover`, when non-null, is the union-of-cones coverage
     * of `region`: cells outside it provably recompute golden bits, so
     * kernels walk only the covered row spans (skipped cells keep the
     * plane's golden fill).  Every written lane value must be
     * bit-identical to what forwardRegion would produce from that
     * lane's inputs.  Returns false when the layer has no batched path
     * (the engine then falls back to per-lane forwardRegion); the
     * default has none.
     */
    virtual bool
    forwardRegionBatched(const std::vector<const Tensor *> &ins,
                         LanePlane *const *inPlanes, const Region &region,
                         const BatchCover *cover, const Tensor &golden,
                         LanePlane &out) const;

    /** Set the execution precision (refreshes precision-derived state). */
    void
    setPrecision(Precision p)
    {
        precision_ = p;
        onPrecisionChanged();
    }

    Precision precision() const { return precision_; }

  protected:
    /** Hook for layers with precision-derived state (quant ranges). */
    virtual void onPrecisionChanged() {}

    std::string name_;
    Precision precision_ = Precision::FP32;
};

/**
 * A multiply-accumulate layer (conv / FC / matmul).
 *
 * All MAC layers share the accumulation convention validated against the
 * accelerator model: operands are first stored in the datapath
 * representation of the active precision, products accumulate in FP32
 * (floating modes) or INT64 (integer modes) over the canonical reduction
 * order, bias is added, and the result is written back through the
 * output representation.
 */
class MacLayer : public Layer
{
  public:
    MacLayer(std::string name);

    /**
     * Total number of weight elements.  For two-operand layers
     * (MatMulAB) the "weights" are the second graph input, hence the
     * inputs parameter.
     */
    virtual std::size_t
    weightCount(const std::vector<const Tensor *> &ins) const = 0;

    /** Read a weight element by flat index (real value). */
    virtual float weightAt(const std::vector<const Tensor *> &ins,
                           std::size_t idx) const = 0;

    /**
     * Output neurons that consume the given input element.
     * @param ins Layer inputs (shapes define the iteration space).
     * @param elem Flat NHWC offset into ins[0].
     */
    virtual std::vector<NeuronIndex>
    inputConsumers(const std::vector<const Tensor *> &ins,
                   std::size_t elem) const = 0;

    /** Output neurons that consume the given weight element. */
    virtual std::vector<NeuronIndex>
    weightConsumers(const std::vector<const Tensor *> &ins,
                    std::size_t widx) const = 0;

    /**
     * Recompute one output neuron, optionally substituting an operand.
     * Bit-identical to the value forward() produces for that neuron when
     * sub is null.
     */
    virtual float
    computeNeuron(const std::vector<const Tensor *> &ins,
                  const NeuronIndex &out, const OperandSub *sub) const = 0;

    /** Number of MAC terms contributing to one output neuron. */
    virtual int reductionLength() const = 0;

    /**
     * Vectorized substituted re-execution: recompute the listed output
     * boxes with `sub` applied, writing into `out` (which must have the
     * layer's output shape; only box elements are written).  Every
     * computed element must be bit-identical to computeNeuron() with
     * the same substitution.  Returns false when this layer (or this
     * substitution kind) has no vector path — callers then fall back
     * to per-neuron computeNeuron().  The default has no vector path.
     */
    virtual bool forwardWithSub(const std::vector<const Tensor *> &ins,
                                const OperandSub *sub,
                                const Region *boxes, std::size_t numBoxes,
                                Tensor &out) const;

    /** Whether this layer has a bias vector. */
    virtual bool hasBias() const = 0;

    /** Quantisation parameters of the input operand (integer modes). */
    const QuantParams &inputQuant() const { return inQuant_; }

    /** Quantisation parameters of the weights (integer modes). */
    const QuantParams &weightQuant() const { return wQuant_; }

    /** Quantisation parameters of the output (integer modes). */
    const QuantParams &outputQuant() const { return outQuant_; }

    void calibrate(const std::vector<const Tensor *> &ins,
                   const Tensor &out) override;

  protected:
    /** Store an operand value as the active precision's datapath does. */
    float storeInput(float x) const;
    float storeWeight(float x) const;

    /** Round a finished accumulator + bias through the output path. */
    float writeback(double acc, float bias) const;

    /** Apply a PsumFlip substitution to a floating accumulator. */
    static float psumFlipFloat(float acc, std::uint32_t mask);

    /** Apply a PsumFlip substitution to an integer accumulator. */
    static std::int64_t psumFlipInt(std::int64_t acc,
                                    std::uint32_t mask);

    /** Integer quantisation of operands for the INT modes. */
    std::int32_t quantInput(float x) const;
    std::int32_t quantWeight(float x) const;

    /** Refresh integer quant params from recorded abs-max values. */
    void refreshQuant();

    /** Precision changes re-derive the quantisation ranges. */
    void onPrecisionChanged() override { refreshQuant(); }

    /** Called whenever precision or quant ranges change (cache hook). */
    virtual void onQuantChanged() {}

    QuantParams inQuant_;
    QuantParams wQuant_;
    QuantParams outQuant_;
    double inAbsMax_ = 0.0;
    double wAbsMax_ = 0.0;
    double outAbsMax_ = 0.0;
};

} // namespace fidelity

#endif // FIDELITY_NN_LAYER_HH
