/**
 * @file
 * 2-D convolution layer (NHWC, grouped/depthwise capable).
 *
 * Weight layout is [kh][kw][cin_per_group][cout] flattened, matching the
 * order in which the accelerator model streams weights into CBUF.  The
 * reduction order for one output neuron is (ci, kh, kw) lexicographic
 * with FP32 (or integer) accumulation — the shared convention that lets
 * validation compare faulty neuron values bitwise against the
 * accelerator simulator.
 */

#ifndef FIDELITY_NN_CONV_HH
#define FIDELITY_NN_CONV_HH

#include <cstdint>

#include "nn/layer.hh"
#include "sim/arena.hh"

namespace fidelity
{

/** Static configuration of a convolution layer. */
struct ConvSpec
{
    int inC = 1;
    int outC = 1;
    int kh = 3;
    int kw = 3;
    int stride = 1;
    int pad = 0;      //!< symmetric zero padding
    int dilation = 1;
    int groups = 1;   //!< inC and outC must both be divisible by groups
    bool bias = true;
};

/** A grouped 2-D convolution with optional bias. */
class Conv2D : public MacLayer
{
  public:
    /**
     * @param name Layer name for reports.
     * @param spec Convolution geometry.
     * @param weights Flat [kh][kw][cin/groups][cout] weights.
     * @param bias Per-output-channel bias (empty if spec.bias false).
     */
    Conv2D(std::string name, const ConvSpec &spec,
           std::vector<float> weights, std::vector<float> bias);

    LayerKind kind() const override { return LayerKind::Conv; }

    using Layer::forward;

    const ConvSpec &spec() const { return spec_; }

    Tensor makeOutput(const std::vector<const Tensor *> &ins) const override;
    Tensor forward(const std::vector<const Tensor *> &ins) const override;

    /** Receptive cone: output box whose windows touch the input box. */
    Region propagateRegion(const std::vector<const Tensor *> &ins,
                           int inputIdx, const Region &in,
                           const Tensor &out) const override;

    void forwardRegion(const std::vector<const Tensor *> &ins,
                       const Region &region, Tensor &out) const override;

    std::size_t
    weightCount(const std::vector<const Tensor *> &ins) const override;
    float weightAt(const std::vector<const Tensor *> &ins,
                   std::size_t idx) const override;

    std::vector<NeuronIndex>
    inputConsumers(const std::vector<const Tensor *> &ins,
                   std::size_t elem) const override;
    std::vector<NeuronIndex>
    weightConsumers(const std::vector<const Tensor *> &ins,
                    std::size_t widx) const override;

    float computeNeuron(const std::vector<const Tensor *> &ins,
                        const NeuronIndex &out,
                        const OperandSub *sub) const override;

    int reductionLength() const override;
    bool hasBias() const override { return spec_.bias; }

    bool forwardWithSub(const std::vector<const Tensor *> &ins,
                        const OperandSub *sub, const Region *boxes,
                        std::size_t numBoxes, Tensor &out) const override;

    bool forwardRegionBatched(const std::vector<const Tensor *> &ins,
                              LanePlane *const *inPlanes,
                              const Region &region,
                              const BatchCover *cover,
                              const Tensor &golden,
                              LanePlane &out) const override;

    /** Flat weight index of (kh, kw, ci_in_group, oc). */
    std::size_t weightIndex(int kh, int kw, int cig, int oc) const;

    /** Raw weight storage ([kh][kw][cin/groups][cout] flat). */
    const std::vector<float> &weightData() const { return weights_; }

    /** Raw bias storage (empty when spec.bias is false). */
    const std::vector<float> &biasData() const { return bias_; }

    /** Output spatial height for the given input height. */
    int outDim(int in_dim, int k) const;

  protected:
    void onQuantChanged() override { wPackValid_ = false; }

  private:
    /** Validate the shape of the input tensor. */
    void checkInput(const std::vector<const Tensor *> &ins) const;

    /** Re-pack weights into the lane-blocked kernel layout. */
    void packWeights() const;

    /** Batched kernel body for a compile-time lane width. */
    template <int W>
    void forwardBatchedImpl(const Tensor &x, LanePlane &xplane,
                            const Region &region,
                            const BatchCover *cover,
                            const Tensor &golden, LanePlane &out) const;

    ConvSpec spec_;
    std::vector<float> weights_;
    std::vector<float> bias_;

    // Kernel fast path: weights pre-converted into the active
    // precision's stored form (bit-identical to storeWeight /
    // quantWeight per element) and packed lane-blocked per group
    // (see simd/pack.hh).  Built at construction; precision or
    // quantisation changes invalidate and repack lazily.  Integer
    // precisions pack *either* the narrow pair-interleaved int16
    // layout (when the statically proven chunk bound makes the narrow
    // kernels legal and profitable — chunkPairs_ > 0) *or* the wide
    // int32 layout; the narrow result is exact, hence bit-identical
    // to the wide path.
    mutable bool wPackValid_ = false;
    mutable AlignedVec<float> wPackF_;
    mutable AlignedVec<std::int32_t> wPackI_;
    mutable AlignedVec<std::int16_t> wPackN_;
    mutable int chunkPairs_ = 0; //!< 0: narrow path off (wide pack)
};

} // namespace fidelity

#endif // FIDELITY_NN_CONV_HH
