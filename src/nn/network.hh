/**
 * @file
 * A DAG of layers with cached activations and partial re-execution.
 *
 * Node 0 is the external input; every other node owns one Layer and
 * names its producer nodes.  Nodes are stored in topological order
 * (producers must precede consumers), which lets the fault injector
 * re-run only the part of the graph downstream of an injected layer —
 * the dominant cost of a software fault-injection experiment.
 */

#ifndef FIDELITY_NN_NETWORK_HH
#define FIDELITY_NN_NETWORK_HH

#include <array>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "nn/layer.hh"

namespace fidelity
{

/** Identifier of a node in a Network (0 is the external input). */
using NodeId = int;

/** A feed-forward DAG of layers. */
class Network
{
  public:
    /** @param name Network name used in reports. */
    explicit Network(std::string name);

    const std::string &name() const { return name_; }

    /**
     * Append a layer fed by the given producer nodes.
     * @return The new node's id.
     */
    NodeId add(std::unique_ptr<Layer> layer, std::vector<NodeId> inputs);

    /** Convenience for a single-producer layer. */
    NodeId add(std::unique_ptr<Layer> layer, NodeId input);

    /** Number of nodes including the input pseudo-node. */
    int numNodes() const { return static_cast<int>(nodes_.size()); }

    /** The layer at a node (node must be >= 1). */
    Layer &layer(NodeId id);
    const Layer &layer(NodeId id) const;

    /** Producer node ids of a node. */
    const std::vector<NodeId> &producers(NodeId id) const;

    /** Id of the last added node (the network output). */
    NodeId outputNode() const;

    /** Set the execution precision of every layer. */
    void setPrecision(Precision p);

    Precision precision() const { return precision_; }

    /**
     * Run a calibration pass in FP32 so integer modes have quantisation
     * ranges, then restore the current precision.
     */
    void calibrate(const Tensor &input);

    /** Forward pass returning the activation of every node. */
    std::vector<Tensor> forwardAll(const Tensor &input) const;

    /** Forward pass returning only the output activation. */
    Tensor forward(const Tensor &input) const;

    /**
     * Re-run everything downstream of `node`, whose activation is
     * replaced by `replacement`; `cached` holds a previous forwardAll
     * result for the same input.
     * @return The network output under the replacement.
     */
    Tensor forwardFrom(NodeId node, const Tensor &replacement,
                       const std::vector<Tensor> &cached) const;

    /** Nodes holding MAC layers (fault-injection targets). */
    std::vector<NodeId> macNodes() const;

    /** Gather the input tensors of a node from an activation vector. */
    std::vector<const Tensor *>
    gatherInputs(NodeId id, const std::vector<Tensor> &acts) const;

    /**
     * Total number of MAC operations in one forward pass.  The count
     * depends only on the input shape, so it is computed once per
     * shape and served from a cache afterwards — callers (benches,
     * timing code) no longer pay a full forward pass per query.
     */
    std::uint64_t
    totalMacOps(const Tensor &input) const;

    /**
     * Same count from activations a caller already has (no forward
     * pass at all).  `acts` must be a forwardAll() result of this
     * network.
     */
    std::uint64_t
    totalMacOps(const std::vector<Tensor> &acts) const;

  private:
    struct Node
    {
        std::unique_ptr<Layer> layer; //!< null for the input pseudo-node
        std::vector<NodeId> inputs;
    };

    /** Input-shape-keyed memo of totalMacOps (guarded; Network is
     *  shared read-only across campaign workers). */
    struct MacOpsCache
    {
        std::mutex mutex;
        std::vector<std::pair<std::array<int, 4>, std::uint64_t>> entries;
    };

    std::string name_;
    std::vector<Node> nodes_;
    Precision precision_ = Precision::FP32;
    mutable std::unique_ptr<MacOpsCache> macOpsCache_;
};

} // namespace fidelity

#endif // FIDELITY_NN_NETWORK_HH
