/**
 * @file
 * Symmetric integer quantisation for INT16/INT8 execution modes.
 *
 * The paper's INT16/INT8 networks are quantised with TensorFlow's
 * min/max support.  We implement the equivalent symmetric per-tensor
 * scheme: a tensor with observed |max| = A maps x -> round(x / scale)
 * with scale = A / qmax, clamped to [qmin, qmax].  MAC arithmetic is
 * int32 accumulate (as in NVDLA's INT pipelines); results requantise
 * through the product of operand scales.
 */

#ifndef FIDELITY_TENSOR_QUANT_HH
#define FIDELITY_TENSOR_QUANT_HH

#include <cstdint>
#include <vector>

namespace fidelity
{

/** Per-tensor symmetric quantisation parameters. */
struct QuantParams
{
    double scale = 1.0; //!< real value represented by one integer step
    int bits = 8;       //!< 8 or 16

    /** Largest representable quantised magnitude (e.g. 127 for INT8). */
    constexpr std::int32_t qmax() const { return (1 << (bits - 1)) - 1; }

    /** Most negative representable value (e.g. -128 for INT8). */
    constexpr std::int32_t qmin() const { return -(1 << (bits - 1)); }
};

/** Clamp an int32 accumulator into the range of the given params. */
constexpr std::int32_t
clampToRange(std::int64_t v, const QuantParams &qp)
{
    std::int64_t lo = qp.qmin(), hi = qp.qmax();
    return static_cast<std::int32_t>(v < lo ? lo : (v > hi ? hi : v));
}

/** Derive symmetric params from the absolute max of a value set. */
QuantParams calibrate(const std::vector<float> &values, int bits);

/** Derive symmetric params from a known absolute maximum. */
QuantParams calibrateAbsMax(double abs_max, int bits);

/** Quantise one value (round-to-nearest, clamp to range). */
std::int32_t quantize(float x, const QuantParams &qp);

/** Dequantise one value. */
float dequantize(std::int32_t q, const QuantParams &qp);

} // namespace fidelity

#endif // FIDELITY_TENSOR_QUANT_HH
