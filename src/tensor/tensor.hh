/**
 * @file
 * A minimal dense NHWC tensor of FP32 values.
 *
 * All layers carry FP32 storage; precision modes (FP16/INT16/INT8) are
 * applied by the layers themselves by rounding operands through the
 * target representation, matching how the accelerator's datapath holds
 * values in the narrower formats while the framework observes them as
 * real numbers.
 */

#ifndef FIDELITY_TENSOR_TENSOR_HH
#define FIDELITY_TENSOR_TENSOR_HH

#include <cstdint>
#include <string>
#include <vector>

namespace fidelity
{

/** Logical position of an output neuron: (batch, height, width, chan). */
struct NeuronIndex
{
    int n = 0;
    int h = 0;
    int w = 0;
    int c = 0;

    bool operator==(const NeuronIndex &o) const = default;

    /** Lexicographic order so neuron sets can be sorted/deduplicated. */
    bool operator<(const NeuronIndex &o) const;

    std::string str() const;
};

/** Dense 4-D (N, H, W, C) FP32 tensor; lower-rank data uses H=W=1 etc. */
class Tensor
{
  public:
    /** Empty tensor. */
    Tensor() = default;

    /** Allocate a zero-filled tensor of the given shape. */
    Tensor(int n, int h, int w, int c);

    int n() const { return n_; }
    int h() const { return h_; }
    int w() const { return w_; }
    int c() const { return c_; }

    /** Total number of elements. */
    std::size_t size() const { return data_.size(); }

    /** Flat offset of (n, h, w, c) in NHWC layout. */
    std::size_t offset(int n, int h, int w, int c) const;

    /** Inverse of offset(): recover the 4-D index of a flat offset. */
    NeuronIndex indexOf(std::size_t flat) const;

    float &at(int n, int h, int w, int c);
    float at(int n, int h, int w, int c) const;

    float &at(const NeuronIndex &i) { return at(i.n, i.h, i.w, i.c); }
    float at(const NeuronIndex &i) const { return at(i.n, i.h, i.w, i.c); }

    /** Flat element access. */
    float &operator[](std::size_t i) { return data_[i]; }
    float operator[](std::size_t i) const { return data_[i]; }

    const std::vector<float> &data() const { return data_; }
    std::vector<float> &data() { return data_; }

    /** Fill every element with the given value. */
    void fill(float v);

    /** True if shapes match. */
    bool sameShape(const Tensor &o) const;

    /** Flat index of the maximum element (ties -> first). */
    std::size_t argmax() const;

    /** Absolute maximum over all elements (0 for empty). */
    float absMax() const;

    /** Shape as "NxHxWxC" for diagnostics. */
    std::string shapeStr() const;

  private:
    int n_ = 0, h_ = 0, w_ = 0, c_ = 0;
    std::vector<float> data_;
};

} // namespace fidelity

#endif // FIDELITY_TENSOR_TENSOR_HH
