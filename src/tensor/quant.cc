#include "tensor/quant.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace fidelity
{

QuantParams
calibrate(const std::vector<float> &values, int bits)
{
    double abs_max = 0.0;
    for (float v : values)
        abs_max = std::max(abs_max, static_cast<double>(std::fabs(v)));
    return calibrateAbsMax(abs_max, bits);
}

QuantParams
calibrateAbsMax(double abs_max, int bits)
{
    fatal_if(bits != 8 && bits != 16,
             "quantisation supports 8 or 16 bits, got ", bits);
    QuantParams qp;
    qp.bits = bits;
    double qmax = static_cast<double>((1 << (bits - 1)) - 1);
    // Avoid a zero scale for all-zero tensors.
    qp.scale = (abs_max > 0.0) ? abs_max / qmax : 1.0 / qmax;
    return qp;
}

std::int32_t
quantize(float x, const QuantParams &qp)
{
    double q = std::nearbyint(static_cast<double>(x) / qp.scale);
    q = std::clamp(q, static_cast<double>(qp.qmin()),
                   static_cast<double>(qp.qmax()));
    return static_cast<std::int32_t>(q);
}

float
dequantize(std::int32_t q, const QuantParams &qp)
{
    return static_cast<float>(q * qp.scale);
}

// clampToRange moved to the header as a constexpr inline so the
// compile-time tests can evaluate range edges; qmin()/qmax() are
// likewise constexpr-safe.

} // namespace fidelity
