#include "tensor/tensor.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "sim/logging.hh"

namespace fidelity
{

bool
NeuronIndex::operator<(const NeuronIndex &o) const
{
    if (n != o.n)
        return n < o.n;
    if (h != o.h)
        return h < o.h;
    if (w != o.w)
        return w < o.w;
    return c < o.c;
}

std::string
NeuronIndex::str() const
{
    std::ostringstream os;
    os << "(" << n << "," << h << "," << w << "," << c << ")";
    return os.str();
}

Tensor::Tensor(int n, int h, int w, int c)
    : n_(n), h_(h), w_(w), c_(c)
{
    panic_if(n <= 0 || h <= 0 || w <= 0 || c <= 0,
             "Tensor dimensions must be positive, got ", n, "x", h, "x",
             w, "x", c);
    data_.assign(static_cast<std::size_t>(n) * h * w * c, 0.0f);
}

std::size_t
Tensor::offset(int n, int h, int w, int c) const
{
    panic_if(n < 0 || n >= n_ || h < 0 || h >= h_ || w < 0 || w >= w_ ||
             c < 0 || c >= c_,
             "Tensor index (", n, ",", h, ",", w, ",", c,
             ") out of bounds for shape ", shapeStr());
    return ((static_cast<std::size_t>(n) * h_ + h) * w_ + w) * c_ + c;
}

NeuronIndex
Tensor::indexOf(std::size_t flat) const
{
    panic_if(flat >= data_.size(), "flat index out of bounds");
    NeuronIndex i;
    i.c = static_cast<int>(flat % c_);
    flat /= c_;
    i.w = static_cast<int>(flat % w_);
    flat /= w_;
    i.h = static_cast<int>(flat % h_);
    flat /= h_;
    i.n = static_cast<int>(flat);
    return i;
}

float &
Tensor::at(int n, int h, int w, int c)
{
    return data_[offset(n, h, w, c)];
}

float
Tensor::at(int n, int h, int w, int c) const
{
    return data_[offset(n, h, w, c)];
}

void
Tensor::fill(float v)
{
    std::fill(data_.begin(), data_.end(), v);
}

bool
Tensor::sameShape(const Tensor &o) const
{
    return n_ == o.n_ && h_ == o.h_ && w_ == o.w_ && c_ == o.c_;
}

std::size_t
Tensor::argmax() const
{
    panic_if(data_.empty(), "argmax of empty tensor");
    return static_cast<std::size_t>(
        std::max_element(data_.begin(), data_.end()) - data_.begin());
}

float
Tensor::absMax() const
{
    float m = 0.0f;
    for (float v : data_)
        m = std::max(m, std::fabs(v));
    return m;
}

std::string
Tensor::shapeStr() const
{
    std::ostringstream os;
    os << n_ << "x" << h_ << "x" << w_ << "x" << c_;
    return os.str();
}

} // namespace fidelity
