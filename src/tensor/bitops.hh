/**
 * @file
 * Bit-flip utilities on the numeric representations the datapath holds.
 *
 * FIdelity's datapath fault models are "one random bit-flip at one
 * randomly chosen <variable>": the flip happens in the *hardware
 * representation* (binary16 word, INT8/INT16 two's-complement word, or
 * the FP32 partial-sum register), not in the abstract real value.  These
 * helpers perform those flips and report the resulting real value.
 */

#ifndef FIDELITY_TENSOR_BITOPS_HH
#define FIDELITY_TENSOR_BITOPS_HH

#include <cstdint>

namespace fidelity
{

/** Numeric representation a datapath word is stored in. */
enum class Repr
{
    FP16,  //!< IEEE binary16 operand/output words
    FP32,  //!< FP32 partial-sum/accumulator registers
    INT8,  //!< 8-bit two's-complement operands
    INT16, //!< 16-bit two's-complement operands
    INT32, //!< 32-bit accumulator in integer pipelines
};

/** Number of bits in the given representation. */
int reprBits(Repr repr);

/** Human-readable name ("FP16", ...). */
const char *reprName(Repr repr);

/**
 * Flip one bit of value x as stored in representation repr.
 *
 * FP16/INT8/INT16 first round/clamp x into the representation (that is
 * what the flip-flop actually held), flip the bit, and widen back.
 *
 * @param x Real value held by the flip-flop.
 * @param repr Storage representation of the flip-flop.
 * @param bit Bit position in [0, reprBits(repr)).
 * @return The corrupted value, widened back to FP32.
 */
float flipBit(float x, Repr repr, int bit);

/**
 * Flip one bit of an integer word with the representation's width.
 * Used by the integer accelerator pipelines where values are already
 * quantised integers.
 */
std::int32_t flipBitInt(std::int32_t q, Repr repr, int bit);

/**
 * Flip a set of bits (given as a mask) of value x as stored in
 * representation repr — the paper's "multiple single-cycle bit-flips
 * in a single register" abstraction.  A single conversion round trip
 * applies all flips atomically (sequential single-bit flips would
 * canonicalise intermediate NaN payloads).
 */
float flipBits(float x, Repr repr, std::uint32_t mask);

/** Mask-flip of an integer word (see flipBits). */
std::int32_t flipBitsInt(std::int32_t q, Repr repr, std::uint32_t mask);

/** Round an FP32 value through binary16 and back (RNE). */
float roundToHalf(float x);

} // namespace fidelity

#endif // FIDELITY_TENSOR_BITOPS_HH
