#include "tensor/bitops.hh"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "sim/logging.hh"
#include "simd/simd.hh"
#include "tensor/float16.hh"

namespace fidelity
{

int
reprBits(Repr repr)
{
    switch (repr) {
      case Repr::FP16:
        return 16;
      case Repr::FP32:
        return 32;
      case Repr::INT8:
        return 8;
      case Repr::INT16:
        return 16;
      case Repr::INT32:
        return 32;
    }
    panic("unknown Repr");
}

const char *
reprName(Repr repr)
{
    switch (repr) {
      case Repr::FP16:
        return "FP16";
      case Repr::FP32:
        return "FP32";
      case Repr::INT8:
        return "INT8";
      case Repr::INT16:
        return "INT16";
      case Repr::INT32:
        return "INT32";
    }
    panic("unknown Repr");
}

float
flipBit(float x, Repr repr, int bit)
{
    panic_if(bit < 0 || bit >= reprBits(repr),
             "bit ", bit, " out of range for ", reprName(repr));
    return flipBits(x, repr, 1u << bit);
}

float
flipBits(float x, Repr repr, std::uint32_t mask)
{
    int bits = reprBits(repr);
    panic_if(bits < 32 && (mask >> bits) != 0,
             "flip mask exceeds the width of ", reprName(repr));
    switch (repr) {
      case Repr::FP16: {
        std::uint16_t h = floatToHalfBits(x);
        h = static_cast<std::uint16_t>(h ^ mask);
        return halfBitsToFloat(h);
      }
      case Repr::FP32: {
        std::uint32_t u;
        std::memcpy(&u, &x, sizeof(u));
        u ^= mask;
        float out;
        std::memcpy(&out, &u, sizeof(out));
        return out;
      }
      case Repr::INT8:
      case Repr::INT16:
      case Repr::INT32: {
        auto q = static_cast<std::int32_t>(std::lrintf(
            std::clamp(x, -2147483648.0f, 2147483520.0f)));
        return static_cast<float>(flipBitsInt(q, repr, mask));
      }
    }
    panic("unknown Repr");
}

std::int32_t
flipBitInt(std::int32_t q, Repr repr, int bit)
{
    panic_if(bit < 0 || bit >= reprBits(repr),
             "bit ", bit, " out of range for ", reprName(repr));
    return flipBitsInt(q, repr, 1u << bit);
}

std::int32_t
flipBitsInt(std::int32_t q, Repr repr, std::uint32_t mask)
{
    int bits = reprBits(repr);
    panic_if(bits < 32 && (mask >> bits) != 0,
             "flip mask exceeds the width of ", reprName(repr));
    switch (repr) {
      case Repr::INT8: {
        auto b = static_cast<std::uint8_t>(q);
        b = static_cast<std::uint8_t>(b ^ mask);
        return static_cast<std::int8_t>(b);
      }
      case Repr::INT16: {
        auto b = static_cast<std::uint16_t>(q);
        b = static_cast<std::uint16_t>(b ^ mask);
        return static_cast<std::int16_t>(b);
      }
      case Repr::INT32: {
        auto b = static_cast<std::uint32_t>(q);
        b ^= mask;
        return static_cast<std::int32_t>(b);
      }
      case Repr::FP16:
      case Repr::FP32:
        panic("flipBitsInt applied to a floating representation");
    }
    panic("unknown Repr");
}

float
roundToHalf(float x)
{
#if !defined(FIDELITY_NO_SIMD) && defined(__F16C__) && defined(__AVX__)
    if (simd::enabled()) {
        if (x != x) {
            // The hardware keeps NaN payload bits the software path
            // drops; canonicalise to sign|0x7fc00000 like the batch.
            std::uint32_t u;
            std::memcpy(&u, &x, sizeof(u));
            u = (u & 0x80000000u) | 0x7fc00000u;
            std::memcpy(&x, &u, sizeof(x));
            return x;
        }
        __m128i h = _mm_cvtps_ph(_mm_set_ss(x),
                                 _MM_FROUND_TO_NEAREST_INT |
                                     _MM_FROUND_NO_EXC);
        return _mm_cvtss_f32(_mm_cvtph_ps(h));
    }
#endif
    return halfBitsToFloat(floatToHalfBits(x));
}

} // namespace fidelity
