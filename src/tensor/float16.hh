/**
 * @file
 * Software IEEE-754 binary16 (half precision).
 *
 * NVDLA's FP16 datapath stores operands and outputs as binary16 words;
 * FIdelity's datapath fault models flip bits of exactly those words.  We
 * therefore need a bit-exact half type: values travel as 16-bit patterns
 * and all conversions use round-to-nearest-even, matching hardware
 * converters.  Arithmetic is performed by converting to float; the
 * accelerator model accumulates in FP32 and rounds once at writeback,
 * which is the convention both the nn engine and the accel simulator
 * share so faulty-neuron values can be compared bitwise.
 */

#ifndef FIDELITY_TENSOR_FLOAT16_HH
#define FIDELITY_TENSOR_FLOAT16_HH

#include <cstdint>

namespace fidelity
{

/** Convert an FP32 value to a binary16 bit pattern (RNE, with inf/NaN). */
std::uint16_t floatToHalfBits(float f);

/** Convert a binary16 bit pattern to FP32 exactly. */
float halfBitsToFloat(std::uint16_t h);

/** A bit-exact IEEE-754 binary16 value. */
class Half
{
  public:
    /** Zero-initialised half. */
    Half() : bits_(0) {}

    /** Round an FP32 value to half (RNE). */
    explicit Half(float f) : bits_(floatToHalfBits(f)) {}

    /** Wrap an existing bit pattern. */
    static Half fromBits(std::uint16_t bits);

    /** The raw 16-bit pattern. */
    std::uint16_t bits() const { return bits_; }

    /** Exact widening conversion to FP32. */
    float toFloat() const { return halfBitsToFloat(bits_); }

    /** True for +/- infinity. */
    bool isInf() const;

    /** True for any NaN pattern. */
    bool isNan() const;

    /** True for +0 or -0. */
    bool isZero() const;

    /** Bitwise equality (distinguishes -0 from +0 and NaN payloads). */
    bool operator==(const Half &o) const { return bits_ == o.bits_; }
    bool operator!=(const Half &o) const { return bits_ != o.bits_; }

  private:
    std::uint16_t bits_;
};

/** Largest finite half value (65504). */
float halfMax();

} // namespace fidelity

#endif // FIDELITY_TENSOR_FLOAT16_HH
