#include "tensor/float16.hh"

#include <cstring>

namespace fidelity
{

std::uint16_t
floatToHalfBits(float f)
{
    std::uint32_t x;
    std::memcpy(&x, &f, sizeof(x));

    std::uint32_t sign = (x >> 16) & 0x8000u;
    std::uint32_t exp = (x >> 23) & 0xffu;
    std::uint32_t mant = x & 0x7fffffu;

    if (exp == 0xffu) {
        // Inf or NaN. Preserve NaN-ness with a quiet mantissa bit.
        if (mant != 0)
            return static_cast<std::uint16_t>(sign | 0x7e00u);
        return static_cast<std::uint16_t>(sign | 0x7c00u);
    }

    // Unbiased exponent.
    int e = static_cast<int>(exp) - 127;

    if (e > 15) {
        // Overflows half range -> infinity.
        return static_cast<std::uint16_t>(sign | 0x7c00u);
    }

    if (e >= -14) {
        // Normal half. Round 23-bit mantissa to 10 bits (RNE).
        std::uint32_t half_exp = static_cast<std::uint32_t>(e + 15);
        std::uint32_t mant10 = mant >> 13;
        std::uint32_t rem = mant & 0x1fffu;
        if (rem > 0x1000u || (rem == 0x1000u && (mant10 & 1u))) {
            mant10 += 1;
            if (mant10 == 0x400u) { // mantissa overflow bumps exponent
                mant10 = 0;
                half_exp += 1;
                if (half_exp == 31)
                    return static_cast<std::uint16_t>(sign | 0x7c00u);
            }
        }
        return static_cast<std::uint16_t>(sign | (half_exp << 10) | mant10);
    }

    if (e >= -25) {
        // Subnormal half. Implicit leading 1 joins the mantissa, then
        // shift right by the subnormal amount with RNE.
        std::uint32_t full = mant | 0x800000u;
        int shift = -e - 14 + 13; // 13 for 23->10 plus subnormal offset
        std::uint32_t mant10 = full >> shift;
        std::uint32_t rem_mask = (1u << shift) - 1;
        std::uint32_t rem = full & rem_mask;
        std::uint32_t halfway = 1u << (shift - 1);
        if (rem > halfway || (rem == halfway && (mant10 & 1u)))
            mant10 += 1; // may carry into exponent 1, which is correct
        return static_cast<std::uint16_t>(sign | mant10);
    }

    // Underflows to signed zero.
    return static_cast<std::uint16_t>(sign);
}

float
halfBitsToFloat(std::uint16_t h)
{
    std::uint32_t sign = (static_cast<std::uint32_t>(h) & 0x8000u) << 16;
    std::uint32_t exp = (h >> 10) & 0x1fu;
    std::uint32_t mant = h & 0x3ffu;

    std::uint32_t out;
    if (exp == 0) {
        if (mant == 0) {
            out = sign; // signed zero
        } else {
            // Subnormal: normalise.
            int e = -1;
            std::uint32_t m = mant;
            do {
                m <<= 1;
                e += 1;
            } while (!(m & 0x400u));
            m &= 0x3ffu;
            std::uint32_t fexp = static_cast<std::uint32_t>(127 - 15 - e);
            out = sign | (fexp << 23) | (m << 13);
        }
    } else if (exp == 31) {
        out = sign | 0x7f800000u | (mant << 13); // inf / NaN
    } else {
        std::uint32_t fexp = exp + (127 - 15);
        out = sign | (fexp << 23) | (mant << 13);
    }

    float f;
    std::memcpy(&f, &out, sizeof(f));
    return f;
}

Half
Half::fromBits(std::uint16_t bits)
{
    Half h;
    h.bits_ = bits;
    return h;
}

bool
Half::isInf() const
{
    return (bits_ & 0x7fffu) == 0x7c00u;
}

bool
Half::isNan() const
{
    return ((bits_ >> 10) & 0x1fu) == 0x1fu && (bits_ & 0x3ffu) != 0;
}

bool
Half::isZero() const
{
    return (bits_ & 0x7fffu) == 0;
}

float
halfMax()
{
    return 65504.0f;
}

} // namespace fidelity
