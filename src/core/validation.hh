/**
 * @file
 * FIdelity validation harness (Sec. IV of the paper).
 *
 * For a fault site sampled on the cycle-level engine, the harness (a)
 * runs the RTL-style injection to get the ground-truth faulty neurons
 * and values, and (b) derives the corresponding software fault model —
 * which neurons Table II predicts, with which values — using only the
 * golden schedule and the nn layer's bit-exact neuron recomputation.
 * Comparing the two reproduces the paper's validation: datapath models
 * must match the engine exactly (sets, values, order); local-control
 * models must match the faulty-neuron set (values are modelled as
 * random); global-control faults are predicted as system failures and
 * the residual masking is measured.
 */

#ifndef FIDELITY_CORE_VALIDATION_HH
#define FIDELITY_CORE_VALIDATION_HH

#include <array>
#include <memory>

#include "accel/nvdla_fi.hh"
#include "core/fault_models.hh"

namespace fidelity
{

/** Software-fault-model prediction for one fault site. */
struct Prediction
{
    enum class Kind
    {
        Masked,       //!< no architectural effect expected
        Neurons,      //!< specific faulty neurons (and maybe values)
        GlobalFailure //!< global control: always system failure
    };

    Kind kind = Kind::Masked;

    /** Values are exact (datapath) or modelled as random (control). */
    bool deterministicValues = true;

    /** Predicted faulty flats in generation order, with values. */
    std::vector<std::size_t> flats;
    std::vector<float> values;
};

/** Comparison result of one validation experiment. */
struct CaseResult
{
    FaultSite site;
    FFCategory category = FFCategory::OutputPsum;
    bool rtlMasked = true;
    bool predMasked = true;
    bool timeout = false;
    bool anomaly = false;
    bool setMatch = false;   //!< faulty-neuron sets identical
    bool valueMatch = false; //!< and all values identical
    bool orderMatch = false; //!< generation order consistent
    int rtlCount = 0;
    int predCount = 0;
};

/** Aggregated per-category validation statistics. */
struct CategoryValidation
{
    std::uint64_t cases = 0;
    std::uint64_t rtlNonMasked = 0;
    std::uint64_t maskAgree = 0;
    std::uint64_t bothNonMasked = 0;
    std::uint64_t setMatch = 0;
    std::uint64_t valueMatch = 0;
    std::uint64_t orderMatch = 0;
    std::uint64_t timeouts = 0;
};

/** Full validation report for one workload. */
struct ValidationReport
{
    std::array<CategoryValidation, numFFCategories> perCategory{};
    std::uint64_t totalCases = 0;
    std::uint64_t totalNonMasked = 0;
    std::uint64_t totalTimeouts = 0;

    CategoryValidation &forCategory(FFCategory cat);
    const CategoryValidation &forCategory(FFCategory cat) const;
};

/** Map an engine flip-flop class onto its Table II category. */
FFCategory categoryOfFFClass(FFClass cls);

/** Validation harness bound to one MAC layer execution. */
class Validator
{
  public:
    /**
     * @param cfg Engine configuration.
     * @param layer A Conv2D (groups == 1), FC, or MatMulAB layer.
     * @param ins The layer's input tensors (kept alive by the caller).
     */
    Validator(const NvdlaConfig &cfg, const MacLayer &layer,
              std::vector<const Tensor *> ins);

    /** One sampled experiment: inject on the engine and compare. */
    CaseResult runOne(Rng &rng);

    /** One experiment with the site directed at a flip-flop class. */
    CaseResult runOneDirected(FFClass cls, Rng &rng);

    /**
     * True when a global-control site is architecturally live at its
     * injection cycle (configuration registers always are; sequencing
     * counters only during the phases that read them).  The paper's
     * global-control claim is conditioned on active FFs; inactive ones
     * belong to the activeness analysis instead.
     */
    bool globalSiteActive(const FaultSite &site) const;

    /** Derive the software fault model's prediction for a site. */
    Prediction predict(const FaultSite &site) const;

    /** Run a whole batch and aggregate. */
    ValidationReport run(int samples, Rng &rng);

    const NvdlaFi &fi() const { return *fi_; }
    const EngineLayer &engineLayer() const { return el_; }

  private:
    /** Inject at cr.site, predict, and compare (shared tail). */
    CaseResult finishCase(CaseResult cr);

    std::int64_t inputElemIndex(std::int64_t pos, std::int64_t step) const;
    std::size_t weightSubIndex(std::int64_t chan, std::int64_t step) const;
    std::size_t outputFlat(std::int64_t pos, std::int64_t chan) const;

    /** Append (flat, value) if the value differs from golden. */
    void appendIfChanged(Prediction &pred, std::size_t flat,
                         float value) const;

    NvdlaConfig cfg_;
    const MacLayer &layer_;
    std::vector<const Tensor *> ins_;
    Tensor golden_;
    EngineLayer el_;
    std::unique_ptr<NvdlaFi> fi_;
};

} // namespace fidelity

#endif // FIDELITY_CORE_VALIDATION_HH
