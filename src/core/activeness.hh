/**
 * @file
 * FF activeness analysis (step 1 of FIdelity's flow, Eq. 1).
 *
 * A fault injected into an inactive flip-flop is always masked.  The
 * paper partitions inactive FFs into three mutually exclusive classes:
 *
 *   Class 1 — component not used: the FF's block stays idle for the
 *             whole workload (e.g. the weight-decompression unit when
 *             weights are uncompressed).
 *   Class 2 — signal not used: the block is active but the FF's signal
 *             mode is not (e.g. floating-point FFs under an integer
 *             workload).
 *   Class 3 — temporally not used: the block idles for a fraction of
 *             the time (e.g. MACs stalled on fetch), estimated from
 *             the performance model.
 *
 * Eq. 1: Prob_inactive(cat, r) =
 *        sum_cl FF_Perc(cat, cl) * Perc_inactive(cat, cl, r).
 */

#ifndef FIDELITY_CORE_ACTIVENESS_HH
#define FIDELITY_CORE_ACTIVENESS_HH

#include "accel/perf_model.hh"
#include "core/fault_models.hh"
#include "nn/layer.hh"

namespace fidelity
{

/** The three inactive-FF classes. */
enum class InactiveClass
{
    ComponentNotUsed,
    SignalNotUsed,
    TemporallyNotUsed
};

const char *inactiveClassName(InactiveClass cl);

/**
 * Per-category activeness estimates.
 *
 * The class-1/class-2 fractions are the FF_Perc(cat, cl) inputs of
 * Eq. 1 — high-level estimates that can be varied for sensitivity
 * analysis; the class-3 temporal fraction comes from the performance
 * model's phase breakdown.
 */
class ActivenessModel
{
  public:
    ActivenessModel() = default;

    /**
     * Fraction of each category's FFs sitting in components unused by
     * the workload (class 1), e.g. compression/padding blocks.
     */
    double componentUnusedFrac = 0.05;

    /**
     * Fraction of datapath FFs dedicated to numeric modes other than
     * the active one (class 2): under FP16 the integer-only FFs idle,
     * and under the integer modes the FP-only FFs idle.
     */
    double otherModeFrac(Precision p) const;

    /** Class-3 temporal inactivity of a category from the timing. */
    double temporalInactive(FFCategory cat, const LayerTiming &t) const;

    /** Eq. 1 for one category and one layer's timing. */
    double probInactive(FFCategory cat, Precision p,
                        const LayerTiming &t) const;

    /** FF_Perc(cat, cl) used by probInactive (exposed for reports). */
    double classFraction(FFCategory cat, InactiveClass cl,
                         Precision p) const;
};

} // namespace fidelity

#endif // FIDELITY_CORE_ACTIVENESS_HH
