/**
 * @file
 * Ready-made Algorithm-1 descriptors for the paper's Fig. 2 examples.
 *
 * Targets a1-a4 describe flip-flops of the NVDLA-like accelerator
 * (k^2 parallel MACs, broadcast inputs, per-MAC weights held t cycles);
 * targets b1-b3 describe the Eyeriss-like row-stationary array (k x k
 * systolic, weights marching across columns, inputs reused diagonally
 * and over t output channels).  Each builder encodes only the
 * block-diagram-level facts the paper lists, and the resulting RF and
 * faulty-neuron sets are cross-checked in tests against the cycle-level
 * engine (a-targets) and the Eyeriss model (b-targets).
 */

#ifndef FIDELITY_CORE_FF_DESCRIPTORS_HH
#define FIDELITY_CORE_FF_DESCRIPTORS_HH

#include "core/reuse_factor.hh"

namespace fidelity
{

/**
 * Target a1: a weight FF one stage before the hold register, feeding a
 * single multiplier; downstream the value is held t cycles, so its
 * in-effect window covers t consecutive output positions of one channel.
 * RF = t.
 */
FFDescriptor nvdlaTargetA1(int t);

/**
 * Target a2: the per-MAC weight-hold FF; it keeps the same value for t
 * cycles (FF_value_cycles = t) and a flip corrupts the remaining
 * positions, so RF = t with 1..t neurons for a random injection cycle.
 */
FFDescriptor nvdlaTargetA2(int t);

/**
 * Target a3: a weight FF rewritten every cycle directly at a
 * multiplier input.  RF = 1.
 */
FFDescriptor nvdlaTargetA3();

/**
 * Target a4: the broadcast input FF feeding all k^2 multipliers, which
 * compute the same (h, w) position in k^2 consecutive channels.
 * RF = k^2.
 */
FFDescriptor nvdlaTargetA4(int k);

/**
 * Target b1: a weight value passed along the k columns of the systolic
 * array; column i is computing output row row+i when it arrives.
 * RF = k (k consecutive rows of one column).
 */
FFDescriptor eyerissTargetB1(int k);

/**
 * Target b2: an input value reused diagonally across k columns and for
 * t output channels inside each MAC.  RF = k * t.
 */
FFDescriptor eyerissTargetB2(int k, int t);

/** Target b3: a bias FF feeding one BiasAdd unit once.  RF = 1. */
FFDescriptor eyerissTargetB3();

/**
 * Compose the descriptor of a local control FF that gates several
 * datapath FFs: the RF is the sum of the gated RFs and the neuron set
 * their union (Sec. III-B3).
 */
FFDescriptor composeLocalControl(const std::vector<FFDescriptor> &gated);

} // namespace fidelity

#endif // FIDELITY_CORE_FF_DESCRIPTORS_HH
