#include "core/protection.hh"

#include "sim/logging.hh"

namespace fidelity
{

FitBreakdown
acceleratorFitWithProtection(
    const FitParams &params, const std::vector<LayerFitInput> &layers,
    const std::array<bool, numFFCategories> &protect)
{
    // Protected categories contribute nothing: model their raw rate as
    // zero by forcing full masking in a copy of the inputs.
    std::vector<LayerFitInput> adjusted = layers;
    for (LayerFitInput &l : adjusted)
        for (std::size_t c = 0; c < protect.size(); ++c)
            if (protect[c])
                l.stats[c].probSwMask = 1.0;
    return acceleratorFit(params, adjusted);
}

std::array<double, numFFCategories>
categoryFitContributions(const FitParams &params,
                         const std::vector<LayerFitInput> &layers)
{
    std::array<double, numFFCategories> out{};
    const auto &cats = allFFCategories();
    for (std::size_t c = 0; c < cats.size(); ++c) {
        std::array<bool, numFFCategories> only_this{};
        for (std::size_t o = 0; o < only_this.size(); ++o)
            only_this[o] = o != c; // protect everything else
        out[c] = acceleratorFitWithProtection(params, layers, only_this)
                     .total();
    }
    return out;
}

ProtectionPlan
planSelectiveProtection(const FitParams &params,
                        const std::vector<LayerFitInput> &layers,
                        double target_fit)
{
    fatal_if(target_fit <= 0.0, "target FIT must be positive");
    ProtectionPlan plan;
    plan.fit = acceleratorFitWithProtection(params, layers,
                                            plan.protect);

    auto contributions = categoryFitContributions(params, layers);
    const auto &cats = allFFCategories();

    while (plan.fit.total() > target_fit) {
        // Pick the unprotected category with the best FIT-per-FF-share
        // ratio.
        int best = -1;
        double best_ratio = -1.0;
        for (std::size_t c = 0; c < cats.size(); ++c) {
            if (plan.protect[c] || contributions[c] <= 0.0)
                continue;
            double ratio = contributions[c] / ffCategoryShare(cats[c]);
            if (ratio > best_ratio) {
                best_ratio = ratio;
                best = static_cast<int>(c);
            }
        }
        if (best < 0)
            break; // nothing left to protect
        plan.protect[best] = true;
        plan.ffShare += ffCategoryShare(cats[best]);
        plan.fit = acceleratorFitWithProtection(params, layers,
                                                plan.protect);
    }
    plan.meetsTarget = plan.fit.total() <= target_fit;
    return plan;
}

} // namespace fidelity
