#include "core/manifest.hh"

#include <cinttypes>
#include <cstdio>

#include "nn/layer.hh"
#include "simd/simd.hh"

namespace fidelity
{

namespace
{

std::string
hexHash(std::uint64_t h)
{
    char buf[20];
    std::snprintf(buf, sizeof(buf), "0x%016" PRIx64, h);
    return buf;
}

void
writeEngineTotals(JsonWriter &w, const IncrementalTotals &t)
{
    w.beginObject();
    w.field("runs", t.runs);
    w.field("early_masked", t.earlyMasked);
    w.field("layers_incremental", t.layersIncremental);
    w.field("layers_dense", t.layersDense);
    w.field("layers_skipped", t.layersSkipped);
    w.field("elements_recomputed", t.elementsRecomputed);
    w.endObject();
}

void
writeBatchedTotals(JsonWriter &w, int width, const BatchedTotals &t)
{
    w.beginObject();
    w.field("enabled", width > 1);
    w.field("width", width);
    w.field("batches", t.batches);
    w.field("lanes_seeded", t.lanesSeeded);
    // Mean live lanes per batch pass — the SIMD utilisation of the
    // batched walk (ragged tails and singleton fallbacks lower it).
    w.field("occupancy",
            static_cast<double>(t.lanesSeeded) /
                static_cast<double>(t.batches));
    w.field("lanes_retired_early", t.lanesRetiredEarly);
    w.field("layers_batched_kernel", t.layersBatchedKernel);
    w.field("layers_lane_fallback", t.layersLaneFallback);
    w.field("layers_skipped", t.layersSkipped);
    w.field("lane_elements", t.laneElements);
    w.endObject();
}

} // namespace

std::string
runManifestJson(const Network &net, const CampaignConfig &cfg,
                std::uint64_t configHash, const CampaignResult &res,
                const CampaignTelemetry &tel)
{
    const bool adaptive = cfg.targetHalfWidth > 0.0;
    JsonWriter w;
    w.beginObject();
    w.field("schema", kRunManifestSchema);

    // ----- results: the sample-identity-determined record -----------
    // Byte-identical across thread counts and kill-and-resume.
    w.key("results");
    w.beginObject();
    w.field("network", res.network);
    w.field("precision", precisionName(res.precision));
    w.field("config_hash", hexHash(configHash));
    w.field("seed", cfg.seed);

    w.key("sample_identity");
    w.beginObject();
    w.field("schedule", adaptive ? "adaptive" : "fixed");
    w.field("shard_grain", cfg.shardGrain);
    w.field("output_clamp_abs", cfg.outputClampAbs);
    if (adaptive) {
        w.field("target_half_width", cfg.targetHalfWidth);
        w.field("confidence_z", cfg.confidenceZ);
        w.field("min_samples", cfg.minSamples);
        w.field("max_samples_per_category", cfg.maxSamplesPerCategory);
    } else {
        w.field("samples_per_category", cfg.samplesPerCategory);
    }
    w.endObject();

    w.field("total_injections", res.totalInjections);
    w.field("rounds", res.rounds);
    w.field("complete", res.complete);

    // Round history: the scheduler's decisions are a pure function of
    // the merged counters, so this belongs to the deterministic record.
    w.key("round_history");
    w.beginArray();
    for (std::size_t i = 0; i < tel.rounds.size(); ++i) {
        const RoundTelemetry &r = tel.rounds[i];
        w.beginObject();
        w.field("round", static_cast<std::uint64_t>(i + 1));
        w.field("shards_planned", r.shardsPlanned);
        w.field("cells_live", r.cellsLive);
        w.field("cells_retired_after", r.cellsRetiredAfter);
        w.endObject();
    }
    w.endArray();

    // The full per-(layer, category) cell table with Wilson intervals.
    const double z = cfg.confidenceZ;
    w.key("cells");
    w.beginArray();
    for (const CellResult &cell : res.cells) {
        w.beginObject();
        w.field("node", static_cast<std::int64_t>(cell.node));
        w.field("layer", net.layer(cell.node).name());
        w.field("category", ffCategoryName(cell.category));
        w.field("masked", cell.masked.successes());
        w.field("trials", cell.masked.trials());
        w.field("mean", cell.masked.mean());
        w.field("wilson_lo", cell.masked.lower(z));
        w.field("wilson_hi", cell.masked.upper(z));
        w.field("half_width", cell.masked.halfWidth(z));
        w.endObject();
    }
    w.endArray();

    w.key("fit");
    writeFitJson(w, res.fit);
    w.key("fit_global_protected");
    writeFitJson(w, res.fitGlobalProtected);
    w.endObject(); // results

    // ----- execution: how this process produced it -------------------
    w.key("execution");
    w.beginObject();

    w.key("build");
    w.beginObject();
    w.field("simd_backend", simd::backendName());
    w.field("simd_dispatch", simd::dispatchMode());
    w.field("simd_enabled", simd::enabled());
    w.endObject();

    w.field("threads", tel.threads);
    if (tel.topology) {
        // Distributed runs only: the worker-process fan-out.  Lives in
        // "execution" — the "results" section above is byte-identical
        // to the single-process run this fan-out reproduced.
        const WorkerTopology &topo = *tel.topology;
        w.key("topology");
        w.beginObject();
        w.field("coordinator", topo.coordinator);
        w.field("lease_shards", topo.leaseShards);
        w.field("worker_processes",
                static_cast<std::uint64_t>(topo.workers.size()));
        w.key("workers");
        w.beginArray();
        for (const WorkerProcessTelemetry &wp : topo.workers) {
            w.beginObject();
            w.field("name", wp.name);
            w.field("threads", wp.threads);
            w.field("shards", wp.shards);
            w.field("injections", wp.injections);
            w.field("leases", wp.leases);
            w.field("leases_expired", wp.leasesExpired);
            w.endObject();
        }
        w.endArray();
        w.endObject();
    }
    w.field("incremental", tel.incremental);
    w.field("resumed", tel.resumed);
    w.field("restored_shards", tel.restoredShards);
    w.field("executed_shards", tel.executedShards);
    w.field("executed_injections", tel.executedInjections);

    w.key("engine");
    writeEngineTotals(w, tel.engine);

    w.key("batched");
    writeBatchedTotals(w, tel.batchWidth, tel.batched);

    w.key("result_cache");
    w.beginObject();
    w.field("enabled", tel.resultCache.enabled);
    if (tel.resultCache.enabled) {
        w.field("capacity_bytes", tel.resultCache.capacityBytes);
        w.field("entries", tel.resultCache.entries);
        w.field("table_shards", tel.resultCache.shards);
        // Plan-replay counters: a pure function of the shard plan,
        // byte-identical across thread counts (the live shared table's
        // own split is interleaving-dependent and deliberately absent).
        w.key("plan_replay");
        w.beginObject();
        w.field("complete", tel.resultCache.replayComplete);
        w.field("replayed_shards", tel.resultCache.replayedShards);
        w.field("hits", tel.resultCache.hits);
        w.field("misses", tel.resultCache.misses);
        w.field("stores", tel.resultCache.stores);
        w.field("evictions", tel.resultCache.evictions);
        const double probes = static_cast<double>(tel.resultCache.hits +
                                                  tel.resultCache.misses);
        // 0/0 on a replay with no probes renders as null, not nan —
        // the shared jsonNumber rule for non-finite doubles.
        w.field("hit_rate",
                static_cast<double>(tel.resultCache.hits) / probes);
        w.endObject();
    }
    w.endObject();

    w.key("workers");
    w.beginArray();
    for (const WorkerTelemetry &worker : tel.workers) {
        w.beginObject();
        w.field("shards", worker.shards);
        w.field("injections", worker.injections);
        w.key("engine");
        writeEngineTotals(w, worker.engine);
        w.key("batched");
        writeBatchedTotals(w, tel.batchWidth, worker.batched);
        w.endObject();
    }
    w.endArray();

    w.key("checkpoints");
    w.beginArray();
    for (const CheckpointEvent &ev : tel.checkpoints) {
        w.beginObject();
        w.field("shards", ev.shardsJournaled);
        w.field("bytes", ev.bytes);
        w.field("final", ev.final_);
        w.field("at_s", ev.atSeconds);
        w.endObject();
    }
    w.endArray();

    w.key("metrics");
    tel.metrics.writeJson(w);

    w.endObject(); // execution
    w.endObject(); // document
    return w.str();
}

void
writeRunManifest(const std::string &path, const Network &net,
                 const CampaignConfig &cfg, std::uint64_t configHash,
                 const CampaignResult &res, const CampaignTelemetry &tel)
{
    atomicWriteFile(path, runManifestJson(net, cfg, configHash, res, tel) +
                              "\n",
                    /*sync_to_disk=*/true);
}

} // namespace fidelity
