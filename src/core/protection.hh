/**
 * @file
 * Selective-protection exploration (the paper's Architectural
 * Insights).
 *
 * FIdelity's per-category FIT contributions tell an architect which
 * flip-flop categories to harden (parity, duplication, hardened cells)
 * to reach a resilience target at minimum cost.  The planner greedily
 * protects the category with the highest FIT contribution per
 * protected FF until the target is met — the adaptive selective
 * protection scheme the paper sketches.
 */

#ifndef FIDELITY_CORE_PROTECTION_HH
#define FIDELITY_CORE_PROTECTION_HH

#include <array>

#include "core/fit.hh"

namespace fidelity
{

/** Per-category protection mask and its outcome. */
struct ProtectionPlan
{
    /** Categories whose raw FIT rate the plan sets to zero. */
    std::array<bool, numFFCategories> protect{};

    /** Share of the design's FFs that must be hardened (cost proxy). */
    double ffShare = 0.0;

    /** Resulting accelerator FIT rate. */
    FitBreakdown fit;

    /** Whether the target was reached. */
    bool meetsTarget = false;
};

/** Eq. 2 with a per-category protection mask applied. */
FitBreakdown
acceleratorFitWithProtection(
    const FitParams &params, const std::vector<LayerFitInput> &layers,
    const std::array<bool, numFFCategories> &protect);

/** Per-category FIT contributions (Eq. 2 terms, unprotected). */
std::array<double, numFFCategories>
categoryFitContributions(const FitParams &params,
                         const std::vector<LayerFitInput> &layers);

/**
 * Greedily build the cheapest category-protection plan whose FIT meets
 * the target: repeatedly protect the unprotected category with the
 * highest contribution-to-cost ratio.
 *
 * @param params Raw rate / census inputs.
 * @param layers Per-layer Eq. 2 inputs from a campaign.
 * @param target_fit The FIT budget to reach (e.g. 0.2 for ASIL-D).
 */
ProtectionPlan
planSelectiveProtection(const FitParams &params,
                        const std::vector<LayerFitInput> &layers,
                        double target_fit);

} // namespace fidelity

#endif // FIDELITY_CORE_PROTECTION_HH
