/**
 * @file
 * Accelerator FIT-rate computation (step 3 of FIdelity's flow, Eq. 2).
 *
 * Accelerator_FIT_rate = FIT_raw * N_ff *
 *   sum_r [ exec_time(r) * sum_cat FF_Perc(cat)
 *           * (1 - Prob_inactive(cat, r))
 *           * (1 - Prob_SWmask(cat, r)) ] / sum_r exec_time(r)
 *
 * where FIT_raw is the per-FF raw transient rate (derived from a
 * FIT-per-MB figure, 600/MB for soft errors in the paper), N_ff the
 * design's FF census, and r ranges over the DNN's layers.
 */

#ifndef FIDELITY_CORE_FIT_HH
#define FIDELITY_CORE_FIT_HH

#include <array>
#include <vector>

#include "core/fault_models.hh"
#include "sim/json.hh"

namespace fidelity
{

/** Raw-rate and census inputs of Eq. 2. */
struct FitParams
{
    /** Raw FF FIT rate per megabyte of flip-flop state. */
    double rawFitPerMb = 600.0;

    /** Flip-flop census of the accelerator (estimated; vary for
     *  sensitivity analysis).  NVDLA-scale designs hold on the order
     *  of 10^6 FFs. */
    double nff = 1.2e6;

    /** Set the raw rate of global-control FFs to zero, modelling a
     *  design that protects them (Fig. 6). */
    bool protectGlobal = false;

    /** FIT_raw * N_ff: raw failures-in-time of the whole FF state. */
    double rawFitTotal() const;
};

/** Per-(category, layer) probabilities feeding Eq. 2. */
struct CategoryLayerStats
{
    double probInactive = 0.0;
    double probSwMask = 0.0;
};

/** One layer's inputs to Eq. 2. */
struct LayerFitInput
{
    double execTime = 0.0; //!< execution time (cycles or seconds)
    std::array<CategoryLayerStats, numFFCategories> stats{};
};

/** FIT rate split by FF group, as the paper's figures report it. */
struct FitBreakdown
{
    double datapath = 0.0;
    double local = 0.0;
    double global = 0.0;

    double total() const { return datapath + local + global; }
};

/** Evaluate Eq. 2 over a set of layers. */
FitBreakdown acceleratorFit(const FitParams &params,
                            const std::vector<LayerFitInput> &layers);

/**
 * Emit a breakdown as the JSON object
 * {"datapath": ..., "local": ..., "global": ..., "total": ...} —
 * the FIT record of the campaign run manifest.  The writer must be
 * positioned where a value may start (e.g. after key()).
 */
void writeFitJson(JsonWriter &w, const FitBreakdown &fit);

} // namespace fidelity

#endif // FIDELITY_CORE_FIT_HH
