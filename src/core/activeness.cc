#include "core/activeness.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace fidelity
{

const char *
inactiveClassName(InactiveClass cl)
{
    switch (cl) {
      case InactiveClass::ComponentNotUsed:
        return "ComponentNotUsed";
      case InactiveClass::SignalNotUsed:
        return "SignalNotUsed";
      case InactiveClass::TemporallyNotUsed:
        return "TemporallyNotUsed";
    }
    panic("unknown InactiveClass");
}

double
ActivenessModel::otherModeFrac(Precision p) const
{
    // The datapath carries both an FP16 pipeline and the INT16/INT8
    // pipelines; the share of FFs belonging to the mode that is not
    // executing idles as class 2.  The FP pipeline is the wider one.
    switch (p) {
      case Precision::FP32:
      case Precision::FP16:
        return 0.15; // integer-only FFs idle
      case Precision::INT16:
        return 0.25; // FP-only FFs idle
      case Precision::INT8:
        return 0.35; // FP-only and upper INT16 operand FFs idle
    }
    panic("unknown Precision");
}

double
ActivenessModel::temporalInactive(FFCategory cat,
                                  const LayerTiming &t) const
{
    switch (cat) {
      case FFCategory::PreBufInput:
      case FFCategory::PreBufWeight:
        // Fetch-path FFs only toggle while CBUF is being filled.
        return 1.0 - t.fetchActiveFrac();
      case FFCategory::OperandInput:
      case FFCategory::OperandWeight:
        // Operand registers toggle during the MAC phases.
        return 1.0 - t.macActiveFrac();
      case FFCategory::OutputPsum:
        // Partial sums live through the MAC phase, the output word
        // through the drain.
        return 1.0 - (t.macActiveFrac() + t.drainActiveFrac());
      case FFCategory::LocalControl:
        // Valid/mux bits follow the datapath they gate.
        return 1.0 - (t.macActiveFrac() + t.drainActiveFrac());
      case FFCategory::GlobalControl:
        // Configuration and sequencing state is live for the whole
        // layer.
        return 0.0;
    }
    panic("unknown FFCategory");
}

double
ActivenessModel::classFraction(FFCategory cat, InactiveClass cl,
                               Precision p) const
{
    // Control FFs carry no numeric mode, so class 2 does not apply;
    // global control is also never inside an unused component.
    double c1 = componentUnusedFrac;
    double c2 = isDatapathCategory(cat) ? otherModeFrac(p) : 0.0;
    if (cat == FFCategory::GlobalControl) {
        c1 = 0.0;
        c2 = 0.0;
    }
    switch (cl) {
      case InactiveClass::ComponentNotUsed:
        return c1;
      case InactiveClass::SignalNotUsed:
        return c2;
      case InactiveClass::TemporallyNotUsed:
        return std::max(0.0, 1.0 - c1 - c2);
    }
    panic("unknown InactiveClass");
}

double
ActivenessModel::probInactive(FFCategory cat, Precision p,
                              const LayerTiming &t) const
{
    // Eq. 1: classes 1 and 2 are inactive with probability 1; class 3
    // is inactive for the temporal fraction of the layer's execution.
    double prob =
        classFraction(cat, InactiveClass::ComponentNotUsed, p) * 1.0 +
        classFraction(cat, InactiveClass::SignalNotUsed, p) * 1.0 +
        classFraction(cat, InactiveClass::TemporallyNotUsed, p) *
            temporalInactive(cat, t);
    return std::clamp(prob, 0.0, 1.0);
}

} // namespace fidelity
