/**
 * @file
 * The naive software fault-injection baseline (Sec. VI comparison).
 *
 * Prior software FI tools model a hardware transient as a single
 * bit-flip in a single architectural (software-visible) state: one
 * activation value, one bit.  This ignores multi-neuron reuse effects,
 * control faults, and activeness, which the paper shows underestimates
 * the accelerator FIT rate by up to 25X.
 */

#ifndef FIDELITY_CORE_NAIVE_HH
#define FIDELITY_CORE_NAIVE_HH

#include "core/fit.hh"
#include "core/injector.hh"

namespace fidelity
{

/** Naive single-architectural-bit-flip injector. */
class NaiveInjector
{
  public:
    /** Shares the cached golden execution of a FIdelity Injector. */
    explicit NaiveInjector(const Injector &injector);

    /**
     * One naive experiment: flip one random bit of one random
     * activation value (a MAC layer output), propagate, classify.
     * @return True when the fault was masked.
     */
    bool inject(const CorrectnessFn &correct, Rng &rng) const;

    /**
     * The naive FIT estimate: every FF is assumed to behave like an
     * architectural single-bit flip, so
     * FIT = FIT_raw * N_ff * (1 - Prob_mask_naive).
     */
    static double naiveFit(const FitParams &params, double prob_mask);

  private:
    const Injector &injector_;
    std::vector<NodeId> nodes_;
    std::vector<double> nodeWeights_; //!< output element counts
};

} // namespace fidelity

#endif // FIDELITY_CORE_NAIVE_HH
