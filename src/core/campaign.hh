/**
 * @file
 * Campaign orchestration: FIdelity's full flow over one network.
 *
 * Runs the three steps of Fig. 3 — activeness analysis (Eq. 1),
 * large-scale software fault injection per (layer, category), and the
 * Accelerator_FIT_rate computation (Eq. 2) — and collects the
 * perturbation-magnitude samples behind Key result 5.
 */

#ifndef FIDELITY_CORE_CAMPAIGN_HH
#define FIDELITY_CORE_CAMPAIGN_HH

#include <string>
#include <vector>

#include "accel/perf_model.hh"
#include "core/activeness.hh"
#include "core/fit.hh"
#include "core/injector.hh"
#include "sim/stats.hh"

namespace fidelity
{

/** Knobs of one campaign. */
struct CampaignConfig
{
    /** Injection samples per (layer, category) pair. */
    int samplesPerCategory = 120;

    std::uint64_t seed = 1;

    /**
     * Hardware-software co-design knob (Key result 5): when > 0,
     * written-back neuron values are saturated into
     * [-outputClampAbs, outputClampAbs] by a range checker.
     */
    double outputClampAbs = 0.0;

    /**
     * Worker threads for the injection fan-out; 0 selects every
     * hardware thread.  The result is bit-identical for any value —
     * shard boundaries and RNG streams depend only on the seed and
     * shardGrain, never on the thread count.
     */
    int numThreads = 1;

    /**
     * Samples per shard when the (layer, category, sample) space is
     * partitioned.  Part of the campaign's deterministic identity: the
     * shard plan fixes which Rng::fork() stream each sample draws
     * from, so changing the grain (unlike the thread count) changes
     * the sampled faults.
     */
    int shardGrain = 32;

    /** Emit throttled progress lines (at most one per progressEverySec
     *  seconds, from a single call site) and an end-of-campaign summary
     *  (injections/sec, wall time, thread count) through sim/logging. */
    bool progress = false;

    /** Minimum seconds between two progress lines. */
    double progressEverySec = 1.0;

    /**
     * Use the incremental fault-cone engine in the injection hot path
     * (sparse delta propagation + early masking exit + per-worker
     * scratch reuse).  The CampaignResult is bit-identical to the
     * dense path; this is purely a performance knob.
     */
    bool incremental = true;

    /** Cone-volume fraction of a layer output above which that layer
     *  falls back to the dense kernel. */
    double incrementalDenseThreshold = 0.5;

    NvdlaConfig accel;
    FitParams fit;
    ActivenessModel activeness;
};

/** Masking statistics of one (layer, category) cell. */
struct CellResult
{
    NodeId node = 0;
    FFCategory category = FFCategory::OutputPsum;
    Proportion masked; //!< Prob_SWmask(cat, r) estimate
};

/** Everything a campaign produces. */
struct CampaignResult
{
    std::string network;
    Precision precision = Precision::FP32;

    FitBreakdown fit;
    FitBreakdown fitGlobalProtected; //!< Fig. 6 variant

    std::vector<LayerFitInput> layerInputs;
    std::vector<CellResult> cells;

    /** (|delta|, caused output error) for single-faulty-neuron
     *  datapath injections — the Key result 5 data. */
    std::vector<std::pair<double, bool>> singleNeuronSamples;

    std::uint64_t totalInjections = 0;
};

/**
 * Run the full FIdelity flow on one network.
 *
 * The injection space is partitioned into shards of at most
 * cfg.shardGrain samples of one (layer, category) cell; each shard
 * draws from its own Rng::fork() stream (forked from the master seed
 * in shard-plan order) and accumulates into private counters, which
 * are merged in shard-plan order afterwards.  Shards execute on a
 * ThreadPool of cfg.numThreads workers; because neither the plan nor
 * the streams depend on the worker count, the CampaignResult is
 * bit-identical for every cfg.numThreads, including 1.
 *
 * @param net The network (precision already set; calibrate() already
 *            run when using an integer mode).
 * @param input Network input.
 * @param correct Application correctness metric.  Must be safe to
 *            invoke concurrently (the supplied metrics are stateless).
 * @param cfg Campaign knobs.
 */
CampaignResult runCampaign(const Network &net, const Tensor &input,
                           const CorrectnessFn &correct,
                           const CampaignConfig &cfg);

/**
 * Describe a MAC layer to the performance model.  Grouped convolutions
 * use the redOverride escape hatch (the engine itself only executes
 * standard convolutions).
 */
EngineLayer timingLayer(const Network &net, NodeId node,
                        const std::vector<Tensor> &acts);

} // namespace fidelity

#endif // FIDELITY_CORE_CAMPAIGN_HH
