/**
 * @file
 * Campaign orchestration: FIdelity's full flow over one network.
 *
 * Runs the three steps of Fig. 3 — activeness analysis (Eq. 1),
 * large-scale software fault injection per (layer, category), and the
 * Accelerator_FIT_rate computation (Eq. 2) — and collects the
 * perturbation-magnitude samples behind Key result 5.
 */

#ifndef FIDELITY_CORE_CAMPAIGN_HH
#define FIDELITY_CORE_CAMPAIGN_HH

#include <memory>
#include <string>
#include <vector>

#include "accel/perf_model.hh"
#include "core/activeness.hh"
#include "core/fit.hh"
#include "core/injector.hh"
#include "sim/checkpoint.hh"
#include "sim/metrics.hh"
#include "sim/result_cache.hh"
#include "sim/stats.hh"

namespace fidelity
{

struct WorkerTopology; // core/manifest.hh

/** Knobs of one campaign. */
struct CampaignConfig
{
    /** Injection samples per (layer, category) pair. */
    int samplesPerCategory = 120;

    std::uint64_t seed = 1;

    /**
     * Hardware-software co-design knob (Key result 5): when > 0,
     * written-back neuron values are saturated into
     * [-outputClampAbs, outputClampAbs] by a range checker.
     */
    double outputClampAbs = 0.0;

    /**
     * Worker threads for the injection fan-out; 0 selects every
     * hardware thread.  The result is bit-identical for any value —
     * shard boundaries and RNG streams depend only on the seed and
     * shardGrain, never on the thread count.
     */
    int numThreads = 1;

    /**
     * Samples per shard when the (layer, category, sample) space is
     * partitioned.  Part of the campaign's deterministic identity: the
     * shard plan fixes which Rng::fork() stream each sample draws
     * from, so changing the grain (unlike the thread count) changes
     * the sampled faults.
     */
    int shardGrain = 32;

    /** Emit throttled progress lines (at most one per progressEverySec
     *  seconds, from a single call site) and an end-of-campaign summary
     *  (injections/sec, wall time, thread count) through sim/logging. */
    bool progress = false;

    /** Minimum seconds between two progress lines. */
    double progressEverySec = 1.0;

    /**
     * Use the incremental fault-cone engine in the injection hot path
     * (sparse delta propagation + early masking exit + per-worker
     * scratch reuse).  The CampaignResult is bit-identical to the
     * dense path; this is purely a performance knob.
     */
    bool incremental = true;

    /** Cone-volume fraction of a layer output above which that layer
     *  falls back to the dense kernel. */
    double incrementalDenseThreshold = 0.5;

    /**
     * SIMD lanes of the fault-batched re-execution engine: up to this
     * many surviving injections of one (layer, category) shard are
     * carried through the network in one pass, with lanes indexing
     * injections (see DESIGN.md §12).  Must be in [1, kMaxBatchLanes];
     * 1 disables batching.  Requires incremental = true to take
     * effect (the batch planner rides on the cone geometry).  Purely a
     * performance knob: the sampled faults, every record field, and
     * campaignChecksum are bit-identical for every width, and it does
     * not participate in campaignConfigHash.
     */
    int batchWidth = 8;

    // ----- Adaptive precision targeting ---------------------------
    //
    // The paper sizes its 46M-injection study so every reported
    // probability carries a tight confidence interval; the adaptive
    // scheduler inverts that: give it the interval, and each (layer,
    // category) cell draws samples in rounds until its Wilson
    // half-width meets the target, so samples flow to the cells that
    // need them instead of a flat samplesPerCategory everywhere.

    /**
     * Target Wilson half-width per (layer, category) cell.  0 keeps
     * the fixed samplesPerCategory schedule; > 0 switches to the
     * adaptive round scheduler (samplesPerCategory is then ignored).
     * Adaptive campaigns are bit-identical for any thread count, but
     * use a different stream layout than fixed campaigns: each cell
     * forks a private stream chain, so its samples are independent of
     * every other cell's retirement round.
     */
    double targetHalfWidth = 0.0;

    /** z of the target interval (1.96 = 95%, 2.576 = 99%). */
    double confidenceZ = 1.96;

    /** Samples every cell draws before it may retire (round 0 size);
     *  guards against retiring on a lucky empty prefix. */
    int minSamples = 32;

    /** Hard per-cell cap in adaptive mode: a cell retires at the cap
     *  even if its half-width still exceeds the target (rare-failure
     *  cells near p = 1/2 would otherwise run long). */
    int maxSamplesPerCategory = 1 << 16;

    // ----- Cross-campaign result cache ----------------------------
    //
    // Adaptive rounds and repeated service-style requests re-sample
    // the same (layer, category) cells constantly; architecturally
    // equivalent fault sites provably produce equal outcomes.  The
    // result cache memoises the forward-pass outcome per fault-site
    // fingerprint (see sim/result_cache.hh and DESIGN.md §11).  It is
    // a pure performance knob: the sampled faults, every counter, and
    // campaignChecksum are bit-identical with the cache on or off —
    // none of these fields participate in campaignConfigHash, so
    // cached and uncached runs are resume-compatible.

    /** Probe/store the fault-site memo table in the injection path. */
    bool resultCacheEnabled = true;

    /** Capacity of a campaign-private table in MiB (used when
     *  resultCache below is null).  Must be > 0 when enabled. */
    int resultCacheMB = 64;

    /**
     * Optional externally owned table shared across campaigns (the
     * cross-campaign case: a service answering repeated requests, or
     * the adaptive scheduler re-running a study).  Entries are only
     * served to an injector whose context digest matches — a
     * different input, weight set, or precision can never hit — so
     * sharing is always sound, only ever a capacity trade-off.
     */
    std::shared_ptr<ResultCache> resultCache;

    /**
     * Extra salt mixed into the cache context digest.  The
     * CorrectnessFn is an opaque callable the digest cannot hash;
     * callers sharing one table across *different* correctness
     * metrics must give each metric a distinct salt.
     */
    std::uint64_t resultCacheSalt = 0;

    // ----- Crash-safe checkpoint / resume -------------------------

    /**
     * When non-empty, the campaign journals every completed shard to
     * this snapshot file (atomic-rename replace) at least every
     * checkpointEverySec seconds and once more on completion, so a
     * killed campaign loses at most one checkpoint window of work.
     */
    std::string checkpointPath;

    /** Minimum seconds between two mid-flight snapshot writes. */
    double checkpointEverySec = 30.0;

    /**
     * When non-empty and the file exists, restore the journaled
     * shards and execute only the remainder; the result is
     * bit-identical to an uninterrupted run (the snapshot stores a
     * config hash and refuses configs with a different sample
     * identity).  A non-existent file starts fresh, so setting
     * resumeFrom = checkpointPath gives an idempotent
     * crash-restart loop.
     */
    std::string resumeFrom;

    /**
     * Execute at most this many shards in this process (0 = no
     * limit), then snapshot and return with CampaignResult::complete
     * = false.  Deterministic time-slicing for batch schedulers — and
     * the hook the kill-and-resume tests use to "crash" mid-flight.
     */
    std::uint64_t stopAfterShards = 0;

    /**
     * In-memory twin of resumeFrom: restore these journaled shards
     * instead of reading a file (resumeFrom wins when both are set).
     * The snapshot's configHash must match this campaign's — same
     * refusal as a file resume.  This is the distributed merge seam:
     * the sim/service coordinator collects every shard journal from
     * its workers into one complete snapshot and "resumes" from it, so
     * the merge, result, and manifest "results" section go through
     * exactly the single-process code path (see DESIGN.md §14).
     */
    std::shared_ptr<const CampaignSnapshot> resumeSnapshot;

    /**
     * Worker-process topology recorded in the manifest "execution"
     * section by distributed runs (coordinator + N worker processes).
     * Purely observability: never hashed, never part of the "results"
     * section.  Null for in-process campaigns.
     */
    std::shared_ptr<const WorkerTopology> topology;

    /**
     * Extra instruments merged into the manifest "execution" metrics
     * block — the seam the campaign daemon uses to record what the
     * *service* did to this request (admission queue wait, queue depth
     * at admit) next to what the campaign did.  Purely observability:
     * never hashed, never part of the "results" section.  Null for
     * plain in-process campaigns.
     */
    std::shared_ptr<const MetricSet> serviceMetrics;

    // ----- Structured reporting -----------------------------------

    /**
     * When non-empty, write a run manifest here at campaign end (also
     * after a stopAfterShards slice): a JSON document with the config
     * fingerprint, the full per-(layer, category) cell table with
     * Wilson intervals, the Eq. 2 FIT breakdowns, per-phase wall
     * times, per-worker counts, engine decisions, checkpoint events,
     * and the adaptive round history.  The "results" section is
     * byte-identical across thread counts and kill-and-resume; see
     * core/manifest.hh and DESIGN.md §10 for the schema.
     */
    std::string reportPath;

    NvdlaConfig accel;
    FitParams fit;
    ActivenessModel activeness;
};

/** Masking statistics of one (layer, category) cell. */
struct CellResult
{
    NodeId node = 0;
    FFCategory category = FFCategory::OutputPsum;
    Proportion masked; //!< Prob_SWmask(cat, r) estimate
};

/** Everything a campaign produces. */
struct CampaignResult
{
    std::string network;
    Precision precision = Precision::FP32;

    FitBreakdown fit;
    FitBreakdown fitGlobalProtected; //!< Fig. 6 variant

    std::vector<LayerFitInput> layerInputs;
    std::vector<CellResult> cells;

    /** (|delta|, caused output error) for single-faulty-neuron
     *  datapath injections — the Key result 5 data. */
    std::vector<std::pair<double, bool>> singleNeuronSamples;

    std::uint64_t totalInjections = 0;

    /** False when stopAfterShards ended the run early; the partial
     *  counters are merged, the rest lives in the snapshot. */
    bool complete = true;

    /** Scheduling rounds executed (1 for a fixed-schedule run). */
    std::uint64_t rounds = 0;

    /** campaignConfigHash of the run (also stamped into snapshots and
     *  the run manifest). */
    std::uint64_t configHash = 0;
};

/**
 * Run the full FIdelity flow on one network.
 *
 * The injection space is partitioned into shards of at most
 * cfg.shardGrain samples of one (layer, category) cell; each shard
 * draws from its own Rng::fork() stream (forked from the master seed
 * in shard-plan order) and accumulates into private counters, which
 * are merged in shard-plan order afterwards.  Shards execute on a
 * ThreadPool of cfg.numThreads workers; because neither the plan nor
 * the streams depend on the worker count, the CampaignResult is
 * bit-identical for every cfg.numThreads, including 1.
 *
 * @param net The network (precision already set; calibrate() already
 *            run when using an integer mode).
 * @param input Network input.
 * @param correct Application correctness metric.  Must be safe to
 *            invoke concurrently (the supplied metrics are stateless).
 * @param cfg Campaign knobs.
 */
CampaignResult runCampaign(const Network &net, const Tensor &input,
                           const CorrectnessFn &correct,
                           const CampaignConfig &cfg);

/**
 * One shard of the deterministic fixed-schedule plan: `samples` draws
 * of `category` faults in layer `node`, at position `ordinal` in the
 * plan (which fixes its Rng::fork() stream).
 */
struct ShardPlanEntry
{
    std::uint64_t ordinal = 0;
    std::uint64_t cell = 0; //!< index into the node-major cell table
    NodeId node = 0;
    FFCategory category = FFCategory::OutputPsum;
    int samples = 0;
};

/**
 * The fixed-schedule shard plan of (net, cfg) — a pure function of the
 * config's sample identity, identical in every process that computes
 * it.  This is the unit of distribution: the sim/service coordinator
 * leases contiguous ordinal ranges of this plan to worker processes.
 * Only fixed schedules have a static plan; fatals when
 * cfg.targetHalfWidth > 0 (adaptive campaigns schedule round by round
 * and are served in-process).
 */
std::vector<ShardPlanEntry> fixedShardPlan(const Network &net,
                                           const CampaignConfig &cfg);

/**
 * Execute plan ordinals [first, first + count) of fixedShardPlan(net,
 * cfg) and return their shard journals, sorted by ordinal.  Rebuilds
 * the exact plan and per-shard Rng streams runCampaign would use, so
 * the records are byte-identical to the ones an in-process run journals
 * for the same ordinals — the worker half of the bit-identical merge.
 * Honors the engine/batch/result-cache performance knobs of `cfg`;
 * runs single-threaded (worker processes are the parallelism axis).
 */
std::vector<ShardRecord> executeFixedShardRange(const Network &net,
                                                const Tensor &input,
                                                const CorrectnessFn &correct,
                                                const CampaignConfig &cfg,
                                                std::uint64_t first,
                                                std::uint64_t count);

/**
 * Reusable engine behind executeFixedShardRange.  Construction pays
 * the golden forward pass (Injector), the shard plan, the result
 * cache, and the incremental/batched engines once; each execute()
 * call then only re-derives its range's Rng streams — so a service
 * worker draining many small leases amortizes setup exactly like the
 * in-process fan-out, which holds one Injector and per-worker engines
 * for the whole campaign.  Engines and cache are pure performance
 * state: execute() records are byte-identical to a fresh
 * executeFixedShardRange call over the same range.  The referenced
 * network/input must outlive the executor; not thread-safe (worker
 * processes are the parallelism axis).
 */
class FixedShardExecutor
{
  public:
    FixedShardExecutor(const Network &net, const Tensor &input,
                       const CorrectnessFn &correct,
                       const CampaignConfig &cfg);
    ~FixedShardExecutor();

    /** Shards in the plan this executor serves. */
    std::uint64_t planSize() const;

    /** Execute plan ordinals [first, first + count); see
     *  executeFixedShardRange. */
    std::vector<ShardRecord> execute(std::uint64_t first,
                                     std::uint64_t count);

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

/**
 * Order-sensitive digest of a campaign's numeric identity: every
 * per-cell counter and every single-neuron sample, FNV-1a mixed.  Two
 * campaigns with equal checksums produced bit-identical results — the
 * cross-thread-count, dense-vs-incremental, and kill-and-resume
 * equality proofs.
 */
std::uint64_t campaignChecksum(const CampaignResult &res);

/**
 * Fingerprint of the CampaignConfig fields that define a campaign's
 * sample identity (seed, schedule, adaptive targets, clamp), the
 * network's name/precision/layer census, and the input tensor's
 * bits.  Stored in snapshots; a resume with a different fingerprint
 * is refused.  Performance-only knobs (threads, incremental,
 * progress, checkpoint cadence, stopAfterShards) do not participate.
 * Network *weights* are identified only through name/seed-derived
 * topology — resuming against a retrained same-name network is the
 * caller's responsibility.
 */
std::uint64_t campaignConfigHash(const Network &net, const Tensor &input,
                                 const CampaignConfig &cfg);

/**
 * Describe a MAC layer to the performance model.  Grouped convolutions
 * use the redOverride escape hatch (the engine itself only executes
 * standard convolutions).
 */
EngineLayer timingLayer(const Network &net, NodeId node,
                        const std::vector<Tensor> &acts);

} // namespace fidelity

#endif // FIDELITY_CORE_CAMPAIGN_HH
