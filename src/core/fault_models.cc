#include "core/fault_models.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "sim/logging.hh"
#include "tensor/bitops.hh"
#include "tensor/float16.hh"

namespace fidelity
{

const std::vector<FFCategory> &
allFFCategories()
{
    static const std::vector<FFCategory> cats = {
        FFCategory::PreBufInput,  FFCategory::PreBufWeight,
        FFCategory::OperandInput, FFCategory::OperandWeight,
        FFCategory::OutputPsum,   FFCategory::LocalControl,
        FFCategory::GlobalControl,
    };
    return cats;
}

const char *
ffCategoryName(FFCategory cat)
{
    switch (cat) {
      case FFCategory::PreBufInput:
        return "PreBufInput";
      case FFCategory::PreBufWeight:
        return "PreBufWeight";
      case FFCategory::OperandInput:
        return "OperandInput";
      case FFCategory::OperandWeight:
        return "OperandWeight";
      case FFCategory::OutputPsum:
        return "OutputPsum";
      case FFCategory::LocalControl:
        return "LocalControl";
      case FFCategory::GlobalControl:
        return "GlobalControl";
    }
    panic("unknown FFCategory");
}

double
ffCategoryShare(FFCategory cat)
{
    // The %FF column of Table II.
    switch (cat) {
      case FFCategory::PreBufInput:
        return 0.025;
      case FFCategory::PreBufWeight:
        return 0.048;
      case FFCategory::OperandInput:
        return 0.162;
      case FFCategory::OperandWeight:
        return 0.216;
      case FFCategory::OutputPsum:
        return 0.379;
      case FFCategory::LocalControl:
        return 0.057;
      case FFCategory::GlobalControl:
        return 0.113;
    }
    panic("unknown FFCategory");
}

bool
isDatapathCategory(FFCategory cat)
{
    return cat != FFCategory::LocalControl &&
           cat != FFCategory::GlobalControl;
}

FaultModels::FaultModels(const NvdlaConfig &cfg)
    : cfg_(cfg)
{
}

int
FaultModels::operandBits(Precision p)
{
    switch (p) {
      case Precision::FP32:
        return 32;
      case Precision::FP16:
        return 16;
      case Precision::INT16:
        return 16;
      case Precision::INT8:
        return 8;
    }
    panic("unknown Precision");
}

float
FaultModels::flipStoredOperand(float x, Precision p, const QuantParams &qp,
                               int bit)
{
    return flipStoredOperandMask(x, p, qp, 1u << bit);
}

float
FaultModels::flipStoredOperandMask(float x, Precision p,
                                   const QuantParams &qp,
                                   std::uint32_t mask)
{
    switch (p) {
      case Precision::FP32:
        return flipBits(x, Repr::FP32, mask);
      case Precision::FP16:
        return flipBits(roundToHalf(x), Repr::FP16, mask);
      case Precision::INT16:
      case Precision::INT8: {
        Repr r = p == Precision::INT8 ? Repr::INT8 : Repr::INT16;
        return dequantize(flipBitsInt(quantize(x, qp), r, mask), qp);
      }
    }
    panic("unknown Precision");
}

float
FaultModels::flipStoredOutput(float y, Precision p, const QuantParams &qp,
                              int bit)
{
    // Output words share the operand representations.
    return flipStoredOperand(y, p, qp, bit);
}

float
FaultModels::flipStoredOutputMask(float y, Precision p,
                                  const QuantParams &qp,
                                  std::uint32_t mask)
{
    return flipStoredOperandMask(y, p, qp, mask);
}

float
FaultModels::randomOutputValue(Precision p, const QuantParams &qp, Rng &rng)
{
    switch (p) {
      case Precision::FP32:
      case Precision::FP16: {
        // A uniformly random binary16 pattern (NaN/Inf possible, as in
        // hardware where a garbage word is latched).
        std::uint16_t bits = static_cast<std::uint16_t>(rng.next32());
        return halfBitsToFloat(bits);
      }
      case Precision::INT16: {
        auto q = static_cast<std::int16_t>(rng.next32());
        return dequantize(q, qp);
      }
      case Precision::INT8: {
        auto q = static_cast<std::int8_t>(rng.next32());
        return dequantize(q, qp);
      }
    }
    panic("unknown Precision");
}

namespace
{

/** Append neuron/value pairs whose value actually changed. */
void
appendChanged(FaultApplication &app, const Tensor &golden,
              const NeuronIndex &n, float value)
{
    float g = golden.at(n);
    bool same = (g == value) || (std::isnan(g) && std::isnan(value));
    if (same)
        return;
    app.neurons.push_back(n);
    app.values.push_back(value);
    double delta = std::isnan(value) || std::isinf(value)
        ? std::numeric_limits<double>::infinity()
        : std::fabs(static_cast<double>(value) - g);
    app.maxAbsDelta = std::max(app.maxAbsDelta, delta);
}

/**
 * Evaluate the substituted value of every listed consumer and append
 * the changed ones, preserving list order.
 *
 * When the layer has a vector path (forwardWithSub) the consumers are
 * first coalesced into output boxes — channel runs at one position,
 * then w-runs of a single channel, matching the orders inputConsumers
 * and weightConsumers produce — and re-executed in one kernel sweep
 * into a thread-local scratch tensor; otherwise each neuron recomputes
 * via computeNeuron().  Both paths are bit-identical by contract.
 */
void
evalConsumers(FaultApplication &app, const MacLayer &layer,
              const std::vector<const Tensor *> &ins, const Tensor &golden,
              const OperandSub &sub, const NeuronIndex *cons,
              std::size_t count)
{
    if (count == 0)
        return;
    static thread_local Tensor scratch;
    static thread_local std::vector<Region> boxes;
    boxes.clear();
    for (std::size_t i = 0; i < count; ++i) {
        const NeuronIndex &n = cons[i];
        if (!boxes.empty()) {
            Region &b = boxes.back();
            bool one_pos = b.n1 == b.n0 + 1 && b.h1 == b.h0 + 1 &&
                           b.w1 == b.w0 + 1;
            if (one_pos && n.n == b.n0 && n.h == b.h0 && n.w == b.w0 &&
                n.c == b.c1) {
                ++b.c1; // extend the channel run at this position
                continue;
            }
            if (b.c1 == b.c0 + 1 && b.n1 == b.n0 + 1 &&
                b.h1 == b.h0 + 1 && n.n == b.n0 && n.h == b.h0 &&
                n.w == b.w1 && n.c == b.c0) {
                ++b.w1; // extend the w-run of this single channel
                continue;
            }
        }
        boxes.push_back(Region::of(n));
    }
    if (!scratch.sameShape(golden))
        scratch = Tensor(golden.n(), golden.h(), golden.w(), golden.c());
    bool vec = layer.forwardWithSub(ins, &sub, boxes.data(), boxes.size(),
                                    scratch);
    for (std::size_t i = 0; i < count; ++i) {
        float v = vec ? scratch.at(cons[i])
                      : layer.computeNeuron(ins, cons[i], &sub);
        appendChanged(app, golden, cons[i], v);
    }
}

} // namespace

FaultApplication
FaultModels::apply(FFCategory cat, const MacLayer &layer,
                   const std::vector<const Tensor *> &ins,
                   const Tensor &golden, Rng &rng) const
{
    switch (cat) {
      case FFCategory::PreBufInput:
      case FFCategory::PreBufWeight:
        return applyPreBuf(cat, layer, ins, golden, rng);
      case FFCategory::OperandInput:
        return applyOperandInput(layer, ins, golden, rng);
      case FFCategory::OperandWeight:
        return applyOperandWeight(layer, ins, golden, rng);
      case FFCategory::OutputPsum:
        return applyOutputPsum(layer, ins, golden, rng);
      case FFCategory::LocalControl:
        return applyLocalControl(layer, ins, golden, rng);
      case FFCategory::GlobalControl: {
        FaultApplication app;
        app.category = cat;
        app.globalFailure = true;
        return app;
      }
    }
    panic("unknown FFCategory");
}

FaultApplication
FaultModels::applyPreBuf(FFCategory cat, const MacLayer &layer,
                         const std::vector<const Tensor *> &ins,
                         const Tensor &golden, Rng &rng) const
{
    FaultApplication app;
    app.category = cat;
    Precision p = layer.precision();
    int bits = operandBits(p);

    OperandSub sub;
    std::vector<NeuronIndex> consumers;
    if (cat == FFCategory::PreBufInput) {
        std::size_t elem = rng.below(
            static_cast<std::uint32_t>(ins[0]->size()));
        float v = (*ins[0])[elem];
        sub.kind = OperandSub::Kind::Input;
        sub.flatIndex = elem;
        sub.value = flipStoredOperand(v, p, layer.inputQuant(),
                                      static_cast<int>(rng.below(bits)));
        consumers = layer.inputConsumers(ins, elem);
    } else {
        std::size_t widx = rng.below(
            static_cast<std::uint32_t>(layer.weightCount(ins)));
        float v = layer.weightAt(ins, widx);
        sub.kind = OperandSub::Kind::Weight;
        sub.flatIndex = widx;
        sub.value = flipStoredOperand(v, p, layer.weightQuant(),
                                      static_cast<int>(rng.below(bits)));
        consumers = layer.weightConsumers(ins, widx);
    }
    evalConsumers(app, layer, ins, golden, sub, consumers.data(),
                  consumers.size());
    return app;
}

FaultApplication
FaultModels::applyOperandInput(const MacLayer &layer,
                               const std::vector<const Tensor *> &ins,
                               const Tensor &golden, Rng &rng) const
{
    FaultApplication app;
    app.category = FFCategory::OperandInput;
    Precision p = layer.precision();
    int bits = operandBits(p);
    int macs = cfg_.macs();

    std::size_t elem =
        rng.below(static_cast<std::uint32_t>(ins[0]->size()));
    std::vector<NeuronIndex> consumers = layer.inputConsumers(ins, elem);
    if (consumers.empty())
        return app; // the value feeds no neuron (e.g. unused element)

    OperandSub sub;
    sub.kind = OperandSub::Kind::Input;
    sub.flatIndex = elem;
    sub.value = flipStoredOperand((*ins[0])[elem], p, layer.inputQuant(),
                                  static_cast<int>(rng.below(bits)));

    // The corrupted operand register feeds all k^2 MACs for one cycle:
    // one output position, one aligned group of k^2 consecutive
    // channels.  Pick the position/group uniformly among the users.
    const NeuronIndex &pick = consumers[rng.pick(consumers)];
    int group = (pick.c / macs) * macs;
    static thread_local std::vector<NeuronIndex> picked;
    picked.clear();
    for (const NeuronIndex &n : consumers) {
        if (n.n == pick.n && n.h == pick.h && n.w == pick.w &&
            n.c >= group && n.c < group + macs)
            picked.push_back(n);
    }
    evalConsumers(app, layer, ins, golden, sub, picked.data(),
                  picked.size());
    return app;
}

FaultApplication
FaultModels::applyOperandWeight(const MacLayer &layer,
                                const std::vector<const Tensor *> &ins,
                                const Tensor &golden, Rng &rng) const
{
    FaultApplication app;
    app.category = FFCategory::OperandWeight;
    Precision p = layer.precision();
    int bits = operandBits(p);
    int t = cfg_.t;

    std::size_t widx =
        rng.below(static_cast<std::uint32_t>(layer.weightCount(ins)));
    std::vector<NeuronIndex> consumers = layer.weightConsumers(ins, widx);
    if (consumers.empty())
        return app;

    OperandSub sub;
    sub.kind = OperandSub::Kind::Weight;
    sub.flatIndex = widx;
    sub.value = flipStoredOperand(layer.weightAt(ins, widx), p,
                                  layer.weightQuant(),
                                  static_cast<int>(rng.below(bits)));

    // The weight-hold register keeps the value for a block of t
    // consecutive positions (weightConsumers enumerates positions in
    // generation order); the flip lands at a random cycle of a random
    // block, corrupting the tail of that block.
    std::size_t total = consumers.size();
    std::size_t blocks = (total + t - 1) / t;
    std::size_t blk = rng.below(static_cast<std::uint32_t>(blocks));
    std::size_t start = blk * t;
    std::size_t len = std::min<std::size_t>(t, total - start);
    std::size_t phase = rng.below(static_cast<std::uint32_t>(len));
    evalConsumers(app, layer, ins, golden, sub,
                  consumers.data() + start + phase, len - phase);
    return app;
}

FaultApplication
FaultModels::applyOutputPsum(const MacLayer &layer,
                             const std::vector<const Tensor *> &ins,
                             const Tensor &golden, Rng &rng) const
{
    FaultApplication app;
    app.category = FFCategory::OutputPsum;
    Precision p = layer.precision();

    std::size_t flat =
        rng.below(static_cast<std::uint32_t>(golden.size()));
    NeuronIndex n = golden.indexOf(flat);

    // Partial-sum registers far outnumber the output register (there
    // are macs() * t 32-bit accumulators against one output word), so
    // pick the flipped FF accordingly.
    double psum_bits = static_cast<double>(cfg_.macs()) * cfg_.t * 32.0;
    double out_bits = static_cast<double>(operandBits(p));
    bool flip_psum = rng.uniform() < psum_bits / (psum_bits + out_bits);

    if (flip_psum) {
        // Recompute the neuron; reductionLength() is refreshed by the
        // recompute for shape-dependent layers (MatMulAB).
        layer.computeNeuron(ins, n, nullptr);
        int red = layer.reductionLength();
        OperandSub sub;
        sub.kind = OperandSub::Kind::PsumFlip;
        sub.flatIndex = rng.below(static_cast<std::uint32_t>(red + 1));
        sub.bit = static_cast<int>(rng.below(32));
        appendChanged(app, golden, n, layer.computeNeuron(ins, n, &sub));
    } else {
        int bit = static_cast<int>(rng.below(operandBits(p)));
        float y = golden.at(n);
        appendChanged(app, golden, n,
                      flipStoredOutput(y, p, layer.outputQuant(), bit));
    }
    return app;
}

FaultApplication
FaultModels::applyLocalControl(const MacLayer &layer,
                               const std::vector<const Tensor *> &,
                               const Tensor &golden, Rng &rng) const
{
    FaultApplication app;
    app.category = FFCategory::LocalControl;
    std::size_t flat =
        rng.below(static_cast<std::uint32_t>(golden.size()));
    NeuronIndex n = golden.indexOf(flat);
    float v = randomOutputValue(layer.precision(), layer.outputQuant(),
                                rng);
    appendChanged(app, golden, n, v);
    return app;
}

} // namespace fidelity
