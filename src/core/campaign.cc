#include "core/campaign.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <limits>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "accel/nvdla_fi.hh"
#include "core/manifest.hh"
#include "nn/batched.hh"
#include "nn/conv.hh"
#include "nn/fc.hh"
#include "nn/matmul.hh"
#include "sim/checkpoint.hh"
#include "sim/logging.hh"
#include "sim/metrics.hh"
#include "sim/thread_pool.hh"

namespace fidelity
{

EngineLayer
timingLayer(const Network &net, NodeId node,
            const std::vector<Tensor> &acts)
{
    const Layer &l = net.layer(node);
    auto ins = net.gatherInputs(node, acts);

    if (const auto *conv = dynamic_cast<const Conv2D *>(&l)) {
        const ConvSpec &spec = conv->spec();
        if (spec.groups == 1)
            return engineLayerFromConv(*conv, *ins[0]);
        // Grouped/depthwise: describe the geometry, overriding the
        // per-neuron reduction with the per-group depth.
        EngineLayer el;
        el.kind = EngineLayer::Kind::Conv;
        el.precision = conv->precision();
        el.inC = spec.inC;
        el.inH = ins[0]->h();
        el.inW = ins[0]->w();
        el.outC = spec.outC;
        el.outH = conv->outDim(ins[0]->h(), spec.kh);
        el.outW = conv->outDim(ins[0]->w(), spec.kw);
        el.kh = spec.kh;
        el.kw = spec.kw;
        el.stride = spec.stride;
        el.pad = spec.pad;
        el.dilation = spec.dilation;
        el.batch = ins[0]->n();
        el.weights = conv->weightData();
        el.bias = conv->biasData();
        el.redOverride = (spec.inC / spec.groups) * spec.kh * spec.kw;
        return el;
    }
    if (const auto *fc = dynamic_cast<const FC *>(&l))
        return engineLayerFromFC(*fc, *ins[0]);
    if (const auto *mm = dynamic_cast<const MatMulAB *>(&l))
        return engineLayerFromMatMul(*mm, *ins[0], *ins[1]);
    panic("node ", node, " is not a MAC layer");
}

std::uint64_t
campaignChecksum(const CampaignResult &res)
{
    std::uint64_t h = 1469598103934665603ULL; // FNV-1a
    auto mix = [&h](std::uint64_t v) {
        h ^= v;
        h *= 1099511628211ULL;
    };
    mix(res.totalInjections);
    for (const CellResult &cell : res.cells) {
        mix(cell.masked.successes());
        mix(cell.masked.trials());
    }
    for (const auto &[delta, failed] : res.singleNeuronSamples) {
        std::uint64_t bits;
        static_assert(sizeof(bits) == sizeof(delta));
        std::memcpy(&bits, &delta, sizeof(bits));
        mix(bits);
        mix(failed ? 1 : 0);
    }
    return h;
}

std::uint64_t
campaignConfigHash(const Network &net, const Tensor &input,
                   const CampaignConfig &cfg)
{
    const bool adaptive = cfg.targetHalfWidth > 0.0;
    HashMixer hm;
    hm.mix(std::string("fidelity-campaign-v1"));
    hm.mix(net.name());
    hm.mix(static_cast<std::uint64_t>(net.precision()));
    hm.mix(static_cast<std::uint64_t>(net.macNodes().size()));
    hm.mix(static_cast<std::uint64_t>(numFFCategories));
    hm.mix(cfg.seed);
    hm.mix(static_cast<std::uint64_t>(cfg.shardGrain));
    hm.mix(cfg.outputClampAbs);
    hm.mix(static_cast<std::uint64_t>(adaptive ? 1 : 0));
    if (adaptive) {
        hm.mix(cfg.targetHalfWidth);
        hm.mix(cfg.confidenceZ);
        hm.mix(static_cast<std::uint64_t>(cfg.minSamples));
        hm.mix(static_cast<std::uint64_t>(cfg.maxSamplesPerCategory));
    } else {
        hm.mix(static_cast<std::uint64_t>(cfg.samplesPerCategory));
    }
    hm.mix(static_cast<std::uint64_t>(input.n()));
    hm.mix(static_cast<std::uint64_t>(input.h()));
    hm.mix(static_cast<std::uint64_t>(input.w()));
    hm.mix(static_cast<std::uint64_t>(input.c()));
    for (float v : input.data())
        hm.mix(static_cast<double>(v));
    return hm.value();
}

namespace
{

/** One unit of the injection fan-out: a run of samples of one
 *  (layer, category) cell with its own forked RNG stream. */
struct Shard
{
    std::uint64_t ordinal = 0; //!< position in the deterministic plan
    std::size_t cell = 0;      //!< index into CampaignResult::cells
    NodeId node = 0;
    FFCategory category = FFCategory::OutputPsum;
    int samples = 0;
    Rng rng;
};

/** Private accumulators of one shard, merged in shard-plan order. */
struct ShardOutput
{
    std::uint64_t maskedCount = 0;
    std::uint64_t trials = 0;
    std::vector<std::pair<double, bool>> singleNeuronSamples;

    /** Fault-site fingerprints of the cache-eligible injections, in
     *  sample order (result cache enabled only).  Never journaled —
     *  they feed the deterministic plan replay of this process. */
    std::vector<std::uint64_t> fingerprints;
};

/** Adaptive scheduling state of one (layer, category) cell. */
struct CellSched
{
    bool eligible = false; //!< draws samples (i.e. not GlobalControl)
    bool live = false;     //!< not yet retired
    std::uint64_t successes = 0; //!< masked count over merged rounds
    std::uint64_t trials = 0;

    /** Per-cell fork chain (adaptive mode): shard streams fork from
     *  here, so the cell's sample identity never depends on how long
     *  any *other* cell stays live. */
    Rng stream{0};
};

ShardRecord
recordOf(const Shard &sh, const ShardOutput &out)
{
    ShardRecord r;
    r.ordinal = sh.ordinal;
    r.cell = sh.cell;
    r.maskedCount = out.maskedCount;
    r.trials = out.trials;
    r.samples = out.singleNeuronSamples;
    return r;
}

/**
 * Seconds to integer nanoseconds, saturating at the int64 range — a
 * throttle interval of 1e300 s must mean "practically never", not
 * undefined behaviour in the float-to-int cast.
 */
std::int64_t
secondsToNsSaturating(double seconds)
{
    if (!(seconds > 0.0))
        return 0;
    const double ns = seconds * 1e9;
    // 2^63 is exactly representable; anything >= it must clamp
    // (casting it would be UB).
    if (ns >= static_cast<double>(
                  std::numeric_limits<std::int64_t>::max()))
        return std::numeric_limits<std::int64_t>::max();
    return static_cast<std::int64_t>(ns);
}

/** Per-worker telemetry slot: exclusively owned by one pool worker
 *  during the fan-out, so accumulation never takes a lock; cache-line
 *  aligned so neighbouring slots cannot false-share. */
struct alignas(64) WorkerSlot
{
    std::uint64_t shards = 0;
    std::uint64_t injections = 0;
    IncrementalTotals engine;
    BatchedTotals batched;
    MetricSet metrics;
};

/** |delta| buckets of the single-faulty-neuron perturbation histogram
 *  (Key result 5 magnitudes, log-decade bins). */
const std::vector<double> &
deltaHistogramEdges()
{
    static const std::vector<double> edges = {1e-8, 1e-6, 1e-4, 1e-2,
                                              1.0,  1e2,  1e4,  1e8};
    return edges;
}

/** Per-executor engine scratch, reused across every shard the
 *  executor runs (a pool thread in-process; the whole process in a
 *  service worker): incremental cone engine, batched engine with its
 *  lane planes, and the record buffer batches land in. */
struct ShardScratch
{
    IncrementalEngine engine;
    std::unique_ptr<BatchedEngine> batched;
    std::vector<InjectionRecord> recs;
};

/**
 * Execute every sample of one shard through the engines cfg selects
 * and feed each InjectionRecord, in sample order, to `account`.  The
 * record stream is a pure function of the shard (its stream, cell,
 * sample count) and the config's sample identity — the single code
 * path behind both the in-process fan-out and the service worker's
 * executeFixedShardRange, so the two cannot drift apart.
 */
template <typename AccountFn>
void
runShardSamples(Injector &injector, const CorrectnessFn &correct,
                const CampaignConfig &cfg, Shard &sh,
                ShardScratch &scratch, AccountFn &&account)
{
    IncrementalEngine *engine = nullptr;
    IncrementalOptions opt;
    opt.denseThreshold = cfg.incrementalDenseThreshold;
    if (cfg.incremental) {
        scratch.engine.setOptions(opt);
        engine = &scratch.engine;
    }
    const bool batched = cfg.incremental && cfg.batchWidth > 1;
    if (batched) {
        // The factory rounds the allocation width up to a
        // power-of-two lane count; reuse the engine when it still
        // fits the requested width.
        if (!scratch.batched ||
            scratch.batched->maxLanes() < cfg.batchWidth)
            scratch.batched = makeBatchedEngine(cfg.batchWidth, opt);
        scratch.batched->setOptions(opt);
        scratch.recs.resize(static_cast<std::size_t>(sh.samples));
        injector.injectBatch(sh.node, sh.category, correct, sh.rng,
                             sh.samples, cfg.outputClampAbs,
                             cfg.batchWidth, *scratch.batched,
                             scratch.engine, scratch.recs.data());
        for (int s = 0; s < sh.samples; ++s)
            account(scratch.recs[static_cast<std::size_t>(s)]);
    } else {
        for (int s = 0; s < sh.samples; ++s)
            account(injector.inject(sh.node, sh.category, correct,
                                    sh.rng, cfg.outputClampAbs,
                                    engine));
    }
}

} // namespace

std::vector<ShardPlanEntry>
fixedShardPlan(const Network &net, const CampaignConfig &cfg)
{
    fatal_if(cfg.targetHalfWidth > 0.0,
             "adaptive campaigns (targetHalfWidth > 0) have no static "
             "shard plan; only fixed schedules distribute");
    fatal_if(cfg.shardGrain <= 0, "campaign shardGrain must be > 0, got ",
             cfg.shardGrain);
    std::vector<NodeId> nodes = net.macNodes();
    fatal_if(nodes.empty(), "network ", net.name(), " has no MAC layers");

    // Mirrors runCampaign's fixed-schedule planning loop exactly:
    // node-major cells in Table II category order, GlobalControl
    // ineligible, quotas sliced into shards of at most shardGrain.
    const auto &cats = allFFCategories();
    std::vector<ShardPlanEntry> plan;
    std::uint64_t ordinal = 0;
    std::uint64_t cell = 0;
    for (NodeId node : nodes) {
        for (FFCategory cat : cats) {
            if (cat != FFCategory::GlobalControl) {
                for (int s = 0; s < cfg.samplesPerCategory;
                     s += cfg.shardGrain) {
                    ShardPlanEntry e;
                    e.ordinal = ordinal++;
                    e.cell = cell;
                    e.node = node;
                    e.category = cat;
                    e.samples = std::min(cfg.shardGrain,
                                         cfg.samplesPerCategory - s);
                    plan.push_back(e);
                }
            }
            ++cell;
        }
    }
    return plan;
}

/**
 * Everything executeFixedShardRange used to rebuild per call, hoisted
 * so a reused executor pays it once: the plan, the Injector (whose
 * construction runs the golden forward pass), the result cache, and
 * the engine scratch.  All of it is performance state — the record
 * stream depends only on the shard streams and cfg's sample identity.
 */
struct FixedShardExecutor::Impl
{
    Impl(const Network &n, const Tensor &in, const CorrectnessFn &c,
         const CampaignConfig &config)
        : input(in), correct(c), cfg(config),
          plan(fixedShardPlan(n, config)),
          injector(n, in, config.accel)
    {
        fatal_if(cfg.batchWidth < 1 || cfg.batchWidth > kMaxBatchLanes,
                 "campaign batchWidth must be in [1, ", kMaxBatchLanes,
                 "], got ", cfg.batchWidth);
        if (cfg.resultCacheEnabled) {
            resultCache = cfg.resultCache;
            if (!resultCache) {
                fatal_if(cfg.resultCacheMB <= 0,
                         "campaign resultCacheMB must be > 0 when the "
                         "result cache is enabled, got ",
                         cfg.resultCacheMB);
                resultCache = std::make_shared<ResultCache>(
                    static_cast<std::size_t>(cfg.resultCacheMB) << 20);
            }
            injector.attachResultCache(resultCache.get(),
                                       cfg.resultCacheSalt);
        }
    }

    const Tensor &input;
    CorrectnessFn correct;
    CampaignConfig cfg;
    std::vector<ShardPlanEntry> plan;
    Injector injector;
    std::shared_ptr<ResultCache> resultCache;
    ShardScratch scratch;
};

FixedShardExecutor::FixedShardExecutor(const Network &net,
                                       const Tensor &input,
                                       const CorrectnessFn &correct,
                                       const CampaignConfig &cfg)
    : impl_(std::make_unique<Impl>(net, input, correct, cfg))
{
}

FixedShardExecutor::~FixedShardExecutor() = default;

std::uint64_t
FixedShardExecutor::planSize() const
{
    return impl_->plan.size();
}

std::vector<ShardRecord>
FixedShardExecutor::execute(std::uint64_t first, std::uint64_t count)
{
    Impl &im = *impl_;
    const std::vector<ShardPlanEntry> &plan = im.plan;
    const CampaignConfig &cfg = im.cfg;
    fatal_if(first > plan.size() || count > plan.size() - first,
             "shard range [", first, ", ", first + count,
             ") exceeds the ", plan.size(), "-shard plan");

    // Re-derive each leased shard's stream: the master stream is
    // consumed once per plan entry, in ordinal order, exactly as
    // runCampaign's planning loop forks it — so a shard executed here
    // draws the same faults it would draw in-process.
    Rng master(cfg.seed);
    std::vector<ShardRecord> records;
    records.reserve(static_cast<std::size_t>(count));
    for (std::uint64_t i = 0; i < plan.size(); ++i) {
        if (i >= first + count)
            break;
        Rng stream = master.fork();
        if (i < first)
            continue;
        const ShardPlanEntry &e = plan[i];
        Shard sh;
        sh.ordinal = e.ordinal;
        sh.cell = e.cell;
        sh.node = e.node;
        sh.category = e.category;
        sh.samples = e.samples;
        sh.rng = stream;
        ShardOutput out;
        auto account = [&](const InjectionRecord &rec) {
            out.maskedCount += rec.masked ? 1 : 0;
            out.trials += 1;
            if (rec.numFaultyNeurons == 1 &&
                isDatapathCategory(sh.category))
                out.singleNeuronSamples.emplace_back(rec.maxAbsDelta,
                                                     !rec.masked);
        };
        runShardSamples(im.injector, im.correct, cfg, sh, im.scratch,
                        account);
        records.push_back(recordOf(sh, out));
    }
    return records;
}

std::vector<ShardRecord>
executeFixedShardRange(const Network &net, const Tensor &input,
                       const CorrectnessFn &correct,
                       const CampaignConfig &cfg, std::uint64_t first,
                       std::uint64_t count)
{
    FixedShardExecutor executor(net, input, correct, cfg);
    return executor.execute(first, count);
}

CampaignResult
runCampaign(const Network &net, const Tensor &input,
            const CorrectnessFn &correct, const CampaignConfig &cfg)
{
    auto wall_start = std::chrono::steady_clock::now();

    CampaignResult result;
    result.network = net.name();
    result.precision = net.precision();

    // Coordinator-side instruments.  Workers accumulate into private
    // WorkerSlots; everything is merged into the telemetry (and the
    // run manifest) after the fan-out.
    CampaignTelemetry tel;
    MetricSet coord_metrics;
    Timer &plan_timer = coord_metrics.timer("phase.plan");
    Timer &inject_timer = coord_metrics.timer("phase.inject");
    Timer &merge_timer = coord_metrics.timer("phase.merge");
    Timer &ckpt_timer = coord_metrics.timer("phase.checkpoint");
    Timer &fit_timer = coord_metrics.timer("phase.fit");
    ScopedTimer plan_scope(plan_timer); // setup + first plan

    // Also warms the MAC layers' precision-converted weight caches, a
    // precondition of concurrent Injector::inject calls.
    Injector injector(net, input, cfg.accel);

    std::vector<NodeId> nodes = net.macNodes();
    fatal_if(nodes.empty(), "network ", net.name(), " has no MAC layers");
    fatal_if(cfg.shardGrain <= 0, "campaign shardGrain must be > 0, got ",
             cfg.shardGrain);
    fatal_if(cfg.checkpointEverySec < 0.0,
             "campaign checkpointEverySec must be >= 0, got ",
             cfg.checkpointEverySec);
    fatal_if(cfg.targetHalfWidth < 0.0,
             "campaign targetHalfWidth must be >= 0, got ",
             cfg.targetHalfWidth);
    fatal_if(cfg.batchWidth < 1 || cfg.batchWidth > kMaxBatchLanes,
             "campaign batchWidth must be in [1, ", kMaxBatchLanes,
             "], got ", cfg.batchWidth);
    const bool adaptive = cfg.targetHalfWidth > 0.0;
    fatal_if(cfg.resultCacheEnabled && !cfg.resultCache &&
                 cfg.resultCacheMB <= 0,
             "campaign resultCacheMB must be > 0 when the result cache "
             "is enabled, got ", cfg.resultCacheMB);
    if (adaptive) {
        fatal_if(cfg.confidenceZ <= 0.0,
                 "campaign confidenceZ must be > 0, got ",
                 cfg.confidenceZ);
        fatal_if(cfg.minSamples <= 0,
                 "campaign minSamples must be > 0, got ", cfg.minSamples);
        fatal_if(cfg.maxSamplesPerCategory < cfg.minSamples,
                 "campaign maxSamplesPerCategory (",
                 cfg.maxSamplesPerCategory, ") must be >= minSamples (",
                 cfg.minSamples, ")");
    }

    // One fault-site memo table shared across workers and adaptive
    // rounds; a caller-supplied table extends the sharing across
    // campaigns.  The generation bump ages the previous campaign's
    // entries for eviction without invalidating them.
    std::shared_ptr<ResultCache> result_cache;
    if (cfg.resultCacheEnabled) {
        result_cache = cfg.resultCache;
        if (!result_cache)
            result_cache = std::make_shared<ResultCache>(
                static_cast<std::size_t>(cfg.resultCacheMB) << 20);
        result_cache->newGeneration();
        injector.attachResultCache(result_cache.get(),
                                   cfg.resultCacheSalt);
    }

    // Cell table: node-major, Table II category order.  GlobalControl
    // cells never draw samples (Prob_SWmask(global, r) = 0 by
    // definition); every other cell is schedulable.
    Rng master(cfg.seed);
    const auto &cats = allFFCategories();
    std::vector<CellSched> sched;
    for (NodeId node : nodes) {
        for (FFCategory cat : cats) {
            CellResult cell;
            cell.node = node;
            cell.category = cat;
            CellSched cs;
            if (cat == FFCategory::GlobalControl) {
                cell.masked.add(0, 1);
            } else {
                cs.eligible = true;
                cs.live = true;
            }
            result.cells.push_back(std::move(cell));
            sched.push_back(cs);
        }
    }
    if (adaptive) {
        // The master stream is consumed once per eligible cell, in
        // cell order, before any scheduling decision — so each cell's
        // chain (and through it every one of its shard streams) is a
        // function of (seed, cell index) alone, never of which other
        // cells retired when, and never of the thread count.
        for (CellSched &cs : sched)
            if (cs.eligible)
                cs.stream = master.fork();
    }

    // ----- Resume --------------------------------------------------
    const std::uint64_t cfg_hash = campaignConfigHash(net, input, cfg);
    result.configHash = cfg_hash;
    CampaignSnapshot resume_snap;
    std::unordered_map<std::uint64_t, const ShardRecord *> restored;
    if (!cfg.resumeFrom.empty()) {
        if (snapshotExists(cfg.resumeFrom)) {
            resume_snap = readSnapshot(cfg.resumeFrom);
            fatal_if(resume_snap.configHash != cfg_hash,
                     "snapshot ", cfg.resumeFrom, " was written by a "
                     "campaign with a different sample identity "
                     "(config hash mismatch)");
            for (const ShardRecord &r : resume_snap.shards)
                restored.emplace(r.ordinal, &r);
            if (cfg.progress)
                inform("campaign ", net.name(), ": resuming from ",
                       cfg.resumeFrom, " (", restored.size(),
                       " shards journaled)");
        } else if (cfg.progress) {
            inform("campaign ", net.name(), ": no snapshot at ",
                   cfg.resumeFrom, ", starting fresh");
        }
    } else if (cfg.resumeSnapshot) {
        // In-memory twin of the file resume — the sim/service
        // coordinator's merge path.  Same refusal discipline.
        resume_snap = *cfg.resumeSnapshot;
        fatal_if(resume_snap.configHash != cfg_hash,
                 "in-memory resume snapshot was produced by a campaign "
                 "with a different sample identity "
                 "(config hash mismatch)");
        for (const ShardRecord &r : resume_snap.shards)
            restored.emplace(r.ordinal, &r);
        if (cfg.progress)
            inform("campaign ", net.name(),
                   ": resuming from an in-memory snapshot (",
                   restored.size(), " shards journaled)");
    }
    tel.resumed = !restored.empty();
    tel.restoredShards = restored.size();

    // ----- Execution -----------------------------------------------
    std::vector<ShardRecord> archive; //!< completed shards, plan order

    /** ordinal → fingerprint sequence of each shard executed by THIS
     *  process (not journaled, so restored shards are absent).  Feeds
     *  the deterministic plan replay after the merge. */
    std::unordered_map<std::uint64_t, std::vector<std::uint64_t>> fp_log;
    std::uint64_t next_ordinal = 0;
    std::uint64_t executed_this_run = 0;
    bool stopped = false;

    std::atomic<std::uint64_t> injections_done{0};
    std::atomic<std::uint64_t> shards_done{0};
    // Progress/checkpoint throttles: one action at most per window,
    // claimed by CAS so exactly one worker acts per window.
    std::atomic<std::int64_t> last_log_ns{0};
    std::atomic<std::int64_t> last_ckpt_ns{0};
    std::mutex ckpt_mutex;
    const std::int64_t log_period_ns =
        secondsToNsSaturating(cfg.progressEverySec);
    const std::int64_t ckpt_period_ns =
        secondsToNsSaturating(cfg.checkpointEverySec);
    auto now_ns = [&wall_start] {
        return std::chrono::duration_cast<std::chrono::nanoseconds>(
                   std::chrono::steady_clock::now() - wall_start)
            .count();
    };

    ThreadPool pool(cfg.numThreads);
    // One slot per pool worker plus the reserved off-pool slot, so a
    // shard running on the submitting thread (or any foreign thread)
    // still accumulates into a private slot instead of aliasing
    // worker 0.
    std::vector<WorkerSlot> worker_slots(
        static_cast<std::size_t>(pool.slotCount()));

    // Execute one round of shards: restore what the snapshot already
    // holds, fan the remainder out over the pool (honouring the
    // stopAfterShards slice), and append everything completed to the
    // archive.  Returns true when the slice limit cut the round short.
    auto executeRound = [&](std::vector<Shard> &shards) -> bool {
        const std::size_t n = shards.size();
        std::vector<ShardOutput> outputs(n);
        std::vector<std::atomic<bool>> done(n);

        std::vector<std::size_t> pending;
        pending.reserve(n);
        for (std::size_t i = 0; i < n; ++i) {
            auto it = restored.find(shards[i].ordinal);
            if (it == restored.end()) {
                pending.push_back(i);
                continue;
            }
            const ShardRecord &r = *it->second;
            fatal_if(r.cell != shards[i].cell ||
                         r.trials !=
                             static_cast<std::uint64_t>(shards[i].samples),
                     "snapshot shard ", r.ordinal,
                     " does not match the replayed shard plan");
            outputs[i].maskedCount = r.maskedCount;
            outputs[i].trials = r.trials;
            outputs[i].singleNeuronSamples = r.samples;
            done[i].store(true, std::memory_order_relaxed);
        }

        bool stop_here = false;
        if (cfg.stopAfterShards > 0) {
            std::uint64_t left =
                cfg.stopAfterShards > executed_this_run
                    ? cfg.stopAfterShards - executed_this_run
                    : 0;
            if (pending.size() > left) {
                pending.resize(static_cast<std::size_t>(left));
                stop_here = true;
            }
        }

        // Snapshot the completed shards: everything already archived
        // (previous rounds) plus this round's done shards.  Runs on a
        // worker mid-round (throttled) and on the submitting thread
        // at round/stop boundaries; the mutex serialises writers (and
        // guards the checkpoint telemetry they share).
        auto writeCheckpoint = [&] {
            std::lock_guard<std::mutex> lock(ckpt_mutex);
            ScopedTimer span(ckpt_timer);
            CampaignSnapshot snap;
            snap.configHash = cfg_hash;
            snap.shards = archive;
            for (std::size_t i = 0; i < n; ++i)
                if (done[i].load(std::memory_order_acquire))
                    snap.shards.push_back(recordOf(shards[i],
                                                   outputs[i]));
            CheckpointEvent ev;
            ev.shardsJournaled = snap.shards.size();
            ev.bytes = writeSnapshot(cfg.checkpointPath, snap);
            ev.atSeconds = static_cast<double>(now_ns()) * 1e-9;
            tel.checkpoints.push_back(ev);
            coord_metrics.counter("checkpoint.writes").add();
            coord_metrics.counter("checkpoint.bytes").add(ev.bytes);
        };

        ScopedTimer inject_scope(inject_timer);
        pool.forEachOf(pending, [&](std::size_t i) {
            // One engine scratch per worker thread: its incremental
            // engine, batched lane planes, and record buffer are
            // reused across every shard the worker runs, keeping the
            // hot loop allocation-free at steady state.
            thread_local ShardScratch scratch;
            WorkerSlot &slot =
                worker_slots[static_cast<std::size_t>(pool.callerSlot())];
            Shard &sh = shards[i];
            ShardOutput &out = outputs[i];
            auto account = [&](const InjectionRecord &rec) {
                out.maskedCount += rec.masked ? 1 : 0;
                out.trials += 1;
                // Which probes hit is interleaving-dependent on a
                // shared table, so no live hit/miss counters here (the
                // manifest must stay deterministic); the fingerprint
                // log feeds the deterministic plan replay instead.
                if (rec.cacheEligible)
                    out.fingerprints.push_back(rec.fingerprint);
                slot.metrics
                    .counter(rec.masked ? "inject.masked"
                                        : "inject.unmasked")
                    .add();
                if (rec.numFaultyNeurons == 1 &&
                    isDatapathCategory(sh.category)) {
                    out.singleNeuronSamples.emplace_back(
                        rec.maxAbsDelta, !rec.masked);
                    slot.metrics
                        .histogram("inject.abs_delta",
                                   deltaHistogramEdges())
                        .add(rec.maxAbsDelta);
                }
            };
            runShardSamples(injector, correct, cfg, sh, scratch,
                            account);
            slot.shards += 1;
            slot.injections += out.trials;
            if (cfg.incremental) {
                // The scratch is thread-local and campaign-scoped
                // (the pool's workers are fresh threads), so its
                // cumulative totals ARE this worker's totals;
                // overwrite, don't add.
                slot.engine = scratch.engine.totals();
                if (cfg.batchWidth > 1)
                    slot.batched = scratch.batched->totals();
            }
            done[i].store(true, std::memory_order_release);

            std::uint64_t inj =
                injections_done.fetch_add(out.trials,
                                          std::memory_order_relaxed) +
                out.trials;
            std::uint64_t nth =
                shards_done.fetch_add(1, std::memory_order_relaxed) + 1;
            std::int64_t now = now_ns();
            if (cfg.progress) {
                std::int64_t prev =
                    last_log_ns.load(std::memory_order_relaxed);
                if (now - prev >= log_period_ns &&
                    last_log_ns.compare_exchange_strong(
                        prev, now, std::memory_order_relaxed)) {
                    inform("campaign ", net.name(), ": ", nth,
                           " shards done this run, ", inj,
                           " injections");
                }
            }
            if (!cfg.checkpointPath.empty()) {
                std::int64_t prev =
                    last_ckpt_ns.load(std::memory_order_relaxed);
                if (now - prev >= ckpt_period_ns &&
                    last_ckpt_ns.compare_exchange_strong(
                        prev, now, std::memory_order_relaxed)) {
                    writeCheckpoint();
                }
            }
        });
        inject_scope.stop();
        executed_this_run += pending.size();

        for (std::size_t i = 0; i < n; ++i) {
            if (!done[i].load(std::memory_order_acquire))
                continue;
            archive.push_back(recordOf(shards[i], outputs[i]));
            if (result_cache && restored.find(shards[i].ordinal) ==
                                    restored.end())
                fp_log.emplace(shards[i].ordinal,
                               std::move(outputs[i].fingerprints));
        }
        return stop_here;
    };

    // Next-round quota of a live cell: aim at the total sample count
    // that puts the cell's half-width on target (Wald inversion at
    // the Wilson-centre estimate), floored at one shard and capped
    // both geometrically (overshoot guard while the estimate is
    // noisy) and by maxSamplesPerCategory.  Deterministic: depends
    // only on the cell's merged counters.
    auto nextQuota = [&](const CellSched &cs) -> int {
        const double z = cfg.confidenceZ;
        const double z2 = z * z;
        double pw = (static_cast<double>(cs.successes) + z2 / 2.0) /
                    (static_cast<double>(cs.trials) + z2);
        std::uint64_t need =
            samplesForHalfWidth(pw, cfg.targetHalfWidth, z);
        std::uint64_t more = need > cs.trials ? need - cs.trials : 0;
        const auto grain = static_cast<std::uint64_t>(cfg.shardGrain);
        more = std::max(more, grain);
        more = std::min(more, std::max(grain, 3 * cs.trials));
        const auto cap =
            static_cast<std::uint64_t>(cfg.maxSamplesPerCategory);
        more = std::min(more, cap - cs.trials);
        return static_cast<int>(more);
    };

    // Slice a cell's round quota into shards of at most shardGrain
    // samples, forking each shard's stream from `chain` in order.
    auto planCell = [&](std::vector<Shard> &shards, std::size_t cell,
                        int quota, Rng &chain) {
        for (int s = 0; s < quota; s += cfg.shardGrain) {
            Shard sh;
            sh.ordinal = next_ordinal++;
            sh.cell = cell;
            sh.node = result.cells[cell].node;
            sh.category = result.cells[cell].category;
            sh.samples = std::min(cfg.shardGrain, quota - s);
            sh.rng = chain.fork();
            shards.push_back(std::move(sh));
        }
    };

    auto countCells = [&](auto pred) {
        std::uint64_t n = 0;
        for (const CellSched &cs : sched)
            if (pred(cs))
                ++n;
        return n;
    };

    if (!adaptive) {
        // Fixed schedule: the whole plan is one round.  The master
        // stream is consumed only by the forks, in plan order, so the
        // streams each sample draws from are a function of
        // (seed, shardGrain, samplesPerCategory) alone.
        std::vector<Shard> shards;
        for (std::size_t cell = 0; cell < sched.size(); ++cell)
            if (sched[cell].eligible)
                planCell(shards, cell, cfg.samplesPerCategory, master);
        result.rounds = 1;
        RoundTelemetry rt;
        rt.shardsPlanned = shards.size();
        rt.cellsLive = countCells(
            [](const CellSched &cs) { return cs.eligible; });
        plan_scope.stop();
        stopped = executeRound(shards);
        rt.cellsRetiredAfter = stopped ? 0 : rt.cellsLive;
        tel.rounds.push_back(rt);
    } else {
        // Adaptive schedule: rounds of shards for the live cells,
        // merged at a barrier; a cell retires once its Wilson
        // half-width meets the target (or at the cap).
        plan_scope.stop();
        for (;;) {
            std::vector<Shard> shards;
            RoundTelemetry rt;
            {
                ScopedTimer plan_round(plan_timer);
                for (std::size_t cell = 0; cell < sched.size();
                     ++cell) {
                    CellSched &cs = sched[cell];
                    if (!cs.live)
                        continue;
                    int quota = cs.trials == 0
                                    ? cfg.minSamples
                                    : nextQuota(cs);
                    planCell(shards, cell, quota, cs.stream);
                }
            }
            if (shards.empty())
                break;
            result.rounds += 1;
            rt.shardsPlanned = shards.size();
            rt.cellsLive = countCells(
                [](const CellSched &cs) { return cs.live; });
            stopped = executeRound(shards);
            if (stopped) {
                rt.cellsRetiredAfter = countCells([](const CellSched
                                                         &cs) {
                    return cs.eligible && !cs.live;
                });
                tel.rounds.push_back(rt);
                break;
            }

            // Merge the round into the scheduling counters (the round
            // is fully archived, so its records are the archive tail)
            // and retire cells that reached the target or the cap.
            for (auto it = archive.end() -
                           static_cast<std::ptrdiff_t>(shards.size());
                 it != archive.end(); ++it) {
                CellSched &cs = sched[it->cell];
                cs.successes += it->maskedCount;
                cs.trials += it->trials;
            }
            for (CellSched &cs : sched) {
                if (!cs.live)
                    continue;
                if (cs.trials >=
                    static_cast<std::uint64_t>(
                        cfg.maxSamplesPerCategory)) {
                    cs.live = false;
                    continue;
                }
                if (cs.trials < static_cast<std::uint64_t>(
                                    cfg.minSamples))
                    continue;
                Proportion p;
                p.add(cs.successes, cs.trials);
                if (p.halfWidth(cfg.confidenceZ) <=
                    cfg.targetHalfWidth)
                    cs.live = false;
            }
            rt.cellsRetiredAfter = countCells(
                [](const CellSched &cs) {
                    return cs.eligible && !cs.live;
                });
            tel.rounds.push_back(rt);
        }
    }
    result.complete = !stopped;

    // Deterministic merge: shard-plan (ordinal) order, integer
    // accumulators.  Restored and freshly executed shards are
    // indistinguishable here — the source of resume bit-identity.
    {
        ScopedTimer merge_scope(merge_timer);
        for (const ShardRecord &r : archive) {
            result.cells[r.cell].masked.add(r.maskedCount, r.trials);
            result.totalInjections += r.trials;
            result.singleNeuronSamples.insert(
                result.singleNeuronSamples.end(), r.samples.begin(),
                r.samples.end());
        }
    }

    // Final snapshot: mandatory after a stop (the remainder of the
    // plan lives only here) and refreshed on completion so a re-run
    // with resumeFrom = checkpointPath restores instantly.
    if (!cfg.checkpointPath.empty()) {
        ScopedTimer ckpt_scope(ckpt_timer);
        CampaignSnapshot snap;
        snap.configHash = cfg_hash;
        snap.shards = archive;
        CheckpointEvent ev;
        ev.shardsJournaled = snap.shards.size();
        ev.bytes = writeSnapshot(cfg.checkpointPath, snap);
        ev.atSeconds = static_cast<double>(now_ns()) * 1e-9;
        ev.final_ = true;
        tel.checkpoints.push_back(ev);
        coord_metrics.counter("checkpoint.writes").add();
        coord_metrics.counter("checkpoint.bytes").add(ev.bytes);
    } else if (stopped && cfg.progress) {
        warn("campaign ", net.name(), " stopped after ",
             executed_this_run,
             " shards with no checkpointPath; the partial work is "
             "not recoverable");
    }

    // Per-layer timing and FIT inputs from the merged cells (stored
    // node-major in category order by the planning loop above).  For
    // a partial (stopped) run these are provisional: cells whose
    // shards were cut off contribute their merged prefix only.
    ScopedTimer fit_scope(fit_timer);
    std::size_t cell_idx = 0;
    for (NodeId node : nodes) {
        EngineLayer el = timingLayer(net, node, injector.goldenActs());
        LayerTiming timing = estimateTiming(cfg.accel, el);

        LayerFitInput lfi;
        lfi.execTime = static_cast<double>(timing.totalCycles);
        for (std::size_t c = 0; c < cats.size(); ++c) {
            const CellResult &cell = result.cells[cell_idx++];
            lfi.stats[c].probSwMask =
                cats[c] == FFCategory::GlobalControl
                    ? 0.0
                    : cell.masked.mean();
            lfi.stats[c].probInactive = cfg.activeness.probInactive(
                cats[c], net.precision(), timing);
        }
        result.layerInputs.push_back(lfi);
    }

    result.fit = acceleratorFit(cfg.fit, result.layerInputs);
    FitParams protected_params = cfg.fit;
    protected_params.protectGlobal = true;
    result.fitGlobalProtected =
        acceleratorFit(protected_params, result.layerInputs);
    fit_scope.stop();

    // Telemetry assembly: fold the per-worker slots (fan-out joins
    // above are the happens-before edge) and the coordinator's own
    // instruments into one merged set for the manifest.
    tel.threads = pool.size();
    tel.topology = cfg.topology;
    tel.incremental = cfg.incremental;
    tel.batchWidth =
        cfg.incremental && cfg.batchWidth > 1 ? cfg.batchWidth : 1;
    tel.executedShards = executed_this_run;
    tel.executedInjections =
        injections_done.load(std::memory_order_relaxed);
    for (std::size_t wi = 0; wi < worker_slots.size(); ++wi) {
        const WorkerSlot &slot = worker_slots[wi];
        // The last slot is the reserved off-pool slot (callerSlot());
        // its counts fold into the totals but it is not a worker.
        if (wi < static_cast<std::size_t>(pool.size())) {
            WorkerTelemetry wt;
            wt.shards = slot.shards;
            wt.injections = slot.injections;
            wt.engine = slot.engine;
            wt.batched = slot.batched;
            tel.workers.push_back(wt);
        }
        tel.engine.mergeFrom(slot.engine);
        tel.batched.mergeFrom(slot.batched);
        tel.metrics.mergeFrom(slot.metrics);
    }
    // Result-cache observability via plan replay: drive the archived
    // fingerprint sequences, in shard-plan order, through a fresh
    // sequential table of the same capacity.  The replayed counters
    // are a pure function of the shard plan — byte-identical across
    // thread counts — which the live shared table's own counters
    // (exposed through ResultCache::stats() for benchmarks) are not.
    if (result_cache) {
        ResultCacheTelemetry &rct = tel.resultCache;
        rct.enabled = true;
        rct.capacityBytes = result_cache->capacityBytes();
        rct.entries = result_cache->entryCount();
        rct.shards = ResultCache::kShards;
        rct.replayComplete = true;
        ResultCache replay(result_cache->capacityBytes());
        for (const ShardRecord &r : archive) {
            auto it = fp_log.find(r.ordinal);
            if (it == fp_log.end()) {
                // Restored from a snapshot: the fingerprints were
                // never journaled (deliberately — a snapshot must not
                // pin cache geometry), so the replay is partial.
                rct.replayComplete = false;
                continue;
            }
            rct.replayedShards += 1;
            for (std::uint64_t fp : it->second) {
                CachedOutcome memo;
                if (!replay.probe(fp, memo))
                    replay.store(fp, memo);
            }
        }
        const ResultCacheStats rs = replay.stats();
        rct.hits = rs.hits;
        rct.misses = rs.misses;
        rct.stores = rs.stores;
        rct.evictions = rs.evictions;
    }

    coord_metrics.timer("phase.total").addNs(now_ns());
    tel.metrics.mergeFrom(coord_metrics);
    if (cfg.serviceMetrics)
        tel.metrics.mergeFrom(*cfg.serviceMetrics);

    if (!cfg.reportPath.empty())
        writeRunManifest(cfg.reportPath, net, cfg, cfg_hash, result, tel);

    if (cfg.progress) {
        double wall = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - wall_start)
                          .count();
        std::uint64_t executed_inj =
            injections_done.load(std::memory_order_relaxed);
        double rate = wall > 0.0
            ? static_cast<double>(executed_inj) / wall
            : 0.0;
        inform("campaign ", net.name(), ": ", result.totalInjections,
               " injections merged (", executed_inj,
               " run here) in ", wall, " s (", rate, " inj/s, ",
               pool.size(), " threads, ", result.rounds, " rounds",
               result.complete ? "" : ", PARTIAL", ")");
    }
    return result;
}

} // namespace fidelity
