#include "core/campaign.hh"

#include "accel/nvdla_fi.hh"
#include "nn/conv.hh"
#include "nn/fc.hh"
#include "nn/matmul.hh"
#include "sim/logging.hh"

namespace fidelity
{

EngineLayer
timingLayer(const Network &net, NodeId node,
            const std::vector<Tensor> &acts)
{
    const Layer &l = net.layer(node);
    auto ins = net.gatherInputs(node, acts);

    if (const auto *conv = dynamic_cast<const Conv2D *>(&l)) {
        const ConvSpec &spec = conv->spec();
        if (spec.groups == 1)
            return engineLayerFromConv(*conv, *ins[0]);
        // Grouped/depthwise: describe the geometry, overriding the
        // per-neuron reduction with the per-group depth.
        EngineLayer el;
        el.kind = EngineLayer::Kind::Conv;
        el.precision = conv->precision();
        el.inC = spec.inC;
        el.inH = ins[0]->h();
        el.inW = ins[0]->w();
        el.outC = spec.outC;
        el.outH = conv->outDim(ins[0]->h(), spec.kh);
        el.outW = conv->outDim(ins[0]->w(), spec.kw);
        el.kh = spec.kh;
        el.kw = spec.kw;
        el.stride = spec.stride;
        el.pad = spec.pad;
        el.dilation = spec.dilation;
        el.batch = ins[0]->n();
        el.weights = conv->weightData();
        el.bias = conv->biasData();
        el.redOverride = (spec.inC / spec.groups) * spec.kh * spec.kw;
        return el;
    }
    if (const auto *fc = dynamic_cast<const FC *>(&l))
        return engineLayerFromFC(*fc, *ins[0]);
    if (const auto *mm = dynamic_cast<const MatMulAB *>(&l))
        return engineLayerFromMatMul(*mm, *ins[0], *ins[1]);
    panic("node ", node, " is not a MAC layer");
}

CampaignResult
runCampaign(const Network &net, const Tensor &input,
            const CorrectnessFn &correct, const CampaignConfig &cfg)
{
    CampaignResult result;
    result.network = net.name();
    result.precision = net.precision();

    Injector injector(net, input, cfg.accel);
    Rng rng(cfg.seed);

    std::vector<NodeId> nodes = net.macNodes();
    fatal_if(nodes.empty(), "network ", net.name(), " has no MAC layers");

    const auto &cats = allFFCategories();
    for (NodeId node : nodes) {
        EngineLayer el = timingLayer(net, node, injector.goldenActs());
        LayerTiming timing = estimateTiming(cfg.accel, el);

        LayerFitInput lfi;
        lfi.execTime = static_cast<double>(timing.totalCycles);

        for (std::size_t c = 0; c < cats.size(); ++c) {
            FFCategory cat = cats[c];
            CellResult cell;
            cell.node = node;
            cell.category = cat;

            if (cat == FFCategory::GlobalControl) {
                // By definition Prob_SWmask(global, r) = 0.
                cell.masked.add(0, 1);
            } else {
                for (int s = 0; s < cfg.samplesPerCategory; ++s) {
                    InjectionRecord rec =
                        injector.inject(node, cat, correct, rng,
                                        cfg.outputClampAbs);
                    cell.masked.add(rec.masked);
                    result.totalInjections += 1;
                    if (rec.numFaultyNeurons == 1 &&
                        isDatapathCategory(cat)) {
                        result.singleNeuronSamples.emplace_back(
                            rec.maxAbsDelta, !rec.masked);
                    }
                }
            }

            lfi.stats[c].probSwMask =
                cat == FFCategory::GlobalControl ? 0.0
                                                 : cell.masked.mean();
            lfi.stats[c].probInactive = cfg.activeness.probInactive(
                cat, net.precision(), timing);
            result.cells.push_back(std::move(cell));
        }
        result.layerInputs.push_back(lfi);
    }

    result.fit = acceleratorFit(cfg.fit, result.layerInputs);
    FitParams protected_params = cfg.fit;
    protected_params.protectGlobal = true;
    result.fitGlobalProtected =
        acceleratorFit(protected_params, result.layerInputs);
    return result;
}

} // namespace fidelity
