#include "core/campaign.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <utility>

#include "accel/nvdla_fi.hh"
#include "nn/conv.hh"
#include "nn/fc.hh"
#include "nn/matmul.hh"
#include "sim/logging.hh"
#include "sim/thread_pool.hh"

namespace fidelity
{

EngineLayer
timingLayer(const Network &net, NodeId node,
            const std::vector<Tensor> &acts)
{
    const Layer &l = net.layer(node);
    auto ins = net.gatherInputs(node, acts);

    if (const auto *conv = dynamic_cast<const Conv2D *>(&l)) {
        const ConvSpec &spec = conv->spec();
        if (spec.groups == 1)
            return engineLayerFromConv(*conv, *ins[0]);
        // Grouped/depthwise: describe the geometry, overriding the
        // per-neuron reduction with the per-group depth.
        EngineLayer el;
        el.kind = EngineLayer::Kind::Conv;
        el.precision = conv->precision();
        el.inC = spec.inC;
        el.inH = ins[0]->h();
        el.inW = ins[0]->w();
        el.outC = spec.outC;
        el.outH = conv->outDim(ins[0]->h(), spec.kh);
        el.outW = conv->outDim(ins[0]->w(), spec.kw);
        el.kh = spec.kh;
        el.kw = spec.kw;
        el.stride = spec.stride;
        el.pad = spec.pad;
        el.dilation = spec.dilation;
        el.batch = ins[0]->n();
        el.weights = conv->weightData();
        el.bias = conv->biasData();
        el.redOverride = (spec.inC / spec.groups) * spec.kh * spec.kw;
        return el;
    }
    if (const auto *fc = dynamic_cast<const FC *>(&l))
        return engineLayerFromFC(*fc, *ins[0]);
    if (const auto *mm = dynamic_cast<const MatMulAB *>(&l))
        return engineLayerFromMatMul(*mm, *ins[0], *ins[1]);
    panic("node ", node, " is not a MAC layer");
}

namespace
{

/** One unit of the injection fan-out: a run of samples of one
 *  (layer, category) cell with its own forked RNG stream. */
struct Shard
{
    std::size_t cell = 0; //!< index into CampaignResult::cells
    NodeId node = 0;
    FFCategory category = FFCategory::OutputPsum;
    int samples = 0;
    Rng rng;
};

/** Private accumulators of one shard, merged in shard-plan order. */
struct ShardOutput
{
    std::uint64_t maskedCount = 0;
    std::uint64_t trials = 0;
    std::vector<std::pair<double, bool>> singleNeuronSamples;
};

} // namespace

CampaignResult
runCampaign(const Network &net, const Tensor &input,
            const CorrectnessFn &correct, const CampaignConfig &cfg)
{
    auto wall_start = std::chrono::steady_clock::now();

    CampaignResult result;
    result.network = net.name();
    result.precision = net.precision();

    // Also warms the MAC layers' precision-converted weight caches, a
    // precondition of concurrent Injector::inject calls.
    Injector injector(net, input, cfg.accel);

    std::vector<NodeId> nodes = net.macNodes();
    fatal_if(nodes.empty(), "network ", net.name(), " has no MAC layers");
    fatal_if(cfg.shardGrain <= 0, "campaign shardGrain must be > 0, got ",
             cfg.shardGrain);

    // Shard plan: node-major, Table II category order, sample runs of
    // at most shardGrain.  The master stream is consumed only by the
    // forks, in plan order, so the streams each sample draws from are
    // a function of (seed, shardGrain) alone — never the thread count.
    Rng master(cfg.seed);
    const auto &cats = allFFCategories();
    std::vector<Shard> shards;
    for (NodeId node : nodes) {
        for (FFCategory cat : cats) {
            std::size_t cell_idx = result.cells.size();
            CellResult cell;
            cell.node = node;
            cell.category = cat;
            if (cat == FFCategory::GlobalControl) {
                // By definition Prob_SWmask(global, r) = 0.
                cell.masked.add(0, 1);
                result.cells.push_back(std::move(cell));
                continue;
            }
            result.cells.push_back(std::move(cell));
            for (int s = 0; s < cfg.samplesPerCategory;
                 s += cfg.shardGrain) {
                Shard sh;
                sh.cell = cell_idx;
                sh.node = node;
                sh.category = cat;
                sh.samples =
                    std::min(cfg.shardGrain, cfg.samplesPerCategory - s);
                sh.rng = master.fork();
                shards.push_back(std::move(sh));
            }
        }
    }

    // Fan the shards out over the pool.  Workers only read the shared
    // injector/network state and write their own ShardOutput slot, so
    // no locking is needed on the result path.
    std::vector<ShardOutput> outputs(shards.size());
    std::atomic<std::uint64_t> injections_done{0};
    std::atomic<std::size_t> shards_done{0};
    // Progress throttle: one line at most every progressEverySec,
    // claimed by CAS so exactly one worker logs per window.
    std::atomic<std::int64_t> last_log_ns{0};
    const std::int64_t log_period_ns = static_cast<std::int64_t>(
        std::max(cfg.progressEverySec, 0.0) * 1e9);
    ThreadPool pool(cfg.numThreads);
    pool.forEach(shards.size(), [&](std::size_t i) {
        // One incremental engine per worker thread: its scratch
        // activations and replacement buffer are reused across every
        // injection the worker runs, keeping the hot loop
        // allocation-free at steady state.
        thread_local IncrementalEngine worker_engine;
        IncrementalEngine *engine = nullptr;
        if (cfg.incremental) {
            IncrementalOptions opt;
            opt.denseThreshold = cfg.incrementalDenseThreshold;
            worker_engine.setOptions(opt);
            engine = &worker_engine;
        }
        Shard &sh = shards[i];
        ShardOutput &out = outputs[i];
        for (int s = 0; s < sh.samples; ++s) {
            InjectionRecord rec = injector.inject(
                sh.node, sh.category, correct, sh.rng,
                cfg.outputClampAbs, engine);
            out.maskedCount += rec.masked ? 1 : 0;
            out.trials += 1;
            if (rec.numFaultyNeurons == 1 &&
                isDatapathCategory(sh.category)) {
                out.singleNeuronSamples.emplace_back(rec.maxAbsDelta,
                                                     !rec.masked);
            }
        }
        std::uint64_t inj =
            injections_done.fetch_add(out.trials,
                                      std::memory_order_relaxed) +
            out.trials;
        std::size_t done =
            shards_done.fetch_add(1, std::memory_order_relaxed) + 1;
        if (cfg.progress && done < shards.size()) {
            std::int64_t now = std::chrono::duration_cast<
                                   std::chrono::nanoseconds>(
                                   std::chrono::steady_clock::now() -
                                   wall_start)
                                   .count();
            std::int64_t prev =
                last_log_ns.load(std::memory_order_relaxed);
            if (now - prev >= log_period_ns &&
                last_log_ns.compare_exchange_strong(
                    prev, now, std::memory_order_relaxed)) {
                inform("campaign ", net.name(), ": shard ", done, "/",
                       shards.size(), " done, ", inj, " injections");
            }
        }
    });

    // Deterministic merge: shard-plan order, integer accumulators.
    for (std::size_t i = 0; i < shards.size(); ++i) {
        const ShardOutput &out = outputs[i];
        result.cells[shards[i].cell].masked.add(out.maskedCount,
                                                out.trials);
        result.totalInjections += out.trials;
        result.singleNeuronSamples.insert(
            result.singleNeuronSamples.end(),
            out.singleNeuronSamples.begin(),
            out.singleNeuronSamples.end());
    }

    // Per-layer timing and FIT inputs from the merged cells (stored
    // node-major in category order by the planning loop above).
    std::size_t cell_idx = 0;
    for (NodeId node : nodes) {
        EngineLayer el = timingLayer(net, node, injector.goldenActs());
        LayerTiming timing = estimateTiming(cfg.accel, el);

        LayerFitInput lfi;
        lfi.execTime = static_cast<double>(timing.totalCycles);
        for (std::size_t c = 0; c < cats.size(); ++c) {
            const CellResult &cell = result.cells[cell_idx++];
            lfi.stats[c].probSwMask =
                cats[c] == FFCategory::GlobalControl
                    ? 0.0
                    : cell.masked.mean();
            lfi.stats[c].probInactive = cfg.activeness.probInactive(
                cats[c], net.precision(), timing);
        }
        result.layerInputs.push_back(lfi);
    }

    result.fit = acceleratorFit(cfg.fit, result.layerInputs);
    FitParams protected_params = cfg.fit;
    protected_params.protectGlobal = true;
    result.fitGlobalProtected =
        acceleratorFit(protected_params, result.layerInputs);

    if (cfg.progress) {
        double wall = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - wall_start)
                          .count();
        double rate = wall > 0.0
            ? static_cast<double>(result.totalInjections) / wall
            : 0.0;
        inform("campaign ", net.name(), ": ", result.totalInjections,
               " injections in ", wall, " s (", rate, " inj/s, ",
               pool.size(), " threads, ", shards.size(), " shards)");
    }
    return result;
}

} // namespace fidelity
