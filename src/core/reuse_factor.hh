/**
 * @file
 * Reuse Factor Analysis (Algorithm 1 of the paper).
 *
 * Given a few pieces of microarchitectural information about a target
 * flip-flop — its variable type and pipeline stage, how many cycles it
 * holds one value, which compute units consume the value on each loop,
 * for how many cycles each unit uses it, and which output neurons each
 * unit produces on each of those cycles — derive the reuse factor (the
 * maximum number of faulty output neurons a single-cycle bit flip can
 * create), the relative locations of all possible faulty neurons, and
 * the order in which they are generated.
 */

#ifndef FIDELITY_CORE_REUSE_FACTOR_HH
#define FIDELITY_CORE_REUSE_FACTOR_HH

#include <vector>

#include "sim/rng.hh"
#include "tensor/tensor.hh"

namespace fidelity
{

/** Variable type stored by a datapath flip-flop. */
enum class VarType
{
    Input,
    Weight,
    Bias,
    PartialSum,
    Output
};

/** Coarse pipeline position of a flip-flop (Table I rows). */
enum class PipelineStage
{
    BeforeBuffer, //!< before a level of on-chip memory
    AfterBuffer,  //!< between the L1 buffer and the MAC units
    InsideMac,    //!< inside a MAC unit
    AfterMac      //!< after the MAC units
};

const char *varTypeName(VarType t);
const char *pipelineStageName(PipelineStage s);

/**
 * How one compute unit uses the target FF's value during one loop
 * (Algorithm 1 inputs 3-5 for a single (m, l) pair).
 */
struct ComputeUnitUse
{
    int unit = 0; //!< compute-unit identifier (m)

    /**
     * neurons[y] = relative (batch, height, width, channel) indices of
     * the output neurons this unit computes in its yth cycle of using
     * the value; neurons.size() is in_effect_cycles(m).
     */
    std::vector<std::vector<NeuronIndex>> neurons;
};

/** Algorithm 1's full input set for one target flip-flop. */
struct FFDescriptor
{
    VarType type = VarType::Input;
    PipelineStage stage = PipelineStage::AfterBuffer;

    /** Max cycles the FF holds one value (input 2). */
    int ffValueCycles = 1;

    /** loops[l] = M_l, the compute units using the value at loop l. */
    std::vector<std::vector<ComputeUnitUse>> loops;
};

/** A faulty neuron with the loop timestamp it was generated at. */
struct TimedNeuron
{
    NeuronIndex neuron;
    int timestamp = 0; //!< l of the first generation of this neuron

    bool operator==(const TimedNeuron &o) const = default;
};

/** Output of Algorithm 1. */
struct RFResult
{
    int rf = 0; //!< number of unique faulty neurons

    /** Unique faulty neurons in generation order. */
    std::vector<TimedNeuron> faultyNeurons;
};

/** Run Algorithm 1 on one descriptor. */
RFResult analyzeReuseFactor(const FFDescriptor &ff);

/**
 * Model a random injection cycle: pick one loop phase p uniformly in
 * [0, ffValueCycles) and keep the faulty neurons whose timestamp is at
 * least p (Sec. III-B1).
 */
std::vector<NeuronIndex> sampleFaultyNeurons(const FFDescriptor &ff,
                                             const RFResult &rf, Rng &rng);

} // namespace fidelity

#endif // FIDELITY_CORE_REUSE_FACTOR_HH
