#include "core/reuse_factor.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace fidelity
{

const char *
varTypeName(VarType t)
{
    switch (t) {
      case VarType::Input:
        return "Input";
      case VarType::Weight:
        return "Weight";
      case VarType::Bias:
        return "Bias";
      case VarType::PartialSum:
        return "PartialSum";
      case VarType::Output:
        return "Output";
    }
    panic("unknown VarType");
}

const char *
pipelineStageName(PipelineStage s)
{
    switch (s) {
      case PipelineStage::BeforeBuffer:
        return "BeforeBuffer";
      case PipelineStage::AfterBuffer:
        return "AfterBuffer";
      case PipelineStage::InsideMac:
        return "InsideMac";
      case PipelineStage::AfterMac:
        return "AfterMac";
    }
    panic("unknown PipelineStage");
}

RFResult
analyzeReuseFactor(const FFDescriptor &ff)
{
    fatal_if(ff.ffValueCycles <= 0,
             "FF_value_cycles must be positive");
    fatal_if(static_cast<int>(ff.loops.size()) != ff.ffValueCycles,
             "descriptor must provide M_l for every loop: got ",
             ff.loops.size(), " loops for FF_value_cycles = ",
             ff.ffValueCycles);

    RFResult result;
    // Algorithm 1: iterate loops l, compute units m in M_l, cycles y in
    // [0, in_effect_cycles(m)), and the neuron set of each cycle;
    // insert unique (neuron, l) pairs in generation order.
    for (int l = 0; l < ff.ffValueCycles; ++l) {
        for (const ComputeUnitUse &use : ff.loops[l]) {
            for (const auto &cycle_neurons : use.neurons) {
                for (const NeuronIndex &n : cycle_neurons) {
                    auto dup = std::find_if(
                        result.faultyNeurons.begin(),
                        result.faultyNeurons.end(),
                        [&](const TimedNeuron &t) {
                            return t.neuron == n;
                        });
                    if (dup == result.faultyNeurons.end())
                        result.faultyNeurons.push_back({n, l});
                }
            }
        }
    }
    result.rf = static_cast<int>(result.faultyNeurons.size());
    return result;
}

std::vector<NeuronIndex>
sampleFaultyNeurons(const FFDescriptor &ff, const RFResult &rf, Rng &rng)
{
    int p = static_cast<int>(rng.below(
        static_cast<std::uint32_t>(ff.ffValueCycles)));
    std::vector<NeuronIndex> out;
    for (const TimedNeuron &t : rf.faultyNeurons)
        if (t.timestamp >= p)
            out.push_back(t.neuron);
    return out;
}

} // namespace fidelity
