#include "core/fit.hh"

#include "sim/logging.hh"

namespace fidelity
{

double
FitParams::rawFitTotal() const
{
    // One flip-flop is one bit of state; 1 MB = 8 * 2^20 bits.
    return rawFitPerMb * nff / (8.0 * 1024.0 * 1024.0);
}

FitBreakdown
acceleratorFit(const FitParams &params,
               const std::vector<LayerFitInput> &layers)
{
    fatal_if(layers.empty(), "Eq. 2 needs at least one layer");

    double total_time = 0.0;
    for (const LayerFitInput &l : layers) {
        fatal_if(l.execTime <= 0.0, "layer exec_time must be positive");
        total_time += l.execTime;
    }

    FitBreakdown out;
    const double raw_total = params.rawFitTotal();
    const auto &cats = allFFCategories();
    for (const LayerFitInput &l : layers) {
        double weight = l.execTime / total_time;
        for (std::size_t c = 0; c < cats.size(); ++c) {
            FFCategory cat = cats[c];
            if (params.protectGlobal && cat == FFCategory::GlobalControl)
                continue;
            const CategoryLayerStats &s = l.stats[c];
            double contrib = raw_total * weight *
                             ffCategoryShare(cat) *
                             (1.0 - s.probInactive) *
                             (1.0 - s.probSwMask);
            if (cat == FFCategory::GlobalControl)
                out.global += contrib;
            else if (cat == FFCategory::LocalControl)
                out.local += contrib;
            else
                out.datapath += contrib;
        }
    }
    return out;
}

void
writeFitJson(JsonWriter &w, const FitBreakdown &fit)
{
    w.beginObject();
    w.field("datapath", fit.datapath);
    w.field("local", fit.local);
    w.field("global", fit.global);
    w.field("total", fit.total());
    w.endObject();
}

} // namespace fidelity
