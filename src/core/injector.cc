#include "core/injector.hh"

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <cstdint>
#include <string>

#include "sim/checkpoint.hh"
#include "sim/logging.hh"

namespace fidelity
{

namespace
{

// Floats are mixed by their exact 32-bit pattern (not via double) so
// NaN payloads and signed zeros stay distinguishable — the fingerprint
// must pin stored bits, not numeric values.
std::uint64_t floatBits(float v)
{
    return std::bit_cast<std::uint32_t>(v);
}

void mixTensor(HashMixer &m, const Tensor &t)
{
    m.mix(static_cast<std::uint64_t>(t.n()));
    m.mix(static_cast<std::uint64_t>(t.h()));
    m.mix(static_cast<std::uint64_t>(t.w()));
    m.mix(static_cast<std::uint64_t>(t.c()));
    for (std::size_t i = 0; i < t.size(); ++i)
        m.mix(floatBits(t[i]));
}

void mixQuant(HashMixer &m, const QuantParams &q)
{
    m.mix(q.scale);
    m.mix(static_cast<std::uint64_t>(q.bits));
}

} // namespace

Injector::Injector(const Network &net, Tensor input,
                   const NvdlaConfig &cfg)
    : net_(net), input_(std::move(input)), models_(cfg)
{
    acts_ = net_.forwardAll(input_);
}

const Tensor &
Injector::goldenOutput() const
{
    return acts_[net_.outputNode()];
}

void
Injector::attachResultCache(ResultCache *cache, std::uint64_t salt)
{
    cache_ = cache;
    cacheContext_ = 0;
    if (!cache_)
        return;

    // Conservative context digest: everything a forward pass from any
    // injection site reads, by exact bit pattern.  The golden
    // activations transitively pin the biases (bias differences would
    // change some activation), and input + weights + quant params pin
    // the arithmetic itself, so two injectors with equal digests run
    // bit-identical propagation for equal corruptions.
    HashMixer m;
    m.mix(std::string("fidelity-result-cache-v1"));
    m.mix(salt);
    m.mix(net_.name());
    m.mix(std::string(precisionName(net_.precision())));
    mixTensor(m, input_);
    // Node 0 is the input placeholder (already mixed above); real
    // layers start at 1.
    for (NodeId id = 1; id < net_.numNodes(); ++id) {
        const Layer &layer = net_.layer(id);
        m.mix(layer.name());
        m.mix(std::string(layerKindName(layer.kind())));
        m.mix(std::string(precisionName(layer.precision())));
        mixTensor(m, acts_[id]);
        if (const auto *mac = dynamic_cast<const MacLayer *>(&layer)) {
            auto ins = net_.gatherInputs(id, acts_);
            const std::size_t wc = mac->weightCount(ins);
            m.mix(static_cast<std::uint64_t>(wc));
            for (std::size_t i = 0; i < wc; ++i)
                m.mix(floatBits(mac->weightAt(ins, i)));
            mixQuant(m, mac->inputQuant());
            mixQuant(m, mac->weightQuant());
            mixQuant(m, mac->outputQuant());
        }
    }
    cacheContext_ = m.value();
}

std::uint64_t
faultSiteFingerprint(std::uint64_t context, NodeId node, FFCategory cat,
                     double clamp_abs, const FaultApplication &app,
                     const Tensor &golden)
{
    HashMixer m;
    m.mix(context);
    m.mix(static_cast<std::uint64_t>(node));
    m.mix(static_cast<std::uint64_t>(cat));
    m.mix(clamp_abs);
    m.mix(static_cast<std::uint64_t>(app.neurons.size()));
    for (std::size_t i = 0; i < app.neurons.size(); ++i) {
        const NeuronIndex &nrn = app.neurons[i];
        m.mix(static_cast<std::uint64_t>(nrn.n));
        m.mix(static_cast<std::uint64_t>(nrn.h));
        m.mix(static_cast<std::uint64_t>(nrn.w));
        m.mix(static_cast<std::uint64_t>(nrn.c));
        // Hash the value the forward pass will actually see written
        // back, so raw values the range checker bounds to the same
        // write collapse into one site (more hits, same outcome).
        float v = app.values[i];
        if (clamp_abs > 0.0)
            v = boundValue(v, clamp_abs);
        m.mix(floatBits(v));
        m.mix(floatBits(golden.at(nrn)));
    }
    return m.value();
}

float
boundValue(float v, double clamp_abs)
{
    // NaN carries no sign information the checker could preserve; the
    // deliberate policy is to flush it to zero (the checker's neutral
    // value), never to either bound.
    if (std::isnan(v))
        return 0.0f;
    // Infinities saturate to the bound of their own sign: a negatively
    // overflowed value must stay negative or the range checker itself
    // would inject a sign flip.
    if (std::isinf(v)) {
        return static_cast<float>(std::signbit(v) ? -clamp_abs
                                                  : clamp_abs);
    }
    return std::clamp(v, static_cast<float>(-clamp_abs),
                      static_cast<float>(clamp_abs));
}

InjectionRecord
Injector::inject(NodeId node, FFCategory cat, const CorrectnessFn &correct,
                 Rng &rng, double clamp_abs, IncrementalEngine *engine) const
{
    InjectionRecord rec;
    rec.category = cat;
    rec.node = node;

    if (cat == FFCategory::GlobalControl) {
        // Modelled as guaranteed application error / system anomaly.
        rec.masked = false;
        rec.globalFailure = true;
        return rec;
    }

    const auto *mac = dynamic_cast<const MacLayer *>(&net_.layer(node));
    panic_if(!mac, "injection target ", node, " is not a MAC layer");
    auto ins = net_.gatherInputs(node, acts_);

    FaultApplication app = models_.apply(cat, *mac, ins, acts_[node], rng);
    rec.numFaultyNeurons = static_cast<int>(app.neurons.size());
    rec.maxAbsDelta = app.maxAbsDelta;
    if (app.masked()) {
        rec.masked = true;
        return rec;
    }

    // Probe the memo table only after the fault model ran: the rng
    // stream and the record's fault-shape fields are identical with
    // and without a cache — a hit skips only the propagation below.
    if (cache_) {
        rec.fingerprint = faultSiteFingerprint(cacheContext_, node, cat,
                                               clamp_abs, app, acts_[node]);
        rec.cacheEligible = true;
        CachedOutcome memo;
        if (cache_->probe(rec.fingerprint, memo)) {
            rec.masked = memo.masked;
            rec.earlyExit = memo.earlyExit;
            rec.cacheHit = true;
            return rec;
        }
    }

    if (engine) {
        // Incremental fast path: build the corrupted activation in the
        // engine's reusable buffer, track the bounding box of neurons
        // whose stored bits actually changed, and re-execute only that
        // cone.  Bit-identical to the dense branch below.
        const Tensor &golden = acts_[node];
        Tensor &corrupted = engine->replacementBuffer();
        corrupted = golden;
        Region fault;
        for (std::size_t i = 0; i < app.neurons.size(); ++i) {
            float v = app.values[i];
            if (clamp_abs > 0.0)
                v = boundValue(v, clamp_abs);
            corrupted.at(app.neurons[i]) = v;
            if (std::bit_cast<std::uint32_t>(v) !=
                std::bit_cast<std::uint32_t>(golden.at(app.neurons[i])))
                fault.include(app.neurons[i]);
        }
        const Tensor &final_out =
            engine->run(net_, node, corrupted, fault, acts_);
        rec.masked = correct(goldenOutput(), final_out);
        rec.earlyExit = engine->lastStats().earlyMasked;
        if (cache_)
            cache_->store(rec.fingerprint,
                          CachedOutcome{rec.masked, rec.earlyExit});
        return rec;
    }

    Tensor corrupted = acts_[node];
    for (std::size_t i = 0; i < app.neurons.size(); ++i) {
        float v = app.values[i];
        if (clamp_abs > 0.0)
            v = boundValue(v, clamp_abs);
        corrupted.at(app.neurons[i]) = v;
    }

    Tensor final_out = net_.forwardFrom(node, corrupted, acts_);
    rec.masked = correct(goldenOutput(), final_out);
    if (cache_)
        cache_->store(rec.fingerprint,
                      CachedOutcome{rec.masked, rec.earlyExit});
    return rec;
}

std::size_t
Injector::injectBatch(NodeId node, FFCategory cat,
                      const CorrectnessFn &correct, Rng &rng, int count,
                      double clamp_abs, int batchWidth,
                      BatchedEngine &beng, IncrementalEngine &seng,
                      InjectionRecord *recs) const
{
    if (count <= 0)
        return 0;
    const int width = std::min(batchWidth, beng.maxLanes());
    if (cat == FFCategory::GlobalControl || width <= 1) {
        // Nothing to batch: GlobalControl never propagates, and width
        // 1 is the plain scalar path.
        for (int i = 0; i < count; ++i)
            recs[i] = inject(node, cat, correct, rng, clamp_abs, &seng);
        return static_cast<std::size_t>(count);
    }

    const auto *mac = dynamic_cast<const MacLayer *>(&net_.layer(node));
    panic_if(!mac, "injection target ", node, " is not a MAC layer");
    auto ins = net_.gatherInputs(node, acts_);
    const Tensor &golden = acts_[node];

    // Pending survivors over the whole call (post-bounding,
    // bit-changed neurons only — the same set the scalar path's fault
    // region tracks).  Survivors queue up here and are grouped into
    // batches *by seed-site proximity* after the sampling loop:
    // spatially adjacent faults have overlapping cones, so clustered
    // lanes keep every layer's union recompute box close to a single
    // injection's.  All RNG draws and cache probes happen inside the
    // sequential loop, so the grouping cannot perturb the rng stream,
    // the record fault fields, or any outcome.
    std::vector<NeuronIndex> qn; // flat neuron storage
    std::vector<float> qv;       // flat value storage
    struct Pending
    {
        std::size_t begin; //!< first neuron in qn/qv
        std::size_t end;   //!< one past the last neuron
        int rec;           //!< index into recs
        std::uint64_t key; //!< batch n, then Z-order of the seed centre
    };
    std::vector<Pending> pend;

    // Z-order (Morton) interleave of the 2-D seed centre: sorting by
    // it groups survivors into compact spatial blocks, where a
    // lexicographic (h, w) sort would cluster rows but span the whole
    // width — and the batch union box is what every layer recomputes.
    auto morton = [](std::uint32_t h, std::uint32_t w) {
        std::uint64_t z = 0;
        for (int b = 0; b < 16; ++b) {
            z |= static_cast<std::uint64_t>((h >> b) & 1u) << (2 * b + 1);
            z |= static_cast<std::uint64_t>((w >> b) & 1u) << (2 * b);
        }
        return z;
    };

    for (int i = 0; i < count; ++i) {
        InjectionRecord &rec = recs[i];
        rec = InjectionRecord{};
        rec.category = cat;
        rec.node = node;

        FaultApplication app =
            models_.apply(cat, *mac, ins, golden, rng);
        rec.numFaultyNeurons = static_cast<int>(app.neurons.size());
        rec.maxAbsDelta = app.maxAbsDelta;
        if (app.masked()) {
            rec.masked = true;
            continue;
        }

        // Probe the memo table per injection, before batching, so the
        // rng stream and record fields match the sequential path.
        if (cache_) {
            rec.fingerprint = faultSiteFingerprint(
                cacheContext_, node, cat, clamp_abs, app, golden);
            rec.cacheEligible = true;
            CachedOutcome memo;
            if (cache_->probe(rec.fingerprint, memo)) {
                rec.masked = memo.masked;
                rec.earlyExit = memo.earlyExit;
                rec.cacheHit = true;
                continue;
            }
        }

        Pending p;
        p.begin = qn.size();
        Region seed;
        for (std::size_t j = 0; j < app.neurons.size(); ++j) {
            float v = app.values[j];
            if (clamp_abs > 0.0)
                v = boundValue(v, clamp_abs);
            if (std::bit_cast<std::uint32_t>(v) !=
                std::bit_cast<std::uint32_t>(golden.at(app.neurons[j])))
            {
                qn.push_back(app.neurons[j]);
                qv.push_back(v);
                seed.include(app.neurons[j]);
            }
        }
        p.end = qn.size();
        p.rec = i;
        p.key = seed.empty()
            ? 0
            : (static_cast<std::uint64_t>(seed.n0 + seed.n1) << 33) |
                  morton(static_cast<std::uint32_t>(seed.h0 + seed.h1),
                         static_cast<std::uint32_t>(seed.w0 + seed.w1));
        pend.push_back(p);
    }

    // Cluster: sort survivors by seed centre, stable so equal sites
    // keep arrival order — the grouping is deterministic and thus
    // identical at every thread count.
    std::stable_sort(pend.begin(), pend.end(),
                     [](const Pending &a, const Pending &b) {
                         return a.key < b.key;
                     });

    for (std::size_t g0 = 0; g0 < pend.size(); g0 += width) {
        const int q = static_cast<int>(
            std::min<std::size_t>(width, pend.size() - g0));
        if (q == 1) {
            // Lone survivor: the scalar engine is cheaper than a
            // one-lane batch and bit-identical to it.
            const Pending &p = pend[g0];
            InjectionRecord &r = recs[p.rec];
            Tensor &corrupted = seng.replacementBuffer();
            corrupted = golden;
            Region fault;
            for (std::size_t j = p.begin; j < p.end; ++j) {
                corrupted.at(qn[j]) = qv[j];
                fault.include(qn[j]);
            }
            const Tensor &final_out =
                seng.run(net_, node, corrupted, fault, acts_);
            r.masked = correct(goldenOutput(), final_out);
            r.earlyExit = seng.lastStats().earlyMasked;
            if (cache_)
                cache_->store(r.fingerprint,
                              CachedOutcome{r.masked, r.earlyExit});
            continue;
        }
        beng.begin(net_, node, acts_);
        for (int l = 0; l < q; ++l) {
            const Pending &p = pend[g0 + l];
            beng.seedLane(l, qn.data() + p.begin, qv.data() + p.begin,
                          p.end - p.begin);
        }
        beng.execute();
        for (int l = 0; l < q; ++l) {
            InjectionRecord &r = recs[pend[g0 + l].rec];
            r.masked = correct(goldenOutput(), beng.laneOutput(l));
            r.earlyExit = beng.laneEarlyMasked(l);
            if (cache_)
                cache_->store(r.fingerprint,
                              CachedOutcome{r.masked, r.earlyExit});
        }
    }
    return static_cast<std::size_t>(count);
}

namespace
{

/**
 * Argmax treating NaN as "not a valid score": NaN elements can never
 * be the top-1 class.  Returns SIZE_MAX when every element is NaN
 * (the prediction is undefined).  Infinities order normally.
 */
std::size_t
argmaxIgnoringNan(const Tensor &t)
{
    std::size_t best = SIZE_MAX;
    for (std::size_t i = 0; i < t.size(); ++i) {
        if (std::isnan(t[i]))
            continue;
        if (best == SIZE_MAX || t[i] > t[best])
            best = i;
    }
    return best;
}

} // namespace

bool
top1Match(const Tensor &golden, const Tensor &faulty)
{
    panic_if(golden.size() != faulty.size(), "output size mismatch");
    // The criterion is purely "does the predicted class change": a NaN
    // only matters when it displaces the top-1 score (it can never win
    // itself), and a NaN the golden output already contains cannot make
    // the faulty run wrong on its own.  Two undefined predictions
    // (all-NaN on both sides) compare equal — the metric has no basis
    // to call the fault visible.
    return argmaxIgnoringNan(golden) == argmaxIgnoringNan(faulty);
}

} // namespace fidelity
