#include "core/injector.hh"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>

#include "sim/logging.hh"

namespace fidelity
{

Injector::Injector(const Network &net, Tensor input,
                   const NvdlaConfig &cfg)
    : net_(net), input_(std::move(input)), models_(cfg)
{
    acts_ = net_.forwardAll(input_);
}

const Tensor &
Injector::goldenOutput() const
{
    return acts_[net_.outputNode()];
}

float
boundValue(float v, double clamp_abs)
{
    // NaN carries no sign information the checker could preserve; the
    // deliberate policy is to flush it to zero (the checker's neutral
    // value), never to either bound.
    if (std::isnan(v))
        return 0.0f;
    // Infinities saturate to the bound of their own sign: a negatively
    // overflowed value must stay negative or the range checker itself
    // would inject a sign flip.
    if (std::isinf(v)) {
        return static_cast<float>(std::signbit(v) ? -clamp_abs
                                                  : clamp_abs);
    }
    return std::clamp(v, static_cast<float>(-clamp_abs),
                      static_cast<float>(clamp_abs));
}

InjectionRecord
Injector::inject(NodeId node, FFCategory cat, const CorrectnessFn &correct,
                 Rng &rng, double clamp_abs, IncrementalEngine *engine) const
{
    InjectionRecord rec;
    rec.category = cat;
    rec.node = node;

    if (cat == FFCategory::GlobalControl) {
        // Modelled as guaranteed application error / system anomaly.
        rec.masked = false;
        rec.globalFailure = true;
        return rec;
    }

    const auto *mac = dynamic_cast<const MacLayer *>(&net_.layer(node));
    panic_if(!mac, "injection target ", node, " is not a MAC layer");
    auto ins = net_.gatherInputs(node, acts_);

    FaultApplication app = models_.apply(cat, *mac, ins, acts_[node], rng);
    rec.numFaultyNeurons = static_cast<int>(app.neurons.size());
    rec.maxAbsDelta = app.maxAbsDelta;
    if (app.masked()) {
        rec.masked = true;
        return rec;
    }

    if (engine) {
        // Incremental fast path: build the corrupted activation in the
        // engine's reusable buffer, track the bounding box of neurons
        // whose stored bits actually changed, and re-execute only that
        // cone.  Bit-identical to the dense branch below.
        const Tensor &golden = acts_[node];
        Tensor &corrupted = engine->replacementBuffer();
        corrupted = golden;
        Region fault;
        for (std::size_t i = 0; i < app.neurons.size(); ++i) {
            float v = app.values[i];
            if (clamp_abs > 0.0)
                v = boundValue(v, clamp_abs);
            corrupted.at(app.neurons[i]) = v;
            if (std::bit_cast<std::uint32_t>(v) !=
                std::bit_cast<std::uint32_t>(golden.at(app.neurons[i])))
                fault.include(app.neurons[i]);
        }
        const Tensor &final_out =
            engine->run(net_, node, corrupted, fault, acts_);
        rec.masked = correct(goldenOutput(), final_out);
        rec.earlyExit = engine->lastStats().earlyMasked;
        return rec;
    }

    Tensor corrupted = acts_[node];
    for (std::size_t i = 0; i < app.neurons.size(); ++i) {
        float v = app.values[i];
        if (clamp_abs > 0.0)
            v = boundValue(v, clamp_abs);
        corrupted.at(app.neurons[i]) = v;
    }

    Tensor final_out = net_.forwardFrom(node, corrupted, acts_);
    rec.masked = correct(goldenOutput(), final_out);
    return rec;
}

namespace
{

/**
 * Argmax treating NaN as "not a valid score": NaN elements can never
 * be the top-1 class.  Returns SIZE_MAX when every element is NaN
 * (the prediction is undefined).  Infinities order normally.
 */
std::size_t
argmaxIgnoringNan(const Tensor &t)
{
    std::size_t best = SIZE_MAX;
    for (std::size_t i = 0; i < t.size(); ++i) {
        if (std::isnan(t[i]))
            continue;
        if (best == SIZE_MAX || t[i] > t[best])
            best = i;
    }
    return best;
}

} // namespace

bool
top1Match(const Tensor &golden, const Tensor &faulty)
{
    panic_if(golden.size() != faulty.size(), "output size mismatch");
    // The criterion is purely "does the predicted class change": a NaN
    // only matters when it displaces the top-1 score (it can never win
    // itself), and a NaN the golden output already contains cannot make
    // the faulty run wrong on its own.  Two undefined predictions
    // (all-NaN on both sides) compare equal — the metric has no basis
    // to call the fault visible.
    return argmaxIgnoringNan(golden) == argmaxIgnoringNan(faulty);
}

} // namespace fidelity
