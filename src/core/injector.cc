#include "core/injector.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace fidelity
{

Injector::Injector(const Network &net, Tensor input,
                   const NvdlaConfig &cfg)
    : net_(net), input_(std::move(input)), models_(cfg)
{
    acts_ = net_.forwardAll(input_);
}

const Tensor &
Injector::goldenOutput() const
{
    return acts_[net_.outputNode()];
}

namespace
{

/** Range-checker co-design: saturate a written-back value. */
float
boundValue(float v, double clamp_abs)
{
    if (!std::isfinite(v))
        return static_cast<float>(clamp_abs);
    return std::clamp(v, static_cast<float>(-clamp_abs),
                      static_cast<float>(clamp_abs));
}

} // namespace

InjectionRecord
Injector::inject(NodeId node, FFCategory cat, const CorrectnessFn &correct,
                 Rng &rng, double clamp_abs) const
{
    InjectionRecord rec;
    rec.category = cat;
    rec.node = node;

    if (cat == FFCategory::GlobalControl) {
        // Modelled as guaranteed application error / system anomaly.
        rec.masked = false;
        rec.globalFailure = true;
        return rec;
    }

    const auto *mac = dynamic_cast<const MacLayer *>(&net_.layer(node));
    panic_if(!mac, "injection target ", node, " is not a MAC layer");
    auto ins = net_.gatherInputs(node, acts_);

    FaultApplication app = models_.apply(cat, *mac, ins, acts_[node], rng);
    rec.numFaultyNeurons = static_cast<int>(app.neurons.size());
    rec.maxAbsDelta = app.maxAbsDelta;
    if (app.masked()) {
        rec.masked = true;
        return rec;
    }

    Tensor corrupted = acts_[node];
    for (std::size_t i = 0; i < app.neurons.size(); ++i) {
        float v = app.values[i];
        if (clamp_abs > 0.0)
            v = boundValue(v, clamp_abs);
        corrupted.at(app.neurons[i]) = v;
    }

    Tensor final_out = net_.forwardFrom(node, corrupted, acts_);
    rec.masked = correct(goldenOutput(), final_out);
    return rec;
}

bool
top1Match(const Tensor &golden, const Tensor &faulty)
{
    panic_if(golden.size() != faulty.size(), "output size mismatch");
    for (std::size_t i = 0; i < faulty.size(); ++i)
        if (std::isnan(faulty[i]))
            return false;
    return golden.argmax() == faulty.argmax();
}

} // namespace fidelity
