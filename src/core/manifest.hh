/**
 * @file
 * Campaign run manifests: the machine-readable record of one campaign.
 *
 * A manifest is a JSON document (CampaignConfig::reportPath) with two
 * top-level sections:
 *
 *  - "results" — everything determined by the campaign's sample
 *    identity alone: config fingerprint, seed and schedule knobs, the
 *    full per-(layer, category) cell table with Wilson intervals, the
 *    Eq. 2 FIT breakdowns, injection totals, and the adaptive round
 *    history.  This section is byte-identical across thread counts and
 *    across checkpoint kill-and-resume — the auditable statement of
 *    what the campaign measured (test_sim_metrics enforces this).
 *
 *  - "execution" — how this particular process produced it: build and
 *    SIMD-backend info, thread count, per-phase wall times, per-worker
 *    shard/injection counts, incremental-vs-dense engine decisions,
 *    checkpoint events, resume bookkeeping, and the merged MetricSet.
 *    Wall-time fields all carry an `_s` key suffix so tools (and the
 *    determinism tests) can strip them uniformly.
 *
 * The document is published with atomicWriteFile(sync) — a crash while
 * reporting cannot leave a torn manifest next to a finished campaign.
 */

#ifndef FIDELITY_CORE_MANIFEST_HH
#define FIDELITY_CORE_MANIFEST_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/campaign.hh"
#include "nn/batched.hh"
#include "nn/incremental.hh"
#include "sim/metrics.hh"

namespace fidelity
{

/** Schema identifier stamped into every manifest. */
inline constexpr const char *kRunManifestSchema =
    "fidelity-run-manifest-v1";

/** One mid-flight (or final) snapshot publication. */
struct CheckpointEvent
{
    std::uint64_t shardsJournaled = 0; //!< shards in the snapshot
    std::uint64_t bytes = 0;           //!< snapshot size on disk
    double atSeconds = 0.0;            //!< wall clock since campaign start
    bool final_ = false;               //!< end-of-run snapshot
};

/** One scheduling round (fixed campaigns have exactly one). */
struct RoundTelemetry
{
    std::uint64_t shardsPlanned = 0;
    std::uint64_t cellsLive = 0;         //!< live cells entering the round
    std::uint64_t cellsRetiredAfter = 0; //!< cumulative retired after it
};

/** What one pool worker did (index = ThreadPool worker index). */
struct WorkerTelemetry
{
    std::uint64_t shards = 0;
    std::uint64_t injections = 0;
    IncrementalTotals engine;
    BatchedTotals batched;
};

/** One worker *process* of a distributed (sim/service) run. */
struct WorkerProcessTelemetry
{
    std::string name;       //!< HELLO-announced worker name
    int threads = 1;        //!< threads the worker ran with
    std::uint64_t shards = 0;
    std::uint64_t injections = 0;
    std::uint64_t leases = 0;         //!< leases granted to it
    std::uint64_t leasesExpired = 0;  //!< leases re-issued elsewhere
};

/**
 * Worker-process topology of a distributed run: which processes the
 * coordinator fanned the shard plan out to and what each contributed.
 * Rendered into the manifest "execution" section only (the "results"
 * section must stay byte-identical to a single-process run — that is
 * the whole point of the coordinator's merge).
 */
struct WorkerTopology
{
    std::string coordinator;  //!< listen address the workers dialed
    std::uint64_t leaseShards = 0; //!< shards per lease
    std::vector<WorkerProcessTelemetry> workers;
};

/**
 * Result-cache observability.  The hit/miss/store/evict counters come
 * from a deterministic *plan replay*: the fingerprint sequence of every
 * freshly executed shard is re-driven, in shard-plan order, through a
 * fresh table of the same capacity.  The replay is a pure function of
 * the shard plan, so these counters are byte-identical across thread
 * counts — unlike the live shared table's own counters, whose
 * interleaving (and hence hit/miss split) is scheduling-dependent.
 * Restored (resumed) shards carry no fingerprints; they are skipped
 * and replayComplete turns false.
 */
struct ResultCacheTelemetry
{
    bool enabled = false;
    std::uint64_t capacityBytes = 0;
    std::uint64_t entries = 0;
    std::uint64_t shards = 0; //!< table shards, not campaign shards

    bool replayComplete = false;
    std::uint64_t replayedShards = 0; //!< campaign shards replayed
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t stores = 0;
    std::uint64_t evictions = 0;
};

/** Everything runCampaign learns about its own execution. */
struct CampaignTelemetry
{
    int threads = 1;
    bool incremental = false;
    int batchWidth = 1; //!< effective fault-batch lane width

    /** Worker-process fan-out of a distributed run (null otherwise). */
    std::shared_ptr<const WorkerTopology> topology;

    bool resumed = false;
    std::uint64_t restoredShards = 0;
    std::uint64_t executedShards = 0;
    std::uint64_t executedInjections = 0;

    std::vector<WorkerTelemetry> workers;
    std::vector<CheckpointEvent> checkpoints;
    std::vector<RoundTelemetry> rounds;

    /** Engine totals summed over workers. */
    IncrementalTotals engine;

    /** Fault-batched engine totals summed over workers. */
    BatchedTotals batched;

    /** Fault-site memo table counters (plan replay). */
    ResultCacheTelemetry resultCache;

    /** Merged instruments: coordinator phase timers + per-worker sets. */
    MetricSet metrics;
};

/** Render the manifest document (no trailing newline). */
std::string runManifestJson(const Network &net, const CampaignConfig &cfg,
                            std::uint64_t configHash,
                            const CampaignResult &res,
                            const CampaignTelemetry &tel);

/** Render and publish atomically + durably to `path`. */
void writeRunManifest(const std::string &path, const Network &net,
                      const CampaignConfig &cfg, std::uint64_t configHash,
                      const CampaignResult &res,
                      const CampaignTelemetry &tel);

} // namespace fidelity

#endif // FIDELITY_CORE_MANIFEST_HH
