/**
 * @file
 * Software fault models for on-chip memory errors (Sec. III-E).
 *
 * The paper notes that FIdelity extends beyond flip-flops: a corrupted
 * memory word behaves like the pre-buffer datapath FF that loaded it
 * (Table I, row 1), so its faulty-neuron set is "all output neurons
 * that use the value", and multi-word errors take the union of the
 * per-word sets.  This module derives those models on top of the nn
 * layers' substitution machinery; values for neurons touched by
 * several corrupted words come from a chained substitution, so they
 * stay bit-exact.
 */

#ifndef FIDELITY_CORE_MEMORY_FAULTS_HH
#define FIDELITY_CORE_MEMORY_FAULTS_HH

#include <vector>

#include "core/fault_models.hh"
#include "nn/layer.hh"

namespace fidelity
{

/** One corrupted memory word in a layer's operand space. */
struct MemWordFault
{
    bool weight = true;       //!< weight word vs input word
    std::size_t index = 0;    //!< flat operand index (layer domain)
    std::uint32_t mask = 1;   //!< bits flipped in the stored word
};

/** Memory-error fault models bound to one layer execution. */
class MemoryFaultModel
{
  public:
    /**
     * @param layer The MAC layer whose operand memories are hit.
     * @param ins The layer's (golden) inputs, kept alive by caller.
     */
    MemoryFaultModel(const MacLayer &layer,
                     std::vector<const Tensor *> ins);

    /** Model a single corrupted word. */
    FaultApplication applyWord(const MemWordFault &fault) const;

    /**
     * Model several corrupted words at once: the faulty-neuron set is
     * the union of the per-word sets, with chained substitutions for
     * neurons consuming more than one corrupted word.
     */
    FaultApplication
    applyWords(const std::vector<MemWordFault> &faults) const;

    /** The corrupted real value a word fault produces. */
    float corruptedValue(const MemWordFault &fault) const;

    const Tensor &golden() const { return golden_; }

  private:
    const MacLayer &layer_;
    std::vector<const Tensor *> ins_;
    Tensor golden_;
};

} // namespace fidelity

#endif // FIDELITY_CORE_MEMORY_FAULTS_HH
