#include "core/naive.hh"

#include "core/fault_models.hh"
#include "sim/logging.hh"

namespace fidelity
{

NaiveInjector::NaiveInjector(const Injector &injector)
    : injector_(injector)
{
    const Network &net = injector_.network();
    nodes_ = net.macNodes();
    fatal_if(nodes_.empty(), "network has no MAC layers");
    for (NodeId n : nodes_)
        nodeWeights_.push_back(static_cast<double>(
            injector_.goldenActs()[n].size()));
}

bool
NaiveInjector::inject(const CorrectnessFn &correct, Rng &rng) const
{
    const Network &net = injector_.network();
    const auto &acts = injector_.goldenActs();

    NodeId node = nodes_[rng.weighted(nodeWeights_)];
    const auto *mac = dynamic_cast<const MacLayer *>(&net.layer(node));
    const Tensor &golden = acts[node];

    std::size_t flat =
        rng.below(static_cast<std::uint32_t>(golden.size()));
    Precision p = mac->precision();
    int bit = static_cast<int>(
        rng.below(FaultModels::operandBits(p)));
    float faulty_val = FaultModels::flipStoredOutput(
        golden[flat], p, mac->outputQuant(), bit);
    if (faulty_val == golden[flat])
        return true; // flip invisible after re-quantisation

    Tensor corrupted = golden;
    corrupted[flat] = faulty_val;
    Tensor final_out = net.forwardFrom(node, corrupted, acts);
    return correct(acts[net.outputNode()], final_out);
}

double
NaiveInjector::naiveFit(const FitParams &params, double prob_mask)
{
    return params.rawFitTotal() * (1.0 - prob_mask);
}

} // namespace fidelity
