#include "core/memory_faults.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>

#include "sim/logging.hh"

namespace fidelity
{

namespace
{

bool
sameValue(float a, float b)
{
    if (std::isnan(a) && std::isnan(b))
        return true;
    return a == b;
}

} // namespace

MemoryFaultModel::MemoryFaultModel(const MacLayer &layer,
                                   std::vector<const Tensor *> ins)
    : layer_(layer), ins_(std::move(ins))
{
    golden_ = layer_.forward(ins_);
}

float
MemoryFaultModel::corruptedValue(const MemWordFault &fault) const
{
    Precision p = layer_.precision();
    if (fault.weight) {
        panic_if(fault.index >= layer_.weightCount(ins_),
                 "weight word index out of range");
        return FaultModels::flipStoredOperandMask(
            layer_.weightAt(ins_, fault.index), p, layer_.weightQuant(),
            fault.mask);
    }
    panic_if(fault.index >= ins_[0]->size(),
             "input word index out of range");
    return FaultModels::flipStoredOperandMask(
        (*ins_[0])[fault.index], p, layer_.inputQuant(), fault.mask);
}

FaultApplication
MemoryFaultModel::applyWord(const MemWordFault &fault) const
{
    return applyWords({fault});
}

FaultApplication
MemoryFaultModel::applyWords(
    const std::vector<MemWordFault> &faults) const
{
    FaultApplication app;
    app.category = FFCategory::PreBufInput; // memory row of Table I

    // Build the substitution chain and the candidate-neuron union.
    std::vector<OperandSub> subs(faults.size());
    std::set<NeuronIndex> candidates;
    for (std::size_t i = 0; i < faults.size(); ++i) {
        const MemWordFault &f = faults[i];
        subs[i].kind = f.weight ? OperandSub::Kind::Weight
                                : OperandSub::Kind::Input;
        subs[i].flatIndex = f.index;
        subs[i].value = corruptedValue(f);
        if (i + 1 < faults.size())
            subs[i].next = &subs[i + 1];
        auto users = f.weight
            ? layer_.weightConsumers(ins_, f.index)
            : layer_.inputConsumers(ins_, f.index);
        candidates.insert(users.begin(), users.end());
    }

    const OperandSub *chain = subs.empty() ? nullptr : subs.data();
    for (const NeuronIndex &n : candidates) {
        float y = layer_.computeNeuron(ins_, n, chain);
        float g = golden_.at(n);
        if (sameValue(g, y))
            continue;
        app.neurons.push_back(n);
        app.values.push_back(y);
        double delta = std::isfinite(y)
            ? std::fabs(static_cast<double>(y) - g)
            : std::numeric_limits<double>::infinity();
        app.maxAbsDelta = std::max(app.maxAbsDelta, delta);
    }
    return app;
}

} // namespace fidelity
