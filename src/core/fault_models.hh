/**
 * @file
 * NVDLA software fault models (the paper's Table II).
 *
 * Each flip-flop of the accelerator maps to one category; a category
 * carries (a) the share of the design's FFs it covers (%FF column),
 * (b) a reuse factor, and (c) an executable software fault model that
 * picks the faulty output neurons of a MAC layer and rewrites their
 * values.  Datapath models flip a bit of the equivalent software
 * variable (input / weight / partial sum / output word); local-control
 * models write a random value to one neuron; global-control faults are
 * modelled as guaranteed system failure.
 */

#ifndef FIDELITY_CORE_FAULT_MODELS_HH
#define FIDELITY_CORE_FAULT_MODELS_HH

#include <vector>

#include "accel/nvdla_config.hh"
#include "nn/layer.hh"
#include "sim/rng.hh"
#include "tensor/tensor.hh"

namespace fidelity
{

/** Flip-flop categories of Table II. */
enum class FFCategory
{
    PreBufInput,   //!< datapath before CBUF, input path (2.5% FF)
    PreBufWeight,  //!< datapath before CBUF, weight path (4.8% FF)
    OperandInput,  //!< CBUF-to-MAC input operands, RF = 16 (16.2% FF)
    OperandWeight, //!< CBUF-to-MAC weight operands, RF <= 16 (21.6% FF)
    OutputPsum,    //!< partial sums and outputs, RF = 1 (37.9% FF)
    LocalControl,  //!< local control, RF = 1 (5.7% FF)
    GlobalControl, //!< global control, system failure (11.3% FF)
};

/** Number of categories (array sizing). */
constexpr int numFFCategories = 7;

/** All categories in declaration order. */
const std::vector<FFCategory> &allFFCategories();

/** Printable category name. */
const char *ffCategoryName(FFCategory cat);

/** The %FF column of Table II as a fraction (sums to 1 exactly). */
double ffCategoryShare(FFCategory cat);

/** True for the datapath rows of Table II. */
bool isDatapathCategory(FFCategory cat);

/** One applied software fault model. */
struct FaultApplication
{
    FFCategory category = FFCategory::OutputPsum;

    /** Global-control faults: guaranteed system failure. */
    bool globalFailure = false;

    /** Faulty output neurons and their new values (parallel arrays). */
    std::vector<NeuronIndex> neurons;
    std::vector<float> values;

    /** Largest |faulty - golden| over the neurons (Key result 5). */
    double maxAbsDelta = 0.0;

    /** Nothing architecturally changed (all values identical). */
    bool masked() const { return !globalFailure && neurons.empty(); }
};

/**
 * Executable Table II models for one accelerator configuration.
 *
 * The configuration contributes the RF-16 pattern geometry: k^2 = 16
 * parallel MACs define the channel-group width of OperandInput faults,
 * and t = 16 the position-run length of OperandWeight faults.
 */
class FaultModels
{
  public:
    explicit FaultModels(const NvdlaConfig &cfg);

    const NvdlaConfig &config() const { return cfg_; }

    /**
     * Apply one category's software fault model to a layer execution.
     *
     * @param cat Category to inject.
     * @param layer The MAC layer.
     * @param ins The layer's (golden) inputs.
     * @param golden The layer's golden output.
     * @param rng Sampling stream.
     */
    FaultApplication apply(FFCategory cat, const MacLayer &layer,
                           const std::vector<const Tensor *> &ins,
                           const Tensor &golden, Rng &rng) const;

    /** Bit width of the operand representation for a precision. */
    static int operandBits(Precision p);

    /** Flip one bit of an operand value as stored by the datapath. */
    static float flipStoredOperand(float x, Precision p,
                                   const QuantParams &qp, int bit);

    /** Mask-flip of a stored operand (multi-bit transients). */
    static float flipStoredOperandMask(float x, Precision p,
                                       const QuantParams &qp,
                                       std::uint32_t mask);

    /** Flip one bit of an output word as written back. */
    static float flipStoredOutput(float y, Precision p,
                                  const QuantParams &qp, int bit);

    /** Mask-flip of a stored output word. */
    static float flipStoredOutputMask(float y, Precision p,
                                      const QuantParams &qp,
                                      std::uint32_t mask);

    /** A random bit pattern interpreted in the output representation. */
    static float randomOutputValue(Precision p, const QuantParams &qp,
                                   Rng &rng);

  private:
    FaultApplication applyPreBuf(FFCategory cat, const MacLayer &layer,
                                 const std::vector<const Tensor *> &ins,
                                 const Tensor &golden, Rng &rng) const;
    FaultApplication applyOperandInput(const MacLayer &layer,
                                       const std::vector<const Tensor *> &i,
                                       const Tensor &golden,
                                       Rng &rng) const;
    FaultApplication applyOperandWeight(const MacLayer &layer,
                                        const std::vector<const Tensor *> &i,
                                        const Tensor &golden,
                                        Rng &rng) const;
    FaultApplication applyOutputPsum(const MacLayer &layer,
                                     const std::vector<const Tensor *> &ins,
                                     const Tensor &golden, Rng &rng) const;
    FaultApplication applyLocalControl(const MacLayer &layer,
                                       const std::vector<const Tensor *> &i,
                                       const Tensor &golden,
                                       Rng &rng) const;

    NvdlaConfig cfg_;
};

} // namespace fidelity

#endif // FIDELITY_CORE_FAULT_MODELS_HH
