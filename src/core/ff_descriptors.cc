#include "core/ff_descriptors.hh"

#include "sim/logging.hh"

namespace fidelity
{

namespace
{

/** One unit that computes one neuron per cycle for `cycles` cycles. */
ComputeUnitUse
unitOverPositions(int unit, int cycles, int first_pos)
{
    ComputeUnitUse use;
    use.unit = unit;
    use.neurons.resize(cycles);
    for (int y = 0; y < cycles; ++y)
        use.neurons[y] = {NeuronIndex{0, 0, first_pos + y, 0}};
    return use;
}

} // namespace

FFDescriptor
nvdlaTargetA1(int t)
{
    fatal_if(t <= 0, "t must be positive");
    FFDescriptor ff;
    ff.type = VarType::Weight;
    ff.stage = PipelineStage::AfterBuffer;
    ff.ffValueCycles = 1;
    // One multiplier consumes the value; downstream the hold register
    // keeps it in effect for t consecutive positions of one channel.
    ff.loops.resize(1);
    ff.loops[0].push_back(unitOverPositions(/*unit=*/0, t,
                                            /*first_pos=*/0));
    return ff;
}

FFDescriptor
nvdlaTargetA2(int t)
{
    fatal_if(t <= 0, "t must be positive");
    FFDescriptor ff;
    ff.type = VarType::Weight;
    ff.stage = PipelineStage::AfterBuffer;
    // The hold register keeps one value for t cycles; at loop l the
    // multiplier consumes it for the position of that cycle.
    ff.ffValueCycles = t;
    ff.loops.resize(t);
    for (int l = 0; l < t; ++l) {
        ComputeUnitUse use;
        use.unit = 0;
        use.neurons = {{NeuronIndex{0, 0, l, 0}}};
        ff.loops[l].push_back(use);
    }
    return ff;
}

FFDescriptor
nvdlaTargetA3()
{
    FFDescriptor ff;
    ff.type = VarType::Weight;
    ff.stage = PipelineStage::InsideMac;
    ff.ffValueCycles = 1;
    ff.loops.resize(1);
    ComputeUnitUse use;
    use.unit = 0;
    use.neurons = {{NeuronIndex{0, 0, 0, 0}}};
    ff.loops[0].push_back(use);
    return ff;
}

FFDescriptor
nvdlaTargetA4(int k)
{
    fatal_if(k <= 0, "k must be positive");
    FFDescriptor ff;
    ff.type = VarType::Input;
    ff.stage = PipelineStage::AfterBuffer;
    ff.ffValueCycles = 1;
    ff.loops.resize(1);
    // All k^2 multipliers consume the broadcast value for one cycle,
    // producing the same 2-D position in k^2 consecutive channels.
    for (int m = 0; m < k * k; ++m) {
        ComputeUnitUse use;
        use.unit = m;
        use.neurons = {{NeuronIndex{0, 0, 0, m}}};
        ff.loops[0].push_back(use);
    }
    return ff;
}

FFDescriptor
eyerissTargetB1(int k)
{
    fatal_if(k <= 0, "k must be positive");
    FFDescriptor ff;
    ff.type = VarType::Weight;
    ff.stage = PipelineStage::InsideMac;
    // The value is passed to the next column each cycle, so loop l
    // reaches column l, which is computing output row l.
    ff.ffValueCycles = k;
    ff.loops.resize(k);
    for (int l = 0; l < k; ++l) {
        ComputeUnitUse use;
        use.unit = l;
        use.neurons = {{NeuronIndex{0, l, 0, 0}}};
        ff.loops[l].push_back(use);
    }
    return ff;
}

FFDescriptor
eyerissTargetB2(int k, int t)
{
    fatal_if(k <= 0 || t <= 0, "k and t must be positive");
    FFDescriptor ff;
    ff.type = VarType::Input;
    ff.stage = PipelineStage::AfterBuffer;
    // Diagonal reuse: the value reaches column l at loop l (output row
    // l); inside each MAC it is reused for t consecutive channels.
    ff.ffValueCycles = k;
    ff.loops.resize(k);
    for (int l = 0; l < k; ++l) {
        ComputeUnitUse use;
        use.unit = l;
        use.neurons.resize(t);
        for (int y = 0; y < t; ++y)
            use.neurons[y] = {NeuronIndex{0, l, 0, y}};
        ff.loops[l].push_back(use);
    }
    return ff;
}

FFDescriptor
eyerissTargetB3()
{
    FFDescriptor ff;
    ff.type = VarType::Bias;
    ff.stage = PipelineStage::AfterMac;
    ff.ffValueCycles = 1;
    ff.loops.resize(1);
    ComputeUnitUse use;
    use.unit = 0;
    use.neurons = {{NeuronIndex{0, 0, 0, 0}}};
    ff.loops[0].push_back(use);
    return ff;
}

FFDescriptor
composeLocalControl(const std::vector<FFDescriptor> &gated)
{
    fatal_if(gated.empty(), "composeLocalControl needs >= 1 descriptor");
    FFDescriptor ff;
    ff.type = gated[0].type;
    ff.stage = gated[0].stage;
    ff.ffValueCycles = 1;
    ff.loops.resize(1);
    // The control FF's effect is the union of the gated datapath FFs'
    // single-cycle effects; distinct units keep the RF additive.
    int unit = 0;
    for (const FFDescriptor &g : gated) {
        RFResult r = analyzeReuseFactor(g);
        ComputeUnitUse use;
        use.unit = unit++;
        use.neurons.resize(1);
        for (const TimedNeuron &t : r.faultyNeurons)
            use.neurons[0].push_back(t.neuron);
        ff.loops[0].push_back(use);
    }
    return ff;
}

} // namespace fidelity
